package repro

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// benchJSON opts into writing BENCH_engine.json after a bench run:
//
//	go test -bench BenchmarkEngineThroughput -benchjson
//	BENCH_JSON=1 go test -bench BenchmarkEngineThroughput
//	BENCH_JSON=out/bench.json go test -bench BenchmarkEngineThroughput
//
// The artifact captures what the benchmark's stdout metrics cannot: latency
// quantiles. Each BenchmarkEngineThroughput variant runs with a live obs
// registry, and the submit→settle histogram the engine's tracer feeds yields
// p50/p99 alongside matches/sec.
var benchJSON = flag.Bool("benchjson", false,
	"write BENCH_engine.json with matches/sec and submit→settle quantiles")

func benchJSONPath() string {
	if env := os.Getenv("BENCH_JSON"); env != "" && env != "1" && env != "true" {
		return env
	}
	return "BENCH_engine.json"
}

func benchJSONOn() bool {
	return *benchJSON || os.Getenv("BENCH_JSON") != ""
}

// benchResult is one BenchmarkEngineThroughput variant's row in the artifact.
type benchResult struct {
	Name          string  `json:"name"`
	N             int     `json:"n"`
	MatchesPerSec float64 `json:"matches_per_sec"`
	P50SettleMS   float64 `json:"p50_submit_to_settle_ms"`
	P99SettleMS   float64 `json:"p99_submit_to_settle_ms"`
	P50PriceMS    float64 `json:"p50_price_round_ms"`
	P99PriceMS    float64 `json:"p99_price_round_ms"`
	Epochs        uint64  `json:"epochs"`
	// BuildMSPerEpoch is the Mashup Builder's share of each epoch for the
	// transform-heavy variants — the build-stage number the streaming
	// relation engine PR tracks (0 for the coverage variant).
	BuildMSPerEpoch float64 `json:"build_ms_per_epoch,omitempty"`
}

var benchCollector struct {
	mu      sync.Mutex
	results []benchResult
}

// benchRegistry returns a live metrics registry when -benchjson is on (the
// engine then pays the instrumented path, which is what we want to measure
// and report), nil otherwise so the default bench run stays telemetry-free.
func benchRegistry() *obs.Registry {
	if !benchJSONOn() {
		return nil
	}
	return obs.NewRegistry()
}

// recordBenchJSON pulls the submit→settle histogram back out of the registry
// (idempotent registration returns the engine's instrument) and queues one
// result row. No-op when reg is nil.
func recordBenchJSON(b *testing.B, reg *obs.Registry, matchesPerSec float64, epochs uint64, buildMSPerEpoch float64) {
	if reg == nil {
		return
	}
	h := reg.NewHistogram("engine_submit_to_settle_seconds",
		"End-to-end latency from request submission to settlement.", obs.DefBuckets)
	pr := reg.NewHistogram("arbiter_round_seconds",
		"Wall-clock duration of the pricing stage of each matching round.", obs.DefBuckets)
	res := benchResult{
		Name:            b.Name(),
		N:               b.N,
		MatchesPerSec:   matchesPerSec,
		P50SettleMS:     h.Quantile(0.5) * 1000,
		P99SettleMS:     h.Quantile(0.99) * 1000,
		P50PriceMS:      pr.Quantile(0.5) * 1000,
		P99PriceMS:      pr.Quantile(0.99) * 1000,
		Epochs:          epochs,
		BuildMSPerEpoch: buildMSPerEpoch,
	}
	benchCollector.mu.Lock()
	defer benchCollector.mu.Unlock()
	// The harness calibrates with short runs before the measured one; keep
	// only the largest-N run per variant.
	for i, prev := range benchCollector.results {
		if prev.Name == res.Name {
			if res.N >= prev.N {
				benchCollector.results[i] = res
			}
			return
		}
	}
	benchCollector.results = append(benchCollector.results, res)
}

func writeBenchJSON() error {
	benchCollector.mu.Lock()
	defer benchCollector.mu.Unlock()
	if len(benchCollector.results) == 0 {
		return nil
	}
	doc := struct {
		Benchmark string        `json:"benchmark"`
		Generated string        `json:"generated"`
		Results   []benchResult `json:"results"`
	}{
		Benchmark: "BenchmarkEngineThroughput",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Results:   benchCollector.results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(benchJSONPath(), append(buf, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchJSONOn() {
		if err := writeBenchJSON(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
