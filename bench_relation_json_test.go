package repro

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/relation"
)

// relationBenchResult is one row of BENCH_relation.json: a pipeline shape run
// eager (materialize per stage) and streaming (one fused materialization),
// with throughput and allocation rates for each.
type relationBenchResult struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	NsPerOp     int64   `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func runRelationBench(name string, rows int, fn func() int) relationBenchResult {
	var out int
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out = fn()
		}
	})
	return relationBenchResult{
		Name:        name,
		Rows:        out,
		NsPerOp:     res.NsPerOp(),
		RowsPerSec:  float64(rows) * float64(time.Second) / float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

// TestWriteBenchRelationJSON regenerates BENCH_relation.json, the
// eager-vs-streaming relation engine comparison artifact. Gated on the same
// switch as BENCH_engine.json so `BENCH_JSON=1 go test` produces both.
func TestWriteBenchRelationJSON(t *testing.T) {
	if !benchJSONOn() {
		t.Skip("set -benchjson or BENCH_JSON to write BENCH_relation.json")
	}
	const n = 20000
	src := relation.New("bench", relation.NewSchema(
		relation.Col("k", relation.KindInt),
		relation.Col("cat", relation.KindString),
		relation.Col("v", relation.KindFloat)))
	for i := 0; i < n; i++ {
		src.MustAppend(relation.Int(int64(i)),
			relation.String_([]string{"c0", "c1", "c2", "c3"}[i%4]),
			relation.Float(float64(i)*0.5))
	}
	pred := func(row []relation.Value, s relation.Schema) bool {
		return !row[0].IsNull() && row[0].AsInt()%3 != 0
	}
	double := func(v relation.Value) relation.Value {
		if v.IsNull() {
			return v
		}
		return relation.Float(v.AsFloat() * 2)
	}

	results := []relationBenchResult{
		runRelationBench("transform-chain/eager", n, func() int {
			s := relation.Select(src, pred)
			m, err := relation.Map(s, "v", relation.KindFloat, double)
			if err != nil {
				t.Fatal(err)
			}
			p, err := relation.Project(m, "k", "v")
			if err != nil {
				t.Fatal(err)
			}
			return p.NumRows()
		}),
		runRelationBench("transform-chain/streaming", n, func() int {
			it := relation.NewSelect(relation.NewScan(src), pred)
			it, err := relation.NewMap(it, "v", relation.KindFloat, double)
			if err != nil {
				t.Fatal(err)
			}
			it, err = relation.NewProject(it, "k", "v")
			if err != nil {
				t.Fatal(err)
			}
			out, err := relation.Materialize(it)
			if err != nil {
				t.Fatal(err)
			}
			return out.NumRows()
		}),
		runRelationBench("join-project/eager", n, func() int {
			j, err := relation.HashJoin(src, src, relation.JoinPair{Left: "k", Right: "k"})
			if err != nil {
				t.Fatal(err)
			}
			p, err := relation.Project(j, "k", "v")
			if err != nil {
				t.Fatal(err)
			}
			return p.NumRows()
		}),
		runRelationBench("join-project/planned", n, func() int {
			out, err := relation.ScanPlan(src).
				Join(relation.ScanPlan(src), relation.JoinPair{Left: "k", Right: "k"}).
				Project("k", "v").
				Run()
			if err != nil {
				t.Fatal(err)
			}
			return out.NumRows()
		}),
	}

	doc := struct {
		Benchmark string                `json:"benchmark"`
		Generated string                `json:"generated"`
		Results   []relationBenchResult `json:"results"`
	}{
		Benchmark: "RelationEngine",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Results:   results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_relation.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
