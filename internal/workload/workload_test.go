package workload

import (
	"testing"

	"repro/internal/mltask"
	"repro/internal/relation"
)

func TestPaperExampleShapes(t *testing.T) {
	ex := NewPaperExample(100, 1)
	if ex.S1.NumRows() != 100 || ex.S2.NumRows() != 100 || ex.S3.NumRows() != 100 {
		t.Fatal("row counts")
	}
	wantCols := map[string][]string{
		"s1": {"a", "b", "c"}, "s2": {"a", "b_prime", "f_of_temp"}, "s3": {"a", "e"},
	}
	for name, cols := range wantCols {
		var r *relation.Relation
		switch name {
		case "s1":
			r = ex.S1
		case "s2":
			r = ex.S2
		case "s3":
			r = ex.S3
		}
		for _, c := range cols {
			if !r.Schema.Has(c) {
				t.Errorf("%s lacks %s", name, c)
			}
		}
	}
	// f_of_temp = d*1.8+32.
	d0, _ := ex.Truth.Cell(0, "d")
	f0, _ := ex.S2.Cell(0, "f_of_temp")
	if got := d0.AsFloat()*1.8 + 32; got != f0.AsFloat() {
		t.Errorf("f(d) mismatch: %v vs %v", got, f0.AsFloat())
	}
}

func TestPaperExampleDeterministic(t *testing.T) {
	a := NewPaperExample(50, 9)
	b := NewPaperExample(50, 9)
	if !a.S1.Equal(b.S1) || !a.S2.Equal(b.S2) {
		t.Error("same seed must generate identical data")
	}
}

func TestClassifierDataHasSignal(t *testing.T) {
	ex := NewPaperExample(500, 3)
	full, err := ex.ClassifierData()
	if err != nil {
		t.Fatal(err)
	}
	task := mltask.ClassifierTask{
		Features: []string{"b", "d", "e"}, Label: "label",
		Model: mltask.ModelLogistic, Seed: 4,
	}
	acc, err := task.Evaluate(full)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("full-data accuracy = %v, want strong signal", acc)
	}
	// Dropping e should hurt: it is part of the label function.
	partial := mltask.ClassifierTask{
		Features: []string{"b", "d"}, Label: "label",
		Model: mltask.ModelLogistic, Seed: 4,
	}
	accPartial, err := partial.Evaluate(full)
	if err != nil {
		t.Fatal(err)
	}
	if accPartial >= acc {
		t.Errorf("removing e should lower accuracy: %v vs %v", accPartial, acc)
	}
}

func TestEnterpriseSilos(t *testing.T) {
	silos := EnterpriseSilos(3, 2, 50, 5)
	if len(silos) != 3 {
		t.Fatal("silo count")
	}
	for _, s := range silos {
		if len(s.Datasets) != 2 {
			t.Errorf("%s datasets = %d", s.Owner, len(s.Datasets))
		}
		for _, d := range s.Datasets {
			if !d.Schema.Has("entity_id") {
				t.Error("silo tables must share the entity key")
			}
			if d.NumRows() != 50 {
				t.Errorf("rows = %d", d.NumRows())
			}
			// entity_id unique within a table (profiling should see a key).
			ids := map[int64]bool{}
			for _, row := range d.Rows {
				id := row[0].AsInt()
				if ids[id] {
					t.Error("duplicate entity_id within one table")
				}
				ids[id] = true
			}
		}
	}
}

func TestWeatherSources(t *testing.T) {
	rels, truth, bad := WeatherSources(4, 60, 6)
	if len(rels) != 4 || len(truth) != 60 || bad == "" {
		t.Fatal("shape")
	}
	// The bad source deviates from truth far more often than good ones.
	devs := make([]int, 4)
	for si, r := range rels {
		for d := 0; d < 60; d++ {
			v, _ := r.Cell(d, "temp")
			if diff := v.AsFloat() - truth[d]; diff > 1 || diff < -1 {
				devs[si]++
			}
		}
	}
	badIdx := len(rels) - 1
	for i := 0; i < badIdx; i++ {
		if devs[i] >= devs[badIdx] {
			t.Errorf("good source %d deviates %d >= bad %d", i, devs[i], devs[badIdx])
		}
	}
}

func TestPIITable(t *testing.T) {
	r := PIITable(200, 7)
	if r.NumRows() != 200 {
		t.Fatal("rows")
	}
	for _, c := range []string{"name", "age", "zip", "salary", "quit"} {
		if !r.Schema.Has(c) {
			t.Errorf("missing %s", c)
		}
	}
	// quit is predictable from salary (signal for E7).
	task := mltask.ClassifierTask{Features: []string{"salary", "age"}, Label: "quit",
		Model: mltask.ModelLogistic, Seed: 8}
	acc, err := task.Evaluate(r)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("PII table signal too weak: %v", acc)
	}
}

func TestLakeTables(t *testing.T) {
	tables := LakeTables(20, 30, 8)
	if len(tables) != 20 {
		t.Fatal("count")
	}
	// Tables in the same cluster share a key column name.
	if tables[0].Schema[0].Name != tables[3].Schema[0].Name {
		t.Error("cluster members must share key columns")
	}
}
