// Package workload generates the synthetic datasets and buyer populations
// used by the examples, tests and benchmark harness. The paper's evaluation
// was run on the authors' (unavailable) enterprise data; these deterministic
// generators substitute workloads with the same structural properties:
// star-schema silos with shared keys, transformed attributes f(d),
// near-duplicate columns b/b′, multi-source signals for fusion, and feature
// tables with PII for the privacy experiments (see DESIGN.md substitutions).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// PaperExample materializes the §1 worked example:
//
//	s1 = ⟨a, b, c⟩
//	s2 = ⟨a, b′, f(d)⟩   with f = Celsius→Fahrenheit
//	s3 = ⟨a, e⟩           the dataset opportunistic Seller 3 could fetch
//
// plus the ground-truth d column (for checking inverse transforms) and a
// label column derived from (b, d, e) so a classifier task has signal.
type PaperExample struct {
	S1, S2, S3 *relation.Relation
	// Truth holds ⟨a, d, label⟩: the data the buyer's task actually needs.
	Truth *relation.Relation
}

// NewPaperExample generates the scenario with n rows.
func NewPaperExample(n int, seed int64) *PaperExample {
	rng := rand.New(rand.NewSource(seed))
	s1 := relation.New("s1", relation.NewSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("b", relation.KindFloat),
		relation.Col("c", relation.KindString),
	))
	s2 := relation.New("s2", relation.NewSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("b_prime", relation.KindFloat),
		relation.Col("f_of_temp", relation.KindFloat),
	))
	s3 := relation.New("s3", relation.NewSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("e", relation.KindFloat),
	))
	truth := relation.New("truth", relation.NewSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("d", relation.KindFloat),
		relation.Col("label", relation.KindBool),
	))
	for i := 0; i < n; i++ {
		b := rng.NormFloat64() * 10
		d := rng.Float64() * 35 // celsius
		e := rng.NormFloat64() * 5
		label := b+d/4+e > 8
		s1.MustAppend(relation.Int(int64(i)), relation.Float(b), relation.String_(fmt.Sprintf("cat%d", i%7)))
		// b' is b with small conflicting noise on ~20% of rows.
		bp := b
		if rng.Float64() < 0.2 {
			bp += rng.NormFloat64()
		}
		s2.MustAppend(relation.Int(int64(i)), relation.Float(bp), relation.Float(d*1.8+32))
		s3.MustAppend(relation.Int(int64(i)), relation.Float(e))
		truth.MustAppend(relation.Int(int64(i)), relation.Float(d), relation.Bool(label))
	}
	return &PaperExample{S1: s1, S2: s2, S3: s3, Truth: truth}
}

// ClassifierData joins the example into the buyer's ideal table
// ⟨a, b, d, e, label⟩ — what a perfect mashup plus labels looks like.
func (p *PaperExample) ClassifierData() (*relation.Relation, error) {
	return relation.ScanPlan(p.S1).
		Join(relation.ScanPlan(p.Truth), relation.JoinPair{Left: "a", Right: "a"}).
		Join(relation.ScanPlan(p.S3), relation.JoinPair{Left: "a", Right: "a"}).
		Run()
}

// Silo is one department's slice of an internal-market enterprise.
type Silo struct {
	Owner    string
	Datasets []*relation.Relation
}

// EnterpriseSilos generates `silos` departments, each owning `perSilo`
// tables that share entity keys with a global customer dimension — the
// "bring down data silos" internal-market scenario (paper §3.3). Every
// dataset has a key column "entity_id" drawn from a shared universe plus
// silo-specific measure columns.
func EnterpriseSilos(silos, perSilo, rows int, seed int64) []Silo {
	rng := rand.New(rand.NewSource(seed))
	universe := rows * 2
	out := make([]Silo, silos)
	for s := 0; s < silos; s++ {
		owner := fmt.Sprintf("dept%d", s)
		out[s].Owner = owner
		for t := 0; t < perSilo; t++ {
			name := fmt.Sprintf("%s_table%d", owner, t)
			r := relation.New(name, relation.NewSchema(
				relation.Col("entity_id", relation.KindInt),
				relation.Col(fmt.Sprintf("metric_%d_%d", s, t), relation.KindFloat),
				relation.Col(fmt.Sprintf("flag_%d_%d", s, t), relation.KindBool),
			))
			seen := map[int]bool{}
			for i := 0; i < rows; i++ {
				id := rng.Intn(universe)
				for seen[id] {
					id = rng.Intn(universe)
				}
				seen[id] = true
				r.MustAppend(relation.Int(int64(id)),
					relation.Float(rng.NormFloat64()*100),
					relation.Bool(rng.Float64() < 0.5))
			}
			out[s].Datasets = append(out[s].Datasets, r)
		}
	}
	return out
}

// WeatherSources generates `sources` signals over `days` days with one
// systematically unreliable source — the fusion/truth-discovery workload.
// Returns the sources, the ground truth per day, and the name of the bad
// source.
func WeatherSources(sources, days int, seed int64) (rels []*relation.Relation, truth []float64, bad string) {
	rng := rand.New(rand.NewSource(seed))
	truth = make([]float64, days)
	for d := range truth {
		truth[d] = 10 + 10*rng.Float64()
	}
	badIdx := sources - 1
	for s := 0; s < sources; s++ {
		name := fmt.Sprintf("wsrc%d", s)
		if s == badIdx {
			bad = name
		}
		r := relation.New(name, relation.NewSchema(
			relation.Col("day", relation.KindInt),
			relation.Col("temp", relation.KindFloat),
		))
		for d := 0; d < days; d++ {
			v := truth[d]
			if s == badIdx && rng.Float64() < 0.7 {
				v += 4 + rng.Float64()*4
			} else if rng.Float64() < 0.05 {
				v += rng.NormFloat64()
			}
			r.MustAppend(relation.Int(int64(d)), relation.Float(v))
		}
		rels = append(rels, r)
	}
	return rels, truth, bad
}

// PIITable generates an HR-style table with identifying and sensitive
// columns for the privacy experiments (E7).
func PIITable(rows int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("hr", relation.NewSchema(
		relation.Col("name", relation.KindString),
		relation.Col("age", relation.KindFloat),
		relation.Col("zip", relation.KindString),
		relation.Col("salary", relation.KindFloat),
		relation.Col("quit", relation.KindBool),
	))
	for i := 0; i < rows; i++ {
		age := 22 + rng.Float64()*40
		residual := rng.NormFloat64() * 8000
		salary := 40000 + age*1000 + residual
		// The label depends on the part of salary that age does not explain:
		// underpaid-for-their-age employees quit. This keeps the salary
		// column strictly necessary for the task — privacy noise on salary
		// (experiment E7) therefore degrades accuracy toward chance.
		quit := residual < 0
		if rng.Float64() < 0.05 {
			quit = !quit
		}
		r.MustAppend(
			relation.String_(fmt.Sprintf("person%04d", i)),
			relation.Float(age),
			relation.String_(fmt.Sprintf("606%02d", rng.Intn(30))),
			relation.Float(salary),
			relation.Bool(quit),
		)
	}
	return r
}

// LakeTables generates n heterogeneous tables for discovery/index scaling
// benchmarks (E6): clusters of tables share join keys; the rest are noise.
func LakeTables(n, rowsEach int, seed int64) []*relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*relation.Relation, n)
	clusterKeys := 1 + n/10
	for i := 0; i < n; i++ {
		cluster := i % clusterKeys
		r := relation.New(fmt.Sprintf("lake%04d", i), relation.NewSchema(
			relation.Col(fmt.Sprintf("key_c%d", cluster), relation.KindInt),
			relation.Col(fmt.Sprintf("val_%d_a", i), relation.KindFloat),
			relation.Col(fmt.Sprintf("val_%d_b", i), relation.KindString),
		))
		for j := 0; j < rowsEach; j++ {
			r.MustAppend(
				relation.Int(int64(cluster*100000+rng.Intn(rowsEach*2))),
				relation.Float(rng.NormFloat64()),
				relation.String_(fmt.Sprintf("tok%d_%d", cluster, rng.Intn(50))),
			)
		}
		out[i] = r
	}
	return out
}
