package arbiter

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dod"
	"repro/internal/ledger"
	"repro/internal/market"
	"repro/internal/wtp"
)

// This file is the arbiter's durability seam: the hooks the engine's WAL
// replay (internal/engine, internal/wal) and the platform snapshot
// (internal/core) use to rebuild arbiter state without re-running the
// matching pipeline. Replay applies the *outcome* recorded in the event log —
// request filings under their original IDs and settlement transfers — so a
// restarted arbiter reaches the same requests, balances, licenses and
// history skeleton as the uninterrupted run.

// OpenRequestStates returns the open requests in filing order (unlike
// OpenRequests, which returns only IDs). The slice holds copies; the WTP
// pointers are shared (functions are immutable after submission).
func (a *Arbiter) OpenRequestStates() []Request {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Request
	for _, r := range a.requests {
		if r.Open {
			out = append(out, *r)
		}
	}
	return out
}

// SharedIDs returns dataset IDs in share order — the order replays must
// re-ingest them so profile indexing is deterministic.
func (a *Arbiter) SharedIDs() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.shareOrder...)
}

// MetaFor returns the recorded metadata of a shared dataset.
func (a *Arbiter) MetaFor(id string) wtp.DatasetMeta {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.metas[id]
}

// PendingExPostCount reports how many delivered-but-unpaid ex-post
// transactions are outstanding. Their deposits live in ledger escrow, which
// snapshots do not capture — Engine.Snapshot refuses a checkpoint while any
// are pending.
func (a *Arbiter) PendingExPostCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pendingExPost)
}

// ReplayNextID reads the request/transaction ID counter for snapshots.
func (a *Arbiter) ReplayNextID() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextID
}

// RestoreNextID raises the ID counter to at least n, so IDs assigned after a
// restore never collide with logged ones.
func (a *Arbiter) RestoreNextID(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.nextID {
		a.nextID = n
	}
}

// bumpNextID parses the numeric suffix of a logged ID ("req-0007",
// "tx-0012") and raises the counter past it. Caller holds a.mu.
func (a *Arbiter) bumpNextID(id string) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return
	}
	if n, err := strconv.Atoi(id[i+1:]); err == nil && n > a.nextID {
		a.nextID = n
	}
}

// RestoreRequest re-files a request under its original ID. Unlike
// SubmitRequest it does not assign a fresh ID: durable logs and snapshots
// record the ID the original filing got, and replay must reproduce it so
// settlements and tickets keep pointing at the right request.
func (a *Arbiter) RestoreRequest(id string, want dod.Want, f *wtp.Function) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if len(want.Columns) == 0 {
		return fmt.Errorf("arbiter: request has no wanted columns")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.requests {
		if r.ID == id {
			return fmt.Errorf("arbiter: request %q already filed", id)
		}
	}
	a.bumpNextID(id)
	a.requests = append(a.requests, &Request{ID: id, Want: want, WTP: f, Open: true})
	return nil
}

// ReplayedSettlement is the durable skeleton of one settled sale, as carried
// by a tx-settled event. It holds everything settle() moved through the
// ledger, but not the mashup itself — replayed history entries have a nil
// Mashup and Plan.
type ReplayedSettlement struct {
	TxID         string             `json:"tx_id"`
	RequestID    string             `json:"request_id,omitempty"`
	Buyer        string             `json:"buyer"`
	Price        float64            `json:"price"`
	ArbiterCut   float64            `json:"arbiter_cut,omitempty"`
	SellerCuts   map[string]float64 `json:"seller_cuts,omitempty"`
	Satisfaction float64            `json:"satisfaction,omitempty"`
	Datasets     []string           `json:"datasets,omitempty"`
	ExPost       bool               `json:"ex_post,omitempty"`
}

// HistorySkeletons returns the completed-transaction history in its durable
// form (no mashup or plan) for snapshots.
func (a *Arbiter) HistorySkeletons() []ReplayedSettlement {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ReplayedSettlement, 0, len(a.history))
	for _, tx := range a.history {
		out = append(out, ReplayedSettlement{
			TxID:         tx.ID,
			RequestID:    tx.RequestID,
			Buyer:        tx.Buyer,
			Price:        tx.Price,
			ArbiterCut:   tx.ArbiterCut,
			SellerCuts:   tx.SellerCuts,
			Satisfaction: tx.Satisfaction,
			Datasets:     tx.Datasets,
			ExPost:       tx.ExPost,
		})
	}
	return out
}

// RestoreHistory re-seeds the transaction history from snapshot skeletons.
// Purely archival: the ledger effects of these transactions are already in
// the snapshot's balances, so nothing is transferred. The ID counter is
// raised past every restored transaction.
func (a *Arbiter) RestoreHistory(skels []ReplayedSettlement) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, rs := range skels {
		a.bumpNextID(rs.TxID)
		cuts := map[string]float64{}
		for s, c := range rs.SellerCuts {
			cuts[s] = c
		}
		a.history = append(a.history, &Transaction{
			ID:           rs.TxID,
			RequestID:    rs.RequestID,
			Buyer:        rs.Buyer,
			Datasets:     append([]string(nil), rs.Datasets...),
			Satisfaction: rs.Satisfaction,
			Price:        rs.Price,
			ArbiterCut:   rs.ArbiterCut,
			SellerCuts:   cuts,
			ExPost:       rs.ExPost,
		})
	}
}

// ReplaySettlement re-applies one settled sale from the durable event log:
// closes the request, repeats the escrow hold / release / revenue fan-out
// with the logged amounts (micro-unit identical to the original run),
// re-issues licenses and records the purchase. Ex-post sales re-escrow the
// deposit and return to the pending set, though without provenance
// annotations (the mashup is not logged), so a later ReportValue splits
// revenue by dataset owners only.
func (a *Arbiter) ReplaySettlement(rs ReplayedSettlement) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.requests {
		if r.ID == rs.RequestID {
			r.Open = false
		}
	}
	a.bumpNextID(rs.TxID)

	tx := &Transaction{
		ID:           rs.TxID,
		RequestID:    rs.RequestID,
		Buyer:        rs.Buyer,
		Datasets:     append([]string(nil), rs.Datasets...),
		Satisfaction: rs.Satisfaction,
		Price:        rs.Price,
		SellerCuts:   map[string]float64{},
	}

	if rs.ExPost {
		dep := ledger.FromFloat(rs.Price)
		if mech, ok := a.Design.Mechanism.(market.ExPost); ok && mech.Deposit > 0 {
			dep = ledger.FromFloat(mech.Deposit)
		}
		if err := a.Ledger.Hold(rs.TxID, rs.Buyer, dep, "ex-post deposit (replay)"); err != nil {
			return err
		}
		tx.ExPost = true
		a.pendingExPost[rs.TxID] = &exPostState{tx: tx, deposit: dep, buyer: rs.Buyer}
	} else {
		price := ledger.FromFloat(rs.Price)
		if err := a.Ledger.Hold(rs.TxID, rs.Buyer, price, "purchase (replay)"); err != nil {
			return err
		}
		remaining := a.Ledger.Escrowed(rs.TxID)
		if err := a.Ledger.Release(rs.TxID, ArbiterAccount, remaining, "settlement"); err != nil {
			return err
		}
		sellers := make([]string, 0, len(rs.SellerCuts))
		for s := range rs.SellerCuts {
			sellers = append(sellers, s)
		}
		sort.Strings(sellers)
		for _, s := range sellers {
			amt := ledger.FromFloat(rs.SellerCuts[s])
			if amt <= 0 {
				continue
			}
			if err := a.Ledger.Transfer(ArbiterAccount, s, amt, "revenue share "+rs.TxID); err != nil {
				return err
			}
		}
		tx.ArbiterCut = rs.ArbiterCut
		for s, c := range rs.SellerCuts {
			tx.SellerCuts[s] = c
		}
	}

	a.issueLicenses(rs.Datasets, rs.Buyer, rs.Price)
	a.recordPurchase(rs.Buyer, rs.Datasets)
	a.history = append(a.history, tx)
	return nil
}
