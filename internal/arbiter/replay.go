package arbiter

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dod"
	"repro/internal/ledger"
	"repro/internal/market"
	"repro/internal/wtp"
)

// This file is the arbiter's durability seam: the hooks the engine's WAL
// replay (internal/engine, internal/wal) and the platform snapshot
// (internal/core) use to rebuild arbiter state without re-running the
// matching pipeline. Replay applies the *outcome* recorded in the event log —
// request filings under their original IDs and settlement transfers — so a
// restarted arbiter reaches the same requests, balances, licenses and
// history skeleton as the uninterrupted run.

// OpenRequestStates returns the open requests in filing order (unlike
// OpenRequests, which returns only IDs). The slice holds copies; the WTP
// pointers are shared (functions are immutable after submission).
func (a *Arbiter) OpenRequestStates() []Request {
	a.mu.Lock()
	defer a.mu.Unlock()
	open := a.openLocked()
	out := make([]Request, len(open))
	for i, r := range open {
		out[i] = *r
	}
	return out
}

// SharedIDs returns dataset IDs in share order — the order replays must
// re-ingest them so profile indexing is deterministic.
func (a *Arbiter) SharedIDs() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.shareOrder...)
}

// MetaFor returns the recorded metadata of a shared dataset.
func (a *Arbiter) MetaFor(id string) wtp.DatasetMeta {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.metas[id]
}

// PendingExPostCount reports how many delivered-but-unpaid ex-post
// transactions are outstanding. Their escrowed deposits travel in snapshots
// as PendingEscrows and clear when the buyer's value report settles.
func (a *Arbiter) PendingExPostCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pendingExPost)
}

// PendingEscrow is the durable form of one delivered-but-unreported ex-post
// transaction: the escrowed deposit and who funded it. Snapshots carry the
// pending set (core.PlatformSnapshot.PendingExPost) so a checkpoint taken
// while deposits are outstanding restores them exactly.
type PendingEscrow struct {
	TxID    string          `json:"tx_id"`
	Buyer   string          `json:"buyer"`
	Deposit ledger.Currency `json:"deposit"`
	// Shares are the delivery-time revenue fractions the report settles by
	// (see Transaction.ExPostShares).
	Shares map[string]float64 `json:"shares,omitempty"`
}

// PendingEscrows returns the pending ex-post set in TxID order for
// snapshots.
func (a *Arbiter) PendingEscrows() []PendingEscrow {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PendingEscrow, 0, len(a.pendingExPost))
	for txID, st := range a.pendingExPost {
		out = append(out, PendingEscrow{TxID: txID, Buyer: st.buyer, Deposit: st.deposit, Shares: st.fracs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TxID < out[j].TxID })
	if len(out) == 0 {
		return nil
	}
	return out
}

// RestorePendingEscrows re-seeds the pending ex-post set from a snapshot:
// the ledger escrow is recreated without debiting the buyer (snapshot
// balances were taken after the original Hold), and the pending entry is
// wired to the restored history transaction so a later report updates it in
// place. Call after RestoreHistory.
func (a *Arbiter) RestorePendingEscrows(pes []PendingEscrow) error {
	if len(pes) == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	byTx := make(map[string]*Transaction, len(a.history))
	for _, tx := range a.history {
		byTx[tx.ID] = tx
	}
	for _, pe := range pes {
		tx, ok := byTx[pe.TxID]
		if !ok {
			return fmt.Errorf("arbiter: pending escrow %s has no history transaction", pe.TxID)
		}
		if err := a.Ledger.RestoreEscrow(pe.TxID, pe.Buyer, pe.Deposit); err != nil {
			return fmt.Errorf("arbiter: restore escrow %s: %w", pe.TxID, err)
		}
		a.pendingExPost[pe.TxID] = &exPostState{tx: tx, deposit: pe.Deposit, buyer: pe.Buyer, fracs: pe.Shares}
	}
	return nil
}

// RngState reads the audit RNG for snapshots; RestoreRngState reinstates it
// so post-restore audit decisions match the uninterrupted run.
func (a *Arbiter) RngState() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rng
}

// RestoreRngState reinstates a snapshotted audit RNG. A zero state is
// ignored: xorshift64 never reaches zero from the nonzero seed, so zero
// only means the snapshot predates RNG capture.
func (a *Arbiter) RestoreRngState(s uint64) {
	if s == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rng = s
}

// ReplayNextID reads the request/transaction ID counter for snapshots.
func (a *Arbiter) ReplayNextID() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextID
}

// RestoreNextID raises the ID counter to at least n, so IDs assigned after a
// restore never collide with logged ones.
func (a *Arbiter) RestoreNextID(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.nextID {
		a.nextID = n
	}
}

// bumpNextID parses the numeric suffix of a logged ID ("req-0007",
// "tx-0012") and raises the counter past it. Caller holds a.mu.
func (a *Arbiter) bumpNextID(id string) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return
	}
	if n, err := strconv.Atoi(id[i+1:]); err == nil && n > a.nextID {
		a.nextID = n
	}
}

// RestoreRequest re-files a request under its original ID. Unlike
// SubmitRequest it does not assign a fresh ID: durable logs and snapshots
// record the ID the original filing got, and replay must reproduce it so
// settlements and tickets keep pointing at the right request.
func (a *Arbiter) RestoreRequest(id string, want dod.Want, f *wtp.Function) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if len(want.Columns) == 0 {
		return fmt.Errorf("arbiter: request has no wanted columns")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.reqByID[id] != nil {
		return fmt.Errorf("arbiter: request %q already filed", id)
	}
	a.bumpNextID(id)
	a.fileRequestLocked(&Request{ID: id, Want: want, WTP: f, Open: true})
	return nil
}

// ReplayedSettlement is the durable skeleton of one settled sale, as carried
// by a tx-settled event. It holds everything settle() moved through the
// ledger, but not the mashup itself — replayed history entries have a nil
// Mashup and Plan.
type ReplayedSettlement struct {
	TxID         string             `json:"tx_id"`
	RequestID    string             `json:"request_id,omitempty"`
	Buyer        string             `json:"buyer"`
	Price        float64            `json:"price"`
	ArbiterCut   float64            `json:"arbiter_cut,omitempty"`
	SellerCuts   map[string]float64 `json:"seller_cuts,omitempty"`
	Satisfaction float64            `json:"satisfaction,omitempty"`
	Datasets     []string           `json:"datasets,omitempty"`
	ExPost       bool               `json:"ex_post,omitempty"`
	// ExPostShares are the delivery-time revenue fractions (ex-post sales
	// only) the later report settles by; see Transaction.ExPostShares.
	ExPostShares map[string]float64 `json:"ex_post_shares,omitempty"`
}

// HistorySkeletons returns the completed-transaction history in its durable
// form (no mashup or plan) for snapshots.
func (a *Arbiter) HistorySkeletons() []ReplayedSettlement {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ReplayedSettlement, 0, len(a.history))
	for _, tx := range a.history {
		out = append(out, ReplayedSettlement{
			TxID:         tx.ID,
			RequestID:    tx.RequestID,
			Buyer:        tx.Buyer,
			Price:        tx.Price,
			ArbiterCut:   tx.ArbiterCut,
			SellerCuts:   tx.SellerCuts,
			Satisfaction: tx.Satisfaction,
			Datasets:     tx.Datasets,
			ExPost:       tx.ExPost,
			ExPostShares: tx.ExPostShares,
		})
	}
	return out
}

// RestoreHistory re-seeds the transaction history from snapshot skeletons.
// Purely archival: the ledger effects of these transactions are already in
// the snapshot's balances, so nothing is transferred. The ID counter is
// raised past every restored transaction.
func (a *Arbiter) RestoreHistory(skels []ReplayedSettlement) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, rs := range skels {
		a.bumpNextID(rs.TxID)
		cuts := map[string]float64{}
		for s, c := range rs.SellerCuts {
			cuts[s] = c
		}
		a.history = append(a.history, &Transaction{
			ID:           rs.TxID,
			RequestID:    rs.RequestID,
			Buyer:        rs.Buyer,
			Datasets:     append([]string(nil), rs.Datasets...),
			Satisfaction: rs.Satisfaction,
			Price:        rs.Price,
			ArbiterCut:   rs.ArbiterCut,
			SellerCuts:   cuts,
			ExPost:       rs.ExPost,
			ExPostShares: rs.ExPostShares,
		})
	}
}

// ReplaySettlement re-applies one settled sale from the durable event log:
// closes the request, repeats the escrow hold / release / revenue fan-out
// with the logged amounts (micro-unit identical to the original run),
// re-issues licenses and records the purchase. Ex-post sales re-escrow the
// deposit and return to the pending set with the logged delivery-time
// revenue fractions, so a later report splits exactly as the uninterrupted
// run would have.
func (a *Arbiter) ReplaySettlement(rs ReplayedSettlement) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.reqByID[rs.RequestID]; r != nil {
		r.Open = false
	}
	a.bumpNextID(rs.TxID)

	tx := &Transaction{
		ID:           rs.TxID,
		RequestID:    rs.RequestID,
		Buyer:        rs.Buyer,
		Datasets:     append([]string(nil), rs.Datasets...),
		Satisfaction: rs.Satisfaction,
		Price:        rs.Price,
		SellerCuts:   map[string]float64{},
	}

	if rs.ExPost {
		dep := ledger.FromFloat(rs.Price)
		if mech, ok := a.Design.Mechanism.(market.ExPost); ok && mech.Deposit > 0 {
			dep = ledger.FromFloat(mech.Deposit)
		}
		if err := a.Ledger.Hold(rs.TxID, rs.Buyer, dep, "ex-post deposit (replay)"); err != nil {
			return err
		}
		tx.ExPost = true
		tx.ExPostShares = rs.ExPostShares
		a.pendingExPost[rs.TxID] = &exPostState{tx: tx, deposit: dep, buyer: rs.Buyer, fracs: rs.ExPostShares}
	} else {
		price := ledger.FromFloat(rs.Price)
		if err := a.Ledger.Hold(rs.TxID, rs.Buyer, price, "purchase (replay)"); err != nil {
			return err
		}
		if err := a.paySplit(rs.TxID, a.Ledger.Escrowed(rs.TxID), rs.SellerCuts); err != nil {
			return err
		}
		tx.ArbiterCut = rs.ArbiterCut
		for s, c := range rs.SellerCuts {
			tx.SellerCuts[s] = c
		}
	}

	a.issueLicenses(rs.Datasets, rs.Buyer, rs.Price)
	a.recordPurchase(rs.Buyer, rs.Datasets)
	a.history = append(a.history, tx)
	return nil
}

// ReplayedReport is the durable skeleton of one ex-post report settlement,
// as carried by a value-reported event: the realized payment and revenue
// fan-out SettleReport moved through the ledger.
type ReplayedReport struct {
	TxID       string             `json:"tx_id"`
	Paid       float64            `json:"paid"`
	ArbiterCut float64            `json:"arbiter_cut,omitempty"`
	SellerCuts map[string]float64 `json:"seller_cuts,omitempty"`
}

// ReplayReport re-applies one report settlement from the durable event log:
// the escrow release and revenue fan-out repeat with the logged amounts
// (micro-unit identical to the original run — the audit is never re-run),
// the pending entry clears, and the audit RNG steps exactly once so live
// reports after the replayed prefix see the same audit schedule the
// uninterrupted run would have.
func (a *Arbiter) ReplayReport(rr ReplayedReport) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.pendingExPost[rr.TxID]
	if !ok {
		return fmt.Errorf("arbiter: no pending ex-post transaction %q", rr.TxID)
	}
	a.stepRNG()
	pay := ledger.FromFloat(rr.Paid)
	if err := a.paySplit(rr.TxID, pay, rr.SellerCuts); err != nil {
		return err
	}
	st.tx.Price = rr.Paid
	st.tx.ArbiterCut = rr.ArbiterCut
	cuts := make(map[string]float64, len(rr.SellerCuts))
	for s, c := range rr.SellerCuts {
		cuts[s] = c
	}
	st.tx.SellerCuts = cuts
	delete(a.pendingExPost, rr.TxID)
	return nil
}
