package arbiter

import (
	"time"

	"repro/internal/license"
	"repro/internal/wtp"
)

// metaNow builds a fresh DatasetMeta for a newly fetched dataset.
func metaNow(dataset string) wtp.DatasetMeta {
	return wtp.DatasetMeta{Dataset: dataset, UpdatedAt: time.Now(), HasProvenance: true}
}

// openTerms is the default open license.
func openTerms() license.Terms { return license.Terms{Kind: license.Open} }
