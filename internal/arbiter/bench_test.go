package arbiter

import (
	"fmt"
	"testing"

	"repro/internal/dod"
	"repro/internal/wtp"
)

// BenchmarkMatchRound measures round cost against the size of the *settled*
// request history. Before the open-request index (reqByID + openList) every
// round — MatchRound and MatchRoundFor alike — walked the full request
// history, so cost grew with lifetime volume; now it tracks the open set.
//
// Measured on a linux/amd64 Xeon @2.10GHz (go -benchtime 100x), four
// permanently open requests per round, MatchRound variant:
//
//	                 before (full-history scan)   after (open index)
//	history=0                2.4 µs/op                 1.5 µs/op
//	history=10000           13.7 µs/op                 1.6 µs/op
//	history=100000         363.0 µs/op                 3.4 µs/op
//
// (MatchRoundFor tracked the same curve: 355 µs -> 3.1 µs at 100k.)
// The old round cost ~O(open + settled); the new one tracks O(open).
func BenchmarkMatchRound(b *testing.B) {
	for _, hist := range []int{0, 10_000, 100_000} {
		b.Run(fmt.Sprintf("history=%d", hist), func(b *testing.B) {
			a, err := New(mkDesign())
			if err != nil {
				b.Fatal(err)
			}
			if err := a.RegisterParticipant("b1", 1e9); err != nil {
				b.Fatal(err)
			}
			fn := func() *wtp.Function {
				return &wtp.Function{
					Buyer: "b1",
					Task:  wtp.CoverageTask{Columns: []string{"never", "supplied"}, WantRows: 1},
					Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 10}},
				}
			}
			want := dod.Want{Columns: []string{"never", "supplied"}}
			for i := 0; i < hist; i++ {
				if _, err := a.SubmitRequest(want, fn()); err != nil {
					b.Fatal(err)
				}
			}
			// Settle the backlog without the ledger round trips: the bench
			// isolates round cost, not settlement cost.
			a.mu.Lock()
			for _, r := range a.openList {
				r.Open = false
			}
			a.mu.Unlock()
			// The live open set: four requests no supply will ever cover, so
			// every measured round sees the same state.
			var ids []string
			for i := 0; i < 4; i++ {
				id, err := a.SubmitRequest(want, fn())
				if err != nil {
					b.Fatal(err)
				}
				ids = append(ids, id)
			}
			b.Run("MatchRound", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := a.MatchRound(); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("MatchRoundFor", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := a.MatchRoundFor(ids); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
