// Package arbiter implements the Arbiter Management Platform (paper §4.1,
// Fig. 2), "the most complex of all DMMS's components: it builds mashups to
// match supply and demand, and it implements the five market design
// components". The pipeline per matching round:
//
//	Mashup Builder -> WTP-Evaluator -> Pricing Engine -> Transaction
//	Support -> Revenue Allocation Engine
//
// plus the arbiter services around it: demand signals for opportunistic
// sellers, dataset recommendations, and negotiation rounds that ask sellers
// for the information automatic integration lacks (§4.1, §5.4).
package arbiter

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/discovery"
	"repro/internal/dod"
	"repro/internal/index"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/provenance"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// ArbiterAccount is the ledger account collecting the arbiter's fees.
const ArbiterAccount = "arbiter"

// Request is one buyer's open data need: a target schema plus the
// WTP-function that prices satisfaction.
type Request struct {
	ID    string
	Want  dod.Want
	WTP   *wtp.Function
	Open  bool
	Round int
}

// Transaction records one completed sale — the transparency artifact buyers
// and sellers audit (paper §4.4).
type Transaction struct {
	ID           string
	RequestID    string
	Buyer        string
	Mashup       *relation.Relation
	Datasets     []string
	Plan         []string
	Satisfaction float64
	Price        float64
	ArbiterCut   float64
	SellerCuts   map[string]float64
	ExPost       bool
}

// Arbiter wires the catalog, metadata engine, index builder, DoD engine,
// market design, ledger and license manager into one platform.
type Arbiter struct {
	mu sync.Mutex

	Design   *market.Design
	Catalog  *catalog.Catalog
	Ledger   *ledger.Ledger
	Licenses *license.Manager
	// Policy, when set, gates every dataset→buyer flow through a
	// contextual-integrity check (internal/policy, paper §4.4). A nil
	// engine allows everything.
	Policy *policy.Engine

	ix   *index.Index
	disc *discovery.Engine
	dod  *dod.Engine

	metas map[string]wtp.DatasetMeta
	// shareOrder records dataset IDs in ingestion order; snapshot/restore
	// replays shares in this order so profile indexing is deterministic.
	shareOrder []string
	requests   []*Request
	history    []*Transaction
	// unmet tracks wanted columns no mashup could supply — the demand
	// signal opportunistic sellers mine (paper §7.1).
	unmet map[string]int
	// purchases feeds the recommendation service: buyer -> dataset -> count.
	purchases map[string]map[string]int
	// pendingExPost holds delivered-but-unpaid ex-post transactions.
	pendingExPost map[string]*exPostState

	nextID int
	rng    uint64
}

type exPostState struct {
	tx      *Transaction
	deposit ledger.Currency
	buyer   string
	anno    *provenance.Annotated
}

// New creates an arbiter running the given market design.
func New(design *market.Design) (*Arbiter, error) {
	if err := design.Validate(); err != nil {
		return nil, err
	}
	a := &Arbiter{
		Design:        design,
		Catalog:       catalog.New(),
		Ledger:        ledger.New(),
		Licenses:      license.NewManager(),
		ix:            index.Build(index.DefaultConfig(), nil),
		metas:         map[string]wtp.DatasetMeta{},
		unmet:         map[string]int{},
		purchases:     map[string]map[string]int{},
		pendingExPost: map[string]*exPostState{},
		rng:           0x9e3779b97f4a7c15,
	}
	a.disc = discovery.New(a.ix)
	a.dod = dod.New(a.Catalog, a.disc)
	if err := a.Ledger.Open(ArbiterAccount, 0); err != nil {
		return nil, err
	}
	return a, nil
}

// DoD exposes the dataset-on-demand engine (negotiation registers
// transforms through it).
func (a *Arbiter) DoD() *dod.Engine { return a.dod }

// Discovery exposes the discovery engine.
func (a *Arbiter) Discovery() *discovery.Engine { return a.disc }

// RegisterParticipant opens a ledger account with initial funds.
func (a *Arbiter) RegisterParticipant(name string, funds float64) error {
	return a.Ledger.Open(name, ledger.FromFloat(funds))
}

// ShareDataset ingests a seller's dataset: catalog registration, profiling,
// incremental indexing, metadata capture and license terms.
func (a *Arbiter) ShareDataset(seller string, id catalog.DatasetID, rel *relation.Relation,
	meta wtp.DatasetMeta, terms license.Terms) error {
	if err := a.Catalog.Register(id, seller, rel); err != nil {
		return err
	}
	if err := a.Licenses.SetTerms(string(id), terms); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	meta.Dataset = string(id)
	a.metas[string(id)] = meta
	a.shareOrder = append(a.shareOrder, string(id))
	a.ix.Add(profile.Profile(string(id), rel))
	a.Ledger.Note(fmt.Sprintf("dataset %s shared by %s (%d rows, license %s)", id, seller, rel.NumRows(), terms.Kind))
	return nil
}

// UpdateDataset records a new version and re-indexes.
func (a *Arbiter) UpdateDataset(id catalog.DatasetID, rel *relation.Relation, comment string) error {
	if _, err := a.Catalog.Update(id, rel, comment); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ix.Add(profile.Profile(string(id), rel))
	if m, ok := a.metas[string(id)]; ok {
		m.UpdatedAt = time.Now()
		a.metas[string(id)] = m
	}
	return nil
}

// SubmitRequest files a buyer's data need. The returned ID tracks it through
// matching rounds.
func (a *Arbiter) SubmitRequest(want dod.Want, f *wtp.Function) (string, error) {
	if err := f.Validate(); err != nil {
		return "", err
	}
	if len(want.Columns) == 0 {
		return "", fmt.Errorf("arbiter: request has no wanted columns")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	id := fmt.Sprintf("req-%04d", a.nextID)
	a.requests = append(a.requests, &Request{ID: id, Want: want, WTP: f, Open: true})
	return id, nil
}

// wantKey normalizes a Want so buyers with the same need share an auction.
func wantKey(w dod.Want) string {
	cols := append([]string(nil), w.Columns...)
	sort.Strings(cols)
	return strings.Join(cols, ",")
}

// MatchResult summarizes one matching round.
type MatchResult struct {
	Transactions []*Transaction
	Unsatisfied  []string // request IDs with no acceptable mashup
	// UnmetCols are this round's demand-signal increments: wanted columns no
	// mashup could supply, counted once per request group. MatchRound folds
	// them into the arbiter's demand signals itself; MatchRoundFor leaves
	// that to the caller (see AddUnmet).
	UnmetCols map[string]int
}

// MatchRound runs the full Fig. 2 pipeline over all open requests.
func (a *Arbiter) MatchRound() (*MatchResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	res := a.matchRoundLocked(nil)
	for c, n := range res.UnmetCols {
		a.unmet[c] += n
	}
	return res, nil
}

// MatchRoundFor runs the pipeline over the given open requests only, in the
// given order — the engine's matching-policy hook: a policy ranks the open
// requests, a per-epoch cap truncates them, and the surviving IDs are handed
// here. Unknown or closed IDs are skipped. Unlike MatchRound it does not
// fold res.UnmetCols into the demand signals: the engine commits them only
// when the round is actually counted (an aborted round leaves no trace, so
// WAL replay stays deterministic). A nil slice matches every open request in
// arrival order, exactly like MatchRound.
func (a *Arbiter) MatchRoundFor(ids []string) (*MatchResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ids == nil {
		return a.matchRoundLocked(nil), nil
	}
	// Index only open requests: the requests slice retains settled history,
	// and a per-round map over it would grow with lifetime volume.
	byID := map[string]*Request{}
	for _, r := range a.requests {
		if r.Open {
			byID[r.ID] = r
		}
	}
	pool := make([]*Request, 0, len(ids))
	for _, id := range ids {
		if r := byID[id]; r != nil {
			pool = append(pool, r)
		}
	}
	return a.matchRoundLocked(pool), nil
}

// AddUnmet folds a round's unmet-demand increments into the demand signals
// opportunistic sellers mine. The engine calls it when committing a counted
// epoch (live and on WAL replay, from the epoch-end record), so restored
// demand signals match the original run exactly.
func (a *Arbiter) AddUnmet(cols map[string]int) {
	if len(cols) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for c, n := range cols {
		a.unmet[c] += n
	}
}

// UnmetCounts returns a copy of the raw unmet-demand counters (the data
// behind DemandSignals) for snapshots.
func (a *Arbiter) UnmetCounts() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.unmet) == 0 {
		return nil
	}
	out := make(map[string]int, len(a.unmet))
	for c, n := range a.unmet {
		out[c] = n
	}
	return out
}

// matchRoundLocked runs one round over the given request pool (nil = every
// open request in arrival order). Unmet demand is accumulated into the
// result, not the arbiter. Caller holds a.mu.
func (a *Arbiter) matchRoundLocked(pool []*Request) *MatchResult {
	res := &MatchResult{UnmetCols: map[string]int{}}
	if pool == nil {
		for _, r := range a.requests {
			if r.Open {
				pool = append(pool, r)
			}
		}
	}

	groups := map[string][]*Request{}
	var order []string
	for _, r := range pool {
		if !r.Open {
			continue
		}
		k := wantKey(r.Want)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}

	for _, k := range order {
		reqs := groups[k]
		txs, unsat := a.matchGroup(reqs, res.UnmetCols)
		res.Transactions = append(res.Transactions, txs...)
		res.Unsatisfied = append(res.Unsatisfied, unsat...)
	}
	return res
}

// matchGroup auctions the best mashup for one group of identical wants.
// Unmet demand is accumulated into the caller's map.
func (a *Arbiter) matchGroup(reqs []*Request, unmet map[string]int) ([]*Transaction, []string) {
	want := reqs[0].Want
	cands, err := a.dod.Build(want)
	if err != nil {
		recordUnmet(unmet, want.Columns)
		return nil, requestIDs(reqs)
	}
	best := a.pickCandidate(cands, reqs)
	if best == nil {
		recordUnmet(unmet, want.Columns)
		return nil, requestIDs(reqs)
	}
	if best.Coverage < 1 {
		recordUnmetMissing(unmet, want.Columns, best.Rel().Schema)
	}

	// WTP-Evaluator: each buyer's offer for the chosen mashup. Bids are
	// keyed by request ID, not buyer name: a buyer may hold several open
	// requests for the same columns with different curves, and mechanisms
	// reorder sales, so only the request ID can map a sale back to the bid
	// that won it. Each request is one unit of demand in the auction.
	type offer struct {
		req *Request
		ev  wtp.Evaluation
	}
	offerByReq := map[string]*offer{}
	var bids []market.Bid
	sources := a.sourceMetas(best.Datasets)
	for _, r := range reqs {
		if !a.flowsAllowed(best.Datasets, r.WTP.Buyer, r.WTP.Purpose) {
			continue
		}
		ev := r.WTP.Evaluate(best.Rel(), sources)
		if ev.Rejected || ev.Offer <= 0 {
			continue
		}
		trueVal := ev.Offer
		if len(r.WTP.TrueValue) > 0 {
			trueVal = r.WTP.TrueValue.Price(ev.Satisfaction)
		}
		offerByReq[r.ID] = &offer{req: r, ev: ev}
		bids = append(bids, market.Bid{Buyer: r.ID, Offer: ev.Offer, True: trueVal})
	}
	if len(bids) == 0 {
		return nil, requestIDs(reqs)
	}

	// Pricing Engine: supply from licenses; mechanism from the design.
	supply := market.SupplyUnlimited
	for _, ds := range best.Datasets {
		if s := a.Licenses.TermsFor(ds).Supply(); s == 1 {
			supply = 1
		}
	}
	out := a.Design.Mechanism.Run(bids, supply)

	// Transaction Support + Revenue Allocation Engine.
	var txs []*Transaction
	satisfied := map[string]bool{}
	for _, sale := range out.Sales {
		o := offerByReq[sale.Buyer] // sale.Buyer carries the request ID
		if o == nil || !o.req.Open {
			continue
		}
		tx, err := a.settle(o.req, best, sale, o.ev)
		if err != nil {
			continue // e.g. insufficient funds; buyer drops out
		}
		txs = append(txs, tx)
		satisfied[o.req.ID] = true
		o.req.Open = false
	}
	var unsat []string
	for _, r := range reqs {
		if !satisfied[r.ID] && r.Open {
			unsat = append(unsat, r.ID)
		}
	}
	return txs, unsat
}

// pickCandidate chooses the mashup maximizing total offered value across the
// group (falls back to the DoD ranking when no offers arrive).
func (a *Arbiter) pickCandidate(cands []dod.Candidate, reqs []*Request) *dod.Candidate {
	bestIdx, bestVal := -1, -1.0
	for i := range cands {
		sources := a.sourceMetas(cands[i].Datasets)
		var total float64
		for _, r := range reqs {
			ev := r.WTP.Evaluate(cands[i].Rel(), sources)
			if !ev.Rejected {
				total += ev.Offer
			}
		}
		if total > bestVal {
			bestVal, bestIdx = total, i
		}
	}
	if bestIdx < 0 {
		return &cands[0]
	}
	return &cands[bestIdx]
}

// flowsAllowed runs the contextual-integrity check for every dataset flowing
// to the buyer; with no policy engine all flows pass.
func (a *Arbiter) flowsAllowed(datasets []string, buyerName, purpose string) bool {
	if a.Policy == nil {
		return true
	}
	for _, ds := range datasets {
		d := a.Policy.Check(policy.Flow{
			Dataset:  ds,
			Sender:   a.Catalog.Owner(catalog.DatasetID(ds)),
			Receiver: buyerName,
			Purpose:  policy.Purpose(purpose),
		})
		if !d.Allowed {
			return false
		}
	}
	return true
}

func (a *Arbiter) sourceMetas(datasets []string) []wtp.DatasetMeta {
	out := make([]wtp.DatasetMeta, 0, len(datasets))
	for _, ds := range datasets {
		if m, ok := a.metas[ds]; ok {
			out = append(out, m)
		} else {
			out = append(out, wtp.DatasetMeta{Dataset: ds})
		}
	}
	return out
}

// settle executes payment, licensing and revenue sharing for one sale. The
// sale's Buyer field carries the request ID (the auction's bid key); the
// paying account is the request's buyer.
func (a *Arbiter) settle(req *Request, cand *dod.Candidate, sale market.Sale, ev wtp.Evaluation) (*Transaction, error) {
	buyer := req.WTP.Buyer
	a.nextID++
	txID := fmt.Sprintf("tx-%04d", a.nextID)
	price := ledger.FromFloat(sale.Price)

	tx := &Transaction{
		ID:           txID,
		RequestID:    req.ID,
		Buyer:        buyer,
		Mashup:       cand.Rel(),
		Datasets:     cand.Datasets,
		Plan:         cand.Plan,
		Satisfaction: ev.Satisfaction,
		Price:        sale.Price,
		SellerCuts:   map[string]float64{},
	}

	if a.Design.Elicitation == market.ElicitExPost {
		// Deliver now against an escrowed deposit; settle on report.
		mech, _ := a.Design.Mechanism.(market.ExPost)
		dep := ledger.FromFloat(mech.Deposit)
		if dep == 0 {
			dep = price
		}
		if err := a.Ledger.Hold(txID, buyer, dep, "ex-post deposit"); err != nil {
			return nil, err
		}
		tx.ExPost = true
		a.pendingExPost[txID] = &exPostState{tx: tx, deposit: dep, buyer: buyer, anno: cand.Anno}
		a.recordPurchase(buyer, cand.Datasets)
		a.history = append(a.history, tx)
		a.issueLicenses(cand.Datasets, buyer, sale.Price)
		return tx, nil
	}

	if err := a.Ledger.Hold(txID, buyer, price, "purchase "+cand.Rel().Name); err != nil {
		return nil, err
	}
	owners := a.ownersOf(cand.Datasets)
	split := a.Design.ShareRevenue(sale.Price, cand.Anno, owners, nil)
	if err := a.paySplit(txID, split); err != nil {
		return nil, err
	}
	tx.ArbiterCut = split.ArbiterCut
	tx.SellerCuts = split.SellerCut
	a.issueLicenses(cand.Datasets, buyer, sale.Price)
	a.recordPurchase(buyer, cand.Datasets)
	a.history = append(a.history, tx)
	a.Ledger.Note(fmt.Sprintf("%s: %s bought %s for %.2f (satisfaction %.2f)",
		txID, buyer, cand.Rel().Name, sale.Price, ev.Satisfaction))
	return tx, nil
}

// paySplit settles an escrow: the full escrow is released to the arbiter
// account, which then fans the seller cuts out. The arbiter's fee is what
// remains after the fan-out.
func (a *Arbiter) paySplit(escrowID string, split market.RevenueSplit) error {
	remaining := a.Ledger.Escrowed(escrowID)
	if err := a.Ledger.Release(escrowID, ArbiterAccount, remaining, "settlement"); err != nil {
		return err
	}
	for _, s := range market.SortedPlayers(split.SellerCut) {
		amt := ledger.FromFloat(split.SellerCut[s])
		if amt <= 0 {
			continue
		}
		if err := a.Ledger.Transfer(ArbiterAccount, s, amt, "revenue share "+escrowID); err != nil {
			return err
		}
	}
	return nil
}

func (a *Arbiter) ownersOf(datasets []string) map[string]string {
	out := map[string]string{}
	for _, ds := range datasets {
		out[ds] = a.Catalog.Owner(catalog.DatasetID(ds))
	}
	return out
}

func (a *Arbiter) issueLicenses(datasets []string, buyer string, price float64) {
	for _, ds := range datasets {
		if g, err := a.Licenses.Issue(ds, buyer, price); err == nil {
			_ = g
		}
	}
}

func (a *Arbiter) recordPurchase(buyer string, datasets []string) {
	if a.purchases[buyer] == nil {
		a.purchases[buyer] = map[string]int{}
	}
	for _, ds := range datasets {
		a.purchases[buyer][ds]++
	}
}

func recordUnmet(unmet map[string]int, cols []string) {
	for _, c := range cols {
		unmet[c]++
	}
}

func recordUnmetMissing(unmet map[string]int, wanted []string, got relation.Schema) {
	for _, c := range wanted {
		if !got.Has(c) {
			unmet[c]++
		}
	}
}

// ReportValue settles a pending ex-post transaction with the buyer's
// reported value (paper §3.2.2.2). The arbiter audits with the mechanism's
// probability (deterministic pseudo-randomness keyed by transaction);
// audited under-reports pay the shortfall plus penalty.
func (a *Arbiter) ReportValue(txID string, reported, trueValue float64) (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.pendingExPost[txID]
	if !ok {
		return 0, fmt.Errorf("arbiter: no pending ex-post transaction %q", txID)
	}
	mech, _ := a.Design.Mechanism.(market.ExPost)
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	audited := float64(a.rng%10000)/10000 < mech.AuditProb
	outs, _ := mech.RunAudited(
		[]market.Bid{{Buyer: st.buyer, Offer: reported, True: trueValue}},
		func(int) bool { return audited })
	pay := ledger.FromFloat(outs[0].Sale.Price)
	if pay > st.deposit {
		pay = st.deposit
	}
	if err := a.Ledger.Release(txID, ArbiterAccount, pay, "ex-post settlement"); err != nil {
		return 0, err
	}
	owners := a.ownersOf(st.tx.Datasets)
	split := a.Design.ShareRevenue(pay.Float(), st.anno, owners, nil)
	for _, s := range market.SortedPlayers(split.SellerCut) {
		amt := ledger.FromFloat(split.SellerCut[s])
		if amt <= 0 {
			continue
		}
		if err := a.Ledger.Transfer(ArbiterAccount, s, amt, "ex-post share "+txID); err != nil {
			return 0, err
		}
	}
	st.tx.Price = pay.Float()
	st.tx.ArbiterCut = split.ArbiterCut
	st.tx.SellerCuts = split.SellerCut
	delete(a.pendingExPost, txID)
	return pay.Float(), nil
}

// History returns completed transactions.
func (a *Arbiter) History() []*Transaction {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Transaction, len(a.history))
	copy(out, a.history)
	return out
}

// OpenRequests returns the IDs of unmatched requests.
func (a *Arbiter) OpenRequests() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for _, r := range a.requests {
		if r.Open {
			out = append(out, r.ID)
		}
	}
	return out
}

func requestIDs(reqs []*Request) []string {
	out := make([]string, len(reqs))
	for i, r := range reqs {
		out[i] = r.ID
	}
	return out
}
