// Package arbiter implements the Arbiter Management Platform (paper §4.1,
// Fig. 2), "the most complex of all DMMS's components: it builds mashups to
// match supply and demand, and it implements the five market design
// components". The pipeline per matching round:
//
//	Mashup Builder -> WTP-Evaluator -> Pricing Engine -> Transaction
//	Support -> Revenue Allocation Engine
//
// plus the arbiter services around it: demand signals for opportunistic
// sellers, dataset recommendations, and negotiation rounds that ask sellers
// for the information automatic integration lacks (§4.1, §5.4).
package arbiter

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/discovery"
	"repro/internal/dod"
	"repro/internal/index"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// ArbiterAccount is the ledger account collecting the arbiter's fees.
const ArbiterAccount = "arbiter"

// Request is one buyer's open data need: a target schema plus the
// WTP-function that prices satisfaction.
type Request struct {
	ID    string
	Want  dod.Want
	WTP   *wtp.Function
	Open  bool
	Round int
}

// Transaction records one completed sale — the transparency artifact buyers
// and sellers audit (paper §4.4).
type Transaction struct {
	ID           string
	RequestID    string
	Buyer        string
	Mashup       *relation.Relation
	Datasets     []string
	Plan         []string
	Satisfaction float64
	Price        float64
	ArbiterCut   float64
	SellerCuts   map[string]float64
	ExPost       bool
	// ExPostShares are the per-owner revenue fractions fixed at delivery
	// time from the mashup's provenance (ex-post sales only). The buyer's
	// later report settles by these, live and on WAL replay alike, so the
	// split never depends on in-memory provenance that a restart loses.
	ExPostShares map[string]float64
}

// Arbiter wires the catalog, metadata engine, index builder, DoD engine,
// market design, ledger and license manager into one platform.
type Arbiter struct {
	mu sync.Mutex

	Design   *market.Design
	Catalog  *catalog.Catalog
	Ledger   *ledger.Ledger
	Licenses *license.Manager
	// Policy, when set, gates every dataset→buyer flow through a
	// contextual-integrity check (internal/policy, paper §4.4). A nil
	// engine allows everything.
	Policy *policy.Engine

	ix   *index.Index
	disc *discovery.Engine
	dod  *dod.Engine

	metas map[string]wtp.DatasetMeta
	// shareOrder records dataset IDs in ingestion order; snapshot/restore
	// replays shares in this order so profile indexing is deterministic.
	shareOrder []string
	// reqByID indexes every request ever filed (settled included) for O(1)
	// ID lookups and duplicate checks; openList holds the open ones in
	// filing order, compacted lazily, so per-round cost tracks the open set
	// instead of the full request history.
	reqByID  map[string]*Request
	openList []*Request
	history  []*Transaction
	// unmet tracks wanted columns no mashup could supply — the demand
	// signal opportunistic sellers mine (paper §7.1).
	unmet map[string]int
	// purchases feeds the recommendation service: buyer -> dataset -> count.
	purchases map[string]map[string]int
	// pendingExPost holds delivered-but-unpaid ex-post transactions.
	pendingExPost map[string]*exPostState

	nextID int
	rng    uint64
}

// exPostState tracks one delivered-but-unreported ex-post sale. fracs are
// the owner revenue fractions fixed at delivery (see Transaction.
// ExPostShares); they are durable (tx-settled events and snapshots carry
// them), so report settlement is identical before and after a restart.
type exPostState struct {
	tx      *Transaction
	deposit ledger.Currency
	buyer   string
	fracs   map[string]float64
}

// New creates an arbiter running the given market design.
func New(design *market.Design) (*Arbiter, error) {
	if err := design.Validate(); err != nil {
		return nil, err
	}
	a := &Arbiter{
		Design:        design,
		Catalog:       catalog.New(),
		Ledger:        ledger.New(),
		Licenses:      license.NewManager(),
		ix:            index.Build(index.DefaultConfig(), nil),
		metas:         map[string]wtp.DatasetMeta{},
		reqByID:       map[string]*Request{},
		unmet:         map[string]int{},
		purchases:     map[string]map[string]int{},
		pendingExPost: map[string]*exPostState{},
		rng:           0x9e3779b97f4a7c15,
	}
	a.disc = discovery.New(a.ix)
	a.dod = dod.New(a.Catalog, a.disc)
	if err := a.Ledger.Open(ArbiterAccount, 0); err != nil {
		return nil, err
	}
	return a, nil
}

// DoD exposes the dataset-on-demand engine (negotiation registers
// transforms through it).
func (a *Arbiter) DoD() *dod.Engine { return a.dod }

// Discovery exposes the discovery engine.
func (a *Arbiter) Discovery() *discovery.Engine { return a.disc }

// RegisterParticipant opens a ledger account with initial funds.
func (a *Arbiter) RegisterParticipant(name string, funds float64) error {
	return a.Ledger.Open(name, ledger.FromFloat(funds))
}

// ShareDataset ingests a seller's dataset: catalog registration, profiling,
// incremental indexing, metadata capture and license terms.
func (a *Arbiter) ShareDataset(seller string, id catalog.DatasetID, rel *relation.Relation,
	meta wtp.DatasetMeta, terms license.Terms) error {
	if err := a.Catalog.Register(id, seller, rel); err != nil {
		return err
	}
	if err := a.Licenses.SetTerms(string(id), terms); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	meta.Dataset = string(id)
	a.metas[string(id)] = meta
	a.shareOrder = append(a.shareOrder, string(id))
	// Index through the DoD engine's mutation seam: worker-goroutine builds
	// never see a half-indexed dataset, and the catalog version bump marks
	// every cached candidate set stale.
	a.dod.MutateCatalog(func() bool {
		a.ix.Add(profile.Profile(string(id), rel))
		return true
	})
	a.Ledger.Note(fmt.Sprintf("dataset %s shared by %s (%d rows, license %s)", id, seller, rel.NumRows(), terms.Kind))
	return nil
}

// UpdateDataset records a new version and re-indexes.
func (a *Arbiter) UpdateDataset(id catalog.DatasetID, rel *relation.Relation, comment string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Both the catalog content swap and the re-index happen inside the
	// build/mutate seam: an in-flight build can never read the new rows
	// through the old index (or under the old version stamp), and the
	// version bump inside MutateCatalog is what keeps a prebuilt mashup of
	// the old version from ever settling — price-time validity checks
	// compare against the bumped version and rebuild.
	var uerr error
	a.dod.MutateCatalog(func() bool {
		if _, uerr = a.Catalog.Update(id, rel, comment); uerr != nil {
			return false // nothing applied; keep the cache warm
		}
		a.ix.Add(profile.Profile(string(id), rel))
		return true
	})
	if uerr != nil {
		return uerr
	}
	if m, ok := a.metas[string(id)]; ok {
		m.UpdatedAt = time.Now()
		a.metas[string(id)] = m
	}
	return nil
}

// SubmitRequest files a buyer's data need. The returned ID tracks it through
// matching rounds.
func (a *Arbiter) SubmitRequest(want dod.Want, f *wtp.Function) (string, error) {
	if err := f.Validate(); err != nil {
		return "", err
	}
	if len(want.Columns) == 0 {
		return "", fmt.Errorf("arbiter: request has no wanted columns")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	id := fmt.Sprintf("req-%04d", a.nextID)
	a.fileRequestLocked(&Request{ID: id, Want: want, WTP: f, Open: true})
	return id, nil
}

// fileRequestLocked indexes a newly filed request. Caller holds a.mu.
func (a *Arbiter) fileRequestLocked(r *Request) {
	a.reqByID[r.ID] = r
	a.openList = append(a.openList, r)
}

// openLocked compacts settled requests out of openList and returns the open
// requests in filing order. Caller holds a.mu. Compaction keeps the slice
// proportional to the open set, so every matching round — MatchRound and
// MatchRoundFor alike — costs O(open), not O(lifetime requests).
func (a *Arbiter) openLocked() []*Request {
	kept := a.openList[:0]
	for _, r := range a.openList {
		if r.Open {
			kept = append(kept, r)
		}
	}
	// Release the dropped tail so settled requests do not pin memory.
	for i := len(kept); i < len(a.openList); i++ {
		a.openList[i] = nil
	}
	a.openList = kept
	return kept
}

// wantKey normalizes a Want so buyers with the same need share an auction.
// The same key addresses the DoD engine's candidate cache, so a prebuilt
// CandidateSet maps straight onto the group that will price it.
func wantKey(w dod.Want) string { return w.Key() }

// MatchResult summarizes one matching round.
type MatchResult struct {
	Transactions []*Transaction
	Unsatisfied  []string // request IDs with no acceptable mashup
	// UnmetCols are this round's demand-signal increments: wanted columns no
	// mashup could supply, counted once per request group. MatchRound folds
	// them into the arbiter's demand signals itself; MatchRoundFor leaves
	// that to the caller (see AddUnmet).
	UnmetCols map[string]int
}

// MatchRound runs the full Fig. 2 pipeline over all open requests, building
// mashups inline (through the candidate cache).
func (a *Arbiter) MatchRound() (*MatchResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	res := a.matchRoundLocked(context.Background(), nil, nil)
	for c, n := range res.UnmetCols {
		a.unmet[c] += n
	}
	return res, nil
}

// MatchRoundFor runs the pipeline over the given open requests only, in the
// given order — the engine's matching-policy hook: a policy ranks the open
// requests, a per-epoch cap truncates them, and the surviving IDs are handed
// here. Unknown or closed IDs are skipped. Unlike MatchRound it does not
// fold res.UnmetCols into the demand signals: the engine commits them only
// when the round is actually counted (an aborted round leaves no trace, so
// WAL replay stays deterministic). A nil slice matches every open request in
// arrival order, exactly like MatchRound. Mashups are built inline; the
// pipelined engine hands pre-built candidates to PriceRound instead.
func (a *Arbiter) MatchRoundFor(ids []string) (*MatchResult, error) {
	return a.PriceRound(context.Background(), ids, nil)
}

// PriceRound is the price stage of the split Fig. 2 pipeline: it runs the
// matching round over the given open requests (nil = all, in arrival order)
// but lets each want group consume a pre-built CandidateSet from the map
// (keyed by Want.Key()) instead of building inline. A handed set is used
// only while it is still valid — built from the identical want at the
// current catalog version; anything stale, foreign or absent falls back to a
// (cache-aware) inline build, so a dataset updated between build and price
// can never settle against its pre-update mashup. ctx bounds any inline
// rebuild a stale or missing prebuilt set forces (the DoD build deadline
// applies on top), so one wedged group cannot stall the whole round.
func (a *Arbiter) PriceRound(ctx context.Context, ids []string, prebuilt map[string]*dod.CandidateSet) (*MatchResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ids == nil {
		return a.matchRoundLocked(ctx, nil, prebuilt), nil
	}
	pool := make([]*Request, 0, len(ids))
	for _, id := range ids {
		if r := a.reqByID[id]; r != nil && r.Open {
			pool = append(pool, r)
		}
	}
	return a.matchRoundLocked(ctx, pool, prebuilt), nil
}

// OpenWantGroups is the build stage's work list: the distinct want groups of
// the given open requests (nil = every open request), one representative
// Want per group key in pool order — exactly the wants the matching round
// over the same ids would build. The engine's builder pool fans these out to
// workers before PriceRound runs.
func (a *Arbiter) OpenWantGroups(ids []string) []dod.Want {
	a.mu.Lock()
	defer a.mu.Unlock()
	var pool []*Request
	if ids == nil {
		pool = a.openLocked()
	} else {
		pool = make([]*Request, 0, len(ids))
		for _, id := range ids {
			if r := a.reqByID[id]; r != nil && r.Open {
				pool = append(pool, r)
			}
		}
	}
	seen := map[string]bool{}
	var wants []dod.Want
	for _, r := range pool {
		k := wantKey(r.Want)
		if !seen[k] {
			seen[k] = true
			wants = append(wants, r.Want)
		}
	}
	return wants
}

// BuildFor builds (through the versioned candidate cache) the mashup
// candidates for one want. It deliberately does not take the arbiter lock:
// builds from many worker goroutines run concurrently with each other and
// with intake, serialized only against catalog mutations inside the DoD
// engine. ctx cancels or bounds the build (the configured build deadline
// applies on top); an abandoned build resolves to a failed CandidateSet.
func (a *Arbiter) BuildFor(ctx context.Context, want dod.Want) *dod.CandidateSet {
	return a.dod.BuildCached(ctx, want)
}

// AddUnmet folds a round's unmet-demand increments into the demand signals
// opportunistic sellers mine. The engine calls it when committing a counted
// epoch (live and on WAL replay, from the epoch-end record), so restored
// demand signals match the original run exactly.
func (a *Arbiter) AddUnmet(cols map[string]int) {
	if len(cols) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for c, n := range cols {
		a.unmet[c] += n
	}
}

// UnmetCounts returns a copy of the raw unmet-demand counters (the data
// behind DemandSignals) for snapshots.
func (a *Arbiter) UnmetCounts() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.unmet) == 0 {
		return nil
	}
	out := make(map[string]int, len(a.unmet))
	for c, n := range a.unmet {
		out[c] = n
	}
	return out
}

// matchRoundLocked runs one round over the given request pool (nil = every
// open request in arrival order), pricing prebuilt candidate sets where a
// valid one is supplied. Unmet demand is accumulated into the result, not
// the arbiter. Caller holds a.mu.
func (a *Arbiter) matchRoundLocked(ctx context.Context, pool []*Request, prebuilt map[string]*dod.CandidateSet) *MatchResult {
	res := &MatchResult{UnmetCols: map[string]int{}}
	if pool == nil {
		pool = a.openLocked()
	}

	groups := map[string][]*Request{}
	var order []string
	for _, r := range pool {
		if !r.Open {
			continue
		}
		k := wantKey(r.Want)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}

	// One coalition-value memo per pricing round: the requests of a round
	// overlap in mashup structure, so v(S) evaluations cache across every
	// allocation priced this round (scoped by game — see gameKey).
	memo := market.NewRoundMemo()
	for _, k := range order {
		reqs := groups[k]
		txs, unsat := a.matchGroup(ctx, reqs, res.UnmetCols, prebuilt[k], memo)
		res.Transactions = append(res.Transactions, txs...)
		res.Unsatisfied = append(res.Unsatisfied, unsat...)
	}
	return res
}

// gameKey identifies one candidate's coalition game within a pricing round:
// same datasets, same plan, same result cardinality means the same
// characteristic function (the catalog version is fixed for the round), so
// their coalition values may share a memo. Distinct games must not — their
// value functions differ.
func gameKey(cand *dod.Candidate) string {
	return strings.Join(cand.Datasets, "\x1f") + "\x1e" +
		strings.Join(cand.Plan, ";") + "\x1e" +
		strconv.Itoa(cand.Rel().NumRows())
}

// matchGroup auctions the best mashup for one group of identical wants. A
// handed pre-built CandidateSet is priced only after the version check
// re-validates it against the live catalog; otherwise the group builds
// inline through the cache. A deadline-failed prebuilt set passes the check
// (it is stamped with the current version) and prices as a failed build —
// the group goes unsatisfied this round and retries the next, instead of
// re-running the wedged search inline. Unmet demand is accumulated into the
// caller's map.
func (a *Arbiter) matchGroup(ctx context.Context, reqs []*Request, unmet map[string]int, cs *dod.CandidateSet, memo *market.RoundMemo) ([]*Transaction, []string) {
	want := reqs[0].Want
	if !a.dod.Valid(cs, want) {
		// Stale (a ShareDataset/UpdateDataset/RegisterTransform bumped the
		// catalog since the build), foreign or missing: rebuild at the
		// current version. BuildCached counts the stale/miss.
		cs = a.dod.BuildCached(ctx, want)
	}
	cands := cs.Candidates
	if len(cands) == 0 {
		recordUnmet(unmet, want.Columns)
		return nil, requestIDs(reqs)
	}
	best := a.pickCandidate(cands, reqs)
	if best == nil {
		recordUnmet(unmet, want.Columns)
		return nil, requestIDs(reqs)
	}
	if best.Coverage < 1 {
		recordUnmetMissing(unmet, want.Columns, best.Rel().Schema)
	}

	// WTP-Evaluator: each buyer's offer for the chosen mashup. Bids are
	// keyed by request ID, not buyer name: a buyer may hold several open
	// requests for the same columns with different curves, and mechanisms
	// reorder sales, so only the request ID can map a sale back to the bid
	// that won it. Each request is one unit of demand in the auction.
	type offer struct {
		req *Request
		ev  wtp.Evaluation
	}
	offerByReq := map[string]*offer{}
	var bids []market.Bid
	sources := a.sourceMetas(best.Datasets)
	for _, r := range reqs {
		if !a.flowsAllowed(best.Datasets, r.WTP.Buyer, r.WTP.Purpose) {
			continue
		}
		ev := r.WTP.Evaluate(best.Rel(), sources)
		if ev.Rejected || ev.Offer <= 0 {
			continue
		}
		trueVal := ev.Offer
		if len(r.WTP.TrueValue) > 0 {
			trueVal = r.WTP.TrueValue.Price(ev.Satisfaction)
		}
		offerByReq[r.ID] = &offer{req: r, ev: ev}
		bids = append(bids, market.Bid{Buyer: r.ID, Offer: ev.Offer, True: trueVal})
	}
	if len(bids) == 0 {
		return nil, requestIDs(reqs)
	}

	// Pricing Engine: supply from licenses; mechanism from the design.
	supply := market.SupplyUnlimited
	for _, ds := range best.Datasets {
		if s := a.Licenses.TermsFor(ds).Supply(); s == 1 {
			supply = 1
		}
	}
	out := a.Design.Mechanism.Run(bids, supply)

	// Transaction Support + Revenue Allocation Engine.
	var txs []*Transaction
	satisfied := map[string]bool{}
	for _, sale := range out.Sales {
		o := offerByReq[sale.Buyer] // sale.Buyer carries the request ID
		if o == nil || !o.req.Open {
			continue
		}
		tx, err := a.settle(o.req, best, sale, o.ev, memo)
		if err != nil {
			continue // e.g. insufficient funds; buyer drops out
		}
		txs = append(txs, tx)
		satisfied[o.req.ID] = true
		o.req.Open = false
	}
	var unsat []string
	for _, r := range reqs {
		if !satisfied[r.ID] && r.Open {
			unsat = append(unsat, r.ID)
		}
	}
	return txs, unsat
}

// pickCandidate chooses the mashup maximizing total offered value across the
// group (falls back to the DoD ranking when no offers arrive).
func (a *Arbiter) pickCandidate(cands []dod.Candidate, reqs []*Request) *dod.Candidate {
	bestIdx, bestVal := -1, -1.0
	for i := range cands {
		sources := a.sourceMetas(cands[i].Datasets)
		var total float64
		for _, r := range reqs {
			ev := r.WTP.Evaluate(cands[i].Rel(), sources)
			if !ev.Rejected {
				total += ev.Offer
			}
		}
		if total > bestVal {
			bestVal, bestIdx = total, i
		}
	}
	if bestIdx < 0 {
		return &cands[0]
	}
	return &cands[bestIdx]
}

// flowsAllowed runs the contextual-integrity check for every dataset flowing
// to the buyer; with no policy engine all flows pass.
func (a *Arbiter) flowsAllowed(datasets []string, buyerName, purpose string) bool {
	if a.Policy == nil {
		return true
	}
	for _, ds := range datasets {
		d := a.Policy.Check(policy.Flow{
			Dataset:  ds,
			Sender:   a.Catalog.Owner(catalog.DatasetID(ds)),
			Receiver: buyerName,
			Purpose:  policy.Purpose(purpose),
		})
		if !d.Allowed {
			return false
		}
	}
	return true
}

func (a *Arbiter) sourceMetas(datasets []string) []wtp.DatasetMeta {
	out := make([]wtp.DatasetMeta, 0, len(datasets))
	for _, ds := range datasets {
		if m, ok := a.metas[ds]; ok {
			out = append(out, m)
		} else {
			out = append(out, wtp.DatasetMeta{Dataset: ds})
		}
	}
	return out
}

// settle executes payment, licensing and revenue sharing for one sale. The
// sale's Buyer field carries the request ID (the auction's bid key); the
// paying account is the request's buyer.
func (a *Arbiter) settle(req *Request, cand *dod.Candidate, sale market.Sale, ev wtp.Evaluation, memo *market.RoundMemo) (*Transaction, error) {
	buyer := req.WTP.Buyer
	a.nextID++
	txID := fmt.Sprintf("tx-%04d", a.nextID)
	price := ledger.FromFloat(sale.Price)

	// The allocation context: a sampler seed derived from the settlement
	// identity — txIDs are assigned deterministically, so crash/replay and
	// redrive re-derive the same seed and the same sampled split — plus this
	// round's coalition-value memo scoped to this candidate's game. Only
	// seed-independent v(S) values are shared across settlements; each sale
	// still samples its own permutations.
	actx := market.AllocContext{Seed: market.SeedFromID(txID), Memo: memo.Game(gameKey(cand))}

	tx := &Transaction{
		ID:           txID,
		RequestID:    req.ID,
		Buyer:        buyer,
		Mashup:       cand.Rel(),
		Datasets:     cand.Datasets,
		Plan:         cand.Plan,
		Satisfaction: ev.Satisfaction,
		Price:        sale.Price,
		SellerCuts:   map[string]float64{},
	}

	if a.Design.Elicitation == market.ElicitExPost {
		// Deliver now against an escrowed deposit; settle on report. The
		// revenue fractions are fixed here, while the mashup's provenance
		// is in hand, and travel on the tx-settled event and in snapshots.
		mech, _ := a.Design.Mechanism.(market.ExPost)
		dep := ledger.FromFloat(mech.Deposit)
		if dep == 0 {
			dep = price
		}
		if err := a.Ledger.Hold(txID, buyer, dep, "ex-post deposit"); err != nil {
			return nil, err
		}
		tx.ExPost = true
		tx.ExPostShares = a.Design.RevenueFractionsCtx(cand.Anno, a.ownersOf(cand.Datasets), nil, actx)
		a.pendingExPost[txID] = &exPostState{tx: tx, deposit: dep, buyer: buyer, fracs: tx.ExPostShares}
		a.recordPurchase(buyer, cand.Datasets)
		a.history = append(a.history, tx)
		a.issueLicenses(cand.Datasets, buyer, sale.Price)
		return tx, nil
	}

	if err := a.Ledger.Hold(txID, buyer, price, "purchase "+cand.Rel().Name); err != nil {
		return nil, err
	}
	owners := a.ownersOf(cand.Datasets)
	split := a.Design.ShareRevenueCtx(sale.Price, cand.Anno, owners, nil, actx)
	if err := a.paySplit(txID, a.Ledger.Escrowed(txID), split.SellerCut); err != nil {
		return nil, err
	}
	tx.ArbiterCut = split.ArbiterCut
	tx.SellerCuts = split.SellerCut
	a.issueLicenses(cand.Datasets, buyer, sale.Price)
	a.recordPurchase(buyer, cand.Datasets)
	a.history = append(a.history, tx)
	a.Ledger.Note(fmt.Sprintf("%s: %s bought %s for %.2f (satisfaction %.2f)",
		txID, buyer, cand.Rel().Name, sale.Price, ev.Satisfaction))
	return tx, nil
}

// paySplit settles an escrow: `pay` of the held amount is released to the
// arbiter account (the ledger refunds the remainder to the funder), which
// then fans the seller cuts out. The arbiter's fee is what remains after
// the fan-out. Up-front settlements pass the full escrow; ex-post report
// settlement — live and on WAL replay — passes the reported amount capped
// by the deposit. Conservation is asserted up front: the seller cuts must
// never exceed the released amount, or the fan-out would silently drain the
// arbiter's own fee account — a broken split fails the settlement before any
// money moves.
func (a *Arbiter) paySplit(escrowID string, pay ledger.Currency, sellerCuts map[string]float64) error {
	var cutSum ledger.Currency
	for _, s := range market.SortedPlayers(sellerCuts) {
		if amt := ledger.FromFloat(sellerCuts[s]); amt > 0 {
			cutSum += amt
		}
	}
	if cutSum > pay {
		return fmt.Errorf("arbiter: revenue split over-allocates escrow %s: seller cuts %v exceed released %v",
			escrowID, cutSum, pay)
	}
	if err := a.Ledger.Release(escrowID, ArbiterAccount, pay, "settlement"); err != nil {
		return err
	}
	for _, s := range market.SortedPlayers(sellerCuts) {
		amt := ledger.FromFloat(sellerCuts[s])
		if amt <= 0 {
			continue
		}
		if err := a.Ledger.Transfer(ArbiterAccount, s, amt, "revenue share "+escrowID); err != nil {
			return err
		}
	}
	return nil
}

func (a *Arbiter) ownersOf(datasets []string) map[string]string {
	out := map[string]string{}
	for _, ds := range datasets {
		out[ds] = a.Catalog.Owner(catalog.DatasetID(ds))
	}
	return out
}

func (a *Arbiter) issueLicenses(datasets []string, buyer string, price float64) {
	for _, ds := range datasets {
		if g, err := a.Licenses.Issue(ds, buyer, price); err == nil {
			_ = g
		}
	}
}

func (a *Arbiter) recordPurchase(buyer string, datasets []string) {
	if a.purchases[buyer] == nil {
		a.purchases[buyer] = map[string]int{}
	}
	for _, ds := range datasets {
		a.purchases[buyer][ds]++
	}
}

func recordUnmet(unmet map[string]int, cols []string) {
	for _, c := range cols {
		unmet[c]++
	}
}

func recordUnmetMissing(unmet map[string]int, wanted []string, got relation.Schema) {
	for _, c := range wanted {
		if !got.Has(c) {
			unmet[c]++
		}
	}
}

// stepRNG advances the arbiter's deterministic audit RNG (xorshift64) one
// step and returns the new state. Only report settlement consumes it, live
// and on replay alike, so the state is a pure function of how many reports
// have settled — snapshots carry it (core.PlatformSnapshot.Rng) and replay
// re-steps it, keeping post-restore audit decisions identical to an
// uninterrupted run. Caller holds a.mu.
func (a *Arbiter) stepRNG() uint64 {
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	return a.rng
}

// ReportOutcome is the durable outcome of one ex-post report settlement —
// everything the engine logs on a value-reported event so WAL replay can
// reproduce the transfers micro-unit exactly without re-running the audit.
type ReportOutcome struct {
	TxID       string
	RequestID  string
	Buyer      string
	Paid       float64
	Audited    bool
	ArbiterCut float64
	SellerCuts map[string]float64
}

// ReportValue settles a pending ex-post transaction with the buyer's
// reported value (paper §3.2.2.2), returning the amount paid. See
// SettleReport for the full outcome.
func (a *Arbiter) ReportValue(txID string, reported, trueValue float64) (float64, error) {
	out, err := a.SettleReport(txID, reported, trueValue)
	return out.Paid, err
}

// SettleReport settles a pending ex-post transaction with the buyer's
// reported value. The arbiter audits with the mechanism's probability
// (deterministic pseudo-randomness keyed by report order); audited
// under-reports pay the shortfall plus penalty, capped by the escrowed
// deposit. The returned outcome carries the realized transfers for the
// engine's value-reported event-log record.
func (a *Arbiter) SettleReport(txID string, reported, trueValue float64) (ReportOutcome, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.pendingExPost[txID]
	if !ok {
		return ReportOutcome{}, fmt.Errorf("arbiter: no pending ex-post transaction %q", txID)
	}
	mech, _ := a.Design.Mechanism.(market.ExPost)
	audited := float64(a.stepRNG()%10000)/10000 < mech.AuditProb
	outs, _ := mech.RunAudited(
		[]market.Bid{{Buyer: st.buyer, Offer: reported, True: trueValue}},
		func(int) bool { return audited })
	pay := ledger.FromFloat(outs[0].Sale.Price)
	if pay < 0 {
		// A report of negative realized value pays nothing (ExPost.Run
		// clamps identically); the whole deposit is refunded. Settling —
		// rather than erroring out after the RNG step — keeps every audit
		// RNG step paired with a logged value-reported record, which WAL
		// replay depends on.
		pay = 0
	}
	if pay > st.deposit {
		pay = st.deposit
	}
	split := a.Design.ShareFractions(pay.Float(), st.fracs)
	if err := a.paySplit(txID, pay, split.SellerCut); err != nil {
		return ReportOutcome{}, err
	}
	st.tx.Price = pay.Float()
	st.tx.ArbiterCut = split.ArbiterCut
	st.tx.SellerCuts = split.SellerCut
	delete(a.pendingExPost, txID)
	return ReportOutcome{
		TxID:       txID,
		RequestID:  st.tx.RequestID,
		Buyer:      st.buyer,
		Paid:       pay.Float(),
		Audited:    audited,
		ArbiterCut: split.ArbiterCut,
		SellerCuts: split.SellerCut,
	}, nil
}

// History returns completed transactions.
func (a *Arbiter) History() []*Transaction {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Transaction, len(a.history))
	copy(out, a.history)
	return out
}

// OpenCount returns the number of unmatched requests. Cheap enough to call
// from a metrics scrape: one lock plus an O(open) compaction.
func (a *Arbiter) OpenCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.openLocked())
}

// UnmetWantCount returns how many distinct wanted columns currently carry
// unmet-demand signals.
func (a *Arbiter) UnmetWantCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.unmet)
}

// OpenRequests returns the IDs of unmatched requests.
func (a *Arbiter) OpenRequests() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	open := a.openLocked()
	out := make([]string, len(open))
	for i, r := range open {
		out[i] = r.ID
	}
	return out
}

func requestIDs(reqs []*Request) []string {
	out := make([]string, len(reqs))
	for i, r := range reqs {
		out[i] = r.ID
	}
	return out
}
