package arbiter

import (
	"testing"

	"repro/internal/dod"
	"repro/internal/policy"
	"repro/internal/wtp"
)

// TestPolicyGatesTransactions checks the contextual-integrity hook (§4.4):
// the same request succeeds or fails purely on declared purpose.
func TestPolicyGatesTransactions(t *testing.T) {
	a := setupMarket(t, mkDesign())
	eng := policy.NewEngine(policy.Deny)
	for _, ds := range []string{"s1", "s2"} {
		for _, n := range policy.HealthcareDefaults(ds) {
			if err := eng.AddNorm(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	a.Policy = eng

	mkReq := func(buyerName, purpose string) *wtp.Function {
		f := coverageWTP(buyerName, 100)
		f.Purpose = purpose
		return f
	}
	want := dod.Want{Columns: []string{"a", "b", "d"}}

	// Marketing purpose: denied.
	if _, err := a.SubmitRequest(want, mkReq("b1", string(policy.PurposeMarketing))); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 0 {
		t.Fatal("marketing flow must be denied by healthcare norms")
	}

	// Research purpose: allowed.
	if _, err := a.SubmitRequest(want, mkReq("b2", string(policy.PurposeResearch))); err != nil {
		t.Fatal(err)
	}
	res, err = a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("research flow must pass: %v", res.Unsatisfied)
	}
	// Decisions were audited.
	if len(eng.Decisions()) == 0 {
		t.Error("policy decisions must be logged")
	}
}

// TestSameBuyerMultipleRequests pins the sale->request mapping: a buyer
// holding several open requests for the same columns — with different
// curves — must have each winning bid settle its own request, charged at
// that request's sale, never cross-wired to a sibling.
func TestSameBuyerMultipleRequests(t *testing.T) {
	a := setupMarket(t, mkDesign()) // posted price 50
	want := dod.Want{Columns: []string{"a", "b", "d"}}
	lowID, err := a.SubmitRequest(want, coverageWTP("b1", 10)) // below posted price
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitRequest(want, coverageWTP("b1", 200)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitRequest(want, coverageWTP("b1", 300)); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	// The two above-reserve requests clear at 50 each; the 10-offer one
	// must stay open, not get settled on the back of a sibling's winning bid.
	if len(res.Transactions) != 2 {
		t.Fatalf("transactions = %d, want 2 (unsat %v)", len(res.Transactions), res.Unsatisfied)
	}
	seen := map[string]bool{}
	for _, tx := range res.Transactions {
		if tx.Buyer != "b1" || tx.Price != 50 {
			t.Fatalf("unexpected settlement %+v", tx)
		}
		if tx.RequestID == lowID || seen[tx.RequestID] {
			t.Fatalf("sale cross-wired to request %s", tx.RequestID)
		}
		seen[tx.RequestID] = true
	}
	open := a.OpenRequests()
	if len(open) != 1 || open[0] != lowID {
		t.Fatalf("open requests = %v, want [%s]", open, lowID)
	}
	if got := a.Ledger.Balance("b1").Float(); got != 10000-100 {
		t.Fatalf("buyer balance = %v, want 9900", got)
	}
}
