package arbiter

import (
	"testing"

	"repro/internal/dod"
	"repro/internal/policy"
	"repro/internal/wtp"
)

// TestPolicyGatesTransactions checks the contextual-integrity hook (§4.4):
// the same request succeeds or fails purely on declared purpose.
func TestPolicyGatesTransactions(t *testing.T) {
	a := setupMarket(t, mkDesign())
	eng := policy.NewEngine(policy.Deny)
	for _, ds := range []string{"s1", "s2"} {
		for _, n := range policy.HealthcareDefaults(ds) {
			if err := eng.AddNorm(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	a.Policy = eng

	mkReq := func(buyerName, purpose string) *wtp.Function {
		f := coverageWTP(buyerName, 100)
		f.Purpose = purpose
		return f
	}
	want := dod.Want{Columns: []string{"a", "b", "d"}}

	// Marketing purpose: denied.
	if _, err := a.SubmitRequest(want, mkReq("b1", string(policy.PurposeMarketing))); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 0 {
		t.Fatal("marketing flow must be denied by healthcare norms")
	}

	// Research purpose: allowed.
	if _, err := a.SubmitRequest(want, mkReq("b2", string(policy.PurposeResearch))); err != nil {
		t.Fatal(err)
	}
	res, err = a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("research flow must pass: %v", res.Unsatisfied)
	}
	// Decisions were audited.
	if len(eng.Decisions()) == 0 {
		t.Error("policy decisions must be logged")
	}
}
