package arbiter

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/dod"
	"repro/internal/relation"
)

// DemandSignal reports how often a column was wanted but unavailable.
// "Because the arbiter knows that b1 would benefit from attribute ⟨e⟩ ...
// the arbiter can ask Seller 3 to obtain a dataset s3 = ⟨e⟩ for money"
// (paper §7.1, opportunistic data sellers).
type DemandSignal struct {
	Column string
	Count  int
}

// DemandSignals returns unmet demand sorted by intensity.
func (a *Arbiter) DemandSignals() []DemandSignal {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]DemandSignal, 0, len(a.unmet))
	for c, n := range a.unmet {
		out = append(out, DemandSignal{Column: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// Recommend suggests datasets to a buyer based on what similar buyers
// purchased (item-based collaborative filtering in miniature; paper §4.1
// "the arbiter could recommend datasets to buyers based on what similar
// buyers have purchased before"). Datasets the buyer already bought are
// excluded.
func (a *Arbiter) Recommend(buyer string, k int) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	mine := a.purchases[buyer]
	scores := map[string]float64{}
	for other, theirs := range a.purchases {
		if other == buyer {
			continue
		}
		// Similarity: number of co-purchased datasets.
		sim := 0
		for ds := range theirs {
			if mine[ds] > 0 {
				sim++
			}
		}
		if sim == 0 && len(mine) > 0 {
			continue
		}
		w := float64(sim + 1)
		for ds, n := range theirs {
			if mine[ds] > 0 {
				continue
			}
			scores[ds] += w * float64(n)
		}
	}
	out := make([]string, 0, len(scores))
	for ds := range scores {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool {
		if scores[out[i]] != scores[out[j]] {
			return scores[out[i]] > scores[out[j]]
		}
		return out[i] < out[j]
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// InfoRequest is the arbiter's ask during a negotiation round: "explain how
// to transform an attribute so it joins with another one, or ... mapping
// tables" (paper §4.1).
type InfoRequest struct {
	Dataset string
	Column  string // the attribute the arbiter holds (e.g. f_d)
	Target  string // the attribute buyers want (e.g. d)
}

// SellerResponder is how a seller answers an info request: with a mapping
// table relation (fromCol/toCol = Column/Target) or example pairs. A nil
// response declines.
type SellerResponder func(req InfoRequest) *relation.Relation

// NegotiationRound scans unmet demand against shared datasets, asks owners
// (via their responders) for transformation info, and registers any
// contributed mappings with the DoD engine. It returns the number of
// transforms learned. Sellers are incentivized to respond: transforms make
// their datasets appear in more mashups and hence earn more revenue.
func (a *Arbiter) NegotiationRound(responders map[string]SellerResponder) int {
	a.mu.Lock()
	signals := make([]DemandSignal, 0, len(a.unmet))
	for c, n := range a.unmet {
		signals = append(signals, DemandSignal{Column: c, Count: n})
	}
	sort.Slice(signals, func(i, j int) bool { return signals[i].Column < signals[j].Column })
	ids := a.Catalog.IDs()
	a.mu.Unlock()

	learned := 0
	for _, sig := range signals {
		for _, id := range ids {
			owner := a.Catalog.Owner(id)
			respond, ok := responders[owner]
			if !ok {
				continue
			}
			rel, err := a.Catalog.Get(id)
			if err != nil {
				continue
			}
			for _, col := range rel.Schema.Names() {
				if col == sig.Column {
					continue
				}
				req := InfoRequest{Dataset: string(id), Column: col, Target: sig.Column}
				table := respond(req)
				if table == nil {
					continue
				}
				t, err := dod.MappingFromRelation(
					fmt.Sprintf("%s.%s->%s", id, col, sig.Column), table, col, sig.Column)
				if err != nil {
					continue
				}
				a.DoD().RegisterTransform(id, col, sig.Column, t)
				learned++
			}
		}
	}
	return learned
}

// AskOpportunisticSeller invites a seller to supply a dataset covering the
// hottest unmet column; the provided fetch function plays the role of Seller
// 3's data-collection effort (paper §7.1). The fetched dataset is shared
// into the market under the seller's name.
func (a *Arbiter) AskOpportunisticSeller(seller string, fetch func(column string) *relation.Relation) (catalog.DatasetID, error) {
	signals := a.DemandSignals()
	if len(signals) == 0 {
		return "", fmt.Errorf("arbiter: no unmet demand")
	}
	// Offer the hottest signals first; the seller declines what they cannot
	// obtain by returning nil.
	var col string
	var rel *relation.Relation
	for _, sig := range signals {
		if got := fetch(sig.Column); got != nil {
			col, rel = sig.Column, got
			break
		}
	}
	if rel == nil {
		return "", fmt.Errorf("arbiter: seller %s declined all %d demand signals", seller, len(signals))
	}
	if !rel.Schema.Has(col) {
		return "", fmt.Errorf("arbiter: fetched dataset lacks column %q", col)
	}
	id := catalog.DatasetID(fmt.Sprintf("%s-%s", seller, col))
	err := a.ShareDataset(seller, id, rel, metaNow(string(id)), openTerms())
	if err != nil {
		return "", err
	}
	a.mu.Lock()
	delete(a.unmet, col)
	a.mu.Unlock()
	return id, nil
}
