package arbiter

import (
	"context"
	"testing"

	"repro/internal/dod"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// abWTP prices coverage of ⟨a, b⟩ alone (setupMarket's s1).
func abWTP(buyer string, price float64) *wtp.Function {
	return &wtp.Function{
		Buyer: buyer,
		Task:  wtp.CoverageTask{Columns: []string{"a", "b"}, WantRows: 50},
		Curve: wtp.PriceCurve{{MinSatisfaction: 0.9, Price: price}},
	}
}

// TestUpdateBetweenBuildAndPrice is the regression for the prebuild race:
// a candidate set built before an UpdateDataset must never be priced — the
// version check at price time detects the bump and rebuilds, so the settled
// mashup carries the post-update data.
func TestUpdateBetweenBuildAndPrice(t *testing.T) {
	a := setupMarket(t, mkDesign())
	want := dod.Want{Columns: []string{"a", "b"}}
	if _, err := a.SubmitRequest(want, abWTP("b1", 100)); err != nil {
		t.Fatal(err)
	}

	// Build stage: a worker prebuilds against the current catalog.
	prebuilt := map[string]*dod.CandidateSet{want.Key(): a.BuildFor(context.Background(), want)}

	// A new version of s1 lands between build and price: same schema, but
	// every b value is shifted so pre- and post-update mashups are
	// distinguishable.
	s1v2 := relation.New("s1", relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
	for i := 0; i < 100; i++ {
		s1v2.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)+1000))
	}
	if err := a.UpdateDataset("s1", s1v2, "shifted b"); err != nil {
		t.Fatal(err)
	}
	if a.DoD().Valid(prebuilt[want.Key()], want) {
		t.Fatal("prebuilt set still valid after UpdateDataset")
	}

	res, err := a.PriceRound(context.Background(), nil, prebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1", len(res.Transactions))
	}
	tx := res.Transactions[0]
	bi := tx.Mashup.Schema.IndexOf("b")
	if bi < 0 || tx.Mashup.NumRows() == 0 {
		t.Fatalf("settled mashup missing data: %s", tx.Mashup.Schema)
	}
	if got := tx.Mashup.Rows[0][bi].AsFloat(); got < 1000 {
		t.Errorf("settled against pre-update mashup: b[0] = %v, want >= 1000", got)
	}
	if st := a.DoD().CacheStats(); st.Stale == 0 {
		t.Errorf("price-time rebuild not counted as stale: %+v", st)
	}
}

// TestPriceRoundUsesValidPrebuilt pins the fast path: a version-valid handed
// set is priced as-is, with no extra build.
func TestPriceRoundUsesValidPrebuilt(t *testing.T) {
	a := setupMarket(t, mkDesign())
	want := dod.Want{Columns: []string{"a", "b"}}
	if _, err := a.SubmitRequest(want, abWTP("b1", 100)); err != nil {
		t.Fatal(err)
	}
	prebuilt := map[string]*dod.CandidateSet{want.Key(): a.BuildFor(context.Background(), want)}
	builds := a.DoD().CacheStats().Builds

	res, err := a.PriceRound(context.Background(), nil, prebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1", len(res.Transactions))
	}
	if got := a.DoD().CacheStats().Builds; got != builds {
		t.Errorf("price stage ran %d extra build(s); prebuilt set should have been consumed", got-builds)
	}
}
