package arbiter

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dod"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// TestRoundMemoSharesCoalitionValues: two sales of the same mashup in one
// pricing round share coalition-value evaluations through the per-round memo
// — the second settlement's characteristic function is answered entirely from
// cache, and both settlements split identically (v(S) is seed-independent).
func TestRoundMemoSharesCoalitionValues(t *testing.T) {
	a := setupMarket(t, mkDesign()) // PostedPrice: unlimited supply, both buyers settle
	want := dod.Want{Columns: []string{"a", "b", "d"}}
	if _, err := a.SubmitRequest(want, coverageWTP("b1", 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitRequest(want, coverageWTP("b2", 100)); err != nil {
		t.Fatal(err)
	}
	before := market.AllocCounters()
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 2 {
		t.Fatalf("transactions = %d (unsat %v)", len(res.Transactions), res.Unsatisfied)
	}
	after := market.AllocCounters()
	// Two settlements of a 2-dataset mashup: the exact path enumerates
	// 2^2-1 = 3 coalitions each. First settle misses 3, second hits 3.
	if hits := after.MemoHits - before.MemoHits; hits < 3 {
		t.Fatalf("round memo hits = %d, want >= 3 (second settlement should reuse coalition values)", hits)
	}
	if evals := after.Evals - before.Evals; evals > 3 {
		t.Fatalf("round evaluated v(S) %d times for two identical settlements, want 3", evals)
	}
	c0, c1 := res.Transactions[0].SellerCuts, res.Transactions[1].SellerCuts
	for s, cut := range c0 {
		if math.Abs(cut-c1[s]) > 1e-9 {
			t.Fatalf("same-game settlements split differently: %v vs %v", c0, c1)
		}
	}
}

// TestWideMashupSettlesWithoutPanic is the end-to-end regression for the
// ShapleyExact n>24 panic: a buyer whose want only a 25-source chain-joined
// mashup can satisfy settles through a ShapleyExact design — the allocator
// escalates to sampling instead of crashing the settlement path.
func TestWideMashupSettlesWithoutPanic(t *testing.T) {
	const n = 25
	d := mkDesign() // ShapleyExact allocator — the path that used to panic
	a, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterParticipant("buyer", 10000); err != nil {
		t.Fatal(err)
	}
	cols := make([]string, n)
	for i := 0; i < n; i++ {
		seller := fmt.Sprintf("s%02d", i)
		if err := a.RegisterParticipant(seller, 0); err != nil {
			t.Fatal(err)
		}
		col := fmt.Sprintf("c%02d", i)
		cols[i] = col
		// 10 distinct join-key values: the metadata index drops edges on
		// columns below its MinDistinct cardinality floor.
		rel := relation.New(seller+"/d0", relation.NewSchema(
			relation.Col("k", relation.KindInt), relation.Col(col, relation.KindFloat)))
		for r := 0; r < 10; r++ {
			rel.MustAppend(relation.Int(int64(r)), relation.Float(float64(i*10+r)))
		}
		ds := seller + "/d0"
		if err := a.ShareDataset(seller, catalog.DatasetID(ds), rel, meta(ds), license.Terms{Kind: license.Open}); err != nil {
			t.Fatal(err)
		}
	}
	want := dod.Want{Columns: cols, MaxDatasets: n, MaxCandidates: 3, MinJoinScore: 0.1}
	f := &wtp.Function{
		Buyer: "buyer",
		Task:  wtp.CoverageTask{Columns: cols, WantRows: 1},
		Curve: wtp.PriceCurve{{MinSatisfaction: 0.95, Price: 100}},
	}
	if _, err := a.SubmitRequest(want, f); err != nil {
		t.Fatal(err)
	}
	before := market.AllocCounters()
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("transactions = %d (unsat %v)", len(res.Transactions), res.Unsatisfied)
	}
	tx := res.Transactions[0]
	if len(tx.Datasets) != n {
		t.Fatalf("settled mashup joins %d datasets, want %d", len(tx.Datasets), n)
	}
	after := market.AllocCounters()
	if after.Escalations == before.Escalations {
		t.Fatal("wide settlement did not escalate to the sampled allocator")
	}
	var cuts float64
	for _, c := range tx.SellerCuts {
		if c < 0 {
			t.Fatal("negative seller cut")
		}
		cuts += c
	}
	if math.Abs(cuts+tx.ArbiterCut-tx.Price) > 0.01 {
		t.Fatalf("wide settlement does not conserve: cuts %.4f + fee %.4f != %.4f", cuts, tx.ArbiterCut, tx.Price)
	}
	if a.Ledger.VerifyChain() != -1 {
		t.Fatal("audit chain corrupt after wide settlement")
	}
}
