package arbiter

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/dod"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/relation"
	"repro/internal/wtp"
)

func mkDesign() *market.Design {
	return &market.Design{
		Label: "test", Goal: market.GoalRevenue, Type: market.TypeExternal,
		Elicitation: market.ElicitUpfront,
		Mechanism:   market.PostedPrice{P: 50},
		Allocator:   market.ShapleyExact{},
		ArbiterFee:  0.1,
	}
}

func meta(ds string) wtp.DatasetMeta {
	return wtp.DatasetMeta{Dataset: ds, UpdatedAt: time.Now(), Author: "s", HasProvenance: true}
}

// setupMarket: two sellers with joinable datasets, one funded buyer.
func setupMarket(t *testing.T, d *market.Design) *Arbiter {
	t.Helper()
	a, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"seller1", "seller2", "b1", "b2"} {
		if err := a.RegisterParticipant(p, 10000); err != nil {
			t.Fatal(err)
		}
	}
	s1 := relation.New("s1", relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
	s2 := relation.New("s2", relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("d", relation.KindFloat)))
	for i := 0; i < 100; i++ {
		s1.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)))
		s2.MustAppend(relation.Int(int64(i)), relation.Float(float64(-i)))
	}
	if err := a.ShareDataset("seller1", "s1", s1, meta("s1"), license.Terms{Kind: license.Open}); err != nil {
		t.Fatal(err)
	}
	if err := a.ShareDataset("seller2", "s2", s2, meta("s2"), license.Terms{Kind: license.Open}); err != nil {
		t.Fatal(err)
	}
	return a
}

func coverageWTP(buyer string, price float64) *wtp.Function {
	return &wtp.Function{
		Buyer: buyer,
		Task:  wtp.CoverageTask{Columns: []string{"a", "b", "d"}, WantRows: 50},
		Curve: wtp.PriceCurve{{MinSatisfaction: 0.9, Price: price}},
	}
}

func TestEndToEndTransaction(t *testing.T) {
	a := setupMarket(t, mkDesign())
	want := dod.Want{Columns: []string{"a", "b", "d"}}
	id, err := a.SubmitRequest(want, coverageWTP("b1", 100))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("transactions = %d (unsat %v)", len(res.Transactions), res.Unsatisfied)
	}
	tx := res.Transactions[0]
	if tx.Buyer != "b1" || tx.Price != 50 {
		t.Errorf("tx = %+v", tx)
	}
	if !tx.Mashup.Schema.Has("a") || !tx.Mashup.Schema.Has("b") || !tx.Mashup.Schema.Has("d") {
		t.Errorf("mashup schema = %s", tx.Mashup.Schema)
	}
	// Money: buyer paid 50; arbiter kept 10%; sellers split 45 evenly
	// (perfect complements under Shapley).
	if got := a.Ledger.Balance("b1").Float(); got != 9950 {
		t.Errorf("buyer balance = %v", got)
	}
	if got := a.Ledger.Balance(ArbiterAccount).Float(); math.Abs(got-5) > 0.01 {
		t.Errorf("arbiter balance = %v", got)
	}
	s1b := a.Ledger.Balance("seller1").Float() - 10000
	s2b := a.Ledger.Balance("seller2").Float() - 10000
	if math.Abs(s1b-22.5) > 0.01 || math.Abs(s2b-22.5) > 0.01 {
		t.Errorf("seller earnings = %v / %v, want 22.5 each", s1b, s2b)
	}
	// Request closed; audit chain intact.
	for _, open := range a.OpenRequests() {
		if open == id {
			t.Error("satisfied request must close")
		}
	}
	if a.Ledger.VerifyChain() != -1 {
		t.Error("audit chain corrupt")
	}
	if len(a.History()) != 1 {
		t.Error("history must record the transaction")
	}
}

func TestAuctionAmongBuyers(t *testing.T) {
	d := mkDesign()
	d.Mechanism = market.SecondPrice{}
	a := setupMarket(t, d)
	want := dod.Want{Columns: []string{"a", "b", "d"}}
	// Two buyers want the same mashup; exclusive license on s1 forces
	// single-unit supply -> Vickrey.
	if err := a.Licenses.SetTerms("s1", license.Terms{Kind: license.Exclusive, ExclusivityTaxRate: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitRequest(want, coverageWTP("b1", 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitRequest(want, coverageWTP("b2", 70)); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("exclusive supply must yield one sale, got %d", len(res.Transactions))
	}
	tx := res.Transactions[0]
	if tx.Buyer != "b1" {
		t.Errorf("highest bidder must win: %s", tx.Buyer)
	}
	if tx.Price != 70 {
		t.Errorf("vickrey price = %v, want second bid 70", tx.Price)
	}
	// Loser stays open.
	if len(res.Unsatisfied) != 1 {
		t.Errorf("unsatisfied = %v", res.Unsatisfied)
	}
	// Exclusivity grant recorded; tax accrues.
	taxes := a.Licenses.PeriodTaxes()
	if taxes["b1"] <= 0 {
		t.Errorf("exclusivity tax = %v", taxes)
	}
}

func TestUnmetDemandSignals(t *testing.T) {
	a := setupMarket(t, mkDesign())
	want := dod.Want{Columns: []string{"a", "b", "e"}} // e exists nowhere
	f := &wtp.Function{
		Buyer: "b1",
		Task:  wtp.CoverageTask{Columns: []string{"a", "b", "e"}, WantRows: 10},
		Curve: wtp.PriceCurve{{MinSatisfaction: 0.99, Price: 100}},
	}
	if _, err := a.SubmitRequest(want, f); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MatchRound(); err != nil {
		t.Fatal(err)
	}
	sig := a.DemandSignals()
	found := false
	for _, s := range sig {
		if s.Column == "e" && s.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("demand signals = %v, want e", sig)
	}
}

func TestOpportunisticSeller(t *testing.T) {
	a := setupMarket(t, mkDesign())
	// Create unmet demand for e.
	want := dod.Want{Columns: []string{"a", "e"}}
	f := &wtp.Function{
		Buyer: "b1",
		Task:  wtp.CoverageTask{Columns: []string{"a", "e"}, WantRows: 10},
		Curve: wtp.PriceCurve{{MinSatisfaction: 0.99, Price: 100}},
	}
	if _, err := a.SubmitRequest(want, f); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MatchRound(); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterParticipant("seller3", 0); err != nil {
		t.Fatal(err)
	}
	id, err := a.AskOpportunisticSeller("seller3", func(col string) *relation.Relation {
		r := relation.New("fetched", relation.NewSchema(
			relation.Col("a", relation.KindInt), relation.Col(col, relation.KindFloat)))
		for i := 0; i < 100; i++ {
			r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*2))
		}
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Catalog.Owner(id) != "seller3" {
		t.Errorf("owner = %s", a.Catalog.Owner(id))
	}
	// Next round satisfies the buyer, paying seller3.
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("transactions = %d", len(res.Transactions))
	}
	if a.Ledger.Balance("seller3").Float() <= 0 {
		t.Error("opportunistic seller must profit")
	}
}

func TestNegotiationRoundLearnsTransform(t *testing.T) {
	a, err := New(mkDesign())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"seller2", "b1"} {
		if err := a.RegisterParticipant(p, 1000); err != nil {
			t.Fatal(err)
		}
	}
	// seller2 has f_d (pseudonymized d); buyer wants d.
	s2 := relation.New("s2", relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("emp_token", relation.KindString)))
	mapping := relation.New("map", relation.NewSchema(
		relation.Col("emp_token", relation.KindString), relation.Col("d", relation.KindString)))
	for i := 0; i < 50; i++ {
		tok := fmt.Sprintf("T%02d", i)
		s2.MustAppend(relation.Int(int64(i)), relation.String_(tok))
		mapping.MustAppend(relation.String_(tok), relation.String_(fmt.Sprintf("name%02d", i)))
	}
	if err := a.ShareDataset("seller2", "s2", s2, meta("s2"), license.Terms{Kind: license.Open}); err != nil {
		t.Fatal(err)
	}
	want := dod.Want{Columns: []string{"a", "d"}}
	f := &wtp.Function{
		Buyer: "b1",
		Task:  wtp.CoverageTask{Columns: []string{"a", "d"}, WantRows: 10},
		Curve: wtp.PriceCurve{{MinSatisfaction: 0.99, Price: 60}},
	}
	if _, err := a.SubmitRequest(want, f); err != nil {
		t.Fatal(err)
	}
	res, _ := a.MatchRound()
	if len(res.Transactions) != 0 {
		t.Fatal("first round must fail: d unavailable")
	}
	// Negotiation: seller2 reveals the mapping table.
	learned := a.NegotiationRound(map[string]SellerResponder{
		"seller2": func(req InfoRequest) *relation.Relation {
			if req.Dataset == "s2" && req.Column == "emp_token" && req.Target == "d" {
				return mapping
			}
			return nil
		},
	})
	if learned != 1 {
		t.Fatalf("learned = %d transforms", learned)
	}
	res, _ = a.MatchRound()
	if len(res.Transactions) != 1 {
		t.Fatalf("after negotiation transactions = %d", len(res.Transactions))
	}
	dv, err := res.Transactions[0].Mashup.Column("d")
	if err != nil {
		t.Fatal(err)
	}
	if dv[0].AsString() != "name00" {
		t.Errorf("transformed d = %v", dv[0])
	}
}

func TestExPostFlow(t *testing.T) {
	d := &market.Design{
		Label: "expost", Goal: market.GoalVolume, Type: market.TypeExternal,
		Elicitation: market.ElicitExPost,
		Mechanism:   market.ExPost{Deposit: 200, AuditProb: 1.0, Penalty: 3},
		Allocator:   market.Uniform{},
		ArbiterFee:  0.1,
	}
	a := setupMarket(t, d)
	want := dod.Want{Columns: []string{"a", "b", "d"}}
	if _, err := a.SubmitRequest(want, coverageWTP("b1", 100)); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 || !res.Transactions[0].ExPost {
		t.Fatalf("expost tx = %v", res.Transactions)
	}
	tx := res.Transactions[0]
	// Deposit escrowed.
	if a.Ledger.Escrowed(tx.ID).Float() != 200 {
		t.Errorf("escrow = %v", a.Ledger.Escrowed(tx.ID))
	}
	// Buyer under-reports; audit (prob 1) catches it: pays true + penalty,
	// capped by deposit.
	paid, err := a.ReportValue(tx.ID, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	want40 := 40.0 + 3*30 // 130 < deposit 200
	if math.Abs(paid-want40) > 0.01 {
		t.Errorf("paid = %v, want %v", paid, want40)
	}
	// Sellers got their split.
	if a.Ledger.Balance("seller1").Float() <= 10000 {
		t.Error("seller1 must earn from ex-post settlement")
	}
	// Double report fails.
	if _, err := a.ReportValue(tx.ID, 1, 1); err == nil {
		t.Error("double settlement must fail")
	}
}

func TestRecommendations(t *testing.T) {
	a := setupMarket(t, mkDesign())
	want := dod.Want{Columns: []string{"a", "b", "d"}}
	if _, err := a.SubmitRequest(want, coverageWTP("b1", 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitRequest(want, coverageWTP("b2", 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MatchRound(); err != nil {
		t.Fatal(err)
	}
	// New buyer with no history gets popular datasets.
	if err := a.RegisterParticipant("b3", 1000); err != nil {
		t.Fatal(err)
	}
	recs := a.Recommend("b3", 5)
	if len(recs) == 0 {
		t.Error("cold-start recommendations must return popular datasets")
	}
	// Existing buyer is not recommended what they already own.
	for _, r := range a.Recommend("b1", 5) {
		if r == "s1" || r == "s2" {
			t.Errorf("b1 already bought %s", r)
		}
	}
}

func TestInsufficientFundsDropsBuyer(t *testing.T) {
	a := setupMarket(t, mkDesign())
	if err := a.RegisterParticipant("poor", 10); err != nil {
		t.Fatal(err)
	}
	want := dod.Want{Columns: []string{"a", "b", "d"}}
	if _, err := a.SubmitRequest(want, coverageWTP("poor", 100)); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 0 {
		t.Error("buyer without funds cannot transact")
	}
	if len(res.Unsatisfied) != 1 {
		t.Errorf("unsatisfied = %v", res.Unsatisfied)
	}
}

func TestSubmitValidation(t *testing.T) {
	a := setupMarket(t, mkDesign())
	if _, err := a.SubmitRequest(dod.Want{}, coverageWTP("b1", 1)); err == nil {
		t.Error("empty want must fail")
	}
	bad := &wtp.Function{Buyer: "b1"} // no task/curve
	if _, err := a.SubmitRequest(dod.Want{Columns: []string{"a"}}, bad); err == nil {
		t.Error("invalid wtp must fail")
	}
}

func TestDatasetQuotaRespected(t *testing.T) {
	a := setupMarket(t, mkDesign())
	if err := a.Catalog.SetQuota(catalog.DatasetID("s1"), 1); err != nil {
		t.Fatal(err)
	}
	// One read consumes the quota; the match round then cannot materialize
	// any mashup needing s1 but may still serve s2-only coverage.
	if _, err := a.Catalog.Get("s1"); err != nil {
		t.Fatal(err)
	}
	want := dod.Want{Columns: []string{"a", "b", "d"}}
	if _, err := a.SubmitRequest(want, coverageWTP("b1", 100)); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 0 {
		t.Error("quota-exhausted dataset must not be sold")
	}
}

func TestUpdateDatasetReindexes(t *testing.T) {
	a := setupMarket(t, mkDesign())
	// New version of s1 with an extra column the buyer wants.
	s1v2 := relation.New("s1", relation.NewSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("b", relation.KindFloat),
		relation.Col("z", relation.KindFloat),
	))
	for i := 0; i < 100; i++ {
		s1v2.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)), relation.Float(float64(i)*3))
	}
	if err := a.UpdateDataset("s1", s1v2, "added z"); err != nil {
		t.Fatal(err)
	}
	f := &wtp.Function{
		Buyer: "b1",
		Task:  wtp.CoverageTask{Columns: []string{"a", "z"}, WantRows: 50},
		Curve: wtp.PriceCurve{{MinSatisfaction: 0.9, Price: 80}},
	}
	if _, err := a.SubmitRequest(dod.Want{Columns: []string{"a", "z"}}, f); err != nil {
		t.Fatal(err)
	}
	res, err := a.MatchRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("updated dataset must serve new column: %v", res.Unsatisfied)
	}
	if err := a.UpdateDataset("ghost", s1v2, ""); err == nil {
		t.Error("updating unknown dataset must fail")
	}
}

func TestMultipleRoundsIdempotent(t *testing.T) {
	a := setupMarket(t, mkDesign())
	want := dod.Want{Columns: []string{"a", "b", "d"}}
	if _, err := a.SubmitRequest(want, coverageWTP("b1", 100)); err != nil {
		t.Fatal(err)
	}
	res1, _ := a.MatchRound()
	res2, _ := a.MatchRound()
	if len(res1.Transactions) != 1 || len(res2.Transactions) != 0 {
		t.Errorf("second round must not re-sell a closed request: %d/%d",
			len(res1.Transactions), len(res2.Transactions))
	}
	if len(a.OpenRequests()) != 0 {
		t.Errorf("open = %v", a.OpenRequests())
	}
}
