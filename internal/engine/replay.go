package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/arbiter"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/license"
)

// This file implements deterministic recovery: rebuilding an engine (and the
// platform under it) from a durable event log, optionally on top of a
// checkpoint. The replay invariant: applying the payload-carrying events of
// a log prefix, in order, to a fresh platform yields exactly the state —
// registries, catalog, open requests, micro-unit balances, settlement book,
// ID counters — the original process had when it appended the last record of
// that prefix. internal/wal supplies the log; cmd/dmgateway wires the boot
// sequence.

// Counters is the durable slice of engine statistics.
type Counters struct {
	Submitted uint64 `json:"submitted"`
	Applied   uint64 `json:"applied"`
	Matched   uint64 `json:"matched"`
	Failed    uint64 `json:"failed"`
}

// RequestMetaState is the durable policy metadata of one open request.
// Aged records that the request's first policy deferral was already
// audit-logged, so a restore does not log it twice.
type RequestMetaState struct {
	RequestID   string `json:"request_id"`
	Participant string `json:"participant,omitempty"`
	Priority    int    `json:"priority,omitempty"`
	FiledEpoch  uint64 `json:"filed_epoch,omitempty"`
	FiledSeq    int    `json:"filed_seq,omitempty"`
	Aged        bool   `json:"aged,omitempty"`
}

// PolicyState is the durable slice of the admission/matching-policy layer:
// per-request policy metadata, canonical token-bucket levels, the epoch
// admission window and the audit counters. Everything here is also a pure
// function of the event stream; snapshots carry it so a pruned WAL can
// still boot into identical policy decisions.
type PolicyState struct {
	Requests      []RequestMetaState `json:"requests,omitempty"`
	Buckets       map[string]float64 `json:"buckets,omitempty"`
	EpochAdmitted int                `json:"epoch_admitted,omitempty"`
	Rejected      uint64             `json:"rejected,omitempty"`
	Aged          uint64             `json:"aged,omitempty"`
}

// SnapshotState is a point-in-time engine checkpoint: the platform snapshot
// plus the engine's own registries (tickets, open-request ownership, epoch
// and submission counters), the settlement book and the policy layer.
// Restores seed from it and replay only log events with Seq > TakenAtSeq.
type SnapshotState struct {
	TakenAt    time.Time              `json:"taken_at"`
	TakenAtSeq int                    `json:"taken_at_seq"`
	Epoch      uint64                 `json:"epoch"`
	SubmitSeq  uint64                 `json:"submit_seq"`
	Platform   *core.PlatformSnapshot `json:"platform"`
	Tickets    []Ticket               `json:"tickets,omitempty"`
	OpenReqs   map[string]string      `json:"open_reqs,omitempty"` // request ID -> ticket
	Settles    []ledger.Settlement    `json:"settlements,omitempty"`
	Counters   Counters               `json:"counters"`
	Policy     *PolicyState           `json:"policy,omitempty"`
}

// Snapshot captures a consistent checkpoint. It holds the epoch lock, so no
// epoch is mid-flight, waits for the settlement subscriber to catch up with
// the log, then snapshots platform and engine registries as one cut.
// Intake queued behind the lock is not part of the checkpoint — it has no
// events yet, so it is not durable until its epoch runs; its tickets are
// likewise excluded, and clients re-submit after a restore (the submission
// counter excludes queued intake too, so re-submissions get their original
// ticket IDs back).
//
// A checkpoint must never claim state it cannot restore, so Snapshot fails
// instead of silently losing data when the WAL is wedged or behind the log
// head — the checkpoint would cover events lost on restart. Pending ex-post
// settlements do not refuse anymore: their escrowed deposits are serialized
// into the platform snapshot (core.PlatformSnapshot.PendingExPost) and
// restored exactly, so a checkpoint can be taken while buyers still owe
// their value reports.
func (e *Engine) Snapshot() (*SnapshotState, error) {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()

	seq := e.log.LastSeq()
	if e.log.durable() {
		persisted, perr := e.log.Persisted()
		if perr != nil {
			return nil, fmt.Errorf("engine: snapshot refused, persister wedged: %w", perr)
		}
		if persisted < seq {
			return nil, fmt.Errorf("engine: snapshot refused, WAL at seq %d behind log head %d", persisted, seq)
		}
	}
	if n := len(e.xtxHeld); n > 0 {
		// A prepare's generic ledger escrow is not part of the platform
		// checkpoint (unlike ex-post escrows, which PendingExPost carries);
		// snapshotting mid-2PC would destroy the held funds on restore. The
		// federation layer only snapshots under its coordinator lock, where
		// no transaction is between prepare and its terminal record.
		return nil, fmt.Errorf("engine: snapshot refused, %d cross-shard escrow(s) in flight", n)
	}
	// Appends only happen under epochMu, so the log cannot advance while we
	// wait for the book to absorb everything up to seq. Once the subscriber
	// has exited (bookDone — it drains everything present at log close
	// first), any remaining gap can only be post-close appends — e.g. a
	// post-drain flush epoch before a retried drain snapshot — which are
	// folded here instead of waiting forever.
	e.bookMu.Lock()
	for e.bookSeq < seq && !e.bookDone {
		e.bookCond.Wait()
	}
	if e.bookSeq < seq {
		for _, ev := range e.log.Since(e.bookSeq) {
			if ev.Kind == EventTxSettled || ev.Kind == EventValueReported {
				e.book.Record(settlementFromEvent(ev))
			}
		}
		e.bookSeq = seq
	}
	e.bookMu.Unlock()

	snap := &SnapshotState{
		TakenAt:    time.Now(),
		TakenAtSeq: seq,
		Epoch:      e.epoch.Load(),
		Platform:   e.platform.Snapshot(),
		OpenReqs:   map[string]string{},
		Settles:    e.book.All(),
		Counters: Counters{
			Applied: e.stApplied.Load(),
			Matched: e.stMatched.Load(),
			Failed:  e.stFailed.Load(),
		},
	}
	for id, t := range e.openReqs {
		snap.OpenReqs[id] = t
	}
	e.tmu.Lock()
	for _, t := range e.tickets {
		if t.Status == TicketQueued {
			// Queued intake has no events yet and is not durable; after a
			// restore its clients re-submit. Excluding it here (and from
			// SubmitSeq below) guarantees re-submissions get their original
			// ticket IDs, exactly like the no-snapshot replay path.
			continue
		}
		snap.Tickets = append(snap.Tickets, *t)
	}
	e.tmu.Unlock()
	sort.Slice(snap.Tickets, func(i, j int) bool {
		return ticketNum(snap.Tickets[i].ID) < ticketNum(snap.Tickets[j].ID)
	})
	for _, t := range snap.Tickets {
		if n := ticketNum(t.ID); n > snap.SubmitSeq {
			snap.SubmitSeq = n
		}
	}
	snap.Counters.Submitted = uint64(len(snap.Tickets))

	ps := &PolicyState{Rejected: e.stRejected.Load(), Aged: e.stAged.Load()}
	for id := range e.openReqs {
		if m := e.reqMeta[id]; m != nil {
			ps.Requests = append(ps.Requests, RequestMetaState{
				RequestID: id, Participant: m.participant, Priority: m.priority,
				FiledEpoch: m.filedEpoch, FiledSeq: m.filedSeq, Aged: m.aged,
			})
		}
	}
	sort.Slice(ps.Requests, func(i, j int) bool { return ps.Requests[i].RequestID < ps.Requests[j].RequestID })
	if e.adm != nil {
		ps.Buckets, ps.EpochAdmitted = e.adm.snapshotState()
	}
	snap.Policy = ps
	return snap, nil
}

// ticketNum parses the numeric suffix of a "sub-%06d" ticket (0 when absent).
func ticketNum(id string) uint64 {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseUint(id[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Restore rebuilds an engine from a recovered event log, optionally on top
// of a checkpoint. The caller builds the platform first — from
// core.RestorePlatform(opts, snap.Platform) when a snapshot exists, else
// core.NewPlatform — and passes every recovered event (wal.Load). Events up
// to snap.TakenAtSeq only re-seed the in-memory log (cursors resume without
// gaps); events after it are applied to the platform. The engine is returned
// stopped; call Start (and attach the reopened WAL via cfg.Persister before
// calling Restore, or engine appends after boot will not be persisted).
//
// Non-replayable records — a request-filed event whose payload was a code
// task — leave their request lost; everything the dmms wire surface can
// express replays exactly.
func Restore(p *core.Platform, cfg Config, snap *SnapshotState, events []Event) (*Engine, error) {
	watermark := 0
	if snap != nil {
		watermark = snap.TakenAtSeq
	}

	// The log base: events before the first recovered seq are compacted
	// (possible only under a snapshot at or past them).
	base := 0
	if len(events) > 0 {
		first := events[0].Seq
		for i, ev := range events {
			if ev.Seq != first+i {
				return nil, fmt.Errorf("engine: recovered events not contiguous at seq %d", ev.Seq)
			}
		}
		base = first - 1
	} else if snap != nil {
		base = watermark
	}
	if base > watermark {
		return nil, fmt.Errorf("engine: recovered events start at seq %d but checkpoint covers only %d", base+1, watermark)
	}
	if len(events) > 0 && events[len(events)-1].Seq < watermark {
		// Seeding a log that ends short of the checkpoint would hand out
		// seqs the snapshot already covers. The caller must drop the stale
		// segments (they are fully covered) and restore from the snapshot
		// alone — wal.Boot does this automatically.
		return nil, fmt.Errorf("engine: recovered events end at seq %d, short of checkpoint %d",
			events[len(events)-1].Seq, watermark)
	}

	log := NewEventLogAt(base)
	if err := log.seed(events); err != nil {
		return nil, err
	}

	book := ledger.NewSettlementBook()
	if snap != nil {
		for _, s := range snap.Settles {
			book.Record(s)
		}
	}
	e := newEngine(p, cfg, log, book, watermark)

	// Seed engine registries from the checkpoint.
	var (
		epoch     uint64
		submitSeq uint64
		counters  Counters
	)
	if snap != nil {
		epoch, submitSeq, counters = snap.Epoch, snap.SubmitSeq, snap.Counters
		for _, t := range snap.Tickets {
			tc := t
			e.tickets[t.ID] = &tc
		}
		for id, ticket := range snap.OpenReqs {
			e.openReqs[id] = ticket
		}
		if ps := snap.Policy; ps != nil {
			for _, rm := range ps.Requests {
				e.reqMeta[rm.RequestID] = &reqMeta{
					participant: rm.Participant, priority: rm.Priority,
					filedEpoch: rm.FiledEpoch, filedSeq: rm.FiledSeq, aged: rm.Aged,
				}
			}
			e.stRejected.Store(ps.Rejected)
			e.stAged.Store(ps.Aged)
			if e.adm != nil {
				e.adm.restoreState(ps.Buckets, ps.EpochAdmitted)
			}
		}
	}

	// Replay the tail onto the platform and the engine registries.
	for _, ev := range events {
		if ev.Seq <= watermark {
			continue
		}
		if ev.Epoch > epoch {
			epoch = ev.Epoch
		}
		if n := ticketNum(ev.Ticket); n > submitSeq {
			submitSeq = n
		}
		if err := e.replayEvent(ev, &counters); err != nil {
			return nil, fmt.Errorf("engine: replay seq %d (%s): %w", ev.Seq, ev.Kind, err)
		}
	}

	e.epoch.Store(epoch)
	e.seq.Store(submitSeq)
	counters.Submitted = uint64(len(e.tickets))
	e.stSubmitted.Store(counters.Submitted)
	e.stApplied.Store(counters.Applied)
	e.stMatched.Store(counters.Matched)
	e.stFailed.Store(counters.Failed)
	e.stMatchedAtBoot = counters.Matched
	// Attach the write-ahead hook only now: the seeded events came from the
	// WAL, re-persisting them would duplicate the log.
	if cfg.Persister != nil {
		e.log.SetPersister(cfg.Persister)
	}
	return e, nil
}

// replayEvent applies one recovered event: platform mutation plus ticket and
// counter bookkeeping. It mirrors apply/publishRound without re-running
// matching — the log already fixes every outcome.
func (e *Engine) replayEvent(ev Event, c *Counters) error {
	ensureTicket := func(kind SubmissionKind) {
		if ev.Ticket == "" {
			return
		}
		if _, ok := e.tickets[ev.Ticket]; !ok {
			e.tickets[ev.Ticket] = &Ticket{ID: ev.Ticket, Kind: kind, Status: TicketQueued, Participant: ev.Participant}
		}
	}
	switch ev.Kind {
	case EventRegistered:
		if err := e.platform.RegisterParticipant(ev.Participant, ev.Price); err != nil {
			return err
		}
		c.Applied++
		ensureTicket(KindRegister)
		e.setTicket(ev.Ticket, func(t *Ticket) { t.Status, t.Epoch = TicketDone, ev.Epoch })

	case EventDatasetShared:
		if ev.Payload == nil || ev.Payload.Relation == nil || ev.Payload.Meta == nil {
			return fmt.Errorf("dataset-shared event without payload")
		}
		terms := license.Terms{Kind: license.Kind(ev.Payload.License), ExclusivityTaxRate: ev.Payload.TaxRate}
		if err := e.platform.ShareDataset(ev.Participant, catalog.DatasetID(ev.Dataset),
			ev.Payload.Relation, *ev.Payload.Meta, terms); err != nil {
			return err
		}
		c.Applied++
		ensureTicket(KindShare)
		e.setTicket(ev.Ticket, func(t *Ticket) { t.Status, t.Epoch = TicketDone, ev.Epoch })

	case EventRequestFiled:
		ensureTicket(KindRequest)
		// Replay mirrors apply(): exactly one canonical quota consumption
		// per admitted request, in event order.
		if e.adm != nil {
			e.adm.replayCommit(ev.Participant)
		}
		if ev.Payload == nil || ev.Payload.Request == nil {
			// Code-task request: not durable. The ticket survives but its
			// request is gone; mark it failed so pollers see a terminal state.
			e.setTicket(ev.Ticket, func(t *Ticket) {
				t.Status, t.Epoch, t.Priority = TicketFailed, ev.Epoch, ev.Priority
				t.Err = "engine: request not replayable (code task)"
			})
			c.Failed++
			return nil
		}
		want, f, err := ev.Payload.Request.Decode()
		if err != nil {
			return err
		}
		if err := e.platform.Arbiter.RestoreRequest(ev.RequestID, want, f); err != nil {
			return err
		}
		c.Applied++
		e.openReqs[ev.RequestID] = ev.Ticket
		e.reqMeta[ev.RequestID] = &reqMeta{participant: ev.Participant, priority: ev.Priority, filedEpoch: ev.Epoch, filedSeq: ev.Seq}
		e.setTicket(ev.Ticket, func(t *Ticket) {
			t.Status, t.Epoch, t.RequestID, t.Priority = TicketApplied, ev.Epoch, ev.RequestID, ev.Priority
		})

	case EventTxSettled:
		if err := e.platform.ReplaySettlement(arbiter.ReplayedSettlement{
			TxID:         ev.TxID,
			RequestID:    ev.RequestID,
			Buyer:        ev.Participant,
			Price:        ev.Price,
			ArbiterCut:   ev.ArbiterCut,
			SellerCuts:   ev.SellerCuts,
			Satisfaction: ev.Satisfaction,
			Datasets:     ev.Datasets,
			ExPost:       ev.ExPost,
			ExPostShares: ev.ExPostShares,
		}); err != nil {
			return err
		}
		c.Matched++
		delete(e.openReqs, ev.RequestID)
		delete(e.reqMeta, ev.RequestID)
		ensureTicket(KindRequest)
		e.setTicket(ev.Ticket, func(t *Ticket) {
			t.Status, t.TxID, t.Price, t.MatchedEpoch = TicketDone, ev.TxID, ev.Price, ev.Epoch
		})

	case EventValueReported:
		if err := e.platform.ReplayReport(arbiter.ReplayedReport{
			TxID:       ev.TxID,
			Paid:       ev.Price,
			ArbiterCut: ev.ArbiterCut,
			SellerCuts: ev.SellerCuts,
		}); err != nil {
			return err
		}
		c.Applied++
		ensureTicket(KindReport)
		e.setTicket(ev.Ticket, func(t *Ticket) {
			t.Status, t.Epoch, t.TxID, t.Price = TicketDone, ev.Epoch, ev.TxID, ev.Price
			t.Participant = ev.Participant
		})

	case EventRejected:
		if ev.Ticket != "" {
			ensureTicket(ev.SubKind)
			if ev.SubKind == KindRequest && e.adm != nil {
				// The request was admitted and consumed quota before apply
				// rejected it — same accounting as the live path.
				e.adm.replayCommit(ev.Participant)
			}
			c.Failed++
			e.setTicket(ev.Ticket, func(t *Ticket) {
				t.Status, t.Epoch, t.Err, t.Priority = TicketFailed, ev.Epoch, ev.Err, ev.Priority
			})
		}

	case EventRequestRejected:
		if ev.Count > 0 {
			e.stRejected.Add(ev.Count)
		} else {
			e.stRejected.Add(1) // pre-aggregation records: one each
		}

	case EventRequestAged:
		e.stAged.Add(1)
		if m := e.reqMeta[ev.RequestID]; m != nil {
			m.aged = true // first deferral already logged; never log it twice
		}

	case EventEpochEnd:
		// The epoch boundary: demand-signal increments commit and the
		// admission window refills by the recorded quantum, exactly like
		// the live endEpoch (0 = the omitted full-quantum default).
		e.platform.AddUnmet(ev.UnmetColumns)
		if e.adm != nil {
			e.adm.refill(ev.QuotaRefill)
		}

	case EventXTxPrepared:
		// Home-shard prepare: re-hold the buyer's escrow and resume tracking
		// it. Recovery (the federation coordinator, after every shard has
		// replayed) resolves any still-held transaction from its own log.
		if err := e.platform.XTxPrepare(ev.TxID, ev.Participant, ev.Price); err != nil {
			return err
		}
		e.xtxHeld[ev.TxID] = &xtxHold{buyer: ev.Participant, price: ev.Price}

	case EventXTxCommitted:
		if ev.XTxRole == XTxRoleRemote {
			if err := e.platform.XTxCommitRemote(ev.TxID, ev.SellerCuts); err != nil {
				return err
			}
		} else {
			if err := e.platform.XTxCommitHome(ev.TxID, ev.Price, ev.SellerCuts, ev.RemoteCuts); err != nil {
				return err
			}
			delete(e.xtxHeld, ev.TxID)
		}
		e.xtxDone[ev.TxID] = true

	case EventXTxAborted:
		if err := e.platform.XTxAbort(ev.TxID); err != nil {
			return err
		}
		delete(e.xtxHeld, ev.TxID)
		e.xtxDone[ev.TxID] = true

	case EventEpochStart, EventRequestUnmet:
		// Structural markers; no platform mutation to replay.
	}
	return nil
}
