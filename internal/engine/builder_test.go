package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/license"
	"repro/internal/wtp"
)

// TestBuilderPoolCacheHitsAcrossEpochs pins the candidate cache's win on the
// epoch path: repeated identical wants build once and hit the cache in every
// later epoch, with the build time accounted to BuildMillis.
func TestBuilderPoolCacheHitsAcrossEpochs(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2, DoDWorkers: 2})
	defer e.Stop()

	mustTicket(e.SubmitRegister("b1", 100000))
	mustTicket(e.SubmitShare("s1", "s1/d", testRelation("s1/d", 20),
		wtp.DatasetMeta{Dataset: "s1/d", HasProvenance: true}, license.Terms{Kind: license.Open}))
	e.TriggerEpoch()

	var hits uint64
	for i := 0; i < 4; i++ {
		want, fn := coverageRequest("b1", 150)
		tk := mustTicket(e.SubmitRequest(want, fn))
		e.TriggerEpoch()
		waitTerminal(t, e, []string{tk}, time.Second)
		st := e.Stats()
		if i > 0 && st.CacheHits <= hits {
			t.Fatalf("epoch %d: cache hits did not climb (%d -> %d)", i, hits, st.CacheHits)
		}
		hits = st.CacheHits
	}
	st := e.Stats()
	if st.Matched != 4 {
		t.Fatalf("matched %d of 4 requests", st.Matched)
	}
	if st.BuildMillis <= 0 {
		t.Errorf("BuildMillis = %v, want > 0", st.BuildMillis)
	}
	if st.DoDWorkers != 2 {
		t.Errorf("DoDWorkers = %d, want 2", st.DoDWorkers)
	}
}

// TestBuilderPoolMatchesSynchronousOutcome proves the pipelined build stage
// changes no outcome: the same scripted workload through a worker-pool
// engine and a synchronous engine settles the same transactions at the same
// prices and leaves identical balances — candidates are derived state.
func TestBuilderPoolMatchesSynchronousOutcome(t *testing.T) {
	run := func(workers int) (history []string, balances map[string]float64, stats Stats) {
		p, e := newTestEngine(t, Config{Shards: 4, DoDWorkers: workers})
		defer e.Stop()
		mustTicket(e.SubmitRegister("b1", 50000))
		mustTicket(e.SubmitRegister("b2", 50000))
		e.TriggerEpoch()
		for wave := 0; wave < 3; wave++ {
			id := fmt.Sprintf("s1/w%d", wave)
			mustTicket(e.SubmitShare("s1", catalog.DatasetID(id), testRelation(id, 20+wave),
				wtp.DatasetMeta{Dataset: id, HasProvenance: true}, license.Terms{Kind: license.Open}))
			for _, b := range []string{"b1", "b2"} {
				want, fn := coverageRequest(b, 150)
				mustTicket(e.SubmitRequest(want, fn))
			}
			e.TriggerEpoch()
		}
		e.TriggerEpoch()
		for _, tx := range p.Arbiter.History() {
			history = append(history, fmt.Sprintf("%s/%s/%s/%.4f", tx.ID, tx.RequestID, tx.Buyer, tx.Price))
		}
		balances = map[string]float64{}
		for _, name := range []string{"b1", "b2", "s1", "arbiter"} {
			balances[name] = p.Arbiter.Ledger.Balance(name).Float()
		}
		return history, balances, e.Stats()
	}

	syncHist, syncBal, syncStats := run(0)
	poolHist, poolBal, poolStats := run(3)

	if fmt.Sprint(syncHist) != fmt.Sprint(poolHist) {
		t.Errorf("histories diverge:\n sync: %v\n pool: %v", syncHist, poolHist)
	}
	if fmt.Sprint(syncBal) != fmt.Sprint(poolBal) {
		t.Errorf("balances diverge:\n sync: %v\n pool: %v", syncBal, poolBal)
	}
	if syncStats.Matched != poolStats.Matched || syncStats.Epochs != poolStats.Epochs {
		t.Errorf("counters diverge: sync matched=%d epochs=%d, pool matched=%d epochs=%d",
			syncStats.Matched, syncStats.Epochs, poolStats.Matched, poolStats.Epochs)
	}
	if syncStats.DoDWorkers != 0 || poolStats.DoDWorkers != 3 {
		t.Errorf("worker config not surfaced: sync=%d pool=%d", syncStats.DoDWorkers, poolStats.DoDWorkers)
	}
}

// TestSpeculativePrebuildWarmsCache asserts the between-epochs stage runs:
// a round that leaves a want unmet hands it to the pool, which re-validates
// the cached set in the background (a hit, since nothing changed).
func TestSpeculativePrebuildWarmsCache(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2, DoDWorkers: 2})
	defer e.Stop()

	mustTicket(e.SubmitRegister("b1", 1000))
	mustTicket(e.SubmitShare("s1", "s1/d", testRelation("s1/d", 20),
		wtp.DatasetMeta{Dataset: "s1/d", HasProvenance: true}, license.Terms{Kind: license.Open}))
	e.TriggerEpoch()

	// A want no supply covers: the round leaves it unmet and the pool
	// prebuilds it speculatively after the epoch returns.
	want, fn := coverageRequest("b1", 80)
	want.Columns = []string{"never", "supplied"}
	fn.Task = wtp.CoverageTask{Columns: want.Columns, WantRows: 1}
	mustTicket(e.SubmitRequest(want, fn))
	before := e.Stats()
	e.TriggerEpoch()

	deadline := time.Now().Add(2 * time.Second)
	for {
		st := e.Stats()
		if st.CacheHits > before.CacheHits {
			return // speculative revalidation landed
		}
		if time.Now().After(deadline) {
			t.Fatalf("no speculative prebuild observed: before=%+v after=%+v", before, st)
		}
		time.Sleep(time.Millisecond)
	}
}
