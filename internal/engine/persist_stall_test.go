package engine

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// gatedPersister blocks inside Persist until released — a stand-in for a
// slow fsync under -fsync always.
type gatedPersister struct {
	entered chan struct{}
	release chan struct{}
}

func (g *gatedPersister) Persist(Event) error {
	g.entered <- struct{}{}
	<-g.release
	return nil
}

// TestEventLogReadersNotBlockedByPersist is the regression for moving the
// persister call (and its fsync) out from under the event-log mutex: while
// an append is blocked inside Persist, Since and Len must return promptly —
// and must NOT yet show the in-flight event (write-ahead visibility).
// Before the fix this test times out: Persist ran under the reader lock.
func TestEventLogReadersNotBlockedByPersist(t *testing.T) {
	l := NewEventLog()
	l.Append(Event{Kind: EventEpochStart, Epoch: 1}) // pre-persister event
	g := &gatedPersister{entered: make(chan struct{}), release: make(chan struct{})}
	l.SetPersister(g)

	appended := make(chan int)
	go func() { appended <- l.Append(Event{Kind: EventEpochEnd, Epoch: 1}) }()
	<-g.entered // the append is now stuck inside its "fsync"

	read := make(chan []Event, 1)
	go func() { read <- l.Since(0) }()
	select {
	case evs := <-read:
		if len(evs) != 1 || evs[0].Seq != 1 {
			t.Fatalf("in-flight event leaked to a reader before persist: %+v", evs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Since blocked behind an in-flight persist (fsync under the reader lock)")
	}
	if n := l.Len(); n != 1 {
		t.Fatalf("Len = %d during in-flight persist, want 1", n)
	}

	close(g.release)
	if seq := <-appended; seq != 2 {
		t.Fatalf("append returned seq %d, want 2", seq)
	}
	if persisted, perr := l.Persisted(); persisted != 2 || perr != nil {
		t.Fatalf("persisted = %d, %v; want 2, nil", persisted, perr)
	}
	if evs := l.Since(0); len(evs) != 2 {
		t.Fatalf("event lost after release: %d", len(evs))
	}
}

// slowPersister sleeps per event, so under -race concurrent readers overlap
// many in-flight persists.
type slowPersister struct{ delay time.Duration }

func (s slowPersister) Persist(Event) error {
	time.Sleep(s.delay)
	return nil
}

// TestEventLogConcurrentReadersDuringPersist is the -race companion: two
// appenders crossing a slow persister while poll- and wait-based readers
// consume the log. It pins down the two-phase Append (seq assignment,
// persist outside the lock, publish): no lost or reordered events, no
// event visible before its persist completed.
func TestEventLogConcurrentReadersDuringPersist(t *testing.T) {
	const total = 64
	l := NewEventLog()
	l.SetPersister(slowPersister{delay: time.Millisecond})

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/2; i++ {
				l.Append(Event{Kind: EventEpochStart, Note: "clean"})
			}
		}()
	}
	readers := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(poll bool) {
			cursor := 0
			for cursor < total {
				var evs []Event
				if poll {
					evs = l.Since(cursor)
				} else {
					evs, _ = l.WaitAfter(cursor)
				}
				for _, ev := range evs {
					// Write-ahead visibility: anything a reader can see is
					// already durable.
					if persisted, _ := l.Persisted(); ev.Seq > persisted {
						readers <- errors.New("event visible before persist")
						return
					}
				}
				if len(evs) > 0 {
					cursor = evs[len(evs)-1].Seq
				}
			}
			readers <- nil
		}(r%2 == 0)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-readers; err != nil {
			t.Fatal("reader observed an event before its persist completed")
		}
	}
	evs := l.Since(0)
	if len(evs) != total {
		t.Fatalf("log has %d events, want %d", len(evs), total)
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if persisted, perr := l.Persisted(); persisted != total || perr != nil {
		t.Fatalf("persisted = %d, %v; want %d, nil", persisted, perr, total)
	}
}
