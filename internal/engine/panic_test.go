package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/dod"
	"repro/internal/license"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// TestBuilderPanicIsolation is the regression test for panic-isolated builds:
// a user-supplied transform that panics mid-materialize must fail only its
// own want group. The engine keeps matching healthy requests in the same and
// later epochs, the panic is counted, and dod_worker_panics_total shows up on
// the metrics registry. Runs against both the worker pool and inline builds.
func TestBuilderPanicIsolation(t *testing.T) {
	for _, workers := range []int{2, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg := obs.NewRegistry()
			p, e := newTestEngine(t, Config{Shards: 2, DoDWorkers: workers, Metrics: reg})
			defer e.Stop()

			// Register the bomb before the dataset exists: RegisterTransform
			// cannot materialize the derived column yet, so the transform only
			// fires later — per row, inside the beam search's materialize step
			// of whichever build wants column z.
			bomb := &dod.Transform{Name: "bomb", Kind: relation.KindFloat,
				Fn: func(relation.Value) relation.Value { panic("transform bomb") }}
			p.Arbiter.DoD().RegisterTransform("s1/d", "b", "z", bomb)

			mustTicket(e.SubmitRegister("b1", 100000))
			mustTicket(e.SubmitShare("s1", "s1/d", testRelation("s1/d", 20),
				wtp.DatasetMeta{Dataset: "s1/d", HasProvenance: true}, license.Terms{Kind: license.Open}))
			e.TriggerEpoch()

			poisonTk := mustTicket(e.SubmitRequest(
				dod.Want{Columns: []string{"a", "z"}},
				&wtp.Function{Buyer: "b1",
					Task:  wtp.CoverageTask{Columns: []string{"a", "z"}, WantRows: 1},
					Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 100}}}))
			healthyWant, healthyFn := coverageRequest("b1", 150)
			healthyTk := mustTicket(e.SubmitRequest(healthyWant, healthyFn))
			e.TriggerEpoch()
			waitTerminal(t, e, []string{healthyTk}, 2*time.Second)

			// The epoch survived the panic and still matched the healthy
			// request; the poisoned one failed its build and stays unmatched.
			if tk, _ := e.Ticket(healthyTk); tk.Status != TicketDone {
				t.Fatalf("healthy ticket status = %v, want done", tk.Status)
			}
			if tk, _ := e.Ticket(poisonTk); tk.Status == TicketDone {
				t.Fatal("poisoned request matched despite its build panicking")
			}
			if got := p.DoDCacheStats().Panics; got < 1 {
				t.Fatalf("DoDCacheStats().Panics = %d, want >= 1", got)
			}

			// The pool (or inline path) keeps serving: a later epoch matches
			// another healthy request — recovery is an in-place restart.
			tk2 := mustTicket(e.SubmitRequest(coverageRequest("b1", 150)))
			e.TriggerEpoch()
			waitTerminal(t, e, []string{tk2}, 2*time.Second)
			if st := e.Stats(); st.Matched != 2 {
				t.Fatalf("matched %d requests, want 2", st.Matched)
			}

			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			text := b.String()
			if !strings.Contains(text, "dod_worker_panics_total") {
				t.Fatal("dod_worker_panics_total missing from exposition")
			}
			for _, line := range strings.Split(text, "\n") {
				if strings.HasPrefix(line, "dod_worker_panics_total ") {
					if strings.TrimPrefix(line, "dod_worker_panics_total ") == "0" {
						t.Fatalf("dod_worker_panics_total = 0 after a panicking build: %q", line)
					}
				}
			}
		})
	}
}
