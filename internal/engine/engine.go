package engine

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arbiter"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// Config tunes the engine. The zero value is usable: 8 shards, no ticker
// (epochs run on TriggerEpoch or BatchThreshold only).
type Config struct {
	// Shards is the number of intake queues (participant-hashed).
	Shards int
	// EpochEvery, when > 0, runs an epoch on this period.
	EpochEvery time.Duration
	// BatchThreshold, when > 0, kicks an epoch early once this many
	// submissions are queued.
	BatchThreshold int
	// Persister, when non-nil, receives every event synchronously at append
	// time — the write-ahead hook (see internal/wal). Restored engines get
	// it attached after the recovered events are seeded, so replay never
	// re-persists.
	Persister Persister
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// TicketStatus tracks a submission through its lifecycle.
type TicketStatus string

// Ticket statuses.
const (
	TicketQueued  TicketStatus = "queued"  // in an intake shard
	TicketApplied TicketStatus = "applied" // request filed, awaiting a match
	TicketDone    TicketStatus = "done"    // applied (shares/registers) or matched (requests)
	TicketFailed  TicketStatus = "failed"  // rejected at apply time
)

// Terminal reports whether the status can no longer change.
func (s TicketStatus) Terminal() bool { return s == TicketDone || s == TicketFailed }

// SubmissionKind names what a ticket tracks.
type SubmissionKind string

// Submission kinds.
const (
	KindRegister SubmissionKind = "register"
	KindShare    SubmissionKind = "share"
	KindRequest  SubmissionKind = "request"
)

// Ticket is the pollable state of one submission.
type Ticket struct {
	ID          string         `json:"id"`
	Kind        SubmissionKind `json:"kind"`
	Status      TicketStatus   `json:"status"`
	Participant string         `json:"participant"`
	Epoch       uint64         `json:"epoch,omitempty"`      // epoch that applied it
	RequestID   string         `json:"request_id,omitempty"` // requests only
	TxID        string         `json:"tx_id,omitempty"`      // matched requests only
	Price       float64        `json:"price,omitempty"`      // matched requests only
	Err         string         `json:"error,omitempty"`
}

type submission struct {
	seq    uint64
	ticket string
	kind   SubmissionKind
	// register
	name  string
	funds float64
	// share
	seller string
	id     catalog.DatasetID
	rel    *relation.Relation
	meta   wtp.DatasetMeta
	terms  license.Terms
	// request
	want dod.Want
	fn   *wtp.Function
}

type shard struct {
	mu    sync.Mutex
	queue []submission
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Epochs        uint64        `json:"epochs"`
	Submitted     uint64        `json:"submitted"`
	Applied       uint64        `json:"applied"`
	Matched       uint64        `json:"matched"`
	Failed        uint64        `json:"failed"`
	OpenRequests  int           `json:"open_requests"`
	Pending       int64         `json:"pending"`
	Events        int           `json:"events"`
	LastPersisted int           `json:"last_persisted,omitempty"`
	PersistErr    string        `json:"persist_error,omitempty"`
	Uptime        time.Duration `json:"uptime"`
	MatchesPerSec float64       `json:"matches_per_sec"`
}

// Engine is the concurrent front end to a core.Platform: sharded intake,
// epoch-batched clearing, append-only event publishing. See the package
// documentation for the model.
type Engine struct {
	platform *core.Platform
	cfg      Config
	log      *EventLog
	book     *ledger.SettlementBook

	shards  []*shard
	seq     atomic.Uint64
	pending atomic.Int64

	tmu     sync.Mutex
	tickets map[string]*Ticket

	epochMu  sync.Mutex // serializes epochs; guards openReqs
	openReqs map[string]string
	epoch    atomic.Uint64

	// bookSeq is the settlement subscriber's high-water mark: the last log
	// seq folded into the book. Snapshot waits on bookCond until it reaches
	// the log head, so checkpoints include every settlement the log already
	// carries.
	bookMu   sync.Mutex
	bookCond *sync.Cond
	bookSeq  int

	kick    chan struct{}
	stop    chan struct{}
	loopWG  sync.WaitGroup
	consWG  sync.WaitGroup
	started time.Time
	stopped atomic.Bool

	stSubmitted atomic.Uint64
	stApplied   atomic.Uint64
	stMatched   atomic.Uint64
	stFailed    atomic.Uint64
	// stMatchedAtBoot is the replayed-match baseline after a Restore, so
	// MatchesPerSec reflects this process's rate, not history divided by a
	// fresh uptime.
	stMatchedAtBoot uint64
}

// New builds an engine over the platform. Call Start to run the background
// epoch loop, or drive epochs manually with TriggerEpoch. With
// cfg.Persister set, every event is written ahead to it; use Restore to
// boot from the persisted log after a restart.
func New(p *core.Platform, cfg Config) *Engine {
	e := newEngine(p, cfg, NewEventLog(), ledger.NewSettlementBook(), 0)
	if cfg.Persister != nil {
		e.log.SetPersister(cfg.Persister)
	}
	return e
}

// settlementFromEvent derives the book entry for one tx-settled event — the
// single translation both the live subscriber and replay use.
func settlementFromEvent(ev Event) ledger.Settlement {
	cuts := make(map[string]ledger.Currency, len(ev.SellerCuts))
	for s, c := range ev.SellerCuts {
		cuts[s] = ledger.FromFloat(c)
	}
	return ledger.Settlement{
		TxID:       ev.TxID,
		Epoch:      ev.Epoch,
		Buyer:      ev.Participant,
		Price:      ledger.FromFloat(ev.Price),
		ArbiterCut: ledger.FromFloat(ev.ArbiterCut),
		SellerCuts: cuts,
		ExPost:     ev.ExPost,
	}
}

// newEngine wires an engine over a (possibly pre-seeded) log and settlement
// book; the subscriber starts folding at bookCursor, so restores that seed
// the book from a snapshot skip the already-folded prefix.
func newEngine(p *core.Platform, cfg Config, log *EventLog, book *ledger.SettlementBook, bookCursor int) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		platform: p,
		cfg:      cfg,
		log:      log,
		book:     book,
		shards:   make([]*shard, cfg.Shards),
		tickets:  map[string]*Ticket{},
		openReqs: map[string]string{},
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		started:  time.Now(),
	}
	e.bookCond = sync.NewCond(&e.bookMu)
	e.bookSeq = bookCursor
	for i := range e.shards {
		e.shards[i] = &shard{}
	}
	// Settlement subscriber: folds tx-settled events into the settlement
	// book. Runs until Stop closes the log and the tail is drained.
	e.consWG.Add(1)
	go func() {
		defer e.consWG.Done()
		cursor := bookCursor
		for {
			evs, open := e.log.WaitAfter(cursor)
			for _, ev := range evs {
				cursor = ev.Seq
				if ev.Kind == EventTxSettled {
					e.book.Record(settlementFromEvent(ev))
				}
			}
			e.bookMu.Lock()
			e.bookSeq = cursor
			e.bookCond.Broadcast()
			e.bookMu.Unlock()
			if !open {
				return
			}
		}
	}()
	return e
}

// Durable reports whether a write-ahead persister is attached to the event
// log. dmms uses it to refuse synchronous mutations that would bypass the
// log on a durable server.
func (e *Engine) Durable() bool { return e.log.durable() }

// Start launches the background epoch loop (ticker- and threshold-driven).
func (e *Engine) Start() {
	e.loopWG.Add(1)
	go func() {
		defer e.loopWG.Done()
		var tick <-chan time.Time
		if e.cfg.EpochEvery > 0 {
			t := time.NewTicker(e.cfg.EpochEvery)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-e.stop:
				return
			case <-tick:
				e.TriggerEpoch()
			case <-e.kick:
				e.TriggerEpoch()
			}
		}
	}()
}

// Stop shuts the loop down, runs one final epoch to flush queued intake,
// closes the event log and waits for subscribers to drain.
func (e *Engine) Stop() {
	if e.stopped.Swap(true) {
		return
	}
	close(e.stop)
	e.loopWG.Wait()
	e.TriggerEpoch()
	e.log.Close()
	e.consWG.Wait()
}

// Log exposes the event log for external subscribers (metrics, provenance).
func (e *Engine) Log() *EventLog { return e.log }

// Settlements exposes the settlement book the built-in subscriber maintains.
func (e *Engine) Settlements() *ledger.SettlementBook { return e.book }

// Events returns all events with Seq > after.
func (e *Engine) Events(after int) []Event { return e.log.Since(after) }

// Ticket returns a snapshot of one submission's state.
func (e *Engine) Ticket(id string) (Ticket, bool) {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	t, ok := e.tickets[id]
	if !ok {
		return Ticket{}, false
	}
	return *t, true
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.epochMu.Lock()
	open := len(e.openReqs)
	e.epochMu.Unlock()
	up := time.Since(e.started)
	matched := e.stMatched.Load()
	mps := 0.0
	if up > 0 {
		mps = float64(matched-e.stMatchedAtBoot) / up.Seconds()
	}
	persisted, perr := e.log.Persisted()
	st := Stats{
		Epochs:        e.epoch.Load(),
		Submitted:     e.stSubmitted.Load(),
		Applied:       e.stApplied.Load(),
		Matched:       matched,
		Failed:        e.stFailed.Load(),
		OpenRequests:  open,
		Pending:       e.pending.Load(),
		Events:        e.log.Len(),
		LastPersisted: persisted,
		Uptime:        up,
		MatchesPerSec: mps,
	}
	if perr != nil {
		st.PersistErr = perr.Error()
	}
	return st
}

// SubmitRegister queues a participant registration and returns its ticket.
func (e *Engine) SubmitRegister(name string, funds float64) string {
	return e.enqueue(submission{kind: KindRegister, name: name, funds: funds}, name)
}

// SubmitShare queues a seller's dataset share and returns its ticket.
func (e *Engine) SubmitShare(seller string, id catalog.DatasetID, rel *relation.Relation,
	meta wtp.DatasetMeta, terms license.Terms) string {
	return e.enqueue(submission{kind: KindShare, seller: seller, id: id, rel: rel,
		meta: meta, terms: terms}, seller)
}

// SubmitRequest queues a buyer's data need and returns its ticket. The
// request stays open across epochs until a matching round satisfies it.
func (e *Engine) SubmitRequest(want dod.Want, f *wtp.Function) string {
	return e.enqueue(submission{kind: KindRequest, want: want, fn: f}, f.Buyer)
}

func (e *Engine) enqueue(s submission, participant string) string {
	s.seq = e.seq.Add(1)
	s.ticket = fmt.Sprintf("sub-%06d", s.seq)

	e.tmu.Lock()
	e.tickets[s.ticket] = &Ticket{ID: s.ticket, Kind: s.kind, Status: TicketQueued, Participant: participant}
	e.tmu.Unlock()

	sh := e.shards[shardOf(participant, len(e.shards))]
	sh.mu.Lock()
	sh.queue = append(sh.queue, s)
	sh.mu.Unlock()

	e.stSubmitted.Add(1)
	if n := e.pending.Add(1); e.cfg.BatchThreshold > 0 && n >= int64(e.cfg.BatchThreshold) {
		select {
		case e.kick <- struct{}{}:
		default:
		}
	}
	return s.ticket
}

func shardOf(participant string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(participant))
	return int(h.Sum32() % uint32(n))
}

// drain swaps out every shard queue and returns the batch in global
// submission order.
func (e *Engine) drain() []submission {
	var batch []submission
	for _, sh := range e.shards {
		sh.mu.Lock()
		batch = append(batch, sh.queue...)
		sh.queue = nil
		sh.mu.Unlock()
	}
	e.pending.Add(-int64(len(batch)))
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	return batch
}

func (e *Engine) setTicket(id string, f func(*Ticket)) {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if t, ok := e.tickets[id]; ok {
		f(t)
	}
}

// TriggerEpoch runs one epoch synchronously: drain intake, apply the batch,
// run a matching round if requests are open, publish events. Epochs with no
// work are skipped (returns the current epoch number and false). With an
// empty batch but open requests, the matching round still runs — supply can
// arrive through the synchronous dmms endpoints, bypassing intake — but a
// round that matches nothing is not counted as an epoch and publishes no
// events, so a ticker spinning over starved requests doesn't flood the log.
// Safe to call concurrently with intake and with the background loop.
func (e *Engine) TriggerEpoch() (uint64, bool) {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()

	batch := e.drain()
	if len(batch) == 0 {
		if len(e.openReqs) == 0 {
			return e.epoch.Load(), false
		}
		res, err := e.platform.MatchRound()
		if err != nil || len(res.Transactions) == 0 {
			return e.epoch.Load(), false
		}
		ep := e.epoch.Add(1)
		e.log.Append(Event{Epoch: ep, Kind: EventEpochStart,
			Note: fmt.Sprintf("0 queued, %d open requests", len(e.openReqs))})
		matched, unmet := e.publishRound(ep, res)
		e.log.Append(Event{Epoch: ep, Kind: EventEpochEnd,
			Note: fmt.Sprintf("applied=0 matched=%d unmet=%d", matched, unmet)})
		return ep, true
	}

	ep := e.epoch.Add(1)
	e.log.Append(Event{Epoch: ep, Kind: EventEpochStart,
		Note: fmt.Sprintf("%d queued, %d open requests", len(batch), len(e.openReqs))})

	for _, s := range batch {
		e.apply(ep, s)
	}
	var matched, unmet int
	if len(e.openReqs) > 0 {
		matched, unmet = e.clear(ep)
	}
	e.log.Append(Event{Epoch: ep, Kind: EventEpochEnd,
		Note: fmt.Sprintf("applied=%d matched=%d unmet=%d", len(batch), matched, unmet)})
	return ep, true
}

// apply replays one submission against the platform, under epochMu.
func (e *Engine) apply(ep uint64, s submission) {
	fail := func(err error) {
		e.stFailed.Add(1)
		e.setTicket(s.ticket, func(t *Ticket) {
			t.Status, t.Epoch, t.Err = TicketFailed, ep, err.Error()
		})
		e.log.Append(Event{Epoch: ep, Kind: EventRejected, Ticket: s.ticket,
			Participant: e.ticketParticipant(s.ticket), SubKind: s.kind, Err: err.Error()})
	}
	switch s.kind {
	case KindRegister:
		if err := e.platform.RegisterParticipant(s.name, s.funds); err != nil {
			fail(err)
			return
		}
		e.stApplied.Add(1)
		e.setTicket(s.ticket, func(t *Ticket) { t.Status, t.Epoch = TicketDone, ep })
		e.log.Append(Event{Epoch: ep, Kind: EventRegistered, Ticket: s.ticket,
			Participant: s.name, Price: s.funds})
	case KindShare:
		if err := e.platform.ShareDataset(s.seller, s.id, s.rel, s.meta, s.terms); err != nil {
			fail(err)
			return
		}
		e.stApplied.Add(1)
		e.setTicket(s.ticket, func(t *Ticket) { t.Status, t.Epoch = TicketDone, ep })
		meta := s.meta
		meta.Dataset = string(s.id)
		e.log.Append(Event{Epoch: ep, Kind: EventDatasetShared, Ticket: s.ticket,
			Participant: s.seller, Dataset: string(s.id),
			Payload: &Payload{Relation: s.rel, Meta: &meta,
				License: string(s.terms.Kind), TaxRate: s.terms.ExclusivityTaxRate}})
	case KindRequest:
		if !e.platform.HasAccount(s.fn.Buyer) {
			fail(fmt.Errorf("engine: buyer %q is not registered", s.fn.Buyer))
			return
		}
		reqID, err := e.platform.SubmitRequest(s.want, s.fn)
		if err != nil {
			fail(err)
			return
		}
		e.stApplied.Add(1)
		e.openReqs[reqID] = s.ticket
		e.setTicket(s.ticket, func(t *Ticket) {
			t.Status, t.Epoch, t.RequestID = TicketApplied, ep, reqID
		})
		// Payload is nil for non-serializable (code-package) tasks; such
		// requests are served while the process lives but do not survive a
		// replay (see doc.go, "Durability").
		var pl *Payload
		if spec, ok := core.EncodeRequest(s.want, s.fn); ok {
			pl = &Payload{Request: spec}
		}
		e.log.Append(Event{Epoch: ep, Kind: EventRequestFiled, Ticket: s.ticket,
			Participant: s.fn.Buyer, RequestID: reqID, Payload: pl})
	}
}

// clear runs one arbiter matching round and publishes its outcome.
func (e *Engine) clear(ep uint64) (matched, unmet int) {
	res, err := e.platform.MatchRound()
	if err != nil {
		e.log.Append(Event{Epoch: ep, Kind: EventRejected, Err: "match round: " + err.Error()})
		return 0, len(e.openReqs)
	}
	return e.publishRound(ep, res)
}

// publishRound folds one MatchResult into tickets, stats and the event log.
func (e *Engine) publishRound(ep uint64, res *arbiter.MatchResult) (matched, unmet int) {
	for _, tx := range res.Transactions {
		ticket := e.openReqs[tx.RequestID]
		delete(e.openReqs, tx.RequestID)
		e.stMatched.Add(1)
		matched++
		e.setTicket(ticket, func(t *Ticket) {
			t.Status, t.TxID, t.Price = TicketDone, tx.ID, tx.Price
		})
		e.log.Append(Event{Epoch: ep, Kind: EventTxSettled, Ticket: ticket,
			Participant: tx.Buyer, RequestID: tx.RequestID, TxID: tx.ID,
			Price: tx.Price, ArbiterCut: tx.ArbiterCut, SellerCuts: tx.SellerCuts,
			Satisfaction: tx.Satisfaction, Datasets: tx.Datasets,
			ExPost: tx.ExPost,
			Note:   fmt.Sprintf("datasets=%v satisfaction=%.2f", tx.Datasets, tx.Satisfaction)})
	}
	for _, reqID := range res.Unsatisfied {
		if ticket, ok := e.openReqs[reqID]; ok {
			unmet++
			e.log.Append(Event{Epoch: ep, Kind: EventRequestUnmet, Ticket: ticket, RequestID: reqID})
		}
	}
	return matched, unmet
}

// ticketParticipant reads the participant recorded at enqueue time.
func (e *Engine) ticketParticipant(id string) string {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if t, ok := e.tickets[id]; ok {
		return t.Participant
	}
	return ""
}
