package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arbiter"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// Config tunes the engine. The zero value is usable: 8 shards, no ticker
// (epochs run on TriggerEpoch or BatchThreshold only).
type Config struct {
	// Shards is the number of intake queues (participant-hashed).
	Shards int
	// EpochEvery, when > 0, runs an epoch on this period.
	EpochEvery time.Duration
	// BatchThreshold, when > 0, kicks an epoch early once this many
	// submissions are queued.
	BatchThreshold int
	// Persister, when non-nil, receives every event synchronously at append
	// time — the write-ahead hook (see internal/wal). Restored engines get
	// it attached after the recovered events are seeded, so replay never
	// re-persists.
	Persister Persister
	// Policy orders open requests into matching rounds (nil = FIFO arrival
	// order). See policy.go.
	Policy MatchPolicy
	// EpochMatchCap bounds how many open requests enter each matching
	// round; the rest are deferred (request-aged events) and re-ranked next
	// epoch. 0 = no cap.
	EpochMatchCap int
	// Admission configures intake admission control (quotas, per-epoch
	// request cap, queue-depth backpressure). Zero value = admit everything.
	Admission AdmissionConfig
	// DoDWorkers, when > 0, enables the async DoD builder pool: after each
	// epoch's drain+apply the distinct open want groups are built on up to
	// this many concurrent workers, and the matching round prices only the
	// pre-built, version-valid candidate sets; the pool also speculatively
	// re-warms the candidate cache between epochs for wants left unmet. 0
	// keeps builds inline inside the round (the pre-pipeline behavior).
	DoDWorkers int
	// BuildDeadline, when > 0, bounds every DoD candidate build: a want
	// group whose beam search outruns the deadline resolves to a failed
	// CandidateSet carrying context.DeadlineExceeded, the pricing stage
	// skips it like any failed build (the group retries next round), and
	// the worker — or the inline round — is freed rather than wedged.
	// Candidates are derived state, so the deadline never affects WAL
	// replay. 0 disables the bound.
	BuildDeadline time.Duration
	// Metrics, when non-nil, receives the engine's telemetry: epoch/round
	// histograms, per-shard intake depth, admission rejections by reason,
	// builder-pool and candidate-cache counters, and the submit→settle
	// request tracer. Metrics are derived state — nothing here is logged,
	// snapshotted or replayed, so enabling telemetry never changes the
	// event stream (see doc.go, "Durability").
	Metrics *obs.Registry
	// ShardLabel, when non-empty, marks this engine as one arbiter shard of
	// a federated market (internal/federation) sharing a registry with its
	// siblings: per-shard instruments carry it as a `shard` label (distinct
	// families, so the unlabeled aggregates keep their names), and the
	// engine skips the process-wide sampled families — several engines
	// registering the same closure would leave only the last one visible —
	// leaving them to the federation layer to register once, aggregated.
	// Purely observational: the label never reaches the event stream.
	ShardLabel string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// TicketStatus tracks a submission through its lifecycle.
type TicketStatus string

// Ticket statuses.
const (
	TicketQueued  TicketStatus = "queued"  // in an intake shard
	TicketApplied TicketStatus = "applied" // request filed, awaiting a match
	TicketDone    TicketStatus = "done"    // applied (shares/registers) or matched (requests)
	TicketFailed  TicketStatus = "failed"  // rejected at apply time
)

// Terminal reports whether the status can no longer change.
func (s TicketStatus) Terminal() bool { return s == TicketDone || s == TicketFailed }

// SubmissionKind names what a ticket tracks.
type SubmissionKind string

// Submission kinds.
const (
	KindRegister SubmissionKind = "register"
	KindShare    SubmissionKind = "share"
	KindRequest  SubmissionKind = "request"
	// KindReport is a buyer's ex-post value report: it settles a pending
	// escrow-backed transaction in the epoch runner, so the settlement is
	// event-logged (value-reported) and survives replay like every other
	// mutation.
	KindReport SubmissionKind = "report"
)

// Ticket is the pollable state of one submission.
type Ticket struct {
	ID          string         `json:"id"`
	Kind        SubmissionKind `json:"kind"`
	Status      TicketStatus   `json:"status"`
	Participant string         `json:"participant"`
	Epoch       uint64         `json:"epoch,omitempty"`      // epoch that applied it
	RequestID   string         `json:"request_id,omitempty"` // requests only
	TxID        string         `json:"tx_id,omitempty"`      // matched requests only
	Price       float64        `json:"price,omitempty"`      // matched requests only
	// Priority is the request's priority class (requests only).
	Priority int `json:"priority,omitempty"`
	// MatchedEpoch is the epoch whose round settled the request; with Epoch
	// (the filing epoch) it measures how long the request waited.
	MatchedEpoch uint64 `json:"matched_epoch,omitempty"`
	Err          string `json:"error,omitempty"`
}

type submission struct {
	seq    uint64
	ticket string
	kind   SubmissionKind
	// register
	name  string
	funds float64
	// share
	seller string
	id     catalog.DatasetID
	rel    *relation.Relation
	meta   wtp.DatasetMeta
	terms  license.Terms
	// request
	want     dod.Want
	fn       *wtp.Function
	priority int
	// report
	reportTx  string
	reported  float64
	trueValue float64
	// trace timestamps (zero unless telemetry is on; requests only)
	t0     time.Time // SubmitRequest* entry
	tAdmit time.Time // admission passed
}

// reqMeta is the engine-side policy metadata of one open request. FiledSeq
// is the request-filed event's seq; aged records whether the request's
// first policy deferral has been audit-logged (at most one request-aged
// record per request, so a capped backlog cannot amplify the WAL by
// O(backlog) every epoch). Guarded by epochMu.
type reqMeta struct {
	participant string
	priority    int
	filedEpoch  uint64
	filedSeq    int
	aged        bool
}

type shard struct {
	mu    sync.Mutex
	queue []submission
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Epochs       uint64 `json:"epochs"`
	Submitted    uint64 `json:"submitted"`
	Applied      uint64 `json:"applied"`
	Matched      uint64 `json:"matched"`
	Failed       uint64 `json:"failed"`
	OpenRequests int    `json:"open_requests"`
	Pending      int64  `json:"pending"`
	Events       int    `json:"events"`
	// Rejected counts admission-control rejections (quota / epoch cap) —
	// audit-logged, so the counter survives a restore.
	Rejected uint64 `json:"rejected,omitempty"`
	// Shed counts queue-depth backpressure rejections (transient overload
	// protection, not logged and not durable).
	Shed uint64 `json:"shed,omitempty"`
	// Aged counts requests the matching policy's per-epoch cap has
	// deferred at least once (one request-aged record each).
	Aged   uint64 `json:"aged,omitempty"`
	Policy string `json:"policy,omitempty"`
	// BuildMillis is cumulative wall-clock time spent building mashup
	// candidates — accounted to the DoD builders (worker pool or inline
	// cache misses), never to the matching round. In-memory observability
	// only: like Shed it is not logged and not durable.
	BuildMillis float64 `json:"build_millis,omitempty"`
	// CacheHits / CacheStale count candidate-cache reuses and version
	// invalidations in the DoD engine's versioned candidate store.
	CacheHits  uint64 `json:"cache_hits,omitempty"`
	CacheStale uint64 `json:"cache_stale,omitempty"`
	// SubJoinHits counts join prefixes reused from the DoD engine's
	// per-build sub-join memo during candidate materialization.
	SubJoinHits uint64 `json:"subjoin_hits,omitempty"`
	// BuildDeadlineExceeded / BuildsCancelled count DoD build requests
	// abandoned to Config.BuildDeadline or to cancellation (shutdown,
	// cancel-on-settle of speculative prebuilds).
	BuildDeadlineExceeded uint64 `json:"build_deadline_exceeded,omitempty"`
	BuildsCancelled       uint64 `json:"builds_cancelled,omitempty"`
	// DoDWorkers echoes the configured builder-pool size (0 = inline).
	DoDWorkers int `json:"dod_workers,omitempty"`
	// PriceMillis is cumulative wall-clock time spent in the price stage of
	// matching rounds (mechanism + revenue allocation). In-memory
	// observability only, like BuildMillis.
	PriceMillis float64 `json:"price_millis,omitempty"`
	// Allocator counters, sampled from the market package's process-wide
	// counters (monotone; shared across every engine in the process):
	// characteristic-function evaluations, memo hits, exact/sampled
	// allocation runs, and exact→sampled escalations on wide mashups.
	AllocEvals       uint64        `json:"alloc_evals,omitempty"`
	AllocMemoHits    uint64        `json:"alloc_memo_hits,omitempty"`
	AllocExact       uint64        `json:"alloc_exact,omitempty"`
	AllocSampled     uint64        `json:"alloc_sampled,omitempty"`
	AllocEscalations uint64        `json:"alloc_escalations,omitempty"`
	LastPersisted    int           `json:"last_persisted,omitempty"`
	PersistErr       string        `json:"persist_error,omitempty"`
	Uptime           time.Duration `json:"uptime"`
	MatchesPerSec    float64       `json:"matches_per_sec"`
}

// Engine is the concurrent front end to a core.Platform: sharded intake,
// epoch-batched clearing, append-only event publishing. See the package
// documentation for the model.
type Engine struct {
	platform *core.Platform
	cfg      Config
	log      *EventLog
	book     *ledger.SettlementBook

	shards  []*shard
	seq     atomic.Uint64
	pending atomic.Int64

	tmu     sync.Mutex
	tickets map[string]*Ticket

	epochMu  sync.Mutex // serializes epochs; guards openReqs, reqMeta
	openReqs map[string]string
	reqMeta  map[string]*reqMeta // request ID -> policy metadata
	epoch    atomic.Uint64

	// Cross-shard (federated) transaction state, guarded by epochMu and
	// rebuilt from the log on replay: xtxHeld tracks escrows a prepare is
	// holding (home shard, pre-decision), xtxDone marks transactions whose
	// terminal record (commit or abort) this shard has logged — the
	// idempotency backstop for coordinator re-drives. See xtx.go.
	xtxHeld map[string]*xtxHold
	xtxDone map[string]bool

	policy   MatchPolicy
	matchCap int
	adm      *admission     // nil when quota/cap admission is disabled
	pool     *buildPool     // nil when DoDWorkers is 0 (inline builds)
	m        *engineMetrics // telemetry sink; non-nil, disabled without cfg.Metrics

	// bookSeq is the settlement subscriber's high-water mark: the last log
	// seq folded into the book. Snapshot waits on bookCond until it reaches
	// the log head, so checkpoints include every settlement the log already
	// carries. bookDone flips when the subscriber exits (it drains
	// everything present at log close first); only then may Snapshot fold a
	// remaining tail itself without double-recording.
	bookMu   sync.Mutex
	bookCond *sync.Cond
	bookSeq  int
	bookDone bool

	kick    chan struct{}
	stop    chan struct{}
	loopWG  sync.WaitGroup
	consWG  sync.WaitGroup
	started time.Time
	stopped atomic.Bool

	stSubmitted atomic.Uint64
	stApplied   atomic.Uint64
	stMatched   atomic.Uint64
	stFailed    atomic.Uint64
	stRejected  atomic.Uint64 // admission rejections (durable; see replay)
	stShed      atomic.Uint64 // queue-depth sheds (transient)
	stAged      atomic.Uint64 // policy deferrals (durable)
	// stPriceNanos accumulates price-stage wall-clock time (transient, like
	// BuildMillis) — always, not only when telemetry is enabled.
	stPriceNanos atomic.Int64
	// stMatchedAtBoot is the replayed-match baseline after a Restore, so
	// MatchesPerSec reflects this process's rate, not history divided by a
	// fresh uptime.
	stMatchedAtBoot uint64
}

// New builds an engine over the platform. Call Start to run the background
// epoch loop, or drive epochs manually with TriggerEpoch. With
// cfg.Persister set, every event is written ahead to it; use Restore to
// boot from the persisted log after a restart.
func New(p *core.Platform, cfg Config) *Engine {
	e := newEngine(p, cfg, NewEventLog(), ledger.NewSettlementBook(), 0)
	if cfg.Persister != nil {
		e.log.SetPersister(cfg.Persister)
	}
	return e
}

// settlementFromEvent derives the book entry for one tx-settled or
// value-reported event — the single translation both the live subscriber and
// replay use. An ex-post sale books twice: the delivery (tx-settled,
// ExPost=true, cuts not yet final, excluded from conservation) and the
// report settlement (value-reported, booked as final with the realized
// price and fan-out).
func settlementFromEvent(ev Event) ledger.Settlement {
	cuts := make(map[string]ledger.Currency, len(ev.SellerCuts))
	for s, c := range ev.SellerCuts {
		cuts[s] = ledger.FromFloat(c)
	}
	return ledger.Settlement{
		TxID:       ev.TxID,
		Epoch:      ev.Epoch,
		Buyer:      ev.Participant,
		Price:      ledger.FromFloat(ev.Price),
		ArbiterCut: ledger.FromFloat(ev.ArbiterCut),
		SellerCuts: cuts,
		ExPost:     ev.ExPost && ev.Kind != EventValueReported,
	}
}

// newEngine wires an engine over a (possibly pre-seeded) log and settlement
// book; the subscriber starts folding at bookCursor, so restores that seed
// the book from a snapshot skip the already-folded prefix.
func newEngine(p *core.Platform, cfg Config, log *EventLog, book *ledger.SettlementBook, bookCursor int) *Engine {
	cfg = cfg.withDefaults()
	policy := cfg.Policy
	if policy == nil {
		policy = PolicyFIFO{}
	}
	e := &Engine{
		platform: p,
		cfg:      cfg,
		log:      log,
		book:     book,
		shards:   make([]*shard, cfg.Shards),
		tickets:  map[string]*Ticket{},
		openReqs: map[string]string{},
		reqMeta:  map[string]*reqMeta{},
		xtxHeld:  map[string]*xtxHold{},
		xtxDone:  map[string]bool{},
		policy:   policy,
		matchCap: cfg.EpochMatchCap,
		adm:      newAdmission(cfg.Admission, cfg.EpochEvery),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		started:  time.Now(),
	}
	e.m = newEngineMetrics(cfg.Metrics, cfg.Shards, cfg.ShardLabel)
	if cfg.BuildDeadline > 0 {
		p.SetBuildDeadline(cfg.BuildDeadline)
	}
	if cfg.DoDWorkers > 0 {
		e.pool = newBuildPool(p, cfg.DoDWorkers, e.m)
	}
	if cfg.Metrics != nil {
		if cfg.ShardLabel == "" {
			e.registerFuncMetrics(cfg.Metrics)
		}
		buildDur := cfg.Metrics.NewHistogram("dod_build_seconds",
			"Wall-clock duration of each candidate build (beam search + materialize).", obs.FastBuckets)
		p.SetBuildObserver(func(s float64) { buildDur.Observe(s) })
	}
	e.bookCond = sync.NewCond(&e.bookMu)
	e.bookSeq = bookCursor
	for i := range e.shards {
		e.shards[i] = &shard{}
	}
	// Settlement subscriber: folds tx-settled events into the settlement
	// book. Runs until Stop closes the log and the tail is drained.
	e.consWG.Add(1)
	go func() {
		defer e.consWG.Done()
		defer func() {
			e.bookMu.Lock()
			e.bookDone = true
			e.bookCond.Broadcast()
			e.bookMu.Unlock()
		}()
		cursor := bookCursor
		for {
			evs, open := e.log.WaitAfter(cursor)
			for _, ev := range evs {
				cursor = ev.Seq
				if ev.Kind == EventTxSettled || ev.Kind == EventValueReported {
					e.book.Record(settlementFromEvent(ev))
				}
			}
			e.bookMu.Lock()
			e.bookSeq = cursor
			e.bookCond.Broadcast()
			e.bookMu.Unlock()
			if !open {
				return
			}
		}
	}()
	return e
}

// Durable reports whether a write-ahead persister is attached to the event
// log. dmms uses it to refuse synchronous mutations that would bypass the
// log on a durable server.
func (e *Engine) Durable() bool { return e.log.durable() }

// Start launches the background epoch loop (ticker- and threshold-driven).
func (e *Engine) Start() {
	e.loopWG.Add(1)
	go func() {
		defer e.loopWG.Done()
		var tick <-chan time.Time
		if e.cfg.EpochEvery > 0 {
			t := time.NewTicker(e.cfg.EpochEvery)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-e.stop:
				return
			case <-tick:
				e.TriggerEpoch()
			case <-e.kick:
				e.TriggerEpoch()
			}
		}
	}()
}

// Stop shuts the loop down, runs one final epoch to flush queued intake,
// closes the event log and waits for subscribers to drain.
func (e *Engine) Stop() {
	if e.stopped.Swap(true) {
		return
	}
	close(e.stop)
	e.loopWG.Wait()
	e.TriggerEpoch()
	if e.pool != nil {
		e.pool.close()
	}
	e.log.Close()
	e.consWG.Wait()
}

// Log exposes the event log for external subscribers (metrics, provenance).
func (e *Engine) Log() *EventLog { return e.log }

// Settlements exposes the settlement book the built-in subscriber maintains.
func (e *Engine) Settlements() *ledger.SettlementBook { return e.book }

// Events returns all events with Seq > after.
func (e *Engine) Events(after int) []Event { return e.log.Since(after) }

// Ticket returns a snapshot of one submission's state.
func (e *Engine) Ticket(id string) (Ticket, bool) {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	t, ok := e.tickets[id]
	if !ok {
		return Ticket{}, false
	}
	return *t, true
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.epochMu.Lock()
	open := len(e.openReqs)
	e.epochMu.Unlock()
	up := time.Since(e.started)
	matched := e.stMatched.Load()
	mps := 0.0
	if up > 0 {
		mps = float64(matched-e.stMatchedAtBoot) / up.Seconds()
	}
	persisted, perr := e.log.Persisted()
	cache := e.platform.DoDCacheStats()
	alloc := market.AllocCounters()
	st := Stats{
		Epochs:                e.epoch.Load(),
		Submitted:             e.stSubmitted.Load(),
		Applied:               e.stApplied.Load(),
		Matched:               matched,
		Failed:                e.stFailed.Load(),
		OpenRequests:          open,
		Pending:               e.pending.Load(),
		Events:                e.log.Len(),
		Rejected:              e.stRejected.Load(),
		Shed:                  e.stShed.Load(),
		Aged:                  e.stAged.Load(),
		Policy:                e.policy.Name(),
		BuildMillis:           cache.BuildMillis,
		CacheHits:             cache.Hits,
		CacheStale:            cache.Stale,
		SubJoinHits:           cache.SubJoinHits,
		BuildDeadlineExceeded: cache.DeadlineExceeded,
		BuildsCancelled:       cache.Cancelled,
		DoDWorkers:            e.cfg.DoDWorkers,
		PriceMillis:           float64(e.stPriceNanos.Load()) / 1e6,
		AllocEvals:            alloc.Evals,
		AllocMemoHits:         alloc.MemoHits,
		AllocExact:            alloc.ExactRuns,
		AllocSampled:          alloc.SampledRuns,
		AllocEscalations:      alloc.Escalations,
		LastPersisted:         persisted,
		Uptime:                up,
		MatchesPerSec:         mps,
	}
	if perr != nil {
		st.PersistErr = perr.Error()
	}
	return st
}

// StatsLite returns the atomic-counter slice of Stats without taking the
// epoch lock, so it is safe to sample at scrape time even while an epoch is
// mid-flight. OpenRequests comes from the arbiter's own registry rather than
// the engine's epoch-locked map; the derived fields (cache/allocator
// counters, rates) are left zero — the federation layer's aggregated
// /metrics funcs use this, the full Stats serves /engine/stats.
func (e *Engine) StatsLite() Stats {
	return Stats{
		Epochs:       e.epoch.Load(),
		Submitted:    e.stSubmitted.Load(),
		Applied:      e.stApplied.Load(),
		Matched:      e.stMatched.Load(),
		Failed:       e.stFailed.Load(),
		OpenRequests: e.platform.OpenRequestCount(),
		Pending:      e.pending.Load(),
		Events:       e.log.Len(),
		Rejected:     e.stRejected.Load(),
		Shed:         e.stShed.Load(),
		Aged:         e.stAged.Load(),
	}
}

// SubmitRegister queues a participant registration and returns its ticket.
// Under queue-depth backpressure it returns an *OverloadError instead.
func (e *Engine) SubmitRegister(name string, funds float64) (string, error) {
	if err := e.admitDepth(name); err != nil {
		return "", err
	}
	return e.enqueue(submission{kind: KindRegister, name: name, funds: funds}, name, name), nil
}

// SubmitShare queues a seller's dataset share and returns its ticket.
// Under queue-depth backpressure it returns an *OverloadError instead.
func (e *Engine) SubmitShare(seller string, id catalog.DatasetID, rel *relation.Relation,
	meta wtp.DatasetMeta, terms license.Terms) (string, error) {
	if err := e.admitDepth(seller); err != nil {
		return "", err
	}
	return e.enqueue(submission{kind: KindShare, seller: seller, id: id, rel: rel,
		meta: meta, terms: terms}, seller, seller), nil
}

// SubmitRequest queues a buyer's data need at normal priority and returns
// its ticket. The request stays open across epochs until a matching round
// satisfies it.
func (e *Engine) SubmitRequest(want dod.Want, f *wtp.Function) (string, error) {
	return e.SubmitRequestPriority(want, f, PriorityNormal)
}

// SubmitRequestPriority queues a buyer's data need under a priority class.
// Admission control runs before anything is queued or logged: a rejected
// request gets no ticket and returns a typed *OverloadError carrying a
// retry-after hint. Quota and epoch-cap rejections are audit-logged as
// aggregated request-rejected events — one per participant and reason per
// epoch window, flushed at epoch end — so the shedding path itself never
// writes to the WAL or contends on the epoch lock.
func (e *Engine) SubmitRequestPriority(want dod.Want, f *wtp.Function, priority int) (string, error) {
	var t0 time.Time
	if e.m.on() {
		t0 = time.Now()
	}
	if err := e.admitDepth(f.Buyer); err != nil {
		return "", err
	}
	if e.adm != nil {
		if oerr := e.adm.admitRequest(f.Buyer); oerr != nil {
			// On ticker-less engines a rejection must kick the epoch loop
			// itself: it enqueues nothing, the refill the caller is told to
			// retry against only happens at a counted epoch, and nothing
			// else would ever reach one while every retry is shed. Ticker
			// engines get the flush epoch on the next tick instead — an
			// unconditional kick would let a hammering client drive epochs
			// (and their WAL records) at its retry rate.
			if e.cfg.EpochEvery <= 0 {
				select {
				case e.kick <- struct{}{}:
				default:
				}
			}
			return "", oerr
		}
	}
	s := submission{kind: KindRequest, want: want, fn: f, priority: priority, t0: t0}
	if e.m.on() {
		s.tAdmit = time.Now()
	}
	return e.enqueue(s, f.Buyer, f.Buyer), nil
}

// SubmitReport queues a buyer's ex-post value report against a delivered
// transaction and returns its ticket. The settlement runs in the epoch
// runner and is published as a value-reported event, so on durable engines
// the report flows through the WAL like every other mutation. The ticket's
// participant is filled with the paying buyer at apply time (the report is
// addressed by transaction, which also picks its intake shard). Under
// queue-depth backpressure it returns an *OverloadError instead.
func (e *Engine) SubmitReport(txID string, reported, trueValue float64) (string, error) {
	if err := e.admitDepth(""); err != nil {
		return "", err
	}
	return e.enqueue(submission{kind: KindReport, reportTx: txID,
		reported: reported, trueValue: trueValue}, txID, ""), nil
}

// admitDepth applies queue-depth backpressure to every submission kind.
func (e *Engine) admitDepth(participant string) error {
	max := e.cfg.Admission.MaxPending
	if max <= 0 || e.pending.Load() < int64(max) {
		return nil
	}
	e.stShed.Add(1)
	e.m.observeRejection(OverloadQueueDepth, 1)
	retry := e.cfg.EpochEvery
	if retry <= 0 {
		retry = defaultRetryAfter
	}
	return &OverloadError{Reason: OverloadQueueDepth, Participant: participant, RetryAfter: retry}
}

// enqueue queues one submission. shardKey picks the intake shard (the
// participant for ordinary submissions, the transaction ID for reports);
// participant is what the ticket records.
func (e *Engine) enqueue(s submission, shardKey, participant string) string {
	s.seq = e.seq.Add(1)
	s.ticket = fmt.Sprintf("sub-%06d", s.seq)

	e.tmu.Lock()
	e.tickets[s.ticket] = &Ticket{ID: s.ticket, Kind: s.kind, Status: TicketQueued,
		Participant: participant, Priority: s.priority}
	e.tmu.Unlock()

	idx := shardOf(shardKey, len(e.shards))
	sh := e.shards[idx]
	sh.mu.Lock()
	sh.queue = append(sh.queue, s)
	sh.mu.Unlock()

	if e.m.on() {
		e.m.shardGauge(idx).Add(1)
		if s.kind == KindRequest {
			e.m.tracer.Begin(s.ticket, s.t0)
			e.m.tracer.Stamp(s.ticket, obs.StageAdmit, s.tAdmit)
			e.m.tracer.Stamp(s.ticket, obs.StageEnqueue, time.Now())
		}
	}
	e.stSubmitted.Add(1)
	if n := e.pending.Add(1); e.cfg.BatchThreshold > 0 && n >= int64(e.cfg.BatchThreshold) {
		select {
		case e.kick <- struct{}{}:
		default:
		}
	}
	return s.ticket
}

func shardOf(participant string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(participant))
	return int(h.Sum32() % uint32(n))
}

// drain swaps out every shard queue and returns the batch in global
// submission order.
func (e *Engine) drain() []submission {
	var batch []submission
	for i, sh := range e.shards {
		sh.mu.Lock()
		n := len(sh.queue)
		batch = append(batch, sh.queue...)
		sh.queue = nil
		sh.mu.Unlock()
		if n > 0 {
			e.m.shardGauge(i).Add(float64(-n))
		}
	}
	e.pending.Add(-int64(len(batch)))
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	return batch
}

func (e *Engine) setTicket(id string, f func(*Ticket)) {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if t, ok := e.tickets[id]; ok {
		f(t)
	}
}

// TriggerEpoch runs one epoch synchronously: drain intake, apply the batch,
// run a policy-ordered matching round if requests are open, publish events.
// Epochs with no work are skipped (returns the current epoch number and
// false). With an empty batch but open requests, the matching round still
// runs — supply can arrive through the synchronous dmms endpoints, bypassing
// intake — but a round that matches nothing is not counted as an epoch and
// publishes no events (its unmet-demand increments are discarded too, so
// uncounted rounds leave no state the WAL could not replay). The one
// exception: pending admission-rejection audits force a flush-only counted
// epoch, because the quota refill they are waiting for only happens at a
// counted epoch end. Safe to call concurrently with intake and with the
// background loop.
func (e *Engine) TriggerEpoch() (uint64, bool) {
	if !e.m.on() {
		return e.triggerEpoch()
	}
	start := time.Now()
	ep, counted := e.triggerEpoch()
	if counted {
		e.m.observeEpoch(start)
	}
	return ep, counted
}

func (e *Engine) triggerEpoch() (uint64, bool) {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()

	batch := e.drain()
	if len(batch) == 0 {
		if len(e.openReqs) > 0 {
			// Tentative round at the prospective epoch number: only counted
			// (and published) when something matches.
			deferred, res, err := e.runRound(e.epoch.Load() + 1)
			if err == nil && len(res.Transactions) > 0 {
				ep := e.epoch.Add(1)
				e.log.Append(Event{Epoch: ep, Kind: EventEpochStart,
					Note: fmt.Sprintf("0 queued, %d open requests", len(e.openReqs))})
				e.emitAged(ep, deferred)
				e.platform.AddUnmet(res.UnmetCols)
				matched, unmet := e.publishRound(ep, res)
				e.endEpoch(ep, 0, matched, unmet, res.UnmetCols)
				return ep, true
			}
		}
		// No matchable work — but shed audits pending mean starved clients
		// are waiting on a quota refill only a counted epoch delivers.
		// Count a flush-only epoch so an idle market cannot deadlock a
		// participant whose bucket sits below one token forever.
		if e.adm != nil && e.adm.hasPendingRejections() {
			ep := e.epoch.Add(1)
			e.log.Append(Event{Epoch: ep, Kind: EventEpochStart,
				Note: fmt.Sprintf("0 queued, %d open requests, admission flush", len(e.openReqs))})
			e.endEpoch(ep, 0, 0, 0, nil)
			return ep, true
		}
		return e.epoch.Load(), false
	}

	ep := e.epoch.Add(1)
	e.log.Append(Event{Epoch: ep, Kind: EventEpochStart,
		Note: fmt.Sprintf("%d queued, %d open requests", len(batch), len(e.openReqs))})

	for _, s := range batch {
		e.apply(ep, s)
	}
	var matched, unmet int
	var unmetCols map[string]int
	if len(e.openReqs) > 0 {
		matched, unmet, unmetCols = e.clear(ep)
	}
	e.endEpoch(ep, len(batch), matched, unmet, unmetCols)
	return ep, true
}

// endEpoch flushes the window's aggregated admission rejections, publishes
// the epoch-end record (carrying the round's unmet-demand increments for
// replay) and refills the admission window. Rejection audit records and
// the counter bump happen only here, under the epoch lock, so checkpoints
// capture them as one cut and replay rebuilds the same counter.
func (e *Engine) endEpoch(ep uint64, applied, matched, unmet int, unmetCols map[string]int) {
	refill := 1.0
	if e.adm != nil {
		for _, r := range e.adm.takePendingRejections() {
			e.log.Append(Event{Epoch: ep, Kind: EventRequestRejected,
				Participant: r.participant, Note: r.reason, Count: r.count})
			e.stRejected.Add(r.count)
			e.m.observeRejection(r.reason, float64(r.count))
		}
		refill = e.adm.refillFraction()
	}
	if len(unmetCols) == 0 {
		unmetCols = nil
	}
	ev := Event{Epoch: ep, Kind: EventEpochEnd, UnmetColumns: unmetCols,
		Note: fmt.Sprintf("applied=%d matched=%d unmet=%d", applied, matched, unmet)}
	if e.adm != nil && refill != 1 {
		// Record partial refills so replay applies exactly the quanta the
		// live run earned (a full quantum is the omitted default).
		ev.QuotaRefill = refill
	}
	e.log.Append(ev)
	if e.adm != nil {
		e.adm.refill(refill)
	}
}

// selectRound ranks the open requests under the matching policy at the
// given epoch and splits them at the per-epoch cap. A nil ids slice means
// "every open request in arrival order" (the legacy fast path, used when no
// policy or cap is configured — the arbiter's own ordering is authoritative
// there). Caller holds epochMu.
func (e *Engine) selectRound(ep uint64) (ids []string, deferred []RequestCandidate) {
	if e.matchCap <= 0 {
		if _, fifo := e.policy.(PolicyFIFO); fifo {
			return nil, nil
		}
	}
	cands := make([]RequestCandidate, 0, len(e.openReqs))
	for reqID, ticket := range e.openReqs {
		c := RequestCandidate{RequestID: reqID, Ticket: ticket}
		if m := e.reqMeta[reqID]; m != nil {
			c.Participant = m.participant
			c.Priority, c.FiledEpoch, c.FiledSeq = m.priority, m.filedEpoch, m.filedSeq
		} else {
			// Pre-policy snapshots carry no meta; the ticket still knows.
			c.Participant = e.ticketParticipant(ticket)
		}
		if ep > c.FiledEpoch {
			c.Age = ep - c.FiledEpoch
		}
		cands = append(cands, c)
	}
	selected, deferred := SelectCandidates(e.policy, cands, e.matchCap)
	ids = make([]string, len(selected))
	for i, c := range selected {
		ids[i] = c.RequestID
	}
	// Requests filed outside the engine (the synchronous dmms surface on a
	// non-durable server) have no ticket or policy metadata; they ride
	// along in every round, outside the cap, so a policy configuration can
	// never strand them — exactly the pre-policy MatchRound behavior.
	for _, id := range e.platform.Arbiter.OpenRequests() {
		if _, tracked := e.openReqs[id]; !tracked {
			ids = append(ids, id)
		}
	}
	return ids, deferred
}

// emitAged publishes one request-aged record the first time the policy
// defers a request past a round. Later deferrals of the same request write
// nothing — the age keeps deriving from the request-filed record — so a
// long backlog costs at most one audit record per request over its
// lifetime, never O(backlog) per epoch.
func (e *Engine) emitAged(ep uint64, deferred []RequestCandidate) {
	for _, c := range deferred {
		m := e.reqMeta[c.RequestID]
		if m == nil || m.aged {
			continue
		}
		m.aged = true
		e.stAged.Add(1)
		e.m.observeAged()
		e.log.Append(Event{Epoch: ep, Kind: EventRequestAged, Ticket: c.Ticket,
			RequestID: c.RequestID, Participant: c.Participant, Age: c.Age,
			Note: fmt.Sprintf("deferred by %s policy", e.policy.Name())})
	}
}

// apply replays one submission against the platform, under epochMu.
func (e *Engine) apply(ep uint64, s submission) {
	fail := func(err error) {
		e.stFailed.Add(1)
		e.m.tracer.Drop(s.ticket)
		e.setTicket(s.ticket, func(t *Ticket) {
			t.Status, t.Epoch, t.Err = TicketFailed, ep, err.Error()
		})
		e.log.Append(Event{Epoch: ep, Kind: EventRejected, Ticket: s.ticket,
			Participant: e.ticketParticipant(s.ticket), SubKind: s.kind,
			Priority: s.priority, Err: err.Error()})
	}
	switch s.kind {
	case KindRegister:
		if err := e.platform.RegisterParticipant(s.name, s.funds); err != nil {
			fail(err)
			return
		}
		e.stApplied.Add(1)
		e.setTicket(s.ticket, func(t *Ticket) { t.Status, t.Epoch = TicketDone, ep })
		e.log.Append(Event{Epoch: ep, Kind: EventRegistered, Ticket: s.ticket,
			Participant: s.name, Price: s.funds})
	case KindShare:
		if err := e.platform.ShareDataset(s.seller, s.id, s.rel, s.meta, s.terms); err != nil {
			fail(err)
			return
		}
		e.stApplied.Add(1)
		e.setTicket(s.ticket, func(t *Ticket) { t.Status, t.Epoch = TicketDone, ep })
		meta := s.meta
		meta.Dataset = string(s.id)
		e.log.Append(Event{Epoch: ep, Kind: EventDatasetShared, Ticket: s.ticket,
			Participant: s.seller, Dataset: string(s.id),
			Payload: &Payload{Relation: s.rel, Meta: &meta,
				License: string(s.terms.Kind), TaxRate: s.terms.ExclusivityTaxRate}})
	case KindRequest:
		// Canonical quota consumption happens here, at apply time, so the
		// bucket level is a pure function of the event stream (exactly one
		// request-filed or submission-rejected record follows) and replay
		// reproduces it; the submit-time reservation is released with it.
		if e.adm != nil {
			e.adm.commit(s.fn.Buyer)
		}
		if !e.platform.HasAccount(s.fn.Buyer) {
			fail(fmt.Errorf("engine: buyer %q is not registered", s.fn.Buyer))
			return
		}
		reqID, err := e.platform.SubmitRequest(s.want, s.fn)
		if err != nil {
			fail(err)
			return
		}
		e.stApplied.Add(1)
		e.openReqs[reqID] = s.ticket
		e.setTicket(s.ticket, func(t *Ticket) {
			t.Status, t.Epoch, t.RequestID = TicketApplied, ep, reqID
		})
		// Payload is nil for non-serializable (code-package) tasks; such
		// requests are served while the process lives but do not survive a
		// replay (see doc.go, "Durability").
		var pl *Payload
		if spec, ok := core.EncodeRequest(s.want, s.fn); ok {
			pl = &Payload{Request: spec}
		}
		seq := e.log.Append(Event{Epoch: ep, Kind: EventRequestFiled, Ticket: s.ticket,
			Participant: s.fn.Buyer, RequestID: reqID, Priority: s.priority, Payload: pl})
		e.reqMeta[reqID] = &reqMeta{participant: s.fn.Buyer, priority: s.priority, filedEpoch: ep, filedSeq: seq}
	case KindReport:
		out, err := e.platform.SettleReport(s.reportTx, s.reported, s.trueValue)
		if err != nil {
			fail(err)
			return
		}
		e.stApplied.Add(1)
		if e.m.on() {
			e.m.tracer.StampTx(s.reportTx, obs.StageReport, time.Now())
		}
		e.setTicket(s.ticket, func(t *Ticket) {
			t.Status, t.Epoch, t.TxID, t.Price = TicketDone, ep, out.TxID, out.Paid
			t.Participant = out.Buyer
		})
		e.log.Append(Event{Epoch: ep, Kind: EventValueReported, Ticket: s.ticket,
			Participant: out.Buyer, RequestID: out.RequestID, TxID: out.TxID,
			Price: out.Paid, ArbiterCut: out.ArbiterCut, SellerCuts: out.SellerCuts,
			Reported: s.reported, Audited: out.Audited, ExPost: true,
			Note: fmt.Sprintf("reported=%.2f paid=%.2f audited=%v", s.reported, out.Paid, out.Audited)})
	}
}

// runRound executes the two-stage pipeline for one prospective round: policy
// selection, then — with a builder pool — the build stage (distinct open
// want groups fanned out to workers, epoch runner blocked only on the
// slowest build, not the sum) and the price stage over the pre-built,
// version-valid candidate sets. Without a pool, PriceRoundFor builds inline
// through the candidate cache, preserving the pre-pipeline behavior. Caller
// holds epochMu.
func (e *Engine) runRound(ep uint64) (deferred []RequestCandidate, res *arbiter.MatchResult, err error) {
	ids, deferred := e.selectRound(ep)
	// The build path is ctx-threaded end to end; the per-group deadline
	// itself (Config.BuildDeadline) is applied inside dod.BuildCached, so it
	// bounds pool, inline-fallback and price-time rebuild builds alike.
	ctx := context.Background()
	var prebuilt map[string]*dod.CandidateSet
	if e.pool != nil {
		prebuilt = e.pool.buildAll(ctx, e.platform.OpenWantGroups(ids))
		if e.m.on() {
			e.stampOpen(ids, obs.StageBuild)
		}
	}
	priceStart := time.Now()
	res, err = e.platform.PriceRoundFor(ctx, ids, prebuilt)
	priceDur := time.Since(priceStart)
	e.stPriceNanos.Add(priceDur.Nanoseconds())
	if e.m.on() {
		e.m.observeRound(priceDur.Seconds())
		e.stampOpen(ids, obs.StagePrice)
	}
	return deferred, res, err
}

// clear runs one policy-ordered matching round and publishes its outcome.
func (e *Engine) clear(ep uint64) (matched, unmet int, unmetCols map[string]int) {
	deferred, res, err := e.runRound(ep)
	if err != nil {
		e.log.Append(Event{Epoch: ep, Kind: EventRejected, Err: "match round: " + err.Error()})
		return 0, len(e.openReqs), nil
	}
	e.emitAged(ep, deferred)
	e.platform.AddUnmet(res.UnmetCols)
	matched, unmet = e.publishRound(ep, res)
	if e.pool != nil {
		// Cancel-on-settle: abandon speculative builds for wants this round
		// cleared — their result would warm a slot nobody will price. The
		// active set is every still-open want group.
		active := map[string]bool{}
		for _, w := range e.platform.OpenWantGroups(nil) {
			active[w.Key()] = true
		}
		e.pool.cancelSettled(active)
		if len(res.Unsatisfied) > 0 {
			// Speculative stage: re-warm the cache for the wants this round left
			// unmet, off the epoch path. If supply arrives before the next round
			// (bumping the catalog version), the rebuild has already happened by
			// the time the next build stage asks.
			e.pool.prebuild(e.platform.OpenWantGroups(res.Unsatisfied))
		}
	}
	return matched, unmet, res.UnmetCols
}

// publishRound folds one MatchResult into tickets, stats and the event log.
func (e *Engine) publishRound(ep uint64, res *arbiter.MatchResult) (matched, unmet int) {
	for _, tx := range res.Transactions {
		ticket := e.openReqs[tx.RequestID]
		delete(e.openReqs, tx.RequestID)
		delete(e.reqMeta, tx.RequestID)
		e.stMatched.Add(1)
		matched++
		if e.m.on() {
			e.m.tracer.Finish(ticket, time.Now())
			e.m.tracer.AliasTx(tx.ID, ticket)
		}
		e.setTicket(ticket, func(t *Ticket) {
			t.Status, t.TxID, t.Price, t.MatchedEpoch = TicketDone, tx.ID, tx.Price, ep
		})
		e.log.Append(Event{Epoch: ep, Kind: EventTxSettled, Ticket: ticket,
			Participant: tx.Buyer, RequestID: tx.RequestID, TxID: tx.ID,
			Price: tx.Price, ArbiterCut: tx.ArbiterCut, SellerCuts: tx.SellerCuts,
			Satisfaction: tx.Satisfaction, Datasets: tx.Datasets,
			ExPost: tx.ExPost, ExPostShares: tx.ExPostShares,
			Note: fmt.Sprintf("datasets=%v satisfaction=%.2f", tx.Datasets, tx.Satisfaction)})
	}
	for _, reqID := range res.Unsatisfied {
		if ticket, ok := e.openReqs[reqID]; ok {
			unmet++
			e.log.Append(Event{Epoch: ep, Kind: EventRequestUnmet, Ticket: ticket, RequestID: reqID})
		}
	}
	return matched, unmet
}

// ticketParticipant reads the participant recorded at enqueue time.
func (e *Engine) ticketParticipant(id string) string {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if t, ok := e.tickets[id]; ok {
		return t.Participant
	}
	return ""
}
