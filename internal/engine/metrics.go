package engine

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/relation"
)

// engineMetrics is the engine's telemetry surface: instruments registered on
// the Config.Metrics registry plus the request tracer. It is always
// constructed (never nil on a live engine) but with a nil registry every
// instrument inside is nil — and obs instruments are nil-safe no-ops — so
// instrumented code paths carry no "telemetry enabled?" branches beyond the
// on() guard that skips timestamp capture.
//
// Everything here is derived state: metrics observe the event flow, they
// never join it. No instrument writes to the event log or WAL, which is what
// keeps the crash/replay matrix byte-identical with telemetry enabled.
type engineMetrics struct {
	enabled bool
	// label is the federation shard label (Config.ShardLabel). When set, the
	// unlabeled families below are shared with sibling shard engines on the
	// same registry (idempotent registration returns one instrument, so they
	// aggregate across the federation), and the sh* vec children add the
	// per-shard view under `shard`-labeled families. The tracer histograms
	// stay unlabeled on purpose: submit→settle latency is a market-wide
	// figure, and consumers (the bench artifact) pull them back by name as
	// plain histograms.
	label string

	epochDur   *obs.Histogram  // engine_epoch_seconds
	epochLag   *obs.Histogram  // engine_epoch_lag_seconds
	roundDur   *obs.Histogram  // arbiter_round_seconds
	shardDepth []*obs.Gauge    // engine_intake_queue_depth{shard} (or {shard,queue} when labeled)
	rejections *obs.CounterVec // engine_admission_rejections_total{reason}
	aged       *obs.Counter    // engine_aged_requests_total
	workerBusy *obs.CounterVec // dod_worker_busy_seconds_total{worker}
	tracer     *obs.Tracer     // submit→settle spans

	// Per-shard views, nil unless label != "".
	shEpochDur   *obs.Histogram  // engine_shard_epoch_seconds{shard}
	shRoundDur   *obs.Histogram  // engine_shard_round_seconds{shard}
	shRejections *obs.CounterVec // engine_shard_admission_rejections_total{shard,reason}
	shAged       *obs.Counter    // engine_shard_aged_requests_total{shard}

	mu        sync.Mutex
	lastEpoch time.Time // previous counted epoch's completion, for lag
}

// on reports whether telemetry is live (and guards time.Now() capture on hot
// paths, so a metrics-less engine pays nothing).
func (m *engineMetrics) on() bool { return m != nil && m.enabled }

// newEngineMetrics registers the engine's instruments on reg. A nil reg
// yields a disabled (but non-nil) sink. A non-empty label (a federation
// shard index) adds the per-shard labeled families next to the shared
// unlabeled aggregates.
func newEngineMetrics(reg *obs.Registry, shards int, label string) *engineMetrics {
	if reg == nil {
		return &engineMetrics{}
	}
	m := &engineMetrics{
		enabled: true,
		label:   label,
		epochDur: reg.NewHistogram("engine_epoch_seconds",
			"Wall-clock duration of counted epochs (drain, apply, build, price, publish).", obs.DefBuckets),
		epochLag: reg.NewHistogram("engine_epoch_lag_seconds",
			"Gap between consecutive counted epochs.", obs.DefBuckets),
		roundDur: reg.NewHistogram("arbiter_round_seconds",
			"Wall-clock duration of the pricing stage of each matching round.", obs.DefBuckets),
		rejections: reg.NewCounterVec("engine_admission_rejections_total",
			"Submissions rejected by admission control, by reason.", "reason"),
		aged: reg.NewCounter("engine_aged_requests_total",
			"Requests the matching policy's per-epoch cap deferred at least once."),
		workerBusy: reg.NewCounterVec("dod_worker_busy_seconds_total",
			"Cumulative busy time of each DoD builder-pool worker.", "worker"),
		tracer: obs.NewTracer(
			reg.NewHistogram("engine_submit_to_settle_seconds",
				"End-to-end latency from request submission to settlement.", obs.DefBuckets),
			reg.NewHistogramVec("engine_stage_seconds",
				"Latency of each request pipeline stage (delta from the previous stamped stage).",
				obs.DefBuckets, "stage"),
			0),
	}
	if label != "" {
		m.shEpochDur = reg.NewHistogramVec("engine_shard_epoch_seconds",
			"Wall-clock duration of counted epochs, per federation shard.",
			obs.DefBuckets, "shard").With(label)
		m.shRoundDur = reg.NewHistogramVec("engine_shard_round_seconds",
			"Wall-clock duration of the pricing stage, per federation shard.",
			obs.DefBuckets, "shard").With(label)
		m.shRejections = reg.NewCounterVec("engine_shard_admission_rejections_total",
			"Admission rejections per federation shard, by reason.", "shard", "reason")
		m.shAged = reg.NewCounterVec("engine_shard_aged_requests_total",
			"Policy-deferred requests per federation shard.", "shard").With(label)
		// Intake depth needs both the market shard and the intake queue
		// index; the single-label family below would alias across engines.
		queueDepth := reg.NewGaugeVec("engine_shard_intake_queue_depth",
			"Queued submissions per federation shard and intake queue.", "shard", "queue")
		m.shardDepth = make([]*obs.Gauge, shards)
		for i := range m.shardDepth {
			m.shardDepth[i] = queueDepth.With(label, strconv.Itoa(i))
		}
		return m
	}
	queueDepth := reg.NewGaugeVec("engine_intake_queue_depth",
		"Queued submissions per intake shard.", "shard")
	m.shardDepth = make([]*obs.Gauge, shards)
	for i := range m.shardDepth {
		m.shardDepth[i] = queueDepth.With(strconv.Itoa(i))
	}
	return m
}

// observeRejection counts one admission rejection by reason, on the shared
// family and (when labeled) the per-shard one.
func (m *engineMetrics) observeRejection(reason string, n float64) {
	if !m.on() {
		return
	}
	m.rejections.With(reason).Add(n)
	if m.shRejections != nil {
		m.shRejections.With(m.label, reason).Add(n)
	}
}

// observeAged counts one first-time policy deferral.
func (m *engineMetrics) observeAged() {
	if !m.on() {
		return
	}
	m.aged.Inc()
	m.shAged.Inc() // nil-safe no-op when unlabeled
}

// observeRound records one pricing stage's wall clock.
func (m *engineMetrics) observeRound(seconds float64) {
	m.roundDur.Observe(seconds)
	m.shRoundDur.Observe(seconds) // nil-safe no-op when unlabeled
}

// observeEpoch records a counted epoch's duration and its lag behind the
// previous counted epoch.
func (m *engineMetrics) observeEpoch(start time.Time) {
	end := time.Now()
	m.epochDur.Observe(end.Sub(start).Seconds())
	m.shEpochDur.Observe(end.Sub(start).Seconds()) // nil-safe no-op when unlabeled
	m.mu.Lock()
	last := m.lastEpoch
	m.lastEpoch = end
	m.mu.Unlock()
	if !last.IsZero() {
		m.epochLag.Observe(start.Sub(last).Seconds())
	}
}

// observeWorkerBusy accounts one build's wall clock to a pool worker.
func (m *engineMetrics) observeWorkerBusy(worker int, seconds float64) {
	if !m.on() {
		return
	}
	m.workerBusy.With(strconv.Itoa(worker)).Add(seconds)
}

// shardGauge returns the intake-depth gauge for one shard (nil when off).
func (m *engineMetrics) shardGauge(i int) *obs.Gauge {
	if !m.on() || i >= len(m.shardDepth) {
		return nil
	}
	return m.shardDepth[i]
}

// registerFuncMetrics wires the sampled families — counters and gauges other
// subsystems already maintain as atomics — after the engine (and its pool)
// exist. Sampling happens at scrape time; none of these closures touch
// epochMu, so a scrape can never stall the epoch runner.
func (e *Engine) registerFuncMetrics(reg *obs.Registry) {
	reg.NewCounterFunc("engine_epochs_total",
		"Counted epochs since boot.", func() float64 { return float64(e.epoch.Load()) })
	reg.NewCounterFunc("engine_submitted_total",
		"Submissions accepted into intake.", func() float64 { return float64(e.stSubmitted.Load()) })
	reg.NewCounterFunc("engine_applied_total",
		"Submissions applied successfully.", func() float64 { return float64(e.stApplied.Load()) })
	reg.NewCounterFunc("engine_matched_total",
		"Requests settled by matching rounds.", func() float64 { return float64(e.stMatched.Load()) })
	reg.NewCounterFunc("engine_failed_total",
		"Submissions rejected at apply time.", func() float64 { return float64(e.stFailed.Load()) })
	reg.NewGaugeFunc("engine_pending_submissions",
		"Submissions queued across all intake shards.", func() float64 { return float64(e.pending.Load()) })
	reg.NewGaugeFunc("arbiter_open_requests",
		"Requests filed but not yet matched.", func() float64 { return float64(e.platform.OpenRequestCount()) })
	reg.NewGaugeFunc("arbiter_unmet_wants",
		"Distinct wanted columns carrying unmet-demand signals.", func() float64 { return float64(e.platform.UnmetWantCount()) })

	reg.NewCounterFunc("dod_builds_total",
		"Beam searches actually run by the DoD engine.",
		func() float64 { return float64(e.platform.DoDCacheStats().Builds) })
	reg.NewCounterFunc("dod_cache_hits_total",
		"Version-valid candidate-cache reuses.",
		func() float64 { return float64(e.platform.DoDCacheStats().Hits) })
	reg.NewCounterFunc("dod_cache_stale_total",
		"Cache lookups invalidated by a catalog version bump.",
		func() float64 { return float64(e.platform.DoDCacheStats().Stale) })
	reg.NewCounterFunc("dod_cache_misses_total",
		"Cache lookups with no reusable entry.",
		func() float64 { return float64(e.platform.DoDCacheStats().Misses) })
	reg.NewCounterFunc("dod_cache_evictions_total",
		"Candidate-cache entries evicted to enforce the MaxEntries bound.",
		func() float64 { return float64(e.platform.DoDCacheStats().Evictions) })
	reg.NewGaugeFunc("dod_cache_entries",
		"Current candidate-cache population.",
		func() float64 { return float64(e.platform.DoDCacheStats().Entries) })
	reg.NewCounterFunc("dod_build_deadline_exceeded_total",
		"Build requests abandoned because they outran Config.BuildDeadline.",
		func() float64 { return float64(e.platform.DoDCacheStats().DeadlineExceeded) })
	reg.NewCounterFunc("dod_builds_cancelled_total",
		"Build requests abandoned to cancellation (shutdown, cancel-on-settle).",
		func() float64 { return float64(e.platform.DoDCacheStats().Cancelled) })
	reg.NewCounterFunc("dod_worker_panics_total",
		"Builds that panicked and were isolated to their want group (DoD recover plus pool backstop).",
		func() float64 {
			n := float64(e.platform.DoDCacheStats().Panics)
			if e.pool != nil {
				n += float64(e.pool.panics.Load())
			}
			return n
		})
	reg.NewGaugeFunc("dod_build_queue_depth",
		"Build jobs dispatched to the worker pool and not yet picked up.",
		func() float64 {
			if e.pool == nil {
				return 0
			}
			return float64(e.pool.queued.Load())
		})

	reg.NewCounterFunc("dod_subjoin_memo_hits_total",
		"Join prefixes reused from the per-build sub-join memo during candidate materialization.",
		func() float64 { return float64(e.platform.DoDCacheStats().SubJoinHits) })

	// Relation streaming counters sample the relation package's process-wide
	// atomics (same caveat as the market allocator counters below: several
	// engines in one process all report the process totals).
	reg.NewCounterFunc("relation_rows_streamed_total",
		"Rows drained through relation iterator pipelines into materialized results.",
		func() float64 {
			rows, _ := relation.StreamCounters()
			return float64(rows)
		})
	reg.NewCounterFunc("relation_materializations_total",
		"Iterator pipelines materialized into relations.",
		func() float64 {
			_, mats := relation.StreamCounters()
			return float64(mats)
		})

	reg.NewCounterFunc("engine_price_seconds_total",
		"Cumulative wall-clock time spent in the price stage of matching rounds.",
		func() float64 { return float64(e.stPriceNanos.Load()) / 1e9 })

	// Revenue-allocator counters. These sample the market package's
	// process-wide atomics (allocators are value types), so with several
	// engines in one process each registry reports the same process totals.
	reg.NewCounterFunc("market_allocator_evals_total",
		"Characteristic-function evaluations run by revenue allocators.",
		func() float64 { return float64(market.AllocCounters().Evals) })
	reg.NewCounterFunc("market_allocator_memo_hits_total",
		"Allocator coalition-value evaluations answered from a round memo.",
		func() float64 { return float64(market.AllocCounters().MemoHits) })
	reg.NewCounterFunc("market_allocator_exact_total",
		"Revenue allocations solved by exact Shapley enumeration.",
		func() float64 { return float64(market.AllocCounters().ExactRuns) })
	reg.NewCounterFunc("market_allocator_sampled_total",
		"Revenue allocations solved by permutation-sampled Shapley.",
		func() float64 { return float64(market.AllocCounters().SampledRuns) })
	reg.NewCounterFunc("market_allocator_escalations_total",
		"Exact-Shapley requests auto-escalated to sampling on wide mashups.",
		func() float64 { return float64(market.AllocCounters().Escalations) })
	reg.NewCounterFunc("market_allocator_incremental_total",
		"Incremental one-dataset-added split updates.",
		func() float64 { return float64(market.AllocCounters().Incremental) })
}

// stampOpen stamps stage s now on the tickets of the given open requests
// (nil ids = every open request). Caller holds epochMu.
func (e *Engine) stampOpen(ids []string, s obs.Stage) {
	now := time.Now()
	if ids == nil {
		for _, ticket := range e.openReqs {
			e.m.tracer.Stamp(ticket, s, now)
		}
		return
	}
	for _, id := range ids {
		if ticket, ok := e.openReqs[id]; ok {
			e.m.tracer.Stamp(ticket, s, now)
		}
	}
}

// TicketTrace returns the stamped pipeline stages of one submission's span
// (nil when telemetry is off or the span is unknown/evicted).
func (e *Engine) TicketTrace(id string) map[obs.Stage]time.Time {
	if !e.m.on() {
		return nil
	}
	return e.m.tracer.Stages(id)
}
