package engine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/license"
	"repro/internal/wtp"
)

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"": "fifo", "fifo": "fifo", "priority": "priority", "aging": "aging",
	} {
		p, err := ParsePolicy(name, 0)
		if err != nil || p.Name() != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %s", name, p, err, want)
		}
	}
	if _, err := ParsePolicy("lifo", 0); err == nil {
		t.Fatal("unknown policy should fail to parse")
	}
	ag, _ := ParsePolicy("aging", 2.5)
	if got := ag.(PolicyAging).AgeBoost; got != 2.5 {
		t.Fatalf("age boost not threaded: %v", got)
	}
}

func TestParsePriority(t *testing.T) {
	for s, want := range map[string]int{
		"": PriorityNormal, "normal": PriorityNormal,
		"low": PriorityLow, "high": PriorityHigh, "2": PriorityHigh,
	} {
		got, err := ParsePriority(s)
		if err != nil || got != want {
			t.Fatalf("ParsePriority(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	// Junk labels and out-of-range classes are rejected: an unbounded
	// client-chosen priority would defeat the aging wait bound.
	for _, s := range []string{"urgent-ish", "7", "-3", "1000000"} {
		if _, err := ParsePriority(s); err == nil {
			t.Fatalf("priority %q should fail to parse", s)
		}
	}
}

func TestSelectCandidatesOrdering(t *testing.T) {
	cands := []RequestCandidate{
		{RequestID: "r1", FiledSeq: 1, Priority: PriorityLow},
		{RequestID: "r2", FiledSeq: 2, Priority: PriorityHigh},
		{RequestID: "r3", FiledSeq: 3, Priority: PriorityNormal, Age: 4},
	}
	order := func(p MatchPolicy, cap int) []string {
		sel, _ := SelectCandidates(p, cands, cap)
		out := make([]string, len(sel))
		for i, c := range sel {
			out[i] = c.RequestID
		}
		return out
	}
	if got := order(PolicyFIFO{}, 0); got[0] != "r1" || got[1] != "r2" || got[2] != "r3" {
		t.Fatalf("fifo order %v", got)
	}
	if got := order(PolicyPriority{}, 0); got[0] != "r2" || got[1] != "r3" || got[2] != "r1" {
		t.Fatalf("priority order %v", got)
	}
	// Aging boost 1: r3 scores 1+4=5, past r2's fresh high of 2.
	if got := order(PolicyAging{}, 0); got[0] != "r3" || got[1] != "r2" || got[2] != "r1" {
		t.Fatalf("aging order %v", got)
	}
	sel, def := SelectCandidates(PolicyAging{}, cands, 1)
	if len(sel) != 1 || sel[0].RequestID != "r3" || len(def) != 2 {
		t.Fatalf("cap split wrong: sel=%v def=%v", sel, def)
	}
	// Ties break on FiledSeq: two fresh normal requests keep arrival order.
	tie := []RequestCandidate{
		{RequestID: "b", FiledSeq: 9, Priority: PriorityNormal},
		{RequestID: "a", FiledSeq: 4, Priority: PriorityNormal},
	}
	sel, _ = SelectCandidates(PolicyPriority{}, tie, 0)
	if sel[0].RequestID != "a" {
		t.Fatalf("tie should break on FiledSeq, got %v", sel)
	}
	// Input order untouched.
	if cands[0].RequestID != "r1" || cands[2].RequestID != "r3" {
		t.Fatalf("SelectCandidates mutated its input: %v", cands)
	}
}

func TestAdmissionQuotaRejectsAndRefills(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2,
		Admission: AdmissionConfig{QuotaPerEpoch: 1, QuotaBurst: 2}})
	defer e.Stop()
	mustTicket(e.SubmitRegister("b1", 1_000_000))
	e.TriggerEpoch()

	want, fn := coverageRequest("b1", 150)
	for i := 0; i < 2; i++ {
		if _, err := e.SubmitRequest(want, fn); err != nil {
			t.Fatalf("burst admission %d rejected: %v", i, err)
		}
	}
	_, err := e.SubmitRequest(want, fn)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverloadError, got %v", err)
	}
	if oe.Reason != OverloadQuota || oe.Participant != "b1" || oe.RetryAfter <= 0 {
		t.Fatalf("bad overload error: %+v", oe)
	}
	if _, err := e.SubmitRequest(want, fn); err == nil {
		t.Fatal("fourth request should also be shed")
	}
	// The shedding path writes nothing: the audit record is aggregated and
	// flushed by the next counted epoch.
	for _, ev := range e.Events(0) {
		if ev.Kind == EventRequestRejected {
			t.Fatalf("rejection logged before the epoch flush: %+v", ev)
		}
	}

	// The epoch applies the burst, flushes one aggregated audit record for
	// the two sheds, and refills one token.
	e.TriggerEpoch()
	rejected := 0
	for _, ev := range e.Events(0) {
		if ev.Kind == EventRequestRejected {
			rejected++
			if ev.Ticket != "" || ev.Participant != "b1" || ev.Note != OverloadQuota || ev.Count != 2 {
				t.Fatalf("bad aggregated request-rejected event: %+v", ev)
			}
		}
	}
	if rejected != 1 || e.Stats().Rejected != 2 {
		t.Fatalf("rejected events=%d stats=%d, want 1 event covering 2 sheds", rejected, e.Stats().Rejected)
	}
	if _, err := e.SubmitRequest(want, fn); err != nil {
		t.Fatalf("post-refill admission rejected: %v", err)
	}
	if _, err := e.SubmitRequest(want, fn); err == nil {
		t.Fatal("second post-refill admission should exceed the quota")
	}
}

func TestAdmissionEpochCap(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2,
		Admission: AdmissionConfig{EpochRequestCap: 2}})
	defer e.Stop()
	mustTicket(e.SubmitRegister("b1", 1_000_000))
	mustTicket(e.SubmitRegister("b2", 1_000_000))
	e.TriggerEpoch()

	w1, f1 := coverageRequest("b1", 150)
	w2, f2 := coverageRequest("b2", 150)
	mustTicket(e.SubmitRequest(w1, f1))
	mustTicket(e.SubmitRequest(w2, f2))
	_, err := e.SubmitRequest(w1, f1)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != OverloadEpochCap {
		t.Fatalf("want epoch-cap overload, got %v", err)
	}
	// A new epoch window opens after the epoch runs.
	e.TriggerEpoch()
	if _, err := e.SubmitRequest(w1, f1); err != nil {
		t.Fatalf("fresh window admission rejected: %v", err)
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2,
		Admission: AdmissionConfig{MaxPending: 2}})
	defer e.Stop()
	mustTicket(e.SubmitRegister("b1", 100))
	mustTicket(e.SubmitRegister("b2", 100))
	_, err := e.SubmitRegister("b3", 100)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != OverloadQueueDepth {
		t.Fatalf("want queue-depth overload, got %v", err)
	}
	if oe.RetryAfter != defaultRetryAfter {
		t.Fatalf("retry-after hint = %v, want default %v", oe.RetryAfter, defaultRetryAfter)
	}
	// Sheds are transient overload protection: counted, but never logged.
	for _, ev := range e.Events(0) {
		if ev.Kind == EventRequestRejected {
			t.Fatalf("queue-depth shed must not be audit-logged: %+v", ev)
		}
	}
	if st := e.Stats(); st.Shed != 1 || st.Rejected != 0 {
		t.Fatalf("shed=%d rejected=%d, want 1, 0", st.Shed, st.Rejected)
	}
	// Draining the queue reopens intake.
	e.TriggerEpoch()
	if _, err := e.SubmitRegister("b3", 100); err != nil {
		t.Fatalf("post-drain submission rejected: %v", err)
	}
}

// TestQuotaRefillsOnIdleMarket is the lockout regression: with a
// fractional per-epoch quota and no matchable work, rejected submissions
// enqueue nothing, so without the flush-only epoch no epoch would ever
// count and the bucket could never climb back to one token. Pending shed
// audits must force a counted epoch that refills.
func TestQuotaRefillsOnIdleMarket(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2,
		Admission: AdmissionConfig{QuotaPerEpoch: 0.5, QuotaBurst: 1}})
	defer e.Stop()
	mustTicket(e.SubmitRegister("b1", 1_000_000))
	e.TriggerEpoch()

	want, fn := coverageRequest("b1", 150)
	mustTicket(e.SubmitRequest(want, fn)) // tokens 1 -> 0 at apply
	e.TriggerEpoch()                      // request stays open (no supply); refill -> 0.5

	// The client's retry loop: each rejection leaves a pending audit, each
	// epoch flushes it and refills 0.5 — admission must succeed within a
	// few cycles rather than deadlocking forever.
	admitted := false
	for i := 0; i < 4; i++ {
		if _, err := e.SubmitRequest(want, fn); err == nil {
			admitted = true
			break
		}
		if _, ran := e.TriggerEpoch(); !ran {
			t.Fatalf("cycle %d: epoch did not count despite pending shed audits", i)
		}
	}
	if !admitted {
		t.Fatal("fractional quota never refilled: participant locked out on an idle market")
	}
}

// TestQuotaRejectionKicksEpochLoop covers threshold/manual-epoch engines
// (no ticker): a rejection enqueues nothing, so without the rejection-path
// kick the background loop would never run an epoch, never refill, and the
// retrying client would be 429'd forever even while obeying Retry-After.
func TestQuotaRejectionKicksEpochLoop(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2, BatchThreshold: 64,
		Admission: AdmissionConfig{QuotaPerEpoch: 1, QuotaBurst: 1}})
	e.Start() // loop runs on kicks only: no ticker, threshold far away
	defer e.Stop()
	reg := mustTicket(e.SubmitRegister("b1", 1_000_000))
	e.TriggerEpoch()
	waitTerminal(t, e, []string{reg}, time.Second)

	want, fn := coverageRequest("b1", 150)
	mustTicket(e.SubmitRequest(want, fn)) // bucket empty; request queued below threshold

	// The client retry loop: every rejection must kick the loop, which
	// drains the queued request, counts an epoch and refills the bucket.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := e.SubmitRequest(want, fn); err == nil {
			return // re-admitted: the loop ran an epoch without our help
		}
		if time.Now().After(deadline) {
			t.Fatal("rejections never kicked an epoch: quota locked out on a threshold-only engine")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRefillFraction pins the wall-clock scaling that stops
// batch-threshold epochs from multiplying a requests-per-second quota.
func TestRefillFraction(t *testing.T) {
	a := newAdmission(AdmissionConfig{QuotaPerEpoch: 4}, 100*time.Millisecond)
	a.lastRefill = time.Now().Add(-50 * time.Millisecond)
	if f := a.refillFraction(); f < 0.3 || f > 0.8 {
		t.Fatalf("half-period refill fraction = %v, want ~0.5", f)
	}
	a.lastRefill = time.Now().Add(-time.Second)
	if f := a.refillFraction(); f != 1 {
		t.Fatalf("late epoch should cap the refill at one quantum, got %v", f)
	}
	// No ticker: per-epoch semantics, always a full quantum.
	m := newAdmission(AdmissionConfig{QuotaPerEpoch: 4}, 0)
	if f := m.refillFraction(); f != 1 {
		t.Fatalf("manual-epoch engines should refill full quanta, got %v", f)
	}
	// Partial refills land proportionally in the bucket.
	b := newAdmission(AdmissionConfig{QuotaPerEpoch: 4, QuotaBurst: 10}, 0)
	b.bucket("x").tokens = 0
	b.refill(0.5)
	if got := b.bucket("x").tokens; got != 2 {
		t.Fatalf("half refill of quota 4 = %v tokens, want 2", got)
	}
}

// TestSyncFiledRequestsStillMatchUnderPolicy: a request filed directly with
// the platform (the synchronous dmms surface, bypassing engine intake) has
// no ticket or policy metadata — a policy/cap configuration must still let
// it into every round rather than silently stranding it open forever.
func TestSyncFiledRequestsStillMatchUnderPolicy(t *testing.T) {
	p, e := newTestEngine(t, Config{Shards: 2, Policy: PolicyPriority{}, EpochMatchCap: 1})
	defer e.Stop()
	mustTicket(e.SubmitRegister("b1", 1_000_000))
	mustTicket(e.SubmitShare("s1", "s1/d1", testRelation("s1/d1", 10),
		wtp.DatasetMeta{Dataset: "s1/d1"}, license.Terms{Kind: license.Open}))
	e.TriggerEpoch()

	want, fn := coverageRequest("b1", 150)
	id, err := p.SubmitRequest(want, fn) // sync path: no engine ticket
	if err != nil {
		t.Fatal(err)
	}
	// An engine-tracked request fills the round's whole cap (1); the
	// sync-filed one must still ride along rather than being deferred.
	mustTicket(e.SubmitRequest(want, fn))
	if _, ran := e.TriggerEpoch(); !ran {
		t.Fatal("round did not run")
	}
	for _, open := range p.Arbiter.OpenRequests() {
		if open == id {
			t.Fatalf("sync-filed request %s stranded open under a policy/cap", id)
		}
	}
}

// TestPolicyStateSurvivesRestore checks the engine-level replay of the new
// policy records: rejection counters, per-request priorities and token
// buckets all rebuilt from the event stream alone (no snapshot).
func TestPolicyStateSurvivesRestore(t *testing.T) {
	cfg := Config{Shards: 2, Admission: AdmissionConfig{QuotaPerEpoch: 1, QuotaBurst: 1}}
	p, e := newTestEngine(t, cfg)
	mustTicket(e.SubmitRegister("b1", 1_000_000))
	e.TriggerEpoch()
	want, fn := coverageRequest("b1", 150)
	if _, err := e.SubmitRequestPriority(want, fn, PriorityHigh); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitRequest(want, fn); err == nil {
		t.Fatal("quota should reject the second request")
	}
	e.TriggerEpoch() // files the request; no supply, so it stays open
	e.Stop()

	p2, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(p2, cfg, nil, e.Events(0))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	if got := e2.Stats().Rejected; got != 1 {
		t.Fatalf("rejection counter lost on restore: %d", got)
	}
	// Open request keeps its priority class and filing coordinates.
	snap, err := e2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Policy == nil || len(snap.Policy.Requests) != 1 {
		t.Fatalf("policy state missing from restored snapshot: %+v", snap.Policy)
	}
	rm := snap.Policy.Requests[0]
	if rm.Priority != PriorityHigh || rm.FiledSeq == 0 {
		t.Fatalf("restored request meta wrong: %+v", rm)
	}
	// The bucket replayed to the live level too: the filing consumed its
	// token and the epoch end refilled exactly one, so the restored engine
	// admits one request and then rejects, just as the live one would.
	if _, err := e2.SubmitRequest(want, fn); err != nil {
		t.Fatalf("restored bucket should hold one refilled token: %v", err)
	}
	if _, err := e2.SubmitRequest(want, fn); err == nil {
		t.Fatal("restored bucket should be empty after one admission")
	}
	_ = p
}

// TestQuotaOverridePerParticipant: a named participant's override replaces
// the global rate/burst — the VIP admits a burst of 3 while everyone else
// stays at the global 1-per-epoch.
func TestQuotaOverridePerParticipant(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2,
		Admission: AdmissionConfig{
			QuotaPerEpoch: 1, QuotaBurst: 1,
			Overrides: map[string]QuotaOverride{"vip": {PerEpoch: 3, Burst: 3}},
		}})
	defer e.Stop()
	mustTicket(e.SubmitRegister("vip", 1_000_000))
	mustTicket(e.SubmitRegister("plain", 1_000_000))
	e.TriggerEpoch()

	submit := func(buyer string) error {
		want, fn := coverageRequest(buyer, 150)
		_, err := e.SubmitRequest(want, fn)
		return err
	}
	for i := 0; i < 3; i++ {
		if err := submit("vip"); err != nil {
			t.Fatalf("vip admission %d rejected: %v", i, err)
		}
	}
	var oe *OverloadError
	if err := submit("vip"); !errors.As(err, &oe) || oe.Reason != OverloadQuota {
		t.Fatalf("vip burst 4 should hit its override quota, got %v", err)
	}
	if err := submit("plain"); err != nil {
		t.Fatalf("plain admission rejected: %v", err)
	}
	if err := submit("plain"); !errors.As(err, &oe) || oe.Participant != "plain" {
		t.Fatalf("plain should stay on the global 1-burst quota, got %v", err)
	}

	// Refill: vip earns its override rate (3), plain the global 1.
	e.TriggerEpoch()
	for i := 0; i < 3; i++ {
		if err := submit("vip"); err != nil {
			t.Fatalf("vip post-refill admission %d rejected: %v", i, err)
		}
	}
	if err := submit("plain"); err != nil {
		t.Fatalf("plain post-refill admission rejected: %v", err)
	}
	if err := submit("plain"); err == nil {
		t.Fatal("plain second post-refill admission should exceed the global quota")
	}
}

// TestQuotaOverrideWithoutGlobalQuota: overrides alone enable admission
// control — only the named participant is limited, everyone else is
// unthrottled, and a PerEpoch <= 0 override exempts entirely.
func TestQuotaOverrideWithoutGlobalQuota(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2,
		Admission: AdmissionConfig{
			Overrides: map[string]QuotaOverride{
				"scraper": {PerEpoch: 1, Burst: 1},
				"exempt":  {PerEpoch: 0},
			},
		}})
	defer e.Stop()
	mustTicket(e.SubmitRegister("scraper", 1_000_000))
	mustTicket(e.SubmitRegister("free", 1_000_000))
	mustTicket(e.SubmitRegister("exempt", 1_000_000))
	e.TriggerEpoch()

	submit := func(buyer string) error {
		want, fn := coverageRequest(buyer, 150)
		_, err := e.SubmitRequest(want, fn)
		return err
	}
	if err := submit("scraper"); err != nil {
		t.Fatalf("scraper first admission rejected: %v", err)
	}
	if err := submit("scraper"); err == nil {
		t.Fatal("scraper second admission should be shed by its override")
	}
	for i := 0; i < 5; i++ {
		if err := submit("free"); err != nil {
			t.Fatalf("unnamed participant %d throttled without a global quota: %v", i, err)
		}
		if err := submit("exempt"); err != nil {
			t.Fatalf("exempt participant %d throttled: %v", i, err)
		}
	}
}
