package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/license"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// blockingTransform returns a user transform that parks every call on gate —
// a build that never panics, never errors, and never returns until the gate
// closes: the stalled-worker failure mode Config.BuildDeadline exists for.
func blockingTransform(gate chan struct{}) *dod.Transform {
	return &dod.Transform{Name: "stall", Kind: relation.KindFloat,
		Fn: func(relation.Value) relation.Value { <-gate; return relation.Float(1) }}
}

// TestBuildDeadlineFreesEpoch is the stalled-build regression: a transform
// that blocks forever must not stall an epoch past Config.BuildDeadline. The
// wedged want group resolves to a deadline-failed build, the healthy request
// in the same round still settles, the deadline is counted, and — once the
// stall clears — the abandoned group re-enters a later round and matches
// (abandoned results are never cached, so nothing has to be invalidated).
// Runs against both the worker pool and inline builds.
func TestBuildDeadlineFreesEpoch(t *testing.T) {
	for _, workers := range []int{2, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			gate := make(chan struct{})
			t.Cleanup(func() {
				select {
				case <-gate:
				default:
					close(gate)
				}
			})
			p, e := newTestEngine(t, Config{Shards: 2, DoDWorkers: workers,
				BuildDeadline: 150 * time.Millisecond})
			defer e.Stop()
			p.Arbiter.DoD().RegisterTransform("s1/d", "b", "z", blockingTransform(gate))

			mustTicket(e.SubmitRegister("b1", 100000))
			mustTicket(e.SubmitShare("s1", "s1/d", testRelation("s1/d", 20),
				wtp.DatasetMeta{Dataset: "s1/d", HasProvenance: true}, license.Terms{Kind: license.Open}))
			e.TriggerEpoch()

			stalledTk := mustTicket(e.SubmitRequest(
				dod.Want{Columns: []string{"a", "z"}},
				&wtp.Function{Buyer: "b1",
					Task:  wtp.CoverageTask{Columns: []string{"a", "z"}, WantRows: 1},
					Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 100}}}))
			healthyTk := mustTicket(e.SubmitRequest(coverageRequest("b1", 150)))

			// The epoch containing the wedged build must complete in bounded
			// time: well under the forever the transform would take, with room
			// for a couple of deadline waits (epoch build + price-time paths).
			start := time.Now()
			e.TriggerEpoch()
			if took := time.Since(start); took > 5*time.Second {
				t.Fatalf("epoch with a stalled build took %v", took)
			}
			waitTerminal(t, e, []string{healthyTk}, 2*time.Second)
			if tk, _ := e.Ticket(healthyTk); tk.Status != TicketDone {
				t.Fatalf("healthy ticket status = %v, want done", tk.Status)
			}
			if tk, _ := e.Ticket(stalledTk); tk.Status != TicketApplied {
				t.Fatalf("stalled ticket status = %v, want still applied (open)", tk.Status)
			}
			if st := e.Stats(); st.BuildDeadlineExceeded < 1 {
				t.Fatalf("Stats().BuildDeadlineExceeded = %d, want >= 1", st.BuildDeadlineExceeded)
			}

			// Clear the stall: the deadline-failed group re-enters the next
			// round and — because the abandoned result was never cached — a
			// fresh build now succeeds and the request settles. The first
			// retry can still collide with the draining stuck goroutine's
			// singleflight entry, so poll a few rounds.
			close(gate)
			deadline := time.Now().Add(5 * time.Second)
			for {
				e.TriggerEpoch()
				if tk, _ := e.Ticket(stalledTk); tk.Status == TicketDone {
					break
				}
				if time.Now().After(deadline) {
					tk, _ := e.Ticket(stalledTk)
					t.Fatalf("deadline-failed group never re-entered and matched: %+v", tk)
				}
				time.Sleep(5 * time.Millisecond)
			}
			if st := e.Stats(); st.Matched != 2 {
				t.Fatalf("matched %d requests, want 2", st.Matched)
			}
		})
	}
}

// TestStalledBuildDoesNotHangStop is the shutdown-wedge regression:
// Engine.Stop (which runs a final flush epoch and then drains the builder
// pool) must return promptly while a build is still parked inside user code
// that never returns. Only the abandoned goroutine stays pinned — never a
// worker, the epoch runner, or Stop itself.
func TestStalledBuildDoesNotHangStop(t *testing.T) {
	gate := make(chan struct{})
	p, e := newTestEngine(t, Config{Shards: 2, DoDWorkers: 2,
		BuildDeadline: 100 * time.Millisecond})
	p.Arbiter.DoD().RegisterTransform("s1/d", "b", "z", blockingTransform(gate))

	mustTicket(e.SubmitRegister("b1", 100000))
	mustTicket(e.SubmitShare("s1", "s1/d", testRelation("s1/d", 20),
		wtp.DatasetMeta{Dataset: "s1/d", HasProvenance: true}, license.Terms{Kind: license.Open}))
	e.TriggerEpoch()
	mustTicket(e.SubmitRequest(
		dod.Want{Columns: []string{"a", "z"}},
		&wtp.Function{Buyer: "b1",
			Task:  wtp.CoverageTask{Columns: []string{"a", "z"}, WantRows: 1},
			Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 100}}}))
	e.TriggerEpoch() // leaves the stalled group open + a speculative prebuild behind

	done := make(chan struct{})
	go func() { e.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Engine.Stop wedged behind a stalled build")
	}
	close(gate) // release the abandoned goroutine before the test exits
}

// TestBuildPoolCloseWithBlockedDispatch is the dispatch/close deadlock
// regression at the pool level: with every worker busy, dispatchers are
// parked on the unbuffered job channel when close() arrives. The old code
// held bp.mu across that send, so close()'s mu.Lock deadlocked behind a full
// pool; now close() kicks blocked dispatchers out via the quit channel and
// they report the job undelivered.
func TestBuildPoolCloseWithBlockedDispatch(t *testing.T) {
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	p.Arbiter.DoD().RegisterTransform("s1/d", "b", "z", blockingTransform(gate))
	if err := p.ShareDataset("s1", "s1/d", testRelation("s1/d", 8),
		wtp.DatasetMeta{Dataset: "s1/d", HasProvenance: true}, license.Terms{Kind: license.Open}); err != nil {
		t.Fatal(err)
	}
	p.SetBuildDeadline(150 * time.Millisecond) // bounds the in-flight build at close

	bp := newBuildPool(p, 1, nil)
	out := make(chan *dod.CandidateSet, 3)
	// Three dispatchers race for the single worker: one job is picked up and
	// stalls it (deadline-bounded), the other two park on the unbuffered
	// channel send behind it.
	stalled := dod.Want{Columns: []string{"a", "z"}}
	delivered := make(chan bool, 3)
	for i := 0; i < 3; i++ {
		go func() {
			delivered <- bp.dispatch(buildJob{ctx: context.Background(), want: stalled, out: out})
		}()
	}
	time.Sleep(50 * time.Millisecond) // worker busy; remaining dispatchers parked

	closed := make(chan struct{})
	go func() { bp.close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("buildPool.close deadlocked behind blocked dispatchers")
	}
	got := 0
	for i := 0; i < 3; i++ {
		if <-delivered {
			got++
		}
	}
	// Exactly one job reached the worker before close; the two dispatchers
	// parked mid-send were kicked out and report the job undelivered.
	if got != 1 {
		t.Fatalf("%d dispatches reported delivery across close, want exactly 1", got)
	}
	if bp.dispatch(buildJob{ctx: context.Background(), want: stalled, out: out}) {
		t.Fatal("dispatch after close reported delivery")
	}
}
