package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/relation"
	"repro/internal/wtp"
)

func testRelation(name string, rows int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*1.5))
	}
	return r
}

func coverageRequest(buyer string, offer float64) (dod.Want, *wtp.Function) {
	want := dod.Want{Columns: []string{"a", "b"}}
	f := &wtp.Function{
		Buyer: buyer,
		Task:  wtp.CoverageTask{Columns: []string{"a", "b"}, WantRows: 1},
		Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: offer}},
	}
	return want, f
}

// mustTicket unwraps a Submit* result for tests with no admission control
// configured (where intake can never reject).
func mustTicket(id string, err error) string {
	if err != nil {
		panic(err)
	}
	return id
}

func newTestEngine(t *testing.T, cfg Config) (*core.Platform, *Engine) {
	t.Helper()
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	return p, New(p, cfg)
}

func waitTerminal(t *testing.T, e *Engine, tickets []string, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		done := 0
		for _, id := range tickets {
			tk, ok := e.Ticket(id)
			if !ok {
				t.Fatalf("ticket %s vanished", id)
			}
			if tk.Status.Terminal() {
				done++
			}
		}
		if done == len(tickets) {
			return
		}
		if time.Now().After(stop) {
			t.Fatalf("only %d/%d tickets terminal after %v", done, len(tickets), deadline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineConcurrentEpochs is the -race hammer the issue asks for: 8
// concurrent submitters (4 sellers, 4 buyers) across 3 deterministic epochs,
// asserting ledger conservation (credits == debits) across all of them.
func TestEngineConcurrentEpochs(t *testing.T) {
	p, e := newTestEngine(t, Config{Shards: 8})
	defer e.Stop()

	const sellers, buyers, waves = 4, 4, 3
	funds := 10_000.0
	var initial ledger.Currency
	var regs []string
	for b := 0; b < buyers; b++ {
		regs = append(regs, mustTicket(e.SubmitRegister(fmt.Sprintf("buyer%d", b), funds)))
		initial += ledger.FromFloat(funds)
	}
	if _, ran := e.TriggerEpoch(); !ran {
		t.Fatal("registration epoch did not run")
	}
	waitTerminal(t, e, regs, time.Second)

	var allRequests []string
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var requests []string
		for s := 0; s < sellers; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				name := fmt.Sprintf("seller%d", s)
				id := catalog.DatasetID(fmt.Sprintf("%s/wave%d", name, wave))
				tk := mustTicket(e.SubmitShare(name, id, testRelation(string(id), 20),
					wtp.DatasetMeta{Dataset: string(id), HasProvenance: true},
					license.Terms{Kind: license.Open}))
				mu.Lock()
				requests = append(requests, tk)
				mu.Unlock()
			}(s)
		}
		for b := 0; b < buyers; b++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				want, fn := coverageRequest(fmt.Sprintf("buyer%d", b), 150)
				tk := mustTicket(e.SubmitRequest(want, fn))
				mu.Lock()
				requests = append(requests, tk)
				mu.Unlock()
			}(b)
		}
		wg.Wait()
		if _, ran := e.TriggerEpoch(); !ran {
			t.Fatalf("wave %d epoch did not run", wave)
		}
		waitTerminal(t, e, requests, 5*time.Second)
		allRequests = append(allRequests, requests...)
	}

	st := e.Stats()
	if st.Epochs < 3 {
		t.Fatalf("want >= 3 epochs, got %d", st.Epochs)
	}
	if st.Matched != buyers*waves {
		t.Fatalf("want %d matches, got %d", buyers*waves, st.Matched)
	}
	e.Stop() // flush + drain the settlement subscriber

	// Conservation, three ways. (1) money supply: nothing minted or burned
	// after the funding registrations.
	if got := p.Arbiter.Ledger.TotalSupply(); got != initial {
		t.Fatalf("total supply changed: want %s, got %s", initial, got)
	}
	// (2) per-settlement: price fully fanned out to arbiter + sellers.
	book := e.Settlements()
	if book.Count() != buyers*waves {
		t.Fatalf("settlement book has %d entries, want %d", book.Count(), buyers*waves)
	}
	if !book.Conserved() {
		t.Fatalf("settlement conservation violated: debits=%s credits=%s",
			book.Debits(), book.Credits())
	}
	if len(book.Epochs()) < waves {
		t.Fatalf("settlements span %d epochs, want >= %d", len(book.Epochs()), waves)
	}
	// (3) the hash-chained audit log is intact.
	if i := p.Arbiter.Ledger.VerifyChain(); i >= 0 {
		t.Fatalf("audit chain corrupted at entry %d", i)
	}

	// Event log sanity: dense, ordered sequence numbers.
	evs := e.Events(0)
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestEngineTickerEpochs exercises the background loop: ticker-driven epochs
// with threshold kicks, submissions racing the runner.
func TestEngineTickerEpochs(t *testing.T) {
	p, e := newTestEngine(t, Config{Shards: 4, EpochEvery: 2 * time.Millisecond, BatchThreshold: 64})
	e.Start()
	defer e.Stop()

	regTicket := mustTicket(e.SubmitRegister("b1", 5000))
	shareTicket := mustTicket(e.SubmitShare("s1", "s1/d1", testRelation("s1/d1", 10),
		wtp.DatasetMeta{Dataset: "s1/d1"}, license.Terms{Kind: license.Open}))
	waitTerminal(t, e, []string{regTicket, shareTicket}, 2*time.Second)

	var tickets []string
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				want, fn := coverageRequest("b1", 120)
				tk := mustTicket(e.SubmitRequest(want, fn))
				mu.Lock()
				tickets = append(tickets, tk)
				mu.Unlock()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	waitTerminal(t, e, tickets, 5*time.Second)
	e.Stop()

	if st := e.Stats(); st.Matched != 32 {
		t.Fatalf("want 32 matches, got %d", st.Matched)
	}
	if i := p.Arbiter.Ledger.VerifyChain(); i >= 0 {
		t.Fatalf("audit chain corrupted at entry %d", i)
	}
	if !e.Settlements().Conserved() {
		t.Fatal("settlement conservation violated")
	}
}

// TestEngineRequestWaitsForSupply checks the cross-epoch retry: a request
// filed before any matching supply stays open (unmet) and clears in a later
// epoch once a seller shares the data.
func TestEngineRequestWaitsForSupply(t *testing.T) {
	_, e := newTestEngine(t, Config{Shards: 2})
	defer e.Stop()

	reg := mustTicket(e.SubmitRegister("b1", 1000))
	e.TriggerEpoch()
	waitTerminal(t, e, []string{reg}, time.Second)

	want, fn := coverageRequest("b1", 200)
	reqTicket := mustTicket(e.SubmitRequest(want, fn))
	e.TriggerEpoch()
	tk, _ := e.Ticket(reqTicket)
	if tk.Status != TicketApplied {
		t.Fatalf("request should be open after epoch without supply, got %s", tk.Status)
	}
	unmet := false
	for _, ev := range e.Events(0) {
		if ev.Kind == EventRequestUnmet && ev.Ticket == reqTicket {
			unmet = true
		}
	}
	if !unmet {
		t.Fatal("no request-unmet event for the starved request")
	}

	e.SubmitShare("s1", "s1/late", testRelation("s1/late", 10),
		wtp.DatasetMeta{Dataset: "s1/late"}, license.Terms{Kind: license.Open})
	e.TriggerEpoch()
	tk, _ = e.Ticket(reqTicket)
	if tk.Status != TicketDone || tk.TxID == "" {
		t.Fatalf("request should have matched once supply arrived, got %+v", tk)
	}
}

// TestEngineRejections covers the failure lifecycle: unknown buyers and
// duplicate registrations fail their tickets with events, without wedging
// the epoch.
func TestEngineRejections(t *testing.T) {
	_, e := newTestEngine(t, Config{})
	defer e.Stop()

	want, fn := coverageRequest("ghost", 100)
	ghost := mustTicket(e.SubmitRequest(want, fn))
	ok := mustTicket(e.SubmitRegister("b1", 100))
	dup := mustTicket(e.SubmitRegister("b1", 100))
	e.TriggerEpoch()

	if tk, _ := e.Ticket(ghost); tk.Status != TicketFailed {
		t.Fatalf("unregistered buyer's request should fail, got %s", tk.Status)
	}
	if tk, _ := e.Ticket(ok); tk.Status != TicketDone {
		t.Fatalf("first registration should succeed, got %s", tk.Status)
	}
	if tk, _ := e.Ticket(dup); tk.Status != TicketFailed || tk.Err == "" {
		t.Fatalf("duplicate registration should fail with an error, got %+v", tk)
	}
	rejected := 0
	for _, ev := range e.Events(0) {
		if ev.Kind == EventRejected {
			rejected++
		}
	}
	if rejected != 2 {
		t.Fatalf("want 2 submission-rejected events, got %d", rejected)
	}
}

func TestEventLogWaitAfter(t *testing.T) {
	l := NewEventLog()
	got := make(chan []Event, 1)
	go func() {
		evs, _ := l.WaitAfter(0)
		got <- evs
	}()
	time.Sleep(5 * time.Millisecond)
	l.Append(Event{Kind: EventEpochStart, Epoch: 1})
	select {
	case evs := <-got:
		if len(evs) != 1 || evs[0].Seq != 1 {
			t.Fatalf("unexpected batch %+v", evs)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitAfter never woke")
	}

	l.Append(Event{Kind: EventEpochEnd, Epoch: 1})
	l.Close()
	evs, open := l.WaitAfter(1)
	if open {
		t.Fatal("log should report closed")
	}
	if len(evs) != 1 || evs[0].Kind != EventEpochEnd {
		t.Fatalf("tail not drained: %+v", evs)
	}
	if l.Len() != 2 {
		t.Fatalf("want 2 events, got %d", l.Len())
	}
}
