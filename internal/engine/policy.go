package engine

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file is the admission-control and matching-policy layer: who gets
// *into* the market (AdmissionController: per-participant token-bucket
// quotas, a global per-epoch request cap, queue-depth backpressure) and in
// what order open requests get *through* it (MatchPolicy: FIFO, priority
// classes, starvation aging). Both sides are driven by epochs, not
// wall-clock time, so every decision is a pure function of the durable
// event stream and replays deterministically (see replay.go).

// Priority classes. A request's class is fixed at submission (dmms carries
// it in the X-DMMS-Priority header); higher clears first under the priority
// and aging policies. FIFO ignores it.
const (
	PriorityLow    = 0
	PriorityNormal = 1
	PriorityHigh   = 2
)

// ParsePriority maps a wire-level priority label ("low" | "normal" | "high",
// or the equivalent integer) to a priority class. Integers outside the
// named range are rejected: an unbounded client-chosen class would defeat
// the aging policy's bounded-wait guarantee (a priority of 10^6 could never
// be out-aged).
func ParsePriority(s string) (int, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "high":
		return PriorityHigh, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < PriorityLow || n > PriorityHigh {
		return 0, fmt.Errorf("engine: unknown priority %q (want low, normal or high)", s)
	}
	return n, nil
}

// RequestCandidate is the matching policy's view of one open request at
// selection time. FiledSeq (the event seq of the request-filed record) is
// the total-order tiebreak, so selection is deterministic across replays.
type RequestCandidate struct {
	RequestID   string
	Ticket      string
	Participant string
	Priority    int
	FiledEpoch  uint64
	FiledSeq    int
	// Age is how many epochs the request has already waited (selection
	// epoch minus FiledEpoch), computed by the engine.
	Age uint64
}

// MatchPolicy ranks open requests for admission into a matching round.
// Higher scores clear first; ties break on FiledSeq (older submission
// wins), then RequestID. Policies must be pure functions of the candidate —
// the engine snapshots no policy-internal state.
type MatchPolicy interface {
	Name() string
	Score(c RequestCandidate) float64
}

// PolicyFIFO clears requests in arrival order, ignoring class and age.
type PolicyFIFO struct{}

// Name implements MatchPolicy.
func (PolicyFIFO) Name() string { return "fifo" }

// Score implements MatchPolicy: all candidates tie, so FiledSeq decides.
func (PolicyFIFO) Score(RequestCandidate) float64 { return 0 }

// PolicyPriority clears strictly by priority class, FIFO within a class. A
// saturating stream of high-class requests starves lower classes forever —
// that is the failure mode PolicyAging exists to bound.
type PolicyPriority struct{}

// Name implements MatchPolicy.
func (PolicyPriority) Name() string { return "priority" }

// Score implements MatchPolicy.
func (PolicyPriority) Score(c RequestCandidate) float64 { return float64(c.Priority) }

// PolicyAging is priority with starvation aging: every epoch a request
// waits adds AgeBoost to its score, so any request eventually outranks
// every fresh arrival regardless of class. Once a request has aged past
// (maxClass-minClass)/AgeBoost epochs, no later submission can ever be
// ranked above it, which bounds its wait by that gap plus the drain time of
// the backlog already ahead of it — the invariant the property harness
// (policy_prop_test.go) checks.
type PolicyAging struct {
	// AgeBoost is the score added per epoch waited (default 1).
	AgeBoost float64
}

// Name implements MatchPolicy.
func (PolicyAging) Name() string { return "aging" }

func (p PolicyAging) boost() float64 {
	if p.AgeBoost > 0 {
		return p.AgeBoost
	}
	return 1
}

// Score implements MatchPolicy.
func (p PolicyAging) Score(c RequestCandidate) float64 {
	return float64(c.Priority) + p.boost()*float64(c.Age)
}

// ParsePolicy maps a -policy flag value to a MatchPolicy. ageBoost only
// applies to "aging" (0 means the default boost of 1).
func ParsePolicy(name string, ageBoost float64) (MatchPolicy, error) {
	switch name {
	case "", "fifo":
		return PolicyFIFO{}, nil
	case "priority":
		return PolicyPriority{}, nil
	case "aging":
		return PolicyAging{AgeBoost: ageBoost}, nil
	}
	return nil, fmt.Errorf("engine: unknown matching policy %q (want fifo, priority or aging)", name)
}

// SelectCandidates ranks candidates under the policy (score descending,
// FiledSeq then RequestID ascending on ties) and splits them at cap: the
// first cap candidates enter the matching round, the rest are deferred to a
// later epoch. cap <= 0 selects everything. The input slice is not mutated.
func SelectCandidates(p MatchPolicy, cands []RequestCandidate, cap int) (selected, deferred []RequestCandidate) {
	ranked := make([]RequestCandidate, len(cands))
	copy(ranked, cands)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := p.Score(ranked[i]), p.Score(ranked[j])
		if si != sj {
			return si > sj
		}
		if ranked[i].FiledSeq != ranked[j].FiledSeq {
			return ranked[i].FiledSeq < ranked[j].FiledSeq
		}
		return ranked[i].RequestID < ranked[j].RequestID
	})
	if cap <= 0 || cap >= len(ranked) {
		return ranked, nil
	}
	return ranked[:cap], ranked[cap:]
}

// --- admission control -----------------------------------------------------

// Overload reasons carried by OverloadError.
const (
	OverloadQuota      = "participant-quota"
	OverloadEpochCap   = "epoch-request-cap"
	OverloadQueueDepth = "queue-depth"
)

// OverloadError is the typed rejection the intake path returns when
// admission control sheds a submission. dmms maps it to HTTP 429 with a
// Retry-After header derived from RetryAfter.
type OverloadError struct {
	Reason      string // OverloadQuota | OverloadEpochCap | OverloadQueueDepth
	Participant string
	// RetryAfter hints when capacity should free up: the epoch period when
	// the engine runs on a ticker, else a conservative default.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("engine: overloaded (%s, participant %q): retry after %v",
		e.Reason, e.Participant, e.RetryAfter)
}

// QuotaOverride is a per-participant admission quota overriding the global
// QuotaPerEpoch/QuotaBurst pair: a named tenant can run hotter (a paying
// integration) or colder (an abusive scraper) than the default. PerEpoch <= 0
// exempts the participant from the quota entirely.
type QuotaOverride struct {
	// PerEpoch is the participant's token-bucket refill per counted epoch
	// (<= 0 = unlimited for this participant).
	PerEpoch float64
	// Burst is the participant's bucket capacity (0 = max(PerEpoch, 1)).
	Burst float64
}

// AdmissionConfig tunes intake admission control. The zero value disables
// it entirely (every submission is admitted).
type AdmissionConfig struct {
	// QuotaPerEpoch is the per-participant token-bucket refill: request
	// admissions earned per counted epoch. 0 = unlimited.
	QuotaPerEpoch float64
	// QuotaBurst is the bucket capacity (0 = max(QuotaPerEpoch, 1)).
	QuotaBurst float64
	// Overrides maps participant names to per-participant rate/burst pairs
	// that replace the global quota for that participant. Overrides work
	// with or without a global quota: with QuotaPerEpoch == 0 only the named
	// participants are limited.
	Overrides map[string]QuotaOverride
	// EpochRequestCap bounds total request admissions per epoch window
	// across all participants. 0 = unlimited.
	EpochRequestCap int
	// MaxPending is queue-depth backpressure: submissions of any kind are
	// rejected while more than this many are queued in intake. 0 = unlimited.
	MaxPending int
}

func (c AdmissionConfig) enabled() bool {
	return c.QuotaPerEpoch > 0 || c.EpochRequestCap > 0 || len(c.Overrides) > 0
}

// rateFor resolves the effective per-epoch quota of one participant: the
// override when one exists (<= 0 = exempt), else the global rate.
func (c AdmissionConfig) rateFor(participant string) float64 {
	if o, ok := c.Overrides[participant]; ok {
		if o.PerEpoch > 0 {
			return o.PerEpoch
		}
		return 0
	}
	return c.QuotaPerEpoch
}

// burstFor resolves the effective bucket capacity of one participant.
func (c AdmissionConfig) burstFor(participant string) float64 {
	if o, ok := c.Overrides[participant]; ok {
		if o.Burst > 0 {
			return o.Burst
		}
		if o.PerEpoch > 1 {
			return o.PerEpoch
		}
		return 1
	}
	return c.burst()
}

func (c AdmissionConfig) burst() float64 {
	if c.QuotaBurst > 0 {
		return c.QuotaBurst
	}
	if c.QuotaPerEpoch > 1 {
		return c.QuotaPerEpoch
	}
	return 1
}

// defaultRetryAfter is the Retry-After hint when no epoch ticker is
// configured (threshold- or manually-driven epochs).
const defaultRetryAfter = time.Second

// bucketState is one participant's token bucket. tokens is the canonical,
// replayable level: it is consumed when the admitted request is *applied*
// (and on replay, when its request-filed or submission-rejected event is
// processed) and refilled at epoch end — both under the epoch lock, in
// event order. reserved tracks admissions still queued in intake, so the
// admission check cannot over-admit between epochs; reservations are
// transient and never snapshotted (queued intake is not durable).
type bucketState struct {
	tokens   float64
	reserved float64
}

// rejKey groups shed requests for the aggregated audit record.
type rejKey struct{ participant, reason string }

// rejRecord is one flushed audit aggregate: how many requests one
// participant had shed for one reason since the last counted epoch.
type rejRecord struct {
	participant string
	reason      string
	count       uint64
}

// minRefillFraction floors the recorded refill quantum so it never rounds
// to the JSON zero value (which replay reads as "full quantum").
const minRefillFraction = 0.001

// admission is the engine's AdmissionController instance.
type admission struct {
	cfg        AdmissionConfig
	epochEvery time.Duration
	retryAfter time.Duration

	mu            sync.Mutex
	buckets       map[string]*bucketState
	epochAdmitted int // requests applied in the current epoch window
	epochReserved int // admitted but still queued
	lastRefill    time.Time
	// pendingRej accumulates quota/cap rejections between counted epochs;
	// endEpoch flushes them as one request-rejected record per key, so the
	// shedding hot path never writes to the WAL or touches the epoch lock
	// (overload protection must not amplify writes).
	pendingRej map[rejKey]uint64
}

// newAdmission builds a controller, or nil when the config disables
// quota/cap admission (queue-depth backpressure is handled by the engine
// directly and needs no controller state).
func newAdmission(cfg AdmissionConfig, epochEvery time.Duration) *admission {
	if !cfg.enabled() {
		return nil
	}
	retry := epochEvery
	if retry <= 0 {
		retry = defaultRetryAfter
	}
	return &admission{cfg: cfg, epochEvery: epochEvery, retryAfter: retry,
		lastRefill: time.Now(),
		buckets:    map[string]*bucketState{}, pendingRej: map[rejKey]uint64{}}
}

func (a *admission) bucket(participant string) *bucketState {
	b, ok := a.buckets[participant]
	if !ok {
		b = &bucketState{tokens: a.cfg.burstFor(participant)}
		a.buckets[participant] = b
	}
	return b
}

// admitRequest decides one request submission and reserves its capacity.
// Rejections consume nothing; they are queued for the aggregated audit
// record the next counted epoch flushes.
func (a *admission) admitRequest(participant string) *OverloadError {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cap := a.cfg.EpochRequestCap; cap > 0 && a.epochAdmitted+a.epochReserved >= cap {
		a.pendingRej[rejKey{participant, OverloadEpochCap}]++
		return &OverloadError{Reason: OverloadEpochCap, Participant: participant, RetryAfter: a.retryAfter}
	}
	if a.cfg.rateFor(participant) > 0 {
		b := a.bucket(participant)
		if b.tokens-b.reserved < 1 {
			a.pendingRej[rejKey{participant, OverloadQuota}]++
			return &OverloadError{Reason: OverloadQuota, Participant: participant, RetryAfter: a.retryAfter}
		}
		b.reserved++
	}
	a.epochReserved++
	return nil
}

// hasPendingRejections reports whether shed audits await an epoch flush —
// the liveness signal: starved clients are waiting on a refill only a
// counted epoch delivers, so the engine counts a flush-only epoch when no
// other work exists.
func (a *admission) hasPendingRejections() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pendingRej) > 0
}

// takePendingRejections drains the accumulated shed counts in a
// deterministic order (participant, then reason) for the epoch-end flush.
func (a *admission) takePendingRejections() []rejRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.pendingRej) == 0 {
		return nil
	}
	out := make([]rejRecord, 0, len(a.pendingRej))
	for k, n := range a.pendingRej {
		out = append(out, rejRecord{participant: k.participant, reason: k.reason, count: n})
		delete(a.pendingRej, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].participant != out[j].participant {
			return out[i].participant < out[j].participant
		}
		return out[i].reason < out[j].reason
	})
	return out
}

// commit consumes the canonical capacity of one admitted request at apply
// time (under the epoch lock).
func (a *admission) commit(participant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.rateFor(participant) > 0 {
		b := a.bucket(participant)
		b.tokens--
		if b.reserved > 0 {
			b.reserved--
		}
	}
	a.epochAdmitted++
	if a.epochReserved > 0 {
		a.epochReserved--
	}
}

// replayCommit mirrors commit for a replayed request-filed (or apply-time
// rejected request) event: canonical consumption without a reservation.
func (a *admission) replayCommit(participant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.rateFor(participant) > 0 {
		a.bucket(participant).tokens--
	}
	a.epochAdmitted++
}

// refillFraction computes this epoch's live refill quantum: the fraction of
// the configured ticker period that actually elapsed since the last refill,
// capped at 1 — so batch-threshold epochs firing faster than the ticker
// cannot multiply a requests-per-second quota. Engines without a ticker
// (manual or threshold-only epochs) refill a full quantum per counted
// epoch. The engine records the fraction on the epoch-end event, so replay
// applies exactly the refills the live run earned.
func (a *admission) refillFraction() float64 {
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.epochEvery <= 0 {
		a.lastRefill = now
		return 1
	}
	f := float64(now.Sub(a.lastRefill)) / float64(a.epochEvery)
	a.lastRefill = now
	if f > 1 {
		return 1
	}
	if f < minRefillFraction {
		return minRefillFraction
	}
	return f
}

// refill runs at every counted epoch end (live after appending the
// epoch-end record, on replay when processing it): buckets earn the given
// fraction of their per-epoch quota up to the burst cap and the epoch
// admission window resets.
func (a *admission) refill(fraction float64) {
	if fraction <= 0 {
		fraction = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for p, b := range a.buckets {
		rate := a.cfg.rateFor(p)
		if rate <= 0 {
			continue
		}
		b.tokens += rate * fraction
		if burst := a.cfg.burstFor(p); b.tokens > burst {
			b.tokens = burst
		}
	}
	a.epochAdmitted = 0
}

// snapshotState captures the canonical (durable) admission state for an
// engine checkpoint. Reservations are deliberately excluded: queued intake
// is not durable and re-submissions consume again.
func (a *admission) snapshotState() (buckets map[string]float64, epochAdmitted int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.buckets) > 0 {
		buckets = make(map[string]float64, len(a.buckets))
		for p, b := range a.buckets {
			buckets[p] = b.tokens
		}
	}
	return buckets, a.epochAdmitted
}

// restoreState seeds the canonical admission state from a checkpoint.
func (a *admission) restoreState(buckets map[string]float64, epochAdmitted int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for p, tokens := range buckets {
		a.buckets[p] = &bucketState{tokens: tokens}
	}
	a.epochAdmitted = epochAdmitted
}
