package engine

import "fmt"

// This file is one shard's participant role in a federated two-phase commit
// (internal/federation drives the coordinator side). Each leg mutates the
// platform ledger and appends its record under the epoch lock, so xtx
// records interleave cleanly with epochs in the WAL and replay rebuilds the
// same ledger state and xtx bookkeeping from the log alone.
//
// Idempotency contract (what recovery re-drives lean on):
//   - XTxPrepare on an already-held xid is a no-op success; on a done xid it
//     fails (the decision is final, a new attempt must pick a new xid).
//   - XTxCommitHome / XTxCommitRemote / XTxAbort on a done xid are no-op
//     successes.
//   - XTxAbort on an unknown xid is a no-op success (presumed abort: a crash
//     before prepare left nothing to undo).

// xtxHold is the engine-side record of a prepared (escrow-held) cross-shard
// transaction on the buyer's home shard.
type xtxHold struct {
	buyer string
	price float64
}

// XTxRole values carried by xtx-committed records.
const (
	XTxRoleHome   = "home"
	XTxRoleRemote = "remote"
)

// XTx states reported by XTxState.
const (
	XTxUnknown  = ""
	XTxPrepared = "prepared"
	XTxDone     = "done"
)

// XTxPrepare holds the buyer's funds for a cross-shard transaction in a
// ledger escrow on this (home) shard and logs the prepared record.
func (e *Engine) XTxPrepare(xid, buyer string, price float64) error {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	if e.xtxDone[xid] {
		return fmt.Errorf("engine: xtx %s already decided", xid)
	}
	if _, held := e.xtxHeld[xid]; held {
		return nil // recovery re-drive; the escrow is already held
	}
	if err := e.platform.XTxPrepare(xid, buyer, price); err != nil {
		return err
	}
	e.xtxHeld[xid] = &xtxHold{buyer: buyer, price: price}
	e.log.Append(Event{Epoch: e.epoch.Load(), Kind: EventXTxPrepared, TxID: xid,
		Participant: buyer, Price: price, XTxRole: XTxRoleHome})
	return nil
}

// XTxCommitHome applies the commit decision on the buyer's home shard: the
// escrow pays the arbiter, local sellers get their cuts, and the remote
// cuts' micro-unit sum leaves this ledger (it re-enters on the sellers'
// shards via XTxCommitRemote). No-op when the xid is already done.
func (e *Engine) XTxCommitHome(xid string, arbiterCut float64, localCuts, remoteCuts map[string]float64) error {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	if e.xtxDone[xid] {
		return nil
	}
	h, held := e.xtxHeld[xid]
	if !held {
		return fmt.Errorf("engine: xtx %s not prepared", xid)
	}
	if err := e.platform.XTxCommitHome(xid, h.price, localCuts, remoteCuts); err != nil {
		return err
	}
	delete(e.xtxHeld, xid)
	e.xtxDone[xid] = true
	e.log.Append(Event{Epoch: e.epoch.Load(), Kind: EventXTxCommitted, TxID: xid,
		Participant: h.buyer, Price: h.price, ArbiterCut: arbiterCut,
		SellerCuts: localCuts, RemoteCuts: remoteCuts, XTxRole: XTxRoleHome})
	return nil
}

// XTxCommitRemote applies the commit decision on a seller shard: local
// sellers are deposited their cuts. No-op when the xid is already done.
func (e *Engine) XTxCommitRemote(xid string, cuts map[string]float64) error {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	if e.xtxDone[xid] {
		return nil
	}
	if err := e.platform.XTxCommitRemote(xid, cuts); err != nil {
		return err
	}
	e.xtxDone[xid] = true
	e.log.Append(Event{Epoch: e.epoch.Load(), Kind: EventXTxCommitted, TxID: xid,
		SellerCuts: cuts, XTxRole: XTxRoleRemote})
	return nil
}

// XTxAbort applies the abort decision on the home shard: the escrow refunds
// the buyer in full. No-op when the xid is done or was never prepared here
// (presumed abort).
func (e *Engine) XTxAbort(xid string) error {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	if e.xtxDone[xid] {
		return nil
	}
	h, held := e.xtxHeld[xid]
	if !held {
		return nil
	}
	if err := e.platform.XTxAbort(xid); err != nil {
		return err
	}
	delete(e.xtxHeld, xid)
	e.xtxDone[xid] = true
	e.log.Append(Event{Epoch: e.epoch.Load(), Kind: EventXTxAborted, TxID: xid,
		Participant: h.buyer, Price: h.price, XTxRole: XTxRoleHome})
	return nil
}

// XTxState reports this shard's view of a cross-shard transaction:
// XTxUnknown (never seen, or its records were compacted below a snapshot —
// possible only after its coordinator-side done record made re-drives
// impossible), XTxPrepared (escrow held, decision pending), or XTxDone
// (commit/abort logged).
func (e *Engine) XTxState(xid string) string {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	if e.xtxDone[xid] {
		return XTxDone
	}
	if _, held := e.xtxHeld[xid]; held {
		return XTxPrepared
	}
	return XTxUnknown
}

// XTxInFlight reports how many cross-shard escrows this shard currently
// holds. Snapshot refuses while it is non-zero — a generic ledger escrow is
// not part of the platform checkpoint, so snapshotting mid-2PC would destroy
// the held funds on restore. The federation layer snapshots under its
// coordinator lock, where the count is always zero.
func (e *Engine) XTxInFlight() int {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	return len(e.xtxHeld)
}
