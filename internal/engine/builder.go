package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dod"
)

// buildPool is the engine's DoD builder pool: the build stage of the split
// Fig. 2 pipeline. Config.DoDWorkers long-lived workers pull build jobs off
// one channel; the epoch runner fans the distinct open want groups out here
// after drain+apply and prices only the pre-built, version-valid results, so
// MatchRound never spends its single-threaded budget inside the beam search.
// Between epochs the pool speculatively re-warms the candidate cache for
// wants a round left unmet.
//
// Workers are supervised on two axes. Panic isolation: a panicking build (a
// buggy user transform, a malformed relation) fails only its own want group —
// the job resolves to a failed CandidateSet, the worker recovers and keeps
// serving, and the panic is counted (dod_worker_panics_total). Deadlines: a
// build that merely never returns is abandoned at Config.BuildDeadline inside
// dod.BuildCached — the job resolves to a deadline-failed set and the worker
// is freed, so a wedged beam search cannot stall an epoch or Engine.Stop.
// Speculative builds additionally carry a cancellable context: when the want
// they warm settles, the epoch runner cancels them (cancel-on-settle) instead
// of letting them finish work nobody will price.
//
// Candidates are derived state (never logged, never snapshotted), and a
// version-valid cached set is byte-identical to what an inline build would
// have produced, so none of this concurrency is visible to WAL replay.
type buildPool struct {
	platform *core.Platform
	jobs     chan buildJob
	quit     chan struct{} // closed by close(); unblocks in-flight dispatch sends

	mu         sync.Mutex
	stopped    bool
	spec       map[string]*specBuild // live speculative builds by want key
	specWG     sync.WaitGroup        // in-flight speculative dispatchers
	dispatchWG sync.WaitGroup        // in-flight dispatch sends
	workerWG   sync.WaitGroup

	queued atomic.Int64  // dispatched jobs not yet picked up by a worker
	panics atomic.Uint64 // worker-loop recoveries (backstop; dod recovers first)

	m *engineMetrics // telemetry sink; nil-safe, may be nil in unit tests
}

// specBuild tracks one speculative prebuild so cancel-on-settle can abandon
// it by want key.
type specBuild struct {
	cancel context.CancelFunc
}

// buildJob is one want to build. out is nil for speculative prebuilds
// (nobody waits on the result; the point is warming the candidate cache).
// ctx, when non-nil, bounds or cancels the build; done, when non-nil, runs
// after the job resolves (or is dropped), releasing speculative bookkeeping.
type buildJob struct {
	ctx  context.Context
	want dod.Want
	out  chan<- *dod.CandidateSet
	done func()
}

func newBuildPool(p *core.Platform, workers int, m *engineMetrics) *buildPool {
	bp := &buildPool{platform: p, jobs: make(chan buildJob),
		quit: make(chan struct{}), spec: map[string]*specBuild{}, m: m}
	bp.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go bp.worker(i)
	}
	return bp
}

// worker is one long-lived build worker. runJob recovers panics at job
// granularity, so the loop — and the worker's slot in the pool — survives
// any single build blowing up: recovery is an in-place restart.
func (bp *buildPool) worker(id int) {
	defer bp.workerWG.Done()
	for job := range bp.jobs {
		bp.runJob(id, job)
	}
}

// runJob executes one build. A panic fails only this want group: the job
// resolves to a CandidateSet carrying the panic as its build error (so the
// pricing stage treats it like any failed build) and the panic is counted.
// dod.BuildCached has its own recover — this one is the backstop for panics
// outside it (e.g. in the platform seam).
func (bp *buildPool) runJob(id int, job buildJob) {
	bp.queued.Add(-1)
	start := time.Now()
	defer func() {
		bp.m.observeWorkerBusy(id, time.Since(start).Seconds())
		if job.done != nil {
			job.done()
		}
		if r := recover(); r != nil {
			bp.panics.Add(1)
			if job.out != nil {
				job.out <- &dod.CandidateSet{Key: job.want.Key(), Want: job.want,
					Err: fmt.Sprintf("dod: build panicked: %v", r)}
			}
		}
	}()
	cs := bp.platform.BuildCandidates(job.ctx, job.want)
	if job.out != nil {
		job.out <- cs
	}
}

// dispatch hands one job to the workers. It reports false when the pool is
// stopped (caller decides: inline fallback for epoch builds, drop for
// speculative ones). The send deliberately happens OUTSIDE bp.mu: holding
// the mutex across an unbuffered send meant a dispatch blocked on busy
// workers also blocked close()'s mu.Lock — Engine.Stop deadlocked behind a
// full pool. Instead, dispatch registers with dispatchWG under the lock and
// then selects on the send vs. quit; close() flips stopped, closes quit to
// kick out blocked senders, and waits dispatchWG before closing the channel,
// so a send can never race the close.
func (bp *buildPool) dispatch(job buildJob) bool {
	bp.mu.Lock()
	if bp.stopped {
		bp.mu.Unlock()
		return false
	}
	bp.dispatchWG.Add(1)
	bp.mu.Unlock()
	defer bp.dispatchWG.Done()
	bp.queued.Add(1)
	select {
	case bp.jobs <- job:
		return true
	case <-bp.quit:
		bp.queued.Add(-1)
		return false
	}
}

// buildAll builds every want on the worker pool and returns the candidate
// sets keyed by group key. It blocks until all builds finish — the epoch
// runner needs the complete prebuilt map before pricing — but the builds
// themselves run on the workers, so their wall-clock overlaps and their cost
// lands in Stats.BuildMillis, not in the round. With Config.BuildDeadline
// set, no single group can hold the map hostage: a wedged build resolves to
// a deadline-failed set and pricing skips it.
func (bp *buildPool) buildAll(ctx context.Context, wants []dod.Want) map[string]*dod.CandidateSet {
	if len(wants) == 0 {
		return nil
	}
	out := make(chan *dod.CandidateSet, len(wants))
	for _, w := range wants {
		if !bp.dispatch(buildJob{ctx: ctx, want: w, out: out}) {
			// Pool already closed (engine shutdown's final flush epoch):
			// build inline so the round still prices everything.
			out <- bp.platform.BuildCandidates(ctx, w)
		}
	}
	res := make(map[string]*dod.CandidateSet, len(wants))
	for range wants {
		cs := <-out
		res[cs.Key] = cs
	}
	return res
}

// prebuild speculatively warms the candidate cache for the given wants in
// the background (no caller waits). Useful between epochs: a want left
// unmet re-enters the next round, and if supply arrived meanwhile — bumping
// the catalog version — the rebuild happens here instead of on the epoch's
// critical path. Valid entries revalidate as cheap cache hits. Each build
// gets its own cancellable context, registered by want key so
// cancelSettled can abandon it the moment the want clears.
func (bp *buildPool) prebuild(wants []dod.Want) {
	if len(wants) == 0 {
		return
	}
	bp.mu.Lock()
	if bp.stopped {
		bp.mu.Unlock()
		return
	}
	bp.specWG.Add(1)
	jobs := make([]buildJob, 0, len(wants))
	for _, w := range wants {
		key := w.Key()
		ctx, cancel := context.WithCancel(context.Background())
		sb := &specBuild{cancel: cancel}
		bp.spec[key] = sb
		jobs = append(jobs, buildJob{ctx: ctx, want: w, done: func() {
			cancel() // release the context whatever happened
			bp.mu.Lock()
			if bp.spec[key] == sb {
				delete(bp.spec, key)
			}
			bp.mu.Unlock()
		}})
	}
	bp.mu.Unlock()
	go func() {
		defer bp.specWG.Done()
		for _, job := range jobs {
			if !bp.dispatch(job) {
				job.done() // shutting down; skip the wasted work
			}
		}
	}()
}

// cancelSettled abandons every live speculative build whose want key is not
// in active — cancel-on-settle: the round just cleared those wants, so the
// cache warm nobody will price is cancelled instead of finished. The epoch
// runner calls it with the still-open want keys after each counted round.
func (bp *buildPool) cancelSettled(active map[string]bool) {
	bp.mu.Lock()
	var cancels []context.CancelFunc
	for key, sb := range bp.spec {
		if !active[key] {
			cancels = append(cancels, sb.cancel)
			delete(bp.spec, key)
		}
	}
	bp.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// close stops accepting work, kicks blocked dispatchers out via quit, waits
// out speculative dispatchers and in-flight sends, then closes the job
// channel and waits for the workers to drain. Epoch builds arriving after
// close fall back inline in buildAll, so Stop's final flush epoch can still
// build. Speculative builds still queued are cancelled so the drain is
// bounded even if their wants would build slowly.
func (bp *buildPool) close() {
	bp.mu.Lock()
	bp.stopped = true
	var cancels []context.CancelFunc
	for key, sb := range bp.spec {
		cancels = append(cancels, sb.cancel)
		delete(bp.spec, key)
	}
	bp.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	close(bp.quit)
	bp.specWG.Wait()
	bp.dispatchWG.Wait()
	close(bp.jobs)
	bp.workerWG.Wait()
}
