package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dod"
)

// buildPool is the engine's DoD builder pool: the build stage of the split
// Fig. 2 pipeline. Config.DoDWorkers long-lived workers pull build jobs off
// one channel; the epoch runner fans the distinct open want groups out here
// after drain+apply and prices only the pre-built, version-valid results, so
// MatchRound never spends its single-threaded budget inside the beam search.
// Between epochs the pool speculatively re-warms the candidate cache for
// wants a round left unmet.
//
// Workers are panic-isolated: a panicking build (a buggy user transform, a
// malformed relation) fails only its own want group — the job resolves to a
// failed CandidateSet, the worker recovers and keeps serving, and the panic
// is counted (dod_worker_panics_total). The process never goes down with it.
//
// Candidates are derived state (never logged, never snapshotted), and a
// version-valid cached set is byte-identical to what an inline build would
// have produced, so none of this concurrency is visible to WAL replay.
type buildPool struct {
	platform *core.Platform
	jobs     chan buildJob

	mu       sync.Mutex
	stopped  bool
	specWG   sync.WaitGroup // in-flight speculative dispatchers
	workerWG sync.WaitGroup

	queued atomic.Int64  // dispatched jobs not yet picked up by a worker
	panics atomic.Uint64 // worker-loop recoveries (backstop; dod recovers first)

	m *engineMetrics // telemetry sink; nil-safe, may be nil in unit tests
}

// buildJob is one want to build. out is nil for speculative prebuilds
// (nobody waits on the result; the point is warming the candidate cache).
type buildJob struct {
	want dod.Want
	out  chan<- *dod.CandidateSet
}

func newBuildPool(p *core.Platform, workers int, m *engineMetrics) *buildPool {
	bp := &buildPool{platform: p, jobs: make(chan buildJob), m: m}
	bp.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go bp.worker(i)
	}
	return bp
}

// worker is one long-lived build worker. runJob recovers panics at job
// granularity, so the loop — and the worker's slot in the pool — survives
// any single build blowing up: recovery is an in-place restart.
func (bp *buildPool) worker(id int) {
	defer bp.workerWG.Done()
	for job := range bp.jobs {
		bp.runJob(id, job)
	}
}

// runJob executes one build. A panic fails only this want group: the job
// resolves to a CandidateSet carrying the panic as its build error (so the
// pricing stage treats it like any failed build) and the panic is counted.
// dod.BuildCached has its own recover — this one is the backstop for panics
// outside it (e.g. in the platform seam).
func (bp *buildPool) runJob(id int, job buildJob) {
	bp.queued.Add(-1)
	start := time.Now()
	defer func() {
		bp.m.observeWorkerBusy(id, time.Since(start).Seconds())
		if r := recover(); r != nil {
			bp.panics.Add(1)
			if job.out != nil {
				job.out <- &dod.CandidateSet{Key: job.want.Key(), Want: job.want,
					Err: fmt.Sprintf("dod: build panicked: %v", r)}
			}
		}
	}()
	cs := bp.platform.BuildCandidates(job.want)
	if job.out != nil {
		job.out <- cs
	}
}

// dispatch hands one job to the workers. It reports false when the pool is
// stopped (caller decides: inline fallback for epoch builds, drop for
// speculative ones). The send happens under mu, so close can never close
// the channel mid-send.
func (bp *buildPool) dispatch(job buildJob) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if bp.stopped {
		return false
	}
	bp.queued.Add(1)
	bp.jobs <- job
	return true
}

// buildAll builds every want on the worker pool and returns the candidate
// sets keyed by group key. It blocks until all builds finish — the epoch
// runner needs the complete prebuilt map before pricing — but the builds
// themselves run on the workers, so their wall-clock overlaps and their cost
// lands in Stats.BuildMillis, not in the round.
func (bp *buildPool) buildAll(wants []dod.Want) map[string]*dod.CandidateSet {
	if len(wants) == 0 {
		return nil
	}
	out := make(chan *dod.CandidateSet, len(wants))
	for _, w := range wants {
		if !bp.dispatch(buildJob{want: w, out: out}) {
			// Pool already closed (engine shutdown's final flush epoch):
			// build inline so the round still prices everything.
			out <- bp.platform.BuildCandidates(w)
		}
	}
	res := make(map[string]*dod.CandidateSet, len(wants))
	for range wants {
		cs := <-out
		res[cs.Key] = cs
	}
	return res
}

// prebuild speculatively warms the candidate cache for the given wants in
// the background (no caller waits). Useful between epochs: a want left
// unmet re-enters the next round, and if supply arrived meanwhile — bumping
// the catalog version — the rebuild happens here instead of on the epoch's
// critical path. Valid entries revalidate as cheap cache hits.
func (bp *buildPool) prebuild(wants []dod.Want) {
	if len(wants) == 0 {
		return
	}
	bp.mu.Lock()
	if bp.stopped {
		bp.mu.Unlock()
		return
	}
	bp.specWG.Add(1)
	bp.mu.Unlock()
	go func() {
		defer bp.specWG.Done()
		for _, w := range wants {
			if !bp.dispatch(buildJob{want: w}) {
				return // shutting down; skip the wasted work
			}
		}
	}()
}

// close stops accepting work, waits out speculative dispatchers, then closes
// the job channel and waits for the workers to drain. Epoch builds arriving
// after close fall back inline in buildAll, so Stop's final flush epoch can
// still build.
func (bp *buildPool) close() {
	bp.mu.Lock()
	bp.stopped = true
	bp.mu.Unlock()
	bp.specWG.Wait()
	close(bp.jobs)
	bp.workerWG.Wait()
}
