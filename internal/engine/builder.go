package engine

import (
	"sync"

	"repro/internal/core"
	"repro/internal/dod"
)

// buildPool is the engine's DoD builder pool: the build stage of the split
// Fig. 2 pipeline. Config.DoDWorkers bounds how many mashup builds run at
// once; the epoch runner fans the distinct open want groups out here after
// drain+apply and prices only the pre-built, version-valid results, so
// MatchRound never spends its single-threaded budget inside the beam search.
// Between epochs the pool speculatively re-warms the candidate cache for
// wants a round left unmet.
//
// Candidates are derived state (never logged, never snapshotted), and a
// version-valid cached set is byte-identical to what an inline build would
// have produced, so none of this concurrency is visible to WAL replay.
type buildPool struct {
	platform *core.Platform
	sem      chan struct{} // build-concurrency bound (cap = DoDWorkers)

	mu      sync.Mutex
	stopped bool
	specWG  sync.WaitGroup // in-flight speculative prebuilds
}

func newBuildPool(p *core.Platform, workers int) *buildPool {
	return &buildPool{platform: p, sem: make(chan struct{}, workers)}
}

// buildAll builds every want concurrently (bounded by the worker count) and
// returns the candidate sets keyed by group key. It blocks until all builds
// finish — the epoch runner needs the complete prebuilt map before pricing —
// but the builds themselves run on pool goroutines, so their wall-clock
// overlaps and their cost lands in Stats.BuildMillis, not in the round.
func (bp *buildPool) buildAll(wants []dod.Want) map[string]*dod.CandidateSet {
	if len(wants) == 0 {
		return nil
	}
	out := make(map[string]*dod.CandidateSet, len(wants))
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for _, w := range wants {
		wg.Add(1)
		go func(w dod.Want) {
			defer wg.Done()
			bp.sem <- struct{}{}
			defer func() { <-bp.sem }()
			cs := bp.platform.BuildCandidates(w)
			outMu.Lock()
			out[cs.Key] = cs
			outMu.Unlock()
		}(w)
	}
	wg.Wait()
	return out
}

// prebuild speculatively warms the candidate cache for the given wants in
// the background (no caller waits). Useful between epochs: a want left
// unmet re-enters the next round, and if supply arrived meanwhile — bumping
// the catalog version — the rebuild happens here instead of on the epoch's
// critical path. Valid entries revalidate as cheap cache hits.
func (bp *buildPool) prebuild(wants []dod.Want) {
	if len(wants) == 0 {
		return
	}
	bp.mu.Lock()
	if bp.stopped {
		bp.mu.Unlock()
		return
	}
	bp.specWG.Add(len(wants))
	bp.mu.Unlock()
	for _, w := range wants {
		go func(w dod.Want) {
			defer bp.specWG.Done()
			bp.sem <- struct{}{}
			defer func() { <-bp.sem }()
			bp.mu.Lock()
			stopped := bp.stopped
			bp.mu.Unlock()
			if stopped {
				return // shutting down; skip the wasted work
			}
			bp.platform.BuildCandidates(w)
		}(w)
	}
}

// close stops accepting speculative work and waits for in-flight prebuilds.
// Epoch builds are unaffected (buildAll keeps working — Stop's final flush
// epoch runs after the loop stops but may still need to build).
func (bp *buildPool) close() {
	bp.mu.Lock()
	bp.stopped = true
	bp.mu.Unlock()
	bp.specWG.Wait()
}
