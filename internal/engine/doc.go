// Package engine is the concurrent market engine: the coordination layer
// between the wire protocol (internal/dmms) and the single-threaded clearing
// logic of the arbiter (internal/arbiter). The arbiter's MatchRound — the
// paper's Fig. 2 pipeline — is inherently a discrete matching round over the
// full set of open requests, so it cannot itself be parallelized across
// buyers; what can be made concurrent is everything around it. The engine
// does exactly that, splitting the round's most expensive stage — the Mashup
// Builder — out onto a worker pool:
//
//	many goroutines                 one epoch runner
//	---------------                 ----------------
//	SubmitRegister ─┐
//	SubmitShare    ─┼─> sharded     drain -> apply ─┐        ┌-> PriceRound -> publish
//	SubmitRequest  ─┘   intake                      │        │   (pre-built, version-
//	                    queues                      v        │    valid candidates only)
//	                                       ┌─────────────────┴──┐
//	DoD builder pool (Config.DoDWorkers):  │ BuildFor(want) x N │
//	N concurrent beam searches into the    └────────────────────┘
//	versioned candidate cache; between     speculative prebuilds for
//	epochs it re-warms unmet wants         unmet wants run between epochs
//
// # Intake sharding
//
// Submissions (participant registrations, seller shares, buyer WTP-task
// requests) are appended to one of Config.Shards intake queues, chosen by a
// hash of the participant name, so concurrent submitters mostly touch
// distinct locks. Every submission receives a globally ordered sequence
// number and a ticket ID; callers poll the ticket to follow the submission
// through its lifecycle:
//
//	queued -> applied -> done        (requests: applied = filed, done = matched)
//	queued -> done                   (registrations and shares)
//	queued -> failed                 (validation or apply error)
//
// # Epochs
//
// An epoch is one batched coordination step. It is triggered by a ticker
// (Config.EpochEvery), by intake pressure (Config.BatchThreshold pending
// submissions), or manually (TriggerEpoch). Each epoch the runner drains all
// shards, replays the batch in global sequence order against the platform
// (registrations, dataset shares, request filings), and — when open requests
// exist — runs exactly one arbiter MatchRound. Requests that stay
// unsatisfied remain open and are retried automatically in later epochs, so
// a buyer whose need precedes the matching supply is served as soon as a
// seller shows up. Epochs with nothing to do are skipped.
//
// # Builder pool and candidate cache
//
// With Config.DoDWorkers > 0 each epoch is itself a two-stage pipeline.
// After drain+apply, the runner snapshots the distinct open want groups and
// fans their mashup builds out to up to DoDWorkers concurrent workers (the
// build stage); the matching round then prices only the pre-built candidate
// sets (the price stage), so the single-threaded commit path — pricing,
// settlement, WAL — never pays for a beam search. Builds land in the DoD
// engine's versioned candidate cache (internal/dod): every ShareDataset,
// UpdateDataset and RegisterTransform bumps a catalog version, each cached
// set is stamped with the version it was built against, and the price stage
// re-validates at settlement time — a dataset updated between build and
// price can never settle against its pre-update mashup; the round rebuilds
// inline instead. Between epochs the pool speculatively re-warms the cache
// for wants the last round left unmet. Candidates are derived state: they
// are never logged or snapshotted, and a version-valid cached set is
// identical to what an inline build would produce (Build is deterministic),
// so none of this concurrency is visible to replay. Stats surfaces the
// split: BuildMillis (cumulative build time, accounted to the builders),
// CacheHits and CacheStale.
//
// # Event log
//
// Every state change is published to an append-only, totally ordered event
// log instead of being returned to one caller. Subscribers — settlement
// (ledger.SettlementBook), provenance, metrics, the dmms polling endpoints —
// consume the log at their own pace via cursor-based reads (Events/WaitAfter);
// nothing is ever dropped. Event schema (JSON over the wire):
//
//	seq          int     total order, 1-based, no gaps
//	epoch        uint64  epoch that produced the event
//	kind         string  epoch-start | participant-registered | dataset-shared |
//	                     request-filed | request-unmet | request-rejected |
//	                     request-aged | tx-settled | value-reported |
//	                     submission-rejected | epoch-end
//	ticket       string  submission ticket, when the event advances one
//	participant  string  buyer or seller name
//	dataset      string  dataset ID (dataset-shared)
//	request_id   string  arbiter request ID (request-filed onward)
//	tx_id        string  transaction ID (tx-settled)
//	price        float64 clearing price (tx-settled)
//	arbiter_cut  float64 arbiter fee (tx-settled)
//	seller_cuts  map     seller -> revenue share (tx-settled)
//	satisfaction float64 WTP satisfaction achieved (tx-settled)
//	datasets     []str   datasets in the sold mashup (tx-settled)
//	ex_post      bool    settlement is escrow-based, priced on report
//	ex_post_shares map  owner -> revenue fraction fixed at delivery (tx-settled)
//	reported     float64 buyer's reported realized value (value-reported)
//	audited      bool    arbiter verified the report (value-reported)
//	sub_kind     string  submission kind (submission-rejected)
//	priority     int     priority class (request-filed, submission-rejected)
//	age          uint64  epochs waited when deferred (request-aged)
//	count        uint64  sheds covered by an aggregate (request-rejected)
//	unmet_columns map    column -> demand increments this round (epoch-end)
//	error        string  rejection reason (submission-rejected)
//	note         string  human-readable detail; shed reason (request-rejected)
//	payload      object  full submission body (dataset-shared, request-filed)
//
// The settlement subscriber folds every tx-settled event into a
// ledger.SettlementBook, which checks conservation (price == arbiter cut +
// seller cuts) per transaction — the invariant the race tests assert across
// epochs.
//
// # Admission control and matching policy
//
// Intake is guarded by an AdmissionController (Config.Admission):
// per-participant token-bucket quotas and a global per-epoch request cap
// reject a submission *before* it gets a ticket or an event-log record,
// returning a typed *OverloadError with a retry-after hint (dmms maps it to
// HTTP 429 + Retry-After); queue-depth backpressure sheds any submission
// kind while intake is saturated. Quota and cap rejections are audit-logged
// as aggregated request-rejected events — one per participant and reason
// per epoch window, flushed at epoch end, so a rejection flood costs one
// record per window rather than one per request; buckets refill at every
// counted epoch end, so the whole admission state is a pure function of the
// event stream and survives replay.
//
// Open requests enter each matching round in the order a MatchPolicy
// (Config.Policy) assigns: FIFO (arrival), priority classes (the
// X-DMMS-Priority wire header), or starvation aging, where every epoch
// waited adds Config-tunable score so no class can starve another forever.
// Config.EpochMatchCap bounds how many requests a round may admit; a
// deferred request gets one request-aged event on its first deferral and is
// re-ranked every epoch. The
// property-based fairness harness (policy_prop_test.go) pins the invariants:
// bounded waits under aging, quota accounting, conservation under flood,
// and byte-identical policy decisions across crash/replay.
//
// # Durability
//
// The log carries enough to be the system of record: share and request
// events embed their full submission payload, so a write-ahead copy of the
// log (internal/wal, attached via Config.Persister) is sufficient to rebuild
// everything. The replay invariant: applying the events of any log prefix,
// in order, to a fresh platform (Restore) reproduces exactly the state the
// original process had when it appended the prefix's last record — ledger
// balances to the micro-unit, catalog and index contents, open requests
// under their original IDs, tickets, the settlement book, and the request/
// transaction ID counter. Replay applies logged outcomes; it never re-runs
// matching, so recovery is deterministic regardless of design or mechanism.
// Snapshot checkpoints (Engine.Snapshot + core.PlatformSnapshot) let Restore
// start from a watermark instead of seq 1; the in-memory log is still
// re-seeded with the full recovered history so subscriber cursors resume
// without gaps. Ex-post settlement is durable end to end: deliveries fix
// their revenue fractions on the tx-settled record, SubmitReport settles the
// escrow through a value-reported record, snapshots carry outstanding
// escrows (and the audit RNG), and replay repeats the logged transfers
// without re-running the audit. The only non-durable submissions are
// requests whose WTP task is an in-process code package (wtp.FuncTask) —
// they cannot be serialized and are failed on replay.
//
// # Federation
//
// One engine is one arbiter: a single catalog, epoch runner and WAL lineage.
// internal/federation composes N of them into a sharded market — the engine
// itself needs no changes beyond the cross-shard escrow events
// (xtx-prepared/committed/aborted) and the XTxInFlight snapshot guard:
//
//	                   federation.Market
//	SubmitX ──> router (participant hash + column index)
//	            │ local want          │ spanning want
//	            v                     v
//	     shard i (engine +     coordinator (2PC over the
//	     platform + WAL,       shard event logs; its own
//	     own epochs)           coord.log for decisions)
//
// Each shard runs the full pipeline above concurrently with the others;
// wants whose columns live on one shard never pay any coordination cost,
// and cross-shard mashups settle through an escrow-style two-phase commit
// whose legs are ordinary WAL events, so recovery resolves in-doubt
// transactions from the logs alone. With one shard the federation is a
// pass-through and replay stays byte-identical to a bare engine.
//
// # Telemetry
//
// With Config.Metrics set to an obs.Registry, the engine instruments itself:
// epoch duration and lag, per-shard intake depth, admission rejections by
// reason, builder-pool busy time/queue depth/panic isolations, candidate-
// cache counters, and a submit→settle tracer that stamps each request ticket
// through the pipeline stages (submit → admit → enqueue → build → price →
// settle → report), exposed as per-stage and end-to-end latency histograms
// plus per-ticket traces (TicketTrace, the dmms ticket view).
//
// Metrics are *derived state*, strictly observational: no instrument writes
// to the event log, the WAL, or any replayed structure, and no scrape
// callback takes the epoch lock. Enabling telemetry therefore changes no
// event, ID, balance, or replay outcome — the crash/replay matrix runs with
// a live registry and asserts byte-identical state. Registries are rebuilt
// from scratch on restart like any other derived view; counters restart at
// the recovered totals, histograms restart empty.
package engine
