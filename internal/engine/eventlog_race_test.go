package engine

import (
	"sync"
	"testing"
)

// TestEventLogSubscriberIsolation is the -race regression for cursor-based
// consumption: Since/WaitAfter must hand every subscriber a private copy,
// never the live backing array — a subscriber that holds or even mutates its
// batch while the epoch runner appends past its cursor must neither race nor
// corrupt the log. Run with -race (CI does).
func TestEventLogSubscriberIsolation(t *testing.T) {
	const total = 2000
	l := NewEventLog()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			l.Append(Event{Kind: EventEpochStart, Epoch: uint64(i), Note: "clean"})
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(poll bool) {
			defer wg.Done()
			cursor := 0
			for cursor < total {
				var evs []Event
				if poll {
					evs = l.Since(cursor)
				} else {
					evs, _ = l.WaitAfter(cursor)
				}
				if len(evs) == 0 {
					continue
				}
				cursor = evs[len(evs)-1].Seq
				// Scribble all over the returned batch: with a leaked
				// backing array this is a write race against Append and
				// visible corruption to other subscribers.
				for i := range evs {
					evs[i].Seq = -1
					evs[i].Note = "scribbled"
				}
			}
		}(r%2 == 0)
	}
	<-done
	wg.Wait()
	l.Close()

	evs := l.Since(0)
	if len(evs) != total {
		t.Fatalf("log has %d events, want %d", len(evs), total)
	}
	for i, ev := range evs {
		if ev.Seq != i+1 || ev.Note != "clean" {
			t.Fatalf("event %d corrupted by a subscriber: %+v", i, ev)
		}
	}
}
