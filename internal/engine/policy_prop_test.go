package engine_test

// The property-based fairness harness: seeded randomized workloads — a hot
// participant flooding the intake next to a handful of background buyers
// with mixed priority classes — are driven through the engine under every
// matching policy, asserting the invariants the admission/policy layer
// promises:
//
//  1. liveness: once arrivals stop, every admitted request drains (no
//     policy strands an open request forever when capacity exists);
//  2. bounded waiting under starvation aging: no admitted request waits
//     more than K epochs, where K is derived from the class gap, the age
//     boost, the peak backlog and the per-epoch cap;
//  3. quota accounting: per-participant admissions never exceed
//     burst + rate * (counted epochs), and every rejection is a typed
//     OverloadError with a retry-after hint;
//  4. conservation: the settlement book balances and the ledger audit
//     chain verifies, flood or not;
//  5. determinism: crashing the WAL at an arrival boundary, rebooting and
//     re-driving the lost suffix reproduces the uninterrupted run's event
//     stream and final state byte-for-byte — admission decisions, deferral
//     (request-aged) records and match order included.
//
// The fixed seed matrix keeps CI deterministic; POLICY_PROP_EXTRA_SEEDS=N
// adds N time-derived seeds as a randomized budget (seeds are logged for
// reproduction).

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/license"
	"repro/internal/relation"
	"repro/internal/wal"
	"repro/internal/wtp"
)

const propDesign = "posted-baseline" // PostedPrice{P: 100}: offers >= 100 always clear

// --- deterministic workload generation --------------------------------------

// prng is splitmix64: tiny, seedable, good enough to diversify workloads.
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z^(z>>27))*0x94d49b3b0a0e97b3 ^ 0xd6e8feb86659fd93
	return z ^ (z >> 31)
}

func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

type propBuyer struct {
	name     string
	priority int
	perEpoch int // requests submitted per arrival round
}

type propWorkload struct {
	seed          uint64
	buyers        []propBuyer
	arrivalRounds int
	cap           int     // per-epoch matching-round cap
	quota         float64 // per-participant admissions per epoch
	burst         float64
}

func workloadFor(seed uint64) propWorkload {
	r := &prng{s: seed}
	nb := 3 + r.intn(3)
	buyers := make([]propBuyer, nb)
	for i := range buyers {
		rate := r.intn(3)
		if i == 0 {
			rate = 3 + r.intn(3) // the hot participant
		}
		buyers[i] = propBuyer{
			name:     fmt.Sprintf("b%02d", i),
			priority: r.intn(3), // PriorityLow..PriorityHigh
			perEpoch: rate,
		}
	}
	quota := float64(2 + r.intn(3))
	return propWorkload{
		seed:          seed,
		buyers:        buyers,
		arrivalRounds: 8 + r.intn(5),
		cap:           1 + r.intn(3),
		quota:         quota,
		burst:         quota + float64(r.intn(3)),
	}
}

func (wl propWorkload) maxPerEpoch() int {
	total := 0
	for _, b := range wl.buyers {
		total += b.perEpoch
	}
	return total
}

func propConfig(t *testing.T, policyName string, wl propWorkload) engine.Config {
	t.Helper()
	pol, err := engine.ParsePolicy(policyName, 1)
	if err != nil {
		t.Fatal(err)
	}
	return engine.Config{
		Shards:        4,
		Policy:        pol,
		EpochMatchCap: wl.cap,
		Admission:     engine.AdmissionConfig{QuotaPerEpoch: wl.quota, QuotaBurst: wl.burst},
	}
}

// --- driver ------------------------------------------------------------------

func propRelation() *relation.Relation {
	r := relation.New("seller/d0", relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
	for i := 0; i < 20; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*2.5))
	}
	return r
}

func propRequest(buyer string) (dod.Want, *wtp.Function) {
	want := dod.Want{Columns: []string{"a", "b"}}
	f := &wtp.Function{
		Buyer: buyer,
		Task:  wtp.CoverageTask{Columns: []string{"a", "b"}, WantRows: 1},
		Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 500}},
	}
	return want, f
}

// mustTk unwraps a Submit* result where admission cannot reject.
func mustTk(id string, err error) string {
	if err != nil {
		panic(err)
	}
	return id
}

type runStats struct {
	tickets  []string // request tickets that were admitted
	rejected int
	peakOpen int
}

func (st *runStats) trackPeak(e *engine.Engine) {
	if open := e.Stats().OpenRequests; open > st.peakOpen {
		st.peakOpen = open
	}
}

// propSetup funds all buyers and shares the dataset, in one epoch.
func propSetup(t *testing.T, e *engine.Engine, wl propWorkload) {
	t.Helper()
	for _, b := range wl.buyers {
		mustTk(e.SubmitRegister(b.name, 1e7))
	}
	mustTk(e.SubmitShare("seller", catalog.DatasetID("seller/d0"), propRelation(),
		wtp.DatasetMeta{Dataset: "seller/d0", HasProvenance: true}, license.Terms{Kind: license.Open}))
	if _, ran := e.TriggerEpoch(); !ran {
		t.Fatal("setup epoch did not run")
	}
}

// driveArrivals runs arrival rounds [from, to): every buyer submits its
// per-epoch load (admission may shed part of it), then one epoch runs.
func driveArrivals(t *testing.T, e *engine.Engine, wl propWorkload, from, to int, st *runStats) {
	t.Helper()
	for round := from; round < to; round++ {
		for _, b := range wl.buyers {
			for k := 0; k < b.perEpoch; k++ {
				want, f := propRequest(b.name)
				tk, err := e.SubmitRequestPriority(want, f, b.priority)
				if err != nil {
					var oe *engine.OverloadError
					if !errors.As(err, &oe) {
						t.Fatalf("intake error is not an OverloadError: %v", err)
					}
					if oe.RetryAfter <= 0 {
						t.Fatalf("rejection without retry-after hint: %+v", oe)
					}
					st.rejected++
					continue
				}
				st.tickets = append(st.tickets, tk)
			}
		}
		if _, ran := e.TriggerEpoch(); !ran {
			t.Fatalf("arrival round %d did not run an epoch", round)
		}
		st.trackPeak(e)
	}
}

// drainAll triggers epochs until every open request has cleared.
func drainAll(t *testing.T, e *engine.Engine, st *runStats) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if e.Stats().OpenRequests == 0 {
			return
		}
		if _, ran := e.TriggerEpoch(); !ran {
			t.Fatalf("drain stalled with %d open requests", e.Stats().OpenRequests)
		}
		st.trackPeak(e)
	}
	t.Fatalf("drain did not terminate: %d still open", e.Stats().OpenRequests)
}

// --- invariants ----------------------------------------------------------------

// agingWaitBound is the provable ceiling for the aging policy: once a
// request has aged past the widest class gap (gap/boost epochs), no fresh
// arrival can outrank it, so only the backlog present around its filing —
// at most peakOpen plus the arrivals of those gap epochs — precedes it,
// draining cap per counted epoch.
func agingWaitBound(wl propWorkload, peakOpen int) uint64 {
	gapEpochs := engine.PriorityHigh - engine.PriorityLow // boost = 1
	ahead := peakOpen + wl.maxPerEpoch()*(gapEpochs+1)
	return uint64(gapEpochs + (ahead+wl.cap-1)/wl.cap + 2)
}

func checkInvariants(t *testing.T, policyName string, wl propWorkload,
	p *core.Platform, e *engine.Engine, st *runStats) {
	t.Helper()
	if open := e.Stats().OpenRequests; open != 0 {
		t.Fatalf("%d requests starved after arrivals ended", open)
	}
	if !e.Settlements().Conserved() {
		t.Fatal("settlement conservation violated")
	}
	if i := p.Arbiter.Ledger.VerifyChain(); i >= 0 {
		t.Fatalf("ledger audit chain corrupted at entry %d", i)
	}

	// Quota accounting, recomputed from the durable event stream. The
	// request-rejected records are aggregates: their counts must add up to
	// exactly the rejections the driver observed.
	filed := map[string]int{}
	rejectedEvents := 0
	epochEnds := 0
	for _, ev := range e.Events(0) {
		switch ev.Kind {
		case engine.EventRequestFiled:
			filed[ev.Participant]++
		case engine.EventRequestRejected:
			rejectedEvents += int(ev.Count)
		case engine.EventEpochEnd:
			epochEnds++
		}
	}
	limit := int(wl.burst) + int(wl.quota)*epochEnds
	for name, n := range filed {
		if n > limit {
			t.Fatalf("quota violated for %s: %d admitted > burst %v + quota %v x %d epochs",
				name, n, wl.burst, wl.quota, epochEnds)
		}
	}
	if rejectedEvents != st.rejected {
		t.Fatalf("rejection audit drifted: %d events vs %d observed errors", rejectedEvents, st.rejected)
	}

	// Starvation-aging wait bound: every matched request cleared within K.
	if policyName == "aging" {
		bound := agingWaitBound(wl, st.peakOpen)
		for _, id := range st.tickets {
			tk, ok := e.Ticket(id)
			if !ok || tk.Status != engine.TicketDone || tk.MatchedEpoch == 0 {
				continue
			}
			if wait := tk.MatchedEpoch - tk.Epoch; wait > bound {
				t.Fatalf("aging wait bound violated: ticket %s waited %d epochs (K=%d, peak=%d, cap=%d)",
					id, wait, bound, st.peakOpen, wl.cap)
			}
		}
	}
}

// --- determinism ----------------------------------------------------------------

// switchPersister forwards to the real WAL until flipped, then fails every
// persist — a crash whose durable prefix ends exactly at the flip point.
type switchPersister struct {
	inner engine.Persister
	fail  atomic.Bool
}

func (s *switchPersister) Persist(ev engine.Event) error {
	if s.fail.Load() {
		return fmt.Errorf("injected crash at seq %d", ev.Seq)
	}
	return s.inner.Persist(ev)
}

// canonEvents renders an event stream with timestamps scrubbed — the
// byte-comparable record of every policy decision the run made.
func canonEvents(t *testing.T, evs []engine.Event) string {
	t.Helper()
	var b strings.Builder
	for _, ev := range evs {
		ev.At = time.Time{}
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	return b.String()
}

func propFingerprint(t *testing.T, p *core.Platform, e *engine.Engine) string {
	t.Helper()
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("snapshot for fingerprint: %v", err)
	}
	snap.TakenAt = time.Time{}
	out, err := json.Marshal(struct {
		Snap      *engine.SnapshotState
		Demand    any
		Conserved bool
	}{snap, p.Arbiter.DemandSignals(), e.Settlements().Conserved()})
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// --- the harness ------------------------------------------------------------------

var propPolicies = []string{"fifo", "priority", "aging"}

// propSeeds is the fixed matrix plus an optional randomized budget.
func propSeeds(t *testing.T) []uint64 {
	seeds := make([]uint64, 0, 24)
	for s := uint64(1); s <= 20; s++ {
		seeds = append(seeds, s)
	}
	if v := os.Getenv("POLICY_PROP_EXTRA_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad POLICY_PROP_EXTRA_SEEDS %q: %v", v, err)
		}
		base := uint64(time.Now().UnixNano())
		for i := 0; i < n; i++ {
			seed := base + uint64(i)*0x9e3779b97f4a7c15
			t.Logf("randomized budget seed: %d", seed)
			seeds = append(seeds, seed)
		}
	}
	return seeds
}

func TestPolicyProperties(t *testing.T) {
	for _, policyName := range propPolicies {
		t.Run(policyName, func(t *testing.T) {
			for _, seed := range propSeeds(t) {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					runPropCase(t, policyName, seed)
				})
			}
		})
	}
}

func runPropCase(t *testing.T, policyName string, seed uint64) {
	wl := workloadFor(seed)
	cfg := propConfig(t, policyName, wl)

	// Uninterrupted baseline over a real WAL.
	dirA := t.TempDir()
	wA, err := wal.Open(wal.Options{Dir: dirA, Policy: wal.SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	pA, err := core.NewPlatform(core.Options{Design: propDesign})
	if err != nil {
		t.Fatal(err)
	}
	cfgA := cfg
	cfgA.Persister = wA
	eA := engine.New(pA, cfgA)
	stA := &runStats{}
	propSetup(t, eA, wl)
	driveArrivals(t, eA, wl, 0, wl.arrivalRounds, stA)
	drainAll(t, eA, stA)
	eA.Stop()
	if _, perr := eA.Log().Persisted(); perr != nil {
		t.Fatalf("baseline wedged its persister: %v", perr)
	}
	if err := wA.Close(); err != nil {
		t.Fatal(err)
	}

	checkInvariants(t, policyName, wl, pA, eA, stA)
	fpA := propFingerprint(t, pA, eA)
	evA := canonEvents(t, eA.Events(0))

	// Crash at the m-th arrival boundary: everything after it is lost.
	m := wl.arrivalRounds / 2
	dirB := t.TempDir()
	wB, err := wal.Open(wal.Options{Dir: dirB, Policy: wal.SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	sw := &switchPersister{inner: wB}
	pB, err := core.NewPlatform(core.Options{Design: propDesign})
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfg
	cfgB.Persister = sw
	eB := engine.New(pB, cfgB)
	stB := &runStats{}
	propSetup(t, eB, wl)
	driveArrivals(t, eB, wl, 0, m, stB)
	sw.fail.Store(true) // crash: the suffix of the run never reaches disk
	driveArrivals(t, eB, wl, m, wl.arrivalRounds, stB)
	drainAll(t, eB, stB)
	eB.Stop()
	wB.Close()

	// Reboot from the durable prefix and re-drive the lost suffix.
	pC, eC, wC, res, err := wal.Boot(core.Options{Design: propDesign}, cfg,
		wal.Options{Dir: dirB, Policy: wal.SyncEpoch})
	if err != nil {
		t.Fatalf("boot after crash: %v", err)
	}
	defer wC.Close()
	if res.Recovered == 0 {
		t.Fatal("nothing recovered from the durable prefix")
	}
	stC := &runStats{}
	driveArrivals(t, eC, wl, m, wl.arrivalRounds, stC)
	drainAll(t, eC, stC)
	eC.Stop()
	if _, perr := eC.Log().Persisted(); perr != nil {
		t.Fatalf("re-driven run wedged its persister: %v", perr)
	}

	if got := propFingerprint(t, pC, eC); got != fpA {
		t.Fatalf("crash/replay state diverged from the uninterrupted run:\n--- baseline\n%s\n--- replayed\n%s", fpA, got)
	}
	if got := canonEvents(t, eC.Events(0)); got != evA {
		t.Fatalf("crash/replay decision stream diverged:\n--- baseline\n%s\n--- replayed\n%s", evA, got)
	}
}

// --- deterministic fairness contrasts ------------------------------------------

// contrastScenario measures how long a single victim request waits under a
// policy when a hot participant floods the market first: a 16-request
// normal-class burst lands ahead of one high-class victim request, with a
// matching-round cap of 2 per epoch.
func burstVictimWait(t *testing.T, policyName string) uint64 {
	t.Helper()
	pol, err := engine.ParsePolicy(policyName, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: propDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 2, Policy: pol, EpochMatchCap: 2})
	defer e.Stop()
	mustTk(e.SubmitRegister("hot", 1e7))
	mustTk(e.SubmitRegister("victim", 1e7))
	mustTk(e.SubmitShare("seller", catalog.DatasetID("seller/d0"), propRelation(),
		wtp.DatasetMeta{Dataset: "seller/d0", HasProvenance: true}, license.Terms{Kind: license.Open}))
	e.TriggerEpoch()

	for i := 0; i < 16; i++ {
		want, f := propRequest("hot")
		mustTk(e.SubmitRequestPriority(want, f, engine.PriorityNormal))
	}
	want, f := propRequest("victim")
	victim := mustTk(e.SubmitRequestPriority(want, f, engine.PriorityHigh))
	e.TriggerEpoch()
	for i := 0; i < 100; i++ {
		if e.Stats().OpenRequests == 0 {
			break
		}
		e.TriggerEpoch()
	}
	tk, ok := e.Ticket(victim)
	if !ok || tk.Status != engine.TicketDone {
		t.Fatalf("victim never matched under %s: %+v", policyName, tk)
	}
	return tk.MatchedEpoch - tk.Epoch
}

// TestAgingBoundsWaitWhereFIFOExceedsIt is the acceptance contrast: the
// same burst workload makes FIFO hold the late high-priority victim behind
// the whole flood (wait > K) while starvation aging clears it within K.
func TestAgingBoundsWaitWhereFIFOExceedsIt(t *testing.T) {
	const K = 4
	fifoWait := burstVictimWait(t, "fifo")
	agingWait := burstVictimWait(t, "aging")
	if fifoWait <= K {
		t.Fatalf("FIFO baseline should exceed K=%d, waited only %d", K, fifoWait)
	}
	if agingWait > K {
		t.Fatalf("aging should bound the wait to K=%d, waited %d", K, agingWait)
	}
}

// TestAgingPreventsPriorityStarvation: a continuous stream of fresh
// high-class requests (one per epoch, cap 1) starves a low-class victim
// under the pure priority policy for the whole arrival horizon; with aging
// the victim's score outgrows fresh arrivals and it clears within K epochs.
func TestAgingPreventsPriorityStarvation(t *testing.T) {
	const (
		rounds = 12
		K      = 5
	)
	run := func(policyName string) (wait uint64, agedEvents int) {
		pol, err := engine.ParsePolicy(policyName, 1)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewPlatform(core.Options{Design: propDesign})
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(p, engine.Config{Shards: 2, Policy: pol, EpochMatchCap: 1})
		defer e.Stop()
		mustTk(e.SubmitRegister("hot", 1e7))
		mustTk(e.SubmitRegister("victim", 1e7))
		mustTk(e.SubmitShare("seller", catalog.DatasetID("seller/d0"), propRelation(),
			wtp.DatasetMeta{Dataset: "seller/d0", HasProvenance: true}, license.Terms{Kind: license.Open}))
		e.TriggerEpoch()

		var victim string
		for round := 0; round < rounds; round++ {
			if round == 0 {
				want, f := propRequest("victim")
				victim = mustTk(e.SubmitRequestPriority(want, f, engine.PriorityLow))
			}
			want, f := propRequest("hot")
			mustTk(e.SubmitRequestPriority(want, f, engine.PriorityHigh))
			e.TriggerEpoch()
		}
		for i := 0; i < 100; i++ {
			if e.Stats().OpenRequests == 0 {
				break
			}
			e.TriggerEpoch()
		}
		tk, ok := e.Ticket(victim)
		if !ok || tk.Status != engine.TicketDone {
			t.Fatalf("victim never matched under %s: %+v", policyName, tk)
		}
		for _, ev := range e.Events(0) {
			if ev.Kind == engine.EventRequestAged && ev.Ticket == victim {
				agedEvents++
			}
		}
		return tk.MatchedEpoch - tk.Epoch, agedEvents
	}

	prioWait, _ := run("priority")
	agingWait, aged := run("aging")
	if prioWait < rounds-1 {
		t.Fatalf("priority policy should starve the victim for the arrival horizon, waited %d", prioWait)
	}
	if agingWait > K {
		t.Fatalf("aging should clear the victim within K=%d, waited %d", K, agingWait)
	}
	if aged == 0 {
		t.Fatal("no request-aged events recorded for the deferred victim")
	}
}
