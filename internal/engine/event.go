package engine

import (
	"sync"
	"time"
)

// EventKind classifies event-log records.
type EventKind string

// Event kinds, in rough lifecycle order.
const (
	EventEpochStart    EventKind = "epoch-start"
	EventRegistered    EventKind = "participant-registered"
	EventDatasetShared EventKind = "dataset-shared"
	EventRequestFiled  EventKind = "request-filed"
	EventRequestUnmet  EventKind = "request-unmet"
	EventTxSettled     EventKind = "tx-settled"
	EventRejected      EventKind = "submission-rejected"
	EventEpochEnd      EventKind = "epoch-end"
)

// Event is one append-only log record. See the package documentation for the
// schema; fields are JSON-tagged because dmms serves them verbatim.
type Event struct {
	Seq         int                `json:"seq"`
	Epoch       uint64             `json:"epoch"`
	Kind        EventKind          `json:"kind"`
	At          time.Time          `json:"at"`
	Ticket      string             `json:"ticket,omitempty"`
	Participant string             `json:"participant,omitempty"`
	Dataset     string             `json:"dataset,omitempty"`
	RequestID   string             `json:"request_id,omitempty"`
	TxID        string             `json:"tx_id,omitempty"`
	Price       float64            `json:"price,omitempty"`
	ArbiterCut  float64            `json:"arbiter_cut,omitempty"`
	SellerCuts  map[string]float64 `json:"seller_cuts,omitempty"`
	ExPost      bool               `json:"ex_post,omitempty"`
	Err         string             `json:"error,omitempty"`
	Note        string             `json:"note,omitempty"`
}

// EventLog is an append-only, totally ordered event log with cursor-based
// consumption. Producers Append; consumers either poll Since or block in
// WaitAfter. There are no per-subscriber buffers, so a slow consumer can
// never stall the epoch runner or lose events.
type EventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []Event
	closed bool
}

// NewEventLog creates an empty log.
func NewEventLog() *EventLog {
	l := &EventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Append assigns the next sequence number, stores the event and wakes
// blocked consumers. It returns the assigned sequence number.
func (l *EventLog) Append(e Event) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.events) + 1
	if e.At.IsZero() {
		e.At = time.Now()
	}
	l.events = append(l.events, e)
	l.cond.Broadcast()
	return e.Seq
}

// Since returns a copy of all events with Seq > after (non-blocking).
func (l *EventLog) Since(after int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.copyAfter(after)
}

// WaitAfter blocks until at least one event with Seq > after exists or the
// log is closed. The second return is false once the log is closed; callers
// must still process the returned batch before exiting, or events written
// just before Close would be lost.
func (l *EventLog) WaitAfter(after int) ([]Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.events) <= after && !l.closed {
		l.cond.Wait()
	}
	return l.copyAfter(after), !l.closed
}

func (l *EventLog) copyAfter(after int) []Event {
	if after < 0 {
		after = 0
	}
	if after >= len(l.events) {
		return nil
	}
	out := make([]Event, len(l.events)-after)
	copy(out, l.events[after:])
	return out
}

// Len returns the number of events appended so far.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Close wakes all blocked consumers; subsequent WaitAfter calls drain the
// remaining events and report the log closed.
func (l *EventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}
