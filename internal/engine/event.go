package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// EventKind classifies event-log records.
type EventKind string

// Event kinds, in rough lifecycle order.
const (
	EventEpochStart    EventKind = "epoch-start"
	EventRegistered    EventKind = "participant-registered"
	EventDatasetShared EventKind = "dataset-shared"
	EventRequestFiled  EventKind = "request-filed"
	EventRequestUnmet  EventKind = "request-unmet"
	EventTxSettled     EventKind = "tx-settled"
	EventRejected      EventKind = "submission-rejected"
	// EventRequestRejected is the aggregated audit record of admission
	// rejections (quota or epoch cap): one record per participant and
	// reason per epoch window, flushed at epoch end with the shed count.
	// Rejected requests never enter intake and have no tickets, and the
	// shedding path itself writes nothing — a flood of rejections costs
	// one log record per window, not one per request. Queue-depth sheds
	// are not logged at all.
	EventRequestRejected EventKind = "request-rejected"
	// EventRequestAged records the first time the matching policy's
	// per-epoch cap defers an open request past a round, carrying its age
	// in epochs. Later deferrals of the same request are not re-logged (at
	// most one record per request, so a standing backlog cannot amplify
	// the WAL every epoch).
	EventRequestAged EventKind = "request-aged"
	// EventValueReported records the settlement of an ex-post transaction on
	// the buyer's value report: the realized payment (escrow-capped, audit
	// effects applied) and the revenue fan-out. It carries everything replay
	// needs to repeat the transfers micro-unit exactly without re-running
	// the audit; the audit RNG is re-stepped instead, so later live reports
	// keep the uninterrupted run's schedule.
	EventValueReported EventKind = "value-reported"
	EventEpochEnd      EventKind = "epoch-end"

	// Cross-shard (federated) settlement records. A mashup whose candidate
	// datasets span arbiter shards settles via an escrow-style two-phase
	// commit: the federation coordinator drives prepare/commit/abort and each
	// participant shard records its own leg as an ordinary WAL event, so
	// recovery resolves in-doubt transactions from the logs alone. These are
	// deliberately NOT EventTxSettled — the settlement book (subscribers of
	// tx-settled) tracks only intra-shard settlements; federated ones are
	// surfaced by the coordinator.
	//
	// EventXTxPrepared (home shard): the buyer's funds for TxID are held in a
	// ledger escrow named after the transaction.
	// EventXTxCommitted with XTxRole "home": the escrow pays the arbiter, the
	// home-shard seller cuts transfer locally, and the remote cuts are
	// withdrawn from this shard's supply (they re-enter on the sellers'
	// shards, conserving the federation-wide total).
	// EventXTxCommitted with XTxRole "remote": this shard's sellers are paid
	// the recorded cuts out of thin air — the exact micro-units the home
	// shard withdrew.
	// EventXTxAborted (home shard): the escrow refunds the buyer in full.
	EventXTxPrepared  EventKind = "xtx-prepared"
	EventXTxCommitted EventKind = "xtx-committed"
	EventXTxAborted   EventKind = "xtx-aborted"
)

// Payload carries the full submission body of an event, so a write-ahead log
// of events is sufficient to rebuild the platform by replay. Only
// dataset-shared (Relation/Meta/License) and request-filed (Request) events
// carry one; a request whose task is a non-serializable code package has a
// nil payload and is not durable.
type Payload struct {
	// Share.
	Relation *relation.Relation `json:"relation,omitempty"`
	Meta     *wtp.DatasetMeta   `json:"meta,omitempty"`
	License  string             `json:"license,omitempty"`
	TaxRate  float64            `json:"tax_rate,omitempty"`
	// Request.
	Request *core.RequestSpec `json:"request,omitempty"`
}

// Event is one append-only log record. See the package documentation for the
// schema; fields are JSON-tagged because dmms serves them verbatim and the
// WAL (internal/wal) persists them as JSON records.
type Event struct {
	Seq          int                `json:"seq"`
	Epoch        uint64             `json:"epoch"`
	Kind         EventKind          `json:"kind"`
	At           time.Time          `json:"at"`
	Ticket       string             `json:"ticket,omitempty"`
	Participant  string             `json:"participant,omitempty"`
	Dataset      string             `json:"dataset,omitempty"`
	RequestID    string             `json:"request_id,omitempty"`
	TxID         string             `json:"tx_id,omitempty"`
	Price        float64            `json:"price,omitempty"`
	ArbiterCut   float64            `json:"arbiter_cut,omitempty"`
	SellerCuts   map[string]float64 `json:"seller_cuts,omitempty"`
	Satisfaction float64            `json:"satisfaction,omitempty"`
	Datasets     []string           `json:"datasets,omitempty"`
	ExPost       bool               `json:"ex_post,omitempty"`
	// ExPostShares are the per-owner revenue fractions fixed at delivery
	// (tx-settled, ex-post sales only); the later value-reported settlement
	// distributes by them, so replayed pendings split exactly like live
	// ones.
	ExPostShares map[string]float64 `json:"ex_post_shares,omitempty"`
	// Reported is the buyer's reported realized value (value-reported);
	// Price carries what was actually paid after audit and escrow cap.
	Reported float64 `json:"reported,omitempty"`
	// Audited records whether the arbiter verified the report
	// (value-reported) — transparency only; replay applies the logged
	// amounts either way.
	Audited bool `json:"audited,omitempty"`
	// Priority is the request's priority class (request-filed).
	Priority int `json:"priority,omitempty"`
	// Age is how many epochs the request had waited when the policy
	// deferred it (request-aged).
	Age uint64 `json:"age,omitempty"`
	// Count is the number of shed requests an aggregated request-rejected
	// record covers.
	Count uint64 `json:"count,omitempty"`
	// UnmetColumns carries the round's demand-signal increments on
	// epoch-end records, so Restore rebuilds the arbiter's unmet counters
	// without re-running matching.
	UnmetColumns map[string]int `json:"unmet_columns,omitempty"`
	// QuotaRefill is the fraction of the per-epoch quota this epoch end
	// refilled (epoch-end; omitted = full quantum). Ticker engines earn
	// refills by elapsed wall time, and replay applies the recorded
	// fraction instead of re-deriving it from a clock.
	QuotaRefill float64 `json:"quota_refill,omitempty"`
	// SubKind records the submission kind on rejection events, where it
	// cannot be inferred from the event kind; replay rebuilds the failed
	// ticket from it.
	SubKind SubmissionKind `json:"sub_kind,omitempty"`
	// XTxRole distinguishes the two legs of a federated commit record
	// (xtx-committed): "home" on the buyer's shard, "remote" on a seller
	// shard that only receives cuts.
	XTxRole string `json:"xtx_role,omitempty"`
	// RemoteCuts, on a home-leg xtx-committed record, are the seller cuts
	// settled on *other* shards. Replay withdraws their micro-unit sum from
	// the home ledger, mirroring the deposits the remote shards replay.
	RemoteCuts map[string]float64 `json:"remote_cuts,omitempty"`
	Err        string             `json:"error,omitempty"`
	Note       string             `json:"note,omitempty"`
	Payload    *Payload           `json:"payload,omitempty"`
}

// Persister receives every event synchronously at append time, before the
// append becomes visible to subscribers — the write-ahead hook. A persister
// that returns an error wedges: the log stops forwarding events to it (so
// the durable prefix stays a prefix) and records the error, while in-memory
// operation continues. internal/wal provides the standard implementation.
type Persister interface {
	Persist(Event) error
}

// EventLog is an append-only, totally ordered event log with cursor-based
// consumption. Producers Append; consumers either poll Since or block in
// WaitAfter. There are no per-subscriber buffers, so a slow consumer can
// never stall the epoch runner or lose events.
//
// A log may start at a base sequence > 0 after a snapshot restore with a
// pruned WAL: events 1..base are no longer held, and cursors older than base
// resume at base+1.
type EventLog struct {
	// appendMu serializes the whole append path (seq assignment + persist +
	// publish), so persists reach the WAL in exact seq order while the
	// persister's fsync runs *outside* mu — readers (Since/WaitAfter) are
	// never stalled behind a disk sync. Lock order: appendMu before mu.
	appendMu sync.Mutex

	mu     sync.Mutex
	cond   *sync.Cond
	base   int // seq of the last event no longer held (0 = complete log)
	events []Event
	closed bool

	persister Persister
	persisted int   // highest seq durably forwarded to the persister
	perr      error // first persist failure; persister is wedged once set
}

// NewEventLog creates an empty log starting at seq 1.
func NewEventLog() *EventLog { return NewEventLogAt(0) }

// NewEventLogAt creates an empty log whose first appended event gets seq
// base+1. Used by snapshot restores where events up to base are compacted.
func NewEventLogAt(base int) *EventLog {
	l := &EventLog{base: base}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// SetPersister attaches the write-ahead hook. Events already in the log are
// considered persisted (a restore seeds the log from the WAL itself);
// subsequent appends are forwarded synchronously, in order.
func (l *EventLog) SetPersister(p Persister) {
	l.appendMu.Lock()
	defer l.appendMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.persister = p
	l.persisted = l.base + len(l.events)
	l.perr = nil
}

// Persisted returns the highest durably persisted seq and the wedging error,
// if any. With no persister attached it reports 0, nil.
func (l *EventLog) Persisted() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.persisted, l.perr
}

// durable reports whether a write-ahead persister is attached.
func (l *EventLog) durable() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.persister != nil
}

// Append assigns the next sequence number, forwards the event to the
// persister (if any), stores it and wakes blocked consumers. It returns the
// assigned sequence number. appendMu serializes appends, so the WAL order is
// exactly the log order and write-ahead semantics hold (the event becomes
// visible only after the persist returns) — but the persist itself, fsync
// included, runs outside the reader lock, so -fsync always no longer stalls
// Since/WaitAfter consumers for the duration of the sync.
func (l *EventLog) Append(e Event) int {
	l.appendMu.Lock()
	defer l.appendMu.Unlock()

	l.mu.Lock()
	e.Seq = l.base + len(l.events) + 1
	if e.At.IsZero() {
		e.At = time.Now()
	}
	p := l.persister
	if l.perr != nil {
		p = nil // wedged: the durable prefix must stay a prefix
	}
	l.mu.Unlock()

	var perr error
	if p != nil {
		perr = p.Persist(e)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if p != nil {
		if perr != nil {
			l.perr = perr
		} else {
			l.persisted = e.Seq
		}
	}
	l.events = append(l.events, e)
	l.cond.Broadcast()
	return e.Seq
}

// seed loads recovered events into an empty log without invoking the
// persister (they came from the WAL in the first place). Events must be
// contiguous starting at base+1.
func (l *EventLog) seed(events []Event) error {
	l.appendMu.Lock()
	defer l.appendMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) != 0 {
		return fmt.Errorf("engine: seed on non-empty log")
	}
	for i, e := range events {
		if e.Seq != l.base+i+1 {
			return fmt.Errorf("engine: seed event %d has seq %d, want %d", i, e.Seq, l.base+i+1)
		}
	}
	l.events = append(l.events, events...)
	l.cond.Broadcast()
	return nil
}

// Since returns all events with Seq > after (non-blocking). The returned
// slice is a fresh copy on every call — never the live backing array — so a
// subscriber can hold its batch (and overwrite its elements' value fields)
// while appends race past its cursor. The copy is shallow: reference fields
// (SellerCuts, Datasets, Payload) still point into the log's records and
// must be treated as read-only.
func (l *EventLog) Since(after int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.copyAfter(after)
}

// WaitAfter blocks until at least one event with Seq > after exists or the
// log is closed. The second return is false once the log is closed; callers
// must still process the returned batch before exiting, or events written
// just before Close would be lost. Like Since, the returned batch is a
// shallow copy: private to the caller, reference fields read-only.
func (l *EventLog) WaitAfter(after int) ([]Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.base+len(l.events) <= after && !l.closed {
		l.cond.Wait()
	}
	return l.copyAfter(after), !l.closed
}

// copyAfter returns a copy of events with Seq > after. Caller holds l.mu.
func (l *EventLog) copyAfter(after int) []Event {
	if after < l.base {
		after = l.base // events up to base are compacted away
	}
	idx := after - l.base
	if idx >= len(l.events) {
		return nil
	}
	out := make([]Event, len(l.events)-idx)
	copy(out, l.events[idx:])
	return out
}

// Len returns the total number of events appended over the log's lifetime,
// including any compacted below the base.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + len(l.events)
}

// LastSeq is the sequence number of the newest event (== Len, by the no-gaps
// invariant).
func (l *EventLog) LastSeq() int { return l.Len() }

// Close wakes all blocked consumers; subsequent WaitAfter calls drain the
// remaining events and report the log closed.
func (l *EventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}
