package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden locks the exposition format: HELP/TYPE headers,
// sorted families, label escaping, cumulative histogram buckets.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zz_last_total", "sorts last").Add(3)
	r.NewGauge("aa_first", "sorts first").Set(-2.5)
	r.NewCounterVec("http_requests_total", "by route", "route", "code").
		With(`/tickets/{id}`, "200").Add(7)
	r.NewCounterVec("http_requests_total", "by route", "route", "code").
		With("/weird\"quote\\and\nnewline", "500").Inc()
	h := r.NewHistogram("latency_seconds", "request latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)
	r.NewGaugeFunc("sampled_gauge", "func-sampled", func() float64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_first sorts first
# TYPE aa_first gauge
aa_first -2.5
# HELP http_requests_total by route
# TYPE http_requests_total counter
http_requests_total{route="/tickets/{id}",code="200"} 7
http_requests_total{route="/weird\"quote\\and\nnewline",code="500"} 1
# HELP latency_seconds request latency
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 6.05
latency_seconds_count 4
# HELP sampled_gauge func-sampled
# TYPE sampled_gauge gauge
sampled_gauge 42
# HELP zz_last_total sorts last
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRegistryIdempotent checks that re-registering a name returns the same
// instrument rather than resetting it.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.NewCounter("c_total", "c")
	c1.Add(5)
	c2 := r.NewCounter("c_total", "c")
	if c1 != c2 {
		t.Fatal("re-registration returned a different counter")
	}
	if got := c2.Value(); got != 5 {
		t.Fatalf("counter reset on re-registration: got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.NewGauge("c_total", "now a gauge")
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this proves observation is data-race free, and afterwards the
// counts must add up exactly.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "h", DefBuckets)
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) / float64(workers*per) * 2)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("lost observations: count=%d want %d", got, workers*per)
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != workers*per {
		t.Fatalf("bucket counts sum to %d, want %d", cum, workers*per)
	}
}

// TestCounterConcurrent checks the CAS float add never loses increments.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter lost increments: got %v want %d", got, workers*per)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %v, want within (0, 1]", q)
	}
	h2 := newHistogram([]float64{1, 2, 4})
	if q := h2.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	h2.Observe(100) // +Inf bucket
	if q := h2.Quantile(0.99); q != 4 {
		t.Fatalf("+Inf bucket quantile = %v, want largest bound 4", q)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Begin("x", time.Now())
	tr.Stamp("x", StageBuild, time.Now())
	tr.Finish("x", time.Now())
	tr.Drop("x")
	tr.AliasTx("t", "x")
	tr.StampTx("t", StageReport, time.Now())
	if tr.Stages("x") != nil {
		t.Fatal("nil tracer returned stages")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments produced values")
	}
	var r *Registry
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestTracerLifecycle walks a ticket through the pipeline and checks both
// the overall submit→settle histogram and the per-stage deltas.
func TestTracerLifecycle(t *testing.T) {
	r := NewRegistry()
	overall := r.NewHistogram("e2e_seconds", "submit to settle", DefBuckets)
	stages := r.NewHistogramVec("stage_seconds", "per stage", DefBuckets, "stage")
	tr := NewTracer(overall, stages, 8)

	t0 := time.Unix(1000, 0)
	tr.Begin("T1", t0)
	tr.Stamp("T1", StageAdmit, t0.Add(1*time.Millisecond))
	tr.Stamp("T1", StageEnqueue, t0.Add(2*time.Millisecond))
	tr.Stamp("T1", StageBuild, t0.Add(10*time.Millisecond))
	tr.Stamp("T1", StagePrice, t0.Add(12*time.Millisecond))
	tr.Finish("T1", t0.Add(20*time.Millisecond))
	tr.AliasTx("tx-9", "T1")
	tr.StampTx("tx-9", StageReport, t0.Add(50*time.Millisecond))

	if overall.Count() != 1 {
		t.Fatalf("overall count = %d, want 1", overall.Count())
	}
	if got, want := overall.Sum(), 0.020; math.Abs(got-want) > 1e-9 {
		t.Fatalf("overall sum = %v, want %v", got, want)
	}
	st := tr.Stages("T1")
	if len(st) != 7 {
		t.Fatalf("stamped %d stages, want 7: %v", len(st), st)
	}
	// build delta = 10ms - 2ms = 8ms
	if got, want := stages.With(string(StageBuild)).Sum(), 0.008; math.Abs(got-want) > 1e-9 {
		t.Fatalf("build stage sum = %v, want %v", got, want)
	}
	// report delta = 50ms - 20ms = 30ms
	if got, want := stages.With(string(StageReport)).Sum(), 0.030; math.Abs(got-want) > 1e-9 {
		t.Fatalf("report stage sum = %v, want %v", got, want)
	}

	// Finishing twice must not double-observe.
	tr.Finish("T1", t0.Add(90*time.Millisecond))
	if overall.Count() != 1 {
		t.Fatalf("double finish observed twice")
	}

	// Dropped tickets never observe.
	tr.Begin("T2", t0)
	tr.Drop("T2")
	tr.Finish("T2", t0.Add(time.Second))
	if overall.Count() != 1 {
		t.Fatalf("dropped ticket observed")
	}
}

// TestTracerBounded checks FIFO eviction keeps the span map at max.
func TestTracerBounded(t *testing.T) {
	tr := NewTracer(nil, nil, 4)
	t0 := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		tr.Begin("T"+itoa(i), t0)
	}
	tr.mu.Lock()
	n := len(tr.spans)
	tr.mu.Unlock()
	if n > 4 {
		t.Fatalf("tracer retains %d spans, want <= 4", n)
	}
	if tr.Stages("T99") == nil {
		t.Fatal("newest span was evicted")
	}
	if tr.Stages("T0") != nil {
		t.Fatal("oldest span survived eviction")
	}
}
