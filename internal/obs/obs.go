package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 value. Negative increments
// are ignored, so a counter can never go down — the property Prometheus rate
// queries rely on. The zero value is usable, but counters normally come from
// Registry.NewCounter so they are exported.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (ignored when v < 0).
func (c *Counter) Add(v float64) {
	if v < 0 || c == nil {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an arbitrary float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds v to float64 bits stored in an atomic.Uint64.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// DefBuckets are general-purpose latency buckets in seconds (0.5 ms – 10 s),
// sized for request-level latencies like submit→settle or epoch duration.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// FastBuckets are fine-grained buckets in seconds (10 µs – 1 s) for hot-path
// operations like WAL appends and fsyncs or single mashup builds.
var FastBuckets = []float64{0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// Histogram is a fixed-bucket histogram. Observations are lock-free atomic
// increments; exposition renders cumulative Prometheus buckets. Bounds are
// upper-inclusive (`le`), with an implicit +Inf bucket at the end.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf
	sum    atomic.Uint64   // float64 bits
	total  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.total.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts by
// linear interpolation inside the target bucket — the same estimate a
// histogram_quantile() PromQL query would produce. Returns 0 with no
// observations; values landing in the +Inf bucket report the largest finite
// bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one exposable time series (sans labels, which the family holds).
type metric interface {
	// samples appends rendered sample lines for this series. name is the
	// family name, labelStr the pre-rendered label pairs ("" when unlabeled).
	samples(b *strings.Builder, name, labelStr string)
}

// family is one named metric family: a help string, a type, and either a
// single series, a labeled series map, or a sampling function.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string

	mu     sync.Mutex
	single metric
	series map[string]metric // rendered label string -> series
	fn     func() float64    // func-sampled counter/gauge
}

// Registry is a set of metric families with Prometheus text-format
// exposition. All methods are safe for concurrent use; registering an
// existing name returns the existing instrument (func metrics replace their
// sampling function instead, so a restarted component re-binds cleanly).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// lookup returns the family for name, creating it with the given shape on
// first use. Re-registering with a different type panics — that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ {
			panic("obs: metric " + name + " re-registered as " + typ + ", was " + f.typ)
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, series: map[string]metric{}}
	r.fams[name] = f
	return f
}

// NewCounter registers (or returns) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.lookup(name, help, "counter", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Counter{}
	}
	return f.single.(*Counter)
}

// NewGauge registers (or returns) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Gauge{}
	}
	return f.single.(*Gauge)
}

// NewHistogram registers (or returns) an unlabeled histogram with the given
// bucket bounds (nil = DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, "histogram", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = newHistogram(buckets)
	}
	return f.single.(*Histogram)
}

// NewCounterFunc registers a counter whose value is sampled by fn at
// exposition time — for counters another subsystem already maintains.
// Re-registering replaces fn.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, "counter", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fn = fn
}

// NewGaugeFunc registers a gauge sampled by fn at exposition time.
// Re-registering replaces fn.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, "gauge", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fn = fn
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ f *family }

// NewCounterVec registers (or returns) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, "counter", labels)}
}

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ f *family }

// NewGaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, "gauge", labels)}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() metric { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// NewHistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, "histogram", labels), buckets: buckets}
}

// With returns the histogram for the given label values (created on first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() metric { return newHistogram(v.buckets) }).(*Histogram)
}

// child returns the series for the given label values, creating it via mk.
func (f *family) child(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic("obs: metric " + f.name + " wants " + itoa(len(f.labels)) + " label values, got " + itoa(len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := mk()
	f.series[key] = m
	return m
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
