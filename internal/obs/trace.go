package obs

import (
	"sync"
	"time"
)

// Stage names one hop of a request ticket's life. Stages are stamped in
// pipeline order; the tracer turns consecutive stamps into per-stage latency
// observations and the submit→settle pair into the overall histogram.
type Stage string

// The request pipeline stages, in order.
const (
	StageSubmit  Stage = "submit"
	StageAdmit   Stage = "admit"
	StageEnqueue Stage = "enqueue"
	StageBuild   Stage = "build"
	StagePrice   Stage = "price"
	StageSettle  Stage = "settle"
	StageReport  Stage = "report"
)

// stageOrder positions a stage in the pipeline for delta computation.
var stageOrder = map[Stage]int{
	StageSubmit: 0, StageAdmit: 1, StageEnqueue: 2,
	StageBuild: 3, StagePrice: 4, StageSettle: 5, StageReport: 6,
}

// span holds the per-stage timestamps of one in-flight ticket.
type span struct {
	stamps map[Stage]time.Time
	done   bool // Finish observed; kept for StampTx(report) and display
}

// Tracer stamps request tickets with per-stage timestamps and feeds the
// submit→settle histogram plus a per-stage latency histogram vec. It holds
// at most max spans; older finished-or-not spans are evicted FIFO so an
// abandoned ticket can never leak memory. A nil *Tracer is a no-op, so
// instrumented code needs no telemetry-enabled branches.
type Tracer struct {
	overall *Histogram    // submit→settle
	stages  *HistogramVec // per-stage deltas, label "stage"
	max     int

	mu      sync.Mutex
	spans   map[string]*span
	order   []string          // FIFO eviction order
	aliases map[string]string // txID -> ticket ID
}

// NewTracer builds a tracer feeding the given histograms. max bounds the
// number of retained spans (default 4096 when <= 0).
func NewTracer(overall *Histogram, stages *HistogramVec, max int) *Tracer {
	if max <= 0 {
		max = 4096
	}
	return &Tracer{
		overall: overall,
		stages:  stages,
		max:     max,
		spans:   make(map[string]*span),
		aliases: make(map[string]string),
	}
}

// Begin opens a span for ticket id, stamped with the submit stage at t.
func (tr *Tracer) Begin(id string, t time.Time) {
	if tr == nil || id == "" {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.spans[id]; ok {
		return
	}
	tr.evictLocked()
	tr.spans[id] = &span{stamps: map[Stage]time.Time{StageSubmit: t}}
	tr.order = append(tr.order, id)
}

// evictLocked drops the oldest spans until there is room for one more.
func (tr *Tracer) evictLocked() {
	for len(tr.spans) >= tr.max && len(tr.order) > 0 {
		old := tr.order[0]
		tr.order = tr.order[1:]
		delete(tr.spans, old)
	}
}

// Stamp records stage s at time t on ticket id and observes the latency from
// the nearest earlier stamped stage. Stamping an unknown ticket or an
// already-stamped stage is a no-op.
func (tr *Tracer) Stamp(id string, s Stage, t time.Time) {
	if tr == nil || id == "" {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.stampLocked(id, s, t)
}

func (tr *Tracer) stampLocked(id string, s Stage, t time.Time) {
	sp, ok := tr.spans[id]
	if !ok {
		return
	}
	if _, dup := sp.stamps[s]; dup {
		return
	}
	sp.stamps[s] = t
	// Latency of this stage = time since the nearest earlier stamped stage.
	if prev, ok := tr.prevStamp(sp, s); ok {
		tr.stages.With(string(s)).Observe(t.Sub(prev).Seconds())
	}
}

// prevStamp finds the most recent stamped stage strictly before s in
// pipeline order.
func (tr *Tracer) prevStamp(sp *span, s Stage) (time.Time, bool) {
	pos := stageOrder[s]
	for p := pos - 1; p >= 0; p-- {
		for st, o := range stageOrder {
			if o == p {
				if t, ok := sp.stamps[st]; ok {
					return t, true
				}
			}
		}
	}
	return time.Time{}, false
}

// Finish stamps the settle stage at t and observes the full submit→settle
// latency on the overall histogram. The span is retained (bounded by max)
// so a later report can still be stamped and the ticket display can show
// the trace.
func (tr *Tracer) Finish(id string, t time.Time) {
	if tr == nil || id == "" {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	sp, ok := tr.spans[id]
	if !ok || sp.done {
		return
	}
	tr.stampLocked(id, StageSettle, t)
	sp.done = true
	if submit, ok := sp.stamps[StageSubmit]; ok {
		tr.overall.Observe(t.Sub(submit).Seconds())
	}
}

// Drop discards the span for a ticket that failed before settling.
func (tr *Tracer) Drop(id string) {
	if tr == nil || id == "" {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	delete(tr.spans, id)
	// The stale order entry is harmless: eviction skips missing spans.
}

// AliasTx maps a settlement transaction ID to its ticket, so the ex-post
// value report (which only knows the tx) can stamp the report stage.
func (tr *Tracer) AliasTx(tx, id string) {
	if tr == nil || tx == "" || id == "" {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.aliases) >= tr.max {
		tr.aliases = make(map[string]string) // crude reset; aliases are tiny
	}
	tr.aliases[tx] = id
}

// StampTx stamps stage s on the ticket aliased by transaction tx.
func (tr *Tracer) StampTx(tx string, s Stage, t time.Time) {
	if tr == nil || tx == "" {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	id, ok := tr.aliases[tx]
	if !ok {
		return
	}
	tr.stampLocked(id, s, t)
}

// Stages returns a copy of the stamped stages for ticket id (nil when
// unknown) — used by the ticket API to expose the trace.
func (tr *Tracer) Stages(id string) map[Stage]time.Time {
	if tr == nil || id == "" {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	sp, ok := tr.spans[id]
	if !ok {
		return nil
	}
	out := make(map[Stage]time.Time, len(sp.stamps))
	for k, v := range sp.stamps {
		out[k] = v
	}
	return out
}
