package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// formatFloat renders a sample value the way Prometheus text format expects:
// shortest decimal round-trip, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes backslash, double-quote, and newline per the
// Prometheus text exposition rules.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderLabels renders `name="value",...` pairs (without braces) in the
// declared label order. Used both as the series map key and verbatim in
// exposition, so a series' identity and its rendering can never diverge.
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// writeSample writes one `name{labels} value` line.
func writeSample(b *strings.Builder, name, labelStr, suffix string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labelStr != "" {
		b.WriteByte('{')
		b.WriteString(labelStr)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func (c *Counter) samples(b *strings.Builder, name, labelStr string) {
	writeSample(b, name, labelStr, "", c.Value())
}

func (g *Gauge) samples(b *strings.Builder, name, labelStr string) {
	writeSample(b, name, labelStr, "", g.Value())
}

func (h *Histogram) samples(b *strings.Builder, name, labelStr string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := `le="` + formatFloat(bound) + `"`
		if labelStr != "" {
			le = labelStr + "," + le
		}
		writeSample(b, name, le, "_bucket", float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	le := `le="+Inf"`
	if labelStr != "" {
		le = labelStr + "," + le
	}
	writeSample(b, name, le, "_bucket", float64(cum))
	writeSample(b, name, labelStr, "_sum", h.Sum())
	writeSample(b, name, labelStr, "_count", float64(cum))
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// sorted by label string, so output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make(map[string]*family, len(r.fams))
	for n, f := range r.fams {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(strings.ReplaceAll(f.help, "\n", " "))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')

		f.mu.Lock()
		if f.fn != nil {
			v := f.fn()
			f.mu.Unlock()
			writeSample(&b, f.name, "", "", v)
			continue
		}
		if f.single != nil {
			single := f.single
			f.mu.Unlock()
			single.samples(&b, f.name, "")
			continue
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		series := make([]metric, 0, len(keys))
		sort.Strings(keys)
		for _, k := range keys {
			series = append(series, f.series[k])
		}
		f.mu.Unlock()
		for i, k := range keys {
			series[i].samples(&b, f.name, k)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
