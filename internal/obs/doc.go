// Package obs is the market's zero-dependency telemetry core: atomic
// counters, gauges, and fixed-bucket histograms behind a Registry that
// renders Prometheus text exposition format (version 0.0.4), plus a span
// tracer that stamps each request ticket through the pipeline stages
//
//	submit → admit → enqueue → build → price → settle → report
//
// so submit→settle latency is a first-class histogram rather than a
// bench-only number.
//
// # Design rules
//
//   - No third-party imports. Counters and gauges are float64 bits in an
//     atomic.Uint64 (CAS-add); histogram buckets are plain atomic
//     increments. Observation cost is a few atomic ops, cheap enough for
//     the engine's hot path.
//   - Every instrument is nil-safe: a nil *Counter, *Histogram, or *Tracer
//     is a no-op, so instrumented code carries no "telemetry enabled?"
//     branches — construct the Registry or don't.
//   - Metrics are derived state. Nothing in this package touches the
//     engine's event log or WAL, so crash/replay stays byte-identical with
//     telemetry enabled (asserted by the replay matrix's telemetry
//     variant).
//   - Registering an existing name returns the existing instrument, and
//     func-sampled metrics re-bind their closure, so components can be
//     rebuilt (engine restore, WAL reopen) against one long-lived Registry.
//
// Exposition is deterministic: families sort by name, series by rendered
// label string. internal/dmms serves it at GET /metrics.
package obs
