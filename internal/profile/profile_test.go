package profile

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func mkRel() *relation.Relation {
	r := relation.New("t", relation.NewSchema(
		relation.Col("id", relation.KindInt),
		relation.Col("city", relation.KindString),
		relation.Col("temp", relation.KindFloat),
	))
	cities := []string{"chi", "nyc", "chi", "sf", "chi"}
	temps := []float64{10, 20, 12, 18, 0}
	for i := 0; i < 5; i++ {
		tv := relation.Float(temps[i])
		if i == 4 {
			tv = relation.Null()
		}
		r.MustAppend(relation.Int(int64(i)), relation.String_(cities[i]), tv)
	}
	return r
}

func TestProfileBasics(t *testing.T) {
	dp := Profile("d1", mkRel())
	if dp.RowCount != 5 {
		t.Errorf("rows = %d", dp.RowCount)
	}
	id := dp.Column("id")
	if id == nil {
		t.Fatal("missing id profile")
	}
	if id.Distinct != 5 || !id.IsKeyLike() {
		t.Errorf("id: distinct=%d keylike=%v", id.Distinct, id.IsKeyLike())
	}
	city := dp.Column("city")
	if city.Distinct != 3 || city.IsKeyLike() {
		t.Errorf("city: distinct=%d keylike=%v", city.Distinct, city.IsKeyLike())
	}
	temp := dp.Column("temp")
	if temp.NullCount != 1 {
		t.Errorf("temp nulls = %d", temp.NullCount)
	}
	if temp.Min != 10 || temp.Max != 20 {
		t.Errorf("temp range [%v,%v]", temp.Min, temp.Max)
	}
	if math.Abs(temp.Mean-15) > 1e-9 {
		t.Errorf("temp mean = %v", temp.Mean)
	}
	if temp.NullRatio() != 0.2 {
		t.Errorf("null ratio = %v", temp.NullRatio())
	}
	if len(city.TopValues) == 0 || city.TopValues[0] != "chi" {
		t.Errorf("top values = %v", city.TopValues)
	}
	if dp.Column("missing") != nil {
		t.Error("unknown column must be nil")
	}
}

func TestMinHashIdentical(t *testing.T) {
	a, b := NewMinHash(), NewMinHash()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("v%d", i)
		a.Add(k)
		b.Add(k)
	}
	if j := a.Jaccard(b); j != 1 {
		t.Errorf("identical sets jaccard = %v, want 1", j)
	}
}

func TestMinHashDisjoint(t *testing.T) {
	a, b := NewMinHash(), NewMinHash()
	for i := 0; i < 100; i++ {
		a.Add(fmt.Sprintf("a%d", i))
		b.Add(fmt.Sprintf("b%d", i))
	}
	if j := a.Jaccard(b); j > 0.15 {
		t.Errorf("disjoint sets jaccard = %v, want ~0", j)
	}
}

func TestMinHashOverlapEstimate(t *testing.T) {
	a, b := NewMinHash(), NewMinHash()
	// 50% overlap: a = 0..199, b = 100..299 → jaccard = 100/300 ≈ 0.33
	for i := 0; i < 200; i++ {
		a.Add(fmt.Sprintf("v%d", i))
	}
	for i := 100; i < 300; i++ {
		b.Add(fmt.Sprintf("v%d", i))
	}
	j := a.Jaccard(b)
	if j < 0.15 || j > 0.55 {
		t.Errorf("estimated jaccard = %v, want ~0.33", j)
	}
}

func TestEmptyMinHash(t *testing.T) {
	a, b := NewMinHash(), NewMinHash()
	if a.Jaccard(b) != 0 {
		t.Error("two empty sketches estimate 0")
	}
	b.Add("x")
	if a.Jaccard(b) != 0 {
		t.Error("empty vs non-empty estimates 0")
	}
}

func TestContainmentEstimate(t *testing.T) {
	// a ⊂ b: containment of a in b should be high.
	sub := relation.New("sub", relation.NewSchema(relation.Col("k", relation.KindInt)))
	sup := relation.New("sup", relation.NewSchema(relation.Col("k", relation.KindInt)))
	for i := 0; i < 50; i++ {
		sub.MustAppend(relation.Int(int64(i)))
	}
	for i := 0; i < 200; i++ {
		sup.MustAppend(relation.Int(int64(i)))
	}
	pa := Profile("a", sub).Column("k")
	pb := Profile("b", sup).Column("k")
	if c := ContainmentEstimate(pa, pb); c < 0.5 {
		t.Errorf("containment of subset in superset = %v, want high", c)
	}
	if c := ContainmentEstimate(pb, pa); c > 0.6 {
		t.Errorf("containment of superset in subset = %v, want ~0.25", c)
	}
}

// Property: Jaccard is symmetric and within [0,1].
func TestJaccardProperties(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := NewMinHash(), NewMinHash()
		for _, x := range xs {
			a.Add(fmt.Sprint(x))
		}
		for _, y := range ys {
			b.Add(fmt.Sprint(y))
		}
		j1, j2 := a.Jaccard(b), b.Jaccard(a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUniquenessEmpty(t *testing.T) {
	var p ColumnProfile
	if p.Uniqueness() != 0 || p.NullRatio() != 0 {
		t.Error("empty profile stats must be 0")
	}
	if p.IsKeyLike() {
		t.Error("empty column is not key-like")
	}
}
