// Package profile implements the data-item profiling half of the metadata
// engine (paper §5.1). Each dataset is divided into data items — columns,
// rows, partial rows — and the Processor extracts signatures per item: value
// distributions, numeric statistics, MinHash sketches of content. The index
// builder (internal/index) consumes these profiles to materialize join paths
// and candidate mapping functions without re-reading raw data.
package profile

import (
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/relation"
)

// MinHashSize is the number of hash slots in a column sketch. 64 gives a
// standard error of about 1/sqrt(64) ≈ 12.5% on Jaccard estimates, enough to
// rank join candidates.
const MinHashSize = 64

// MinHash is a bottom-k style sketch over a column's distinct values.
type MinHash [MinHashSize]uint64

// emptyMark fills unused slots so empty columns estimate 0 similarity.
const emptyMark = math.MaxUint64

// NewMinHash returns a sketch with all slots empty.
func NewMinHash() MinHash {
	var m MinHash
	for i := range m {
		m[i] = emptyMark
	}
	return m
}

// Add folds a value key into the sketch.
func (m *MinHash) Add(key string) {
	h := fnv.New64a()
	h.Write([]byte(key))
	base := h.Sum64()
	for i := 0; i < MinHashSize; i++ {
		// Cheap family of hash functions: xorshift-mix of base with slot salt.
		x := base ^ (uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		if x < m[i] {
			m[i] = x
		}
	}
}

// Jaccard estimates the Jaccard similarity of the two underlying sets.
func (m MinHash) Jaccard(o MinHash) float64 {
	match := 0
	nonEmpty := 0
	for i := 0; i < MinHashSize; i++ {
		if m[i] == emptyMark && o[i] == emptyMark {
			continue
		}
		nonEmpty++
		if m[i] == o[i] {
			match++
		}
	}
	if nonEmpty == 0 {
		return 0
	}
	return float64(match) / float64(nonEmpty)
}

// ColumnProfile is the signature of one column data item.
type ColumnProfile struct {
	Dataset   string
	Column    string
	Kind      relation.Kind
	RowCount  int
	NullCount int
	Distinct  int
	// Numeric stats (valid when Kind is int/float and NumCount > 0).
	NumCount int
	Min      float64
	Max      float64
	Mean     float64
	Std      float64
	// Content sketch over distinct value keys.
	Sketch MinHash
	// TopValues holds up to 8 most frequent values (for display/debug).
	TopValues []string
}

// NullRatio is the fraction of NULL cells.
func (p *ColumnProfile) NullRatio() float64 {
	if p.RowCount == 0 {
		return 0
	}
	return float64(p.NullCount) / float64(p.RowCount)
}

// Uniqueness is distinct/non-null count — near 1.0 suggests a key column.
func (p *ColumnProfile) Uniqueness() float64 {
	nn := p.RowCount - p.NullCount
	if nn == 0 {
		return 0
	}
	return float64(p.Distinct) / float64(nn)
}

// IsKeyLike reports whether the column plausibly serves as a join key:
// high uniqueness and low null ratio.
func (p *ColumnProfile) IsKeyLike() bool {
	return p.Uniqueness() >= 0.95 && p.NullRatio() <= 0.05 && p.RowCount > 0
}

// DatasetProfile aggregates the column profiles of one dataset.
type DatasetProfile struct {
	Dataset  string
	RowCount int
	Columns  []ColumnProfile
}

// Column returns the profile of the named column, or nil.
func (d *DatasetProfile) Column(name string) *ColumnProfile {
	for i := range d.Columns {
		if d.Columns[i].Column == name {
			return &d.Columns[i]
		}
	}
	return nil
}

// Profile computes the full dataset profile in one pass per column.
func Profile(datasetID string, r *relation.Relation) *DatasetProfile {
	dp := &DatasetProfile{Dataset: datasetID, RowCount: r.NumRows()}
	for ci, col := range r.Schema {
		cp := ColumnProfile{
			Dataset:  datasetID,
			Column:   col.Name,
			Kind:     col.Kind,
			RowCount: r.NumRows(),
			Sketch:   NewMinHash(),
		}
		freq := map[string]int{}
		var sum, sumSq float64
		first := true
		for _, row := range r.Rows {
			v := row[ci]
			if v.IsNull() {
				cp.NullCount++
				continue
			}
			k := v.Key()
			if freq[k] == 0 {
				cp.Sketch.Add(k)
			}
			freq[k]++
			if v.IsNumeric() {
				f := v.AsFloat()
				cp.NumCount++
				sum += f
				sumSq += f * f
				if first {
					cp.Min, cp.Max = f, f
					first = false
				} else {
					if f < cp.Min {
						cp.Min = f
					}
					if f > cp.Max {
						cp.Max = f
					}
				}
			}
		}
		cp.Distinct = len(freq)
		if cp.NumCount > 0 {
			cp.Mean = sum / float64(cp.NumCount)
			variance := sumSq/float64(cp.NumCount) - cp.Mean*cp.Mean
			if variance < 0 {
				variance = 0
			}
			cp.Std = math.Sqrt(variance)
		}
		cp.TopValues = topKeys(freq, 8, r, ci)
		dp.Columns = append(dp.Columns, cp)
	}
	return dp
}

func topKeys(freq map[string]int, k int, r *relation.Relation, ci int) []string {
	// Re-derive display strings: map key -> first display form seen.
	disp := map[string]string{}
	for _, row := range r.Rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		key := v.Key()
		if _, ok := disp[key]; !ok {
			disp[key] = v.String()
		}
	}
	type kv struct {
		key string
		n   int
	}
	all := make([]kv, 0, len(freq))
	for key, n := range freq {
		all = append(all, kv{key, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].key < all[j].key
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = disp[e.key]
	}
	return out
}

// ContainmentEstimate estimates |A∩B|/|A| (how much of column a's content is
// contained in b) from the sketches and distinct counts. Join-path discovery
// ranks inclusion-dependency candidates with this.
func ContainmentEstimate(a, b *ColumnProfile) float64 {
	if a.Distinct == 0 {
		return 0
	}
	j := a.Sketch.Jaccard(b.Sketch)
	if j == 0 {
		return 0
	}
	// |A∩B| = J·|A∪B| = J·(|A|+|B|)/(1+J)
	inter := j * float64(a.Distinct+b.Distinct) / (1 + j)
	c := inter / float64(a.Distinct)
	if c > 1 {
		c = 1
	}
	return c
}
