package profile

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

func mkBenchRel(rows int) *relation.Relation {
	r := relation.New("bench", relation.NewSchema(
		relation.Col("id", relation.KindInt),
		relation.Col("name", relation.KindString),
		relation.Col("score", relation.KindFloat),
	))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Int(int64(i)),
			relation.String_(fmt.Sprintf("n%d", i%500)),
			relation.Float(float64(i%97)))
	}
	return r
}

func BenchmarkProfile(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		r := mkBenchRel(n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Profile("bench", r)
			}
		})
	}
}

func BenchmarkMinHashAdd(b *testing.B) {
	m := NewMinHash()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Add("value-key")
	}
}

func BenchmarkMinHashJaccard(b *testing.B) {
	x, y := NewMinHash(), NewMinHash()
	for i := 0; i < 200; i++ {
		x.Add(fmt.Sprint(i))
		y.Add(fmt.Sprint(i + 100))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Jaccard(y)
	}
}
