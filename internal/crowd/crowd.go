// Package crowd implements humans-in-the-loop for the Mashup Builder (paper
// §5.4): "directly incorporate humans-in-the-loop as part of the mashup
// builder's normal operation ... Because all this takes place in the context
// of a market, it becomes possible to compensate humans according to the
// value they are creating." When the DoD engine cannot assemble a mashup
// automatically (an ambiguous mapping, a missing semantic annotation), the
// arbiter posts a task with a bounty; workers claim tasks, submit answers
// (mapping tables), and are paid from the market ledger once an answer is
// accepted — with majority agreement among redundant answers standing in for
// quality control, as in CrowdDB-style crowdsourced query answering.
package crowd

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ledger"
	"repro/internal/relation"
)

// TaskKind is what the human is asked to do.
type TaskKind string

// Task kinds the mashup builder posts.
const (
	// KindMapping asks for a mapping table between two attributes.
	KindMapping TaskKind = "mapping"
	// KindLabel asks whether two columns refer to the same real-world
	// attribute (schema matching judgement).
	KindLabel TaskKind = "label"
)

// Task is one unit of human work with a bounty.
type Task struct {
	ID       string
	Kind     TaskKind
	Dataset  string
	Column   string
	Target   string
	Bounty   float64
	Quorum   int // answers needed before adjudication
	Open     bool
	Accepted *Answer
}

// Answer is a worker's submission.
type Answer struct {
	Worker string
	// Table is the mapping table for KindMapping.
	Table *relation.Relation
	// Match is the judgement for KindLabel.
	Match bool
}

// Board is the task marketplace.
type Board struct {
	mu      sync.Mutex
	ledger  *ledger.Ledger
	funder  string // account bounties are paid from (the arbiter)
	tasks   map[string]*Task
	answers map[string][]Answer
	nextID  int
}

// NewBoard creates a board paying bounties from the funder account.
func NewBoard(l *ledger.Ledger, funder string) *Board {
	return &Board{ledger: l, funder: funder, tasks: map[string]*Task{}, answers: map[string][]Answer{}}
}

// Post creates a task. Bounty is escrowed immediately so workers can trust
// payment.
func (b *Board) Post(kind TaskKind, dataset, column, target string, bounty float64, quorum int) (*Task, error) {
	if bounty <= 0 {
		return nil, fmt.Errorf("crowd: bounty must be positive")
	}
	if quorum < 1 {
		quorum = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	t := &Task{
		ID:   fmt.Sprintf("task-%04d", b.nextID),
		Kind: kind, Dataset: dataset, Column: column, Target: target,
		Bounty: bounty, Quorum: quorum, Open: true,
	}
	if err := b.ledger.Hold(t.ID, b.funder, ledger.FromFloat(bounty), "crowd bounty"); err != nil {
		return nil, err
	}
	b.tasks[t.ID] = t
	return t, nil
}

// OpenTasks lists unanswered tasks, sorted by descending bounty — workers
// chase value.
func (b *Board) OpenTasks() []*Task {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []*Task
	for _, t := range b.tasks {
		if t.Open {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bounty != out[j].Bounty {
			return out[i].Bounty > out[j].Bounty
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Submit records a worker's answer. When the quorum is reached the task is
// adjudicated: for KindLabel the majority judgement wins and majority voters
// split the bounty; for KindMapping the first answer consistent with the
// majority's row count is accepted and paid in full (ties favour the
// earliest submission).
func (b *Board) Submit(taskID string, ans Answer) (adjudicated bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.tasks[taskID]
	if !ok {
		return false, fmt.Errorf("crowd: no task %q", taskID)
	}
	if !t.Open {
		return false, fmt.Errorf("crowd: task %q closed", taskID)
	}
	if t.Kind == KindMapping && ans.Table == nil {
		return false, fmt.Errorf("crowd: mapping task needs a table")
	}
	for _, prev := range b.answers[taskID] {
		if prev.Worker == ans.Worker {
			return false, fmt.Errorf("crowd: %s already answered %s", ans.Worker, taskID)
		}
	}
	b.answers[taskID] = append(b.answers[taskID], ans)
	if len(b.answers[taskID]) < t.Quorum {
		return false, nil
	}
	return true, b.adjudicate(t)
}

func (b *Board) adjudicate(t *Task) error {
	answers := b.answers[t.ID]
	t.Open = false
	switch t.Kind {
	case KindLabel:
		yes := 0
		for _, a := range answers {
			if a.Match {
				yes++
			}
		}
		majority := yes*2 >= len(answers)
		var winners []string
		for _, a := range answers {
			if a.Match == majority {
				winners = append(winners, a.Worker)
			}
		}
		t.Accepted = &Answer{Match: majority}
		return b.payout(t.ID, winners)
	case KindMapping:
		// Majority row-count as a cheap consistency signal.
		counts := map[int]int{}
		for _, a := range answers {
			counts[a.Table.NumRows()]++
		}
		bestN, bestC := -1, -1
		for n, c := range counts {
			if c > bestC || (c == bestC && n > bestN) {
				bestN, bestC = n, c
			}
		}
		for i := range answers {
			if answers[i].Table.NumRows() == bestN {
				t.Accepted = &answers[i]
				return b.payout(t.ID, []string{answers[i].Worker})
			}
		}
	}
	return fmt.Errorf("crowd: task %s could not be adjudicated", t.ID)
}

// payout splits the escrowed bounty among winners.
func (b *Board) payout(taskID string, winners []string) error {
	if len(winners) == 0 {
		return b.ledger.Release(taskID, b.funder, b.ledger.Escrowed(taskID), "no winners, refund")
	}
	total := b.ledger.Escrowed(taskID)
	// Release to funder then fan out equal shares (exact escrow semantics).
	if err := b.ledger.Release(taskID, b.funder, total, "adjudicated "+taskID); err != nil {
		return err
	}
	share := ledger.Currency(int64(total) / int64(len(winners)))
	for _, w := range winners {
		if err := b.ledger.Transfer(b.funder, w, share, "bounty "+taskID); err != nil {
			return err
		}
	}
	return nil
}

// Accepted returns the accepted answer for a task, if adjudicated.
func (b *Board) Accepted(taskID string) (*Answer, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.tasks[taskID]
	if !ok {
		return nil, fmt.Errorf("crowd: no task %q", taskID)
	}
	if t.Accepted == nil {
		return nil, fmt.Errorf("crowd: task %q not adjudicated", taskID)
	}
	return t.Accepted, nil
}
