package crowd

import (
	"testing"

	"repro/internal/ledger"
	"repro/internal/relation"
)

func mkBoard(t *testing.T) (*Board, *ledger.Ledger) {
	t.Helper()
	l := ledger.New()
	for _, a := range []string{"arbiter", "w1", "w2", "w3"} {
		if err := l.Open(a, ledger.FromFloat(100)); err != nil {
			t.Fatal(err)
		}
	}
	return NewBoard(l, "arbiter"), l
}

func mapTable(n int) *relation.Relation {
	r := relation.New("m", relation.NewSchema(
		relation.Col("from", relation.KindString), relation.Col("to", relation.KindString)))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.String_(string(rune('a'+i))), relation.String_(string(rune('A'+i))))
	}
	return r
}

func TestPostEscrowsBounty(t *testing.T) {
	b, l := mkBoard(t)
	task, err := b.Post(KindMapping, "s2", "f_d", "d", 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Balance("arbiter").Float() != 70 {
		t.Errorf("funder balance = %v", l.Balance("arbiter"))
	}
	if l.Escrowed(task.ID).Float() != 30 {
		t.Errorf("escrow = %v", l.Escrowed(task.ID))
	}
	if _, err := b.Post(KindMapping, "x", "a", "b", -1, 1); err == nil {
		t.Error("negative bounty must fail")
	}
	if _, err := b.Post(KindMapping, "x", "a", "b", 10000, 1); err == nil {
		t.Error("bounty beyond funder balance must fail")
	}
}

func TestMappingTaskAdjudication(t *testing.T) {
	b, l := mkBoard(t)
	task, _ := b.Post(KindMapping, "s2", "f_d", "d", 30, 3)
	done, err := b.Submit(task.ID, Answer{Worker: "w1", Table: mapTable(5)})
	if err != nil || done {
		t.Fatalf("first answer: done=%v err=%v", done, err)
	}
	if _, err := b.Submit(task.ID, Answer{Worker: "w1", Table: mapTable(5)}); err == nil {
		t.Error("double answer by same worker must fail")
	}
	if _, err := b.Submit(task.ID, Answer{Worker: "w2", Table: mapTable(5)}); err != nil {
		t.Fatal(err)
	}
	done, err = b.Submit(task.ID, Answer{Worker: "w3", Table: mapTable(2)})
	if err != nil || !done {
		t.Fatalf("quorum answer: done=%v err=%v", done, err)
	}
	// Majority row count = 5; w1's (earliest consistent) answer accepted and
	// paid in full.
	acc, err := b.Accepted(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Worker != "w1" || acc.Table.NumRows() != 5 {
		t.Errorf("accepted = %+v", acc)
	}
	if l.Balance("w1").Float() != 130 {
		t.Errorf("w1 balance = %v", l.Balance("w1"))
	}
	if l.Balance("w3").Float() != 100 {
		t.Errorf("inconsistent worker must not be paid: %v", l.Balance("w3"))
	}
	// Closed task rejects more answers.
	if _, err := b.Submit(task.ID, Answer{Worker: "w2", Table: mapTable(5)}); err == nil {
		t.Error("closed task must reject answers")
	}
}

func TestLabelTaskMajoritySplits(t *testing.T) {
	b, l := mkBoard(t)
	task, _ := b.Post(KindLabel, "a", "col1", "col2", 30, 3)
	_, _ = b.Submit(task.ID, Answer{Worker: "w1", Match: true})
	_, _ = b.Submit(task.ID, Answer{Worker: "w2", Match: true})
	done, err := b.Submit(task.ID, Answer{Worker: "w3", Match: false})
	if err != nil || !done {
		t.Fatal(err)
	}
	acc, _ := b.Accepted(task.ID)
	if !acc.Match {
		t.Error("majority said match")
	}
	if l.Balance("w1").Float() != 115 || l.Balance("w2").Float() != 115 {
		t.Errorf("majority voters split bounty: %v %v", l.Balance("w1"), l.Balance("w2"))
	}
	if l.Balance("w3").Float() != 100 {
		t.Errorf("minority unpaid: %v", l.Balance("w3"))
	}
}

func TestOpenTasksOrdering(t *testing.T) {
	b, _ := mkBoard(t)
	_, _ = b.Post(KindLabel, "a", "x", "y", 5, 1)
	_, _ = b.Post(KindLabel, "a", "x", "z", 20, 1)
	open := b.OpenTasks()
	if len(open) != 2 || open[0].Bounty != 20 {
		t.Errorf("tasks must sort by bounty: %+v", open)
	}
}

func TestValidationErrors(t *testing.T) {
	b, _ := mkBoard(t)
	if _, err := b.Submit("nope", Answer{Worker: "w1"}); err == nil {
		t.Error("unknown task must fail")
	}
	task, _ := b.Post(KindMapping, "d", "a", "b", 10, 1)
	if _, err := b.Submit(task.ID, Answer{Worker: "w1"}); err == nil {
		t.Error("mapping answer without table must fail")
	}
	if _, err := b.Accepted(task.ID); err == nil {
		t.Error("unadjudicated accepted must fail")
	}
}
