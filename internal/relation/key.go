package relation

// rowKeySep separates cell encodings inside a composite row key. Cell
// encodings start with a kind tag byte (0x00–0x05) and never contain 0x1f,
// so the separator is unambiguous.
const rowKeySep = 0x1f

// AppendRowKey appends a canonical composite key for row to dst and returns
// the extended slice. When idx is nil every cell participates, in schema
// order; otherwise only the cells at the given indexes do, in the given
// order. The encoding is each cell's Value.Key followed by a 0x1f separator —
// identical for equal rows regardless of how the key was built, so Distinct,
// the hash joins, group-by, and the DoD sub-join memo can share one encoder.
func AppendRowKey(dst []byte, row []Value, idx []int) []byte {
	if idx == nil {
		for _, v := range row {
			dst = v.AppendKey(dst)
			dst = append(dst, rowKeySep)
		}
		return dst
	}
	for _, i := range idx {
		dst = row[i].AppendKey(dst)
		dst = append(dst, rowKeySep)
	}
	return dst
}

// RowKey returns the canonical composite key over all cells of row.
func RowKey(row []Value) string {
	return string(AppendRowKey(nil, row, nil))
}
