package relation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// planFixture builds two joinable relations with a collision-prone right
// side: right carries "x" and "x_r", so the joined schema suffixes them and
// naive pruning/pushdown rewrites would change names or values.
func planFixture() (l, r *Relation) {
	l = New("l", NewSchema(Col("k", KindInt), Col("x", KindInt), Col("lv", KindFloat)))
	r = New("r", NewSchema(Col("k", KindInt), Col("x", KindFloat), Col("x_r", KindString), Col("rv", KindBool)))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		l.MustAppend(Int(int64(rng.Intn(8))), Int(int64(rng.Intn(4))), Float(rng.Float64()))
		r.MustAppend(Int(int64(rng.Intn(8))), Float(rng.Float64()), String_(fmt.Sprintf("s%d", rng.Intn(3))), Bool(rng.Intn(2) == 0))
	}
	return l, r
}

// TestPlanPushdownExplain checks Optimize actually rewrites the tree: a
// filter over left-side columns sinks below the join, and join inputs are
// pruned to needed columns.
func TestPlanPushdownExplain(t *testing.T) {
	l, r := planFixture()
	p := ScanPlan(l).
		Join(ScanPlan(r), JoinPair{"k", "k"}).
		Where(func(row []Value, s Schema) bool {
			i := s.IndexOf("lv")
			return !row[i].IsNull() && row[i].AsFloat() > 0.25
		}, "lv").
		Project("k", "lv", "rv")

	opt := p.Optimize().Explain()
	if !strings.Contains(opt, "join") || strings.Index(opt, "filter") < strings.Index(opt, "join") {
		// filter[lv] must appear inside the join's left input, i.e. after
		// "join" in the one-line rendering.
		t.Fatalf("filter not pushed below join: %s", opt)
	}
	if !strings.Contains(opt, "project[k,lv](filter[lv](scan(l)))") {
		t.Fatalf("left input not pruned to {k,lv} with the filter sunk below: %s", opt)
	}
	if !strings.Contains(opt, "project[k,rv](scan(r))") {
		t.Fatalf("right input not pruned to {k,rv}: %s", opt)
	}
}

// TestPlanOptimizePreservesResults is the planner's safety property: across
// filters (left-, right-, and join-output-column reads), projections, limits,
// and the collision-suffixed schema, the optimized plan must produce exactly
// the unoptimized plan's rows, order, and schema.
func TestPlanOptimizePreservesResults(t *testing.T) {
	l, r := planFixture()
	plans := map[string]*Plan{
		"project-after-join": ScanPlan(l).
			Join(ScanPlan(r), JoinPair{"k", "k"}).
			Project("k", "lv", "rv"),
		"filter-left-cols": ScanPlan(l).
			Join(ScanPlan(r), JoinPair{"k", "k"}).
			Where(func(row []Value, s Schema) bool {
				i := s.IndexOf("lv")
				return !row[i].IsNull() && row[i].AsFloat() > 0.5
			}, "lv").
			Project("k", "rv"),
		"filter-suffixed-col-pinned": ScanPlan(l).
			Join(ScanPlan(r), JoinPair{"k", "k"}).
			Where(func(row []Value, s Schema) bool {
				// Reads x_r, which in the joined schema is right's "x"
				// suffixed once more — pushing it to the right input would
				// read a different column. Optimize must keep it above.
				i := s.IndexOf("x_r")
				return !row[i].IsNull()
			}, "x_r").
			Project("k", "x_r"),
		"collision-prune": ScanPlan(l).
			Join(ScanPlan(r), JoinPair{"k", "k"}).
			Project("k", "x", "x_r"),
		"opaque-filter-pinned": ScanPlan(l).
			Join(ScanPlan(r), JoinPair{"k", "k"}).
			Where(func(row []Value, s Schema) bool { return len(row) > 0 }).
			Project("k"),
		"limit-chain": ScanPlan(l).
			Where(func(row []Value, s Schema) bool {
				i := s.IndexOf("x")
				return !row[i].IsNull() && row[i].AsFloat() >= 1
			}, "x").
			Join(ScanPlan(r), JoinPair{"k", "k"}, JoinPair{"x", "x"}).
			Limit(9),
	}
	for name, p := range plans {
		t.Run(name, func(t *testing.T) {
			rawIt, err := p.Iter()
			if err != nil {
				t.Fatal(err)
			}
			raw, err := Materialize(rawIt)
			if err != nil {
				t.Fatal(err)
			}
			optIt, err := p.Optimize().Iter()
			if err != nil {
				t.Fatal(err)
			}
			opt, err := Materialize(optIt)
			if err != nil {
				t.Fatal(err)
			}
			raw.Name, opt.Name = "p", "p"
			mustSameRel(t, "optimized vs raw ("+p.Optimize().Explain()+")", opt, raw)
		})
	}
}

// TestPlanRunMatchesEagerChain pins Run's result (rows AND name) to the
// legacy eager join chain it replaced at call sites like workload and wtp.
func TestPlanRunMatchesEagerChain(t *testing.T) {
	l, r := planFixture()
	got, err := ScanPlan(l).Join(ScanPlan(r), JoinPair{"k", "k"}).Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyJoin(l, r, true, JoinPair{"k", "k"})
	if err != nil {
		t.Fatal(err)
	}
	mustSameRel(t, "plan run", got, want)
	if got.Name != "l⋈r" {
		t.Fatalf("plan result name = %q", got.Name)
	}
}

// TestPlanRandomizedEquivalence drives random plan shapes over random
// relations and checks optimized == unoptimized every time.
func TestPlanRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		l := randRel(rng, "l", "k")
		r := randRel(rng, "r", "k")
		p := ScanPlan(l).Join(ScanPlan(r), JoinPair{"k", "k"})
		// Random filter on the key (always present on both sides).
		if rng.Intn(2) == 0 {
			p = p.Where(func(row []Value, s Schema) bool {
				i := s.IndexOf("k")
				return !row[i].IsNull() && row[i].AsFloat() >= 2
			}, "k")
		}
		// Random projection over a subset of the join output schema.
		js, err := p.root.schema()
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, len(js))
		for i, c := range js {
			names[i] = c.Name
		}
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		p = p.Project(names[:1+rng.Intn(len(names))]...)
		if rng.Intn(2) == 0 {
			p = p.Limit(rng.Intn(20))
		}

		rawIt, err := p.Iter()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := Materialize(rawIt)
		if err != nil {
			t.Fatal(err)
		}
		optIt, err := p.Optimize().Iter()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Materialize(optIt)
		if err != nil {
			t.Fatal(err)
		}
		raw.Name, opt.Name = "p", "p"
		mustSameRel(t, fmt.Sprintf("seed %d: %s", seed, p.Optimize().Explain()), opt, raw)
	}
}
