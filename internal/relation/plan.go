package relation

import (
	"fmt"
	"strings"
)

// Plan is a small logical query plan over relations. Consumers build one
// with ScanPlan/Where/Project/Join/Limit, then Run it: Optimize pushes
// filters and projections below joins (so joins build and probe fewer,
// narrower rows) and the optimized tree executes as a streaming Iter
// pipeline. Optimization never changes the result: output rows, order, and
// column naming are identical to the unoptimized plan.
//
// Where takes the names of the columns its predicate reads; the predicate
// must resolve those columns through the schema it is handed (as Predicate's
// contract already requires) and read nothing else. Passing no names marks
// the predicate opaque, which pins it in place.
type Plan struct {
	root *planNode
}

type pKind uint8

const (
	pScan pKind = iota
	pFilter
	pProject
	pJoin
	pLimit
)

type planNode struct {
	kind        pKind
	rel         *Relation  // pScan
	pred        Predicate  // pFilter
	cols        []string   // pFilter: columns pred reads ("" = opaque)
	names       []string   // pProject
	on          []JoinPair // pJoin
	n           int        // pLimit
	left, right *planNode
}

// ScanPlan starts a plan from a base relation.
func ScanPlan(r *Relation) *Plan {
	return &Plan{root: &planNode{kind: pScan, rel: r}}
}

// Where filters rows by pred. cols names the columns pred reads; naming them
// lets Optimize push the filter below projections and into join inputs.
func (p *Plan) Where(pred Predicate, cols ...string) *Plan {
	return &Plan{root: &planNode{kind: pFilter, pred: pred, cols: cols, left: p.root}}
}

// Project keeps the named columns, in order.
func (p *Plan) Project(names ...string) *Plan {
	return &Plan{root: &planNode{kind: pProject, names: names, left: p.root}}
}

// Join inner-equi-joins p with right on the given column pairs, with the
// same naming rules as HashJoin.
func (p *Plan) Join(right *Plan, on ...JoinPair) *Plan {
	return &Plan{root: &planNode{kind: pJoin, on: on, left: p.root, right: right.root}}
}

// Limit keeps the first n rows.
func (p *Plan) Limit(n int) *Plan {
	return &Plan{root: &planNode{kind: pLimit, n: n, left: p.root}}
}

// displayName mirrors the eager API's result naming: joins concatenate their
// inputs with "⋈"; every other operator passes its input's name through.
func (n *planNode) displayName() string {
	switch n.kind {
	case pScan:
		return n.rel.Name
	case pJoin:
		return n.left.displayName() + "⋈" + n.right.displayName()
	default:
		return n.left.displayName()
	}
}

func (n *planNode) schema() (Schema, error) {
	switch n.kind {
	case pScan:
		return n.rel.Schema, nil
	case pFilter, pLimit:
		return n.left.schema()
	case pProject:
		s, err := n.left.schema()
		if err != nil {
			return nil, err
		}
		return s.Project(n.names...)
	case pJoin:
		ls, err := n.left.schema()
		if err != nil {
			return nil, err
		}
		rs, err := n.right.schema()
		if err != nil {
			return nil, err
		}
		layout, err := NewJoinLayout(n.left.displayName(), ls, n.right.displayName(), rs, n.on...)
		if err != nil {
			return nil, err
		}
		return layout.Schema, nil
	}
	return nil, fmt.Errorf("relation: plan: unknown node kind %d", n.kind)
}

func (n *planNode) clone() *planNode {
	c := *n
	if n.left != nil {
		c.left = n.left.clone()
	}
	if n.right != nil {
		c.right = n.right.clone()
	}
	return &c
}

// Optimize returns an equivalent plan with filters pushed below projections
// and into join inputs, and join inputs pruned to the columns the rest of
// the plan needs. Both rewrites are simulation-checked: a rewrite that could
// change output naming (the "_r" collision suffixes depend on which columns
// survive) is skipped, so the optimized plan is always result-identical.
func (p *Plan) Optimize() *Plan {
	root := p.root.clone()
	for pass := 0; pass < 4; pass++ {
		changed := false
		root = pushFilters(root, &changed)
		root = pruneJoinInputs(root, &changed)
		if !changed {
			break
		}
	}
	return &Plan{root: root}
}

func colsIn(cols []string, s Schema) bool {
	for _, c := range cols {
		if !s.Has(c) {
			return false
		}
	}
	return true
}

// pushFilters moves each filter with known column reads down through
// projections and into the side of a join that owns all its columns.
func pushFilters(n *planNode, changed *bool) *planNode {
	if n == nil {
		return nil
	}
	n.left = pushFilters(n.left, changed)
	n.right = pushFilters(n.right, changed)
	if n.kind != pFilter || len(n.cols) == 0 {
		return n
	}
	child := n.left
	switch child.kind {
	case pProject:
		// filter(project(x)) → project(filter(x)): projection neither
		// renames nor reorders the columns the filter reads.
		below, err := child.left.schema()
		if err != nil || !colsIn(n.cols, below) {
			return n
		}
		n.left = child.left
		child.left = n
		*changed = true
		return child
	case pJoin:
		ls, lerr := child.left.schema()
		rs, rerr := child.right.schema()
		if lerr != nil || rerr != nil {
			return n
		}
		layout, err := NewJoinLayout(child.left.displayName(), ls, child.right.displayName(), rs, child.on...)
		if err != nil {
			return n
		}
		if colsIn(n.cols, ls) {
			// Left columns keep their names and win name lookups over
			// suffixed right columns, so the filter reads the same values
			// below the join.
			child.left = &planNode{kind: pFilter, pred: n.pred, cols: n.cols, left: child.left}
			*changed = true
			return child
		}
		if filterReadsUnsuffixedRight(n.cols, ls, rs, layout) {
			child.right = &planNode{kind: pFilter, pred: n.pred, cols: n.cols, left: child.right}
			*changed = true
			return child
		}
	}
	return n
}

// filterReadsUnsuffixedRight reports whether every filter column is a kept
// right column whose output name survived collision suffixing unchanged —
// only then does the column resolve to the same values below the join.
func filterReadsUnsuffixedRight(cols []string, ls, rs Schema, layout JoinLayout) bool {
	for _, c := range cols {
		ok := false
		for p, j := range layout.RightKeep {
			if rs[j].Name == c && layout.Schema[len(ls)+p].Name == c {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// pruneJoinInputs narrows a join's inputs to the columns needed by the
// projection above it (plus any filter reads in between and the join columns
// themselves), inserting projections under the join. The rewrite is applied
// only when a re-derived JoinLayout proves every needed output column keeps
// its name and source column.
func pruneJoinInputs(n *planNode, changed *bool) *planNode {
	if n == nil {
		return nil
	}
	n.left = pruneJoinInputs(n.left, changed)
	n.right = pruneJoinInputs(n.right, changed)
	if n.kind != pProject {
		return n
	}
	needed := map[string]bool{}
	for _, nm := range n.names {
		needed[nm] = true
	}
	cur := n.left
	for cur != nil && cur.kind == pFilter {
		if len(cur.cols) == 0 {
			return n // opaque predicate may read anything
		}
		for _, c := range cur.cols {
			needed[c] = true
		}
		cur = cur.left
	}
	if cur == nil || cur.kind != pJoin {
		return n
	}
	join := cur
	ls, lerr := join.left.schema()
	rs, rerr := join.right.schema()
	if lerr != nil || rerr != nil {
		return n
	}
	lname, rname := join.left.displayName(), join.right.displayName()
	layout, err := NewJoinLayout(lname, ls, rname, rs, join.on...)
	if err != nil {
		return n
	}
	for nm := range needed {
		if !layout.Schema.Has(nm) {
			return n // the plan will fail at runtime; leave it intact
		}
	}
	keepLeft := map[string]bool{}
	keepRight := map[string]bool{}
	for _, pair := range join.on {
		keepLeft[pair.Left] = true
		keepRight[pair.Right] = true
	}
	for q, c := range layout.Schema {
		if !needed[c.Name] {
			continue
		}
		if q < len(ls) {
			keepLeft[ls[q].Name] = true
		} else {
			keepRight[rs[layout.RightKeep[q-len(ls)]].Name] = true
		}
	}
	lsNames := keptNames(ls, keepLeft)
	rsNames := keptNames(rs, keepRight)
	if len(lsNames) == len(ls) && len(rsNames) == len(rs) {
		return n
	}
	ls2, err := ls.Project(lsNames...)
	if err != nil {
		return n
	}
	rs2, err := rs.Project(rsNames...)
	if err != nil {
		return n
	}
	layout2, err := NewJoinLayout(lname, ls2, rname, rs2, join.on...)
	if err != nil {
		return n
	}
	if !sameResolution(needed, layout, ls, rs, layout2, ls2, rs2) {
		return n
	}
	if len(lsNames) < len(ls) {
		join.left = &planNode{kind: pProject, names: lsNames, left: join.left}
	}
	if len(rsNames) < len(rs) {
		join.right = &planNode{kind: pProject, names: rsNames, left: join.right}
	}
	*changed = true
	return n
}

func keptNames(s Schema, keep map[string]bool) []string {
	out := make([]string, 0, len(s))
	for _, c := range s {
		if keep[c.Name] {
			out = append(out, c.Name)
		}
	}
	return out
}

// joinSource identifies which underlying input column an output column of a
// join layout came from.
type joinSource struct {
	fromRight bool
	col       string // source-side column name (unique within a schema)
}

func resolveSource(name string, layout JoinLayout, ls, rs Schema) (joinSource, bool) {
	q := layout.Schema.IndexOf(name)
	if q < 0 {
		return joinSource{}, false
	}
	if q < len(ls) {
		return joinSource{col: ls[q].Name}, true
	}
	return joinSource{fromRight: true, col: rs[layout.RightKeep[q-len(ls)]].Name}, true
}

// sameResolution verifies that every needed output name resolves to the same
// underlying column before and after pruning — i.e. pruning changed no
// collision suffixes among the surviving columns.
func sameResolution(needed map[string]bool, l1 JoinLayout, ls1, rs1 Schema, l2 JoinLayout, ls2, rs2 Schema) bool {
	for nm := range needed {
		a, okA := resolveSource(nm, l1, ls1, rs1)
		b, okB := resolveSource(nm, l2, ls2, rs2)
		if !okA || !okB || a != b {
			return false
		}
	}
	return true
}

// Explain renders the plan tree on one line, e.g.
// "project[a,b](join[x=y](filter[x](scan(s1)), scan(s2)))".
func (p *Plan) Explain() string {
	var sb strings.Builder
	p.root.explain(&sb)
	return sb.String()
}

func (n *planNode) explain(sb *strings.Builder) {
	switch n.kind {
	case pScan:
		fmt.Fprintf(sb, "scan(%s)", n.rel.Name)
	case pFilter:
		fmt.Fprintf(sb, "filter[%s](", strings.Join(n.cols, ","))
		n.left.explain(sb)
		sb.WriteByte(')')
	case pProject:
		fmt.Fprintf(sb, "project[%s](", strings.Join(n.names, ","))
		n.left.explain(sb)
		sb.WriteByte(')')
	case pLimit:
		fmt.Fprintf(sb, "limit[%d](", n.n)
		n.left.explain(sb)
		sb.WriteByte(')')
	case pJoin:
		pairs := make([]string, len(n.on))
		for i, p := range n.on {
			pairs[i] = p.Left + "=" + p.Right
		}
		fmt.Fprintf(sb, "join[%s](", strings.Join(pairs, ","))
		n.left.explain(sb)
		sb.WriteString(", ")
		n.right.explain(sb)
		sb.WriteByte(')')
	}
}

// Iter compiles the plan as-is (no optimization) into a streaming pipeline.
func (p *Plan) Iter() (Iter, error) { return p.root.iter() }

func (n *planNode) iter() (Iter, error) {
	switch n.kind {
	case pScan:
		return NewScan(n.rel), nil
	case pFilter:
		src, err := n.left.iter()
		if err != nil {
			return nil, err
		}
		return NewSelect(src, n.pred), nil
	case pProject:
		src, err := n.left.iter()
		if err != nil {
			return nil, err
		}
		return NewProject(src, n.names...)
	case pLimit:
		src, err := n.left.iter()
		if err != nil {
			return nil, err
		}
		return NewLimit(src, n.n), nil
	case pJoin:
		l, err := n.left.iter()
		if err != nil {
			return nil, err
		}
		r, err := n.right.iter()
		if err != nil {
			l.Close()
			return nil, err
		}
		return NewHashJoin(l, r, n.left.displayName(), n.right.displayName(), n.on...)
	}
	return nil, fmt.Errorf("relation: plan: unknown node kind %d", n.kind)
}

// Run optimizes, executes, and materializes the plan. The result is named
// like the equivalent eager join chain (inputs concatenated with "⋈").
func (p *Plan) Run() (*Relation, error) {
	it, err := p.Optimize().Iter()
	if err != nil {
		return nil, err
	}
	out, err := Materialize(it)
	if err != nil {
		return nil, err
	}
	out.Name = p.root.displayName()
	return out, nil
}
