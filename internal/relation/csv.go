package relation

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV writes the relation as CSV with a two-row header: column names,
// then column kinds. The kind row lets ReadCSV round-trip exactly.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return fmt.Errorf("relation %q: write csv header: %w", r.Name, err)
	}
	kinds := make([]string, len(r.Schema))
	for i, c := range r.Schema {
		kinds[i] = c.Kind.String()
	}
	if err := cw.Write(kinds); err != nil {
		return fmt.Errorf("relation %q: write csv kinds: %w", r.Name, err)
	}
	rec := make([]string, len(r.Schema))
	for _, row := range r.Rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation %q: write csv row: %w", r.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation written by WriteCSV (name row, kind row, data).
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %w", err)
	}
	kindRow, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv kinds: %w", err)
	}
	if len(kindRow) != len(header) {
		return nil, fmt.Errorf("relation: csv kinds arity %d != header %d", len(kindRow), len(header))
	}
	schema := make(Schema, len(header))
	for i, h := range header {
		k, ok := ParseKind(kindRow[i])
		if !ok {
			return nil, fmt.Errorf("relation: unknown kind %q in csv", kindRow[i])
		}
		schema[i] = Column{Name: h, Kind: k}
	}
	r := New(name, schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv row: %w", err)
		}
		row := make([]Value, len(schema))
		for i, s := range rec {
			v, err := ParseValue(schema[i].Kind, s)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if err := r.Append(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// ReadCSVInferred parses plain CSV (single header row), inferring kinds from
// the first data row. Sellers pointing the platform at raw files use this
// path (paper §4.2 Data Packaging).
func ReadCSVInferred(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %w", err)
	}
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv row: %w", err)
		}
		rows = append(rows, rec)
	}
	schema := make(Schema, len(header))
	for i, h := range header {
		kind := KindString
		for _, rec := range rows {
			if rec[i] == "" {
				continue
			}
			kind = InferValue(rec[i]).Kind()
			break
		}
		schema[i] = Column{Name: h, Kind: kind}
	}
	r := New(name, schema)
	for _, rec := range rows {
		row := make([]Value, len(schema))
		for i, s := range rec {
			v, err := ParseValue(schema[i].Kind, s)
			if err != nil {
				// Fall back to string when later rows contradict the
				// inferred kind.
				v = String_(s)
				r.Schema[i].Kind = KindString
			}
			row[i] = v
		}
		row = coerceRow(r.Schema, row)
		if err := r.Append(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func coerceRow(schema Schema, row []Value) []Value {
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if schema[i].Kind == KindString && v.Kind() != KindString {
			row[i] = String_(v.String())
		}
	}
	return row
}

// jsonRelation is the wire form used by MarshalJSON.
type jsonRelation struct {
	Name   string     `json:"name"`
	Cols   []string   `json:"cols"`
	Kinds  []string   `json:"kinds"`
	Values [][]string `json:"rows"`
}

// MarshalJSON encodes the relation in a compact string-encoded form that the
// DMMS HTTP layer ships between buyer/seller platforms and the arbiter.
func (r *Relation) MarshalJSON() ([]byte, error) {
	jr := jsonRelation{Name: r.Name, Cols: r.Schema.Names()}
	jr.Kinds = make([]string, len(r.Schema))
	for i, c := range r.Schema {
		jr.Kinds[i] = c.Kind.String()
	}
	jr.Values = make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rec := make([]string, len(row))
		for j, v := range row {
			if v.IsNull() {
				rec[j] = ""
			} else {
				rec[j] = v.String()
			}
		}
		jr.Values[i] = rec
	}
	return json.Marshal(jr)
}

// UnmarshalJSON decodes the MarshalJSON form.
func (r *Relation) UnmarshalJSON(data []byte) error {
	var jr jsonRelation
	if err := json.Unmarshal(data, &jr); err != nil {
		return err
	}
	if len(jr.Kinds) != len(jr.Cols) {
		return fmt.Errorf("relation: json kinds arity %d != cols %d", len(jr.Kinds), len(jr.Cols))
	}
	schema := make(Schema, len(jr.Cols))
	for i := range jr.Cols {
		k, ok := ParseKind(jr.Kinds[i])
		if !ok {
			return fmt.Errorf("relation: unknown kind %q in json", jr.Kinds[i])
		}
		schema[i] = Column{Name: jr.Cols[i], Kind: k}
	}
	nr := New(jr.Name, schema)
	for _, rec := range jr.Values {
		row := make([]Value, len(schema))
		for i, s := range rec {
			v, err := ParseValue(schema[i].Kind, s)
			if err != nil {
				return err
			}
			row[i] = v
		}
		if err := nr.Append(row); err != nil {
			return err
		}
	}
	*r = *nr
	return nil
}
