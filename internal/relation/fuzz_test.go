package relation

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// fuzzCSV renders a relation through the package's own CSV codec so the seed
// corpus exercises exactly the wire shape ReadCSV accepts. KindMulti is
// excluded from generated corpora: ParseValue cannot round-trip it.
func fuzzCSV(r *Relation) string {
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		panic(err)
	}
	return buf.String()
}

// FuzzIterOps feeds arbitrary CSV through the streaming operators and checks
// they agree with the frozen legacy eager implementations on whatever
// relation parses. opByte selects the pipeline; n parameterizes Limit.
func FuzzIterOps(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	for seed := 0; seed < 6; seed++ {
		r := randRel(rng, "fz", "k")
		f.Add(fuzzCSV(r), byte(seed), seed)
	}
	f.Add("k,v\nint,string\n1,a\n2,b\n1,a\n", byte(0), 1)
	f.Add("k\nint\n", byte(3), 0)
	f.Add("k,t\nint,time\n5,2024-01-02T03:04:05Z\n", byte(5), 2)

	f.Fuzz(func(t *testing.T, csv string, opByte byte, n int) {
		r, err := ReadCSV("fz", strings.NewReader(csv))
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			return
		}
		switch opByte % 6 {
		case 0:
			pred := func(row []Value, s Schema) bool { return !row[0].IsNull() }
			mustSameRel(t, "Select", Select(r, pred), legacySelect(r, pred))
		case 1:
			if len(r.Schema) == 0 {
				return
			}
			name := r.Schema[0].Name
			got, gerr := Project(r, name)
			want, werr := legacyProject(r, name)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("Project err mismatch: %v vs %v", gerr, werr)
			}
			if gerr == nil {
				mustSameRel(t, "Project", got, want)
			}
		case 2:
			nn := n % (len(r.Rows) + 2)
			if nn < 0 {
				// Legacy Limit panicked on negative n; the streaming one
				// clamps to zero rows. Assert the clamp, then compare the
				// non-negative twin.
				if got := Limit(r, nn); len(got.Rows) != 0 {
					t.Fatalf("Limit(%d) returned %d rows, want 0", nn, len(got.Rows))
				}
				nn = -nn
			}
			mustSameRel(t, "Limit", Limit(r, nn), legacyLimit(r, nn))
		case 3:
			mustSameRel(t, "Distinct", Distinct(r), legacyDistinct(r))
		case 4:
			got, gerr := Union(r, r)
			want, werr := legacyUnion(r, r)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("Union err mismatch: %v vs %v", gerr, werr)
			}
			if gerr == nil {
				mustSameRel(t, "Union", got, want)
			}
		case 5:
			if len(r.Schema) == 0 {
				return
			}
			on := JoinPair{Left: r.Schema[0].Name, Right: r.Schema[0].Name}
			got, gerr := HashJoin(r, r, on)
			want, werr := legacyJoin(r, r, true, on)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("HashJoin err mismatch: %v vs %v", gerr, werr)
			}
			if gerr != nil {
				return
			}
			mustSameRel(t, "HashJoin", got, want)
			nl, nerr := NestedLoopJoin(r, r, on)
			if nerr != nil {
				t.Fatalf("NestedLoopJoin failed where HashJoin succeeded: %v", nerr)
			}
			mustSameRel(t, "HashJoin≡NestedLoopJoin", got, nl)
		}
	})
}
