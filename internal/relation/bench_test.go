package relation

import (
	"bytes"
	"fmt"
	"testing"
)

func mkBenchRel(n int) *Relation {
	r := New("bench", NewSchema(
		Col("k", KindInt), Col("cat", KindString), Col("v", KindFloat)))
	for i := 0; i < n; i++ {
		r.MustAppend(Int(int64(i)), String_(fmt.Sprintf("c%d", i%10)), Float(float64(i)*0.5))
	}
	return r
}

func BenchmarkHashJoin(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		l, r := mkBenchRel(n), mkBenchRel(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := HashJoin(l, r, JoinPair{"k", "k"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGroupBy(b *testing.B) {
	r := mkBenchRel(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GroupBy(r, []string{"cat"}, []Agg{
			{Kind: AggCount, As: "n"}, {Kind: AggAvg, Col: "v", As: "m"},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistinct(b *testing.B) {
	r := mkBenchRel(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distinct(r)
	}
}

func BenchmarkSortBy(b *testing.B) {
	r := mkBenchRel(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SortBy(r, false, "cat", "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSVRoundTrip(b *testing.B) {
	r := mkBenchRel(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadCSV("bench", &buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueKey(b *testing.B) {
	vals := []Value{Int(42), Float(3.14), String_("hello"), Bool(true)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, v := range vals {
			_ = v.Key()
		}
	}
}

// pipelineInputs builds the transform-chain workload shared by the eager and
// streaming pipeline benches: select (2/3 pass) → map → project.
func pipelineInputs(n int) *Relation { return mkBenchRel(n) }

func pipelinePred(row []Value, s Schema) bool {
	return !row[0].IsNull() && row[0].AsInt()%3 != 0
}

func pipelineFn(v Value) Value {
	if v.IsNull() {
		return v
	}
	return Float(v.AsFloat() * 2)
}

// BenchmarkPipelineEager chains the eager operators: every stage materializes
// an intermediate relation. This is the pre-refactor execution shape.
func BenchmarkPipelineEager(b *testing.B) {
	r := pipelineInputs(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := Select(r, pipelinePred)
		m, err := Map(s, "v", KindFloat, pipelineFn)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Project(m, "k", "v"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineStreaming fuses the same stages into one iterator pipeline
// with a single materialization at the end.
func BenchmarkPipelineStreaming(b *testing.B) {
	r := pipelineInputs(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := NewSelect(NewScan(r), pipelinePred)
		it, err := NewMap(it, "v", KindFloat, pipelineFn)
		if err != nil {
			b.Fatal(err)
		}
		it, err = NewProject(it, "k", "v")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Materialize(it); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinProjectEager joins then projects eagerly: the join materializes
// every column of both sides before the projection narrows them.
func BenchmarkJoinProjectEager(b *testing.B) {
	l, r := mkBenchRel(5000), mkBenchRel(5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j, err := HashJoin(l, r, JoinPair{"k", "k"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Project(j, "k", "v"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinProjectPlanned runs the same query through the planner, which
// prunes the join inputs to the needed columns before the hash table is built.
func BenchmarkJoinProjectPlanned(b *testing.B) {
	l, r := mkBenchRel(5000), mkBenchRel(5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ScanPlan(l).Join(ScanPlan(r), JoinPair{"k", "k"}).Project("k", "v").Run(); err != nil {
			b.Fatal(err)
		}
	}
}
