package relation

import (
	"bytes"
	"fmt"
	"testing"
)

func mkBenchRel(n int) *Relation {
	r := New("bench", NewSchema(
		Col("k", KindInt), Col("cat", KindString), Col("v", KindFloat)))
	for i := 0; i < n; i++ {
		r.MustAppend(Int(int64(i)), String_(fmt.Sprintf("c%d", i%10)), Float(float64(i)*0.5))
	}
	return r
}

func BenchmarkHashJoin(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		l, r := mkBenchRel(n), mkBenchRel(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := HashJoin(l, r, JoinPair{"k", "k"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGroupBy(b *testing.B) {
	r := mkBenchRel(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GroupBy(r, []string{"cat"}, []Agg{
			{Kind: AggCount, As: "n"}, {Kind: AggAvg, Col: "v", As: "m"},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistinct(b *testing.B) {
	r := mkBenchRel(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distinct(r)
	}
}

func BenchmarkSortBy(b *testing.B) {
	r := mkBenchRel(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SortBy(r, false, "cat", "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSVRoundTrip(b *testing.B) {
	r := mkBenchRel(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadCSV("bench", &buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueKey(b *testing.B) {
	vals := []Value{Int(42), Float(3.14), String_("hello"), Bool(true)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, v := range vals {
			_ = v.Key()
		}
	}
}
