package relation

import (
	"fmt"
	"strings"
)

// Relation is an in-memory table: a named schema plus rows. Rows are slices
// of Values aligned with the schema. A Relation is the unit sellers share
// with the arbiter and the shape of every mashup the arbiter builds.
type Relation struct {
	Name   string
	Schema Schema
	Rows   [][]Value
}

// New creates an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema.Clone()}
}

// NumRows returns the number of rows.
func (r *Relation) NumRows() int { return len(r.Rows) }

// NumCols returns the number of columns.
func (r *Relation) NumCols() int { return len(r.Schema) }

// Append validates and appends a row. The row is stored directly (not
// copied); callers must not reuse the slice.
func (r *Relation) Append(row []Value) error {
	if len(row) != len(r.Schema) {
		return fmt.Errorf("relation %q: row arity %d != schema arity %d", r.Name, len(row), len(r.Schema))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if !kindCompatible(r.Schema[i].Kind, v.Kind()) {
			return fmt.Errorf("relation %q: column %q expects %v, got %v", r.Name, r.Schema[i].Name, r.Schema[i].Kind, v.Kind())
		}
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// MustAppend appends a row and panics on schema mismatch. Intended for tests
// and generators where the schema is statically known.
func (r *Relation) MustAppend(row ...Value) {
	if err := r.Append(row); err != nil {
		panic(err)
	}
}

func kindCompatible(col, val Kind) bool {
	if col == val {
		return true
	}
	// Ints fit in float columns; multi cells may hold anything.
	if col == KindFloat && val == KindInt {
		return true
	}
	if col == KindMulti {
		return true
	}
	return false
}

// Column returns the values of the named column, or an error.
func (r *Relation) Column(name string) ([]Value, error) {
	i := r.Schema.IndexOf(name)
	if i < 0 {
		return nil, fmt.Errorf("relation %q: no column %q", r.Name, name)
	}
	out := make([]Value, len(r.Rows))
	for j, row := range r.Rows {
		out[j] = row[i]
	}
	return out, nil
}

// Cell returns the value at (row, column name).
func (r *Relation) Cell(row int, name string) (Value, error) {
	i := r.Schema.IndexOf(name)
	if i < 0 {
		return Null(), fmt.Errorf("relation %q: no column %q", r.Name, name)
	}
	if row < 0 || row >= len(r.Rows) {
		return Null(), fmt.Errorf("relation %q: row %d out of range [0,%d)", r.Name, row, len(r.Rows))
	}
	return r.Rows[row][i], nil
}

// Clone deep-copies the relation (rows are copied; Values are immutable).
func (r *Relation) Clone() *Relation {
	out := New(r.Name, r.Schema)
	out.Rows = make([][]Value, len(r.Rows))
	for i, row := range r.Rows {
		cp := make([]Value, len(row))
		copy(cp, row)
		out.Rows[i] = cp
	}
	return out
}

// Equal reports whether two relations have equal schemas and equal rows in
// order.
func (r *Relation) Equal(o *Relation) bool {
	if !r.Schema.Equal(o.Schema) || len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Rows {
		for j := range r.Rows[i] {
			if !r.Rows[i][j].Equal(o.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// Validate checks schema validity and row arity/type conformance.
func (r *Relation) Validate() error {
	if err := r.Schema.Validate(); err != nil {
		return fmt.Errorf("relation %q: %w", r.Name, err)
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Schema) {
			return fmt.Errorf("relation %q: row %d arity %d != %d", r.Name, i, len(row), len(r.Schema))
		}
		for j, v := range row {
			if !v.IsNull() && !kindCompatible(r.Schema[j].Kind, v.Kind()) {
				return fmt.Errorf("relation %q: row %d column %q: kind %v incompatible with %v",
					r.Name, i, r.Schema[j].Name, v.Kind(), r.Schema[j].Kind)
			}
		}
	}
	return nil
}

// String renders the relation as an aligned text table, truncated to 20 rows.
func (r *Relation) String() string {
	const maxRows = 20
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s [%d rows]\n", r.Name, r.Schema, len(r.Rows))
	widths := make([]int, len(r.Schema))
	for i, c := range r.Schema {
		widths[i] = len(c.Name)
	}
	n := len(r.Rows)
	if n > maxRows {
		n = maxRows
	}
	cells := make([][]string, n)
	for i := 0; i < n; i++ {
		cells[i] = make([]string, len(r.Schema))
		for j, v := range r.Rows[i] {
			cells[i][j] = v.String()
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	for j, c := range r.Schema {
		fmt.Fprintf(&sb, "%-*s ", widths[j], c.Name)
	}
	sb.WriteByte('\n')
	for i := 0; i < n; i++ {
		for j := range r.Schema {
			fmt.Fprintf(&sb, "%-*s ", widths[j], cells[i][j])
		}
		sb.WriteByte('\n')
	}
	if len(r.Rows) > maxRows {
		fmt.Fprintf(&sb, "... (%d more rows)\n", len(r.Rows)-maxRows)
	}
	return sb.String()
}

// MissingRatio returns the fraction of NULL cells — one of the intrinsic
// properties buyers may constrain in WTP-functions (paper §3.2.2.1).
func (r *Relation) MissingRatio() float64 {
	if len(r.Rows) == 0 || len(r.Schema) == 0 {
		return 0
	}
	nulls := 0
	for _, row := range r.Rows {
		for _, v := range row {
			if v.IsNull() {
				nulls++
			}
		}
	}
	return float64(nulls) / float64(len(r.Rows)*len(r.Schema))
}
