package relation

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mkPeople() *Relation {
	r := New("people", NewSchema(
		Col("id", KindInt), Col("name", KindString), Col("age", KindInt), Col("city", KindString),
	))
	r.MustAppend(Int(1), String_("ada"), Int(36), String_("london"))
	r.MustAppend(Int(2), String_("alan"), Int(41), String_("london"))
	r.MustAppend(Int(3), String_("grace"), Int(45), String_("nyc"))
	r.MustAppend(Int(4), String_("edsger"), Int(39), String_("austin"))
	return r
}

func mkSalaries() *Relation {
	r := New("salaries", NewSchema(Col("pid", KindInt), Col("salary", KindFloat)))
	r.MustAppend(Int(1), Float(100))
	r.MustAppend(Int(2), Float(120))
	r.MustAppend(Int(3), Float(150))
	r.MustAppend(Int(9), Float(999)) // dangling
	return r
}

func TestSelectProject(t *testing.T) {
	p := mkPeople()
	sel := Select(p, ColEquals("city", String_("london")))
	if sel.NumRows() != 2 {
		t.Fatalf("select rows = %d, want 2", sel.NumRows())
	}
	proj, err := Project(sel, "name", "age")
	if err != nil {
		t.Fatal(err)
	}
	if !proj.Schema.Equal(NewSchema(Col("name", KindString), Col("age", KindInt))) {
		t.Errorf("projected schema = %s", proj.Schema)
	}
	if _, err := Project(p, "nope"); err == nil {
		t.Error("project on unknown column must error")
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	p, s := mkPeople(), mkSalaries()
	hj, err := HashJoin(p, s, JoinPair{"id", "pid"})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := NestedLoopJoin(p, s, JoinPair{"id", "pid"})
	if err != nil {
		t.Fatal(err)
	}
	if hj.NumRows() != 3 || nl.NumRows() != 3 {
		t.Fatalf("join rows hash=%d nested=%d, want 3", hj.NumRows(), nl.NumRows())
	}
	// Same multiset of rows.
	sh, _ := SortBy(hj, false, "id")
	sn, _ := SortBy(nl, false, "id")
	if !sh.Equal(sn) {
		t.Error("hash join and nested loop join disagree")
	}
	if !hj.Schema.Has("salary") {
		t.Error("join must carry right columns")
	}
	if hj.Schema.Has("pid") {
		t.Error("join must drop right join column")
	}
}

func TestJoinNullsNeverMatch(t *testing.T) {
	a := New("a", NewSchema(Col("k", KindInt), Col("x", KindString)))
	a.MustAppend(Null(), String_("na"))
	a.MustAppend(Int(1), String_("one"))
	b := New("b", NewSchema(Col("k", KindInt), Col("y", KindString)))
	b.MustAppend(Null(), String_("nb"))
	b.MustAppend(Int(1), String_("uno"))
	j, err := HashJoin(a, b, JoinPair{"k", "k"})
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 1 {
		t.Fatalf("null keys must not join; rows=%d", j.NumRows())
	}
}

func TestJoinNameCollisionSuffix(t *testing.T) {
	a := New("a", NewSchema(Col("k", KindInt), Col("v", KindInt)))
	a.MustAppend(Int(1), Int(10))
	b := New("b", NewSchema(Col("k", KindInt), Col("v", KindInt)))
	b.MustAppend(Int(1), Int(20))
	j, err := HashJoin(a, b, JoinPair{"k", "k"})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Schema.Has("v") || !j.Schema.Has("v_r") {
		t.Errorf("expected v and v_r, got %s", j.Schema)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	p, s := mkPeople(), mkSalaries()
	j, err := LeftOuterJoin(p, s, JoinPair{"id", "pid"})
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 4 {
		t.Fatalf("outer join rows = %d, want 4", j.NumRows())
	}
	sorted, _ := SortBy(j, false, "id")
	last := sorted.Rows[3]
	sal := sorted.Schema.IndexOf("salary")
	if !last[sal].IsNull() {
		t.Error("unmatched left row must have NULL salary")
	}
}

func TestDistinctUnionLimit(t *testing.T) {
	p := mkPeople()
	u, err := Union(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 8 {
		t.Fatalf("union rows = %d", u.NumRows())
	}
	d := Distinct(u)
	if d.NumRows() != 4 {
		t.Fatalf("distinct rows = %d, want 4", d.NumRows())
	}
	if Limit(p, 2).NumRows() != 2 || Limit(p, 100).NumRows() != 4 {
		t.Error("limit wrong")
	}
	other := New("x", NewSchema(Col("z", KindInt)))
	if _, err := Union(p, other); err == nil {
		t.Error("union with mismatched schema must error")
	}
}

func TestSortByMultiKeyAndDesc(t *testing.T) {
	p := mkPeople()
	asc, err := SortBy(p, false, "city", "age")
	if err != nil {
		t.Fatal(err)
	}
	if got := asc.Rows[0][1].AsString(); got != "edsger" {
		t.Errorf("first by (city,age) = %s, want edsger (austin)", got)
	}
	desc, _ := SortBy(p, true, "age")
	if got := desc.Rows[0][1].AsString(); got != "grace" {
		t.Errorf("oldest = %s, want grace", got)
	}
}

func TestGroupByAggregates(t *testing.T) {
	p := mkPeople()
	g, err := GroupBy(p, []string{"city"}, []Agg{
		{Kind: AggCount, As: "n"},
		{Kind: AggAvg, Col: "age", As: "avg_age"},
		{Kind: AggMin, Col: "age", As: "min_age"},
		{Kind: AggMax, Col: "age", As: "max_age"},
		{Kind: AggSum, Col: "age", As: "sum_age"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", g.NumRows())
	}
	london := Select(g, ColEquals("city", String_("london")))
	if london.NumRows() != 1 {
		t.Fatal("missing london group")
	}
	row := london.Rows[0]
	get := func(name string) Value {
		return row[london.Schema.IndexOf(name)]
	}
	if get("n").AsInt() != 2 {
		t.Errorf("count = %v", get("n"))
	}
	if get("avg_age").AsFloat() != 38.5 {
		t.Errorf("avg = %v", get("avg_age"))
	}
	if get("min_age").AsFloat() != 36 || get("max_age").AsFloat() != 41 {
		t.Errorf("min/max = %v/%v", get("min_age"), get("max_age"))
	}
	if get("sum_age").AsFloat() != 77 {
		t.Errorf("sum = %v", get("sum_age"))
	}
}

func TestGroupByNullsIgnored(t *testing.T) {
	r := New("t", NewSchema(Col("k", KindString), Col("v", KindFloat)))
	r.MustAppend(String_("a"), Float(1))
	r.MustAppend(String_("a"), Null())
	g, err := GroupBy(r, []string{"k"}, []Agg{{Kind: AggAvg, Col: "v", As: "m"}, {Kind: AggCount, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows[0][1].AsFloat() != 1 {
		t.Errorf("avg ignoring nulls = %v, want 1", g.Rows[0][1])
	}
	if g.Rows[0][2].AsInt() != 2 {
		t.Errorf("count counts rows = %v, want 2", g.Rows[0][2])
	}
}

func TestPivot(t *testing.T) {
	r := New("obs", NewSchema(Col("day", KindString), Col("sensor", KindString), Col("temp", KindFloat)))
	r.MustAppend(String_("mon"), String_("s1"), Float(20))
	r.MustAppend(String_("mon"), String_("s2"), Float(21))
	r.MustAppend(String_("tue"), String_("s1"), Float(18))
	p, err := Pivot(r, "day", "sensor", "temp")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Schema.Has("s1") || !p.Schema.Has("s2") {
		t.Fatalf("pivot schema = %s", p.Schema)
	}
	tue := Select(p, ColEquals("day", String_("tue")))
	v, _ := tue.Cell(0, "s2")
	if !v.IsNull() {
		t.Error("missing pivot cell must be NULL")
	}
}

func TestInterpolate(t *testing.T) {
	r := New("ts", NewSchema(Col("t", KindInt), Col("v", KindFloat)))
	r.MustAppend(Int(0), Float(0))
	r.MustAppend(Int(1), Null())
	r.MustAppend(Int(2), Null())
	r.MustAppend(Int(3), Float(30))
	out, err := Interpolate(r, "t", "v")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[1][1].AsFloat() != 10 || out.Rows[2][1].AsFloat() != 20 {
		t.Errorf("interpolated = %v, %v; want 10, 20", out.Rows[1][1], out.Rows[2][1])
	}
}

func TestMapAndAddColumn(t *testing.T) {
	p := mkPeople()
	doubled, err := Map(p, "age", KindInt, func(v Value) Value {
		if v.IsNull() {
			return v
		}
		return Int(v.AsInt() * 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if doubled.Rows[0][2].AsInt() != 72 {
		t.Errorf("mapped age = %v", doubled.Rows[0][2])
	}
	// Original untouched.
	if p.Rows[0][2].AsInt() != 36 {
		t.Error("Map must not mutate input")
	}
	withFlag := AddColumn(p, Col("senior", KindBool), func(row []Value, s Schema) Value {
		return Bool(row[s.IndexOf("age")].AsInt() >= 40)
	})
	if withFlag.NumCols() != 5 {
		t.Error("AddColumn arity")
	}
	v, _ := withFlag.Cell(1, "senior")
	if !v.AsBool() {
		t.Error("alan is senior")
	}
}

func TestAppendValidation(t *testing.T) {
	r := New("t", NewSchema(Col("a", KindInt)))
	if err := r.Append([]Value{Int(1), Int(2)}); err == nil {
		t.Error("arity mismatch must error")
	}
	if err := r.Append([]Value{String_("x")}); err == nil {
		t.Error("kind mismatch must error")
	}
	if err := r.Append([]Value{Null()}); err != nil {
		t.Error("NULL fits any column")
	}
	f := New("f", NewSchema(Col("a", KindFloat)))
	if err := f.Append([]Value{Int(3)}); err != nil {
		t.Error("int fits float column")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	p := mkPeople()
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("people", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Errorf("csv round trip mismatch:\n%s\nvs\n%s", got, p)
	}
}

func TestReadCSVInferred(t *testing.T) {
	src := "id,name,score\n1,ada,3.5\n2,alan,4.0\n"
	r, err := ReadCSVInferred("t", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema.KindOf("id") != KindInt || r.Schema.KindOf("score") != KindFloat || r.Schema.KindOf("name") != KindString {
		t.Errorf("inferred schema = %s", r.Schema)
	}
	if r.NumRows() != 2 {
		t.Errorf("rows = %d", r.NumRows())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := mkPeople()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got Relation
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Error("json round trip mismatch")
	}
}

func TestMissingRatio(t *testing.T) {
	r := New("t", NewSchema(Col("a", KindInt), Col("b", KindInt)))
	r.MustAppend(Int(1), Null())
	r.MustAppend(Null(), Null())
	if got := r.MissingRatio(); got != 0.75 {
		t.Errorf("missing ratio = %v, want 0.75", got)
	}
}

// Property: hash join row count equals nested loop row count on random data.
func TestJoinEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New("a", NewSchema(Col("k", KindInt), Col("x", KindInt)))
		b := New("b", NewSchema(Col("k", KindInt), Col("y", KindInt)))
		for i := 0; i < 30; i++ {
			a.MustAppend(Int(int64(rng.Intn(8))), Int(int64(i)))
			b.MustAppend(Int(int64(rng.Intn(8))), Int(int64(i)))
		}
		hj, err1 := HashJoin(a, b, JoinPair{"k", "k"})
		nl, err2 := NestedLoopJoin(a, b, JoinPair{"k", "k"})
		return err1 == nil && err2 == nil && hj.NumRows() == nl.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Distinct is idempotent.
func TestDistinctIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("r", NewSchema(Col("a", KindInt)))
		for i := 0; i < 40; i++ {
			r.MustAppend(Int(int64(rng.Intn(10))))
		}
		d1 := Distinct(r)
		d2 := Distinct(d1)
		return d1.NumRows() == d2.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	bad := &Relation{Name: "b", Schema: NewSchema(Col("a", KindInt), Col("a", KindInt))}
	if bad.Validate() == nil {
		t.Error("duplicate column names must fail validation")
	}
	ok := mkPeople()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid relation failed: %v", err)
	}
}

func TestRenameAndStringer(t *testing.T) {
	p := mkPeople()
	r, err := Rename(p, "city", "town")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema.Has("town") || r.Schema.Has("city") {
		t.Error("rename failed")
	}
	if p.Schema.Has("town") {
		t.Error("rename must not mutate original schema")
	}
	if s := p.String(); !strings.Contains(s, "people") || !strings.Contains(s, "ada") {
		t.Errorf("String() = %q", s)
	}
}

func TestSchemaCoverage(t *testing.T) {
	p := mkPeople()
	if got := p.Schema.CoverageOf([]string{"id", "name", "missing"}); got < 0.66 || got > 0.67 {
		t.Errorf("coverage = %v, want 2/3", got)
	}
	if p.Schema.CoverageOf(nil) != 1 {
		t.Error("empty wanted covers trivially")
	}
}

func TestInterpolateAllNull(t *testing.T) {
	r := New("ts", NewSchema(Col("t", KindInt), Col("v", KindFloat)))
	r.MustAppend(Int(0), Null())
	r.MustAppend(Int(1), Null())
	out, err := Interpolate(r, "t", "v")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rows[0][1].IsNull() {
		t.Error("no known points: values stay NULL")
	}
}

func TestInterpolateEdgeExtension(t *testing.T) {
	r := New("ts", NewSchema(Col("t", KindInt), Col("v", KindFloat)))
	r.MustAppend(Int(0), Null())
	r.MustAppend(Int(1), Float(5))
	r.MustAppend(Int(2), Null())
	out, err := Interpolate(r, "t", "v")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][1].AsFloat() != 5 || out.Rows[2][1].AsFloat() != 5 {
		t.Errorf("edges extend nearest known value: %v %v", out.Rows[0][1], out.Rows[2][1])
	}
}

func TestPivotErrors(t *testing.T) {
	r := mkPeople()
	if _, err := Pivot(r, "ghost", "city", "age"); err == nil {
		t.Error("unknown key must fail")
	}
	if _, err := Interpolate(r, "ghost", "age"); err == nil {
		t.Error("unknown order column must fail")
	}
}

func TestJoinErrors(t *testing.T) {
	a := mkPeople()
	b := mkSalaries()
	if _, err := HashJoin(a, b); err == nil {
		t.Error("join without pairs must fail")
	}
	if _, err := HashJoin(a, b, JoinPair{"ghost", "pid"}); err == nil {
		t.Error("unknown left column must fail")
	}
	if _, err := HashJoin(a, b, JoinPair{"id", "ghost"}); err == nil {
		t.Error("unknown right column must fail")
	}
}

func TestMultiPairJoin(t *testing.T) {
	a := New("a", NewSchema(Col("x", KindInt), Col("y", KindString), Col("p", KindInt)))
	a.MustAppend(Int(1), String_("u"), Int(10))
	a.MustAppend(Int(1), String_("v"), Int(20))
	b := New("b", NewSchema(Col("x", KindInt), Col("y", KindString), Col("q", KindInt)))
	b.MustAppend(Int(1), String_("u"), Int(100))
	j, err := HashJoin(a, b, JoinPair{"x", "x"}, JoinPair{"y", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 1 {
		t.Errorf("composite key join rows = %d, want 1", j.NumRows())
	}
}
