// Package relation implements the relational substrate for the data market
// platform: typed schemas, relations, and the relational, non-relational and
// fusion operators the Mashup Builder composes (paper §3, §5).
//
// The package deliberately supports relations that break the first normal
// form: a cell may hold a multi-value, a set of values each tagged with the
// source it came from. Fusion operators (internal/fusion) produce such cells
// when contrasting signals from multiple sellers (paper §1, "data fusion
// operators ... produce relations that break the first normal form").
//
// # Execution model
//
// Operators execute as Volcano-style pull iterators (Iter): a pipeline is
// assembled from NewScan/NewSelect/NewProject/NewHashJoin/... and drained by
// Materialize, which preserves row order and enforces the maxJoinRows guard,
// so results are byte-identical to the historical eager operators — those
// remain available as thin Materialize(op(...)) wrappers. Plan adds a small
// optimizer on top that pushes filters and column pruning below joins
// without changing output rows, order, or naming.
//
// # Ownership and retention rules for rows flowing through iterators
//
//   - A row returned by Iter.Next is valid until the caller drops it; it is
//     never recycled by the iterator. Sinks may retain rows (Materialize
//     does, storing them directly in the result relation).
//   - Shape-preserving operators (scan, select, limit, union, rename) pass
//     row slices through by reference: the rows they yield alias the source
//     relation's storage. Mutating a yielded row in place mutates the
//     source. Consumers that need to write must copy first.
//   - Shape-changing operators (project, map, map-rows, add-column, hash
//     join) allocate a fresh outer slice per output row, but the Values
//     inside are shared with the inputs — safe because Value is immutable.
//   - Relations produced by Materialize own their outer Rows slice:
//     appending through a result can never clobber a source relation (the
//     historical Limit/Rename aliasing bugs).
//   - An Iter is single-use. Close is idempotent and releases child
//     iterators and join hash tables; Materialize closes for you.
//   - Iterators are not safe for concurrent use; build a fresh pipeline per
//     goroutine. The source *Relation may be shared read-only.
package relation
