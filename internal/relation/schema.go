package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// NewSchema builds a schema from alternating name/kind pairs supplied as
// Column values.
func NewSchema(cols ...Column) Schema { return Schema(cols) }

// Col is a convenience constructor for Column.
func Col(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s Schema) Has(name string) bool { return s.IndexOf(name) >= 0 }

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// KindOf returns the kind of the named column; KindNull if absent.
func (s Schema) KindOf(name string) Kind {
	if i := s.IndexOf(name); i >= 0 {
		return s[i].Kind
	}
	return KindNull
}

// Equal reports whether two schemas have identical columns in order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	cp := make(Schema, len(s))
	copy(cp, s)
	return cp
}

// Project returns the sub-schema holding only the named columns, in the
// given order. It errors on unknown names.
func (s Schema) Project(names ...string) (Schema, error) {
	out := make(Schema, 0, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return nil, fmt.Errorf("relation: schema has no column %q (have %s)", n, strings.Join(s.Names(), ","))
		}
		out = append(out, s[i])
	}
	return out, nil
}

// Rename returns a copy of the schema with column old renamed to new.
func (s Schema) Rename(old, new string) (Schema, error) {
	i := s.IndexOf(old)
	if i < 0 {
		return nil, fmt.Errorf("relation: schema has no column %q", old)
	}
	cp := s.Clone()
	cp[i].Name = new
	return cp, nil
}

// Validate checks for duplicate or empty column names.
func (s Schema) Validate() error {
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if c.Name == "" {
			return fmt.Errorf("relation: schema has empty column name")
		}
		if seen[c.Name] {
			return fmt.Errorf("relation: schema has duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// String renders the schema as name:kind pairs.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CoverageOf reports the fraction of the wanted column names present in s.
// The Mashup Builder uses this to score candidate mashups against a buyer's
// query-by-example target schema.
func (s Schema) CoverageOf(wanted []string) float64 {
	if len(wanted) == 0 {
		return 1
	}
	hit := 0
	for _, w := range wanted {
		if s.Has(w) {
			hit++
		}
	}
	return float64(hit) / float64(len(wanted))
}
