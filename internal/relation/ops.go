package relation

import (
	"fmt"
	"sort"
)

// Predicate decides whether a row qualifies. The row slice must not be
// retained.
type Predicate func(row []Value, schema Schema) bool

// The eager operators below are thin Materialize(op(...)) wrappers over the
// streaming iterators in iter.go; they keep the historical names, result
// naming, and error text so existing callers (and replayed WALs) see
// byte-identical results.

// Select returns the rows of r satisfying pred, preserving order.
func Select(r *Relation, pred Predicate) *Relation {
	out, _ := Materialize(NewSelect(NewScan(r), pred))
	out.Name = r.Name + "_sel"
	return out
}

// ColEquals builds a predicate matching rows whose named column equals v.
func ColEquals(name string, v Value) Predicate {
	return func(row []Value, schema Schema) bool {
		i := schema.IndexOf(name)
		return i >= 0 && row[i].Equal(v)
	}
}

// Project returns r restricted to the named columns, in order.
func Project(r *Relation, names ...string) (*Relation, error) {
	it, err := NewProject(NewScan(r), names...)
	if err != nil {
		return nil, err
	}
	out, err := Materialize(it)
	if err != nil {
		return nil, err
	}
	out.Name = r.Name + "_proj"
	return out, nil
}

// Rename returns r with column old renamed to new. The result owns its own
// row slice (historically it aliased the source's, so appending through the
// result could clobber the source relation).
func Rename(r *Relation, old, new string) (*Relation, error) {
	it, err := NewRename(NewScan(r), old, new)
	if err != nil {
		return nil, fmt.Errorf("relation %q: %w", r.Name, err)
	}
	out, _ := Materialize(it)
	out.Name = r.Name
	return out, nil
}

// Distinct removes duplicate rows (by canonical key), keeping first
// occurrences.
func Distinct(r *Relation) *Relation {
	out := New(r.Name+"_dist", r.Schema)
	seen := make(map[string]bool, len(r.Rows))
	var buf []byte
	for _, row := range r.Rows {
		buf = AppendRowKey(buf[:0], row, nil)
		if !seen[string(buf)] {
			seen[string(buf)] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// SortBy stably sorts r by the named columns ascending. desc flips the order.
func SortBy(r *Relation, desc bool, names ...string) (*Relation, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		k := r.Schema.IndexOf(n)
		if k < 0 {
			return nil, fmt.Errorf("relation %q: no column %q", r.Name, n)
		}
		idx[i] = k
	}
	out := r.Clone()
	sort.SliceStable(out.Rows, func(a, b int) bool {
		for _, k := range idx {
			c := out.Rows[a][k].Compare(out.Rows[b][k])
			if c != 0 {
				if desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return out, nil
}

// Limit returns the first n rows of r. The result owns its own row slice
// (historically it sliced the source's backing array, so appending through
// the result could clobber the source's later rows).
func Limit(r *Relation, n int) *Relation {
	out, _ := Materialize(NewLimit(NewScan(r), n))
	out.Name = r.Name + "_lim"
	return out
}

// Union appends the rows of b to a. Schemas must be equal.
func Union(a, b *Relation) (*Relation, error) {
	it, err := NewUnion(NewScan(a), NewScan(b))
	if err != nil {
		return nil, err
	}
	out, _ := Materialize(it)
	out.Name = a.Name + "_union"
	return out, nil
}

// JoinPair names the join columns on each side of a join.
type JoinPair struct {
	Left, Right string
}

// HashJoin performs an inner equi-join of l and r on the given column pairs
// using a hash table built on the right side. Right join columns are dropped
// from the output; remaining right columns that clash with left names are
// suffixed with "_r".
func HashJoin(l, r *Relation, on ...JoinPair) (*Relation, error) {
	it, err := NewHashJoin(NewScan(l), NewScan(r), l.Name, r.Name, on...)
	if err != nil {
		return nil, err
	}
	out, err := Materialize(it)
	if err != nil {
		return nil, err
	}
	out.Name = l.Name + "⋈" + r.Name
	return out, nil
}

// maxJoinRows guards against runaway join outputs (e.g. joining on a
// low-cardinality column): rather than exhaust memory, the join fails and
// the DoD engine drops the candidate plan.
const maxJoinRows = 4_000_000

// NestedLoopJoin is the O(n·m) baseline join, kept for the ablation bench
// (DESIGN.md "hash join vs nested loop").
func NestedLoopJoin(l, r *Relation, on ...JoinPair) (*Relation, error) {
	layout, err := NewJoinLayout(l.Name, l.Schema, r.Name, r.Schema, on...)
	if err != nil {
		return nil, err
	}
	out := &Relation{Name: l.Name + "⋈" + r.Name, Schema: layout.Schema.Clone()}
	for _, lrow := range l.Rows {
		for _, rrow := range r.Rows {
			match := true
			for k := range layout.Left {
				lv, rv := lrow[layout.Left[k]], rrow[layout.Right[k]]
				if lv.IsNull() || rv.IsNull() || !lv.Equal(rv) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			if len(out.Rows) >= maxJoinRows {
				return nil, fmt.Errorf("relation: join %s would exceed %d rows", out.Name, maxJoinRows)
			}
			nr := make([]Value, 0, len(layout.Schema))
			nr = append(nr, lrow...)
			for _, j := range layout.RightKeep {
				nr = append(nr, rrow[j])
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// LeftOuterJoin keeps unmatched left rows, filling right columns with NULL.
func LeftOuterJoin(l, r *Relation, on ...JoinPair) (*Relation, error) {
	inner, err := HashJoin(l, r, on...)
	if err != nil {
		return nil, err
	}
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for k, p := range on {
		li[k] = l.Schema.IndexOf(p.Left)
		ri[k] = r.Schema.IndexOf(p.Right)
	}
	matched := make(map[string]bool, len(r.Rows))
	var buf []byte
	for _, row := range r.Rows {
		if nullAt(row, ri) {
			continue
		}
		buf = AppendRowKey(buf[:0], row, ri)
		matched[string(buf)] = true
	}
	nRight := len(inner.Schema) - len(l.Schema)
	for _, lrow := range l.Rows {
		// Null-keyed left rows never matched, so they always fall through
		// to the null-padded emit below.
		if !nullAt(lrow, li) {
			buf = AppendRowKey(buf[:0], lrow, li)
			if matched[string(buf)] {
				continue
			}
		}
		nr := make([]Value, 0, len(inner.Schema))
		nr = append(nr, lrow...)
		for i := 0; i < nRight; i++ {
			nr = append(nr, Null())
		}
		inner.Rows = append(inner.Rows, nr)
	}
	return inner, nil
}

// Map applies fn to the named column, returning a new relation with the
// column's values replaced and (optionally) its kind changed. The Mashup
// Builder uses Map to apply inferred transformation functions such as the
// inverse of f(d) (paper §1 Challenge-3).
func Map(r *Relation, name string, newKind Kind, fn func(Value) Value) (*Relation, error) {
	it, err := NewMap(NewScan(r), name, newKind, fn)
	if err != nil {
		return nil, fmt.Errorf("relation %q: no column %q", r.Name, name)
	}
	out, _ := Materialize(it)
	out.Name = r.Name
	return out, nil
}

// AddColumn appends a computed column.
func AddColumn(r *Relation, col Column, fn func(row []Value, schema Schema) Value) *Relation {
	out, _ := Materialize(NewAddColumn(NewScan(r), col, fn))
	out.Name = r.Name
	return out
}
