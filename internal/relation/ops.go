package relation

import (
	"fmt"
	"sort"
)

// Predicate decides whether a row qualifies. The row slice must not be
// retained.
type Predicate func(row []Value, schema Schema) bool

// Select returns the rows of r satisfying pred, preserving order.
func Select(r *Relation, pred Predicate) *Relation {
	out := New(r.Name+"_sel", r.Schema)
	for _, row := range r.Rows {
		if pred(row, r.Schema) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// ColEquals builds a predicate matching rows whose named column equals v.
func ColEquals(name string, v Value) Predicate {
	return func(row []Value, schema Schema) bool {
		i := schema.IndexOf(name)
		return i >= 0 && row[i].Equal(v)
	}
}

// Project returns r restricted to the named columns, in order.
func Project(r *Relation, names ...string) (*Relation, error) {
	sub, err := r.Schema.Project(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = r.Schema.IndexOf(n)
	}
	out := New(r.Name+"_proj", sub)
	out.Rows = make([][]Value, len(r.Rows))
	for j, row := range r.Rows {
		nr := make([]Value, len(idx))
		for i, k := range idx {
			nr[i] = row[k]
		}
		out.Rows[j] = nr
	}
	return out, nil
}

// Rename returns r with column old renamed to new.
func Rename(r *Relation, old, new string) (*Relation, error) {
	s, err := r.Schema.Rename(old, new)
	if err != nil {
		return nil, fmt.Errorf("relation %q: %w", r.Name, err)
	}
	out := &Relation{Name: r.Name, Schema: s, Rows: r.Rows}
	return out, nil
}

// Distinct removes duplicate rows (by canonical key), keeping first
// occurrences.
func Distinct(r *Relation) *Relation {
	out := New(r.Name+"_dist", r.Schema)
	seen := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

func rowKey(row []Value) string {
	var sb []byte
	for _, v := range row {
		sb = append(sb, v.Key()...)
		sb = append(sb, 0x1f)
	}
	return string(sb)
}

// SortBy stably sorts r by the named columns ascending. desc flips the order.
func SortBy(r *Relation, desc bool, names ...string) (*Relation, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		k := r.Schema.IndexOf(n)
		if k < 0 {
			return nil, fmt.Errorf("relation %q: no column %q", r.Name, n)
		}
		idx[i] = k
	}
	out := r.Clone()
	sort.SliceStable(out.Rows, func(a, b int) bool {
		for _, k := range idx {
			c := out.Rows[a][k].Compare(out.Rows[b][k])
			if c != 0 {
				if desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return out, nil
}

// Limit returns the first n rows of r.
func Limit(r *Relation, n int) *Relation {
	if n > len(r.Rows) {
		n = len(r.Rows)
	}
	out := New(r.Name+"_lim", r.Schema)
	out.Rows = r.Rows[:n]
	return out
}

// Union appends the rows of b to a. Schemas must be equal.
func Union(a, b *Relation) (*Relation, error) {
	if !a.Schema.Equal(b.Schema) {
		return nil, fmt.Errorf("relation: union schema mismatch %s vs %s", a.Schema, b.Schema)
	}
	out := New(a.Name+"_union", a.Schema)
	out.Rows = make([][]Value, 0, len(a.Rows)+len(b.Rows))
	out.Rows = append(out.Rows, a.Rows...)
	out.Rows = append(out.Rows, b.Rows...)
	return out, nil
}

// JoinPair names the join columns on each side of a join.
type JoinPair struct {
	Left, Right string
}

// HashJoin performs an inner equi-join of l and r on the given column pairs
// using a hash table built on the right side. Right join columns are dropped
// from the output; remaining right columns that clash with left names are
// suffixed with "_r".
func HashJoin(l, r *Relation, on ...JoinPair) (*Relation, error) {
	return join(l, r, true, on...)
}

// NestedLoopJoin is the O(n·m) baseline join, kept for the ablation bench
// (DESIGN.md "hash join vs nested loop").
func NestedLoopJoin(l, r *Relation, on ...JoinPair) (*Relation, error) {
	return join(l, r, false, on...)
}

// maxJoinRows guards against runaway join outputs (e.g. joining on a
// low-cardinality column): rather than exhaust memory, the join fails and
// the DoD engine drops the candidate plan.
const maxJoinRows = 4_000_000

func join(l, r *Relation, hash bool, on ...JoinPair) (*Relation, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("relation: join needs at least one column pair")
	}
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for k, p := range on {
		li[k] = l.Schema.IndexOf(p.Left)
		ri[k] = r.Schema.IndexOf(p.Right)
		if li[k] < 0 {
			return nil, fmt.Errorf("relation: join: left %q has no column %q", l.Name, p.Left)
		}
		if ri[k] < 0 {
			return nil, fmt.Errorf("relation: join: right %q has no column %q", r.Name, p.Right)
		}
	}
	dropRight := make(map[int]bool, len(on))
	for _, k := range ri {
		dropRight[k] = true
	}
	schema := l.Schema.Clone()
	var rightKeep []int
	for j, c := range r.Schema {
		if dropRight[j] {
			continue
		}
		name := c.Name
		for schema.Has(name) {
			name += "_r"
		}
		schema = append(schema, Column{Name: name, Kind: c.Kind})
		rightKeep = append(rightKeep, j)
	}
	out := New(l.Name+"⋈"+r.Name, schema)

	var emitErr error
	emit := func(lrow, rrow []Value) {
		if len(out.Rows) >= maxJoinRows {
			emitErr = fmt.Errorf("relation: join %s would exceed %d rows", out.Name, maxJoinRows)
			return
		}
		nr := make([]Value, 0, len(schema))
		nr = append(nr, lrow...)
		for _, j := range rightKeep {
			nr = append(nr, rrow[j])
		}
		out.Rows = append(out.Rows, nr)
	}
	keyOf := func(row []Value, idx []int) string {
		var b []byte
		for _, i := range idx {
			b = append(b, row[i].Key()...)
			b = append(b, 0x1f)
		}
		return string(b)
	}

	if hash {
		ht := make(map[string][]int, len(r.Rows))
		for j, row := range r.Rows {
			skip := false
			for _, i := range ri {
				if row[i].IsNull() {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			k := keyOf(row, ri)
			ht[k] = append(ht[k], j)
		}
		for _, lrow := range l.Rows {
			skip := false
			for _, i := range li {
				if lrow[i].IsNull() {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			for _, j := range ht[keyOf(lrow, li)] {
				emit(lrow, r.Rows[j])
				if emitErr != nil {
					return nil, emitErr
				}
			}
		}
		return out, nil
	}

	for _, lrow := range l.Rows {
		for _, rrow := range r.Rows {
			match := true
			for k := range on {
				lv, rv := lrow[li[k]], rrow[ri[k]]
				if lv.IsNull() || rv.IsNull() || !lv.Equal(rv) {
					match = false
					break
				}
			}
			if match {
				emit(lrow, rrow)
				if emitErr != nil {
					return nil, emitErr
				}
			}
		}
	}
	return out, nil
}

// LeftOuterJoin keeps unmatched left rows, filling right columns with NULL.
func LeftOuterJoin(l, r *Relation, on ...JoinPair) (*Relation, error) {
	inner, err := HashJoin(l, r, on...)
	if err != nil {
		return nil, err
	}
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for k, p := range on {
		li[k] = l.Schema.IndexOf(p.Left)
		ri[k] = r.Schema.IndexOf(p.Right)
	}
	matched := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		var b []byte
		ok := true
		for _, i := range ri {
			if row[i].IsNull() {
				ok = false
				break
			}
			b = append(b, row[i].Key()...)
			b = append(b, 0x1f)
		}
		if ok {
			matched[string(b)] = true
		}
	}
	nRight := len(inner.Schema) - len(l.Schema)
	for _, lrow := range l.Rows {
		var b []byte
		ok := true
		for _, i := range li {
			if lrow[i].IsNull() {
				ok = false
				break
			}
			b = append(b, lrow[i].Key()...)
			b = append(b, 0x1f)
		}
		if ok && matched[string(b)] {
			continue
		}
		nr := make([]Value, 0, len(inner.Schema))
		nr = append(nr, lrow...)
		for i := 0; i < nRight; i++ {
			nr = append(nr, Null())
		}
		inner.Rows = append(inner.Rows, nr)
	}
	return inner, nil
}

// Map applies fn to the named column, returning a new relation with the
// column's values replaced and (optionally) its kind changed. The Mashup
// Builder uses Map to apply inferred transformation functions such as the
// inverse of f(d) (paper §1 Challenge-3).
func Map(r *Relation, name string, newKind Kind, fn func(Value) Value) (*Relation, error) {
	i := r.Schema.IndexOf(name)
	if i < 0 {
		return nil, fmt.Errorf("relation %q: no column %q", r.Name, name)
	}
	out := r.Clone()
	out.Schema[i].Kind = newKind
	for _, row := range out.Rows {
		row[i] = fn(row[i])
	}
	return out, nil
}

// AddColumn appends a computed column.
func AddColumn(r *Relation, col Column, fn func(row []Value, schema Schema) Value) *Relation {
	out := New(r.Name, append(r.Schema.Clone(), col))
	out.Rows = make([][]Value, len(r.Rows))
	for j, row := range r.Rows {
		nr := make([]Value, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, fn(row, r.Schema))
		out.Rows[j] = nr
	}
	return out
}
