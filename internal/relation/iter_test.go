package relation

// The equivalence harness pins the streaming iterator engine to the original
// eager operators, copied below verbatim as legacy* helpers. The production
// eager functions are now thin Materialize wrappers over the iterators, so
// comparing production-vs-iterator would be vacuous; comparing against the
// frozen legacy code is what actually proves "same rows, same order, same
// names, same errors" across the refactor.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// ---- frozen pre-refactor implementations ----

func legacySelect(r *Relation, pred Predicate) *Relation {
	out := New(r.Name+"_sel", r.Schema)
	for _, row := range r.Rows {
		if pred(row, r.Schema) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

func legacyProject(r *Relation, names ...string) (*Relation, error) {
	sub, err := r.Schema.Project(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = r.Schema.IndexOf(n)
	}
	out := New(r.Name+"_proj", sub)
	out.Rows = make([][]Value, len(r.Rows))
	for j, row := range r.Rows {
		nr := make([]Value, len(idx))
		for i, k := range idx {
			nr[i] = row[k]
		}
		out.Rows[j] = nr
	}
	return out, nil
}

func legacyRename(r *Relation, old, new string) (*Relation, error) {
	s, err := r.Schema.Rename(old, new)
	if err != nil {
		return nil, fmt.Errorf("relation %q: %w", r.Name, err)
	}
	return &Relation{Name: r.Name, Schema: s, Rows: r.Rows}, nil
}

func legacyRowKey(row []Value) string {
	var sb []byte
	for _, v := range row {
		sb = append(sb, v.Key()...)
		sb = append(sb, 0x1f)
	}
	return string(sb)
}

func legacyDistinct(r *Relation) *Relation {
	out := New(r.Name+"_dist", r.Schema)
	seen := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		k := legacyRowKey(row)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

func legacyLimit(r *Relation, n int) *Relation {
	if n > len(r.Rows) {
		n = len(r.Rows)
	}
	out := New(r.Name+"_lim", r.Schema)
	out.Rows = r.Rows[:n]
	return out
}

func legacyUnion(a, b *Relation) (*Relation, error) {
	if !a.Schema.Equal(b.Schema) {
		return nil, fmt.Errorf("relation: union schema mismatch %s vs %s", a.Schema, b.Schema)
	}
	out := New(a.Name+"_union", a.Schema)
	out.Rows = make([][]Value, 0, len(a.Rows)+len(b.Rows))
	out.Rows = append(out.Rows, a.Rows...)
	out.Rows = append(out.Rows, b.Rows...)
	return out, nil
}

func legacyJoin(l, r *Relation, hash bool, on ...JoinPair) (*Relation, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("relation: join needs at least one column pair")
	}
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for k, p := range on {
		li[k] = l.Schema.IndexOf(p.Left)
		ri[k] = r.Schema.IndexOf(p.Right)
		if li[k] < 0 {
			return nil, fmt.Errorf("relation: join: left %q has no column %q", l.Name, p.Left)
		}
		if ri[k] < 0 {
			return nil, fmt.Errorf("relation: join: right %q has no column %q", r.Name, p.Right)
		}
	}
	dropRight := make(map[int]bool, len(on))
	for _, k := range ri {
		dropRight[k] = true
	}
	schema := l.Schema.Clone()
	var rightKeep []int
	for j, c := range r.Schema {
		if dropRight[j] {
			continue
		}
		name := c.Name
		for schema.Has(name) {
			name += "_r"
		}
		schema = append(schema, Column{Name: name, Kind: c.Kind})
		rightKeep = append(rightKeep, j)
	}
	out := New(l.Name+"⋈"+r.Name, schema)

	var emitErr error
	emit := func(lrow, rrow []Value) {
		if len(out.Rows) >= maxJoinRows {
			emitErr = fmt.Errorf("relation: join %s would exceed %d rows", out.Name, maxJoinRows)
			return
		}
		nr := make([]Value, 0, len(schema))
		nr = append(nr, lrow...)
		for _, j := range rightKeep {
			nr = append(nr, rrow[j])
		}
		out.Rows = append(out.Rows, nr)
	}
	keyOf := func(row []Value, idx []int) string {
		var b []byte
		for _, i := range idx {
			b = append(b, row[i].Key()...)
			b = append(b, 0x1f)
		}
		return string(b)
	}

	if hash {
		ht := make(map[string][]int, len(r.Rows))
		for j, row := range r.Rows {
			skip := false
			for _, i := range ri {
				if row[i].IsNull() {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			k := keyOf(row, ri)
			ht[k] = append(ht[k], j)
		}
		for _, lrow := range l.Rows {
			skip := false
			for _, i := range li {
				if lrow[i].IsNull() {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			for _, j := range ht[keyOf(lrow, li)] {
				emit(lrow, r.Rows[j])
				if emitErr != nil {
					return nil, emitErr
				}
			}
		}
		return out, nil
	}

	for _, lrow := range l.Rows {
		for _, rrow := range r.Rows {
			match := true
			for k := range on {
				lv, rv := lrow[li[k]], rrow[ri[k]]
				if lv.IsNull() || rv.IsNull() || !lv.Equal(rv) {
					match = false
					break
				}
			}
			if match {
				emit(lrow, rrow)
				if emitErr != nil {
					return nil, emitErr
				}
			}
		}
	}
	return out, nil
}

func legacyLeftOuterJoin(l, r *Relation, on ...JoinPair) (*Relation, error) {
	inner, err := legacyJoin(l, r, true, on...)
	if err != nil {
		return nil, err
	}
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for k, p := range on {
		li[k] = l.Schema.IndexOf(p.Left)
		ri[k] = r.Schema.IndexOf(p.Right)
	}
	matched := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		var b []byte
		ok := true
		for _, i := range ri {
			if row[i].IsNull() {
				ok = false
				break
			}
			b = append(b, row[i].Key()...)
			b = append(b, 0x1f)
		}
		if ok {
			matched[string(b)] = true
		}
	}
	nRight := len(inner.Schema) - len(l.Schema)
	for _, lrow := range l.Rows {
		var b []byte
		ok := true
		for _, i := range li {
			if lrow[i].IsNull() {
				ok = false
				break
			}
			b = append(b, lrow[i].Key()...)
			b = append(b, 0x1f)
		}
		if ok && matched[string(b)] {
			continue
		}
		nr := make([]Value, 0, len(inner.Schema))
		nr = append(nr, lrow...)
		for i := 0; i < nRight; i++ {
			nr = append(nr, Null())
		}
		inner.Rows = append(inner.Rows, nr)
	}
	return inner, nil
}

func legacyMap(r *Relation, name string, newKind Kind, fn func(Value) Value) (*Relation, error) {
	i := r.Schema.IndexOf(name)
	if i < 0 {
		return nil, fmt.Errorf("relation %q: no column %q", r.Name, name)
	}
	out := r.Clone()
	out.Schema[i].Kind = newKind
	for _, row := range out.Rows {
		row[i] = fn(row[i])
	}
	return out, nil
}

func legacyAddColumn(r *Relation, col Column, fn func(row []Value, schema Schema) Value) *Relation {
	out := New(r.Name, append(r.Schema.Clone(), col))
	out.Rows = make([][]Value, len(r.Rows))
	for j, row := range r.Rows {
		nr := make([]Value, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, fn(row, r.Schema))
		out.Rows[j] = nr
	}
	return out
}

// ---- random relation generator ----

// randValue draws from a deliberately tiny domain so joins hit duplicate keys
// and Distinct sees duplicate rows.
func randValue(rng *rand.Rand, k Kind) Value {
	if rng.Float64() < 0.15 {
		return Null()
	}
	switch k {
	case KindInt:
		return Int(int64(rng.Intn(5)))
	case KindFloat:
		return Float([]float64{0, 0.5, -1.25, 3.75}[rng.Intn(4)])
	case KindString:
		return String_([]string{"a", "b", "cc", ""}[rng.Intn(4)])
	case KindBool:
		return Bool(rng.Intn(2) == 0)
	case KindTime:
		return Time(time.Unix(int64(1700000000+rng.Intn(3)*86400), int64(rng.Intn(2))).UTC())
	default:
		return Null()
	}
}

var testKinds = []Kind{KindInt, KindFloat, KindString, KindBool, KindTime}

// randRel builds a relation named name whose first column is always an int
// key (so any two generated relations are joinable on column 0) followed by
// 0–4 columns of random kinds, holding 0–30 rows of small-domain values.
func randRel(rng *rand.Rand, name, keyCol string) *Relation {
	ncols := rng.Intn(5)
	schema := Schema{Col(keyCol, KindInt)}
	for i := 0; i < ncols; i++ {
		schema = append(schema, Col(fmt.Sprintf("%s_c%d", name, i), testKinds[rng.Intn(len(testKinds))]))
	}
	r := New(name, schema)
	nrows := rng.Intn(31)
	for j := 0; j < nrows; j++ {
		row := make([]Value, len(schema))
		for i, c := range schema {
			row[i] = randValue(rng, c.Kind)
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// mustSameRel fails the test unless got and want match on name, schema
// (names and kinds), and every row cell in order.
func mustSameRel(t *testing.T, op string, got, want *Relation) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("%s: name %q != legacy %q", op, got.Name, want.Name)
	}
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("%s: schema %s != legacy %s", op, got.Schema, want.Schema)
	}
	for i := range got.Schema {
		if got.Schema[i].Name != want.Schema[i].Name {
			t.Fatalf("%s: column %d named %q != legacy %q", op, i, got.Schema[i].Name, want.Schema[i].Name)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows != legacy %d rows", op, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if !got.Rows[i][j].Equal(want.Rows[i][j]) {
				t.Fatalf("%s: row %d col %d: %s != legacy %s", op, i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// TestStreamingMatchesLegacyEager is the property harness of the refactor:
// across many random relations, every streaming operator must agree with the
// frozen eager implementation row for row, including order and result names.
func TestStreamingMatchesLegacyEager(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			l := randRel(rng, "l", "k")
			r := randRel(rng, "r", "k")

			pred := func(row []Value, s Schema) bool {
				return !row[0].IsNull() && row[0].AsFloat() >= 2
			}
			mustSameRel(t, "Select", Select(l, pred), legacySelect(l, pred))

			// Project onto a shuffled subset of columns.
			names := make([]string, len(l.Schema))
			for i, c := range l.Schema {
				names[i] = c.Name
			}
			rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
			names = names[:1+rng.Intn(len(names))]
			gotP, errP := Project(l, names...)
			wantP, errPL := legacyProject(l, names...)
			if (errP == nil) != (errPL == nil) {
				t.Fatalf("Project: err %v vs legacy %v", errP, errPL)
			}
			mustSameRel(t, "Project", gotP, wantP)

			gotR, err := Rename(l, "k", "kk")
			if err != nil {
				t.Fatal(err)
			}
			wantR, _ := legacyRename(l, "k", "kk")
			mustSameRel(t, "Rename", gotR, wantR)

			n := rng.Intn(len(l.Rows) + 3)
			mustSameRel(t, "Limit", Limit(l, n), legacyLimit(l, n))

			l2 := l.Clone()
			gotU, err := Union(l, l2)
			if err != nil {
				t.Fatal(err)
			}
			wantU, _ := legacyUnion(l, l2)
			mustSameRel(t, "Union", gotU, wantU)

			mustSameRel(t, "Distinct", Distinct(l), legacyDistinct(l))

			fn := func(v Value) Value {
				if v.IsNull() {
					return v
				}
				return Float(v.AsFloat() * 2)
			}
			gotM, err := Map(l, "k", KindFloat, fn)
			if err != nil {
				t.Fatal(err)
			}
			wantM, _ := legacyMap(l, "k", KindFloat, fn)
			mustSameRel(t, "Map", gotM, wantM)

			add := func(row []Value, s Schema) Value {
				if row[0].IsNull() {
					return Null()
				}
				return Int(int64(len(row)))
			}
			mustSameRel(t, "AddColumn",
				AddColumn(l, Col("extra", KindInt), add),
				legacyAddColumn(l, Col("extra", KindInt), add))

			on := []JoinPair{{Left: "k", Right: "k"}}
			gotJ, err := HashJoin(l, r, on...)
			if err != nil {
				t.Fatal(err)
			}
			wantJ, _ := legacyJoin(l, r, true, on...)
			mustSameRel(t, "HashJoin", gotJ, wantJ)

			gotN, err := NestedLoopJoin(l, r, on...)
			if err != nil {
				t.Fatal(err)
			}
			wantN, _ := legacyJoin(l, r, false, on...)
			mustSameRel(t, "NestedLoopJoin", gotN, wantN)
			// Hash and nested-loop joins promise identical output order.
			mustSameRel(t, "HashJoin≡NestedLoopJoin", gotJ, wantN)

			gotL, err := LeftOuterJoin(l, r, on...)
			if err != nil {
				t.Fatal(err)
			}
			wantL, _ := legacyLeftOuterJoin(l, r, on...)
			mustSameRel(t, "LeftOuterJoin", gotL, wantL)

			// Fused pipeline: one materialization over a stacked iterator.
			it := NewSelect(NewScan(l), pred)
			it, err = NewProject(it, names...)
			if err == nil {
				it = NewLimit(it, n)
				gotPipe, err := Materialize(it)
				if err != nil {
					t.Fatal(err)
				}
				wantPipe := legacyLimit(legacyMust(legacyProject(legacySelect(l, pred), names...)), n)
				gotPipe.Name = wantPipe.Name
				mustSameRel(t, "fused pipeline", gotPipe, wantPipe)
			}
		})
	}
}

func legacyMust(r *Relation, err error) *Relation {
	if err != nil {
		panic(err)
	}
	return r
}

// TestJoinCollisionSuffix pins the "_r"-suffix cascade: right columns that
// collide with an output name keep appending "_r" until unique, including
// against columns already suffixed in the same join.
func TestJoinCollisionSuffix(t *testing.T) {
	l := New("l", NewSchema(Col("k", KindInt), Col("x", KindInt), Col("x_r", KindInt)))
	r := New("r", NewSchema(Col("k", KindInt), Col("x", KindFloat), Col("x_r", KindString)))
	l.MustAppend(Int(1), Int(10), Int(11))
	r.MustAppend(Int(1), Float(0.5), String_("s"))

	got, err := HashJoin(l, r, JoinPair{"k", "k"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyJoin(l, r, true, JoinPair{"k", "k"})
	if err != nil {
		t.Fatal(err)
	}
	mustSameRel(t, "collision join", got, want)
	names := make([]string, len(got.Schema))
	for i, c := range got.Schema {
		names[i] = c.Name
	}
	sort.Strings(names)
	if fmt.Sprint(names) != "[k x x_r x_r_r x_r_r_r]" {
		t.Fatalf("collision suffixes = %v", names)
	}
}

// TestLimitOwnsRows is the regression for the aliasing bug: Limit used to
// return a sub-slice of the source's backing array, so appending through the
// result clobbered the source's later rows.
func TestLimitOwnsRows(t *testing.T) {
	r := New("src", NewSchema(Col("a", KindInt)))
	r.Rows = make([][]Value, 0, 8) // spare capacity makes the old clobbering deterministic
	r.Rows = append(r.Rows, []Value{Int(1)}, []Value{Int(2)}, []Value{Int(3)})

	out := Limit(r, 1)
	out.Rows = append(out.Rows, []Value{Int(99)})

	if got := r.Rows[1][0]; !got.Equal(Int(2)) {
		t.Fatalf("Limit aliased source storage: r.Rows[1][0] = %s, want 2", got)
	}
}

// TestRenameOwnsRows is the companion regression: Rename used to share the
// source's Rows slice header outright.
func TestRenameOwnsRows(t *testing.T) {
	r := New("src", NewSchema(Col("a", KindInt)))
	r.Rows = make([][]Value, 0, 8)
	r.Rows = append(r.Rows, []Value{Int(1)})

	out, err := Rename(r, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	out.Rows = append(out.Rows, []Value{Int(99)})

	if len(r.Rows) != 1 {
		t.Fatalf("Rename aliased source slice: source now has %d rows", len(r.Rows))
	}
	if cap(out.Rows) > 0 && len(r.Rows) > 1 {
		t.Fatal("Rename shares backing array with source")
	}
}

// TestIterErrorParity pins the exact error strings consumers (and tests
// downstream of them) match on.
func TestIterErrorParity(t *testing.T) {
	a := New("a", NewSchema(Col("x", KindInt)))
	b := New("b", NewSchema(Col("y", KindFloat)))

	if _, err := Union(a, b); err == nil || err.Error() != fmt.Sprintf("relation: union schema mismatch %s vs %s", a.Schema, b.Schema) {
		t.Fatalf("union mismatch error = %v", err)
	}
	if _, err := HashJoin(a, b); err == nil || err.Error() != "relation: join needs at least one column pair" {
		t.Fatalf("empty-pairs error = %v", err)
	}
	if _, err := HashJoin(a, b, JoinPair{"nope", "y"}); err == nil || err.Error() != `relation: join: left "a" has no column "nope"` {
		t.Fatalf("left-missing error = %v", err)
	}
	if _, err := HashJoin(a, b, JoinPair{"x", "nope"}); err == nil || err.Error() != `relation: join: right "b" has no column "nope"` {
		t.Fatalf("right-missing error = %v", err)
	}
	if _, err := Map(a, "nope", KindInt, func(v Value) Value { return v }); err == nil || err.Error() != `relation "a": no column "nope"` {
		t.Fatalf("map-missing error = %v", err)
	}
	if _, err := Rename(a, "nope", "z"); err == nil {
		t.Fatal("rename of missing column should fail")
	}
}

// TestMaterializeReportsStreamCounters checks the sampled metrics sources
// move when pipelines drain.
func TestMaterializeReportsStreamCounters(t *testing.T) {
	rows0, mats0 := StreamCounters()
	r := mkBenchRel(10)
	if _, err := Materialize(NewScan(r)); err != nil {
		t.Fatal(err)
	}
	rows1, mats1 := StreamCounters()
	if rows1 < rows0+10 {
		t.Fatalf("rows streamed %d -> %d, want +10", rows0, rows1)
	}
	if mats1 < mats0+1 {
		t.Fatalf("materializations %d -> %d, want +1", mats0, mats1)
	}
}
