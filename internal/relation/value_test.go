package relation

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(7), KindInt},
		{Float(3.5), KindFloat},
		{String_("x"), KindString},
		{Bool(true), KindBool},
		{Time(time.Unix(0, 0)), KindTime},
		{Multi(Sourced{"s", Int(1)}), KindMulti},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueEqualNumericCrossKind(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not equal Float(2.5)")
	}
	if Int(2).Equal(String_("2")) {
		t.Error("Int(2) should not equal String(\"2\")")
	}
}

func TestValueCompareOrdering(t *testing.T) {
	if Null().Compare(Int(0)) >= 0 {
		t.Error("NULL must sort before any value")
	}
	if Int(1).Compare(Int(2)) >= 0 {
		t.Error("1 < 2")
	}
	if Float(2.5).Compare(Int(2)) <= 0 {
		t.Error("2.5 > 2")
	}
	if String_("a").Compare(String_("b")) >= 0 {
		t.Error("a < b")
	}
	if Bool(false).Compare(Bool(true)) >= 0 {
		t.Error("false < true")
	}
	t0, t1 := time.Unix(0, 0), time.Unix(1, 0)
	if Time(t0).Compare(Time(t1)) >= 0 {
		t.Error("earlier time sorts first")
	}
}

func TestValueKeyNumericCoalesce(t *testing.T) {
	if Int(3).Key() != Float(3).Key() {
		t.Error("Int(3) and Float(3) must share a hash key for joins")
	}
	if Int(3).Key() == Int(4).Key() {
		t.Error("distinct ints must have distinct keys")
	}
	if String_("3").Key() == Int(3).Key() {
		t.Error("string \"3\" must not collide with int 3")
	}
}

func TestParseRoundTrip(t *testing.T) {
	vals := []Value{
		Int(-42), Float(2.75), String_("hello world"), Bool(true),
		Time(time.Date(2020, 7, 1, 12, 0, 0, 0, time.UTC)),
	}
	for _, v := range vals {
		got, err := ParseValue(v.Kind(), v.String())
		if err != nil {
			t.Fatalf("parse %v: %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	if _, err := ParseValue(KindInt, "abc"); err == nil {
		t.Error("expected error parsing int \"abc\"")
	}
	if _, err := ParseValue(KindBool, "maybe"); err == nil {
		t.Error("expected error parsing bool \"maybe\"")
	}
	if v, err := ParseValue(KindInt, ""); err != nil || !v.IsNull() {
		t.Error("empty string must parse to NULL")
	}
}

func TestInferValue(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"42", KindInt},
		{"4.5", KindFloat},
		{"true", KindBool},
		{"2020-07-01T00:00:00Z", KindTime},
		{"chicago", KindString},
		{"", KindNull},
	}
	for _, c := range cases {
		if got := InferValue(c.in).Kind(); got != c.kind {
			t.Errorf("InferValue(%q).Kind() = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestFlattenMultiMajority(t *testing.T) {
	m := Multi(
		Sourced{"a", Float(20)},
		Sourced{"b", Float(21)},
		Sourced{"c", Float(20)},
	)
	if got := m.FlattenMulti(); !got.Equal(Float(20)) {
		t.Errorf("majority vote = %v, want 20", got)
	}
	// Tie: break toward lexicographically smallest source.
	tie := Multi(Sourced{"z", Float(1)}, Sourced{"a", Float(2)})
	if got := tie.FlattenMulti(); !got.Equal(Float(2)) {
		t.Errorf("tie break = %v, want value from source a (2)", got)
	}
	if !Multi().FlattenMulti().IsNull() {
		t.Error("empty multi flattens to NULL")
	}
	if got := Int(5).FlattenMulti(); !got.Equal(Int(5)) {
		t.Error("non-multi passes through")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindNull; k <= KindMulti; k++ {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v,%v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Error("ParseKind must reject unknown names")
	}
}

// Property: Compare is antisymmetric and Equal implies Compare==0 for
// generated numeric/string values.
func TestValueCompareProperties(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		va, vb := Int(a), Int(b)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		sa, sb := String_(s1), String_(s2)
		if sa.Compare(sb) != -sb.Compare(sa) {
			return false
		}
		if s1 == s2 && sa.Compare(sb) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective on ints within float64-exact range.
func TestValueKeyInjective(t *testing.T) {
	f := func(a, b int32) bool {
		ka, kb := Int(int64(a)).Key(), Int(int64(b)).Key()
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ParseValue(v.Kind(), v.String()) round-trips floats.
func TestFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := Float(x)
		got, err := ParseValue(KindFloat, v.String())
		return err == nil && got.AsFloat() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
