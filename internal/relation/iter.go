package relation

import (
	"fmt"
	"sync/atomic"
)

// Iter is a single-use Volcano-style pull iterator over rows. Next returns
// the next row and true, or (nil, false) when the stream is exhausted or an
// operator failed mid-stream (check IterErr after draining). Schema is fixed
// for the iterator's lifetime. Close releases child iterators and is
// idempotent; Materialize calls it for you.
//
// Ownership: rows returned by Next may alias the backing relation's storage
// (scan, select, limit, and union pass row references through), so callers
// must not mutate them in place. Operators that change row shape — project,
// map, add-column, join — always return freshly allocated rows. See the
// package documentation for the full retention rules.
type Iter interface {
	Next() ([]Value, bool)
	Schema() Schema
	Close()
}

// errIter is implemented by iterators that can fail mid-stream.
type errIter interface{ Err() error }

// IterErr returns the first error it hit mid-stream, or nil. A false from
// Next is ambiguous between exhaustion and failure; sinks must check IterErr
// before trusting the drained rows.
func IterErr(it Iter) error {
	if e, ok := it.(errIter); ok {
		return e.Err()
	}
	return nil
}

// sizeHinter lets operators with a known output bound pre-size sinks and
// hash tables. 0 means unknown.
type sizeHinter interface{ sizeHint() int }

func sizeHintOf(it Iter) int {
	if h, ok := it.(sizeHinter); ok {
		return h.sizeHint()
	}
	return 0
}

// streamStats holds process-wide streaming totals, sampled at metrics-scrape
// time by internal/engine (relation_rows_streamed_total and friends). They
// are bumped in batches at materialization, not per row, so the hot loop
// stays counter-free.
var streamStats struct {
	rows             atomic.Uint64
	materializations atomic.Uint64
}

// StreamCounters reports the process-wide number of rows drained through
// Materialize (and external sinks that call RecordMaterialization) and the
// number of materializations performed.
func StreamCounters() (rowsStreamed, materializations uint64) {
	return streamStats.rows.Load(), streamStats.materializations.Load()
}

// RecordMaterialization lets sinks outside this package (e.g. provenance's
// lineage-carrying Materialize) report a drain of n rows into the shared
// streaming counters.
func RecordMaterialization(n int) {
	streamStats.rows.Add(uint64(n))
	streamStats.materializations.Add(1)
}

// Materialize drains it into a fresh *Relation, preserving row order. The
// result's Name is left empty for the caller to set. The iterator is closed
// before returning; a mid-stream operator error (e.g. the maxJoinRows guard)
// is returned instead of a partial relation.
func Materialize(it Iter) (*Relation, error) {
	defer it.Close()
	out := &Relation{Schema: it.Schema().Clone()}
	if n := sizeHintOf(it); n > 0 {
		out.Rows = make([][]Value, 0, n)
	}
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		out.Rows = append(out.Rows, row)
	}
	if err := IterErr(it); err != nil {
		return nil, err
	}
	RecordMaterialization(len(out.Rows))
	return out, nil
}

// nullAt reports whether any of the indexed cells is NULL (null join keys
// never match, mirroring SQL equi-join semantics).
func nullAt(row []Value, idx []int) bool {
	for _, i := range idx {
		if row[i].IsNull() {
			return true
		}
	}
	return false
}

// ---- scan ----

type scanIter struct {
	rel *Relation
	pos int
}

// NewScan streams the rows of r in order. Rows are passed by reference.
func NewScan(r *Relation) Iter { return &scanIter{rel: r} }

func (s *scanIter) Next() ([]Value, bool) {
	if s.pos >= len(s.rel.Rows) {
		return nil, false
	}
	row := s.rel.Rows[s.pos]
	s.pos++
	return row, true
}
func (s *scanIter) Schema() Schema { return s.rel.Schema }
func (s *scanIter) Close()         {}
func (s *scanIter) sizeHint() int  { return len(s.rel.Rows) }

// ---- select ----

type selectIter struct {
	src    Iter
	schema Schema
	pred   Predicate
}

// NewSelect streams the rows of src satisfying pred, preserving order.
func NewSelect(src Iter, pred Predicate) Iter {
	return &selectIter{src: src, schema: src.Schema(), pred: pred}
}

func (s *selectIter) Next() ([]Value, bool) {
	for {
		row, ok := s.src.Next()
		if !ok {
			return nil, false
		}
		if s.pred(row, s.schema) {
			return row, true
		}
	}
}
func (s *selectIter) Schema() Schema { return s.schema }
func (s *selectIter) Close()         { s.src.Close() }
func (s *selectIter) Err() error     { return IterErr(s.src) }

// ---- project ----

type projectIter struct {
	src    Iter
	schema Schema
	idx    []int
}

// NewProject streams src restricted to the named columns, in order. Output
// rows are freshly allocated.
func NewProject(src Iter, names ...string) (Iter, error) {
	sub, err := src.Schema().Project(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = src.Schema().IndexOf(n)
	}
	return &projectIter{src: src, schema: sub, idx: idx}, nil
}

func (p *projectIter) Next() ([]Value, bool) {
	row, ok := p.src.Next()
	if !ok {
		return nil, false
	}
	nr := make([]Value, len(p.idx))
	for i, k := range p.idx {
		nr[i] = row[k]
	}
	return nr, true
}
func (p *projectIter) Schema() Schema { return p.schema }
func (p *projectIter) Close()         { p.src.Close() }
func (p *projectIter) Err() error     { return IterErr(p.src) }
func (p *projectIter) sizeHint() int  { return sizeHintOf(p.src) }

// ---- rename ----

type renameIter struct {
	src    Iter
	schema Schema
}

// NewRename streams src with column old renamed to new. Rows pass through
// unchanged.
func NewRename(src Iter, old, new string) (Iter, error) {
	s, err := src.Schema().Rename(old, new)
	if err != nil {
		return nil, err
	}
	return &renameIter{src: src, schema: s}, nil
}

func (r *renameIter) Next() ([]Value, bool) { return r.src.Next() }
func (r *renameIter) Schema() Schema        { return r.schema }
func (r *renameIter) Close()                { r.src.Close() }
func (r *renameIter) Err() error            { return IterErr(r.src) }
func (r *renameIter) sizeHint() int         { return sizeHintOf(r.src) }

// ---- limit ----

type limitIter struct {
	src  Iter
	left int
}

// NewLimit streams at most n rows of src.
func NewLimit(src Iter, n int) Iter {
	if n < 0 {
		n = 0
	}
	return &limitIter{src: src, left: n}
}

func (l *limitIter) Next() ([]Value, bool) {
	if l.left <= 0 {
		return nil, false
	}
	row, ok := l.src.Next()
	if !ok {
		l.left = 0
		return nil, false
	}
	l.left--
	return row, true
}
func (l *limitIter) Schema() Schema { return l.src.Schema() }
func (l *limitIter) Close()         { l.src.Close() }
func (l *limitIter) Err() error     { return IterErr(l.src) }
func (l *limitIter) sizeHint() int {
	if h := sizeHintOf(l.src); h > 0 && h < l.left {
		return h
	}
	return l.left
}

// ---- union ----

type unionIter struct {
	a, b Iter
	onB  bool
}

// NewUnion streams the rows of a then b. Schemas must be equal.
func NewUnion(a, b Iter) (Iter, error) {
	if !a.Schema().Equal(b.Schema()) {
		return nil, fmt.Errorf("relation: union schema mismatch %s vs %s", a.Schema(), b.Schema())
	}
	return &unionIter{a: a, b: b}, nil
}

func (u *unionIter) Next() ([]Value, bool) {
	if !u.onB {
		if row, ok := u.a.Next(); ok {
			return row, true
		}
		if err := IterErr(u.a); err != nil {
			return nil, false
		}
		u.onB = true
	}
	return u.b.Next()
}
func (u *unionIter) Schema() Schema { return u.a.Schema() }
func (u *unionIter) Close()         { u.a.Close(); u.b.Close() }
func (u *unionIter) Err() error {
	if err := IterErr(u.a); err != nil {
		return err
	}
	return IterErr(u.b)
}
func (u *unionIter) sizeHint() int { return sizeHintOf(u.a) + sizeHintOf(u.b) }

// ---- map (single column) ----

type mapIter struct {
	src    Iter
	schema Schema
	col    int
	fn     func(Value) Value
}

// NewMap streams src with fn applied to the named column, optionally changing
// its kind. Output rows are freshly allocated copies.
func NewMap(src Iter, name string, newKind Kind, fn func(Value) Value) (Iter, error) {
	i := src.Schema().IndexOf(name)
	if i < 0 {
		return nil, fmt.Errorf("relation: map: no column %q", name)
	}
	s := src.Schema().Clone()
	s[i].Kind = newKind
	return &mapIter{src: src, schema: s, col: i, fn: fn}, nil
}

func (m *mapIter) Next() ([]Value, bool) {
	row, ok := m.src.Next()
	if !ok {
		return nil, false
	}
	nr := make([]Value, len(row))
	copy(nr, row)
	nr[m.col] = m.fn(nr[m.col])
	return nr, true
}
func (m *mapIter) Schema() Schema { return m.schema }
func (m *mapIter) Close()         { m.src.Close() }
func (m *mapIter) Err() error     { return IterErr(m.src) }
func (m *mapIter) sizeHint() int  { return sizeHintOf(m.src) }

// ---- map (whole row) ----

type mapRowsIter struct {
	src    Iter
	schema Schema
	fn     func(row []Value) []Value
}

// NewMapRows streams src through a whole-row transform producing rows of the
// given schema. fn must return a fresh row (it may read but not retain the
// input row). Fusion's resolution operators are the main client.
func NewMapRows(src Iter, schema Schema, fn func(row []Value) []Value) Iter {
	return &mapRowsIter{src: src, schema: schema, fn: fn}
}

func (m *mapRowsIter) Next() ([]Value, bool) {
	row, ok := m.src.Next()
	if !ok {
		return nil, false
	}
	return m.fn(row), true
}
func (m *mapRowsIter) Schema() Schema { return m.schema }
func (m *mapRowsIter) Close()         { m.src.Close() }
func (m *mapRowsIter) Err() error     { return IterErr(m.src) }
func (m *mapRowsIter) sizeHint() int  { return sizeHintOf(m.src) }

// ---- add-column ----

type addColumnIter struct {
	src       Iter
	srcSchema Schema
	schema    Schema
	fn        func(row []Value, schema Schema) Value
}

// NewAddColumn streams src with a computed column appended. fn sees the
// source row and source schema, exactly like the eager AddColumn.
func NewAddColumn(src Iter, col Column, fn func(row []Value, schema Schema) Value) Iter {
	srcSchema := src.Schema()
	return &addColumnIter{
		src:       src,
		srcSchema: srcSchema,
		schema:    append(srcSchema.Clone(), col),
		fn:        fn,
	}
}

func (a *addColumnIter) Next() ([]Value, bool) {
	row, ok := a.src.Next()
	if !ok {
		return nil, false
	}
	nr := make([]Value, 0, len(row)+1)
	nr = append(nr, row...)
	nr = append(nr, a.fn(row, a.srcSchema))
	return nr, true
}
func (a *addColumnIter) Schema() Schema { return a.schema }
func (a *addColumnIter) Close()         { a.src.Close() }
func (a *addColumnIter) Err() error     { return IterErr(a.src) }
func (a *addColumnIter) sizeHint() int  { return sizeHintOf(a.src) }

// ---- hash join ----

// JoinLayout is the resolved shape of an equi-join: the output schema (left
// columns, then kept right columns with collision suffixes), the join-column
// indexes on each side, and the indexes of the right columns that survive
// into the output. It is shared by the streaming join, the planner, and
// provenance's lineage-carrying join so all three agree byte-for-byte on
// naming and order.
type JoinLayout struct {
	Schema    Schema
	Left      []int // left join-column indexes, aligned with `on`
	Right     []int // right join-column indexes, aligned with `on`
	RightKeep []int // right columns kept in the output, in schema order
}

// NewJoinLayout resolves the join columns and output schema for joining the
// named left and right schemas. Right join columns are dropped from the
// output; remaining right columns that clash with an output name so far are
// suffixed with "_r" (repeatedly, until unique).
func NewJoinLayout(lname string, l Schema, rname string, r Schema, on ...JoinPair) (JoinLayout, error) {
	if len(on) == 0 {
		return JoinLayout{}, fmt.Errorf("relation: join needs at least one column pair")
	}
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for k, p := range on {
		li[k] = l.IndexOf(p.Left)
		ri[k] = r.IndexOf(p.Right)
		if li[k] < 0 {
			return JoinLayout{}, fmt.Errorf("relation: join: left %q has no column %q", lname, p.Left)
		}
		if ri[k] < 0 {
			return JoinLayout{}, fmt.Errorf("relation: join: right %q has no column %q", rname, p.Right)
		}
	}
	dropRight := make(map[int]bool, len(on))
	for _, k := range ri {
		dropRight[k] = true
	}
	schema := l.Clone()
	var rightKeep []int
	for j, c := range r {
		if dropRight[j] {
			continue
		}
		name := c.Name
		for schema.Has(name) {
			name += "_r"
		}
		schema = append(schema, Column{Name: name, Kind: c.Kind})
		rightKeep = append(rightKeep, j)
	}
	return JoinLayout{Schema: schema, Left: li, Right: ri, RightKeep: rightKeep}, nil
}

type hashJoinIter struct {
	left, right Iter
	layout      JoinLayout
	outName     string
	built       bool
	table       map[string][][]Value // join key → kept-right projections, build order
	lrow        []Value              // current probe row
	pending     [][]Value            // its matches
	pi          int
	keyBuf      []byte
	emitted     int
	err         error
	closed      bool
}

// NewHashJoin streams the inner equi-join of l and r on the given column
// pairs. The right side is drained once into a pre-sized hash table holding
// only the kept-right column projections; left rows are then probed lazily
// in order, so output order matches the eager HashJoin exactly. lname and
// rname feed error messages and the maxJoinRows guard's output name.
func NewHashJoin(l, r Iter, lname, rname string, on ...JoinPair) (Iter, error) {
	layout, err := NewJoinLayout(lname, l.Schema(), rname, r.Schema(), on...)
	if err != nil {
		return nil, err
	}
	return &hashJoinIter{left: l, right: r, layout: layout, outName: lname + "⋈" + rname}, nil
}

func (j *hashJoinIter) build() {
	j.built = true
	j.table = make(map[string][][]Value, sizeHintOf(j.right))
	for {
		rrow, ok := j.right.Next()
		if !ok {
			j.err = IterErr(j.right)
			return
		}
		if nullAt(rrow, j.layout.Right) {
			continue
		}
		j.keyBuf = AppendRowKey(j.keyBuf[:0], rrow, j.layout.Right)
		proj := make([]Value, len(j.layout.RightKeep))
		for i, k := range j.layout.RightKeep {
			proj[i] = rrow[k]
		}
		k := string(j.keyBuf)
		j.table[k] = append(j.table[k], proj)
	}
}

func (j *hashJoinIter) Next() ([]Value, bool) {
	if j.err != nil {
		return nil, false
	}
	if !j.built {
		j.build()
		if j.err != nil {
			return nil, false
		}
	}
	for {
		if j.pi < len(j.pending) {
			if j.emitted >= maxJoinRows {
				j.err = fmt.Errorf("relation: join %s would exceed %d rows", j.outName, maxJoinRows)
				return nil, false
			}
			proj := j.pending[j.pi]
			j.pi++
			nr := make([]Value, 0, len(j.layout.Schema))
			nr = append(nr, j.lrow...)
			nr = append(nr, proj...)
			j.emitted++
			return nr, true
		}
		lrow, ok := j.left.Next()
		if !ok {
			j.err = IterErr(j.left)
			return nil, false
		}
		if nullAt(lrow, j.layout.Left) {
			continue
		}
		j.keyBuf = AppendRowKey(j.keyBuf[:0], lrow, j.layout.Left)
		matches := j.table[string(j.keyBuf)]
		if len(matches) == 0 {
			continue
		}
		j.lrow = lrow
		j.pending = matches
		j.pi = 0
	}
}

func (j *hashJoinIter) Schema() Schema { return j.layout.Schema }
func (j *hashJoinIter) Err() error     { return j.err }
func (j *hashJoinIter) Close() {
	if j.closed {
		return
	}
	j.closed = true
	j.left.Close()
	j.right.Close()
	j.table = nil
}
