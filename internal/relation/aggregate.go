package relation

import (
	"fmt"
	"sort"
)

// AggKind enumerates the supported aggregate functions.
type AggKind uint8

// Supported aggregates.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL-ish name of the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(a))
	}
}

// Agg describes one aggregate over an input column, with an output name.
type Agg struct {
	Kind AggKind
	Col  string // input column; ignored for AggCount
	As   string // output column name
}

// GroupBy groups r by the key columns and computes the aggregates per group.
// Output schema: key columns then one column per aggregate. Groups appear in
// order of first occurrence. Count yields int; sum/avg/min/max yield float
// and ignore NULLs.
func GroupBy(r *Relation, keys []string, aggs []Agg) (*Relation, error) {
	ki := make([]int, len(keys))
	for i, k := range keys {
		ki[i] = r.Schema.IndexOf(k)
		if ki[i] < 0 {
			return nil, fmt.Errorf("relation %q: group by: no column %q", r.Name, k)
		}
	}
	ai := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Kind == AggCount {
			ai[i] = -1
			continue
		}
		ai[i] = r.Schema.IndexOf(a.Col)
		if ai[i] < 0 {
			return nil, fmt.Errorf("relation %q: aggregate %s: no column %q", r.Name, a.Kind, a.Col)
		}
	}

	schema := make(Schema, 0, len(keys)+len(aggs))
	for _, i := range ki {
		schema = append(schema, r.Schema[i])
	}
	for _, a := range aggs {
		kind := KindFloat
		if a.Kind == AggCount {
			kind = KindInt
		}
		name := a.As
		if name == "" {
			name = a.Kind.String() + "_" + a.Col
		}
		schema = append(schema, Column{Name: name, Kind: kind})
	}

	type acc struct {
		keyRow []Value
		n      []int64   // non-null count per agg
		sum    []float64 // running sum
		min    []float64
		max    []float64
		rows   int64
	}
	groups := map[string]*acc{}
	var order []string
	var kb []byte
	for _, row := range r.Rows {
		kb = AppendRowKey(kb[:0], row, ki)
		k := string(kb)
		g, ok := groups[k]
		if !ok {
			g = &acc{
				n:   make([]int64, len(aggs)),
				sum: make([]float64, len(aggs)),
				min: make([]float64, len(aggs)),
				max: make([]float64, len(aggs)),
			}
			g.keyRow = make([]Value, len(ki))
			for j, i := range ki {
				g.keyRow[j] = row[i]
			}
			groups[k] = g
			order = append(order, k)
		}
		g.rows++
		for j, idx := range ai {
			if idx < 0 {
				continue
			}
			v := row[idx]
			if v.IsNull() || !v.IsNumeric() {
				continue
			}
			f := v.AsFloat()
			if g.n[j] == 0 {
				g.min[j], g.max[j] = f, f
			} else {
				if f < g.min[j] {
					g.min[j] = f
				}
				if f > g.max[j] {
					g.max[j] = f
				}
			}
			g.n[j]++
			g.sum[j] += f
		}
	}

	out := New(r.Name+"_grp", schema)
	for _, k := range order {
		g := groups[k]
		row := make([]Value, 0, len(schema))
		row = append(row, g.keyRow...)
		for j, a := range aggs {
			switch a.Kind {
			case AggCount:
				row = append(row, Int(g.rows))
			case AggSum:
				row = append(row, Float(g.sum[j]))
			case AggAvg:
				if g.n[j] == 0 {
					row = append(row, Null())
				} else {
					row = append(row, Float(g.sum[j]/float64(g.n[j])))
				}
			case AggMin:
				if g.n[j] == 0 {
					row = append(row, Null())
				} else {
					row = append(row, Float(g.min[j]))
				}
			case AggMax:
				if g.n[j] == 0 {
					row = append(row, Null())
				} else {
					row = append(row, Float(g.max[j]))
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Pivot spreads r into a wide table: one row per distinct key value, one
// column per distinct value of pivotCol, filled with valueCol. Collisions
// keep the last value. The WTP interface lists pivoting among the
// transformation needs buyers express (paper §3.2.2.1).
func Pivot(r *Relation, key, pivotCol, valueCol string) (*Relation, error) {
	ki := r.Schema.IndexOf(key)
	pi := r.Schema.IndexOf(pivotCol)
	vi := r.Schema.IndexOf(valueCol)
	if ki < 0 || pi < 0 || vi < 0 {
		return nil, fmt.Errorf("relation %q: pivot needs columns %q,%q,%q", r.Name, key, pivotCol, valueCol)
	}
	colSet := map[string]bool{}
	var colNames []string
	for _, row := range r.Rows {
		n := row[pi].String()
		if !colSet[n] {
			colSet[n] = true
			colNames = append(colNames, n)
		}
	}
	sort.Strings(colNames)
	schema := Schema{r.Schema[ki]}
	valKind := r.Schema[vi].Kind
	for _, n := range colNames {
		schema = append(schema, Column{Name: n, Kind: valKind})
	}
	colIdx := make(map[string]int, len(colNames))
	for i, n := range colNames {
		colIdx[n] = i + 1
	}

	out := New(r.Name+"_pivot", schema)
	rowIdx := map[string]int{}
	for _, row := range r.Rows {
		k := row[ki].Key()
		i, ok := rowIdx[k]
		if !ok {
			nr := make([]Value, len(schema))
			nr[0] = row[ki]
			for j := 1; j < len(nr); j++ {
				nr[j] = Null()
			}
			out.Rows = append(out.Rows, nr)
			i = len(out.Rows) - 1
			rowIdx[k] = i
		}
		out.Rows[i][colIdx[row[pi].String()]] = row[vi]
	}
	return out, nil
}

// Interpolate fills NULLs in the named numeric column by linear interpolation
// between the nearest non-null neighbours (after sorting by orderCol). The
// Mashup Builder uses this to join datasets recorded at different time
// granularities (paper §5, "value interpolation to join on different time
// granularities").
func Interpolate(r *Relation, orderCol, valueCol string) (*Relation, error) {
	sorted, err := SortBy(r, false, orderCol)
	if err != nil {
		return nil, err
	}
	vi := sorted.Schema.IndexOf(valueCol)
	if vi < 0 {
		return nil, fmt.Errorf("relation %q: no column %q", r.Name, valueCol)
	}
	n := len(sorted.Rows)
	// Collect known points.
	type pt struct {
		idx int
		val float64
	}
	var known []pt
	for i, row := range sorted.Rows {
		if !row[vi].IsNull() && row[vi].IsNumeric() {
			known = append(known, pt{i, row[vi].AsFloat()})
		}
	}
	if len(known) == 0 {
		return sorted, nil
	}
	ki := 0
	for i := 0; i < n; i++ {
		row := sorted.Rows[i]
		if !row[vi].IsNull() {
			continue
		}
		for ki+1 < len(known) && known[ki+1].idx < i {
			ki++
		}
		var f float64
		switch {
		case i < known[0].idx:
			f = known[0].val
		case i > known[len(known)-1].idx:
			f = known[len(known)-1].val
		default:
			lo, hi := known[ki], known[ki+1]
			span := float64(hi.idx - lo.idx)
			f = lo.val + (hi.val-lo.val)*float64(i-lo.idx)/span
		}
		row[vi] = Float(f)
	}
	sorted.Schema[vi].Kind = KindFloat
	return sorted, nil
}
