package relation

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the value types a cell can hold.
type Kind uint8

// Supported kinds. KindMulti marks a non-1NF multi-valued cell.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime
	KindMulti
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	case KindMulti:
		return "multi"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind is the inverse of Kind.String. It returns KindNull and false for
// unknown names.
func ParseKind(s string) (Kind, bool) {
	switch s {
	case "null":
		return KindNull, true
	case "int":
		return KindInt, true
	case "float":
		return KindFloat, true
	case "string":
		return KindString, true
	case "bool":
		return KindBool, true
	case "time":
		return KindTime, true
	case "multi":
		return KindMulti, true
	default:
		return KindNull, false
	}
}

// Sourced tags a value with the identifier of the dataset (or seller) that
// contributed it. Fusion cells are sets of Sourced values.
type Sourced struct {
	Source string
	Value  Value
}

// Value is a dynamically typed cell value. The zero Value is NULL.
type Value struct {
	kind  Kind
	i     int64
	f     float64
	s     string
	b     bool
	t     time.Time
	multi []Sourced
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. The trailing underscore avoids clashing
// with the Stringer method.
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Time returns a time value.
func Time(v time.Time) Value { return Value{kind: KindTime, t: v} }

// Multi returns a non-1NF multi-valued cell holding the given sourced values.
// The slice is copied.
func Multi(vs ...Sourced) Value {
	cp := make([]Sourced, len(vs))
	copy(cp, vs)
	return Value{kind: KindMulti, multi: cp}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is valid only for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload. For KindInt it converts.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload. It is valid only for KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is valid only for KindBool.
func (v Value) AsBool() bool { return v.b }

// AsTime returns the time payload. It is valid only for KindTime.
func (v Value) AsTime() time.Time { return v.t }

// AsMulti returns the sourced values of a multi cell. The returned slice must
// not be modified.
func (v Value) AsMulti() []Sourced { return v.multi }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports deep equality of two values. Int and float compare
// numerically across kinds (Int(2) equals Float(2.0)); multi cells compare as
// ordered lists of sourced values.
func (v Value) Equal(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	case KindTime:
		return v.t.Equal(o.t)
	case KindMulti:
		if len(v.multi) != len(o.multi) {
			return false
		}
		for i := range v.multi {
			if v.multi[i].Source != o.multi[i].Source || !v.multi[i].Value.Equal(o.multi[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values: NULL sorts first; numerics compare numerically;
// strings, bools (false<true) and times compare naturally. Values of
// different non-numeric kinds order by kind. Multi cells compare by length
// then element-wise.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		return int(boolToInt(o.kind == KindNull)) - int(boolToInt(v.kind == KindNull))
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		return int(boolToInt(v.b)) - int(boolToInt(o.b))
	case KindTime:
		switch {
		case v.t.Before(o.t):
			return -1
		case v.t.After(o.t):
			return 1
		default:
			return 0
		}
	case KindMulti:
		if d := len(v.multi) - len(o.multi); d != 0 {
			return sign(d)
		}
		for i := range v.multi {
			if c := v.multi[i].Value.Compare(o.multi[i].Value); c != 0 {
				return c
			}
		}
		return 0
	}
	return 0
}

func boolToInt(b bool) int8 {
	if b {
		return 1
	}
	return 0
}

func sign(d int) int {
	switch {
	case d < 0:
		return -1
	case d > 0:
		return 1
	default:
		return 0
	}
}

// Key returns a canonical string encoding usable as a hash-join or group-by
// key. Numeric values of equal magnitude share a key regardless of kind.
func (v Value) Key() string { return string(v.AppendKey(nil)) }

// AppendKey appends the value's canonical Key encoding to dst and returns the
// extended slice. It is the allocation-conscious form of Key: hot paths (hash
// joins, Distinct, group-by) build composite row keys into a reused buffer
// instead of concatenating strings per cell.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, "\x00N"...)
	case KindInt:
		dst = append(dst, '\x01')
		return strconv.AppendFloat(dst, float64(v.i), 'g', -1, 64)
	case KindFloat:
		dst = append(dst, '\x01')
		return strconv.AppendFloat(dst, v.f, 'g', -1, 64)
	case KindString:
		dst = append(dst, '\x02')
		return append(dst, v.s...)
	case KindBool:
		if v.b {
			return append(dst, "\x03t"...)
		}
		return append(dst, "\x03f"...)
	case KindTime:
		dst = append(dst, '\x04')
		return strconv.AppendInt(dst, v.t.UnixNano(), 10)
	case KindMulti:
		dst = append(dst, '\x05')
		for _, sv := range v.multi {
			dst = append(dst, sv.Source...)
			dst = append(dst, '=')
			dst = sv.Value.AppendKey(dst)
			dst = append(dst, ';')
		}
		return dst
	}
	return dst
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindTime:
		return v.t.UTC().Format(time.RFC3339)
	case KindMulti:
		parts := make([]string, len(v.multi))
		for i, sv := range v.multi {
			parts[i] = sv.Source + ":" + sv.Value.String()
		}
		return "{" + strings.Join(parts, "|") + "}"
	}
	return "?"
}

// ParseValue parses s into a value of the requested kind. Empty strings parse
// to NULL for every kind.
func ParseValue(kind Kind, s string) (Value, error) {
	if s == "" {
		return Null(), nil
	}
	switch kind {
	case KindNull:
		return Null(), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindString:
		return String_(s), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case KindTime:
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse time %q: %w", s, err)
		}
		return Time(t), nil
	}
	return Null(), fmt.Errorf("relation: cannot parse kind %v", kind)
}

// InferValue guesses the kind of s and parses it (int, then float, then bool,
// then RFC3339 time, then string). Empty strings infer NULL.
func InferValue(s string) Value {
	if s == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsInf(f, 0) {
		return Float(f)
	}
	if s == "true" || s == "false" {
		return Bool(s == "true")
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return Time(t)
	}
	return String_(s)
}

// FlattenMulti resolves a multi cell to a single value using majority vote
// over equal values; ties break toward the lexicographically smallest source.
// Non-multi values are returned unchanged.
func (v Value) FlattenMulti() Value {
	if v.kind != KindMulti {
		return v
	}
	if len(v.multi) == 0 {
		return Null()
	}
	counts := map[string]int{}
	best := map[string]Sourced{}
	for _, sv := range v.multi {
		k := sv.Value.Key()
		counts[k]++
		if cur, ok := best[k]; !ok || sv.Source < cur.Source {
			best[k] = sv
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return best[keys[i]].Source < best[keys[j]].Source
	})
	return best[keys[0]].Value
}
