// Package provenance tracks why-provenance for mashups: every row of a
// mashup carries the set of source rows (dataset, row index) that produced
// it. The revenue sharing function (paper §3.2.3) "reverse engineers" the
// arbiter's combination function f(); for relational plans this package makes
// that reverse engineering exact by propagating lineage through every
// operator, in the spirit of provenance semirings.
//
// Operators execute as lineage-carrying pull iterators layered on
// internal/relation's streaming engine: each Iter yields (row, lineage)
// pairs, and the join propagates lineage directly through its hash table
// instead of the historical trick of tagging both sides with hidden ordinal
// columns, joining eagerly, and projecting the ordinals away (which copied
// every intermediate row three times). The eager functions remain as
// Materialize wrappers with identical results.
package provenance

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// RowRef identifies one source row.
type RowRef struct {
	Dataset string
	Row     int
}

// Lineage is the set of source rows contributing to one output row.
type Lineage []RowRef

// merge unions two lineages (both sorted, deduplicated output).
func merge(a, b Lineage) Lineage {
	out := make(Lineage, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Row < out[j].Row
	})
	dedup := out[:0]
	for i, r := range out {
		if i == 0 || r != out[i-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

// Annotated is a relation whose rows each carry lineage.
type Annotated struct {
	Rel     *relation.Relation
	Lineage []Lineage // parallel to Rel.Rows
}

// FromSource wraps a source relation: row i's lineage is {(datasetID, i)}.
func FromSource(datasetID string, r *relation.Relation) *Annotated {
	a := &Annotated{Rel: r, Lineage: make([]Lineage, r.NumRows())}
	for i := range a.Lineage {
		a.Lineage[i] = Lineage{{Dataset: datasetID, Row: i}}
	}
	return a
}

// check panics if lineage and rows fell out of sync — an internal invariant.
func (a *Annotated) check() {
	if len(a.Lineage) != a.Rel.NumRows() {
		panic(fmt.Sprintf("provenance: lineage len %d != rows %d", len(a.Lineage), a.Rel.NumRows()))
	}
}

// Iter is a lineage-carrying pull iterator: relation.Iter plus a Lineage per
// row. The same ownership rules apply — rows from shape-preserving operators
// alias their source, and yielded Lineage values are shared, not copied, so
// consumers must not mutate them in place.
type Iter interface {
	Next() ([]relation.Value, Lineage, bool)
	Schema() relation.Schema
	Close()
}

type errIter interface{ Err() error }

// IterErr returns the first mid-stream error of the pipeline, or nil.
func IterErr(it Iter) error {
	if e, ok := it.(errIter); ok {
		return e.Err()
	}
	return nil
}

// Materialize drains it into an Annotated, preserving row order. The result
// relation's Name is left for the caller to set.
func Materialize(it Iter) (*Annotated, error) {
	defer it.Close()
	out := &Annotated{Rel: &relation.Relation{Schema: it.Schema().Clone()}}
	for {
		row, lin, ok := it.Next()
		if !ok {
			break
		}
		out.Rel.Rows = append(out.Rel.Rows, row)
		out.Lineage = append(out.Lineage, lin)
	}
	if err := IterErr(it); err != nil {
		return nil, err
	}
	relation.RecordMaterialization(out.Rel.NumRows())
	return out, nil
}

// ---- sources ----

type scanIter struct {
	a   *Annotated
	pos int
}

// Scan streams an annotated relation's rows with their lineage.
func Scan(a *Annotated) Iter { return &scanIter{a: a} }

func (s *scanIter) Next() ([]relation.Value, Lineage, bool) {
	if s.pos >= s.a.Rel.NumRows() {
		return nil, nil, false
	}
	row, lin := s.a.Rel.Rows[s.pos], s.a.Lineage[s.pos]
	s.pos++
	return row, lin, true
}
func (s *scanIter) Schema() relation.Schema { return s.a.Rel.Schema }
func (s *scanIter) Close()                  {}

type sourceIter struct {
	dataset string
	rel     *relation.Relation
	pos     int
}

// ScanSource streams a base relation, minting each row's singleton lineage
// {(datasetID, i)} lazily — the streaming equivalent of FromSource.
func ScanSource(datasetID string, r *relation.Relation) Iter {
	return &sourceIter{dataset: datasetID, rel: r}
}

func (s *sourceIter) Next() ([]relation.Value, Lineage, bool) {
	if s.pos >= len(s.rel.Rows) {
		return nil, nil, false
	}
	row := s.rel.Rows[s.pos]
	lin := Lineage{{Dataset: s.dataset, Row: s.pos}}
	s.pos++
	return row, lin, true
}
func (s *sourceIter) Schema() relation.Schema { return s.rel.Schema }
func (s *sourceIter) Close()                  {}

// ---- streaming operators ----

type selectIter struct {
	src    Iter
	schema relation.Schema
	pred   relation.Predicate
}

// NewSelect streams the rows of src satisfying pred, keeping their lineage.
func NewSelect(src Iter, pred relation.Predicate) Iter {
	return &selectIter{src: src, schema: src.Schema(), pred: pred}
}

func (s *selectIter) Next() ([]relation.Value, Lineage, bool) {
	for {
		row, lin, ok := s.src.Next()
		if !ok {
			return nil, nil, false
		}
		if s.pred(row, s.schema) {
			return row, lin, true
		}
	}
}
func (s *selectIter) Schema() relation.Schema { return s.schema }
func (s *selectIter) Close()                  { s.src.Close() }
func (s *selectIter) Err() error              { return IterErr(s.src) }

type projectIter struct {
	src    Iter
	schema relation.Schema
	idx    []int
}

// NewProject keeps the named columns; lineage is unchanged (why-provenance
// of a projected row is the provenance of the original row).
func NewProject(src Iter, names ...string) (Iter, error) {
	sub, err := src.Schema().Project(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = src.Schema().IndexOf(n)
	}
	return &projectIter{src: src, schema: sub, idx: idx}, nil
}

func (p *projectIter) Next() ([]relation.Value, Lineage, bool) {
	row, lin, ok := p.src.Next()
	if !ok {
		return nil, nil, false
	}
	nr := make([]relation.Value, len(p.idx))
	for i, k := range p.idx {
		nr[i] = row[k]
	}
	return nr, lin, true
}
func (p *projectIter) Schema() relation.Schema { return p.schema }
func (p *projectIter) Close()                  { p.src.Close() }
func (p *projectIter) Err() error              { return IterErr(p.src) }

type mapIter struct {
	src    Iter
	schema relation.Schema
	col    int
	fn     func(relation.Value) relation.Value
}

// NewMap applies a column transformation, keeping lineage.
func NewMap(src Iter, col string, kind relation.Kind, fn func(relation.Value) relation.Value) (Iter, error) {
	i := src.Schema().IndexOf(col)
	if i < 0 {
		return nil, fmt.Errorf("relation: map: no column %q", col)
	}
	s := src.Schema().Clone()
	s[i].Kind = kind
	return &mapIter{src: src, schema: s, col: i, fn: fn}, nil
}

func (m *mapIter) Next() ([]relation.Value, Lineage, bool) {
	row, lin, ok := m.src.Next()
	if !ok {
		return nil, nil, false
	}
	nr := make([]relation.Value, len(row))
	copy(nr, row)
	nr[m.col] = m.fn(nr[m.col])
	return nr, lin, true
}
func (m *mapIter) Schema() relation.Schema { return m.schema }
func (m *mapIter) Close()                  { m.src.Close() }
func (m *mapIter) Err() error              { return IterErr(m.src) }

type renameIter struct {
	src    Iter
	schema relation.Schema
}

// NewRename renames a column, keeping lineage.
func NewRename(src Iter, old, new string) (Iter, error) {
	s, err := src.Schema().Rename(old, new)
	if err != nil {
		return nil, err
	}
	return &renameIter{src: src, schema: s}, nil
}

func (r *renameIter) Next() ([]relation.Value, Lineage, bool) { return r.src.Next() }
func (r *renameIter) Schema() relation.Schema                 { return r.schema }
func (r *renameIter) Close()                                  { r.src.Close() }
func (r *renameIter) Err() error                              { return IterErr(r.src) }

type unionIter struct {
	a, b Iter
	onB  bool
}

// NewUnion concatenates two lineage streams. Schemas must be equal.
func NewUnion(a, b Iter) (Iter, error) {
	if !a.Schema().Equal(b.Schema()) {
		return nil, fmt.Errorf("relation: union schema mismatch %s vs %s", a.Schema(), b.Schema())
	}
	return &unionIter{a: a, b: b}, nil
}

func (u *unionIter) Next() ([]relation.Value, Lineage, bool) {
	if !u.onB {
		if row, lin, ok := u.a.Next(); ok {
			return row, lin, true
		}
		if err := IterErr(u.a); err != nil {
			return nil, nil, false
		}
		u.onB = true
	}
	return u.b.Next()
}
func (u *unionIter) Schema() relation.Schema { return u.a.Schema() }
func (u *unionIter) Close()                  { u.a.Close(); u.b.Close() }
func (u *unionIter) Err() error {
	if err := IterErr(u.a); err != nil {
		return err
	}
	return IterErr(u.b)
}

// rmatch is one build-side entry: the kept-right column projection plus the
// right row's lineage.
type rmatch struct {
	proj []relation.Value
	lin  Lineage
}

type joinIter struct {
	left, right Iter
	layout      relation.JoinLayout
	outName     string
	built       bool
	table       map[string][]rmatch
	lrow        []relation.Value
	llin        Lineage
	pending     []rmatch
	pi          int
	keyBuf      []byte
	emitted     int
	err         error
	closed      bool
}

// NewHashJoin streams the inner equi-join of two lineage streams; each
// output row's lineage is the merge of the joined input rows' lineages,
// propagated directly through the hash table.
func NewHashJoin(l, r Iter, lname, rname string, on ...relation.JoinPair) (Iter, error) {
	layout, err := relation.NewJoinLayout(lname, l.Schema(), rname, r.Schema(), on...)
	if err != nil {
		return nil, err
	}
	return &joinIter{left: l, right: r, layout: layout, outName: lname + "⋈" + rname}, nil
}

func (j *joinIter) build() {
	j.built = true
	j.table = map[string][]rmatch{}
	for {
		rrow, rlin, ok := j.right.Next()
		if !ok {
			j.err = IterErr(j.right)
			return
		}
		if anyNull(rrow, j.layout.Right) {
			continue
		}
		j.keyBuf = relation.AppendRowKey(j.keyBuf[:0], rrow, j.layout.Right)
		proj := make([]relation.Value, len(j.layout.RightKeep))
		for i, k := range j.layout.RightKeep {
			proj[i] = rrow[k]
		}
		k := string(j.keyBuf)
		j.table[k] = append(j.table[k], rmatch{proj: proj, lin: rlin})
	}
}

func (j *joinIter) Next() ([]relation.Value, Lineage, bool) {
	if j.err != nil {
		return nil, nil, false
	}
	if !j.built {
		j.build()
		if j.err != nil {
			return nil, nil, false
		}
	}
	for {
		if j.pi < len(j.pending) {
			if j.emitted >= maxJoinRows {
				j.err = fmt.Errorf("relation: join %s would exceed %d rows", j.outName, maxJoinRows)
				return nil, nil, false
			}
			m := j.pending[j.pi]
			j.pi++
			nr := make([]relation.Value, 0, len(j.layout.Schema))
			nr = append(nr, j.lrow...)
			nr = append(nr, m.proj...)
			j.emitted++
			return nr, merge(j.llin, m.lin), true
		}
		lrow, llin, ok := j.left.Next()
		if !ok {
			j.err = IterErr(j.left)
			return nil, nil, false
		}
		if anyNull(lrow, j.layout.Left) {
			continue
		}
		j.keyBuf = relation.AppendRowKey(j.keyBuf[:0], lrow, j.layout.Left)
		matches := j.table[string(j.keyBuf)]
		if len(matches) == 0 {
			continue
		}
		j.lrow, j.llin = lrow, llin
		j.pending = matches
		j.pi = 0
	}
}

func (j *joinIter) Schema() relation.Schema { return j.layout.Schema }
func (j *joinIter) Err() error              { return j.err }
func (j *joinIter) Close() {
	if j.closed {
		return
	}
	j.closed = true
	j.left.Close()
	j.right.Close()
	j.table = nil
}

// maxJoinRows mirrors relation's guard so the lineage join fails with the
// same error text at the same output cardinality.
const maxJoinRows = 4_000_000

func anyNull(row []relation.Value, idx []int) bool {
	for _, i := range idx {
		if row[i].IsNull() {
			return true
		}
	}
	return false
}

// ---- eager wrappers ----

// Select filters rows, keeping their lineage.
func Select(a *Annotated, pred relation.Predicate) *Annotated {
	a.check()
	out, _ := Materialize(NewSelect(Scan(a), pred))
	out.Rel.Name = a.Rel.Name + "_sel"
	return out
}

// Project keeps the named columns; lineage is unchanged (why-provenance of a
// projected row is the provenance of the original row).
func Project(a *Annotated, names ...string) (*Annotated, error) {
	a.check()
	it, err := NewProject(Scan(a), names...)
	if err != nil {
		return nil, err
	}
	out, _ := Materialize(it)
	out.Rel.Name = a.Rel.Name + "_proj"
	return out, nil
}

// Map applies a column transformation, keeping lineage.
func Map(a *Annotated, col string, kind relation.Kind, fn func(relation.Value) relation.Value) (*Annotated, error) {
	a.check()
	it, err := NewMap(Scan(a), col, kind, fn)
	if err != nil {
		return nil, fmt.Errorf("relation %q: no column %q", a.Rel.Name, col)
	}
	out, _ := Materialize(it)
	out.Rel.Name = a.Rel.Name
	return out, nil
}

// Rename renames a column, keeping lineage.
func Rename(a *Annotated, old, new string) (*Annotated, error) {
	a.check()
	it, err := NewRename(Scan(a), old, new)
	if err != nil {
		return nil, fmt.Errorf("relation %q: %w", a.Rel.Name, err)
	}
	out, _ := Materialize(it)
	out.Rel.Name = a.Rel.Name
	return out, nil
}

// HashJoin joins two annotated relations; each output row's lineage is the
// union of the joined input rows' lineages.
func HashJoin(l, r *Annotated, on ...relation.JoinPair) (*Annotated, error) {
	l.check()
	r.check()
	it, err := NewHashJoin(Scan(l), Scan(r), l.Rel.Name, r.Rel.Name, on...)
	if err != nil {
		return nil, err
	}
	out, err := Materialize(it)
	if err != nil {
		return nil, err
	}
	out.Rel.Name = l.Rel.Name + "⋈" + r.Rel.Name
	return out, nil
}

// Union concatenates two annotated relations.
func Union(a, b *Annotated) (*Annotated, error) {
	a.check()
	b.check()
	it, err := NewUnion(Scan(a), Scan(b))
	if err != nil {
		return nil, err
	}
	out, _ := Materialize(it)
	out.Rel.Name = a.Rel.Name + "_union"
	return out, nil
}

// Distinct removes duplicate rows, merging the lineages of collapsed rows —
// every source row that could produce the output row shares credit. It stays
// eager: collapsing lineage needs every duplicate before the first row's
// final lineage is known.
func Distinct(a *Annotated) *Annotated {
	a.check()
	out := &Annotated{Rel: relation.New(a.Rel.Name+"_dist", a.Rel.Schema)}
	idx := map[string]int{}
	var buf []byte
	for i, row := range a.Rel.Rows {
		buf = relation.AppendRowKey(buf[:0], row, nil)
		if j, ok := idx[string(buf)]; ok {
			out.Lineage[j] = merge(out.Lineage[j], a.Lineage[i])
			continue
		}
		idx[string(buf)] = len(out.Rel.Rows)
		out.Rel.Rows = append(out.Rel.Rows, row)
		out.Lineage = append(out.Lineage, a.Lineage[i])
	}
	return out
}

// DatasetContributions counts, per source dataset, how many output rows its
// rows contributed to. Revenue sharing weights sellers by these counts.
func (a *Annotated) DatasetContributions() map[string]int {
	a.check()
	out := map[string]int{}
	for _, lin := range a.Lineage {
		seen := map[string]bool{}
		for _, ref := range lin {
			if !seen[ref.Dataset] {
				seen[ref.Dataset] = true
				out[ref.Dataset]++
			}
		}
	}
	return out
}

// RowShares splits one unit of credit for each output row equally among the
// datasets appearing in its lineage, returning per-dataset totals. This is
// the per-row revenue-allocation → per-dataset revenue-sharing pipeline of
// §3.2.3 in its simplest (uniform per-row) form; the market package layers
// Shapley-style allocation on top.
func (a *Annotated) RowShares() map[string]float64 {
	a.check()
	out := map[string]float64{}
	for _, lin := range a.Lineage {
		ds := map[string]bool{}
		for _, ref := range lin {
			ds[ref.Dataset] = true
		}
		if len(ds) == 0 {
			continue
		}
		w := 1.0 / float64(len(ds))
		for d := range ds {
			out[d] += w
		}
	}
	return out
}

// Datasets returns the sorted set of datasets appearing anywhere in lineage.
func (a *Annotated) Datasets() []string {
	set := map[string]bool{}
	for _, lin := range a.Lineage {
		for _, ref := range lin {
			set[ref.Dataset] = true
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// RestrictToDatasets returns a copy of the annotated relation keeping only
// rows whose lineage is fully contained in the allowed dataset set. The
// arbiter uses this to evaluate counterfactual mashups ("what would the
// mashup be without seller X?") when computing Shapley revenue allocations.
func (a *Annotated) RestrictToDatasets(allowed map[string]bool) *Annotated {
	a.check()
	out := &Annotated{Rel: relation.New(a.Rel.Name, a.Rel.Schema)}
	for i, lin := range a.Lineage {
		ok := true
		for _, ref := range lin {
			if !allowed[ref.Dataset] {
				ok = false
				break
			}
		}
		if ok {
			out.Rel.Rows = append(out.Rel.Rows, a.Rel.Rows[i])
			out.Lineage = append(out.Lineage, lin)
		}
	}
	return out
}
