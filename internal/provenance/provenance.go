// Package provenance tracks why-provenance for mashups: every row of a
// mashup carries the set of source rows (dataset, row index) that produced
// it. The revenue sharing function (paper §3.2.3) "reverse engineers" the
// arbiter's combination function f(); for relational plans this package makes
// that reverse engineering exact by propagating lineage through every
// operator, in the spirit of provenance semirings.
package provenance

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// RowRef identifies one source row.
type RowRef struct {
	Dataset string
	Row     int
}

// Lineage is the set of source rows contributing to one output row.
type Lineage []RowRef

// merge unions two lineages (both sorted, deduplicated output).
func merge(a, b Lineage) Lineage {
	out := make(Lineage, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Row < out[j].Row
	})
	dedup := out[:0]
	for i, r := range out {
		if i == 0 || r != out[i-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

// Annotated is a relation whose rows each carry lineage.
type Annotated struct {
	Rel     *relation.Relation
	Lineage []Lineage // parallel to Rel.Rows
}

// FromSource wraps a source relation: row i's lineage is {(datasetID, i)}.
func FromSource(datasetID string, r *relation.Relation) *Annotated {
	a := &Annotated{Rel: r, Lineage: make([]Lineage, r.NumRows())}
	for i := range a.Lineage {
		a.Lineage[i] = Lineage{{Dataset: datasetID, Row: i}}
	}
	return a
}

// check panics if lineage and rows fell out of sync — an internal invariant.
func (a *Annotated) check() {
	if len(a.Lineage) != a.Rel.NumRows() {
		panic(fmt.Sprintf("provenance: lineage len %d != rows %d", len(a.Lineage), a.Rel.NumRows()))
	}
}

// Select filters rows, keeping their lineage.
func Select(a *Annotated, pred relation.Predicate) *Annotated {
	a.check()
	out := &Annotated{Rel: relation.New(a.Rel.Name+"_sel", a.Rel.Schema)}
	for i, row := range a.Rel.Rows {
		if pred(row, a.Rel.Schema) {
			out.Rel.Rows = append(out.Rel.Rows, row)
			out.Lineage = append(out.Lineage, a.Lineage[i])
		}
	}
	return out
}

// Project keeps the named columns; lineage is unchanged (why-provenance of a
// projected row is the provenance of the original row).
func Project(a *Annotated, names ...string) (*Annotated, error) {
	a.check()
	r, err := relation.Project(a.Rel, names...)
	if err != nil {
		return nil, err
	}
	return &Annotated{Rel: r, Lineage: a.Lineage}, nil
}

// Map applies a column transformation, keeping lineage.
func Map(a *Annotated, col string, kind relation.Kind, fn func(relation.Value) relation.Value) (*Annotated, error) {
	a.check()
	r, err := relation.Map(a.Rel, col, kind, fn)
	if err != nil {
		return nil, err
	}
	return &Annotated{Rel: r, Lineage: a.Lineage}, nil
}

// Rename renames a column, keeping lineage.
func Rename(a *Annotated, old, new string) (*Annotated, error) {
	a.check()
	r, err := relation.Rename(a.Rel, old, new)
	if err != nil {
		return nil, err
	}
	return &Annotated{Rel: r, Lineage: a.Lineage}, nil
}

// HashJoin joins two annotated relations; each output row's lineage is the
// union of the joined input rows' lineages.
func HashJoin(l, r *Annotated, on ...relation.JoinPair) (*Annotated, error) {
	l.check()
	r.check()
	// Tag each side with a hidden ordinal column, join, then strip.
	lt := relation.AddColumn(l.Rel, relation.Col("__lrow", relation.KindInt), ordinal())
	rt := relation.AddColumn(r.Rel, relation.Col("__rrow", relation.KindInt), ordinal())
	j, err := relation.HashJoin(lt, rt, on...)
	if err != nil {
		return nil, err
	}
	li := j.Schema.IndexOf("__lrow")
	ri := j.Schema.IndexOf("__rrow")
	out := &Annotated{}
	keep := make([]string, 0, len(j.Schema)-2)
	for _, c := range j.Schema {
		if c.Name != "__lrow" && c.Name != "__rrow" {
			keep = append(keep, c.Name)
		}
	}
	stripped, err := relation.Project(j, keep...)
	if err != nil {
		return nil, err
	}
	stripped.Name = l.Rel.Name + "⋈" + r.Rel.Name
	out.Rel = stripped
	out.Lineage = make([]Lineage, len(j.Rows))
	for i, row := range j.Rows {
		out.Lineage[i] = merge(l.Lineage[row[li].AsInt()], r.Lineage[row[ri].AsInt()])
	}
	return out, nil
}

func ordinal() func(row []relation.Value, s relation.Schema) relation.Value {
	i := -1
	return func([]relation.Value, relation.Schema) relation.Value {
		i++
		return relation.Int(int64(i))
	}
}

// Union concatenates two annotated relations.
func Union(a, b *Annotated) (*Annotated, error) {
	a.check()
	b.check()
	r, err := relation.Union(a.Rel, b.Rel)
	if err != nil {
		return nil, err
	}
	lin := make([]Lineage, 0, len(a.Lineage)+len(b.Lineage))
	lin = append(lin, a.Lineage...)
	lin = append(lin, b.Lineage...)
	return &Annotated{Rel: r, Lineage: lin}, nil
}

// Distinct removes duplicate rows, merging the lineages of collapsed rows —
// every source row that could produce the output row shares credit.
func Distinct(a *Annotated) *Annotated {
	a.check()
	out := &Annotated{Rel: relation.New(a.Rel.Name+"_dist", a.Rel.Schema)}
	idx := map[string]int{}
	for i, row := range a.Rel.Rows {
		k := rowKey(row)
		if j, ok := idx[k]; ok {
			out.Lineage[j] = merge(out.Lineage[j], a.Lineage[i])
			continue
		}
		idx[k] = len(out.Rel.Rows)
		out.Rel.Rows = append(out.Rel.Rows, row)
		out.Lineage = append(out.Lineage, a.Lineage[i])
	}
	return out
}

func rowKey(row []relation.Value) string {
	var b []byte
	for _, v := range row {
		b = append(b, v.Key()...)
		b = append(b, 0x1f)
	}
	return string(b)
}

// DatasetContributions counts, per source dataset, how many output rows its
// rows contributed to. Revenue sharing weights sellers by these counts.
func (a *Annotated) DatasetContributions() map[string]int {
	a.check()
	out := map[string]int{}
	for _, lin := range a.Lineage {
		seen := map[string]bool{}
		for _, ref := range lin {
			if !seen[ref.Dataset] {
				seen[ref.Dataset] = true
				out[ref.Dataset]++
			}
		}
	}
	return out
}

// RowShares splits one unit of credit for each output row equally among the
// datasets appearing in its lineage, returning per-dataset totals. This is
// the per-row revenue-allocation → per-dataset revenue-sharing pipeline of
// §3.2.3 in its simplest (uniform per-row) form; the market package layers
// Shapley-style allocation on top.
func (a *Annotated) RowShares() map[string]float64 {
	a.check()
	out := map[string]float64{}
	for _, lin := range a.Lineage {
		ds := map[string]bool{}
		for _, ref := range lin {
			ds[ref.Dataset] = true
		}
		if len(ds) == 0 {
			continue
		}
		w := 1.0 / float64(len(ds))
		for d := range ds {
			out[d] += w
		}
	}
	return out
}

// Datasets returns the sorted set of datasets appearing anywhere in lineage.
func (a *Annotated) Datasets() []string {
	set := map[string]bool{}
	for _, lin := range a.Lineage {
		for _, ref := range lin {
			set[ref.Dataset] = true
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// RestrictToDatasets returns a copy of the annotated relation keeping only
// rows whose lineage is fully contained in the allowed dataset set. The
// arbiter uses this to evaluate counterfactual mashups ("what would the
// mashup be without seller X?") when computing Shapley revenue allocations.
func (a *Annotated) RestrictToDatasets(allowed map[string]bool) *Annotated {
	a.check()
	out := &Annotated{Rel: relation.New(a.Rel.Name, a.Rel.Schema)}
	for i, lin := range a.Lineage {
		ok := true
		for _, ref := range lin {
			if !allowed[ref.Dataset] {
				ok = false
				break
			}
		}
		if ok {
			out.Rel.Rows = append(out.Rel.Rows, a.Rel.Rows[i])
			out.Lineage = append(out.Lineage, lin)
		}
	}
	return out
}
