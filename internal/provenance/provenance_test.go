package provenance

import (
	"testing"

	"repro/internal/relation"
)

func mkAnno() (*Annotated, *Annotated) {
	l := relation.New("left", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("a", relation.KindString)))
	l.MustAppend(relation.Int(1), relation.String_("x"))
	l.MustAppend(relation.Int(2), relation.String_("y"))
	l.MustAppend(relation.Int(3), relation.String_("z"))
	r := relation.New("right", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("b", relation.KindFloat)))
	r.MustAppend(relation.Int(1), relation.Float(10))
	r.MustAppend(relation.Int(2), relation.Float(20))
	r.MustAppend(relation.Int(2), relation.Float(21))
	return FromSource("dl", l), FromSource("dr", r)
}

func TestFromSourceLineage(t *testing.T) {
	a, _ := mkAnno()
	if len(a.Lineage) != 3 {
		t.Fatalf("lineage len = %d", len(a.Lineage))
	}
	if a.Lineage[1][0] != (RowRef{"dl", 1}) {
		t.Errorf("lineage[1] = %v", a.Lineage[1])
	}
}

func TestJoinLineageUnion(t *testing.T) {
	l, r := mkAnno()
	j, err := HashJoin(l, r, relation.JoinPair{Left: "k", Right: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Rel.NumRows() != 3 {
		t.Fatalf("join rows = %d, want 3", j.Rel.NumRows())
	}
	if j.Rel.Schema.Has("__lrow") || j.Rel.Schema.Has("__rrow") {
		t.Error("ordinal columns must be stripped")
	}
	for i, lin := range j.Lineage {
		if len(lin) != 2 {
			t.Errorf("row %d lineage = %v, want 2 refs", i, lin)
		}
		ds := map[string]bool{}
		for _, ref := range lin {
			ds[ref.Dataset] = true
		}
		if !ds["dl"] || !ds["dr"] {
			t.Errorf("row %d lineage datasets = %v", i, ds)
		}
	}
}

func TestSelectProjectKeepLineage(t *testing.T) {
	l, _ := mkAnno()
	sel := Select(l, relation.ColEquals("a", relation.String_("y")))
	if sel.Rel.NumRows() != 1 || sel.Lineage[0][0].Row != 1 {
		t.Errorf("select lineage = %v", sel.Lineage)
	}
	p, err := Project(sel, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Lineage) != 1 || p.Lineage[0][0] != (RowRef{"dl", 1}) {
		t.Errorf("project lineage = %v", p.Lineage)
	}
}

func TestDistinctMergesLineage(t *testing.T) {
	r := relation.New("r", relation.NewSchema(relation.Col("v", relation.KindInt)))
	r.MustAppend(relation.Int(7))
	r.MustAppend(relation.Int(7))
	a := FromSource("d", r)
	d := Distinct(a)
	if d.Rel.NumRows() != 1 {
		t.Fatalf("distinct rows = %d", d.Rel.NumRows())
	}
	if len(d.Lineage[0]) != 2 {
		t.Errorf("collapsed row lineage = %v, want both source rows", d.Lineage[0])
	}
}

func TestUnionMapRename(t *testing.T) {
	l, _ := mkAnno()
	u, err := Union(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if u.Rel.NumRows() != 6 || len(u.Lineage) != 6 {
		t.Errorf("union rows/lineage = %d/%d", u.Rel.NumRows(), len(u.Lineage))
	}
	m, err := Map(l, "k", relation.KindInt, func(v relation.Value) relation.Value {
		return relation.Int(v.AsInt() * 10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rel.Rows[0][0].AsInt() != 10 {
		t.Error("map failed")
	}
	if len(m.Lineage) != 3 {
		t.Error("map must keep lineage")
	}
	rn, err := Rename(l, "a", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !rn.Rel.Schema.Has("alpha") {
		t.Error("rename failed")
	}
}

func TestDatasetContributionsAndShares(t *testing.T) {
	l, r := mkAnno()
	j, _ := HashJoin(l, r, relation.JoinPair{Left: "k", Right: "k"})
	contrib := j.DatasetContributions()
	if contrib["dl"] != 3 || contrib["dr"] != 3 {
		t.Errorf("contributions = %v", contrib)
	}
	shares := j.RowShares()
	if shares["dl"] != 1.5 || shares["dr"] != 1.5 {
		t.Errorf("shares = %v; each dataset should get 0.5 per row × 3 rows", shares)
	}
	ds := j.Datasets()
	if len(ds) != 2 || ds[0] != "dl" || ds[1] != "dr" {
		t.Errorf("datasets = %v", ds)
	}
}

func TestRestrictToDatasets(t *testing.T) {
	l, r := mkAnno()
	j, _ := HashJoin(l, r, relation.JoinPair{Left: "k", Right: "k"})
	only := j.RestrictToDatasets(map[string]bool{"dl": true})
	if only.Rel.NumRows() != 0 {
		t.Errorf("rows needing dr must vanish, got %d", only.Rel.NumRows())
	}
	both := j.RestrictToDatasets(map[string]bool{"dl": true, "dr": true})
	if both.Rel.NumRows() != 3 {
		t.Errorf("full set keeps all rows, got %d", both.Rel.NumRows())
	}
}

func TestLineageMergeDedup(t *testing.T) {
	a := Lineage{{"d", 1}, {"d", 3}}
	b := Lineage{{"d", 1}, {"c", 2}}
	m := merge(a, b)
	if len(m) != 3 {
		t.Fatalf("merged = %v", m)
	}
	if m[0] != (RowRef{"c", 2}) || m[1] != (RowRef{"d", 1}) || m[2] != (RowRef{"d", 3}) {
		t.Errorf("merge order = %v", m)
	}
}
