package provenance

// Equivalence harness for the lineage-carrying streaming join: the frozen
// legacy implementation tagged each side with a hidden ordinal column, ran a
// plain relational join, and stripped the ordinals afterwards. The streaming
// join threads lineage through the hash table directly, so this test is what
// proves both rows AND lineage survived the rewrite byte-for-byte.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func legacyProvHashJoin(l, r *Annotated, on ...relation.JoinPair) (*Annotated, error) {
	l.check()
	r.check()
	lt := relation.AddColumn(l.Rel, relation.Col("__lrow", relation.KindInt), legacyOrdinal())
	rt := relation.AddColumn(r.Rel, relation.Col("__rrow", relation.KindInt), legacyOrdinal())
	j, err := relation.HashJoin(lt, rt, on...)
	if err != nil {
		return nil, err
	}
	li := j.Schema.IndexOf("__lrow")
	ri := j.Schema.IndexOf("__rrow")
	out := &Annotated{}
	keep := make([]string, 0, len(j.Schema)-2)
	for _, c := range j.Schema {
		if c.Name != "__lrow" && c.Name != "__rrow" {
			keep = append(keep, c.Name)
		}
	}
	stripped, err := relation.Project(j, keep...)
	if err != nil {
		return nil, err
	}
	stripped.Name = l.Rel.Name + "⋈" + r.Rel.Name
	out.Rel = stripped
	out.Lineage = make([]Lineage, len(j.Rows))
	for i, row := range j.Rows {
		out.Lineage[i] = merge(l.Lineage[row[li].AsInt()], r.Lineage[row[ri].AsInt()])
	}
	return out, nil
}

func legacyOrdinal() func(row []relation.Value, s relation.Schema) relation.Value {
	i := -1
	return func([]relation.Value, relation.Schema) relation.Value {
		i++
		return relation.Int(int64(i))
	}
}

// randAnnotated builds a source-annotated relation with a small int key
// domain (duplicate join keys) and occasional nulls.
func randAnnotated(rng *rand.Rand, dataset string) *Annotated {
	r := relation.New(dataset, relation.NewSchema(
		relation.Col("k", relation.KindInt),
		relation.Col(dataset+"_v", relation.KindFloat),
		relation.Col("shared", relation.KindString),
	))
	n := rng.Intn(25)
	for i := 0; i < n; i++ {
		k := relation.Int(int64(rng.Intn(5)))
		if rng.Float64() < 0.1 {
			k = relation.Null()
		}
		r.MustAppend(k, relation.Float(rng.Float64()),
			relation.String_(fmt.Sprintf("s%d", rng.Intn(3))))
	}
	return FromSource(dataset, r)
}

func mustSameAnnotated(t *testing.T, op string, got, want *Annotated) {
	t.Helper()
	if got.Rel.Name != want.Rel.Name {
		t.Fatalf("%s: name %q != legacy %q", op, got.Rel.Name, want.Rel.Name)
	}
	if !got.Rel.Equal(want.Rel) {
		t.Fatalf("%s: rows diverge:\ngot:\n%s\nwant:\n%s", op, got.Rel, want.Rel)
	}
	if len(got.Lineage) != len(want.Lineage) {
		t.Fatalf("%s: lineage len %d != %d", op, len(got.Lineage), len(want.Lineage))
	}
	for i := range got.Lineage {
		if len(got.Lineage[i]) != len(want.Lineage[i]) {
			t.Fatalf("%s: row %d lineage %v != legacy %v", op, i, got.Lineage[i], want.Lineage[i])
		}
		for j := range got.Lineage[i] {
			if got.Lineage[i][j] != want.Lineage[i][j] {
				t.Fatalf("%s: row %d lineage %v != legacy %v", op, i, got.Lineage[i], want.Lineage[i])
			}
		}
	}
}

// TestProvenanceJoinMatchesLegacy compares the streaming lineage join (and a
// stack of the other lineage operators on top of it) against the frozen
// ordinal-column implementation across random inputs.
func TestProvenanceJoinMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		l := randAnnotated(rng, "dsA")
		r := randAnnotated(rng, "dsB")
		on := []relation.JoinPair{{Left: "k", Right: "k"}}

		got, err := HashJoin(l, r, on...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacyProvHashJoin(l, r, on...)
		if err != nil {
			t.Fatal(err)
		}
		mustSameAnnotated(t, fmt.Sprintf("seed %d join", seed), got, want)

		// Pile more lineage ops on the joined result through the streaming
		// path and the eager wrappers; both must agree with themselves run
		// the legacy way (Select keeps lineage, Distinct merges it).
		pred := func(row []relation.Value, s relation.Schema) bool {
			i := s.IndexOf("shared")
			return !row[i].IsNull() && row[i].String() != "s2"
		}
		it := NewSelect(Scan(got), pred)
		it, err = NewProject(it, "k", "shared")
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := Materialize(it)
		if err != nil {
			t.Fatal(err)
		}
		eagerSel := Select(want, pred)
		eager, err := Project(eagerSel, "k", "shared")
		if err != nil {
			t.Fatal(err)
		}
		streamed.Rel.Name = eager.Rel.Name
		mustSameAnnotated(t, fmt.Sprintf("seed %d select+project", seed), streamed, eager)

		gotD := Distinct(streamed)
		wantD := Distinct(eager)
		mustSameAnnotated(t, fmt.Sprintf("seed %d distinct", seed), gotD, wantD)
	}
}

// TestProvenanceJoinMultiPair exercises two-column join pairs where the
// second pair forces the collision-suffix path in the shared JoinLayout.
func TestProvenanceJoinMultiPair(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	l := randAnnotated(rng, "dsA")
	r := randAnnotated(rng, "dsB")
	on := []relation.JoinPair{{Left: "k", Right: "k"}, {Left: "shared", Right: "shared"}}
	got, err := HashJoin(l, r, on...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyProvHashJoin(l, r, on...)
	if err != nil {
		t.Fatal(err)
	}
	mustSameAnnotated(t, "multi-pair join", got, want)
}
