// Package trust implements data trusts — the "coalitions of users who
// collectively choose to relinquish/sell certain personal information to
// benefit together" of paper §4.5 (citing the data-trust literature). An
// individual's rows are rarely worth much alone; pooled with other members'
// rows they form a sellable dataset. The trust tracks which member
// contributed which rows, sells the pooled relation into the market as a
// single seller, and divides revenue among members in proportion to the rows
// of theirs that mashups actually used (via provenance lineage) or equally.
package trust

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/provenance"
	"repro/internal/relation"
)

// Trust is a member-governed data pool.
type Trust struct {
	Name string

	mu      sync.Mutex
	schema  relation.Schema
	rows    [][]relation.Value
	rowNext int
	// member -> row indices contributed
	contributions map[string][]int
	members       []string
	// MinMembers gates selling: below quorum the pool stays private
	// (individual data alone "is not worth much in itself", §4.5 — and
	// selling a one-member pool would deanonymize that member).
	MinMembers int
}

// New creates a trust pooling rows of the given schema.
func New(name string, schema relation.Schema, minMembers int) (*Trust, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if minMembers < 1 {
		minMembers = 1
	}
	return &Trust{
		Name:          name,
		schema:        schema.Clone(),
		contributions: map[string][]int{},
		MinMembers:    minMembers,
	}, nil
}

// Join adds a member's rows to the pool. Rows must match the trust schema.
func (t *Trust) Join(member string, rows [][]relation.Value) error {
	if member == "" {
		return fmt.Errorf("trust: empty member name")
	}
	probe := relation.New("probe", t.schema)
	for _, row := range rows {
		if err := probe.Append(row); err != nil {
			return fmt.Errorf("trust %s: member %s: %w", t.Name, member, err)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.contributions[member]; !ok {
		t.members = append(t.members, member)
		sort.Strings(t.members)
	}
	for _, row := range rows {
		t.contributions[member] = append(t.contributions[member], t.rowNext)
		t.rows = append(t.rows, row)
		t.rowNext++
	}
	return nil
}

// Leave removes a member and withdraws their rows — the control over one's
// own data that data trusts exist to provide.
func (t *Trust) Leave(member string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	idxs, ok := t.contributions[member]
	if !ok {
		return fmt.Errorf("trust %s: %s is not a member", t.Name, member)
	}
	drop := map[int]bool{}
	for _, i := range idxs {
		drop[i] = true
	}
	var newRows [][]relation.Value
	remap := map[int]int{}
	for i, row := range t.rows {
		if drop[i] {
			continue
		}
		remap[i] = len(newRows)
		newRows = append(newRows, row)
	}
	t.rows = newRows
	delete(t.contributions, member)
	for m, is := range t.contributions {
		out := is[:0]
		for _, i := range is {
			if j, ok := remap[i]; ok {
				out = append(out, j)
			}
		}
		t.contributions[m] = out
	}
	for i, m := range t.members {
		if m == member {
			t.members = append(t.members[:i], t.members[i+1:]...)
			break
		}
	}
	return nil
}

// Members returns current member names, sorted.
func (t *Trust) Members() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.members))
	copy(out, t.members)
	return out
}

// NumRows returns the pooled row count.
func (t *Trust) NumRows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}

// Pool materializes the pooled relation for sale under the trust's name.
// It fails below the member quorum.
func (t *Trust) Pool() (*relation.Relation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.members) < t.MinMembers {
		return nil, fmt.Errorf("trust %s: %d members below quorum %d", t.Name, len(t.members), t.MinMembers)
	}
	r := relation.New(t.Name, t.schema)
	r.Rows = make([][]relation.Value, len(t.rows))
	for i, row := range t.rows {
		cp := make([]relation.Value, len(row))
		copy(cp, row)
		r.Rows[i] = cp
	}
	return r, nil
}

// SplitEqual divides revenue equally among members.
func (t *Trust) SplitEqual(revenue float64) map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[string]float64{}
	if len(t.members) == 0 {
		return out
	}
	share := revenue / float64(len(t.members))
	for _, m := range t.members {
		out[m] = share
	}
	return out
}

// SplitByRows divides revenue in proportion to rows contributed.
func (t *Trust) SplitByRows(revenue float64) map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[string]float64{}
	total := 0
	for _, is := range t.contributions {
		total += len(is)
	}
	if total == 0 {
		return out
	}
	for m, is := range t.contributions {
		out[m] = revenue * float64(len(is)) / float64(total)
	}
	return out
}

// SplitByUsage divides revenue by the rows of each member that a sold
// mashup's lineage actually used — the finest-grained, provenance-exact
// split. datasetID is the ID under which the trust's pool was registered in
// the market.
func (t *Trust) SplitByUsage(revenue float64, lineage []provenance.Lineage, datasetID string) map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Build row -> member.
	owner := map[int]string{}
	for m, is := range t.contributions {
		for _, i := range is {
			owner[i] = m
		}
	}
	counts := map[string]int{}
	total := 0
	for _, lin := range lineage {
		for _, ref := range lin {
			if ref.Dataset != datasetID {
				continue
			}
			if m, ok := owner[ref.Row]; ok {
				counts[m]++
				total++
			}
		}
	}
	out := map[string]float64{}
	if total == 0 {
		return out
	}
	for m, n := range counts {
		out[m] = revenue * float64(n) / float64(total)
	}
	return out
}
