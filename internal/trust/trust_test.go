package trust

import (
	"math"
	"testing"

	"repro/internal/provenance"
	"repro/internal/relation"
)

func schema() relation.Schema {
	return relation.NewSchema(
		relation.Col("user", relation.KindString),
		relation.Col("steps", relation.KindInt),
	)
}

func rows(user string, n int) [][]relation.Value {
	out := make([][]relation.Value, n)
	for i := range out {
		out[i] = []relation.Value{relation.String_(user), relation.Int(int64(1000 + i))}
	}
	return out
}

func TestJoinPoolQuorum(t *testing.T) {
	tr, err := New("fittrust", schema(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Join("alice", rows("alice", 5)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Join("bob", rows("bob", 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Pool(); err == nil {
		t.Error("below quorum must not pool")
	}
	if err := tr.Join("carol", rows("carol", 2)); err != nil {
		t.Fatal(err)
	}
	pool, err := tr.Pool()
	if err != nil {
		t.Fatal(err)
	}
	if pool.NumRows() != 10 {
		t.Errorf("pool rows = %d", pool.NumRows())
	}
	if len(tr.Members()) != 3 {
		t.Errorf("members = %v", tr.Members())
	}
	// Schema enforcement.
	if err := tr.Join("dave", [][]relation.Value{{relation.Int(1)}}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := tr.Join("", nil); err == nil {
		t.Error("empty member must fail")
	}
}

func TestLeaveWithdrawsRows(t *testing.T) {
	tr, _ := New("t", schema(), 1)
	_ = tr.Join("alice", rows("alice", 4))
	_ = tr.Join("bob", rows("bob", 6))
	if err := tr.Leave("alice"); err != nil {
		t.Fatal(err)
	}
	if tr.NumRows() != 6 {
		t.Errorf("rows after leave = %d", tr.NumRows())
	}
	pool, _ := tr.Pool()
	for _, row := range pool.Rows {
		if row[0].AsString() == "alice" {
			t.Fatal("alice's rows must be gone")
		}
	}
	// Bob's contribution indices survived the compaction.
	split := tr.SplitByRows(60)
	if split["bob"] != 60 {
		t.Errorf("bob's share = %v", split["bob"])
	}
	if err := tr.Leave("ghost"); err == nil {
		t.Error("unknown member leave must fail")
	}
}

func TestSplits(t *testing.T) {
	tr, _ := New("t", schema(), 1)
	_ = tr.Join("alice", rows("alice", 8))
	_ = tr.Join("bob", rows("bob", 2))
	eq := tr.SplitEqual(100)
	if eq["alice"] != 50 || eq["bob"] != 50 {
		t.Errorf("equal split = %v", eq)
	}
	byRows := tr.SplitByRows(100)
	if byRows["alice"] != 80 || byRows["bob"] != 20 {
		t.Errorf("row split = %v", byRows)
	}
	var sum float64
	for _, v := range byRows {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("row split must conserve: %v", sum)
	}
	empty, _ := New("e", schema(), 1)
	if len(empty.SplitEqual(10)) != 0 || len(empty.SplitByRows(10)) != 0 {
		t.Error("empty trust splits nothing")
	}
}

func TestSplitByUsage(t *testing.T) {
	tr, _ := New("t", schema(), 1)
	_ = tr.Join("alice", rows("alice", 3)) // rows 0..2
	_ = tr.Join("bob", rows("bob", 3))     // rows 3..5
	// A mashup that used alice's row 0 twice and bob's row 4 once.
	lineage := []provenance.Lineage{
		{{Dataset: "trustpool", Row: 0}},
		{{Dataset: "trustpool", Row: 0}, {Dataset: "other", Row: 9}},
		{{Dataset: "trustpool", Row: 4}},
	}
	split := tr.SplitByUsage(90, lineage, "trustpool")
	if split["alice"] != 60 || split["bob"] != 30 {
		t.Errorf("usage split = %v", split)
	}
	// Lineage for a different dataset yields nothing.
	if got := tr.SplitByUsage(90, lineage, "unrelated"); len(got) != 0 {
		t.Errorf("unrelated split = %v", got)
	}
}

func TestPoolIsolation(t *testing.T) {
	tr, _ := New("t", schema(), 1)
	_ = tr.Join("alice", rows("alice", 2))
	pool, _ := tr.Pool()
	pool.Rows[0][1] = relation.Int(-1)
	pool2, _ := tr.Pool()
	if pool2.Rows[0][1].AsInt() == -1 {
		t.Error("pool must be re-materialized; callers cannot mutate the trust")
	}
}
