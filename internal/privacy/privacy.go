// Package privacy provides the statistical-database-privacy toolkit of the
// Seller Management Platform (paper §4.2): sellers who fear leaking PII run
// their datasets through these mechanisms before sharing with the arbiter.
// It implements the Laplace mechanism for numeric columns, randomized
// response for categorical columns, k-anonymity-style generalization for
// quasi-identifiers, and an epsilon budget accountant, so the platform can
// reason about the privacy-value tradeoff (paper §8.2 "Privacy-Value
// Connection", experiment E7).
package privacy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/relation"
)

// Budget tracks cumulative epsilon spent per dataset, enforcing a cap. The
// composition rule applied is basic (sequential) composition: epsilons add.
type Budget struct {
	Cap   float64
	spent map[string]float64
}

// NewBudget creates an accountant with the given per-dataset epsilon cap.
func NewBudget(cap float64) *Budget {
	return &Budget{Cap: cap, spent: map[string]float64{}}
}

// Spend records eps against the dataset, failing if the cap would be passed.
func (b *Budget) Spend(dataset string, eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("privacy: epsilon must be positive, got %g", eps)
	}
	if b.spent[dataset]+eps > b.Cap+1e-12 {
		return fmt.Errorf("privacy: dataset %q budget exhausted: spent %.3f + %.3f > cap %.3f",
			dataset, b.spent[dataset], eps, b.Cap)
	}
	b.spent[dataset] += eps
	return nil
}

// Spent returns the epsilon consumed so far for a dataset.
func (b *Budget) Spent(dataset string) float64 { return b.spent[dataset] }

// Remaining returns the budget left for a dataset.
func (b *Budget) Remaining(dataset string) float64 { return b.Cap - b.spent[dataset] }

// laplace draws Laplace(0, scale) noise from rng.
func laplace(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	return -scale * sgn(u) * math.Log(1-2*math.Abs(u))
}

func sgn(f float64) float64 {
	if f < 0 {
		return -1
	}
	return 1
}

// LaplaceColumn returns a copy of r with Laplace(sensitivity/eps) noise added
// to the named numeric column. Smaller eps = more privacy = noisier values =
// lower data value for the buyer — the tradeoff E7 sweeps.
func LaplaceColumn(r *relation.Relation, col string, eps, sensitivity float64, rng *rand.Rand) (*relation.Relation, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("privacy: epsilon must be positive, got %g", eps)
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("privacy: sensitivity must be positive, got %g", sensitivity)
	}
	scale := sensitivity / eps
	return relation.Map(r, col, relation.KindFloat, func(v relation.Value) relation.Value {
		if v.IsNull() || !v.IsNumeric() {
			return v
		}
		return relation.Float(v.AsFloat() + laplace(rng, scale))
	})
}

// RandomizedResponse flips each value of a categorical column to a uniformly
// random value from the column's domain with probability p = 2/(1+e^eps),
// the standard generalized-randomized-response rate for eps-DP over a binary
// report, extended to the observed domain.
func RandomizedResponse(r *relation.Relation, col string, eps float64, rng *rand.Rand) (*relation.Relation, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("privacy: epsilon must be positive, got %g", eps)
	}
	ci := r.Schema.IndexOf(col)
	if ci < 0 {
		return nil, fmt.Errorf("privacy: no column %q", col)
	}
	// Collect domain.
	domSet := map[string]relation.Value{}
	for _, row := range r.Rows {
		if !row[ci].IsNull() {
			domSet[row[ci].Key()] = row[ci]
		}
	}
	keys := make([]string, 0, len(domSet))
	for k := range domSet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	domain := make([]relation.Value, len(keys))
	for i, k := range keys {
		domain[i] = domSet[k]
	}
	if len(domain) == 0 {
		return r.Clone(), nil
	}
	pFlip := 2 / (1 + math.Exp(eps))
	if pFlip > 1 {
		pFlip = 1
	}
	out := r.Clone()
	for _, row := range out.Rows {
		if row[ci].IsNull() {
			continue
		}
		if rng.Float64() < pFlip {
			row[ci] = domain[rng.Intn(len(domain))]
		}
	}
	return out, nil
}

// GeneralizeNumeric buckets a numeric quasi-identifier into ranges of the
// given width, replacing each value with its bucket midpoint. Combined with
// SuppressRare this yields a k-anonymity-style release.
func GeneralizeNumeric(r *relation.Relation, col string, width float64) (*relation.Relation, error) {
	if width <= 0 {
		return nil, fmt.Errorf("privacy: bucket width must be positive, got %g", width)
	}
	return relation.Map(r, col, relation.KindFloat, func(v relation.Value) relation.Value {
		if v.IsNull() || !v.IsNumeric() {
			return v
		}
		b := math.Floor(v.AsFloat()/width) * width
		return relation.Float(b + width/2)
	})
}

// SuppressRare removes rows whose combination of the given quasi-identifier
// columns appears fewer than k times, achieving k-anonymity over those
// columns for the surviving rows.
func SuppressRare(r *relation.Relation, quasi []string, k int) (*relation.Relation, error) {
	if k < 1 {
		return nil, fmt.Errorf("privacy: k must be >= 1, got %d", k)
	}
	idx := make([]int, len(quasi))
	for i, q := range quasi {
		idx[i] = r.Schema.IndexOf(q)
		if idx[i] < 0 {
			return nil, fmt.Errorf("privacy: no column %q", q)
		}
	}
	var buf []byte
	counts := map[string]int{}
	for _, row := range r.Rows {
		buf = relation.AppendRowKey(buf[:0], row, idx)
		counts[string(buf)]++
	}
	it := relation.NewSelect(relation.NewScan(r), func(row []relation.Value, _ relation.Schema) bool {
		buf = relation.AppendRowKey(buf[:0], row, idx)
		return counts[string(buf)] >= k
	})
	out, _ := relation.Materialize(it)
	out.Name = r.Name + "_kanon"
	return out, nil
}

// IsKAnonymous verifies the k-anonymity property over the quasi columns.
func IsKAnonymous(r *relation.Relation, quasi []string, k int) (bool, error) {
	idx := make([]int, len(quasi))
	for i, q := range quasi {
		idx[i] = r.Schema.IndexOf(q)
		if idx[i] < 0 {
			return false, fmt.Errorf("privacy: no column %q", q)
		}
	}
	var buf []byte
	counts := map[string]int{}
	for _, row := range r.Rows {
		buf = relation.AppendRowKey(buf[:0], row, idx)
		counts[string(buf)]++
	}
	for _, n := range counts {
		if n < k {
			return false, nil
		}
	}
	return true, nil
}

// DropColumns removes outright-identifying columns (names, SSNs) before
// release. It is the bluntest tool in the anonymization pipeline.
func DropColumns(r *relation.Relation, cols ...string) (*relation.Relation, error) {
	keep := make([]string, 0, len(r.Schema))
	drop := map[string]bool{}
	for _, c := range cols {
		if !r.Schema.Has(c) {
			return nil, fmt.Errorf("privacy: no column %q", c)
		}
		drop[c] = true
	}
	for _, c := range r.Schema {
		if !drop[c.Name] {
			keep = append(keep, c.Name)
		}
	}
	return relation.Project(r, keep...)
}

// Pseudonymize replaces a string identifier column with stable opaque tokens
// ("mapping of employees to IDs", paper §1): equal inputs get equal tokens.
// The returned mapping table (token -> original) stays with the seller; the
// arbiter may later request it during negotiation rounds.
func Pseudonymize(r *relation.Relation, col, prefix string) (*relation.Relation, map[string]string, error) {
	ci := r.Schema.IndexOf(col)
	if ci < 0 {
		return nil, nil, fmt.Errorf("privacy: no column %q", col)
	}
	mapping := map[string]string{}
	next := 0
	out, err := relation.Map(r, col, relation.KindString, func(v relation.Value) relation.Value {
		if v.IsNull() {
			return v
		}
		orig := v.String()
		for tok, o := range mapping {
			if o == orig {
				return relation.String_(tok)
			}
		}
		tok := fmt.Sprintf("%s%04d", prefix, next)
		next++
		mapping[tok] = orig
		return relation.String_(tok)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, mapping, nil
}
