package privacy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func mkRel(n int) *relation.Relation {
	r := relation.New("t", relation.NewSchema(
		relation.Col("name", relation.KindString),
		relation.Col("age", relation.KindFloat),
		relation.Col("dept", relation.KindString),
	))
	depts := []string{"eng", "sales", "hr"}
	for i := 0; i < n; i++ {
		r.MustAppend(
			relation.String_("emp"+string(rune('a'+i%26))),
			relation.Float(float64(20+i%40)),
			relation.String_(depts[i%3]),
		)
	}
	return r
}

func TestBudget(t *testing.T) {
	b := NewBudget(1.0)
	if err := b.Spend("d1", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend("d1", 0.6); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend("d1", 0.1); err == nil {
		t.Error("exceeding cap must fail")
	}
	if err := b.Spend("d2", 0.9); err != nil {
		t.Error("budgets are per dataset")
	}
	if err := b.Spend("d2", -1); err == nil {
		t.Error("negative epsilon must fail")
	}
	if got := b.Spent("d1"); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("spent = %v", got)
	}
	if got := b.Remaining("d2"); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("remaining = %v", got)
	}
}

func TestLaplaceNoiseScalesWithEpsilon(t *testing.T) {
	r := mkRel(2000)
	rng := rand.New(rand.NewSource(1))
	loose, err := LaplaceColumn(r, "age", 10.0, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(1))
	tight, err := LaplaceColumn(r, "age", 0.1, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	mad := func(a, b *relation.Relation) float64 {
		ai := a.Schema.IndexOf("age")
		var sum float64
		for i := range a.Rows {
			sum += math.Abs(a.Rows[i][ai].AsFloat() - b.Rows[i][ai].AsFloat())
		}
		return sum / float64(len(a.Rows))
	}
	e1, e2 := mad(loose, r), mad(tight, r)
	if e1 >= e2 {
		t.Errorf("eps=10 noise %v should be << eps=0.1 noise %v", e1, e2)
	}
	if e2 < 1 {
		t.Errorf("eps=0.1 noise too small: %v", e2)
	}
	if _, err := LaplaceColumn(r, "age", -1, 1, rng); err == nil {
		t.Error("negative epsilon must fail")
	}
	if _, err := LaplaceColumn(r, "age", 1, 0, rng); err == nil {
		t.Error("zero sensitivity must fail")
	}
}

func TestRandomizedResponse(t *testing.T) {
	r := mkRel(3000)
	rng := rand.New(rand.NewSource(7))
	out, err := RandomizedResponse(r, "dept", 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	di := r.Schema.IndexOf("dept")
	changed := 0
	for i := range r.Rows {
		if !r.Rows[i][di].Equal(out.Rows[i][di]) {
			changed++
		}
	}
	// pFlip = 2/(1+e) ≈ 0.731; of flips, 2/3 land on a different value,
	// so expect ~49% changed.
	frac := float64(changed) / float64(len(r.Rows))
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("changed fraction = %v, want ~0.49", frac)
	}
	// Domain preserved.
	seen := map[string]bool{}
	for _, row := range out.Rows {
		seen[row[di].AsString()] = true
	}
	for d := range seen {
		if d != "eng" && d != "sales" && d != "hr" {
			t.Errorf("value %q escaped domain", d)
		}
	}
	if _, err := RandomizedResponse(r, "ghost", 1, rng); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestGeneralizeAndSuppress(t *testing.T) {
	r := mkRel(100)
	g, err := GeneralizeNumeric(r, "age", 10)
	if err != nil {
		t.Fatal(err)
	}
	ai := g.Schema.IndexOf("age")
	for _, row := range g.Rows {
		v := row[ai].AsFloat()
		if math.Mod(v-5, 10) != 0 {
			t.Fatalf("generalized value %v is not a bucket midpoint", v)
		}
	}
	k := 5
	anon, err := SuppressRare(g, []string{"age", "dept"}, k)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsKAnonymous(anon, []string{"age", "dept"}, k)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("suppressed relation must be k-anonymous")
	}
	if _, err := GeneralizeNumeric(r, "age", 0); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := SuppressRare(r, []string{"age"}, 0); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestDropColumns(t *testing.T) {
	r := mkRel(5)
	out, err := DropColumns(r, "name")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Has("name") || !out.Schema.Has("age") {
		t.Errorf("schema = %s", out.Schema)
	}
	if _, err := DropColumns(r, "ghost"); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestPseudonymizeStable(t *testing.T) {
	r := relation.New("t", relation.NewSchema(relation.Col("emp", relation.KindString)))
	r.MustAppend(relation.String_("alice"))
	r.MustAppend(relation.String_("bob"))
	r.MustAppend(relation.String_("alice"))
	out, mapping, err := Pseudonymize(r, "emp", "E")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rows[0][0].Equal(out.Rows[2][0]) {
		t.Error("equal inputs must get equal tokens")
	}
	if out.Rows[0][0].Equal(out.Rows[1][0]) {
		t.Error("distinct inputs must get distinct tokens")
	}
	if len(mapping) != 2 {
		t.Errorf("mapping size = %d", len(mapping))
	}
	tok := out.Rows[0][0].AsString()
	if mapping[tok] != "alice" {
		t.Errorf("mapping[%s] = %s", tok, mapping[tok])
	}
}
