package market

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/provenance"
	"repro/internal/relation"
)

// additive game: v(S) = sum of per-player values.
func additive(vals map[string]float64) ValueFunc {
	return func(s map[string]bool) float64 {
		var sum float64
		for p := range s {
			sum += vals[p]
		}
		return sum
	}
}

func TestShapleyExactAdditive(t *testing.T) {
	players := []string{"x", "y", "z"}
	v := additive(map[string]float64{"x": 10, "y": 30, "z": 60})
	w := ShapleyExact{}.Allocate(players, v)
	if math.Abs(w["x"]-0.1) > 1e-9 || math.Abs(w["y"]-0.3) > 1e-9 || math.Abs(w["z"]-0.6) > 1e-9 {
		t.Errorf("additive shapley = %v", w)
	}
}

func TestShapleySymmetry(t *testing.T) {
	// Glove game variant: any two players together earn 1, alone 0.
	players := []string{"p", "q"}
	v := func(s map[string]bool) float64 {
		if len(s) == 2 {
			return 1
		}
		return 0
	}
	w := ShapleyExact{}.Allocate(players, v)
	if math.Abs(w["p"]-0.5) > 1e-9 || math.Abs(w["q"]-0.5) > 1e-9 {
		t.Errorf("symmetric players must split equally: %v", w)
	}
}

func TestShapleyNullPlayer(t *testing.T) {
	players := []string{"a", "b", "null"}
	v := func(s map[string]bool) float64 {
		if s["a"] && s["b"] {
			return 100
		}
		return 0
	}
	w := ShapleyExact{}.Allocate(players, v)
	if w["null"] != 0 {
		t.Errorf("null player must get 0, got %v", w["null"])
	}
	if math.Abs(w["a"]-w["b"]) > 1e-9 {
		t.Errorf("a and b symmetric: %v", w)
	}
}

func TestMonteCarloApproximatesExact(t *testing.T) {
	players := []string{"a", "b", "c", "d"}
	v := additive(map[string]float64{"a": 5, "b": 10, "c": 20, "d": 65})
	exact := ShapleyExact{}.Allocate(players, v)
	mc := ShapleyMonteCarlo{Samples: 3000, Seed: 1}.Allocate(players, v)
	if err := ShapleyError(exact, mc); err > 0.05 {
		t.Errorf("mc error = %v, want < 0.05", err)
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	players := []string{"a", "b", "c"}
	v := additive(map[string]float64{"a": 1, "b": 2, "c": 3})
	w1 := ShapleyMonteCarlo{Samples: 100, Seed: 9}.Allocate(players, v)
	w2 := ShapleyMonteCarlo{Samples: 100, Seed: 9}.Allocate(players, v)
	for p := range w1 {
		if w1[p] != w2[p] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestLeaveOneOutAndUniform(t *testing.T) {
	players := []string{"a", "b"}
	v := additive(map[string]float64{"a": 25, "b": 75})
	loo := LeaveOneOut{}.Allocate(players, v)
	if math.Abs(loo["a"]-0.25) > 1e-9 {
		t.Errorf("loo = %v", loo)
	}
	u := Uniform{}.Allocate(players, v)
	if u["a"] != 0.5 || u["b"] != 0.5 {
		t.Errorf("uniform = %v", u)
	}
	if len(Uniform{}.Allocate(nil, v)) != 0 {
		t.Error("no players, no weights")
	}
}

func TestWeightsSumToOne(t *testing.T) {
	players := []string{"a", "b", "c"}
	v := func(s map[string]bool) float64 { return float64(len(s) * len(s)) } // superadditive
	for _, alloc := range []Allocator{ShapleyExact{}, ShapleyMonteCarlo{Samples: 500, Seed: 2}, LeaveOneOut{}, Uniform{}} {
		w := alloc.Allocate(players, v)
		var sum float64
		for _, x := range w {
			if x < 0 {
				t.Errorf("%s: negative weight %v", alloc.Name(), x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: weights sum to %v", alloc.Name(), sum)
		}
	}
}

func TestInCore(t *testing.T) {
	players := []string{"a", "b"}
	v := func(s map[string]bool) float64 {
		if len(s) == 2 {
			return 100
		}
		if s["a"] {
			return 80
		}
		return 0
	}
	// a must get >= 80 of the 100 for core stability.
	inCore := map[string]float64{"a": 0.9, "b": 0.1}
	ok, err := InCore(players, v, inCore, 100)
	if err != nil {
		t.Fatalf("InCore: %v", err)
	}
	if !ok {
		t.Error("0.9/0.1 split should be in core")
	}
	ok, err = InCore(players, v, notCoreSplit, 100)
	if err != nil {
		t.Fatalf("InCore: %v", err)
	}
	if ok {
		t.Error("0.5/0.5 split violates a's claim of 80")
	}
}

var notCoreSplit = map[string]float64{"a": 0.5, "b": 0.5}

func TestInCoreInfeasibleReturnsError(t *testing.T) {
	players := make([]string, 21)
	for i := range players {
		players[i] = fmt.Sprintf("p%02d", i)
	}
	v := func(s map[string]bool) float64 { return float64(len(s)) }
	if _, err := InCore(players, v, map[string]float64{}, 100); err == nil {
		t.Fatal("expected an error beyond 20 players, got nil")
	}
}

func TestRowCountValue(t *testing.T) {
	l := relation.New("l", relation.NewSchema(relation.Col("k", relation.KindInt)))
	l.MustAppend(relation.Int(1))
	l.MustAppend(relation.Int(2))
	r := relation.New("r", relation.NewSchema(relation.Col("k", relation.KindInt), relation.Col("v", relation.KindInt)))
	r.MustAppend(relation.Int(1), relation.Int(10))
	al := provenance.FromSource("d1", l)
	ar := provenance.FromSource("d2", r)
	j, err := provenance.HashJoin(al, ar, relation.JoinPair{Left: "k", Right: "k"})
	if err != nil {
		t.Fatal(err)
	}
	v := RowCountValue(j)
	if v(map[string]bool{"d1": true}) != 0 {
		t.Error("d1 alone produces no joined rows")
	}
	if v(map[string]bool{"d1": true, "d2": true}) != 1 {
		t.Error("grand coalition produces all rows")
	}
	if v(nil) != 0 {
		t.Error("empty coalition is worthless")
	}
	// Shapley over this game: perfect complements split 50/50.
	w := ShapleyExact{}.Allocate(j.Datasets(), v)
	if math.Abs(w["d1"]-0.5) > 1e-9 {
		t.Errorf("complements split = %v", w)
	}
}

func TestShapleyErrorMetric(t *testing.T) {
	a := map[string]float64{"x": 0.5, "y": 0.5}
	b := map[string]float64{"x": 0.4, "y": 0.6}
	if got := ShapleyError(a, b); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("error = %v", got)
	}
	if ShapleyError(a, a) != 0 {
		t.Error("self distance is 0")
	}
}

// TestPerfectSubstitutesUniformFallback pins the all-zero-split fix: when
// every player is a perfect substitute — v(S) is the same positive constant
// for every non-empty S, so each marginal v(N) - v(N\{i}) is 0 — the grand
// coalition still has value and the revenue must not silently evaporate.
// normalizeWeights falls back to a uniform split instead of all-zero weights
// (which used to leave the escrow unpaid forever).
func TestPerfectSubstitutesUniformFallback(t *testing.T) {
	players := []string{"s1", "s2", "s3"}
	v := func(s map[string]bool) float64 {
		if len(s) > 0 {
			return 120 // any single dataset already delivers everything
		}
		return 0
	}
	for _, alloc := range []Allocator{LeaveOneOut{}, ShapleyExact{}, ShapleyMonteCarlo{Samples: 100, Seed: 7}} {
		w := alloc.Allocate(players, v)
		var sum float64
		for _, p := range players {
			if w[p] < 0 {
				t.Errorf("%s: negative weight for %s: %v", alloc.Name(), p, w[p])
			}
			sum += w[p]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: weights sum to %v under perfect substitutes, want 1", alloc.Name(), sum)
		}
	}
	// The degenerate-but-worthless game still allocates nothing: the uniform
	// fallback must not invent a split where there is no revenue to split.
	zero := func(map[string]bool) float64 { return 0 }
	for p, w := range (LeaveOneOut{}).Allocate(players, zero) {
		if w != 0 {
			t.Errorf("worthless coalition allocated %v to %s", w, p)
		}
	}
}
