// Package market is the market design toolbox (paper §3): it models a
// market design M as the five components that govern interactions between
// sellers, buyers and arbiter — elicitation protocol, allocation function,
// payment function, revenue allocation and revenue sharing — and provides
// implementations engineered for the unique characteristics of data as an
// asset: free replicability (infinite supply) and arbitrary combinability.
//
// Mechanisms implemented:
//
//   - posted price (the Dawex-style baseline the paper critiques);
//   - Vickrey second-price and its K-unit generalization (GSP-flavoured);
//   - random-sampling optimal price (Goldberg–Hartline digital-goods
//     auction) for freely replicable data;
//   - Myerson-style reserve pricing;
//   - an ex-post reporting mechanism with escrowed deposits and audits
//     (paper §3.2.2.2, for buyers who learn their value only after use).
//
// Revenue allocation (paper §3.2.3) ships as exact Shapley value,
// Monte-Carlo Shapley, leave-one-out, and uniform allocators, plus a
// core-stability check.
package market

import (
	"fmt"
	"sort"
)

// Bid is a buyer's reported willingness to pay for a particular mashup. The
// True field is the buyer's private valuation; mechanisms never read it — it
// exists so the simulator can measure regret and truthfulness.
type Bid struct {
	Buyer string
	Offer float64
	True  float64
}

// Sale records one allocation outcome: the buyer obtains the asset at Price.
type Sale struct {
	Buyer string
	Price float64
}

// Outcome is the result of running a mechanism over a set of bids.
type Outcome struct {
	Sales   []Sale
	Revenue float64
}

func outcome(sales []Sale) Outcome {
	var rev float64
	for _, s := range sales {
		rev += s.Price
	}
	sort.Slice(sales, func(i, j int) bool { return sales[i].Buyer < sales[j].Buyer })
	return Outcome{Sales: sales, Revenue: rev}
}

// Mechanism couples the allocation and payment functions of a market design.
// Supply is the number of copies for sale: SupplyUnlimited for freely
// replicable data, 1 for an exclusive license (paper §4.4).
type Mechanism interface {
	Name() string
	Run(bids []Bid, supply int) Outcome
}

// SupplyUnlimited marks infinite supply (data is freely replicable).
const SupplyUnlimited = -1

// sortedByOffer returns bids sorted by descending offer (ties by buyer name
// for determinism).
func sortedByOffer(bids []Bid) []Bid {
	out := make([]Bid, len(bids))
	copy(out, bids)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Offer != out[j].Offer {
			return out[i].Offer > out[j].Offer
		}
		return out[i].Buyer < out[j].Buyer
	})
	return out
}

// PostedPrice sells to every bidder offering at least P, at exactly P —
// today's data marketplaces (Dawex, Snowflake Data Exchange) in one line.
// Not incentive-compatible for the seller side (P is a guess) and leaves
// buyer surplus unextracted; it is the baseline the designs below beat.
type PostedPrice struct {
	P float64
}

// Name implements Mechanism.
func (m PostedPrice) Name() string { return fmt.Sprintf("posted(%.0f)", m.P) }

// Run implements Mechanism.
func (m PostedPrice) Run(bids []Bid, supply int) Outcome {
	var sales []Sale
	for _, b := range sortedByOffer(bids) {
		if supply != SupplyUnlimited && len(sales) >= supply {
			break
		}
		if b.Offer >= m.P {
			sales = append(sales, Sale{Buyer: b.Buyer, Price: m.P})
		}
	}
	return outcome(sales)
}

// SecondPrice is the K-unit Vickrey auction: the top-K bidders win and each
// pays the (K+1)-th bid (or the reserve when there are no more bids).
// Truthful for unit demand; the paper cites generalized second-price ad
// auctions as the template (§3.2.1).
type SecondPrice struct {
	Reserve float64
}

// Name implements Mechanism.
func (m SecondPrice) Name() string { return fmt.Sprintf("vickrey(r=%.0f)", m.Reserve) }

// Run implements Mechanism.
func (m SecondPrice) Run(bids []Bid, supply int) Outcome {
	sorted := sortedByOffer(bids)
	k := supply
	if supply == SupplyUnlimited {
		// With unlimited supply a Vickrey auction degenerates to the
		// reserve: everyone above the reserve wins at the reserve.
		var sales []Sale
		for _, b := range sorted {
			if b.Offer >= m.Reserve {
				sales = append(sales, Sale{Buyer: b.Buyer, Price: m.Reserve})
			}
		}
		return outcome(sales)
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	// Clearing price: the highest losing bid, floored at the reserve.
	price := m.Reserve
	if supply < len(sorted) && sorted[supply].Offer > price {
		price = sorted[supply].Offer
	}
	var sales []Sale
	for i := 0; i < k; i++ {
		if sorted[i].Offer < m.Reserve {
			break
		}
		sales = append(sales, Sale{Buyer: sorted[i].Buyer, Price: price})
	}
	return outcome(sales)
}

// GSP is the generalized second-price auction: the i-th highest bidder wins
// slot i and pays the (i+1)-th bid. Not truthful in general (the paper notes
// its use in real-time ad bidding).
type GSP struct{}

// Name implements Mechanism.
func (GSP) Name() string { return "gsp" }

// Run implements Mechanism.
func (GSP) Run(bids []Bid, supply int) Outcome {
	sorted := sortedByOffer(bids)
	k := supply
	if supply == SupplyUnlimited || k > len(sorted) {
		k = len(sorted)
	}
	var sales []Sale
	for i := 0; i < k; i++ {
		price := 0.0
		if i+1 < len(sorted) {
			price = sorted[i+1].Offer
		}
		sales = append(sales, Sale{Buyer: sorted[i].Buyer, Price: price})
	}
	return outcome(sales)
}

// RSOP is the random-sampling optimal-price auction for digital goods
// (Goldberg–Hartline): bidders are split into two halves by a deterministic
// pseudo-random rule seeded by Seed; each half's revenue-optimal fixed price
// is offered to the *other* half. Truthful in expectation and approximately
// revenue-optimal for freely replicable assets — the paper's §3.2.1 cites
// exactly this line of work for data's infinite supply.
type RSOP struct {
	Seed int64
}

// Name implements Mechanism.
func (m RSOP) Name() string { return "rsop" }

// Run implements Mechanism.
func (m RSOP) Run(bids []Bid, supply int) Outcome {
	if len(bids) == 0 {
		return Outcome{}
	}
	if len(bids) == 1 {
		// Degenerate: charge the lone bidder their own bid (no sample to
		// learn from); equivalent to a take-it-or-leave at bid value.
		return outcome([]Sale{{Buyer: bids[0].Buyer, Price: bids[0].Offer}})
	}
	sorted := sortedByOffer(bids)
	// Deterministic split: xorshift of seed and index parity.
	var a, b []Bid
	x := uint64(m.Seed)*0x9e3779b97f4a7c15 + 0x1234567
	for i, bid := range sorted {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if (x+uint64(i))%2 == 0 {
			a = append(a, bid)
		} else {
			b = append(b, bid)
		}
	}
	pa := optimalFixedPrice(a)
	pb := optimalFixedPrice(b)
	var sales []Sale
	for _, bid := range a {
		if bid.Offer >= pb && pb > 0 {
			sales = append(sales, Sale{Buyer: bid.Buyer, Price: pb})
		}
	}
	for _, bid := range b {
		if bid.Offer >= pa && pa > 0 {
			sales = append(sales, Sale{Buyer: bid.Buyer, Price: pa})
		}
	}
	if supply != SupplyUnlimited && len(sales) > supply {
		sort.Slice(sales, func(i, j int) bool { return sales[i].Price > sales[j].Price })
		sales = sales[:supply]
	}
	return outcome(sales)
}

// optimalFixedPrice finds the fixed price maximizing revenue over the bids.
func optimalFixedPrice(bids []Bid) float64 {
	best, bestRev := 0.0, 0.0
	for _, cand := range bids {
		p := cand.Offer
		if p <= 0 {
			continue
		}
		var rev float64
		for _, b := range bids {
			if b.Offer >= p {
				rev += p
			}
		}
		if rev > bestRev || (rev == bestRev && p < best) {
			best, bestRev = p, rev
		}
	}
	return best
}

// ExPost implements the "buyers do not know how much to pay" protocol
// (§3.2.2.2): every requester gets the data up front against an escrowed
// deposit; after use they report their realized value and pay it. With audit
// probability AuditProb the arbiter can verify the report (re-running the
// WTP task); under-reporters pay Penalty times the shortfall. Reporting
// honestly is optimal whenever AuditProb·Penalty ≥ 1.
type ExPost struct {
	Deposit   float64
	AuditProb float64
	Penalty   float64
}

// Name implements Mechanism.
func (m ExPost) Name() string { return "expost" }

// Run implements Mechanism: with Offer interpreted as the buyer's *report*
// after use, each buyer pays min(report, deposit) — the escrow caps
// exposure. Audit effects are applied by RunAudited when true values and an
// audit schedule are available (the simulator exercises that path).
func (m ExPost) Run(bids []Bid, supply int) Outcome {
	var sales []Sale
	for _, b := range sortedByOffer(bids) {
		if supply != SupplyUnlimited && len(sales) >= supply {
			break
		}
		pay := b.Offer
		if m.Deposit > 0 && pay > m.Deposit {
			pay = m.Deposit
		}
		if pay < 0 {
			pay = 0
		}
		sales = append(sales, Sale{Buyer: b.Buyer, Price: pay})
	}
	return outcome(sales)
}

// AuditOutcome extends a sale with audit bookkeeping.
type AuditOutcome struct {
	Sale      Sale
	Audited   bool
	Shortfall float64 // true - reported when under-reported and audited
	Penalty   float64
}

// RunAudited executes the ex-post mechanism with audits: audited(i) says
// whether buyer i's report is verified. Under-reporting caught by an audit
// pays the shortfall plus Penalty·shortfall.
func (m ExPost) RunAudited(bids []Bid, audited func(i int) bool) ([]AuditOutcome, float64) {
	var out []AuditOutcome
	var revenue float64
	for i, b := range bids {
		ao := AuditOutcome{Sale: Sale{Buyer: b.Buyer, Price: b.Offer}}
		if audited != nil && audited(i) {
			ao.Audited = true
			if b.True > b.Offer {
				ao.Shortfall = b.True - b.Offer
				ao.Penalty = m.Penalty * ao.Shortfall
				ao.Sale.Price = b.True + ao.Penalty
			}
		}
		revenue += ao.Sale.Price
		out = append(out, ao)
	}
	return out, revenue
}
