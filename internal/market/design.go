package market

import (
	"fmt"
	"sort"

	"repro/internal/provenance"
)

// Goal is what the market design optimizes (paper §3.1: "maximize revenue,
// optimize social surplus, and others").
type Goal string

// Market goals.
const (
	GoalRevenue Goal = "revenue"
	GoalWelfare Goal = "welfare"
	GoalVolume  Goal = "volume"
)

// Type is the market environment (paper §3.3).
type Type string

// Market types.
const (
	TypeExternal Type = "external" // across organizations, money
	TypeInternal Type = "internal" // within an organization, bonus points
	TypeBarter   Type = "barter"   // data/services as the incentive
)

// Elicitation selects the protocol buyers use to communicate value
// (paper §3.2.2): up-front WTP-functions or ex-post reporting.
type Elicitation string

// Elicitation protocols.
const (
	ElicitUpfront Elicitation = "upfront"
	ElicitExPost  Elicitation = "expost"
)

// Design bundles the five components of a market design (paper §3.1) with
// its goal and type. Designs are plug'n'play: the arbiter accepts any Design
// and the simulator can stress any Design before deployment (paper Fig. 1).
type Design struct {
	Label       string
	Goal        Goal
	Type        Type
	Elicitation Elicitation
	// Mechanism couples allocation + payment.
	Mechanism Mechanism
	// Revenue allocation across contributing datasets.
	Allocator Allocator
	// ArbiterFee is the fraction of revenue the arbiter retains to fund
	// operations (and the data-insurance pool, paper §3.4).
	ArbiterFee float64
}

// Validate checks the design is complete and coherent.
func (d *Design) Validate() error {
	if d.Label == "" {
		return fmt.Errorf("market: design has no label")
	}
	if d.Mechanism == nil {
		return fmt.Errorf("market: design %q has no mechanism", d.Label)
	}
	if d.Allocator == nil {
		return fmt.Errorf("market: design %q has no revenue allocator", d.Label)
	}
	if d.ArbiterFee < 0 || d.ArbiterFee >= 1 {
		return fmt.Errorf("market: design %q arbiter fee %v out of [0,1)", d.Label, d.ArbiterFee)
	}
	if d.Elicitation == ElicitExPost {
		if _, ok := d.Mechanism.(ExPost); !ok {
			return fmt.Errorf("market: design %q declares ex-post elicitation but mechanism %s", d.Label, d.Mechanism.Name())
		}
	}
	return nil
}

// RevenueSplit is the final division of one sale's revenue.
type RevenueSplit struct {
	ArbiterCut float64
	SellerCut  map[string]float64 // seller -> amount
}

// ShareRevenue implements the revenue-sharing component (paper §3.2.3): the
// revenue of a sold mashup is allocated to datasets by the design's
// Allocator (with the provenance-derived value function when vf is nil) and
// then forwarded to each dataset's owner.
func (d *Design) ShareRevenue(total float64, anno *provenance.Annotated, owners map[string]string, vf ValueFunc) RevenueSplit {
	return d.ShareRevenueCtx(total, anno, owners, vf, AllocContext{})
}

// ShareRevenueCtx is ShareRevenue with a per-settlement allocation context:
// the settlement-derived sampler seed and the pricing round's coalition-value
// memo (see AllocContext).
func (d *Design) ShareRevenueCtx(total float64, anno *provenance.Annotated, owners map[string]string, vf ValueFunc, ctx AllocContext) RevenueSplit {
	if total <= 0 {
		return RevenueSplit{SellerCut: map[string]float64{}}
	}
	return d.ShareFractions(total, d.RevenueFractionsCtx(anno, owners, vf, ctx))
}

// RevenueFractions computes the normalized per-owner fractions of the
// post-fee revenue pool from provenance lineage — the allocation step of
// ShareRevenue, independent of the sale amount. Ex-post settlement fixes
// these fractions at delivery time (when the mashup's provenance is in
// hand) and persists them, so the split applied when the buyer later
// reports is a pure function of durable state. Returns nil when no lineage
// players exist (the arbiter then keeps the whole amount).
func (d *Design) RevenueFractions(anno *provenance.Annotated, owners map[string]string, vf ValueFunc) map[string]float64 {
	return d.RevenueFractionsCtx(anno, owners, vf, AllocContext{})
}

// RevenueFractionsCtx is RevenueFractions with a per-settlement allocation
// context, dispatched through AllocateWith so context-aware allocators
// receive the settlement seed and round memo.
func (d *Design) RevenueFractionsCtx(anno *provenance.Annotated, owners map[string]string, vf ValueFunc, ctx AllocContext) map[string]float64 {
	if anno == nil {
		return nil
	}
	players := anno.Datasets()
	if len(players) == 0 {
		return nil
	}
	if vf == nil {
		vf = RowCountValue(anno)
	}
	weights := AllocateWith(d.Allocator, players, vf, ctx)
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	if wsum == 0 {
		// Nothing had marginal value; split uniformly so sellers are still
		// compensated for participation.
		weights = Uniform{}.Allocate(players, vf)
		wsum = 1
	}
	fracs := map[string]float64{}
	for _, ds := range players {
		owner := owners[ds]
		if owner == "" {
			owner = ds
		}
		fracs[owner] += weights[ds] / wsum
	}
	return fracs
}

// ShareFractions divides one sale's revenue by pre-computed owner
// fractions: the arbiter takes its fee and each owner receives its fraction
// of the remaining pool. With no fractions the arbiter keeps everything.
func (d *Design) ShareFractions(total float64, fracs map[string]float64) RevenueSplit {
	split := RevenueSplit{SellerCut: map[string]float64{}}
	if total <= 0 {
		return split
	}
	split.ArbiterCut = total * d.ArbiterFee
	pool := total - split.ArbiterCut
	if len(fracs) == 0 {
		split.ArbiterCut = total
		return split
	}
	for owner, f := range fracs {
		split.SellerCut[owner] = pool * f
	}
	return split
}

// RowCountValue builds a characteristic function from provenance: v(S) is
// the fraction of mashup rows constructible from the datasets in S alone.
// This is the "reverse engineering of f()" for relational plans: lineage
// tells exactly which rows survive without a coalition's data.
func RowCountValue(anno *provenance.Annotated) ValueFunc {
	totalRows := anno.Rel.NumRows()
	return func(coalition map[string]bool) float64 {
		if totalRows == 0 || len(coalition) == 0 {
			return 0
		}
		kept := anno.RestrictToDatasets(coalition)
		return float64(kept.Rel.NumRows()) / float64(totalRows)
	}
}

// SatisfactionValue builds a characteristic function that re-evaluates a
// buyer-supplied scorer on the coalition-restricted mashup — the exact
// Shapley game of the data-valuation literature the paper cites (§8.2).
func SatisfactionValue(anno *provenance.Annotated, score func(rows int) float64) ValueFunc {
	return func(coalition map[string]bool) float64 {
		if len(coalition) == 0 {
			return 0
		}
		kept := anno.RestrictToDatasets(coalition)
		return score(kept.Rel.NumRows())
	}
}

// Registry is the plug'n'play catalog of named designs a DMMS deployment
// exposes (paper: "permit the declaration of a wide variety of market
// designs ... and their deployment on the same software platform").
type Registry struct {
	designs map[string]*Design
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{designs: map[string]*Design{}} }

// Register validates and stores a design under its label.
func (r *Registry) Register(d *Design) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if _, ok := r.designs[d.Label]; ok {
		return fmt.Errorf("market: design %q already registered", d.Label)
	}
	r.designs[d.Label] = d
	return nil
}

// Get returns a design by label.
func (r *Registry) Get(label string) (*Design, error) {
	d, ok := r.designs[label]
	if !ok {
		return nil, fmt.Errorf("market: no design %q (have %v)", label, r.Labels())
	}
	return d, nil
}

// Labels lists registered designs, sorted.
func (r *Registry) Labels() []string {
	out := make([]string, 0, len(r.designs))
	for l := range r.designs {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// StandardDesigns returns the designs the paper's scenarios call for:
// revenue-maximizing external markets, welfare-maximizing internal markets,
// a barter market, the posted-price status quo, and the ex-post protocol.
func StandardDesigns() *Registry {
	r := NewRegistry()
	must := func(d *Design) {
		if err := r.Register(d); err != nil {
			panic(err)
		}
	}
	must(&Design{
		Label: "external-rsop", Goal: GoalRevenue, Type: TypeExternal,
		Elicitation: ElicitUpfront, Mechanism: RSOP{Seed: 7},
		Allocator: ShapleyMonteCarlo{Samples: 200, Seed: 7}, ArbiterFee: 0.05,
	})
	must(&Design{
		Label: "external-vickrey", Goal: GoalRevenue, Type: TypeExternal,
		Elicitation: ElicitUpfront, Mechanism: SecondPrice{Reserve: 0},
		Allocator: ShapleyExact{}, ArbiterFee: 0.05,
	})
	// Internal markets maximize allocation, not revenue: a low nominal
	// point price keeps nearly every beneficial trade while still rewarding
	// the sharing department with bonus points.
	must(&Design{
		Label: "internal-welfare", Goal: GoalWelfare, Type: TypeInternal,
		Elicitation: ElicitUpfront, Mechanism: PostedPrice{P: 10},
		Allocator: Uniform{}, ArbiterFee: 0,
	})
	must(&Design{
		Label: "posted-baseline", Goal: GoalRevenue, Type: TypeExternal,
		Elicitation: ElicitUpfront, Mechanism: PostedPrice{P: 100},
		Allocator: LeaveOneOut{}, ArbiterFee: 0.05,
	})
	must(&Design{
		Label: "expost-audited", Goal: GoalVolume, Type: TypeExternal,
		Elicitation: ElicitExPost, Mechanism: ExPost{Deposit: 500, AuditProb: 0.3, Penalty: 4},
		Allocator: ShapleyMonteCarlo{Samples: 100, Seed: 11}, ArbiterFee: 0.05,
	})
	return r
}
