package market

import (
	"math"
	"testing"
	"testing/quick"
)

func bids(vals ...float64) []Bid {
	out := make([]Bid, len(vals))
	for i, v := range vals {
		out[i] = Bid{Buyer: string(rune('a' + i)), Offer: v, True: v}
	}
	return out
}

func findSale(o Outcome, buyer string) (Sale, bool) {
	for _, s := range o.Sales {
		if s.Buyer == buyer {
			return s, true
		}
	}
	return Sale{}, false
}

func TestPostedPrice(t *testing.T) {
	m := PostedPrice{P: 50}
	o := m.Run(bids(100, 60, 40), SupplyUnlimited)
	if len(o.Sales) != 2 {
		t.Fatalf("sales = %v", o.Sales)
	}
	for _, s := range o.Sales {
		if s.Price != 50 {
			t.Errorf("posted price must charge P, got %v", s.Price)
		}
	}
	if o.Revenue != 100 {
		t.Errorf("revenue = %v", o.Revenue)
	}
	// Limited supply: only the highest bidder wins.
	o = m.Run(bids(100, 60, 40), 1)
	if len(o.Sales) != 1 || o.Sales[0].Buyer != "a" {
		t.Errorf("limited supply sales = %v", o.Sales)
	}
}

func TestSecondPriceSingleUnit(t *testing.T) {
	m := SecondPrice{}
	o := m.Run(bids(100, 60, 40), 1)
	if len(o.Sales) != 1 {
		t.Fatalf("sales = %v", o.Sales)
	}
	if o.Sales[0].Buyer != "a" || o.Sales[0].Price != 60 {
		t.Errorf("winner pays second price: %v", o.Sales[0])
	}
}

func TestSecondPriceKUnits(t *testing.T) {
	m := SecondPrice{}
	o := m.Run(bids(100, 80, 60, 40), 2)
	if len(o.Sales) != 2 {
		t.Fatalf("sales = %v", o.Sales)
	}
	for _, s := range o.Sales {
		if s.Price != 60 {
			t.Errorf("k-unit clearing price must be (k+1)-th bid: %v", s)
		}
	}
}

func TestSecondPriceReserve(t *testing.T) {
	m := SecondPrice{Reserve: 70}
	o := m.Run(bids(100, 60, 40), 1)
	if len(o.Sales) != 1 || o.Sales[0].Price != 70 {
		t.Errorf("reserve binds: %v", o.Sales)
	}
	o = m.Run(bids(50, 40), 1)
	if len(o.Sales) != 0 {
		t.Errorf("all below reserve: %v", o.Sales)
	}
	// Unlimited supply degenerates to posted reserve: bids >= 70 win at 70.
	o = m.Run(bids(100, 80, 60), SupplyUnlimited)
	if len(o.Sales) != 2 {
		t.Fatalf("unlimited: %v", o.Sales)
	}
	for _, s := range o.Sales {
		if s.Price != 70 {
			t.Errorf("unlimited supply price = reserve, got %v", s.Price)
		}
	}
}

// Truthfulness of Vickrey: bidding true value is (weakly) dominant. Check a
// deviation cannot increase utility on a concrete profile sweep.
func TestVickreyTruthfulness(t *testing.T) {
	m := SecondPrice{}
	others := bids(60, 40)
	trueVal := 75.0
	utility := func(offer float64) float64 {
		all := append([]Bid{{Buyer: "z", Offer: offer, True: trueVal}}, others...)
		o := m.Run(all, 1)
		if s, ok := findSale(o, "z"); ok {
			return trueVal - s.Price
		}
		return 0
	}
	truthful := utility(trueVal)
	for _, dev := range []float64{10, 50, 59, 61, 74, 76, 100, 1000} {
		if u := utility(dev); u > truthful+1e-9 {
			t.Errorf("deviation to %v yields %v > truthful %v", dev, u, truthful)
		}
	}
}

func TestGSP(t *testing.T) {
	o := GSP{}.Run(bids(100, 80, 60), 2)
	if len(o.Sales) != 2 {
		t.Fatalf("sales = %v", o.Sales)
	}
	sa, _ := findSale(o, "a")
	sb, _ := findSale(o, "b")
	if sa.Price != 80 || sb.Price != 60 {
		t.Errorf("gsp prices a=%v b=%v", sa.Price, sb.Price)
	}
}

func TestRSOP(t *testing.T) {
	// Many identical bids: RSOP should find ~the common value as the price.
	var bs []Bid
	for i := 0; i < 40; i++ {
		name := "b" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		bs = append(bs, Bid{Buyer: name, Offer: 100})
	}
	o := RSOP{Seed: 3}.Run(bs, SupplyUnlimited)
	if len(o.Sales) != 40 {
		t.Fatalf("sales = %d, want all 40", len(o.Sales))
	}
	for _, s := range o.Sales {
		if s.Price != 100 {
			t.Errorf("price = %v, want 100", s.Price)
		}
	}
	// Never charges above bid.
	for _, s := range o.Sales {
		for _, b := range bs {
			if b.Buyer == s.Buyer && s.Price > b.Offer {
				t.Errorf("buyer %s charged %v above bid %v", s.Buyer, s.Price, b.Offer)
			}
		}
	}
	if got := (RSOP{}).Run(nil, SupplyUnlimited); len(got.Sales) != 0 {
		t.Error("no bids, no sales")
	}
	one := RSOP{}.Run(bids(42), SupplyUnlimited)
	if len(one.Sales) != 1 || one.Sales[0].Price != 42 {
		t.Errorf("single bid: %v", one.Sales)
	}
}

func TestRSOPRevenueCompetitive(t *testing.T) {
	// Mixed bids: RSOP revenue should be within a constant factor of the
	// optimal fixed-price revenue.
	var bs []Bid
	vals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}
	for i, v := range vals {
		bs = append(bs, Bid{Buyer: string(rune('a' + i)), Offer: v})
	}
	opt := 0.0
	for _, p := range vals {
		rev := 0.0
		for _, v := range vals {
			if v >= p {
				rev += p
			}
		}
		if rev > opt {
			opt = rev
		}
	}
	o := RSOP{Seed: 5}.Run(bs, SupplyUnlimited)
	if o.Revenue < opt/4 {
		t.Errorf("rsop revenue %v < opt/4 (%v)", o.Revenue, opt/4)
	}
}

func TestExPostRun(t *testing.T) {
	m := ExPost{Deposit: 50}
	o := m.Run([]Bid{{Buyer: "a", Offer: 30}, {Buyer: "b", Offer: 90}}, SupplyUnlimited)
	sa, _ := findSale(o, "a")
	sb, _ := findSale(o, "b")
	if sa.Price != 30 {
		t.Errorf("report below deposit pays report: %v", sa.Price)
	}
	if sb.Price != 50 {
		t.Errorf("report above deposit capped at deposit: %v", sb.Price)
	}
}

func TestExPostAuditMakesHonestyOptimal(t *testing.T) {
	m := ExPost{AuditProb: 0.5, Penalty: 4}
	trueVal := 100.0
	// Expected payment reporting r < trueVal, audited with prob q:
	// q·(true + penalty·(true-r)) + (1-q)·r. Honesty pays exactly true.
	expected := func(report float64) float64 {
		q := m.AuditProb
		pay := q*(trueVal+m.Penalty*(trueVal-report)) + (1-q)*report
		return pay
	}
	honest := expected(trueVal)
	if honest != trueVal {
		t.Fatalf("honest expected pay = %v", honest)
	}
	for _, r := range []float64{0, 20, 50, 99} {
		if expected(r) <= honest {
			t.Errorf("under-report %v pays %v <= honest %v; audit must deter", r, expected(r), honest)
		}
	}
	// RunAudited mechanics.
	outs, rev := m.RunAudited([]Bid{{Buyer: "a", Offer: 40, True: 100}}, func(int) bool { return true })
	if len(outs) != 1 || !outs[0].Audited {
		t.Fatal("audit must run")
	}
	if outs[0].Shortfall != 60 || outs[0].Penalty != 240 {
		t.Errorf("shortfall/penalty = %v/%v", outs[0].Shortfall, outs[0].Penalty)
	}
	if rev != 100+240 {
		t.Errorf("revenue = %v", rev)
	}
	// Honest report, audited: pays report.
	outs, _ = m.RunAudited([]Bid{{Buyer: "a", Offer: 100, True: 100}}, func(int) bool { return true })
	if outs[0].Sale.Price != 100 || outs[0].Penalty != 0 {
		t.Errorf("honest audited: %+v", outs[0])
	}
}

// Property: no mechanism ever charges a winner more than their offer
// (individual rationality for upfront mechanisms).
func TestIndividualRationalityProperty(t *testing.T) {
	mechs := []Mechanism{PostedPrice{P: 50}, SecondPrice{Reserve: 10}, GSP{}, RSOP{Seed: 1}}
	f := func(raw []uint8, supply uint8) bool {
		var bs []Bid
		for i, r := range raw {
			if i >= 20 {
				break
			}
			bs = append(bs, Bid{Buyer: string(rune('a' + i)), Offer: float64(r)})
		}
		sup := int(supply%5) + 1
		for _, m := range mechs {
			for _, s := range []int{sup, SupplyUnlimited} {
				o := m.Run(bs, s)
				for _, sale := range o.Sales {
					for _, b := range bs {
						if b.Buyer == sale.Buyer && sale.Price > b.Offer+1e-9 {
							return false
						}
					}
				}
				if s != SupplyUnlimited && len(o.Sales) > s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeRevenueMatchesSales(t *testing.T) {
	o := PostedPrice{P: 10}.Run(bids(10, 20, 30), SupplyUnlimited)
	var sum float64
	for _, s := range o.Sales {
		sum += s.Price
	}
	if math.Abs(sum-o.Revenue) > 1e-9 {
		t.Errorf("revenue %v != sum of sales %v", o.Revenue, sum)
	}
}
