package market

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGSPUnlimitedSupply(t *testing.T) {
	o := GSP{}.Run(bids(100, 80, 60), SupplyUnlimited)
	if len(o.Sales) != 3 {
		t.Fatalf("sales = %v", o.Sales)
	}
	// Last winner pays 0 (no next bid).
	sc, _ := findSale(o, "c")
	if sc.Price != 0 {
		t.Errorf("last gsp winner pays 0, got %v", sc.Price)
	}
}

func TestPostedPriceNoBidsNoSales(t *testing.T) {
	for _, m := range []Mechanism{PostedPrice{P: 10}, SecondPrice{}, GSP{}, ExPost{}} {
		if o := m.Run(nil, 1); len(o.Sales) != 0 || o.Revenue != 0 {
			t.Errorf("%s: empty bids must yield nothing, got %v", m.Name(), o)
		}
	}
}

func TestSecondPriceZeroSupply(t *testing.T) {
	o := SecondPrice{}.Run(bids(10, 20), 0)
	if len(o.Sales) != 0 {
		t.Errorf("zero supply sells nothing: %v", o.Sales)
	}
}

// Property: RSOP is deterministic per seed and never sells to a bidder below
// the price charged.
func TestRSOPProperties(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		var bs []Bid
		for i, r := range raw {
			if i >= 16 {
				break
			}
			bs = append(bs, Bid{Buyer: fmt.Sprintf("b%02d", i), Offer: float64(r)})
		}
		m := RSOP{Seed: seed}
		o1 := m.Run(bs, SupplyUnlimited)
		o2 := m.Run(bs, SupplyUnlimited)
		if o1.Revenue != o2.Revenue || len(o1.Sales) != len(o2.Sales) {
			return false
		}
		for _, s := range o1.Sales {
			for _, b := range bs {
				if b.Buyer == s.Buyer && s.Price > b.Offer {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: mechanisms never sell more units than supply and never create
// negative prices, under random bid profiles.
func TestMechanismInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mechs := []Mechanism{
		PostedPrice{P: 50}, SecondPrice{Reserve: 20}, GSP{},
		RSOP{Seed: 3}, ExPost{Deposit: 100},
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		bs := make([]Bid, n)
		for i := range bs {
			bs[i] = Bid{Buyer: fmt.Sprintf("b%02d", i), Offer: rng.Float64() * 200}
		}
		supply := rng.Intn(5) + 1
		if rng.Intn(3) == 0 {
			supply = SupplyUnlimited
		}
		for _, m := range mechs {
			o := m.Run(bs, supply)
			if supply != SupplyUnlimited && len(o.Sales) > supply {
				t.Fatalf("%s oversold: %d > %d", m.Name(), len(o.Sales), supply)
			}
			for _, s := range o.Sales {
				if s.Price < 0 {
					t.Fatalf("%s negative price %v", m.Name(), s.Price)
				}
			}
			// Each buyer wins at most once.
			seen := map[string]bool{}
			for _, s := range o.Sales {
				if seen[s.Buyer] {
					t.Fatalf("%s double-sold to %s", m.Name(), s.Buyer)
				}
				seen[s.Buyer] = true
			}
		}
	}
}

// TestShapleyEfficiencyAxiom: weights times grand-coalition value
// reconstruct each player's Shapley payout, i.e. the allocation is fully
// distributed (efficiency axiom) for non-negative games.
func TestShapleyEfficiencyAxiom(t *testing.T) {
	players := []string{"a", "b", "c", "d"}
	v := func(s map[string]bool) float64 {
		sum := 0.0
		for p := range s {
			sum += float64(len(p)) // silly but deterministic positive weights
		}
		if s["a"] && s["c"] {
			sum += 3 // synergy
		}
		return sum
	}
	w := ShapleyExact{}.Allocate(players, v)
	var total float64
	for _, x := range w {
		total += x
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("normalized weights must sum to 1, got %v", total)
	}
}
