package market

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/provenance"
	"repro/internal/relation"
)

// --- game builders with analytic Shapley ground truth ----------------------

// substitutesGame: v(S) = 100 for every non-empty S. True split: uniform.
func substitutesGame() ValueFunc {
	return func(s map[string]bool) float64 {
		if len(s) > 0 {
			return 100
		}
		return 0
	}
}

// complementsGame: v(S) = 100 only for the grand coalition. True split:
// uniform.
func complementsGame(n int) ValueFunc {
	return func(s map[string]bool) float64 {
		if len(s) == n {
			return 100
		}
		return 0
	}
}

// mixedSynergyGame: additive per-player values w_i = i+1 plus a bonus for
// each adjacent pair present. By linearity of the Shapley value the bonus of
// a pair splits evenly between its two members, so the truth is analytic.
func mixedSynergyGame(players []string, bonus float64) (ValueFunc, map[string]float64) {
	n := len(players)
	w := map[string]float64{}
	for i, p := range players {
		w[p] = float64(i + 1)
	}
	v := func(s map[string]bool) float64 {
		var sum float64
		for p, in := range s {
			if in {
				sum += w[p]
			}
		}
		for i := 0; i+1 < n; i++ {
			if s[players[i]] && s[players[i+1]] {
				sum += bonus
			}
		}
		return sum
	}
	phi := map[string]float64{}
	var grand float64
	for _, p := range players {
		phi[p] = w[p]
		grand += w[p]
	}
	for i := 0; i+1 < n; i++ {
		phi[players[i]] += bonus / 2
		phi[players[i+1]] += bonus / 2
		grand += bonus
	}
	truth := map[string]float64{}
	for _, p := range players {
		truth[p] = phi[p] / grand
	}
	return v, truth
}

func mkPlayers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("d%02d", i)
	}
	return out
}

func uniformTruth(players []string) map[string]float64 {
	out := map[string]float64{}
	for _, p := range players {
		out[p] = 1 / float64(len(players))
	}
	return out
}

// --- accuracy --------------------------------------------------------------

// TestAdaptiveAccuracyTable is the exact-vs-sampled accuracy table over
// 2–20-source games: the sampled path (forced via ExactMax 1) must land
// within the configured L1 error bound of the analytic Shapley split for
// substitutes, complements, and mixed-synergy structure. Seeds are fixed, so
// the assertion is deterministic.
func TestAdaptiveAccuracyTable(t *testing.T) {
	const target = 0.05
	for n := 2; n <= 20; n++ {
		players := mkPlayers(n)
		mixedV, mixedTruth := mixedSynergyGame(players, float64(n)/2)
		cases := []struct {
			game  string
			v     ValueFunc
			truth map[string]float64
		}{
			{"substitutes", substitutesGame(), uniformTruth(players)},
			{"complements", complementsGame(n), uniformTruth(players)},
			{"mixed", mixedV, mixedTruth},
		}
		for _, tc := range cases {
			alloc := AdaptiveShapley{ExactMax: 1, TargetErr: target, MaxSamples: 200000, Seed: 42}
			got := alloc.AllocateCtx(players, tc.v, AllocContext{Seed: int64(n)})
			if err := ShapleyError(got, tc.truth); err > target {
				t.Errorf("n=%d %s: sampled L1 error %.4f > %.2f (got %v)", n, tc.game, err, target, got)
			}
			var sum float64
			for _, w := range got {
				if w < 0 {
					t.Errorf("n=%d %s: negative weight", n, tc.game)
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("n=%d %s: weights sum to %v", n, tc.game, sum)
			}
		}
	}
}

// TestAdaptiveExactBelowThreshold pins that at or below ExactMax the adaptive
// allocator is exactly ShapleyExact — identical weights, no sampling.
func TestAdaptiveExactBelowThreshold(t *testing.T) {
	players := mkPlayers(8)
	v, _ := mixedSynergyGame(players, 3)
	before := AllocCounters()
	want := ShapleyExact{}.Allocate(players, v)
	got := AdaptiveShapley{}.Allocate(players, v)
	if err := ShapleyError(got, want); err > 1e-12 {
		t.Fatalf("adaptive below threshold diverges from exact: L1=%v", err)
	}
	after := AllocCounters()
	if after.SampledRuns != before.SampledRuns {
		t.Fatalf("adaptive sampled a game below ExactMax")
	}
	if after.ExactRuns < before.ExactRuns+2 {
		t.Fatalf("exact runs not counted: %+v -> %+v", before, after)
	}
}

// TestAdaptiveStopsEarlyOnZeroVariance: in an additive game every
// permutation yields identical marginals, so the confidence bound hits zero
// at MinSamples and sampling stops far below MaxSamples — the "adaptive"
// half of the allocator's name. Eval counting proves it.
func TestAdaptiveStopsEarlyOnZeroVariance(t *testing.T) {
	players := mkPlayers(18)
	vals := map[string]float64{}
	truth := map[string]float64{}
	var total float64
	for i, p := range players {
		vals[p] = float64(i + 1)
		total += float64(i + 1)
	}
	for _, p := range players {
		truth[p] = vals[p] / total
	}
	alloc := AdaptiveShapley{MinSamples: 64, MaxSamples: 100000, Seed: 9}
	before := AllocCounters()
	got := alloc.Allocate(players, additive(vals))
	spent := AllocCounters().Evals - before.Evals
	if err := ShapleyError(got, truth); err > 1e-6 {
		t.Fatalf("additive sampled split off by %v: %v", err, got)
	}
	// 64 permutations (the minimum) plus the batch boundary and the grand
	// evaluation: far below the 100000-permutation budget.
	maxEvals := uint64((64 + sampleBatch) * 18)
	if spent > maxEvals {
		t.Fatalf("zero-variance game burned %d evals, want <= %d (stopping rule broken?)", spent, maxEvals)
	}
}

// TestAdaptiveEvalAdvantage is the deterministic core of the benchmark claim:
// at 16 players the adaptive allocator must solve a structured game in at
// most a tenth of exact enumeration's characteristic-function evaluations
// while staying inside the error bound.
func TestAdaptiveEvalAdvantage(t *testing.T) {
	players := mkPlayers(16)
	v, truth := mixedSynergyGame(players, 8)

	before := AllocCounters()
	exact := ShapleyExact{}.Allocate(players, v)
	exactEvals := AllocCounters().Evals - before.Evals

	before = AllocCounters()
	sampled := AdaptiveShapley{Seed: 3}.AllocateCtx(players, v, AllocContext{Seed: 17})
	sampledEvals := AllocCounters().Evals - before.Evals

	if sampledEvals*10 > exactEvals {
		t.Fatalf("adaptive used %d evals, exact %d: less than 10x advantage", sampledEvals, exactEvals)
	}
	if err := ShapleyError(sampled, truth); err > 0.05 {
		t.Fatalf("sampled L1 error %v > 0.05", err)
	}
	if err := ShapleyError(exact, truth); err > 1e-9 {
		t.Fatalf("exact disagrees with analytic truth by %v", err)
	}
}

// --- memoization -----------------------------------------------------------

// TestCoalitionMemoHitRate: a second allocation of the same game against the
// same memo answers every coalition evaluation from cache.
func TestCoalitionMemoHitRate(t *testing.T) {
	players := mkPlayers(6)
	v, _ := mixedSynergyGame(players, 2)
	memo := NewCoalitionMemo()
	a := AdaptiveShapley{} // n=6: exact path, enumerates all 2^6-1 coalitions
	w1 := a.AllocateCtx(players, v, AllocContext{Memo: memo})
	afterFirst := memo.Stats()
	if afterFirst.Hits != 0 || afterFirst.Misses != 63 || afterFirst.Entries != 63 {
		t.Fatalf("first pass stats = %+v, want 63 misses/entries", afterFirst)
	}
	w2 := a.AllocateCtx(players, v, AllocContext{Memo: memo})
	afterSecond := memo.Stats()
	if afterSecond.Hits != 63 || afterSecond.Misses != 63 {
		t.Fatalf("second pass stats = %+v, want all 63 evaluations answered from cache", afterSecond)
	}
	if err := ShapleyError(w1, w2); err != 0 {
		t.Fatalf("memoized reruns disagree: %v", err)
	}
}

// TestCoalitionMemoSampledPath: the sampled path reuses cached coalition
// values too — same seed means the same permutation prefixes, so a rerun is
// answered entirely from cache.
func TestCoalitionMemoSampledPath(t *testing.T) {
	players := mkPlayers(15)
	v, _ := mixedSynergyGame(players, 4)
	memo := NewCoalitionMemo()
	a := AdaptiveShapley{ExactMax: 1, Seed: 11}
	ctx := AllocContext{Seed: 99, Memo: memo}
	w1 := a.AllocateCtx(players, v, ctx)
	first := memo.Stats()
	w2 := a.AllocateCtx(players, v, ctx)
	second := memo.Stats()
	if second.Hits-first.Hits < first.Misses {
		t.Fatalf("rerun hit only %d of %d cached coalitions", second.Hits-first.Hits, first.Misses)
	}
	if err := ShapleyError(w1, w2); err != 0 {
		t.Fatalf("same-seed memoized reruns disagree: L1=%v", err)
	}
}

// TestRoundMemoScopesByGame: one round memo keeps distinct games' coalition
// values apart while handing the same game the same memo; nil round memos are
// inert.
func TestRoundMemoScopesByGame(t *testing.T) {
	rm := NewRoundMemo()
	if rm.Game("g1") != rm.Game("g1") {
		t.Fatal("same game key must share a memo")
	}
	if rm.Game("g1") == rm.Game("g2") {
		t.Fatal("distinct game keys must not share a memo")
	}
	players := mkPlayers(4)
	g1 := additive(map[string]float64{"d00": 1, "d01": 1, "d02": 1, "d03": 1})
	g2 := additive(map[string]float64{"d00": 8, "d01": 4, "d02": 2, "d03": 1})
	w1 := AdaptiveShapley{}.AllocateCtx(players, g1, AllocContext{Memo: rm.Game("g1")})
	w2 := AdaptiveShapley{}.AllocateCtx(players, g2, AllocContext{Memo: rm.Game("g2")})
	if ShapleyError(w1, w2) == 0 {
		t.Fatal("distinct games produced identical splits through the round memo (cross-game pollution?)")
	}
	st := rm.Stats()
	if st.Games != 2 || st.Entries == 0 {
		t.Fatalf("round memo stats = %+v", st)
	}
	var nilRM *RoundMemo
	if nilRM.Game("x") != nil {
		t.Fatal("nil round memo must hand out nil coalition memos")
	}
	if got := nilRM.Stats(); got != (MemoStats{}) {
		t.Fatalf("nil round memo stats = %+v", got)
	}
}

// --- escalation (the n>24 panic fix) ---------------------------------------

// TestExactEscalatesInsteadOfPanicking pins the settlement-crash fix: a
// 25-player game through ShapleyExact must not panic — it escalates to the
// sampled allocator, counts the escalation, and still produces a valid
// near-truth split (the additive game has zero sampling variance).
func TestExactEscalatesInsteadOfPanicking(t *testing.T) {
	players := mkPlayers(25)
	vals := map[string]float64{}
	truth := map[string]float64{}
	var total float64
	for i, p := range players {
		vals[p] = float64(i + 1)
		total += float64(i + 1)
	}
	for _, p := range players {
		truth[p] = vals[p] / total
	}
	before := AllocCounters()
	w := ShapleyExact{}.Allocate(players, additive(vals))
	after := AllocCounters()
	if after.Escalations != before.Escalations+1 {
		t.Fatalf("escalation not counted: %d -> %d", before.Escalations, after.Escalations)
	}
	if after.SampledRuns != before.SampledRuns+1 {
		t.Fatalf("escalated run not sampled")
	}
	if err := ShapleyError(w, truth); err > 1e-6 {
		t.Fatalf("escalated additive split off by %v", err)
	}
}

// TestShareRevenue25Sources is the settlement-layer regression: a 25-source
// mashup priced through a ShapleyExact design used to panic mid-settlement;
// now it settles with a conserved, near-proportional split.
func TestShareRevenue25Sources(t *testing.T) {
	const n = 25
	var anno *provenance.Annotated
	rowsOf := map[string]int{}
	rowID := 0
	for i := 0; i < n; i++ {
		ds := fmt.Sprintf("s%02d/d0", i)
		rel := relation.New(ds, relation.NewSchema(relation.Col("k", relation.KindInt)))
		rowsOf[ds] = i + 1
		for r := 0; r < i+1; r++ {
			rel.MustAppend(relation.Int(int64(rowID)))
			rowID++
		}
		part := provenance.FromSource(ds, rel)
		if anno == nil {
			anno = part
			continue
		}
		var err error
		anno, err = provenance.Union(anno, part)
		if err != nil {
			t.Fatal(err)
		}
	}
	d := &Design{
		Label: "wide", Goal: GoalRevenue, Type: TypeExternal, Elicitation: ElicitUpfront,
		Mechanism: PostedPrice{P: 100}, Allocator: ShapleyExact{}, ArbiterFee: 0.05,
	}
	split := d.ShareRevenueCtx(100, anno, nil, nil, AllocContext{Seed: SeedFromID("tx-0001")})
	if len(split.SellerCut) != n {
		t.Fatalf("split covers %d sellers, want %d", len(split.SellerCut), n)
	}
	pool := 100 * (1 - d.ArbiterFee)
	var sum float64
	for ds, cut := range split.SellerCut {
		sum += cut
		wantCut := pool * float64(rowsOf[ds]) / float64(rowID)
		if math.Abs(cut-wantCut) > pool*0.01 {
			t.Errorf("%s cut %.4f, want ~%.4f", ds, cut, wantCut)
		}
	}
	if math.Abs(sum+split.ArbiterCut-100) > 1e-6 {
		t.Fatalf("split does not conserve revenue: sellers %.6f + arbiter %.6f != 100", sum, split.ArbiterCut)
	}
}

// --- replay-safe seeding ---------------------------------------------------

func TestSeedFromID(t *testing.T) {
	a, b := SeedFromID("tx-0001"), SeedFromID("tx-0002")
	if a == b {
		t.Fatal("distinct settlement IDs produced equal seeds")
	}
	if a != SeedFromID("tx-0001") {
		t.Fatal("seed derivation is not deterministic")
	}
	if SeedFromID("") == 0 || a == 0 {
		t.Fatal("seeds must be nonzero so allocators can detect 'no context seed'")
	}
}

// TestSettlementSeedVariesPermutations pins the fixed-per-design-seed fix:
// the Monte-Carlo allocator must sample different permutations for different
// settlements (different ctx seeds), identical ones for a replayed settlement
// (same ctx seed), and keep legacy behavior under a zero context.
func TestSettlementSeedVariesPermutations(t *testing.T) {
	players := mkPlayers(10)
	v, _ := mixedSynergyGame(players, 5)
	mc := ShapleyMonteCarlo{Samples: 40, Seed: 7}
	tx1 := AllocContext{Seed: SeedFromID("tx-0001")}
	tx2 := AllocContext{Seed: SeedFromID("tx-0002")}
	w1 := mc.AllocateCtx(players, v, tx1)
	w2 := mc.AllocateCtx(players, v, tx2)
	if ShapleyError(w1, w2) == 0 {
		t.Fatal("two settlements sampled identical permutations despite distinct seeds")
	}
	if err := ShapleyError(w1, mc.AllocateCtx(players, v, tx1)); err != 0 {
		t.Fatalf("replayed settlement diverged by %v", err)
	}
	if err := ShapleyError(mc.Allocate(players, v), mc.AllocateCtx(players, v, AllocContext{})); err != 0 {
		t.Fatalf("zero context changed the legacy path by %v", err)
	}
	// Same for the adaptive allocator's sampled path.
	ad := AdaptiveShapley{ExactMax: 1, Seed: 7, MinSamples: 32, MaxSamples: 32}
	a1, a2 := ad.AllocateCtx(players, v, tx1), ad.AllocateCtx(players, v, tx2)
	if ShapleyError(a1, a2) == 0 {
		t.Fatal("adaptive sampled path ignored the settlement seed")
	}
	if err := ShapleyError(a1, ad.AllocateCtx(players, v, tx1)); err != 0 {
		t.Fatalf("adaptive replay diverged by %v", err)
	}
}

// --- incremental one-dataset-added update ----------------------------------

// TestAllocateAddIncremental: growing a mashup by one dataset updates the
// split by estimating only the newcomer's share; on structured games the
// result stays within the error bound of the full re-solve.
func TestAllocateAddIncremental(t *testing.T) {
	players := mkPlayers(14)
	grown := append(append([]string{}, players...), "dNEW")
	vals := map[string]float64{}
	var total float64
	for i, p := range players {
		vals[p] = float64(i + 1)
		total += float64(i + 1)
	}
	vals["dNEW"] = 30
	total += 30
	v := additive(vals)
	truth := map[string]float64{}
	for _, p := range grown {
		truth[p] = vals[p] / total
	}

	prev := AdaptiveShapley{}.Allocate(players, additive(vals))
	before := AllocCounters()
	got := AdaptiveShapley{Seed: 21}.AllocateAdd(grown, "dNEW", prev, v, AllocContext{Seed: 5})
	after := AllocCounters()
	if after.Incremental != before.Incremental+1 {
		t.Fatal("incremental update not counted")
	}
	if err := ShapleyError(got, truth); err > 0.05 {
		t.Fatalf("incremental split L1 error %v > 0.05: %v", err, got)
	}
	var sum float64
	for _, w := range got {
		if w < 0 {
			t.Fatal("negative incremental weight")
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("incremental weights sum to %v", sum)
	}
	// The point of the incremental path: far fewer evaluations than the
	// sampled full re-solve's n-evals-per-permutation.
	if spent := after.Evals - before.Evals; spent > 2*uint64(defaultMaxSamples) {
		t.Fatalf("incremental update burned %d evals", spent)
	}
}
