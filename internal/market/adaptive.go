package market

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the scalable revenue-allocation layer (paper §3.2.3: "the
// complexity of computing the Shapley value" motivates approximations):
//
//   - AllocContext threads per-settlement identity (the sampler seed) and the
//     per-round coalition-value memo into any allocator that can use them.
//   - CoalitionMemo / RoundMemo cache characteristic-function evaluations
//     v(S) by canonical player-set key, shared across the allocations of one
//     sale and across the requests of one pricing round — mashups in a round
//     overlap in structure, so the same coalitions get asked repeatedly.
//   - AdaptiveShapley runs exact enumeration below a player threshold and
//     permutation-sampled Shapley above it, with a running confidence bound
//     that stops sampling once the estimated L1 error of the split drops
//     under a target.
//   - AllocateAdd is the incremental path for the one-dataset-added case:
//     estimate only the newcomer's share and rescale the incumbents.

// AllocContext carries the optional inputs of one revenue allocation: a
// deterministic sampler seed derived from the settlement's identity (so
// crash/replay re-derives byte-identical splits — see SeedFromID) and the
// round's coalition-value memo. The zero value is always safe: allocators
// fall back to their configured seed and evaluate uncached.
type AllocContext struct {
	// Seed, when nonzero, is mixed into the allocator's own seed so every
	// settlement samples its own permutations while staying a pure function
	// of the settlement identity.
	Seed int64
	// Memo, when non-nil, caches v(S) evaluations across this allocation and
	// any other allocation of the same game handed the same memo.
	Memo *CoalitionMemo
}

// CtxAllocator is implemented by allocators that accept a per-settlement
// AllocContext. AllocateWith dispatches through it.
type CtxAllocator interface {
	Allocator
	AllocateCtx(players []string, v ValueFunc, ctx AllocContext) map[string]float64
}

// AllocateWith runs an allocator with the given context when it supports one,
// falling back to the plain Allocate path otherwise.
func AllocateWith(a Allocator, players []string, v ValueFunc, ctx AllocContext) map[string]float64 {
	if ca, ok := a.(CtxAllocator); ok {
		return ca.AllocateCtx(players, v, ctx)
	}
	return a.Allocate(players, v)
}

// SeedFromID derives a deterministic, nonzero sampler seed from a settlement
// identity (transaction ID). Replaying or re-driving the same settlement
// yields the same seed, which is what keeps sampled revenue splits
// byte-identical across crash/replay.
func SeedFromID(id string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}

// mixSeed folds a settlement seed into an allocator's base seed (splitmix64
// finalizer) so distinct settlements draw distinct permutation streams.
func mixSeed(base, ctx int64) int64 {
	x := uint64(base) ^ (uint64(ctx) * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	s := int64(x)
	if s == 0 {
		s = 1
	}
	return s
}

// --- allocator counters ----------------------------------------------------

// Process-wide allocation counters, sampled by the engine's stats surface and
// exported as market_allocator_* metrics. They are monotone and shared across
// every design in the process (allocators are value types with no home for
// per-instance state); tests assert on deltas.
var (
	allocExactRuns   atomic.Uint64 // allocations solved by exact enumeration
	allocSampledRuns atomic.Uint64 // allocations solved by permutation sampling
	allocEscalations atomic.Uint64 // exact requests auto-escalated to sampling
	allocIncremental atomic.Uint64 // incremental one-player-added updates
	allocEvals       atomic.Uint64 // characteristic-function evaluations run
	allocMemoHits    atomic.Uint64 // evaluations answered from a memo
)

// AllocCounts is a snapshot of the process-wide allocation counters.
type AllocCounts struct {
	ExactRuns   uint64
	SampledRuns uint64
	Escalations uint64
	Incremental uint64
	Evals       uint64
	MemoHits    uint64
}

// AllocCounters snapshots the process-wide allocation counters.
func AllocCounters() AllocCounts {
	return AllocCounts{
		ExactRuns:   allocExactRuns.Load(),
		SampledRuns: allocSampledRuns.Load(),
		Escalations: allocEscalations.Load(),
		Incremental: allocIncremental.Load(),
		Evals:       allocEvals.Load(),
		MemoHits:    allocMemoHits.Load(),
	}
}

// --- coalition-value memoization -------------------------------------------

// memoMaxEntries bounds one memo's stored coalition values; past it lookups
// still hit but new values are no longer inserted, so a pathological game
// cannot balloon a round's memory.
const memoMaxEntries = 1 << 17

// CoalitionMemo caches characteristic-function values v(S) by canonical
// player-set key for ONE coalition game. Callers must not share a memo across
// games with different value functions — the arbiter scopes memos by mashup
// identity (see RoundMemo). Safe for concurrent use.
type CoalitionMemo struct {
	mu     sync.Mutex
	vals   map[string]float64
	hits   uint64
	misses uint64
}

// NewCoalitionMemo creates an empty memo.
func NewCoalitionMemo() *CoalitionMemo {
	return &CoalitionMemo{vals: map[string]float64{}}
}

// coalitionKey canonicalizes a membership set: sorted names joined by an
// unprintable separator.
func coalitionKey(s map[string]bool) string {
	names := make([]string, 0, len(s))
	for p, in := range s {
		if in {
			names = append(names, p)
		}
	}
	sort.Strings(names)
	return strings.Join(names, "\x1f")
}

// Wrap returns a ValueFunc that consults the memo before evaluating v, and
// counts evaluations either way. Nil-safe: a nil memo still counts but never
// caches. Concurrent misses of the same coalition may evaluate v twice; v is
// pure, so the duplicate is only wasted work, never a wrong value.
func (m *CoalitionMemo) Wrap(v ValueFunc) ValueFunc {
	if m == nil {
		return func(s map[string]bool) float64 {
			allocEvals.Add(1)
			return v(s)
		}
	}
	return func(s map[string]bool) float64 {
		k := coalitionKey(s)
		m.mu.Lock()
		if val, ok := m.vals[k]; ok {
			m.hits++
			m.mu.Unlock()
			allocMemoHits.Add(1)
			return val
		}
		m.misses++
		m.mu.Unlock()
		allocEvals.Add(1)
		val := v(s)
		m.mu.Lock()
		if len(m.vals) < memoMaxEntries {
			m.vals[k] = val
		}
		m.mu.Unlock()
		return val
	}
}

// MemoStats summarizes a memo's effectiveness.
type MemoStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
	Games   int // RoundMemo only: distinct games scoped
}

// Stats snapshots one memo's counters. Nil-safe.
func (m *CoalitionMemo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Entries: len(m.vals)}
}

// RoundMemo scopes coalition-value memos by game key for one pricing round:
// every sale of the same mashup (same game) shares a memo, while distinct
// mashups — whose value functions differ — stay isolated. Safe for concurrent
// use; a nil RoundMemo hands out nil memos, which Wrap tolerates.
type RoundMemo struct {
	mu    sync.Mutex
	games map[string]*CoalitionMemo
}

// NewRoundMemo creates an empty per-round memo.
func NewRoundMemo() *RoundMemo {
	return &RoundMemo{games: map[string]*CoalitionMemo{}}
}

// Game returns (creating on first use) the coalition memo for one game key.
func (r *RoundMemo) Game(key string) *CoalitionMemo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.games[key]
	if !ok {
		m = NewCoalitionMemo()
		r.games[key] = m
	}
	return m
}

// Stats aggregates hit/miss/entry counts across every game in the round.
func (r *RoundMemo) Stats() MemoStats {
	if r == nil {
		return MemoStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := MemoStats{Games: len(r.games)}
	for _, m := range r.games {
		s := m.Stats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Entries += s.Entries
	}
	return out
}

// --- adaptive allocator ----------------------------------------------------

// Defaults for AdaptiveShapley's zero fields.
const (
	defaultExactMax   = 12
	defaultTargetErr  = 0.05
	defaultMinSamples = 64
	defaultMaxSamples = 10000
	// sampleBatch is how many permutations run between stopping-rule checks.
	sampleBatch = 16
	// confidenceZ is the normal quantile of the per-player confidence
	// interval the stopping rule sums (z = 1.96 ≈ 95%).
	confidenceZ = 1.96
)

// AdaptiveShapley is the settlement-path allocator: exact Shapley enumeration
// while the player count stays at or below ExactMax, permutation-sampled
// Shapley above it. Sampling runs in batches and stops as soon as the
// estimated L1 error of the split — the sum of per-player confidence
// intervals normalized by the grand-coalition value — drops under TargetErr,
// so cheap games (low-variance marginals) finish in a few dozen permutations
// while adversarial ones are bounded by MaxSamples. Allocation is a pure
// function of (players, v, seed): with AllocContext.Seed derived from the
// settlement identity, crash/replay re-derives identical splits.
type AdaptiveShapley struct {
	// ExactMax is the largest player count solved by exact enumeration
	// (default 12: 4096 coalition values).
	ExactMax int
	// TargetErr is the estimated-L1-error stopping bound for the sampled
	// path (default 0.05).
	TargetErr float64
	// MinSamples / MaxSamples bound the permutation count (defaults 64 /
	// 10000). MaxSamples is the hard guard for games whose variance never
	// satisfies TargetErr.
	MinSamples int
	MaxSamples int
	// Seed is the base sampler seed, mixed with AllocContext.Seed.
	Seed int64
}

func (a AdaptiveShapley) params() (exactMax int, target float64, minS, maxS int) {
	exactMax = a.ExactMax
	if exactMax <= 0 {
		exactMax = defaultExactMax
	}
	target = a.TargetErr
	if target <= 0 {
		target = defaultTargetErr
	}
	minS = a.MinSamples
	if minS <= 0 {
		minS = defaultMinSamples
	}
	maxS = a.MaxSamples
	if maxS <= 0 {
		maxS = defaultMaxSamples
	}
	if maxS < minS {
		maxS = minS
	}
	return exactMax, target, minS, maxS
}

// Name implements Allocator.
func (a AdaptiveShapley) Name() string {
	exactMax, target, _, _ := a.params()
	return fmt.Sprintf("shapley_adaptive(exact<=%d,err<=%g)", exactMax, target)
}

// Allocate implements Allocator with a zero context.
func (a AdaptiveShapley) Allocate(players []string, v ValueFunc) map[string]float64 {
	return a.AllocateCtx(players, v, AllocContext{})
}

// AllocateCtx implements CtxAllocator.
func (a AdaptiveShapley) AllocateCtx(players []string, v ValueFunc, ctx AllocContext) map[string]float64 {
	n := len(players)
	if n == 0 {
		return nil
	}
	exactMax, target, minS, maxS := a.params()
	mv := ctx.Memo.Wrap(v)
	if n <= exactMax {
		allocExactRuns.Add(1)
		return exactShapley(players, mv)
	}
	allocSampledRuns.Add(1)
	return sampledShapley(players, mv, a.seedFor(ctx), target, minS, maxS)
}

// seedFor resolves the effective sampler seed from the allocator's base seed
// and the context's settlement seed.
func (a AdaptiveShapley) seedFor(ctx AllocContext) int64 {
	seed := a.Seed
	if ctx.Seed != 0 {
		seed = mixSeed(seed, ctx.Seed)
	}
	if seed == 0 {
		seed = 1
	}
	return seed
}

// sampledShapley estimates Shapley values by sampling random permutations,
// tracking per-player marginal variance (Welford) and stopping once the
// summed confidence interval, normalized by the grand-coalition value, drops
// under target.
func sampledShapley(players []string, v ValueFunc, seed int64, target float64, minS, maxS int) map[string]float64 {
	n := len(players)
	grandSet := make(map[string]bool, n)
	for _, p := range players {
		grandSet[p] = true
	}
	grand := v(grandSet)

	rng := rand.New(rand.NewSource(seed))
	mean := make([]float64, n)
	m2 := make([]float64, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	coalition := make(map[string]bool, n)
	samples := 0
	for samples < maxS {
		for b := 0; b < sampleBatch && samples < maxS; b++ {
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			for k := range coalition {
				delete(coalition, k)
			}
			samples++
			prev := 0.0
			for _, i := range perm {
				coalition[players[i]] = true
				cur := v(coalition)
				d := cur - prev
				prev = cur
				delta := d - mean[i]
				mean[i] += delta / float64(samples)
				m2[i] += delta * (d - mean[i])
			}
		}
		if grand <= 0 {
			// Worthless (or negative) grand coalition: the split is all-zero
			// regardless of further samples.
			break
		}
		if samples >= minS && estimatedL1Error(m2, samples, grand) <= target {
			break
		}
	}
	return normalizeWeights(players, mean, grand)
}

// estimatedL1Error bounds the L1 distance between the sampled split and the
// true Shapley split: the per-player z·stderr of the marginal mean, summed
// and normalized by the grand-coalition value (efficiency makes the true
// weights phi_i / v(N)).
func estimatedL1Error(m2 []float64, samples int, grand float64) float64 {
	if samples < 2 {
		return math.Inf(1)
	}
	var sum float64
	for _, x := range m2 {
		variance := x / float64(samples-1)
		if variance < 0 {
			variance = 0
		}
		sum += confidenceZ * math.Sqrt(variance/float64(samples))
	}
	return sum / grand
}

// AllocateAdd is the incremental split update for the one-dataset-added case:
// players is the grown set (including added), prev the previous allocation
// over players minus added. Only the newcomer's Shapley share is estimated —
// by sampling its marginal contribution at random insertion positions, two
// evaluations per sample instead of n — and the incumbents' weights are
// rescaled into the remaining mass. An approximation of the full re-solve
// (synergy between the newcomer and one incumbent shifts only the newcomer's
// aggregate share, not the incumbents' relative ones), priced at O(samples)
// instead of O(samples·n).
func (a AdaptiveShapley) AllocateAdd(players []string, added string, prev map[string]float64, v ValueFunc, ctx AllocContext) map[string]float64 {
	n := len(players)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return AllocateWith(a, players, v, ctx)
	}
	allocIncremental.Add(1)
	_, target, minS, maxS := a.params()
	mv := ctx.Memo.Wrap(v)

	grandSet := make(map[string]bool, n)
	for _, p := range players {
		grandSet[p] = true
	}
	grand := mv(grandSet)
	if grand <= 0 {
		return normalizeWeights(players, make([]float64, n), grand)
	}

	// Sample the newcomer's marginal over random insertion positions.
	rng := rand.New(rand.NewSource(a.seedFor(ctx)))
	others := make([]string, 0, n-1)
	for _, p := range players {
		if p != added {
			others = append(others, p)
		}
	}
	var mean, m2 float64
	coalition := make(map[string]bool, n)
	samples := 0
	for samples < maxS {
		for b := 0; b < sampleBatch && samples < maxS; b++ {
			rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
			pos := rng.Intn(n) // newcomer's position in the implied permutation
			for k := range coalition {
				delete(coalition, k)
			}
			for i := 0; i < pos; i++ {
				coalition[others[i]] = true
			}
			before := 0.0
			if pos > 0 {
				before = mv(coalition)
			}
			coalition[added] = true
			d := mv(coalition) - before
			samples++
			delta := d - mean
			mean += delta / float64(samples)
			m2 += delta * (d - mean)
		}
		if samples >= minS {
			variance := m2 / float64(samples-1)
			if variance < 0 {
				variance = 0
			}
			if confidenceZ*math.Sqrt(variance/float64(samples))/grand <= target {
				break
			}
		}
	}

	wAdd := mean / grand
	if wAdd < 0 {
		wAdd = 0
	}
	if wAdd > 1 {
		wAdd = 1
	}
	out := make(map[string]float64, n)
	out[added] = wAdd
	var prevSum float64
	for _, p := range others {
		if w := prev[p]; w > 0 {
			prevSum += w
		}
	}
	rest := 1 - wAdd
	for _, p := range others {
		if prevSum > 0 {
			w := prev[p]
			if w < 0 {
				w = 0
			}
			out[p] = rest * w / prevSum
		} else {
			out[p] = rest / float64(len(others))
		}
	}
	return out
}
