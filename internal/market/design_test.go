package market

import (
	"math"
	"testing"

	"repro/internal/provenance"
	"repro/internal/relation"
)

func TestDesignValidate(t *testing.T) {
	ok := &Design{Label: "d", Mechanism: PostedPrice{P: 1}, Allocator: Uniform{}, ArbiterFee: 0.1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid design rejected: %v", err)
	}
	bad := []*Design{
		{Mechanism: PostedPrice{}, Allocator: Uniform{}},
		{Label: "x", Allocator: Uniform{}},
		{Label: "x", Mechanism: PostedPrice{}},
		{Label: "x", Mechanism: PostedPrice{}, Allocator: Uniform{}, ArbiterFee: 1.5},
		{Label: "x", Mechanism: PostedPrice{}, Allocator: Uniform{}, Elicitation: ElicitExPost},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad design %d accepted", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	d := &Design{Label: "d1", Mechanism: PostedPrice{P: 1}, Allocator: Uniform{}}
	if err := r.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(d); err == nil {
		t.Error("duplicate label must fail")
	}
	got, err := r.Get("d1")
	if err != nil || got != d {
		t.Errorf("get = %v, %v", got, err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("unknown label must fail")
	}
}

func TestStandardDesigns(t *testing.T) {
	r := StandardDesigns()
	labels := r.Labels()
	if len(labels) < 5 {
		t.Fatalf("labels = %v", labels)
	}
	for _, l := range labels {
		d, err := r.Get(l)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("standard design %s invalid: %v", l, err)
		}
	}
}

func mkJoinedAnno(t *testing.T) *provenance.Annotated {
	t.Helper()
	l := relation.New("l", relation.NewSchema(relation.Col("k", relation.KindInt)))
	r := relation.New("r", relation.NewSchema(relation.Col("k", relation.KindInt), relation.Col("v", relation.KindInt)))
	for i := 0; i < 4; i++ {
		l.MustAppend(relation.Int(int64(i)))
		r.MustAppend(relation.Int(int64(i)), relation.Int(int64(i*10)))
	}
	j, err := provenance.HashJoin(provenance.FromSource("ds1", l), provenance.FromSource("ds2", r),
		relation.JoinPair{Left: "k", Right: "k"})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestShareRevenue(t *testing.T) {
	anno := mkJoinedAnno(t)
	d := &Design{Label: "d", Mechanism: PostedPrice{P: 1}, Allocator: ShapleyExact{}, ArbiterFee: 0.1}
	owners := map[string]string{"ds1": "seller1", "ds2": "seller2"}
	split := d.ShareRevenue(100, anno, owners, nil)
	if math.Abs(split.ArbiterCut-10) > 1e-9 {
		t.Errorf("arbiter cut = %v", split.ArbiterCut)
	}
	// Perfect complements: sellers split the 90 pool evenly.
	if math.Abs(split.SellerCut["seller1"]-45) > 1e-6 || math.Abs(split.SellerCut["seller2"]-45) > 1e-6 {
		t.Errorf("seller cuts = %v", split.SellerCut)
	}
	var total float64
	for _, c := range split.SellerCut {
		total += c
	}
	total += split.ArbiterCut
	if math.Abs(total-100) > 1e-6 {
		t.Errorf("split must conserve revenue: %v", total)
	}
}

func TestShareRevenueZeroAndUnknownOwner(t *testing.T) {
	anno := mkJoinedAnno(t)
	d := &Design{Label: "d", Mechanism: PostedPrice{P: 1}, Allocator: Uniform{}}
	if s := d.ShareRevenue(0, anno, nil, nil); len(s.SellerCut) != 0 {
		t.Error("zero revenue shares nothing")
	}
	// Unknown owners default to the dataset ID.
	s := d.ShareRevenue(10, anno, nil, nil)
	if _, ok := s.SellerCut["ds1"]; !ok {
		t.Errorf("cuts = %v", s.SellerCut)
	}
}

func TestSatisfactionValue(t *testing.T) {
	anno := mkJoinedAnno(t)
	vf := SatisfactionValue(anno, func(rows int) float64 {
		if rows >= 4 {
			return 1
		}
		return 0
	})
	if vf(map[string]bool{"ds1": true, "ds2": true}) != 1 {
		t.Error("grand coalition satisfies")
	}
	if vf(map[string]bool{"ds1": true}) != 0 {
		t.Error("ds1 alone does not satisfy")
	}
}
