package market

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ValueFunc is the characteristic function of the revenue-allocation
// coalition game: v(S) is the value a mashup built only from the datasets in
// S would achieve (e.g. the price a buyer's WTP-function would pay for it).
// It must satisfy v(∅)=0.
type ValueFunc func(coalition map[string]bool) float64

// Allocator splits a total price among the contributing datasets
// (paper §3.2.3 "Revenue allocation").
type Allocator interface {
	Name() string
	// Allocate returns non-negative weights per player summing to ~1
	// (all-zero when the grand coalition has no value).
	Allocate(players []string, v ValueFunc) map[string]float64
}

// coalitionOf builds the membership set for a subset bitmask.
func coalitionOf(players []string, mask uint) map[string]bool {
	s := make(map[string]bool, len(players))
	for i, p := range players {
		if mask&(1<<uint(i)) != 0 {
			s[p] = true
		}
	}
	return s
}

// ShapleyExact enumerates all 2^n coalitions — exact but exponential; the
// paper notes "the complexity of computing the Shapley value" motivates
// approximations (experiment E5 measures the crossover).
type ShapleyExact struct{}

// exactFeasibleMax is the hard enumeration bound: past 2^24 coalition values
// the table alone is 128 MiB and the marginal sweep 24·2^24 float ops, so
// requests beyond it auto-escalate to sampling rather than attempt (or, as
// older versions did, panic mid-settlement).
const exactFeasibleMax = 24

// Name implements Allocator.
func (ShapleyExact) Name() string { return "shapley_exact" }

// Allocate implements Allocator.
func (e ShapleyExact) Allocate(players []string, v ValueFunc) map[string]float64 {
	return e.AllocateCtx(players, v, AllocContext{})
}

// AllocateCtx implements CtxAllocator. Wide games (n > 24) never panic the
// settlement path: they escalate to the adaptive sampled allocator, counted
// in market_allocator_escalations_total.
func (ShapleyExact) AllocateCtx(players []string, v ValueFunc, ctx AllocContext) map[string]float64 {
	n := len(players)
	if n == 0 {
		return nil
	}
	if n > exactFeasibleMax {
		allocEscalations.Add(1)
		return AdaptiveShapley{}.AllocateCtx(players, v, ctx)
	}
	allocExactRuns.Add(1)
	return exactShapley(players, ctx.Memo.Wrap(v))
}

// exactShapley runs the full 2^n enumeration. Callers enforce the
// feasibility bound.
func exactShapley(players []string, v ValueFunc) map[string]float64 {
	n := len(players)
	// Cache v over all subsets.
	vals := make([]float64, 1<<uint(n))
	for mask := uint(1); mask < 1<<uint(n); mask++ {
		vals[mask] = v(coalitionOf(players, mask))
	}
	phi := make([]float64, n)
	fact := factorials(n)
	for mask := uint(0); mask < 1<<uint(n); mask++ {
		size := popcount(mask)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			marginal := vals[mask|1<<uint(i)] - vals[mask]
			// Weight: |S|!(n-|S|-1)!/n!
			w := fact[size] * fact[n-size-1] / fact[n]
			phi[i] += w * marginal
		}
	}
	return normalizeWeights(players, phi, vals[1<<uint(n)-1])
}

func factorials(n int) []float64 {
	f := make([]float64, n+1)
	f[0] = 1
	for i := 1; i <= n; i++ {
		f[i] = f[i-1] * float64(i)
	}
	return f
}

func popcount(x uint) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// normalizeWeights turns raw marginals into non-negative weights summing to
// 1. grandValue is v(N): when every marginal is ≤ 0 but the grand coalition
// still has value — perfect substitutes, where v(N\{i}) = v(N) for every i —
// the weights would sum to 0 and the revenue would silently never be paid
// out, so the split falls back to uniform. Only a genuinely worthless grand
// coalition (grandValue ≤ 0) yields all-zero weights.
func normalizeWeights(players []string, phi []float64, grandValue float64) map[string]float64 {
	var total float64
	for _, p := range phi {
		if p > 0 {
			total += p
		}
	}
	if total <= 0 && grandValue > 0 {
		return Uniform{}.Allocate(players, nil)
	}
	out := make(map[string]float64, len(players))
	for i, p := range players {
		w := phi[i]
		if w < 0 {
			w = 0
		}
		if total > 0 {
			w /= total
		}
		out[p] = w
	}
	return out
}

// ShapleyMonteCarlo estimates Shapley values by sampling random permutations
// and accumulating marginal contributions — the "computationally efficient
// alternative that maintains the good properties" (paper §3.2.3).
type ShapleyMonteCarlo struct {
	Samples int
	Seed    int64
}

// Name implements Allocator.
func (m ShapleyMonteCarlo) Name() string { return fmt.Sprintf("shapley_mc(%d)", m.Samples) }

// Allocate implements Allocator: the legacy fixed-seed path (every call
// samples the same permutations).
func (m ShapleyMonteCarlo) Allocate(players []string, v ValueFunc) map[string]float64 {
	return m.AllocateCtx(players, v, AllocContext{})
}

// AllocateCtx implements CtxAllocator: when the context carries a settlement
// seed it is mixed into the design's base seed, so each settlement draws its
// own permutations while replay — which re-derives the same settlement seed —
// stays byte-identical. A zero context preserves the legacy fixed-seed
// behavior exactly.
func (m ShapleyMonteCarlo) AllocateCtx(players []string, v ValueFunc, ctx AllocContext) map[string]float64 {
	n := len(players)
	if n == 0 {
		return nil
	}
	allocSampledRuns.Add(1)
	v = ctx.Memo.Wrap(v)
	samples := m.Samples
	if samples <= 0 {
		samples = 200
	}
	seed := m.Seed
	if ctx.Seed != 0 {
		seed = mixSeed(seed, ctx.Seed)
	}
	rng := rand.New(rand.NewSource(seed))
	phi := make([]float64, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	coalition := make(map[string]bool, n)
	grand := 0.0
	for s := 0; s < samples; s++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for k := range coalition {
			delete(coalition, k)
		}
		prev := 0.0
		for _, i := range perm {
			coalition[players[i]] = true
			cur := v(coalition)
			phi[i] += cur - prev
			prev = cur
		}
		grand = prev // v of the full coalition; identical every sample
	}
	for i := range phi {
		phi[i] /= float64(samples)
	}
	return normalizeWeights(players, phi, grand)
}

// LeaveOneOut allocates by each player's marginal contribution to the grand
// coalition: v(N) - v(N\{i}). Cheap (n+1 evaluations) but ignores synergy
// structure.
type LeaveOneOut struct{}

// Name implements Allocator.
func (LeaveOneOut) Name() string { return "leave_one_out" }

// Allocate implements Allocator.
func (l LeaveOneOut) Allocate(players []string, v ValueFunc) map[string]float64 {
	return l.AllocateCtx(players, v, AllocContext{})
}

// AllocateCtx implements CtxAllocator: deterministic, so only the memo is
// used.
func (LeaveOneOut) AllocateCtx(players []string, v ValueFunc, ctx AllocContext) map[string]float64 {
	n := len(players)
	if n == 0 {
		return nil
	}
	v = ctx.Memo.Wrap(v)
	grand := map[string]bool{}
	for _, p := range players {
		grand[p] = true
	}
	total := v(grand)
	phi := make([]float64, n)
	for i, p := range players {
		delete(grand, p)
		phi[i] = total - v(grand)
		grand[p] = true
	}
	// Degenerate cases: perfect complements (all marginals equal total) just
	// normalize; perfect substitutes (v(N\{i}) = v(N) for every i, so all
	// marginals are 0 while v(N) > 0) fall back to a uniform split inside
	// normalizeWeights instead of allocating nothing.
	return normalizeWeights(players, phi, total)
}

// Uniform splits equally — the naive baseline.
type Uniform struct{}

// Name implements Allocator.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Allocator.
func (Uniform) Allocate(players []string, v ValueFunc) map[string]float64 {
	out := make(map[string]float64, len(players))
	if len(players) == 0 {
		return out
	}
	w := 1.0 / float64(len(players))
	for _, p := range players {
		out[p] = w
	}
	return out
}

// inCoreMax is the largest player count InCore will enumerate (2^20
// coalitions).
const inCoreMax = 20

// InCore checks whether an allocation of `total` by `weights` lies in the
// core of the game: no coalition S gets less than v(S) (paper §8.2 cites the
// core as an alternative to Shapley). Exponential — use for n ≤ 20; beyond
// that it returns an error rather than panicking from library code.
func InCore(players []string, v ValueFunc, weights map[string]float64, total float64) (bool, error) {
	n := len(players)
	if n > inCoreMax {
		return false, fmt.Errorf("market: core check with %d players is infeasible (max %d)", n, inCoreMax)
	}
	for mask := uint(1); mask < 1<<uint(n); mask++ {
		s := coalitionOf(players, mask)
		var got float64
		for p := range s {
			got += weights[p] * total
		}
		if got < v(s)-1e-9 {
			return false, nil
		}
	}
	return true, nil
}

// ShapleyError measures the L1 distance between two weight maps — used by
// E5 to quantify Monte-Carlo approximation error.
func ShapleyError(a, b map[string]float64) float64 {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var sum float64
	for k := range keys {
		sum += math.Abs(a[k] - b[k])
	}
	return sum
}

// SortedPlayers returns map keys sorted, for deterministic iteration.
func SortedPlayers(weights map[string]float64) []string {
	out := make([]string, 0, len(weights))
	for k := range weights {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
