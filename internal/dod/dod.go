// Package dod implements the Dataset-on-Demand engine of the Mashup Builder
// (paper §5.3): it "takes WTP-functions as input and produces mashups that
// fulfill the WTP-function requests as output", using the indexes built by
// the index builder, query-by-example target schemas, and inferred
// transformation functions.
//
// Given a Want (the buyer's target schema), the engine:
//
//  1. scores every catalogued dataset by which wanted columns it can provide
//     — directly, via an alias, via a registered/inferred transform, or via
//     fuzzy name match;
//  2. runs a beam search over the join graph to assemble sets of datasets
//     whose combination covers more of the target schema;
//  3. materializes each candidate as a provenance-annotated relation: joins
//     along the chosen edges, applies transforms (the inverse-f′ of the
//     paper's f(d) example), renames to the buyer's vocabulary, and projects
//     onto the target schema.
package dod

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/discovery"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// Want is the buyer's query-by-example target schema (paper §3.2.2.1).
type Want struct {
	// Columns are the attribute names of the desired mashup.
	Columns []string
	// Aliases lists acceptable source column names per wanted column.
	Aliases map[string][]string
	// MaxDatasets caps the number of datasets combined in one mashup.
	MaxDatasets int
	// MaxCandidates caps the number of mashups returned.
	MaxCandidates int
	// MinJoinScore is the minimum containment score for following an edge.
	MinJoinScore float64
	// MinRows drops candidates with fewer materialized rows.
	MinRows int
}

func (w *Want) withDefaults() Want {
	out := *w
	if out.MaxDatasets <= 0 {
		out.MaxDatasets = 3
	}
	if out.MaxCandidates <= 0 {
		out.MaxCandidates = 5
	}
	if out.MinJoinScore <= 0 {
		out.MinJoinScore = 0.25
	}
	return out
}

// Candidate is one materialized mashup.
type Candidate struct {
	Anno     *provenance.Annotated
	Coverage float64 // fraction of wanted columns present
	// Quality weighs how each wanted column was satisfied: exact name
	// matches score 1, aliases 0.95, transforms 0.9 and fuzzy name matches
	// 0.6 — so a mashup supplying the true attribute b outranks one
	// supplying the similar-but-conflicting b′ (paper §1).
	Quality  float64
	Datasets []string // contributing datasets, sorted
	Plan     []string // human-readable build steps (transparency, §4.4)
}

// Rel is a shortcut to the materialized relation.
func (c *Candidate) Rel() *relation.Relation { return c.Anno.Rel }

// providerMode ranks how a dataset column satisfies a wanted column.
type providerMode int

const (
	provideDirect providerMode = iota
	provideAlias
	provideTransform
	provideFuzzy
)

type provider struct {
	wanted    string
	sourceCol string
	mode      providerMode
	transform *Transform
}

func (m providerMode) weight() float64 {
	switch m {
	case provideDirect:
		return 1
	case provideAlias:
		return 0.95
	case provideTransform:
		return 0.9
	default:
		return 0.6
	}
}

type transKey struct {
	Dataset, Column, Target string
}

// Engine is the DoD engine. Builds may run on many goroutines at once (the
// market engine's builder pool): mu serializes catalog/index/transform
// mutations against in-flight builds, and the versioned candidate cache
// (cache.go) memoizes build outcomes per want-key.
type Engine struct {
	cat  *catalog.Catalog
	disc *discovery.Engine

	// mu is the build/mutate seam: builds hold it shared for their whole
	// search+materialize, mutations (RegisterTransform, MutateCatalog) hold
	// it exclusively and bump version when done.
	mu         sync.RWMutex
	transforms map[transKey]*Transform
	version    atomic.Uint64

	cacheMu     sync.Mutex
	cache       map[string]*CandidateSet
	inflight    map[string]*inflightBuild
	cacheMax    int // MaxEntries bound; 0 = unlimited (guarded by cacheMu)
	cacheHits   atomic.Uint64
	cacheStale  atomic.Uint64
	cacheMisses atomic.Uint64
	builds      atomic.Uint64
	buildNanos  atomic.Int64
	evictions   atomic.Uint64
	panics      atomic.Uint64
	useSeq      atomic.Uint64 // logical clock for LRU recency

	// deadlineNanos is the per-build deadline applied inside BuildCached
	// (0 = none). deadlineHits/cancelled count build requests abandoned to
	// a deadline or an external cancellation.
	deadlineNanos atomic.Int64
	deadlineHits  atomic.Uint64
	cancelled     atomic.Uint64

	// subjoinHits counts join prefixes reused from a per-build sub-join memo
	// instead of being recomputed (dod_subjoin_memo_hits_total).
	subjoinHits atomic.Uint64

	// buildHook, when set, observes each completed build's wall-clock
	// seconds (telemetry only — see obs).
	buildHook atomic.Pointer[func(float64)]
}

// New creates an engine over a catalog and discovery engine.
func New(cat *catalog.Catalog, disc *discovery.Engine) *Engine {
	return &Engine{cat: cat, disc: disc, transforms: map[transKey]*Transform{},
		cache: map[string]*CandidateSet{}, inflight: map[string]*inflightBuild{}}
}

// RegisterTransform records that applying t to (dataset, column) yields the
// target attribute. Negotiation rounds (paper §4.1) feed this: a seller who
// explains how to obtain d from f(d) raises their dataset's usefulness.
//
// Beyond remembering the transform, the engine *materializes* the derived
// attribute as a new catalog version of the dataset and re-indexes it. This
// matters when the transformed values are what make a join possible at all
// (e.g. a legacy code mapped into the vocabulary another dataset joins on):
// content-based join discovery can only find edges on the materialized
// values.
func (e *Engine) RegisterTransform(dataset catalog.DatasetID, column, target string, t *Transform) {
	e.mu.Lock()
	defer func() {
		e.version.Add(1) // cached mashups predate the transform; invalidate
		e.mu.Unlock()
	}()
	e.transforms[transKey{string(dataset), column, target}] = t
	rel, err := e.cat.Get(dataset)
	if err != nil {
		return // quota-limited or unknown; transform-only registration stands
	}
	if rel.Schema.Has(target) || !rel.Schema.Has(column) {
		return
	}
	ci := rel.Schema.IndexOf(column)
	derived := relation.AddColumn(rel, relation.Column{Name: target, Kind: t.Kind},
		func(row []relation.Value, _ relation.Schema) relation.Value {
			return t.Fn(row[ci])
		})
	derived.Name = rel.Name
	if _, err := e.cat.Update(dataset, derived, "materialized transform "+t.Name); err != nil {
		return
	}
	e.disc.Index().Add(profile.Profile(string(dataset), derived))
}

// Transforms returns the number of registered transforms.
func (e *Engine) Transforms() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.transforms)
}

// providersFor lists how dataset ds can supply each wanted column.
func (e *Engine) providersFor(ds string, want Want) map[string]provider {
	dp := e.disc.Profile(ds)
	if dp == nil {
		return nil
	}
	out := map[string]provider{}
	consider := func(p provider) {
		if cur, ok := out[p.wanted]; !ok || p.mode < cur.mode {
			out[p.wanted] = p
		}
	}
	for _, w := range want.Columns {
		for i := range dp.Columns {
			col := dp.Columns[i].Column
			switch {
			case col == w:
				consider(provider{wanted: w, sourceCol: col, mode: provideDirect})
			case containsName(want.Aliases[w], col):
				consider(provider{wanted: w, sourceCol: col, mode: provideAlias})
			case tokenSim(col, w) >= 0.5:
				consider(provider{wanted: w, sourceCol: col, mode: provideFuzzy})
			}
			if t, ok := e.transforms[transKey{ds, col, w}]; ok {
				consider(provider{wanted: w, sourceCol: col, mode: provideTransform, transform: t})
			}
		}
	}
	return out
}

func containsName(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// tokenSim is the Jaccard similarity of name token sets.
func tokenSim(a, b string) float64 {
	ta, tb := index.Tokenize(a), index.Tokenize(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := map[string]bool{}
	for _, t := range ta {
		set[t] = true
	}
	inter := 0
	seen := map[string]bool{}
	for _, t := range tb {
		if set[t] && !seen[t] {
			inter++
			seen[t] = true
		}
	}
	union := len(set) + len(tb) - inter
	// len(tb) may double-count duplicates; normalize via sets.
	setB := map[string]bool{}
	for _, t := range tb {
		setB[t] = true
	}
	union = len(set) + len(setB) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// joinStep records one edge followed during assembly.
type joinStep struct {
	left  index.ColRef // column already in the state
	right index.ColRef // column of the newly added dataset
	score float64
}

// state is a beam-search node.
type state struct {
	datasets []string
	joins    []joinStep
	covered  map[string]provider // wanted column -> chosen provider
}

func (s *state) has(ds string) bool {
	for _, d := range s.datasets {
		if d == ds {
			return true
		}
	}
	return false
}

func (s *state) coverage(want Want) float64 {
	if len(want.Columns) == 0 {
		return 1
	}
	return float64(len(s.covered)) / float64(len(want.Columns))
}

func (s *state) quality(want Want) float64 {
	if len(want.Columns) == 0 {
		return 1
	}
	var q float64
	for _, pr := range s.covered {
		q += pr.mode.weight()
	}
	return q / float64(len(want.Columns))
}

func (s *state) clone() *state {
	ns := &state{
		datasets: append([]string(nil), s.datasets...),
		joins:    append([]joinStep(nil), s.joins...),
		covered:  make(map[string]provider, len(s.covered)),
	}
	for k, v := range s.covered {
		ns.covered[k] = v
	}
	return ns
}

func (s *state) key() string {
	ds := append([]string(nil), s.datasets...)
	sort.Strings(ds)
	return strings.Join(ds, "|")
}

// Build runs discovery + integration and returns ranked candidate mashups.
// It always searches afresh; BuildCached (cache.go) is the memoizing variant
// the arbiter's pipelined rounds use.
func (e *Engine) Build(wantIn Want) ([]Candidate, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.buildLocked(context.Background(), wantIn)
}

// buildLocked is the beam search + materialization. Caller holds e.mu (shared
// is enough: the search only reads catalog, index and transforms). The search
// checks ctx at node-expansion granularity and between joins, so a cancelled
// or deadline-exceeded build abandons promptly instead of finishing a search
// nobody will price.
func (e *Engine) buildLocked(ctx context.Context, wantIn Want) ([]Candidate, error) {
	want := wantIn.withDefaults()
	if len(want.Columns) == 0 {
		return nil, fmt.Errorf("dod: want has no columns")
	}
	allDS := e.disc.Index().Datasets()
	if len(allDS) == 0 {
		return nil, fmt.Errorf("dod: no datasets indexed")
	}

	// Seed states: every dataset that provides at least one wanted column.
	var beam []*state
	providers := map[string]map[string]provider{}
	for _, ds := range allDS {
		p := e.providersFor(ds, want)
		providers[ds] = p
		if len(p) == 0 {
			continue
		}
		st := &state{datasets: []string{ds}, covered: map[string]provider{}}
		for w, pr := range p {
			st.covered[w] = pr
		}
		beam = append(beam, st)
	}
	if len(beam) == 0 {
		return nil, fmt.Errorf("dod: no dataset provides any of %v", want.Columns)
	}
	sortStates(beam, want)
	const beamWidth = 8
	if len(beam) > beamWidth {
		beam = beam[:beamWidth]
	}

	finals := map[string]*state{}
	for _, st := range beam {
		finals[st.key()] = st
	}
	for depth := 1; depth < want.MaxDatasets; depth++ {
		var next []*state
		for _, st := range beam {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("dod: build abandoned at depth %d: %w", depth, err)
			}
			if st.quality(want) >= 1 {
				continue // every column satisfied exactly; no reason to grow
			}
			for _, ds := range st.datasets {
				for _, edge := range e.disc.Index().EdgesFor(ds) {
					if edge.Containment < want.MinJoinScore {
						continue
					}
					inSide, outSide := edge.A, edge.B
					if outSide.Dataset == ds {
						inSide, outSide = edge.B, edge.A
					}
					if inSide.Dataset != ds || st.has(outSide.Dataset) {
						continue
					}
					newP := providers[outSide.Dataset]
					adds := false
					for w, pr := range newP {
						if cur, ok := st.covered[w]; !ok || pr.mode < cur.mode {
							adds = true
							break
						}
					}
					if !adds {
						continue
					}
					ns := st.clone()
					ns.datasets = append(ns.datasets, outSide.Dataset)
					ns.joins = append(ns.joins, joinStep{left: inSide, right: outSide, score: edge.Containment})
					for w, pr := range newP {
						if cur, ok := ns.covered[w]; !ok || pr.mode < cur.mode {
							ns.covered[w] = pr
						}
					}
					next = append(next, ns)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		sortStates(next, want)
		dedup := next[:0]
		seen := map[string]bool{}
		for _, st := range next {
			k := st.key()
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, st)
			}
		}
		next = dedup
		if len(next) > beamWidth {
			next = next[:beamWidth]
		}
		for _, st := range next {
			if _, ok := finals[st.key()]; !ok {
				finals[st.key()] = st
			}
		}
		beam = next
	}

	// Materialize final states. Sibling candidates frequently share join
	// prefixes (the beam grows states one dataset at a time), so a per-build
	// memo lets later candidates reuse earlier candidates' join work — the
	// first step toward the factorised candidate representation (FDB).
	var states []*state
	for _, st := range finals {
		states = append(states, st)
	}
	sortStates(states, want)
	memo := &subJoinMemo{entries: map[string]subJoinEntry{}}
	var out []Candidate
	for _, st := range states {
		if len(out) >= want.MaxCandidates {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dod: build abandoned during materialize: %w", err)
		}
		cand, err := e.materialize(ctx, st, want, memo)
		if err != nil {
			continue // a failed plan just drops out of the ranking
		}
		if cand.Rel().NumRows() < want.MinRows {
			continue
		}
		out = append(out, *cand)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dod: no candidate mashup materialized for %v", want.Columns)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		if out[i].Quality != out[j].Quality {
			return out[i].Quality > out[j].Quality
		}
		if out[i].Rel().NumRows() != out[j].Rel().NumRows() {
			return out[i].Rel().NumRows() > out[j].Rel().NumRows()
		}
		return len(out[i].Datasets) < len(out[j].Datasets)
	})
	return out, nil
}

func sortStates(states []*state, want Want) {
	sort.SliceStable(states, func(i, j int) bool {
		qi, qj := states[i].quality(want), states[j].quality(want)
		if qi != qj {
			return qi > qj
		}
		if len(states[i].datasets) != len(states[j].datasets) {
			return len(states[i].datasets) < len(states[j].datasets)
		}
		return states[i].key() < states[j].key()
	})
}

// subJoinEntry is a memoized join prefix: the annotated relation after the
// prefix's joins plus the colMap at that point. The colMap snapshot is cloned
// on both store and reuse — later joins extend it in place.
type subJoinEntry struct {
	anno   *provenance.Annotated
	colMap map[index.ColRef]string
}

// subJoinMemo caches join prefixes within one buildLocked call, keyed by the
// ordered sequence of (base dataset, join edges) — join order matters for
// both row order and collision-suffixed column names, so the key is the
// prefix itself, not the dataset set. Entries are shared across candidates;
// that is safe because no downstream operator mutates relation rows in place.
type subJoinMemo struct {
	entries map[string]subJoinEntry
}

func cloneColMap(m map[index.ColRef]string) map[index.ColRef]string {
	out := make(map[index.ColRef]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// materialize turns a beam state into a provenance-annotated relation,
// reusing memoized join prefixes from sibling candidates where possible.
func (e *Engine) materialize(ctx context.Context, st *state, want Want, memo *subJoinMemo) (*Candidate, error) {
	plan := []string{fmt.Sprintf("load %s", st.datasets[0])}
	prefix := "base:" + st.datasets[0]
	var anno *provenance.Annotated
	var colMap map[index.ColRef]string
	if ent, ok := memo.entries[prefix]; ok {
		e.subjoinHits.Add(1)
		anno = ent.anno
		colMap = cloneColMap(ent.colMap)
	} else {
		base, err := e.cat.Get(catalog.DatasetID(st.datasets[0]))
		if err != nil {
			return nil, err
		}
		anno = provenance.FromSource(st.datasets[0], base)
		// colMap tracks where each source column lives in the running relation.
		colMap = map[index.ColRef]string{}
		for _, c := range base.Schema {
			colMap[index.ColRef{Dataset: st.datasets[0], Column: c.Name}] = c.Name
		}
		memo.entries[prefix] = subJoinEntry{anno: anno, colMap: cloneColMap(colMap)}
	}

	for _, js := range st.joins {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dod: build abandoned mid-join: %w", err)
		}
		plan = append(plan, fmt.Sprintf("join %s on %s.%s = %s.%s (score %.2f)",
			js.right.Dataset, js.left.Dataset, js.left.Column, js.right.Dataset, js.right.Column, js.score))
		prefix += "|" + js.right.Dataset + "⋈" + js.left.Dataset + "." + js.left.Column + "=" + js.right.Column
		if ent, ok := memo.entries[prefix]; ok {
			e.subjoinHits.Add(1)
			anno = ent.anno
			colMap = cloneColMap(ent.colMap)
			continue
		}
		rrel, err := e.cat.Get(catalog.DatasetID(js.right.Dataset))
		if err != nil {
			return nil, err
		}
		rAnno := provenance.FromSource(js.right.Dataset, rrel)
		leftName, ok := colMap[js.left]
		if !ok {
			return nil, fmt.Errorf("dod: lost track of join column %v", js.left)
		}
		joined, err := provenance.HashJoin(anno, rAnno, relation.JoinPair{Left: leftName, Right: js.right.Column})
		if err != nil {
			return nil, err
		}
		// Update colMap with the names the right columns received.
		existing := map[string]bool{}
		for _, c := range anno.Rel.Schema {
			existing[c.Name] = true
		}
		for _, c := range rrel.Schema {
			if c.Name == js.right.Column {
				continue // dropped join column
			}
			name := c.Name
			for existing[name] {
				name += "_r"
			}
			existing[name] = true
			colMap[index.ColRef{Dataset: js.right.Dataset, Column: c.Name}] = name
		}
		anno = joined
		memo.entries[prefix] = subJoinEntry{anno: anno, colMap: cloneColMap(colMap)}
	}

	// Satisfy wanted columns: apply transforms and renames.
	var err error
	var present []string
	var qualitySum float64
	for _, w := range want.Columns {
		if anno.Rel.Schema.Has(w) {
			present = append(present, w)
			qualitySum += provideDirect.weight()
			continue
		}
		pr, ds, ok := e.bestProvider(st, w, want)
		if !ok {
			continue
		}
		cn, ok := colMap[index.ColRef{Dataset: ds, Column: pr.sourceCol}]
		if !ok || !anno.Rel.Schema.Has(cn) {
			continue
		}
		if pr.transform != nil {
			anno, err = provenance.Map(anno, cn, pr.transform.Kind, pr.transform.Fn)
			if err != nil {
				return nil, err
			}
			plan = append(plan, fmt.Sprintf("apply transform %s to %s.%s", pr.transform.Name, ds, pr.sourceCol))
		}
		anno, err = provenance.Rename(anno, cn, w)
		if err != nil {
			return nil, err
		}
		if cn != w {
			plan = append(plan, fmt.Sprintf("rename %s -> %s", cn, w))
		}
		present = append(present, w)
		qualitySum += pr.mode.weight()
	}
	if len(present) == 0 {
		return nil, fmt.Errorf("dod: state materialized no wanted columns")
	}
	proj, err := provenance.Project(anno, present...)
	if err != nil {
		return nil, err
	}
	proj.Rel.Name = "mashup(" + strings.Join(st.datasets, "+") + ")"
	plan = append(plan, fmt.Sprintf("project %v", present))
	ds := append([]string(nil), st.datasets...)
	sort.Strings(ds)
	return &Candidate{
		Anno:     proj,
		Coverage: float64(len(present)) / float64(len(want.Columns)),
		Quality:  qualitySum / float64(len(want.Columns)),
		Datasets: ds,
		Plan:     plan,
	}, nil
}

// bestProvider picks the best provider of wanted column w among the state's
// datasets.
func (e *Engine) bestProvider(st *state, w string, want Want) (provider, string, bool) {
	var best provider
	bestDS := ""
	found := false
	for _, ds := range st.datasets {
		p := e.providersFor(ds, want)
		pr, ok := p[w]
		if !ok {
			continue
		}
		if !found || pr.mode < best.mode {
			best, bestDS, found = pr, ds, true
		}
	}
	return best, bestDS, found
}
