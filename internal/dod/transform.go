package dod

import (
	"fmt"
	"math"

	"repro/internal/relation"
)

// Transform converts the values of one column into the representation the
// buyer wants — the inverse mapping f′ of the paper's f(d) (§1 Challenge-3).
// A transform is either a closed-form function (affine) or a mapping table.
type Transform struct {
	Name string
	Kind relation.Kind // output kind
	Fn   func(relation.Value) relation.Value
}

// Apply runs the transform over a column.
func (t *Transform) Apply(r *relation.Relation, col string) (*relation.Relation, error) {
	return relation.Map(r, col, t.Kind, t.Fn)
}

// InferAffine fits y ≈ a·x + b over paired example values by least squares
// and returns the transform plus R². The arbiter uses example pairs —
// supplied by the buyer's packaged data or by a seller during negotiation
// rounds — to recover unit conversions such as Celsius→Fahrenheit.
func InferAffine(name string, xs, ys []float64) (*Transform, float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, 0, fmt.Errorf("dod: affine inference needs >=2 paired examples, got %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return nil, 0, fmt.Errorf("dod: affine inference: degenerate x values")
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n
	// R²
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := a*xs[i] + b
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 1e-12 {
		r2 = 1 - ssRes/ssTot
	}
	t := &Transform{
		Name: name,
		Kind: relation.KindFloat,
		Fn: func(v relation.Value) relation.Value {
			if v.IsNull() || !v.IsNumeric() {
				return relation.Null()
			}
			return relation.Float(a*v.AsFloat() + b)
		},
	}
	return t, r2, nil
}

// InferMapping builds a lookup-table transform from paired example values —
// the "mapping table that links values of f(d) to values of d" for
// non-invertible functions such as employee→ID pseudonymization. Conflicting
// pairs (same input, different outputs) make inference fail.
func InferMapping(name string, from, to []relation.Value) (*Transform, error) {
	if len(from) != len(to) || len(from) == 0 {
		return nil, fmt.Errorf("dod: mapping inference needs paired examples, got %d/%d", len(from), len(to))
	}
	table := map[string]relation.Value{}
	outKind := relation.KindNull
	for i := range from {
		if from[i].IsNull() || to[i].IsNull() {
			continue
		}
		k := from[i].Key()
		if prev, ok := table[k]; ok && !prev.Equal(to[i]) {
			return nil, fmt.Errorf("dod: mapping inference: conflicting outputs for %v", from[i])
		}
		table[k] = to[i]
		outKind = to[i].Kind()
	}
	if len(table) == 0 {
		return nil, fmt.Errorf("dod: mapping inference: no usable pairs")
	}
	return &Transform{
		Name: name,
		Kind: outKind,
		Fn: func(v relation.Value) relation.Value {
			if v.IsNull() {
				return relation.Null()
			}
			if out, ok := table[v.Key()]; ok {
				return out
			}
			return relation.Null()
		},
	}, nil
}

// MappingFromRelation builds a mapping transform from a two-column mapping
// table relation (fromCol → toCol) — the artifact a seller contributes when
// the arbiter's negotiation round asks "how do I transform this attribute so
// it joins with another one" (paper §4.1).
func MappingFromRelation(name string, table *relation.Relation, fromCol, toCol string) (*Transform, error) {
	fi := table.Schema.IndexOf(fromCol)
	ti := table.Schema.IndexOf(toCol)
	if fi < 0 || ti < 0 {
		return nil, fmt.Errorf("dod: mapping table needs columns %q and %q", fromCol, toCol)
	}
	from := make([]relation.Value, 0, table.NumRows())
	to := make([]relation.Value, 0, table.NumRows())
	for _, row := range table.Rows {
		from = append(from, row[fi])
		to = append(to, row[ti])
	}
	return InferMapping(name, from, to)
}

// InferTransform tries affine inference first (for numeric pairs with good
// fit) and falls back to a mapping table. minR2 gates the affine accept.
func InferTransform(name string, from, to []relation.Value, minR2 float64) (*Transform, error) {
	numeric := len(from) >= 2
	for i := range from {
		if !from[i].IsNumeric() || i >= len(to) || !to[i].IsNumeric() {
			numeric = false
			break
		}
	}
	if numeric {
		xs := make([]float64, len(from))
		ys := make([]float64, len(to))
		for i := range from {
			xs[i] = from[i].AsFloat()
			ys[i] = to[i].AsFloat()
		}
		if t, r2, err := InferAffine(name, xs, ys); err == nil && r2 >= minR2 {
			return t, nil
		}
	}
	return InferMapping(name, from, to)
}
