package dod

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file is the versioned candidate store behind the pipelined arbiter:
// Build results are cached per want-key and stamped with the catalog version
// current when the build started. ShareDataset/UpdateDataset (through
// MutateCatalog) and RegisterTransform bump the version, so a cached mashup
// built against yesterday's catalog is detected — and rebuilt — rather than
// served. Candidates are derived state: they are never logged or snapshotted,
// which is what lets the engine build them on worker goroutines without
// touching replay determinism (a valid cached set is byte-identical to what
// an inline build of the same want at the same version would produce,
// because Build is deterministic).

// Key is the group key of a want: buyers with the same wanted columns share
// one auction, so they share one cache slot. The arbiter groups requests by
// the same key.
func (w Want) Key() string {
	cols := append([]string(nil), w.Columns...)
	sort.Strings(cols)
	return strings.Join(cols, ",")
}

// fingerprint captures the exact build input: unlike Key it is sensitive to
// column order (projection order shapes the mashup schema), aliases and the
// search knobs, so a cached set is only reused for a want that would have
// built identically.
func (w Want) fingerprint() string {
	var b strings.Builder
	b.WriteString(strings.Join(w.Columns, ","))
	aliasKeys := make([]string, 0, len(w.Aliases))
	for k := range w.Aliases {
		aliasKeys = append(aliasKeys, k)
	}
	sort.Strings(aliasKeys)
	for _, k := range aliasKeys {
		fmt.Fprintf(&b, "|%s=%s", k, strings.Join(w.Aliases[k], "/"))
	}
	fmt.Fprintf(&b, "|%d|%d|%g|%d", w.MaxDatasets, w.MaxCandidates, w.MinJoinScore, w.MinRows)
	return b.String()
}

// CandidateSet is one cached build outcome: the ranked candidates (or the
// build failure) for one want, stamped with the catalog version they were
// built against. A set whose Version no longer matches the engine's catalog
// version is stale and must not be priced.
type CandidateSet struct {
	// Key is the want's group key (sorted wanted columns).
	Key string
	// Want is the exact want the set was built from.
	Want Want
	// Version is the catalog version at build start.
	Version uint64
	// Candidates are the ranked mashups; empty when the build failed.
	Candidates []Candidate
	// Err carries the build failure, cached like a positive result so a
	// hopeless want does not re-run the beam search every round — the next
	// catalog change invalidates it like everything else.
	Err string
	// BuildMillis is how long the build took (0 for cache hits).
	BuildMillis float64

	fp      string
	lastUse uint64 // engine.useSeq tick of the last hit or insert (LRU)
	// ctxErr is set when the build was abandoned to a context deadline or
	// cancellation rather than genuinely failing. Such sets are priced as
	// failed for this round but never cached: the next round must retry,
	// unlike an ordinary cached build failure.
	ctxErr error
}

// Abandoned returns the context error a deadline-exceeded or cancelled build
// carries (nil for real outcomes, including ordinary build failures).
func (cs *CandidateSet) Abandoned() error {
	if cs == nil {
		return nil
	}
	return cs.ctxErr
}

// CacheStats is a point-in-time snapshot of the candidate-store counters.
// All counters are in-memory observability only — never logged, snapshotted
// or replayed.
type CacheStats struct {
	// Hits counts version-valid cache reuses.
	Hits uint64 `json:"hits"`
	// Stale counts lookups that found an entry invalidated by a catalog
	// version bump (the entry was rebuilt).
	Stale uint64 `json:"stale"`
	// Misses counts lookups with no reusable entry.
	Misses uint64 `json:"misses"`
	// Builds counts beam searches actually run.
	Builds uint64 `json:"builds"`
	// BuildMillis is the cumulative wall-clock time spent in builds.
	BuildMillis float64 `json:"build_millis"`
	// Entries is the current cache population.
	Entries int `json:"entries"`
	// Version is the current catalog version.
	Version uint64 `json:"version"`
	// Evictions counts entries dropped to enforce CacheConfig.MaxEntries.
	Evictions uint64 `json:"evictions"`
	// Panics counts builds that panicked and were converted to failed
	// candidate sets instead of crashing the process.
	Panics uint64 `json:"panics"`
	// DeadlineExceeded counts build requests abandoned because they (or the
	// build they were waiting on) outran the configured build deadline.
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	// Cancelled counts build requests abandoned to an external cancellation
	// (engine shutdown, cancel-on-settle of a speculative prebuild).
	Cancelled uint64 `json:"cancelled"`
	// SubJoinHits counts join prefixes reused from the per-build sub-join
	// memo during candidate materialization instead of being recomputed.
	SubJoinHits uint64 `json:"subjoin_hits"`
}

// CacheConfig bounds the candidate store.
type CacheConfig struct {
	// MaxEntries caps the number of cached candidate sets; 0 means
	// unlimited. When the cap is exceeded, stale entries (wrong catalog
	// version) are evicted first, then — among fresh entries — the
	// cheapest-to-rebuild (lowest recorded build time, ties broken by
	// least recent use). An expensive mashup is worth keeping warm even
	// when a cheap one was touched more recently.
	MaxEntries int
}

// SetBuildDeadline bounds every build request: a BuildCached call whose build
// outruns d resolves to a failed CandidateSet carrying the context error and
// frees the caller, rather than wedging a worker. Zero (the default) disables
// the bound. Safe for concurrent use.
func (e *Engine) SetBuildDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.deadlineNanos.Store(int64(d))
}

// BuildDeadline returns the configured per-build deadline (0 = none).
func (e *Engine) BuildDeadline() time.Duration {
	return time.Duration(e.deadlineNanos.Load())
}

// SetCacheConfig applies the bound and immediately enforces it.
func (e *Engine) SetCacheConfig(cfg CacheConfig) {
	e.cacheMu.Lock()
	e.cacheMax = cfg.MaxEntries
	e.evictLocked()
	e.cacheMu.Unlock()
}

// SetBuildHook installs fn to observe each completed build's wall-clock
// seconds (nil to remove). Telemetry only; never affects build results.
func (e *Engine) SetBuildHook(fn func(seconds float64)) {
	if fn == nil {
		e.buildHook.Store(nil)
		return
	}
	e.buildHook.Store(&fn)
}

// evictLocked enforces cacheMax with a cost-weighted policy: stale entries go
// first (they would be rebuilt anyway; least recently used among them), then
// among fresh entries the cheapest-to-rebuild — lowest recorded BuildMillis,
// ties broken by lowest lastUse. Caller holds cacheMu.
func (e *Engine) evictLocked() {
	if e.cacheMax <= 0 {
		return
	}
	ver := e.version.Load()
	// evictBefore reports whether a is a better eviction victim than b.
	evictBefore := func(a, b *CandidateSet) bool {
		aStale, bStale := a.Version != ver, b.Version != ver
		if aStale != bStale {
			return aStale
		}
		if aStale {
			return a.lastUse < b.lastUse
		}
		if a.BuildMillis != b.BuildMillis {
			return a.BuildMillis < b.BuildMillis
		}
		return a.lastUse < b.lastUse
	}
	for len(e.cache) > e.cacheMax {
		victimKey := ""
		var victim *CandidateSet
		for k, cs := range e.cache {
			if victim == nil || evictBefore(cs, victim) {
				victimKey, victim = k, cs
			}
		}
		if victim == nil {
			return
		}
		delete(e.cache, victimKey)
		e.evictions.Add(1)
	}
}

// CatalogVersion returns the current catalog version. Every mutation that
// can change what Build would produce — dataset shares, updates, transform
// registrations — bumps it.
func (e *Engine) CatalogVersion() uint64 { return e.version.Load() }

// MutateCatalog runs a catalog/index mutation exclusively against in-flight
// builds. The arbiter routes its index writes (ShareDataset, UpdateDataset)
// through here so worker-goroutine builds never observe a half-applied
// mutation. The closure reports whether it actually applied: only then is
// the catalog version bumped (invalidating every cached candidate set) — a
// rejected update must not flush the cache for a no-op.
func (e *Engine) MutateCatalog(mutate func() bool) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if mutate() {
		return e.version.Add(1)
	}
	return e.version.Load()
}

// Valid reports whether a candidate set can be priced for the given want
// right now: it must have been built from an identical want and stamped with
// the current catalog version. The price-time check is what keeps an
// UpdateDataset racing a prebuild from settling against a pre-update mashup.
func (e *Engine) Valid(cs *CandidateSet, want Want) bool {
	return cs != nil && cs.fp == want.fingerprint() && cs.Version == e.version.Load()
}

// CacheStats snapshots the candidate-store counters.
func (e *Engine) CacheStats() CacheStats {
	e.cacheMu.Lock()
	entries := len(e.cache)
	e.cacheMu.Unlock()
	return CacheStats{
		Hits:             e.cacheHits.Load(),
		Stale:            e.cacheStale.Load(),
		Misses:           e.cacheMisses.Load(),
		Builds:           e.builds.Load(),
		BuildMillis:      float64(e.buildNanos.Load()) / 1e6,
		Entries:          entries,
		Version:          e.version.Load(),
		Evictions:        e.evictions.Load(),
		Panics:           e.panics.Load(),
		DeadlineExceeded: e.deadlineHits.Load(),
		Cancelled:        e.cancelled.Load(),
		SubJoinHits:      e.subjoinHits.Load(),
	}
}

// inflightBuild is one in-progress build other callers can wait on instead
// of duplicating the beam search (per-want singleflight).
type inflightBuild struct {
	ver  uint64
	done chan struct{}
	cs   *CandidateSet // set before done closes
}

// BuildCached is the cache-aware, supervised Build: a version-valid entry for
// the same want is returned as-is (hit); an entry invalidated by a catalog
// bump (stale) or absent (miss) triggers a build, whose outcome — success or
// failure — is stored under the want's key. Safe for concurrent use; builds
// for distinct wants run in parallel (they hold the catalog read-lock, so a
// MutateCatalog waits for them and they never see partial mutations), while
// concurrent callers for the same want at the same version share one build:
// a speculative prebuild racing the next epoch's build stage costs one beam
// search, not two.
//
// ctx bounds the request (nil is treated as context.Background()); on top of
// it, a deadline configured via SetBuildDeadline is applied per call. When the
// context ends before the build does, BuildCached returns a failed
// CandidateSet carrying the context error — stamped with the current
// fingerprint and version so the pricing stage accepts it as a (failed) build
// for this round — and the caller is freed. The abandoned search keeps running
// on its own goroutine until it notices the cancellation (the beam search
// checks at node-expansion granularity; an uninterruptible user transform can
// pin that goroutine, and with it the catalog read-lock, but never a worker,
// an epoch, or Engine.Stop). Abandoned results are never cached: the next
// round retries instead of trusting a timeout.
func (e *Engine) BuildCached(ctx context.Context, want Want) *CandidateSet {
	if ctx == nil {
		ctx = context.Background()
	}
	if d := e.BuildDeadline(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if ctx.Done() == nil {
		// Unbounded and uncancellable: run inline, no supervisor needed.
		return e.buildCachedSync(ctx, want)
	}
	ch := make(chan *CandidateSet, 1)
	go func() { ch <- e.buildCachedSync(ctx, want) }()
	select {
	case cs := <-ch:
		if cs.ctxErr != nil {
			e.countAbandoned(cs.ctxErr)
		}
		return cs
	case <-ctx.Done():
		// The build has not noticed yet (it may be inside user code). Leave
		// it to finish on its own goroutine — it resolves its inflight entry
		// itself and its result is discarded (ch is buffered) — and hand the
		// caller a failed set for this round.
		err := ctx.Err()
		e.countAbandoned(err)
		return e.abandonedSet(want, err)
	}
}

// countAbandoned attributes one abandoned build request to the deadline or
// cancellation counter. Called exactly once per abandoned BuildCached call.
func (e *Engine) countAbandoned(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		e.deadlineHits.Add(1)
	} else {
		e.cancelled.Add(1)
	}
}

// abandonedSet is the failed CandidateSet an abandoned build request resolves
// to. It is stamped with the want's fingerprint and the current catalog
// version so the price-time Valid check passes and the group is skipped like
// any failed build, instead of being rebuilt inline mid-round.
func (e *Engine) abandonedSet(want Want, err error) *CandidateSet {
	return &CandidateSet{
		Key:     want.Key(),
		Want:    want,
		Version: e.version.Load(),
		Err:     fmt.Sprintf("dod: build abandoned: %v", err),
		fp:      want.fingerprint(),
		ctxErr:  err,
	}
}

// buildCachedSync is the cache lookup + singleflight + build path. It honors
// ctx cooperatively (the beam search aborts between node expansions and
// joins) but never abandons bookkeeping: whatever happens, the inflight entry
// is resolved and the catalog read-lock released.
func (e *Engine) buildCachedSync(ctx context.Context, want Want) *CandidateSet {
	key, fp := want.Key(), want.fingerprint()
	flKey := key + "\x00" + fp

	e.mu.RLock()
	ver := e.version.Load() // stable while the read-lock pins out writers
	e.cacheMu.Lock()
	if cs, ok := e.cache[key]; ok && cs.fp == fp && cs.Version == ver {
		cs.lastUse = e.useSeq.Add(1)
		e.cacheMu.Unlock()
		e.mu.RUnlock()
		e.cacheHits.Add(1)
		return cs
	}
	if fl, ok := e.inflight[flKey]; ok && fl.ver == ver {
		// Someone is already building this exact want at this version: wait
		// for their result instead of burning a second search (and counting
		// phantom misses). The wait holds no locks and respects ctx — a
		// deadline-bounded caller must not inherit a wedged builder's fate.
		e.cacheMu.Unlock()
		e.mu.RUnlock()
		select {
		case <-fl.done:
			e.cacheHits.Add(1)
			return fl.cs
		case <-ctx.Done():
			return e.abandonedSet(want, ctx.Err())
		}
	}
	if cs, ok := e.cache[key]; ok && cs.fp == fp {
		e.cacheStale.Add(1)
	} else {
		e.cacheMisses.Add(1)
	}
	fl := &inflightBuild{ver: ver, done: make(chan struct{})}
	e.inflight[flKey] = fl
	e.cacheMu.Unlock()

	start := time.Now()
	cands, err := e.buildRecover(ctx, want)
	e.mu.RUnlock()
	ms := float64(time.Since(start).Nanoseconds()) / 1e6

	e.builds.Add(1)
	e.buildNanos.Add(time.Since(start).Nanoseconds())
	if hook := e.buildHook.Load(); hook != nil {
		(*hook)(time.Since(start).Seconds())
	}
	cs := &CandidateSet{Key: key, Want: want, Version: ver, Candidates: cands, BuildMillis: ms, fp: fp}
	if err != nil {
		cs.Err = err.Error()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			cs.ctxErr = err
		}
	}
	e.cacheMu.Lock()
	cs.lastUse = e.useSeq.Add(1)
	// A laggard build (e.g. a speculative prebuild that lost the race with
	// a catalog bump) must not evict a fresher entry — the stale set would
	// just force yet another rebuild at the next lookup. An abandoned build
	// is never cached at all: unlike a genuine failure, it says nothing
	// about the catalog, and the next round must retry.
	if cur, ok := e.cache[key]; cs.ctxErr == nil && (!ok || cur.Version <= cs.Version) {
		e.cache[key] = cs
		e.evictLocked()
	}
	if e.inflight[flKey] == fl {
		delete(e.inflight, flKey)
	}
	e.cacheMu.Unlock()
	fl.cs = cs // happens-before the close; waiters read after <-done
	close(fl.done)
	return cs
}

// buildRecover runs the beam search, converting a panic (e.g. from a buggy
// user-registered transform materializing a derived column) into a build
// error. The defer runs before buildCachedSync releases the catalog read-lock
// and before the inflight entry is resolved, so a panicking build can never
// wedge MutateCatalog or strand singleflight waiters.
func (e *Engine) buildRecover(ctx context.Context, want Want) (cands []Candidate, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			cands, err = nil, fmt.Errorf("dod: build panicked: %v", r)
		}
	}()
	return e.buildLocked(ctx, want)
}

// InvalidateAll drops every cached candidate set and bumps the version (so
// in-flight sets built before the call go stale too). Tests and
// administrative resets use it; normal operation relies on version bumps
// alone.
func (e *Engine) InvalidateAll() {
	e.cacheMu.Lock()
	e.cache = map[string]*CandidateSet{}
	e.cacheMu.Unlock()
	e.version.Add(1)
}
