package dod

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/discovery"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/relation"
)

// stallScenario builds a one-dataset engine whose derived column z parks
// every build on gate: the transform is registered before the dataset enters
// the catalog (transform-only registration), so it fires lazily per row
// inside the beam search's materialize step — a build that never panics and
// never returns until the gate closes.
func stallScenario(t *testing.T, gate chan struct{}) *Engine {
	t.Helper()
	s1 := relation.New("s1", relation.NewSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("b", relation.KindFloat),
	))
	for i := 0; i < 12; i++ {
		s1.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*0.5))
	}
	cat := catalog.New()
	ix := index.Build(index.DefaultConfig(), []*profile.DatasetProfile{profile.Profile("s1", s1)})
	eng := New(cat, discovery.New(ix))
	eng.RegisterTransform("s1", "b", "z", &Transform{Name: "stall", Kind: relation.KindFloat,
		Fn: func(relation.Value) relation.Value { <-gate; return relation.Float(1) }})
	if err := cat.Register("s1", "seller1", s1); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestBuildCachedDeadlineAbandons pins the supervised BuildCached contract:
// a build that outruns the configured deadline resolves to a failed set
// carrying context.DeadlineExceeded (counted, version-stamped so pricing
// accepts it), is never cached, and — once the stall clears — a retry of the
// same want builds fresh and succeeds.
func TestBuildCachedDeadlineAbandons(t *testing.T) {
	gate := make(chan struct{})
	eng := stallScenario(t, gate)
	eng.SetBuildDeadline(80 * time.Millisecond)

	want := Want{Columns: []string{"a", "z"}}
	start := time.Now()
	cs := eng.BuildCached(context.Background(), want)
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("BuildCached returned only after %v despite the deadline", took)
	}
	if cs.Err == "" || len(cs.Candidates) != 0 {
		t.Fatalf("abandoned build must resolve failed, got %+v", cs)
	}
	if !errors.Is(cs.Abandoned(), context.DeadlineExceeded) {
		t.Fatalf("Abandoned() = %v, want DeadlineExceeded", cs.Abandoned())
	}
	if !eng.Valid(cs, want) {
		t.Fatal("abandoned set must be version-stamped so pricing skips (not rebuilds) the group")
	}
	st := eng.CacheStats()
	if st.DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
	if st.Entries != 0 {
		t.Fatalf("abandoned result was cached (%d entries); the next round must retry", st.Entries)
	}

	// An already-cancelled caller context is honored too, attributed to the
	// cancellation counter rather than the deadline one.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cs2 := eng.BuildCached(ctx, Want{Columns: []string{"a"}})
	if !errors.Is(cs2.Abandoned(), context.Canceled) {
		t.Fatalf("Abandoned() = %v, want Canceled", cs2.Abandoned())
	}
	if got := eng.CacheStats().Cancelled; got < 1 {
		t.Fatalf("Cancelled = %d, want >= 1", got)
	}

	// Clear the stall: the same want now builds fresh and succeeds. The
	// first retries may still land on the draining stuck goroutine's
	// singleflight entry (whose result is abandoned), so poll briefly.
	close(gate)
	eng.SetBuildDeadline(0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs3 := eng.BuildCached(context.Background(), want)
		if cs3.Err == "" && len(cs3.Candidates) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry after the stall cleared never succeeded: %+v", cs3)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
