package dod

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/discovery"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/relation"
)

// paperScenario builds the paper's §1 worked example:
//
//	s1 = ⟨a, b, c⟩      (seller 1)
//	s2 = ⟨a, b', f(d)⟩   (seller 2; f(d) = celsius*1.8+32, i.e. fahrenheit)
//
// buyer wants ⟨a, b, d⟩ (attribute e has no owner; §7.1).
func paperScenario(t *testing.T) (*catalog.Catalog, *Engine) {
	t.Helper()
	s1 := relation.New("s1", relation.NewSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("b", relation.KindFloat),
		relation.Col("c", relation.KindString),
	))
	s2 := relation.New("s2", relation.NewSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("b_prime", relation.KindFloat),
		relation.Col("f_d", relation.KindFloat),
	))
	for i := 0; i < 120; i++ {
		s1.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*0.5), relation.String_(fmt.Sprintf("c%d", i)))
		celsius := float64(i % 35)
		s2.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*0.5+0.1), relation.Float(celsius*1.8+32))
	}
	cat := catalog.New()
	if err := cat.Register("s1", "seller1", s1); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("s2", "seller2", s2); err != nil {
		t.Fatal(err)
	}
	profiles := []*profile.DatasetProfile{profile.Profile("s1", s1), profile.Profile("s2", s2)}
	ix := index.Build(index.DefaultConfig(), profiles)
	eng := New(cat, discovery.New(ix))
	return cat, eng
}

func TestBuildSingleDataset(t *testing.T) {
	_, eng := paperScenario(t)
	cands, err := eng.Build(Want{Columns: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	best := cands[0]
	if best.Coverage != 1 {
		t.Errorf("coverage = %v", best.Coverage)
	}
	if len(best.Datasets) != 1 || best.Datasets[0] != "s1" {
		t.Errorf("datasets = %v; s1 alone covers a,b", best.Datasets)
	}
	if !best.Rel().Schema.Has("a") || !best.Rel().Schema.Has("b") {
		t.Errorf("schema = %s", best.Rel().Schema)
	}
}

func TestBuildJoinsAcrossSellers(t *testing.T) {
	_, eng := paperScenario(t)
	// d needs the transform; register the inverse of f (fahrenheit→celsius)
	// as the negotiation round would.
	inv, r2, err := InferAffine("f_inverse", []float64{32, 50, 212}, []float64{0, 10, 100})
	if err != nil || r2 < 0.999 {
		t.Fatalf("affine inference failed: %v r2=%v", err, r2)
	}
	eng.RegisterTransform("s2", "f_d", "d", inv)

	cands, err := eng.Build(Want{Columns: []string{"a", "b", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	best := cands[0]
	if best.Coverage != 1 {
		t.Fatalf("coverage = %v, plan=%v", best.Coverage, best.Plan)
	}
	if len(best.Datasets) != 2 {
		t.Errorf("datasets = %v, want both sellers", best.Datasets)
	}
	// Check d values are celsius (0..34), not fahrenheit.
	dv, err := best.Rel().Column("d")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dv[:5] {
		if v.AsFloat() < -1 || v.AsFloat() > 40 {
			t.Errorf("d = %v, want celsius range", v)
		}
	}
	// Provenance must name both datasets.
	ds := best.Anno.Datasets()
	if len(ds) != 2 {
		t.Errorf("provenance datasets = %v", ds)
	}
}

func TestBuildPartialCoverage(t *testing.T) {
	_, eng := paperScenario(t)
	// e has no owner anywhere: best mashup covers 3 of 4 columns at most
	// (a, b, and nothing for d without a transform, e never).
	cands, err := eng.Build(Want{Columns: []string{"a", "b", "e"}})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Coverage >= 1 {
		t.Errorf("coverage = %v; e is unobtainable", cands[0].Coverage)
	}
	if cands[0].Rel().Schema.Has("e") {
		t.Error("e must not appear")
	}
}

func TestBuildErrors(t *testing.T) {
	_, eng := paperScenario(t)
	if _, err := eng.Build(Want{}); err == nil {
		t.Error("empty want must fail")
	}
	if _, err := eng.Build(Want{Columns: []string{"zzz"}}); err == nil {
		t.Error("unobtainable want must fail")
	}
}

func TestAliases(t *testing.T) {
	_, eng := paperScenario(t)
	cands, err := eng.Build(Want{
		Columns: []string{"a", "bee"},
		Aliases: map[string][]string{"bee": {"b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Coverage != 1 {
		t.Errorf("alias coverage = %v", cands[0].Coverage)
	}
	if !cands[0].Rel().Schema.Has("bee") {
		t.Errorf("schema = %s, want renamed 'bee'", cands[0].Rel().Schema)
	}
}

func TestFuzzyNameMatch(t *testing.T) {
	if s := tokenSim("cust_id", "id_cust"); s != 1 {
		t.Errorf("tokenSim(cust_id, id_cust) = %v, want 1", s)
	}
	if s := tokenSim("temp_f", "temp"); s != 0.5 {
		t.Errorf("tokenSim(temp_f, temp) = %v, want 0.5", s)
	}
	if tokenSim("", "x") != 0 {
		t.Error("empty name similarity must be 0")
	}
}

func TestInferAffine(t *testing.T) {
	xs := []float64{0, 10, 20, 30}
	ys := []float64{32, 50, 68, 86} // fahrenheit
	tr, r2, err := InferAffine("c2f", xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9999 {
		t.Errorf("r2 = %v", r2)
	}
	got := tr.Fn(relation.Float(100))
	if math.Abs(got.AsFloat()-212) > 1e-9 {
		t.Errorf("c2f(100) = %v, want 212", got)
	}
	if !tr.Fn(relation.Null()).IsNull() {
		t.Error("transform of NULL is NULL")
	}
	if _, _, err := InferAffine("x", []float64{1}, []float64{2}); err == nil {
		t.Error("single pair must fail")
	}
	if _, _, err := InferAffine("x", []float64{5, 5}, []float64{1, 2}); err == nil {
		t.Error("degenerate x must fail")
	}
}

func TestInferMapping(t *testing.T) {
	from := []relation.Value{relation.String_("E01"), relation.String_("E02")}
	to := []relation.Value{relation.String_("alice"), relation.String_("bob")}
	tr, err := InferMapping("ids", from, to)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Fn(relation.String_("E01")); got.AsString() != "alice" {
		t.Errorf("map(E01) = %v", got)
	}
	if !tr.Fn(relation.String_("E99")).IsNull() {
		t.Error("unmapped input yields NULL")
	}
	// Conflicting pairs fail.
	bad := append(from, relation.String_("E01"))
	badTo := append(to, relation.String_("carol"))
	if _, err := InferMapping("ids", bad, badTo); err == nil {
		t.Error("conflicting mapping must fail")
	}
	if _, err := InferMapping("ids", nil, nil); err == nil {
		t.Error("empty mapping must fail")
	}
}

func TestMappingFromRelation(t *testing.T) {
	table := relation.New("map", relation.NewSchema(
		relation.Col("token", relation.KindString),
		relation.Col("name", relation.KindString),
	))
	table.MustAppend(relation.String_("T1"), relation.String_("x"))
	table.MustAppend(relation.String_("T2"), relation.String_("y"))
	tr, err := MappingFromRelation("m", table, "token", "name")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fn(relation.String_("T2")).AsString() != "y" {
		t.Error("mapping table transform failed")
	}
	if _, err := MappingFromRelation("m", table, "ghost", "name"); err == nil {
		t.Error("missing column must fail")
	}
}

func TestInferTransformPrefersAffine(t *testing.T) {
	from := []relation.Value{relation.Float(0), relation.Float(10), relation.Float(20)}
	to := []relation.Value{relation.Float(32), relation.Float(50), relation.Float(68)}
	tr, err := InferTransform("t", from, to, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// Affine generalizes beyond examples; a mapping table would return NULL.
	if got := tr.Fn(relation.Float(100)); got.IsNull() || math.Abs(got.AsFloat()-212) > 1e-6 {
		t.Errorf("generalization = %v, want 212 (affine)", got)
	}
	// Non-numeric falls back to mapping.
	sf := []relation.Value{relation.String_("a")}
	st := []relation.Value{relation.String_("b")}
	tr2, err := InferTransform("t2", sf, st, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Fn(relation.String_("a")).AsString() != "b" {
		t.Error("mapping fallback failed")
	}
}

func TestPlanTransparency(t *testing.T) {
	_, eng := paperScenario(t)
	cands, err := eng.Build(Want{Columns: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands[0].Plan) == 0 {
		t.Error("plan must record build steps for transparency (§4.4)")
	}
}
