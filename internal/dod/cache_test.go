package dod

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestWantKeyAndFingerprint(t *testing.T) {
	a := Want{Columns: []string{"b", "a"}}
	b := Want{Columns: []string{"a", "b"}}
	if a.Key() != b.Key() {
		t.Errorf("keys differ for same column set: %q vs %q", a.Key(), b.Key())
	}
	// Column order shapes the projection, so fingerprints must differ even
	// when keys collide.
	if a.fingerprint() == b.fingerprint() {
		t.Error("fingerprints identical for different column orders")
	}
	withAlias := Want{Columns: []string{"a", "b"}, Aliases: map[string][]string{"b": {"b_prime"}}}
	if withAlias.fingerprint() == b.fingerprint() {
		t.Error("fingerprints identical despite different aliases")
	}
	if withAlias.Key() != b.Key() {
		t.Error("aliases must not change the group key")
	}
}

// TestCandidateCacheTable is the hit/stale/invalidation table: each step
// performs one cache interaction and asserts the counter it must move.
func TestCandidateCacheTable(t *testing.T) {
	_, eng := paperScenario(t)
	want := Want{Columns: []string{"a", "b"}}

	steps := []struct {
		name   string
		run    func(t *testing.T)
		hits   uint64
		stale  uint64
		misses uint64
	}{
		{
			name: "cold build is a miss",
			run: func(t *testing.T) {
				cs := eng.BuildCached(context.Background(), want)
				if cs.Err != "" || len(cs.Candidates) == 0 {
					t.Fatalf("build failed: %q", cs.Err)
				}
				if cs.Version != eng.CatalogVersion() {
					t.Fatalf("set stamped version %d, catalog at %d", cs.Version, eng.CatalogVersion())
				}
			},
			misses: 1,
		},
		{
			name: "repeat is a hit",
			run: func(t *testing.T) {
				first := eng.BuildCached(context.Background(), want)
				again := eng.BuildCached(context.Background(), want)
				if again != first {
					t.Error("hit did not return the cached set")
				}
			},
			hits: 2, // the lookup inside the step body runs twice
		},
		{
			name: "same key, different want is a miss",
			run: func(t *testing.T) {
				aliased := Want{Columns: []string{"a", "b"}, Aliases: map[string][]string{"b": {"b_prime"}}}
				if aliased.Key() != want.Key() {
					t.Fatal("fixture broken: keys must collide")
				}
				eng.BuildCached(context.Background(), aliased)
			},
			misses: 1,
		},
		{
			name: "catalog mutation invalidates",
			run: func(t *testing.T) {
				eng.BuildCached(context.Background(), want) // re-own the slot after the alias build
				before := eng.BuildCached(context.Background(), want)
				ver := eng.MutateCatalog(func() bool { return true })
				if eng.Valid(before, want) {
					t.Error("set still valid after version bump")
				}
				after := eng.BuildCached(context.Background(), want)
				if after == before {
					t.Error("stale set served after catalog mutation")
				}
				if after.Version != ver {
					t.Errorf("rebuilt set stamped %d, want %d", after.Version, ver)
				}
			},
			hits:   1, // the "before" lookup
			stale:  1, // the rebuild after the bump
			misses: 1, // re-owning the slot from the aliased want
		},
		{
			name: "transform registration invalidates",
			run: func(t *testing.T) {
				before := eng.BuildCached(context.Background(), want)
				inv, _, err := InferAffine("f_inverse", []float64{32, 50, 212}, []float64{0, 10, 100})
				if err != nil {
					t.Fatal(err)
				}
				eng.RegisterTransform("s2", "f_d", "d", inv)
				if eng.Valid(before, want) {
					t.Error("set still valid after RegisterTransform")
				}
			},
			hits:  1,
			stale: 0,
		},
		{
			name: "build failures cache too",
			run: func(t *testing.T) {
				hopeless := Want{Columns: []string{"no", "such", "columns"}}
				first := eng.BuildCached(context.Background(), hopeless)
				if first.Err == "" || len(first.Candidates) != 0 {
					t.Fatalf("expected a failed build, got %d candidates", len(first.Candidates))
				}
				if again := eng.BuildCached(context.Background(), hopeless); again != first {
					t.Error("failed build not served from cache")
				}
			},
			misses: 1,
			hits:   1,
		},
	}

	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			before := eng.CacheStats()
			step.run(t)
			after := eng.CacheStats()
			if got := after.Hits - before.Hits; got != step.hits {
				t.Errorf("hits moved %d, want %d", got, step.hits)
			}
			if got := after.Stale - before.Stale; got != step.stale {
				t.Errorf("stale moved %d, want %d", got, step.stale)
			}
			if got := after.Misses - before.Misses; got != step.misses {
				t.Errorf("misses moved %d, want %d", got, step.misses)
			}
		})
	}

	if st := eng.CacheStats(); st.Builds == 0 || st.BuildMillis < 0 {
		t.Errorf("build accounting missing: %+v", st)
	}
}

// TestCachedSetMatchesFreshBuild pins the equivalence the pipelined engine
// relies on: a version-valid cached set is exactly what an inline build
// would produce.
func TestCachedSetMatchesFreshBuild(t *testing.T) {
	_, eng := paperScenario(t)
	want := Want{Columns: []string{"a", "b"}}
	cached := eng.BuildCached(context.Background(), want)
	fresh, err := eng.Build(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Candidates) != len(fresh) {
		t.Fatalf("cached %d candidates, fresh %d", len(cached.Candidates), len(fresh))
	}
	for i := range fresh {
		c, f := cached.Candidates[i], fresh[i]
		if fmt.Sprint(c.Datasets) != fmt.Sprint(f.Datasets) || c.Coverage != f.Coverage ||
			c.Quality != f.Quality || c.Rel().NumRows() != f.Rel().NumRows() {
			t.Errorf("candidate %d diverges: cached %v/%v/%v, fresh %v/%v/%v",
				i, c.Datasets, c.Coverage, c.Quality, f.Datasets, f.Coverage, f.Quality)
		}
	}
}

// TestConcurrentBuildsAndMutations is the -race exercise for the build/mutate
// seam: builders hammer BuildCached while catalog mutations and transform
// registrations interleave.
func TestConcurrentBuildsAndMutations(t *testing.T) {
	cat, eng := paperScenario(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wants := []Want{
				{Columns: []string{"a", "b"}},
				{Columns: []string{"a"}},
				{Columns: []string{"b", "a"}},
			}
			for i := 0; i < 30; i++ {
				cs := eng.BuildCached(context.Background(), wants[(w+i)%len(wants)])
				if cs.Err == "" && len(cs.Candidates) == 0 {
					t.Error("successful build with no candidates")
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			rel, err := cat.Get("s1")
			if err != nil {
				t.Error(err)
				return
			}
			eng.MutateCatalog(func() bool {
				_, err := cat.Update("s1", rel, "touch")
				return err == nil
			})
		}
	}()
	wg.Wait()
}

// TestNoOpMutationKeepsCacheWarm: a mutation that reports "not applied"
// (e.g. a rejected catalog update) must not bump the version — flushing the
// whole candidate cache for a no-op would let erroneous retries degrade
// every round to synchronous build cost.
func TestNoOpMutationKeepsCacheWarm(t *testing.T) {
	_, eng := paperScenario(t)
	want := Want{Columns: []string{"a", "b"}}
	cs := eng.BuildCached(context.Background(), want)
	before := eng.CatalogVersion()
	if got := eng.MutateCatalog(func() bool { return false }); got != before {
		t.Fatalf("no-op mutation bumped version %d -> %d", before, got)
	}
	if !eng.Valid(cs, want) {
		t.Error("cached set invalidated by a no-op mutation")
	}
	hits := eng.CacheStats().Hits
	if again := eng.BuildCached(context.Background(), want); again != cs {
		t.Error("cache missed after a no-op mutation")
	}
	if eng.CacheStats().Hits != hits+1 {
		t.Error("post-no-op lookup was not a hit")
	}
}

// TestSingleflightDedupsConcurrentBuilds: concurrent BuildCached calls for
// the same want at the same version share one beam search.
func TestSingleflightDedupsConcurrentBuilds(t *testing.T) {
	_, eng := paperScenario(t)
	want := Want{Columns: []string{"a", "b"}}
	const callers = 8
	results := make([]*CandidateSet, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = eng.BuildCached(context.Background(), want)
		}(i)
	}
	wg.Wait()
	for i, cs := range results {
		if cs == nil || cs.Err != "" || len(cs.Candidates) == 0 {
			t.Fatalf("caller %d got a bad set: %+v", i, cs)
		}
		if cs != results[0] {
			t.Errorf("caller %d got a different set instance", i)
		}
	}
	if st := eng.CacheStats(); st.Builds != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", st.Builds)
	}
}
