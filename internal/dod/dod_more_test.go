package dod

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/discovery"
	"repro/internal/index"
	"repro/internal/profile"
	"repro/internal/relation"
)

// TestTransformMaterialization verifies that registering a transform makes
// the derived attribute joinable: two datasets whose only link is through a
// mapped vocabulary become combinable after RegisterTransform.
func TestTransformMaterialization(t *testing.T) {
	left := relation.New("left", relation.NewSchema(
		relation.Col("icd", relation.KindString),
		relation.Col("metric", relation.KindFloat),
	))
	right := relation.New("right", relation.NewSchema(
		relation.Col("legacy", relation.KindString),
		relation.Col("rate", relation.KindFloat),
	))
	mapFrom := make([]relation.Value, 0, 40)
	mapTo := make([]relation.Value, 0, 40)
	for i := 0; i < 40; i++ {
		icd := fmt.Sprintf("ICD%02d", i)
		leg := fmt.Sprintf("LC-%02d", i)
		left.MustAppend(relation.String_(icd), relation.Float(float64(i)))
		right.MustAppend(relation.String_(leg), relation.Float(float64(i)/40))
		mapFrom = append(mapFrom, relation.String_(leg))
		mapTo = append(mapTo, relation.String_(icd))
	}
	cat := catalog.New()
	if err := cat.Register("left", "a", left); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("right", "b", right); err != nil {
		t.Fatal(err)
	}
	ix := index.Build(index.DefaultConfig(), []*profile.DatasetProfile{
		profile.Profile("left", left), profile.Profile("right", right),
	})
	eng := New(cat, discovery.New(ix))

	want := Want{Columns: []string{"icd", "metric", "rate"}}
	cands, err := eng.Build(want)
	if err == nil && cands[0].Coverage == 1 {
		t.Fatal("datasets must not be combinable before the transform")
	}

	tr, err := InferMapping("legacy->icd", mapFrom, mapTo)
	if err != nil {
		t.Fatal(err)
	}
	eng.RegisterTransform("right", "legacy", "icd", tr)

	// The derived column must now exist in the catalog's current version...
	cur, err := cat.Get("right")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Schema.Has("icd") {
		t.Fatal("transform must materialize the derived column")
	}
	// ...and the join must succeed with full coverage.
	cands, err = eng.Build(want)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Coverage != 1 {
		t.Fatalf("coverage = %v, plan = %v", cands[0].Coverage, cands[0].Plan)
	}
	if cands[0].Rel().NumRows() != 40 {
		t.Errorf("joined rows = %d", cands[0].Rel().NumRows())
	}
}

// TestRegisterTransformIdempotent: re-registering must not stack duplicate
// derived columns or versions beyond one per distinct registration.
func TestRegisterTransformIdempotent(t *testing.T) {
	r := relation.New("d", relation.NewSchema(relation.Col("x", relation.KindFloat)))
	for i := 0; i < 20; i++ {
		r.MustAppend(relation.Float(float64(i)))
	}
	cat := catalog.New()
	if err := cat.Register("d", "s", r); err != nil {
		t.Fatal(err)
	}
	ix := index.Build(index.DefaultConfig(), []*profile.DatasetProfile{profile.Profile("d", r)})
	eng := New(cat, discovery.New(ix))
	tr, _, err := InferAffine("double", []float64{0, 1, 2}, []float64{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.RegisterTransform("d", "x", "y", tr)
	eng.RegisterTransform("d", "x", "y", tr) // second no-op: y already exists
	e, err := cat.Entry("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.History()) != 2 {
		t.Errorf("versions = %d, want 2 (original + one materialization)", len(e.History()))
	}
	cur, _ := cat.Get("d")
	n := 0
	for _, c := range cur.Schema {
		if c.Name == "y" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("derived column count = %d", n)
	}
}

// TestMinRowsFilter: candidates below MinRows are dropped.
func TestMinRowsFilter(t *testing.T) {
	small := relation.New("small", relation.NewSchema(relation.Col("a", relation.KindInt)))
	small.MustAppend(relation.Int(1))
	cat := catalog.New()
	if err := cat.Register("small", "s", small); err != nil {
		t.Fatal(err)
	}
	ix := index.Build(index.DefaultConfig(), []*profile.DatasetProfile{profile.Profile("small", small)})
	eng := New(cat, discovery.New(ix))
	if _, err := eng.Build(Want{Columns: []string{"a"}, MinRows: 100}); err == nil {
		t.Error("undersized candidates must be rejected")
	}
	if cands, err := eng.Build(Want{Columns: []string{"a"}}); err != nil || len(cands) == 0 {
		t.Error("without MinRows the candidate passes")
	}
}
