package dod

import (
	"testing"
)

// TestSubJoinMemoHits checks that one Build whose candidates share a join
// prefix actually reuses it: the paper scenario's want {a,b,d} yields both an
// s1-only candidate and an s1⋈s2 candidate, which share the "base:s1" prefix.
func TestSubJoinMemoHits(t *testing.T) {
	_, eng := paperScenario(t)
	inv, r2, err := InferAffine("f_inverse", []float64{32, 50, 212}, []float64{0, 10, 100})
	if err != nil || r2 < 0.999 {
		t.Fatalf("affine inference failed: %v r2=%v", err, r2)
	}
	eng.RegisterTransform("s2", "f_d", "d", inv)

	if got := eng.CacheStats().SubJoinHits; got != 0 {
		t.Fatalf("fresh engine reports %d subjoin hits", got)
	}
	cands, err := eng.Build(Want{Columns: []string{"a", "b", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("expected multiple candidates, got %d", len(cands))
	}
	if got := eng.CacheStats().SubJoinHits; got == 0 {
		t.Fatal("build with shared candidate prefixes recorded no sub-join memo hits")
	}
}

// TestSubJoinMemoDeterministic confirms the memo is an optimization only:
// two fresh engines over the same catalog produce identical candidates.
func TestSubJoinMemoDeterministic(t *testing.T) {
	mk := func() []Candidate {
		_, eng := paperScenario(t)
		inv, _, err := InferAffine("f_inverse", []float64{32, 50, 212}, []float64{0, 10, 100})
		if err != nil {
			t.Fatal(err)
		}
		eng.RegisterTransform("s2", "f_d", "d", inv)
		cands, err := eng.Build(Want{Columns: []string{"a", "b", "d"}})
		if err != nil {
			t.Fatal(err)
		}
		return cands
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Coverage != b[i].Coverage {
			t.Fatalf("candidate %d coverage %v vs %v", i, a[i].Coverage, b[i].Coverage)
		}
		if !a[i].Rel().Equal(b[i].Rel()) {
			t.Fatalf("candidate %d relations diverge:\n%s\nvs\n%s", i, a[i].Rel(), b[i].Rel())
		}
	}
}
