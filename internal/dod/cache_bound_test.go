package dod

import (
	"context"
	"fmt"
	"testing"
)

// distinctWant makes the i-th distinct cache key: single wanted columns with
// unique names. Most fail to build (no owner), but failed builds cache too,
// so each occupies one slot.
func distinctWant(i int) Want {
	return Want{Columns: []string{fmt.Sprintf("col_%02d", i)}}
}

// TestCacheBoundUnderChurn pins CacheConfig.MaxEntries: a churn of distinct
// wants never grows the cache past the bound, and the evictions counter
// accounts for every dropped entry.
func TestCacheBoundUnderChurn(t *testing.T) {
	_, eng := paperScenario(t)
	const max = 4
	eng.SetCacheConfig(CacheConfig{MaxEntries: max})

	const churn = 20
	for i := 0; i < churn; i++ {
		eng.BuildCached(context.Background(), distinctWant(i))
		if got := eng.CacheStats().Entries; got > max {
			t.Fatalf("after build %d: %d entries, bound is %d", i, got, max)
		}
	}
	st := eng.CacheStats()
	if st.Entries != max {
		t.Fatalf("entries = %d, want the bound %d", st.Entries, max)
	}
	if want := uint64(churn - max); st.Evictions != want {
		t.Fatalf("evictions = %d, want %d", st.Evictions, want)
	}

	// Shrinking the bound via SetCacheConfig enforces immediately.
	eng.SetCacheConfig(CacheConfig{MaxEntries: 2})
	st = eng.CacheStats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d after shrinking bound to 2", st.Entries)
	}
	if want := uint64(churn - 2); st.Evictions != want {
		t.Fatalf("evictions = %d after shrink, want %d", st.Evictions, want)
	}

	// Unbounded again: churn grows freely.
	eng.SetCacheConfig(CacheConfig{})
	for i := churn; i < churn+4; i++ {
		eng.BuildCached(context.Background(), distinctWant(i))
	}
	if got := eng.CacheStats().Entries; got != 6 {
		t.Fatalf("entries = %d with bound removed, want 6", got)
	}
}

// TestCacheEvictionPrefersStale pins the eviction order: version-stale
// entries go before fresh ones regardless of recency, so a catalog bump
// followed by new demand cannot evict the entries that are still valid.
func TestCacheEvictionPrefersStale(t *testing.T) {
	_, eng := paperScenario(t)
	eng.SetCacheConfig(CacheConfig{MaxEntries: 3})

	// Two entries at the current version...
	a, b := Want{Columns: []string{"a"}}, Want{Columns: []string{"b"}}
	eng.BuildCached(context.Background(), a)
	eng.BuildCached(context.Background(), b)
	// ...then a catalog mutation strands them at the old version.
	eng.MutateCatalog(func() bool { return true })

	// Two fresh builds push the population to 4 > 3: the eviction must take
	// a stale entry, never the just-built fresh ones.
	c, d := Want{Columns: []string{"c"}}, Want{Columns: []string{"a", "b"}}
	eng.BuildCached(context.Background(), c)
	eng.BuildCached(context.Background(), d)

	st := eng.CacheStats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	base := st.Hits
	eng.BuildCached(context.Background(), c)
	eng.BuildCached(context.Background(), d)
	if got := eng.CacheStats().Hits; got != base+2 {
		t.Fatalf("fresh entries did not survive stale-first eviction: hits %d -> %d", base, got)
	}

	// One more fresh build flushes the second stale entry, leaving
	// {c, d, e} — all fresh.
	eng.BuildCached(context.Background(), Want{Columns: []string{"b", "c"}})
	if got := eng.CacheStats().Evictions; got != 2 {
		t.Fatalf("evictions = %d after flushing stale entries, want 2", got)
	}

	// With no stale entries left, eviction is cost-weighted: the entry
	// cheapest to rebuild goes first, regardless of recency. Pin the
	// recorded build costs directly (white box — wall-clock measurements
	// are not deterministic enough to order on): d is free to rebuild,
	// everything else expensive.
	eng.cacheMu.Lock()
	for key, cs := range eng.cache {
		if key == d.Key() {
			cs.BuildMillis = 0
		} else {
			cs.BuildMillis = 50
		}
	}
	eng.cacheMu.Unlock()
	eng.BuildCached(context.Background(), d) // recency must not save a cheap entry
	eng.BuildCached(context.Background(), Want{Columns: []string{"a", "c"}})
	if got := eng.CacheStats().Entries; got != 3 {
		t.Fatalf("entries = %d after cost-weighted eviction, want 3", got)
	}
	hitBase := eng.CacheStats().Hits
	eng.BuildCached(context.Background(), c) // expensive entry must have survived
	if got := eng.CacheStats().Hits; got != hitBase+1 {
		t.Fatalf("expensive entry did not survive cost-weighted eviction: hits %d -> %d", hitBase, got)
	}
	missBase := eng.CacheStats().Misses
	eng.BuildCached(context.Background(), d) // evicted: rebuild is a miss
	if got := eng.CacheStats().Misses; got != missBase+1 {
		t.Fatalf("expected the cheapest entry to be evicted and rebuild as a miss (misses %d -> %d)", missBase, got)
	}
}
