package catalog

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/relation"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.Register("dept/sales", "alice", rel("sales", 5), "finance", "q3"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update("dept/sales", rel("sales", 8), "grew"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("weather", "bob", rel("weather", 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetQuota("weather", 7); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d datasets", got.Len())
	}
	cur, err := got.Get("dept/sales")
	if err != nil {
		t.Fatal(err)
	}
	if cur.NumRows() != 8 {
		t.Errorf("current version rows = %d, want 8", cur.NumRows())
	}
	old, err := got.GetVersion("dept/sales", 1)
	if err != nil {
		t.Fatal(err)
	}
	if old.NumRows() != 5 {
		t.Errorf("v1 rows = %d, want 5", old.NumRows())
	}
	e, _ := got.Entry("dept/sales")
	if e.Owner != "alice" || len(e.Tags) != 2 {
		t.Errorf("entry = %+v", e)
	}
	if e.History()[1].Comment != "grew" {
		t.Errorf("comment = %q", e.History()[1].Comment)
	}
	we, _ := got.Entry("weather")
	if we.AccessQuota != 7 {
		t.Errorf("quota = %d", we.AccessQuota)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing directory must fail")
	}
}

func TestVersionFileFlattensSeparators(t *testing.T) {
	f := versionFile("a/b\\c..d", 3)
	for _, bad := range []string{"/", "\\", ".."} {
		for i := 0; i+len(bad) <= len(f)-7; i++ { // allow the ".v3.csv" suffix dots
			if f[i:i+len(bad)] == bad {
				t.Fatalf("unsafe filename %q", f)
			}
		}
	}
}

// TestConcurrentAccess exercises the catalog under parallel readers/writers
// (the always-on metadata engine serves both, §5.1).
func TestConcurrentAccess(t *testing.T) {
	c := New()
	if err := c.Register("d", "s", rel("r", 10)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					if _, err := c.Get("d"); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := c.Update("d", rel("r", 10+i), "upd"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	e, _ := c.Entry("d")
	if len(e.History()) != 1+4*50 {
		t.Errorf("history = %d, want 201", len(e.History()))
	}
	_ = relation.Relation{}
}
