// Package catalog implements the dataset catalog the arbiter's metadata
// engine maintains (paper §5.1): registered datasets, their owners, and a
// time-ordered list of context snapshots capturing each dataset's data items
// as they evolve. Sellers register datasets here (bulk or one-off); the index
// builder and DoD engine consume the catalog downstream.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/relation"
)

// DatasetID identifies a registered dataset.
type DatasetID string

// Snapshot captures a dataset version at a logical time: the relation
// contents plus lightweight context (paper §5.1 "context snapshot").
type Snapshot struct {
	Version  int
	Rel      *relation.Relation
	RowCount int
	Comment  string
}

// Entry is a catalog record for one dataset.
type Entry struct {
	ID          DatasetID
	Owner       string // seller identifier
	Name        string
	Tags        []string
	AccessQuota int // max reads per sync window; 0 = unlimited (paper §4.2)
	reads       int
	snapshots   []Snapshot
}

// Current returns the latest snapshot, or nil when none exists.
func (e *Entry) Current() *Snapshot {
	if len(e.snapshots) == 0 {
		return nil
	}
	return &e.snapshots[len(e.snapshots)-1]
}

// History returns all snapshots oldest-first.
func (e *Entry) History() []Snapshot { return e.snapshots }

// Catalog is a concurrency-safe registry of datasets.
type Catalog struct {
	mu      sync.RWMutex
	entries map[DatasetID]*Entry
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{entries: make(map[DatasetID]*Entry)}
}

// Register adds a dataset under the given owner. The relation name becomes
// the dataset name; the ID must be unique.
func (c *Catalog) Register(id DatasetID, owner string, rel *relation.Relation, tags ...string) error {
	if err := rel.Validate(); err != nil {
		return fmt.Errorf("catalog: register %s: %w", id, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[id]; ok {
		return fmt.Errorf("catalog: dataset %s already registered", id)
	}
	e := &Entry{ID: id, Owner: owner, Name: rel.Name, Tags: tags}
	e.snapshots = append(e.snapshots, Snapshot{Version: 1, Rel: rel.Clone(), RowCount: rel.NumRows(), Comment: "initial"})
	c.entries[id] = e
	return nil
}

// Update appends a new snapshot for an existing dataset. The metadata engine
// is "fully-incremental, always-on" (paper §5.1); Update is the hook source
// systems call when data changes.
func (c *Catalog) Update(id DatasetID, rel *relation.Relation, comment string) (int, error) {
	if err := rel.Validate(); err != nil {
		return 0, fmt.Errorf("catalog: update %s: %w", id, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return 0, fmt.Errorf("catalog: dataset %s not registered", id)
	}
	v := len(e.snapshots) + 1
	e.snapshots = append(e.snapshots, Snapshot{Version: v, Rel: rel.Clone(), RowCount: rel.NumRows(), Comment: comment})
	return v, nil
}

// Get returns the current relation for a dataset, honouring the entry's
// access quota: once reads exceed the quota, Get fails until ResetQuotas.
func (c *Catalog) Get(id DatasetID) (*relation.Relation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return nil, fmt.Errorf("catalog: dataset %s not registered", id)
	}
	if e.AccessQuota > 0 && e.reads >= e.AccessQuota {
		return nil, fmt.Errorf("catalog: dataset %s access quota %d exhausted", id, e.AccessQuota)
	}
	e.reads++
	s := e.Current()
	if s == nil {
		return nil, fmt.Errorf("catalog: dataset %s has no snapshots", id)
	}
	return s.Rel, nil
}

// GetVersion returns a specific historical snapshot.
func (c *Catalog) GetVersion(id DatasetID, version int) (*relation.Relation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[id]
	if !ok {
		return nil, fmt.Errorf("catalog: dataset %s not registered", id)
	}
	for i := range e.snapshots {
		if e.snapshots[i].Version == version {
			return e.snapshots[i].Rel, nil
		}
	}
	return nil, fmt.Errorf("catalog: dataset %s has no version %d", id, version)
}

// Entry returns the catalog record for id.
func (c *Catalog) Entry(id DatasetID) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[id]
	if !ok {
		return nil, fmt.Errorf("catalog: dataset %s not registered", id)
	}
	return e, nil
}

// SetQuota sets the per-window access quota for a dataset (paper §4.2,
// "subject to an optional access quota established by the origin system").
func (c *Catalog) SetQuota(id DatasetID, quota int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return fmt.Errorf("catalog: dataset %s not registered", id)
	}
	e.AccessQuota = quota
	return nil
}

// ResetQuotas zeroes the read counters (start of a new sync window).
func (c *Catalog) ResetQuotas() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		e.reads = 0
	}
}

// IDs returns all dataset IDs, sorted.
func (c *Catalog) IDs() []DatasetID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]DatasetID, 0, len(c.entries))
	for id := range c.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ByOwner returns the dataset IDs owned by a seller, sorted.
func (c *Catalog) ByOwner(owner string) []DatasetID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []DatasetID
	for id, e := range c.entries {
		if e.Owner == owner {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of registered datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Owner returns the owner of a dataset ("" when unknown).
func (c *Catalog) Owner(id DatasetID) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.entries[id]; ok {
		return e.Owner
	}
	return ""
}
