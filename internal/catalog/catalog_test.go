package catalog

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func rel(name string, n int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(relation.Col("k", relation.KindInt)))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Int(int64(i)))
	}
	return r
}

func TestRegisterGet(t *testing.T) {
	c := New()
	if err := c.Register("d1", "seller1", rel("orders", 3), "sales"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("d1")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("rows = %d", got.NumRows())
	}
	if c.Owner("d1") != "seller1" {
		t.Errorf("owner = %q", c.Owner("d1"))
	}
	if err := c.Register("d1", "x", rel("dup", 1)); err == nil {
		t.Error("duplicate ID must fail")
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("unknown ID must fail")
	}
}

func TestRegisterValidates(t *testing.T) {
	c := New()
	bad := &relation.Relation{Name: "b", Schema: relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("a", relation.KindInt))}
	if err := c.Register("d", "s", bad); err == nil {
		t.Error("invalid relation must be rejected")
	}
}

func TestVersioning(t *testing.T) {
	c := New()
	if err := c.Register("d1", "s", rel("r", 2)); err != nil {
		t.Fatal(err)
	}
	v, err := c.Update("d1", rel("r", 5), "grew")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("version = %d, want 2", v)
	}
	cur, _ := c.Get("d1")
	if cur.NumRows() != 5 {
		t.Errorf("current rows = %d", cur.NumRows())
	}
	old, err := c.GetVersion("d1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if old.NumRows() != 2 {
		t.Errorf("v1 rows = %d", old.NumRows())
	}
	if _, err := c.GetVersion("d1", 99); err == nil {
		t.Error("missing version must fail")
	}
	e, _ := c.Entry("d1")
	if len(e.History()) != 2 {
		t.Errorf("history len = %d", len(e.History()))
	}
	if _, err := c.Update("ghost", rel("r", 1), ""); err == nil {
		t.Error("update of unregistered dataset must fail")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	c := New()
	src := rel("r", 2)
	if err := c.Register("d1", "s", src); err != nil {
		t.Fatal(err)
	}
	src.MustAppend(relation.Int(99)) // mutate after registration
	got, _ := c.Get("d1")
	if got.NumRows() != 2 {
		t.Error("catalog must snapshot (clone) relations on register")
	}
}

func TestAccessQuota(t *testing.T) {
	c := New()
	if err := c.Register("d1", "s", rel("r", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetQuota("d1", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Get("d1"); err != nil {
			t.Fatalf("read %d failed: %v", i, err)
		}
	}
	if _, err := c.Get("d1"); err == nil || !strings.Contains(err.Error(), "quota") {
		t.Errorf("third read should exhaust quota, got %v", err)
	}
	c.ResetQuotas()
	if _, err := c.Get("d1"); err != nil {
		t.Errorf("after reset: %v", err)
	}
}

func TestListing(t *testing.T) {
	c := New()
	_ = c.Register("b", "s2", rel("r", 1))
	_ = c.Register("a", "s1", rel("r", 1))
	_ = c.Register("c", "s1", rel("r", 1))
	ids := c.IDs()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Errorf("IDs = %v", ids)
	}
	own := c.ByOwner("s1")
	if len(own) != 2 || own[0] != "a" {
		t.Errorf("ByOwner = %v", own)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}
