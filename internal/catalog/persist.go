package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/relation"
)

// manifestEntry records one dataset's metadata in the on-disk manifest.
type manifestEntry struct {
	ID          string   `json:"id"`
	Owner       string   `json:"owner"`
	Name        string   `json:"name"`
	Tags        []string `json:"tags,omitempty"`
	AccessQuota int      `json:"access_quota,omitempty"`
	Versions    int      `json:"versions"`
	Comments    []string `json:"comments"`
}

// SaveDir persists the catalog to a directory: a manifest.json plus one CSV
// per dataset version (the current snapshot format the Fig. 2 sink writes).
// The directory is created if missing; existing contents are overwritten.
func (c *Catalog) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("catalog: save: %w", err)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var manifest []manifestEntry
	for _, id := range c.idsLocked() {
		e := c.entries[id]
		me := manifestEntry{
			ID: string(id), Owner: e.Owner, Name: e.Name, Tags: e.Tags,
			AccessQuota: e.AccessQuota, Versions: len(e.snapshots),
		}
		for _, s := range e.snapshots {
			me.Comments = append(me.Comments, s.Comment)
			path := filepath.Join(dir, versionFile(string(id), s.Version))
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("catalog: save %s: %w", id, err)
			}
			err = s.Rel.WriteCSV(f)
			cerr := f.Close()
			if err != nil {
				return fmt.Errorf("catalog: save %s v%d: %w", id, s.Version, err)
			}
			if cerr != nil {
				return cerr
			}
		}
		manifest = append(manifest, me)
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

func (c *Catalog) idsLocked() []DatasetID {
	out := make([]DatasetID, 0, len(c.entries))
	for id := range c.entries {
		out = append(out, id)
	}
	// Deterministic order for reproducible manifests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// versionFile encodes a dataset version's CSV filename; path separators in
// IDs are flattened.
func versionFile(id string, version int) string {
	safe := strings.NewReplacer("/", "__", "\\", "__", "..", "_").Replace(id)
	return fmt.Sprintf("%s.v%d.csv", safe, version)
}

// LoadDir restores a catalog saved by SaveDir, including version history and
// quotas (read counters reset).
func LoadDir(dir string) (*Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("catalog: load: %w", err)
	}
	var manifest []manifestEntry
	if err := json.Unmarshal(data, &manifest); err != nil {
		return nil, fmt.Errorf("catalog: load manifest: %w", err)
	}
	c := New()
	for _, me := range manifest {
		id := DatasetID(me.ID)
		for v := 1; v <= me.Versions; v++ {
			f, err := os.Open(filepath.Join(dir, versionFile(me.ID, v)))
			if err != nil {
				return nil, fmt.Errorf("catalog: load %s v%d: %w", me.ID, v, err)
			}
			rel, err := relation.ReadCSV(me.Name, f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("catalog: load %s v%d: %w", me.ID, v, err)
			}
			comment := ""
			if v-1 < len(me.Comments) {
				comment = me.Comments[v-1]
			}
			if v == 1 {
				if err := c.Register(id, me.Owner, rel, me.Tags...); err != nil {
					return nil, err
				}
			} else if _, err := c.Update(id, rel, comment); err != nil {
				return nil, err
			}
		}
		if me.AccessQuota > 0 {
			if err := c.SetQuota(id, me.AccessQuota); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}
