// Package seller implements the Seller Management Platform (paper §4.2):
// data packaging (bulk ingest of many relations), an anonymization pipeline
// composed from internal/privacy mechanisms, and accountability views that
// let a seller "track how their datasets are being sold in the market, e.g.,
// as part of what mashups" and which rows earned what.
package seller

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/arbiter"
	"repro/internal/catalog"
	"repro/internal/license"
	"repro/internal/privacy"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// Platform is one seller's view onto the market.
type Platform struct {
	Name    string
	Arbiter *arbiter.Arbiter
	Budget  *privacy.Budget
	rng     *rand.Rand
}

// New creates a seller platform. The epsilon cap bounds total privacy loss
// per dataset across releases.
func New(name string, a *arbiter.Arbiter, epsilonCap float64, seed int64) *Platform {
	return &Platform{
		Name:    name,
		Arbiter: a,
		Budget:  privacy.NewBudget(epsilonCap),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// AnonymizeStep is one stage of the release pipeline.
type AnonymizeStep func(r *relation.Relation) (*relation.Relation, error)

// DropPII removes outright identifiers.
func (p *Platform) DropPII(cols ...string) AnonymizeStep {
	return func(r *relation.Relation) (*relation.Relation, error) {
		return privacy.DropColumns(r, cols...)
	}
}

// Pseudonymize replaces an identifier column with opaque stable tokens; the
// mapping table stays on the seller side, available to negotiation rounds.
func (p *Platform) Pseudonymize(col string, keep *map[string]string) AnonymizeStep {
	return func(r *relation.Relation) (*relation.Relation, error) {
		out, mapping, err := privacy.Pseudonymize(r, col, p.Name+"-")
		if err != nil {
			return nil, err
		}
		if keep != nil {
			*keep = mapping
		}
		return out, nil
	}
}

// Laplace adds eps-DP noise to a numeric column, charging the budget.
func (p *Platform) Laplace(dataset, col string, eps, sensitivity float64) AnonymizeStep {
	return func(r *relation.Relation) (*relation.Relation, error) {
		if err := p.Budget.Spend(dataset, eps); err != nil {
			return nil, err
		}
		return privacy.LaplaceColumn(r, col, eps, sensitivity, p.rng)
	}
}

// KAnonymize generalizes a numeric quasi-identifier and suppresses rare
// combinations.
func (p *Platform) KAnonymize(numericQI string, width float64, quasi []string, k int) AnonymizeStep {
	return func(r *relation.Relation) (*relation.Relation, error) {
		g, err := privacy.GeneralizeNumeric(r, numericQI, width)
		if err != nil {
			return nil, err
		}
		return privacy.SuppressRare(g, quasi, k)
	}
}

// Share runs the anonymization pipeline and registers the result with the
// arbiter under the given license terms.
func (p *Platform) Share(id catalog.DatasetID, r *relation.Relation, terms license.Terms, steps ...AnonymizeStep) error {
	out := r
	var err error
	for _, step := range steps {
		out, err = step(out)
		if err != nil {
			return fmt.Errorf("seller %s: anonymize %s: %w", p.Name, id, err)
		}
	}
	meta := wtp.DatasetMeta{Dataset: string(id), UpdatedAt: time.Now(), Author: p.Name, HasProvenance: true}
	return p.Arbiter.ShareDataset(p.Name, id, out, meta, terms)
}

// ShareBulk registers many relations at once — "share datasets in bulk by
// pointing to a data lake" (paper §4.2). IDs derive from relation names.
func (p *Platform) ShareBulk(rels []*relation.Relation, terms license.Terms) ([]catalog.DatasetID, error) {
	var ids []catalog.DatasetID
	for _, r := range rels {
		id := catalog.DatasetID(p.Name + "/" + r.Name)
		if err := p.Share(id, r, terms); err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Earnings reports the seller's current market balance.
func (p *Platform) Earnings() float64 {
	return p.Arbiter.Ledger.Balance(p.Name).Float()
}

// SaleRecord is one accountability entry: a mashup that included the
// seller's data and what it earned them.
type SaleRecord struct {
	TxID    string
	Mashup  string
	Buyer   string
	Price   float64
	MyCut   float64
	MyData  []string // which of my datasets contributed
	AllData []string
}

// Accountability returns the seller's sale records from the arbiter's
// transaction history (paper §4.2 Accountability; §4.4 Transparency).
func (p *Platform) Accountability() []SaleRecord {
	var out []SaleRecord
	for _, tx := range p.Arbiter.History() {
		cut, ok := tx.SellerCuts[p.Name]
		var mine []string
		for _, ds := range tx.Datasets {
			if p.Arbiter.Catalog.Owner(catalog.DatasetID(ds)) == p.Name {
				mine = append(mine, ds)
			}
		}
		if !ok && len(mine) == 0 {
			continue
		}
		out = append(out, SaleRecord{
			TxID:    tx.ID,
			Mashup:  tx.Mashup.Name,
			Buyer:   tx.Buyer,
			Price:   tx.Price,
			MyCut:   cut,
			MyData:  mine,
			AllData: tx.Datasets,
		})
	}
	return out
}

// RespondWithMapping builds a SellerResponder that reveals the given mapping
// tables (keyed by "dataset.column->target") during negotiation rounds.
func RespondWithMapping(tables map[string]*relation.Relation) arbiter.SellerResponder {
	return func(req arbiter.InfoRequest) *relation.Relation {
		key := fmt.Sprintf("%s.%s->%s", req.Dataset, req.Column, req.Target)
		return tables[key]
	}
}
