package seller

import (
	"testing"
	"time"

	"repro/internal/arbiter"
	"repro/internal/dod"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/relation"
	"repro/internal/wtp"
)

func mkArbiter(t *testing.T) *arbiter.Arbiter {
	t.Helper()
	a, err := arbiter.New(&market.Design{
		Label: "t", Mechanism: market.PostedPrice{P: 40},
		Allocator: market.Uniform{}, ArbiterFee: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mkHR(n int) *relation.Relation {
	r := relation.New("hr", relation.NewSchema(
		relation.Col("emp", relation.KindString),
		relation.Col("age", relation.KindFloat),
		relation.Col("dept", relation.KindString),
		relation.Col("salary", relation.KindFloat),
	))
	depts := []string{"eng", "sales"}
	for i := 0; i < n; i++ {
		r.MustAppend(
			relation.String_("employee"+string(rune('a'+i%20))),
			relation.Float(float64(25+i%30)),
			relation.String_(depts[i%2]),
			relation.Float(float64(50000+i*100)),
		)
	}
	return r
}

func TestShareWithAnonymization(t *testing.T) {
	a := mkArbiter(t)
	if err := a.RegisterParticipant("hrseller", 0); err != nil {
		t.Fatal(err)
	}
	p := New("hrseller", a, 2.0, 1)
	var mapping map[string]string
	err := p.Share("hr", mkHR(200), license.Terms{Kind: license.Open},
		p.Pseudonymize("emp", &mapping),
		p.Laplace("hr", "salary", 1.0, 100),
		p.KAnonymize("age", 10, []string{"age", "dept"}, 5),
	)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := a.Catalog.Get("hr")
	if err != nil {
		t.Fatal(err)
	}
	// Pseudonymized: no raw employee names.
	ev, _ := rel.Column("emp")
	for _, v := range ev[:3] {
		if v.AsString() == "employeea" {
			t.Error("raw identifier leaked")
		}
	}
	if len(mapping) == 0 {
		t.Error("mapping must be retained seller-side")
	}
	// Budget charged.
	if p.Budget.Spent("hr") != 1.0 {
		t.Errorf("budget spent = %v", p.Budget.Spent("hr"))
	}
	// Budget exhaustion blocks further noisy releases.
	err = p.Share("hr2", mkHR(50), license.Terms{Kind: license.Open},
		p.Laplace("hr", "salary", 1.5, 100))
	if err == nil {
		t.Error("exceeding epsilon cap must fail the share")
	}
}

func TestShareBulk(t *testing.T) {
	a := mkArbiter(t)
	if err := a.RegisterParticipant("s", 0); err != nil {
		t.Fatal(err)
	}
	p := New("s", a, 1, 2)
	r1 := mkHR(10)
	r1.Name = "t1"
	r2 := mkHR(10)
	r2.Name = "t2"
	ids, err := p.ShareBulk([]*relation.Relation{r1, r2}, license.Terms{Kind: license.Open})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "s/t1" {
		t.Errorf("ids = %v", ids)
	}
	if a.Catalog.Len() != 2 {
		t.Errorf("catalog = %d", a.Catalog.Len())
	}
}

func TestAccountabilityAndEarnings(t *testing.T) {
	a := mkArbiter(t)
	for _, name := range []string{"s", "buyer"} {
		if err := a.RegisterParticipant(name, 1000); err != nil {
			t.Fatal(err)
		}
	}
	p := New("s", a, 1, 3)
	if err := p.Share("data", mkHR(100), license.Terms{Kind: license.Open}); err != nil {
		t.Fatal(err)
	}
	f := &wtp.Function{
		Buyer: "buyer",
		Task:  wtp.CoverageTask{Columns: []string{"emp", "salary"}, WantRows: 50},
		Curve: wtp.PriceCurve{{MinSatisfaction: 0.9, Price: 60}},
	}
	if _, err := a.SubmitRequest(dod.Want{Columns: []string{"emp", "salary"}}, f); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MatchRound(); err != nil {
		t.Fatal(err)
	}
	if p.Earnings() <= 1000 {
		t.Errorf("earnings = %v, want > initial 1000", p.Earnings())
	}
	recs := p.Accountability()
	if len(recs) != 1 {
		t.Fatalf("accountability records = %d", len(recs))
	}
	if recs[0].MyCut <= 0 || len(recs[0].MyData) != 1 {
		t.Errorf("record = %+v", recs[0])
	}
}

func TestRespondWithMapping(t *testing.T) {
	table := relation.New("m", relation.NewSchema(
		relation.Col("x", relation.KindString), relation.Col("y", relation.KindString)))
	resp := RespondWithMapping(map[string]*relation.Relation{"ds.x->y": table})
	if got := resp(arbiter.InfoRequest{Dataset: "ds", Column: "x", Target: "y"}); got != table {
		t.Error("matching request must return the table")
	}
	if got := resp(arbiter.InfoRequest{Dataset: "ds", Column: "z", Target: "y"}); got != nil {
		t.Error("non-matching request must decline")
	}
}

func TestDropPIIStep(t *testing.T) {
	a := mkArbiter(t)
	if err := a.RegisterParticipant("s", 0); err != nil {
		t.Fatal(err)
	}
	p := New("s", a, 1, 4)
	if err := p.Share("d", mkHR(20), license.Terms{Kind: license.Open}, p.DropPII("emp")); err != nil {
		t.Fatal(err)
	}
	rel, _ := a.Catalog.Get("d")
	if rel.Schema.Has("emp") {
		t.Error("emp must be dropped")
	}
	_ = time.Now
}
