// Package license implements data licensing (paper §4.4): sellers attach
// licenses to datasets conferring different rights — open resale, no-resale,
// exclusive access (with an exclusivity tax), or full ownership transfer —
// and the arbiter enforces them at transaction time. Licensing is also what
// makes the arbitrageur economy of §7.1 possible: a resale-allowed license
// lets a buyer transform a dataset and sell it back to the market.
package license

import (
	"fmt"
	"sync"
)

// Kind enumerates license types.
type Kind string

// License kinds.
const (
	// Open permits use and resale of derivatives.
	Open Kind = "open"
	// NoResale permits use but forbids reselling the data or derivatives.
	NoResale Kind = "no-resale"
	// Exclusive grants a single buyer sole access; the artificial scarcity
	// costs an ongoing exclusivity tax (paper: buyers "could be forced to
	// pay a 'tax' so long they maintain the exclusivity access").
	Exclusive Kind = "exclusive"
	// Transfer moves ownership entirely to the buyer.
	Transfer Kind = "transfer"
)

// Terms are the license terms attached to a dataset.
type Terms struct {
	Kind Kind
	// ExclusivityTaxRate is the per-period tax as a fraction of sale price
	// (Exclusive only).
	ExclusivityTaxRate float64
}

// Validate checks coherence.
func (t Terms) Validate() error {
	switch t.Kind {
	case Open, NoResale, Transfer:
		if t.ExclusivityTaxRate != 0 {
			return fmt.Errorf("license: %s terms cannot carry an exclusivity tax", t.Kind)
		}
	case Exclusive:
		if t.ExclusivityTaxRate < 0 {
			return fmt.Errorf("license: negative exclusivity tax")
		}
	default:
		return fmt.Errorf("license: unknown kind %q", t.Kind)
	}
	return nil
}

// Supply returns the mechanism supply implied by the license: exclusive and
// transfer licenses sell one copy; open and no-resale data is freely
// replicable (unlimited supply, the paper's §3.2.1 headache).
func (t Terms) Supply() int {
	if t.Kind == Exclusive || t.Kind == Transfer {
		return 1
	}
	return -1 // market.SupplyUnlimited
}

// Grant records a license issued to a beneficiary for a dataset.
type Grant struct {
	Dataset     string
	Beneficiary string
	Terms       Terms
	SalePrice   float64
	Active      bool
}

// TaxDue returns the exclusivity tax owed for one period.
func (g *Grant) TaxDue() float64 {
	if !g.Active || g.Terms.Kind != Exclusive {
		return 0
	}
	return g.SalePrice * g.Terms.ExclusivityTaxRate
}

// CanResell reports whether the beneficiary may resell data derived from the
// dataset.
func (g *Grant) CanResell() bool {
	return g.Terms.Kind == Open || g.Terms.Kind == Transfer
}

// Manager tracks dataset terms and issued grants, enforcing exclusivity.
type Manager struct {
	mu     sync.Mutex
	terms  map[string]Terms
	grants []*Grant
}

// NewManager creates an empty manager.
func NewManager() *Manager {
	return &Manager{terms: map[string]Terms{}}
}

// SetTerms attaches license terms to a dataset.
func (m *Manager) SetTerms(dataset string, t Terms) error {
	if err := t.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.terms[dataset] = t
	return nil
}

// TermsFor returns the terms for a dataset (Open by default).
func (m *Manager) TermsFor(dataset string) Terms {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.terms[dataset]; ok {
		return t
	}
	return Terms{Kind: Open}
}

// Issue grants a license for a sale, enforcing exclusivity: an exclusive or
// transfer dataset with an active grant cannot be granted again.
func (m *Manager) Issue(dataset, beneficiary string, price float64) (*Grant, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.terms[dataset]
	if !ok {
		t = Terms{Kind: Open}
	}
	if t.Supply() == 1 {
		for _, g := range m.grants {
			if g.Dataset == dataset && g.Active {
				return nil, fmt.Errorf("license: dataset %q exclusively granted to %q", dataset, g.Beneficiary)
			}
		}
	}
	g := &Grant{Dataset: dataset, Beneficiary: beneficiary, Terms: t, SalePrice: price, Active: true}
	m.grants = append(m.grants, g)
	return g, nil
}

// Revoke deactivates a grant (e.g. the beneficiary stopped paying the
// exclusivity tax), reopening exclusive supply.
func (m *Manager) Revoke(g *Grant) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g.Active = false
}

// GrantsFor lists active grants over a dataset.
func (m *Manager) GrantsFor(dataset string) []*Grant {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Grant
	for _, g := range m.grants {
		if g.Dataset == dataset && g.Active {
			out = append(out, g)
		}
	}
	return out
}

// MayResell reports whether a participant may resell derivatives of the
// dataset, i.e. whether they hold a resale-permitting grant (or are the
// owner).
func (m *Manager) MayResell(dataset, participant string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.grants {
		if g.Dataset == dataset && g.Beneficiary == participant && g.Active {
			return g.CanResell()
		}
	}
	return false
}

// PeriodTaxes returns the exclusivity taxes due this period per beneficiary.
func (m *Manager) PeriodTaxes() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]float64{}
	for _, g := range m.grants {
		if tax := g.TaxDue(); tax > 0 {
			out[g.Beneficiary] += tax
		}
	}
	return out
}
