package license

import "testing"

func TestTermsValidate(t *testing.T) {
	ok := []Terms{
		{Kind: Open},
		{Kind: NoResale},
		{Kind: Transfer},
		{Kind: Exclusive, ExclusivityTaxRate: 0.1},
		{Kind: Exclusive},
	}
	for _, terms := range ok {
		if err := terms.Validate(); err != nil {
			t.Errorf("valid terms %+v rejected: %v", terms, err)
		}
	}
	bad := []Terms{
		{Kind: Open, ExclusivityTaxRate: 0.1},
		{Kind: Exclusive, ExclusivityTaxRate: -1},
		{Kind: "bogus"},
	}
	for _, terms := range bad {
		if err := terms.Validate(); err == nil {
			t.Errorf("invalid terms %+v accepted", terms)
		}
	}
}

func TestSupply(t *testing.T) {
	if (Terms{Kind: Open}).Supply() != -1 || (Terms{Kind: NoResale}).Supply() != -1 {
		t.Error("replicable licenses have unlimited supply")
	}
	if (Terms{Kind: Exclusive}).Supply() != 1 || (Terms{Kind: Transfer}).Supply() != 1 {
		t.Error("exclusive/transfer supply must be 1")
	}
}

func TestExclusivityEnforced(t *testing.T) {
	m := NewManager()
	if err := m.SetTerms("d1", Terms{Kind: Exclusive, ExclusivityTaxRate: 0.05}); err != nil {
		t.Fatal(err)
	}
	g1, err := m.Issue("d1", "alice", 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Issue("d1", "bob", 100); err == nil {
		t.Error("second exclusive grant must fail")
	}
	// Tax accrues per period.
	if g1.TaxDue() != 10 {
		t.Errorf("tax = %v", g1.TaxDue())
	}
	taxes := m.PeriodTaxes()
	if taxes["alice"] != 10 {
		t.Errorf("period taxes = %v", taxes)
	}
	// Revocation reopens supply.
	m.Revoke(g1)
	if _, err := m.Issue("d1", "bob", 100); err != nil {
		t.Errorf("after revoke: %v", err)
	}
	if g1.TaxDue() != 0 {
		t.Error("revoked grant owes no tax")
	}
}

func TestResaleRights(t *testing.T) {
	m := NewManager()
	_ = m.SetTerms("open", Terms{Kind: Open})
	_ = m.SetTerms("locked", Terms{Kind: NoResale})
	if _, err := m.Issue("open", "arb", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Issue("locked", "arb", 10); err != nil {
		t.Fatal(err)
	}
	if !m.MayResell("open", "arb") {
		t.Error("open license permits resale")
	}
	if m.MayResell("locked", "arb") {
		t.Error("no-resale license forbids resale")
	}
	if m.MayResell("open", "stranger") {
		t.Error("non-beneficiary cannot resell")
	}
}

func TestDefaultTermsOpen(t *testing.T) {
	m := NewManager()
	if m.TermsFor("unknown").Kind != Open {
		t.Error("default terms must be open")
	}
	// Issuing against unknown dataset uses open terms, unlimited supply.
	if _, err := m.Issue("unknown", "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Issue("unknown", "b", 1); err != nil {
		t.Fatal(err)
	}
	if got := len(m.GrantsFor("unknown")); got != 2 {
		t.Errorf("grants = %d", got)
	}
}
