package wal

import (
	"encoding/json"
	"testing"

	"repro/internal/engine"
)

// FuzzWALDecode throws arbitrary bytes at the record decoder. Invariants:
// never panic, never read past the input, decode a contiguous seq run, and
// the accepted prefix must re-decode to the same events (decoding is
// deterministic and prefix-stable). CI runs this with a short -fuzztime
// budget; the checked-in seeds cover the known corruption shapes.
func FuzzWALDecode(f *testing.F) {
	// Seeds: a clean stream, each corpus corruption shape, and raw JSON.
	var clean []byte
	for _, ev := range testEvents(3) {
		rec, err := encodeEvent(ev)
		if err != nil {
			f.Fatal(err)
		}
		clean = append(clean, rec...)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-5])                               // torn payload
	f.Add(clean[:3])                                          // truncated length prefix
	f.Add([]byte{})                                           // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})         // oversized length
	f.Add([]byte(`{"seq":1,"kind":"epoch-start","epoch":1}`)) // unframed JSON
	flipped := append([]byte{}, clean...)
	flipped[5] ^= 0xff // CRC byte
	f.Add(flipped)
	// A value-reported settlement record — the ex-post report shape with
	// its fan-out maps and audit fields.
	vr, err := encodeEvent(engine.Event{Seq: 1, Epoch: 3, Kind: engine.EventValueReported,
		Ticket: "sub-000007", Participant: "b1", RequestID: "req-0003", TxID: "tx-0004",
		Price: 480, ArbiterCut: 48, SellerCuts: map[string]float64{"s1": 288, "s2": 144},
		Reported: 480, Audited: true, ExPost: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(vr)
	f.Add(vr[:len(vr)-7]) // torn mid-payload value-reported record

	f.Fuzz(func(t *testing.T, raw []byte) {
		evs, valid := DecodeAll(raw, 0)
		if valid < 0 || valid > len(raw) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(raw))
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq != evs[i-1].Seq+1 {
				t.Fatalf("accepted events not contiguous: %d then %d", evs[i-1].Seq, evs[i].Seq)
			}
		}
		evs2, valid2 := DecodeAll(raw[:valid], 0)
		if len(evs2) != len(evs) || valid2 != valid {
			t.Fatalf("prefix not stable: %d/%d then %d/%d", len(evs), valid, len(evs2), valid2)
		}
		// Re-encoding the accepted events must produce a decodable stream.
		var re []byte
		for _, ev := range evs {
			rec, err := encodeEvent(ev)
			if err != nil {
				// Only possible for events whose JSON exceeds the record
				// cap; the input was at most the cap, so re-encoding can
				// exceed it only via JSON escaping growth. Skip those.
				return
			}
			re = append(re, rec...)
		}
		evs3, _ := DecodeAll(re, 0)
		if len(evs3) != len(evs) {
			t.Fatalf("re-encoded stream lost events: %d vs %d", len(evs3), len(evs))
		}
		for i := range evs {
			a, _ := json.Marshal(evs[i])
			b, _ := json.Marshal(evs3[i])
			if string(a) != string(b) {
				t.Fatalf("event %d changed across re-encode:\n%s\n%s", i, a, b)
			}
		}
	})
}
