package wal

import (
	"encoding/binary"
	"encoding/json"
	"testing"

	"repro/internal/engine"
)

// encodeN frames n sequential events into one byte stream.
func encodeN(t *testing.T, n int) []byte {
	t.Helper()
	var buf []byte
	for _, ev := range testEvents(n) {
		rec, err := encodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, rec...)
	}
	return buf
}

// TestDecodeAllCorpus is the corruption corpus the issue asks for: torn
// writes, bit-flipped CRCs, truncated length prefixes, empty and oversized
// records. Every case must decode without panicking and recover exactly the
// longest valid prefix.
func TestDecodeAllCorpus(t *testing.T) {
	valid := encodeN(t, 4)
	firstRec := func() []byte { // re-encode to get one record's framing
		rec, _ := encodeEvent(testEvents(1)[0])
		return rec
	}()

	cases := []struct {
		name    string
		raw     []byte
		wantEvs int
		wantOfs int // -1 = don't check exact offset
	}{
		{"empty input", nil, 0, 0},
		{"clean stream", valid, 4, len(valid)},
		{"torn header", append(append([]byte{}, valid...), 0x10, 0x00, 0x00), 4, len(valid)},
		{"torn payload", append(append([]byte{}, valid...), firstRec[:len(firstRec)-3]...), 4, len(valid)},
		{"garbage stream", []byte("not a wal at all, definitely json-free"), 0, 0},
		{"truncated length prefix", valid[:2], 0, 0},
		{"empty record stream", func() []byte {
			// A zero-length payload: valid frame, but invalid JSON ("").
			var hdr [headerSize]byte
			binary.LittleEndian.PutUint32(hdr[4:8], 0x00000000)
			return appendRecord(nil, nil)[:headerSize]
		}(), 0, 0},
		{"oversized length prefix", func() []byte {
			var hdr [headerSize]byte
			binary.LittleEndian.PutUint32(hdr[0:4], maxRecordSize+1)
			return append(hdr[:], valid...)
		}(), 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evs, valid := DecodeAll(tc.raw, 0)
			if len(evs) != tc.wantEvs {
				t.Fatalf("decoded %d events, want %d", len(evs), tc.wantEvs)
			}
			if tc.wantOfs >= 0 && valid != tc.wantOfs {
				t.Fatalf("valid prefix %d bytes, want %d", valid, tc.wantOfs)
			}
			if valid > len(tc.raw) {
				t.Fatalf("valid prefix %d exceeds input %d", valid, len(tc.raw))
			}
		})
	}
}

// TestDecodeAllBitFlips flips every byte of a two-record stream, one at a
// time, and asserts decoding never panics, never over-reads, and never
// accepts a record whose checksum no longer matches its payload.
func TestDecodeAllBitFlips(t *testing.T) {
	clean := encodeN(t, 2)
	var cleanEvs []engine.Event
	cleanEvs, _ = DecodeAll(clean, 0)
	if len(cleanEvs) != 2 {
		t.Fatalf("sanity: clean stream decodes %d events", len(cleanEvs))
	}
	for i := range clean {
		raw := append([]byte{}, clean...)
		raw[i] ^= 0x41
		evs, valid := DecodeAll(raw, 0)
		if valid > len(raw) {
			t.Fatalf("flip at %d: valid prefix %d exceeds input", i, valid)
		}
		if len(evs) > 2 {
			t.Fatalf("flip at %d: decoded %d events from a 2-record stream", i, len(evs))
		}
		// A flip inside record k must not lose records before k.
		rec0End := len(clean) / 2
		if i >= rec0End && len(evs) < 1 {
			t.Fatalf("flip at %d (second record) lost the first record", i)
		}
		// Re-decode of the accepted prefix must be stable.
		evs2, valid2 := DecodeAll(raw[:valid], 0)
		if len(evs2) != len(evs) || valid2 != valid {
			t.Fatalf("flip at %d: prefix re-decode unstable (%d/%d vs %d/%d)",
				i, len(evs2), valid2, len(evs), valid)
		}
	}
}

// TestDecodeAllSeqGap: a decoded record whose seq breaks contiguity ends the
// valid prefix (the log invariant is "no gaps").
func TestDecodeAllSeqGap(t *testing.T) {
	evs := testEvents(3)
	evs[2].Seq = 7 // gap
	var buf []byte
	for _, ev := range evs {
		rec, err := encodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, rec...)
	}
	got, _ := DecodeAll(buf, 1)
	if len(got) != 2 {
		t.Fatalf("want 2 events before the gap, got %d", len(got))
	}
}

// TestEncodeOversizedEvent: an event whose JSON exceeds the record limit is
// rejected at encode time, not written as garbage.
func TestEncodeOversizedEvent(t *testing.T) {
	huge := make([]byte, maxRecordSize+1)
	for i := range huge {
		huge[i] = 'x'
	}
	ev := engine.Event{Seq: 1, Kind: engine.EventEpochStart, Note: string(huge)}
	if _, err := encodeEvent(ev); err == nil {
		t.Fatal("oversized event must fail to encode")
	}
}

// sanity: the JSON wire form round-trips payloads.
func TestEventJSONRoundTrip(t *testing.T) {
	ev := testEvents(1)[0]
	ev.SellerCuts = map[string]float64{"s1": 12.5, "s2": 7.5}
	raw, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var back engine.Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seq != ev.Seq || back.SellerCuts["s1"] != 12.5 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
