package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/engine"
)

// Snapshot files live beside the segments as snapshot-<seq>.json, where
// <seq> is the checkpoint's TakenAtSeq. They are written atomically
// (tmp + rename) so a crash mid-write never shadows an older good snapshot.

func snapshotName(seq int) string { return fmt.Sprintf("snapshot-%010d.json", seq) }

// WriteSnapshot persists an engine checkpoint into dir and returns its path.
func WriteSnapshot(dir string, snap *engine.SnapshotState) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return "", fmt.Errorf("wal: encode snapshot: %w", err)
	}
	path := filepath.Join(dir, snapshotName(snap.TakenAtSeq))
	// Unique tmp name: concurrent snapshot requests must not interleave
	// writes into the same file before the atomic rename.
	f, err := os.CreateTemp(dir, snapshotName(snap.TakenAtSeq)+".tmp-*")
	if err != nil {
		return "", err
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	// Make the rename itself durable — without a directory fsync the
	// snapshot can vanish on power loss even though its bytes were synced.
	if d, err := os.Open(dir); err == nil {
		derr := d.Sync()
		d.Close()
		if derr != nil {
			return "", derr
		}
	}
	return path, nil
}

// LoadSnapshot returns the newest parseable snapshot in dir, or (nil, nil)
// when none exists. A corrupt newest snapshot falls back to the one before
// it — the WAL replays the difference either way.
func LoadSnapshot(dir string) (*engine.SnapshotState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".json") {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var snap engine.SnapshotState
		if err := json.Unmarshal(raw, &snap); err != nil || snap.Platform == nil {
			continue // corrupt or half-written; try the previous one
		}
		return &snap, nil
	}
	return nil, nil
}
