package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// Snapshot files live beside the segments as snapshot-<seq>.json, where
// <seq> is the checkpoint's TakenAtSeq. They are written atomically
// (tmp + rename) so a crash mid-write never shadows an older good snapshot.

func snapshotName(seq int) string { return fmt.Sprintf("snapshot-%010d.json", seq) }

// snapshotSeq parses the watermark a snapshot file name encodes; 0 when the
// name is malformed.
func snapshotSeq(name string) int {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".json")
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}

// snapshotFiles lists snapshot file names in dir, newest (highest seq)
// first. A missing directory yields an empty list.
func snapshotFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".json") {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// WriteSnapshot persists an engine checkpoint into dir and returns its path.
func WriteSnapshot(dir string, snap *engine.SnapshotState) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return "", fmt.Errorf("wal: encode snapshot: %w", err)
	}
	path := filepath.Join(dir, snapshotName(snap.TakenAtSeq))
	// Unique tmp name: concurrent snapshot requests must not interleave
	// writes into the same file before the atomic rename.
	f, err := os.CreateTemp(dir, snapshotName(snap.TakenAtSeq)+".tmp-*")
	if err != nil {
		return "", err
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	// Make the rename itself durable — without a directory fsync the
	// snapshot can vanish on power loss even though its bytes were synced.
	if d, err := os.Open(dir); err == nil {
		derr := d.Sync()
		d.Close()
		if derr != nil {
			return "", derr
		}
	}
	return path, nil
}

// LoadSnapshot returns the newest parseable snapshot in dir, or (nil, nil)
// when none exists. A corrupt newest snapshot falls back to the one before
// it — the WAL replays the difference either way.
func LoadSnapshot(dir string) (*engine.SnapshotState, error) {
	names, err := snapshotFiles(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var snap engine.SnapshotState
		if err := json.Unmarshal(raw, &snap); err != nil || snap.Platform == nil {
			continue // corrupt or half-written; try the previous one
		}
		return &snap, nil
	}
	return nil, nil
}

// PruneAfterSnapshot bounds WAL-directory growth after a successful
// checkpoint without giving up LoadSnapshot's corruption fallback: segments
// are pruned only up to the *second*-newest snapshot's watermark — so the
// newest snapshot going corrupt still leaves a fallback checkpoint plus
// every segment it needs to replay forward — and snapshot files older than
// that fallback are deleted. With fewer than two snapshots nothing is
// removed (the first checkpoint cycle keeps the full log as its own
// fallback). Returns how many segments and snapshots were removed.
func PruneAfterSnapshot(dir string, w *Log) (segments, snapshots int, err error) {
	names, err := snapshotFiles(dir)
	if err != nil || len(names) < 2 {
		return 0, 0, err
	}
	fallback := snapshotSeq(names[1])
	if segments, err = w.PruneCovered(fallback); err != nil {
		return segments, 0, err
	}
	for _, name := range names[2:] {
		// A concurrent prune may already have removed it; idempotent.
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return segments, snapshots, fmt.Errorf("wal: prune snapshot %s: %w", name, err)
		}
		snapshots++
	}
	if snapshots > 0 {
		if err := syncDir(dir); err != nil {
			return segments, snapshots, err
		}
	}
	return segments, snapshots, nil
}
