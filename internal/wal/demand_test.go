package wal

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relation"
)

// TestDemandSignalsSurviveRestore: the unmet-demand counters — the signal
// the recommendation and opportunistic-seller services mine — are committed
// with each epoch-end record and re-seeded on replay, so a rebooted arbiter
// sees exactly the demand the original run accumulated.
func TestDemandSignalsSurviveRestore(t *testing.T) {
	basePlat, baseEng, dir := runUninterrupted(t, core.Options{Design: testDesign}, script(), SyncEpoch)
	live := basePlat.Arbiter.DemandSignals()
	if len(live) == 0 {
		t.Fatal("script produced no unmet demand; the test needs a starved column")
	}

	p2, e2, w2, _, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	e2.Stop()

	restored := p2.Arbiter.DemandSignals()
	if !reflect.DeepEqual(live, restored) {
		t.Fatalf("demand signals diverged after restore:\nlive:     %+v\nrestored: %+v", live, restored)
	}

	// The restored signal feeds the recommendation path: an opportunistic
	// seller is offered the hottest unmet column and supplies it.
	hottest := restored[0].Column
	id, err := p2.Arbiter.AskOpportunisticSeller("s3", func(col string) *relation.Relation {
		if col != hottest {
			return nil
		}
		r := relation.New("opportunistic", relation.NewSchema(relation.Col(col, relation.KindInt)))
		for i := 0; i < 5; i++ {
			r.MustAppend(relation.Int(int64(i)))
		}
		return r
	})
	if err != nil {
		t.Fatalf("opportunistic seller not fed by restored demand: %v", err)
	}
	if _, err := p2.Arbiter.Catalog.Get(id); err != nil {
		t.Fatalf("opportunistic dataset not shared: %v", err)
	}
	_ = baseEng
}

// TestDemandSignalsSurviveSnapshotRestore: signals also ride the checkpoint
// (PlatformSnapshot.Unmet) when the WAL prefix is pruned away.
func TestDemandSignalsSurviveSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 4, Persister: w})
	driveAll(t, e, script())
	e.Stop()

	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Platform.Unmet) == 0 {
		t.Fatal("checkpoint dropped the unmet counters")
	}
	if _, err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := w.PruneCovered(snap.TakenAtSeq); err != nil {
		t.Fatal(err)
	}
	w.Close()

	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.FromSnapshotSeq == 0 {
		t.Fatal("boot ignored the snapshot")
	}
	e2.Stop()
	if !reflect.DeepEqual(p.Arbiter.DemandSignals(), p2.Arbiter.DemandSignals()) {
		t.Fatalf("snapshot-restored demand signals diverged:\nlive:     %+v\nrestored: %+v",
			p.Arbiter.DemandSignals(), p2.Arbiter.DemandSignals())
	}
}
