package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// TestPruneAfterSnapshotReboots: with tiny segments, checkpoint mid-script,
// prune the covered segments, finish the run, reboot — recovery must start
// from the snapshot, replay only the surviving tail, and match the
// uninterrupted state byte for byte.
func TestPruneAfterSnapshotReboots(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 4, Persister: w})

	var watermark int
	for i, epoch := range script() {
		for _, o := range epoch {
			submitOp(e, o)
		}
		e.TriggerEpoch()
		if i == 2 { // checkpoint + prune after epoch 3
			snap, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := WriteSnapshot(dir, snap); err != nil {
				t.Fatal(err)
			}
			watermark = snap.TakenAtSeq
			before, _ := segmentFiles(dir)
			if len(before) < 2 {
				t.Fatalf("workload too small to rotate segments: %v", before)
			}
			n, err := w.PruneCovered(watermark)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("no covered segments pruned")
			}
			after, _ := segmentFiles(dir)
			if len(after) != len(before)-n {
				t.Fatalf("pruned %d but %d -> %d segments", n, len(before), len(after))
			}
			// The surviving prefix must still cover everything past the
			// watermark: the first remaining segment starts at or below it.
			if first := segmentFirstSeq(after[0]); first > watermark+1 {
				t.Fatalf("prune cut into uncovered records: first segment starts at %d, watermark %d", first, watermark)
			}
		}
	}
	e.Stop()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	baseStrong := fingerprint(t, p, e, true)

	// Reboot from snapshot + pruned log.
	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("boot over pruned log: %v", err)
	}
	defer w2.Close()
	if res.FromSnapshotSeq != watermark {
		t.Fatalf("boot ignored the snapshot: %+v", res)
	}
	if res.Recovered == 0 || res.Recovered >= e.Log().LastSeq() {
		t.Fatalf("pruned boot should recover only the tail: %+v (log head %d)", res, e.Log().LastSeq())
	}
	e2.Stop()
	if got := fingerprint(t, p2, e2, true); string(got) != string(baseStrong) {
		t.Fatalf("pruned reboot diverged:\n--- baseline\n%s\n--- restarted\n%s", baseStrong, got)
	}

	// Events below the pruned base are compacted; the served suffix is
	// contiguous up to the original head.
	evs := e2.Events(0)
	if len(evs) == 0 {
		t.Fatal("no events served after pruned boot")
	}
	if evs[0].Seq == 1 {
		t.Fatal("pruned boot still serves the full history — nothing was compacted")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("gap in served events at %d -> %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if got, want := evs[len(evs)-1].Seq, e.Log().LastSeq(); got != want {
		t.Fatalf("served head %d, want %d", got, want)
	}
}

// TestPruneAfterSnapshotKeepsCorruptionFallback: the safe prune helper
// keeps the newest two snapshots and the segments the older one needs, so
// the newest checkpoint going corrupt still boots — the fallback
// LoadSnapshot documents. Snapshots behind the fallback are deleted.
func TestPruneAfterSnapshotKeepsCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 4, Persister: w})

	checkpoint := func() {
		snap, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := WriteSnapshot(dir, snap); err != nil {
			t.Fatal(err)
		}
		if _, _, err := PruneAfterSnapshot(dir, w); err != nil {
			t.Fatal(err)
		}
	}
	for i, epoch := range script() {
		for _, o := range epoch {
			submitOp(e, o)
		}
		e.TriggerEpoch()
		if i >= 1 { // checkpoint + prune after epochs 2..5
			checkpoint()
		}
	}
	e.Stop()
	w.Close()
	baseStrong := fingerprint(t, p, e, true)

	snaps, _ := snapshotFiles(dir)
	if len(snaps) != 2 {
		t.Fatalf("prune should keep exactly the newest two snapshots, have %v", snaps)
	}
	// Corrupt the newest snapshot: boot must fall back to the older one
	// and replay the difference from the retained segments.
	if err := os.WriteFile(filepath.Join(dir, snaps[0]), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("boot with corrupt newest snapshot: %v", err)
	}
	defer w2.Close()
	if res.FromSnapshotSeq != snapshotSeq(snaps[1]) {
		t.Fatalf("boot used watermark %d, want fallback %d", res.FromSnapshotSeq, snapshotSeq(snaps[1]))
	}
	if res.Replayed == 0 {
		t.Fatal("fallback boot replayed nothing — the retained segments were not used")
	}
	e2.Stop()
	if got := fingerprint(t, p2, e2, true); string(got) != string(baseStrong) {
		t.Fatalf("fallback boot diverged:\n--- baseline\n%s\n--- restarted\n%s", baseStrong, got)
	}
}

// TestPruneKeepsActiveSegment: pruning at the log head must never remove
// the active append segment, and appends afterwards still land and recover.
func TestPruneKeepsActiveSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 2, Persister: w})
	driveAll(t, e, script())

	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := w.PruneCovered(snap.TakenAtSeq); err != nil {
		t.Fatal(err)
	}
	segs, _ := segmentFiles(dir)
	if len(segs) == 0 {
		t.Fatal("prune removed the active append segment")
	}

	// The log is still appendable after the prune.
	reg := mustTicket(e.SubmitRegister("b9", 700))
	e.TriggerEpoch()
	if tk, _ := e.Ticket(reg); tk.Status != engine.TicketDone {
		t.Fatalf("post-prune registration failed: %+v", tk)
	}
	e.Stop()
	w.Close()

	p2, e2, w2, _, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 2}, Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("boot after prune+append: %v", err)
	}
	defer func() { e2.Stop(); w2.Close() }()
	if !p2.Arbiter.Ledger.Exists("b9") {
		t.Fatal("post-prune registration lost on reboot")
	}
}
