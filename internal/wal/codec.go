package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/engine"
)

// headerSize is the fixed record prefix: 4-byte length + 4-byte CRC.
const headerSize = 8

// maxRecordSize bounds a single record's payload. A length prefix larger
// than this is treated as corruption, not as an allocation request.
const maxRecordSize = 64 << 20

// crcTable is the Castagnoli polynomial, the standard WAL checksum (it has
// hardware support on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn marks the end of the valid prefix: a truncated, bit-flipped or
// otherwise unparseable record. Readers recover everything before it.
var ErrTorn = errors.New("wal: torn or corrupt record")

// appendRecord encodes one payload as a framed record onto dst.
func appendRecord(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// encodeEvent frames one event as a record.
func encodeEvent(ev engine.Event) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("wal: encode event %d: %w", ev.Seq, err)
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("wal: event %d payload %d bytes exceeds record limit", ev.Seq, len(payload))
	}
	return appendRecord(nil, payload), nil
}

// nextRecord decodes the record starting at buf[off]. It returns the payload
// and the offset past the record. Any defect — short header, oversized or
// truncated length, CRC mismatch — returns an error wrapping ErrTorn; a
// clean end of buffer returns (nil, off, nil) with done=true.
func nextRecord(buf []byte, off int) (payload []byte, next int, done bool, err error) {
	if off == len(buf) {
		return nil, off, true, nil
	}
	if len(buf)-off < headerSize {
		return nil, off, false, fmt.Errorf("%w: %d-byte header fragment", ErrTorn, len(buf)-off)
	}
	n := binary.LittleEndian.Uint32(buf[off : off+4])
	sum := binary.LittleEndian.Uint32(buf[off+4 : off+8])
	if n > maxRecordSize {
		return nil, off, false, fmt.Errorf("%w: length prefix %d exceeds limit", ErrTorn, n)
	}
	start := off + headerSize
	if len(buf)-start < int(n) {
		return nil, off, false, fmt.Errorf("%w: payload truncated (%d of %d bytes)", ErrTorn, len(buf)-start, n)
	}
	payload = buf[start : start+int(n)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, off, false, fmt.Errorf("%w: crc mismatch", ErrTorn)
	}
	return payload, start + int(n), false, nil
}

// DecodeAll decodes every valid record from raw and returns the events plus
// the byte offset of the valid prefix. It never panics and never fails: any
// corruption — torn write, bit-flipped CRC, truncated length prefix, bogus
// JSON, out-of-order seq — ends the prefix, and everything before it is
// returned. wantNext is the first expected seq (0 accepts any start).
func DecodeAll(raw []byte, wantNext int) (events []engine.Event, validBytes int) {
	off := 0
	for {
		payload, next, done, err := nextRecord(raw, off)
		if done || err != nil {
			return events, off
		}
		var ev engine.Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return events, off
		}
		if wantNext != 0 && ev.Seq != wantNext {
			return events, off
		}
		events = append(events, ev)
		wantNext = ev.Seq + 1
		off = next
	}
}
