package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// testEvents builds n minimal events with contiguous seqs, marking every
// fifth one as an epoch-end so SyncEpoch has sync points.
func testEvents(n int) []engine.Event {
	evs := make([]engine.Event, n)
	for i := range evs {
		kind := engine.EventRequestFiled
		if (i+1)%5 == 0 {
			kind = engine.EventEpochEnd
		}
		evs[i] = engine.Event{Seq: i + 1, Epoch: uint64(i/5 + 1), Kind: kind,
			Ticket: fmt.Sprintf("sub-%06d", i+1), Participant: "b1"}
	}
	return evs
}

func persistAll(t *testing.T, w *Log, evs []engine.Event) {
	t.Helper()
	for _, ev := range evs {
		if err := w.Persist(ev); err != nil {
			t.Fatalf("persist seq %d: %v", ev.Seq, err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncEpoch, SyncOff} {
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(Options{Dir: dir, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			evs := testEvents(17)
			persistAll(t, w, evs)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			got, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(evs) {
				t.Fatalf("recovered %d events, want %d", len(got), len(evs))
			}
			for i, ev := range got {
				if ev.Seq != evs[i].Seq || ev.Kind != evs[i].Kind || ev.Ticket != evs[i].Ticket {
					t.Fatalf("event %d mismatch: got %+v want %+v", i, ev, evs[i])
				}
			}
		})
	}
}

func TestWALSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several rotations over 40 records.
	w, err := Open(Options{Dir: dir, Policy: SyncOff, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	evs := testEvents(40)
	persistAll(t, w, evs[:25])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segmentFiles(dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments after rotation, got %d (%v)", len(segs), segs)
	}

	// Reopen mid-stream: the cursor must continue at seq 26.
	w, err = Open(Options{Dir: dir, Policy: SyncOff, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 25 {
		t.Fatalf("reopened cursor at %d, want 25", w.LastSeq())
	}
	persistAll(t, w, evs[25:])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("recovered %d events, want 40", len(got))
	}
	for i, ev := range got {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	persistAll(t, w, testEvents(10))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: append half a record to the segment.
	segs, _ := segmentFiles(dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Load recovers the valid prefix without error.
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("recovered %d events, want 10", len(got))
	}

	// Open truncates the tail and appends cleanly after it.
	w, err = Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 10 {
		t.Fatalf("cursor at %d after torn tail, want 10", w.LastSeq())
	}
	if err := w.Persist(engine.Event{Seq: 11, Kind: engine.EventEpochEnd, Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 || got[10].Seq != 11 {
		t.Fatalf("post-truncation append not recovered: %d events", len(got))
	}
}

func TestWALOutOfOrderAppendWedges(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Persist(engine.Event{Seq: 1, Kind: engine.EventEpochStart, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Persist(engine.Event{Seq: 3, Kind: engine.EventEpochEnd, Epoch: 1}); err == nil {
		t.Fatal("gap in seq must be rejected")
	}
	if err := w.Persist(engine.Event{Seq: 2, Kind: engine.EventEpochEnd, Epoch: 1}); err == nil {
		t.Fatal("wedged log must stay wedged")
	}
}

func TestSnapshotWriteLoadAndCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	if snap, err := LoadSnapshot(dir); err != nil || snap != nil {
		t.Fatalf("empty dir: want (nil, nil), got (%v, %v)", snap, err)
	}

	stub := &core.PlatformSnapshot{Design: "posted-baseline"}
	s1 := &engine.SnapshotState{TakenAtSeq: 10, Epoch: 2, Platform: stub}
	s2 := &engine.SnapshotState{TakenAtSeq: 25, Epoch: 5, Platform: stub}
	if _, err := WriteSnapshot(dir, s1); err != nil {
		t.Fatal(err)
	}
	p2, err := WriteSnapshot(dir, s2)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.TakenAtSeq != 25 {
		t.Fatalf("want newest snapshot (seq 25), got %+v", snap)
	}

	// Corrupt the newest: loader must fall back to the older one.
	if err := os.WriteFile(p2, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err = LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.TakenAtSeq != 10 {
		t.Fatalf("want fallback snapshot (seq 10), got %+v", snap)
	}
}
