// Package wal is the durable half of the market engine's event log: a
// segmented write-ahead log that persists every engine.Event before it
// becomes visible to in-memory subscribers, plus the snapshot files that let
// a restart skip replaying from seq 1.
//
// # Record format
//
// Each record is length-prefixed, checksummed JSON:
//
//	offset  size  field
//	0       4     payload length N, little-endian uint32
//	4       4     CRC-32C (Castagnoli) of the payload, little-endian uint32
//	8       N     payload: one engine.Event, JSON-encoded
//
// Records are concatenated into segment files named wal-<firstseq>.seg,
// rotated once a segment exceeds Options.SegmentBytes. Sequence numbers are
// assigned by the engine's event log (1-based, no gaps); the WAL verifies
// contiguity on append and on load, so a decoded log is always a prefix of
// the in-memory history.
//
// # Torn tails
//
// A crash can leave a partial record at the end of the newest segment. The
// reader never fails on this: Load and Open both stop at the first record
// whose length prefix is truncated, whose CRC mismatches, or whose payload
// does not parse, and recover the longest valid prefix. Open additionally
// truncates the file there so new appends continue from a clean boundary.
// Corruption in the middle of the log (a torn non-final segment) likewise
// ends the valid prefix; later segments are beyond it and are dropped.
//
// # Fsync policy
//
// Options.Policy trades durability for throughput:
//
//	SyncAlways  fsync after every record — no record is lost once Append
//	            returns; slowest (one fsync per event).
//	SyncEpoch   fsync when an epoch-end record is written (and on rotation
//	            and close) — a crash loses at most the current epoch, the
//	            natural batching unit of the engine.
//	SyncOff     fsync only on rotation and close — a crash loses whatever
//	            the OS had not flushed; fastest.
//
// # Boot sequence
//
// Boot wires recovery end to end: load the newest parseable snapshot (if
// any), load every WAL record, rebuild the platform from the snapshot (or
// fresh), open the WAL for appending (truncating any torn tail), and hand
// both to engine.Restore — which re-seeds the in-memory log so subscriber
// cursors resume gap-free, replays post-snapshot events onto the platform,
// and attaches the WAL as the persister for everything after. Snapshots are
// written by Engine.Snapshot via WriteSnapshot — on demand (dmms /snapshot),
// or on drain (dmgateway -snapshot-on-drain).
package wal
