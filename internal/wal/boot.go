package wal

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// BootResult reports what recovery found.
type BootResult struct {
	// FromSnapshotSeq is the checkpoint watermark recovery started from
	// (0 = no snapshot, full replay).
	FromSnapshotSeq int
	// Recovered is the number of WAL events loaded into the in-memory log.
	Recovered int
	// Replayed is how many of those were applied to the platform (the ones
	// past the snapshot watermark).
	Replayed int
}

// Boot performs the full recovery sequence in opts.Dir and returns a
// platform + engine pair whose state matches the durable log, with the WAL
// reopened and attached as the engine's persister:
//
//  1. load the newest parseable snapshot, if any;
//  2. load every valid WAL record (torn tails truncate, never fail);
//  3. rebuild the platform — from the snapshot checkpoint, or fresh;
//  4. open the WAL for appending after the valid prefix;
//  5. engine.Restore: re-seed the in-memory event log (subscriber cursors
//     resume gap-free), replay post-snapshot events, attach the WAL.
//
// The engine is returned stopped; the caller owns Start/Stop and must Close
// the returned Log after Stop.
func Boot(platOpts core.Options, cfg engine.Config, walOpts Options) (*core.Platform, *engine.Engine, *Log, BootResult, error) {
	walOpts = walOpts.withDefaults()
	var res BootResult

	snap, err := LoadSnapshot(walOpts.Dir)
	if err != nil {
		return nil, nil, nil, res, fmt.Errorf("wal: load snapshot: %w", err)
	}

	// One scan recovers the events AND opens the log for appending
	// (truncating any torn tail at the same time).
	w, events, err := openScan(walOpts)
	if err != nil {
		return nil, nil, nil, res, fmt.Errorf("wal: open: %w", err)
	}

	// A log that ends short of the snapshot watermark (a crash under
	// fsync=off, or a wedged persister before the checkpoint) would reuse
	// seqs the checkpoint already covers. Every surviving record is covered
	// by the snapshot too, so archive the stale segments and restore from
	// the snapshot alone; appends continue at the watermark.
	if snap != nil && w.LastSeq() < snap.TakenAtSeq {
		if err := w.Close(); err != nil {
			return nil, nil, nil, res, err
		}
		if err := archiveCoveredSegments(walOpts.Dir); err != nil {
			return nil, nil, nil, res, err
		}
		events = nil
		if w, _, err = openScan(walOpts); err != nil {
			return nil, nil, nil, res, fmt.Errorf("wal: reopen after archiving covered segments: %w", err)
		}
	}

	var p *core.Platform
	if snap != nil {
		res.FromSnapshotSeq = snap.TakenAtSeq
		p, err = core.RestorePlatform(platOpts, snap.Platform)
	} else {
		p, err = core.NewPlatform(platOpts)
	}
	if err != nil {
		w.Close()
		return nil, nil, nil, res, err
	}

	cfg.Persister = w
	eng, err := engine.Restore(p, cfg, snap, events)
	if err != nil {
		w.Close()
		return nil, nil, nil, res, err
	}
	// Segments fully pruned (or archived) behind a snapshot leave the
	// append cursor short of the checkpoint; skip it forward — those seqs
	// are durable in the snapshot itself.
	if snap != nil && len(events) == 0 {
		w.SkipTo(snap.TakenAtSeq)
	}
	if got, want := w.LastSeq(), eng.Log().LastSeq(); got != want {
		w.Close()
		return nil, nil, nil, res, fmt.Errorf("wal: append cursor at seq %d but log ends at %d", got, want)
	}
	res.Recovered = len(events)
	for _, ev := range events {
		if ev.Seq > res.FromSnapshotSeq {
			res.Replayed++
		}
	}
	return p, eng, w, res, nil
}
