package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// This file is the crash/replay determinism harness: a scripted workload is
// driven against an engine whose WAL persister is killed at chosen event
// seqs (epoch boundaries and mid-epoch), the engine is rebooted from the
// durable prefix, the lost suffix of the script is re-driven, and the final
// state must match an uninterrupted run — byte-identically for crashes at
// epoch boundaries, and identically modulo epoch numbering for mid-epoch
// crashes (re-driven work lands in later epochs, which is visible in epoch
// tags but in nothing else).

const testDesign = "posted-baseline"

// op is one scripted submission.
type op struct {
	kind  string // "register" | "share" | "request"
	name  string
	funds float64
	ds    string
	rows  int
	offer float64
	cols  []string
}

// script is the deterministic workload: epochs of ops covering
// registrations, shares, settling requests, a duplicate-registration
// rejection, a ghost-buyer rejection, sub-posted-price offers that stay
// open, and a permanently unmet request.
func script() [][]op {
	return [][]op{
		{ // epoch 1: funding registrations (one duplicate -> rejection)
			{kind: "register", name: "b1", funds: 5000},
			{kind: "register", name: "b2", funds: 8000},
			{kind: "register", name: "b1", funds: 100}, // duplicate
			{kind: "register", name: "b3", funds: 3000},
		},
		{ // epoch 2: first supply + first demand
			{kind: "share", name: "s1", ds: "s1/d0", rows: 20},
			{kind: "share", name: "s2", ds: "s2/d0", rows: 30},
			{kind: "request", name: "b1", offer: 150, cols: []string{"a", "b"}},
		},
		{ // epoch 3: more demand; one request no supply will ever cover
			{kind: "request", name: "b2", offer: 120, cols: []string{"a", "b"}},
			{kind: "request", name: "b3", offer: 110, cols: []string{"a", "b"}},
			{kind: "request", name: "b2", offer: 60, cols: []string{"never", "supplied"}},
		},
		{ // epoch 4: late supply, ghost buyer, late registration
			{kind: "share", name: "s1", ds: "s1/d1", rows: 25},
			{kind: "request", name: "ghost", offer: 10, cols: []string{"a", "b"}},
			{kind: "register", name: "b4", funds: 1500},
		},
		{ // epoch 5: a below-posted-price offer (stays open) and a match
			{kind: "request", name: "b4", offer: 80, cols: []string{"a", "b"}},
			{kind: "request", name: "b1", offer: 200, cols: []string{"a", "b"}},
		},
	}
}

// mustTicket unwraps a Submit* result for scripts with no admission control
// configured (where intake can never reject).
func mustTicket(id string, err error) string {
	if err != nil {
		panic(err)
	}
	return id
}

func scriptRelation(name string, rows int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*2.5))
	}
	return r
}

func submitOp(e *engine.Engine, o op) string {
	switch o.kind {
	case "register":
		return mustTicket(e.SubmitRegister(o.name, o.funds))
	case "share":
		return mustTicket(e.SubmitShare(o.name, catalog.DatasetID(o.ds), scriptRelation(o.ds, o.rows),
			wtp.DatasetMeta{Dataset: o.ds, HasProvenance: true}, license.Terms{Kind: license.Open}))
	case "request":
		want := dod.Want{Columns: o.cols}
		f := &wtp.Function{
			Buyer: o.name,
			Task:  wtp.CoverageTask{Columns: o.cols, WantRows: 1},
			Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: o.offer}},
		}
		return mustTicket(e.SubmitRequest(want, f))
	}
	panic("unknown op kind " + o.kind)
}

// expectedTicket is the ticket ID the k-th submission (0-based, global
// script order) receives — deterministic because the engine's submission
// counter is restored from the durable log on reboot.
func expectedTicket(k int) string { return fmt.Sprintf("sub-%06d", k+1) }

// faultPersister forwards to the real WAL until `remaining` events have been
// persisted, then fails forever — simulating a crash at an exact event seq.
// The engine's event log wedges on the first error, so the durable log is a
// clean prefix.
type faultPersister struct {
	inner     engine.Persister
	remaining int
}

func (f *faultPersister) Persist(ev engine.Event) error {
	if f.remaining <= 0 {
		return fmt.Errorf("injected crash at seq %d", ev.Seq)
	}
	f.remaining--
	return f.inner.Persist(ev)
}

// driveAll submits every scripted op in order, triggering one epoch per
// group, and asserts ticket IDs land as expected.
func driveAll(t *testing.T, e *engine.Engine) {
	t.Helper()
	k := 0
	for _, epoch := range script() {
		for _, o := range epoch {
			if got, want := submitOp(e, o), expectedTicket(k); got != want {
				t.Fatalf("submission %d got ticket %s, want %s", k, got, want)
			}
			k++
		}
		e.TriggerEpoch()
	}
}

// redrive completes the script against a rebooted engine: ops whose tickets
// survived in the durable log are skipped, lost ones are resubmitted (and
// must receive their original ticket IDs). Epochs re-trigger only from the
// first incomplete one — triggering a fully durable epoch again would clear
// later requests earlier than the original run did. A final trigger flushes
// requests whose filing was durable but whose settlement was lost.
func redrive(t *testing.T, e *engine.Engine) {
	t.Helper()
	k := 0
	triggering := false
	for _, epoch := range script() {
		for _, o := range epoch {
			id := expectedTicket(k)
			k++
			if tk, ok := e.Ticket(id); ok && (tk.Status.Terminal() || tk.Status == engine.TicketApplied) {
				continue // durable: already applied or terminally failed
			}
			if got := submitOp(e, o); got != id {
				t.Fatalf("re-driven submission got ticket %s, want %s", got, id)
			}
			triggering = true
		}
		if triggering {
			e.TriggerEpoch()
		}
	}
	e.TriggerEpoch()
}

// fingerprint canonicalizes the externally observable state of a platform +
// engine pair: balances, catalog (including the data), open requests on both
// layers, ID counters, tickets, the settlement book, and history. With
// withEpochs=false every epoch tag is scrubbed — the only field re-driven
// work is allowed to move.
func fingerprint(t *testing.T, p *core.Platform, e *engine.Engine, withEpochs bool) []byte {
	t.Helper()
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("snapshot for fingerprint: %v", err)
	}
	snap.TakenAt = time.Time{}
	if !withEpochs {
		snap.Epoch = 0
		snap.TakenAtSeq = 0
		for i := range snap.Tickets {
			snap.Tickets[i].Epoch = 0
			snap.Tickets[i].MatchedEpoch = 0
		}
		for i := range snap.Settles {
			snap.Settles[i].Epoch = 0
		}
		if snap.Policy != nil {
			// Re-driven filings land in later epochs at later event seqs;
			// like the epoch tags, the filing coordinates are the only
			// policy fields mid-epoch crashes may move.
			for i := range snap.Policy.Requests {
				snap.Policy.Requests[i].FiledEpoch = 0
				snap.Policy.Requests[i].FiledSeq = 0
			}
		}
		// Demand signals commit with the epoch-end record; a torn epoch
		// loses its round's increments (and a re-driven run may count a
		// different number of rounds), so they are only byte-comparable at
		// epoch boundaries.
		snap.Platform.Unmet = nil
	}
	var history []string
	for _, tx := range p.Arbiter.History() {
		history = append(history, fmt.Sprintf("%s/%s/%s/%.2f", tx.ID, tx.RequestID, tx.Buyer, tx.Price))
	}
	out, err := json.MarshalIndent(struct {
		Snap      *engine.SnapshotState
		History   []string
		Supply    ledger.Currency
		Conserved bool
	}{snap, history, p.Arbiter.Ledger.TotalSupply(), e.Settlements().Conserved()}, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runUninterrupted drives the full script against a WAL-backed engine with
// no fault and returns the platform, engine and the closed WAL's directory.
func runUninterrupted(t *testing.T, policy SyncPolicy) (*core.Platform, *engine.Engine, string) {
	t.Helper()
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 4, Persister: w})
	driveAll(t, e)
	e.Stop()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, perr := e.Log().Persisted(); perr != nil {
		t.Fatalf("uninterrupted run wedged its persister: %v", perr)
	}
	return p, e, dir
}

// TestCrashReplayDeterminism is the harness the issue asks for, table-driven
// over fsync policies. For each policy it computes the uninterrupted
// baseline, then crashes the persister at every epoch boundary (strong
// assertion: byte-identical state, epochs included) and at mid-epoch seqs
// (epoch-insensitive assertion), reboots from the WAL and re-drives the lost
// part of the script.
func TestCrashReplayDeterminism(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncEpoch, SyncOff} {
		t.Run(string(policy), func(t *testing.T) {
			basePlat, baseEng, _ := runUninterrupted(t, policy)
			baseStrong := fingerprint(t, basePlat, baseEng, true)
			baseWeak := fingerprint(t, basePlat, baseEng, false)

			// Crash points from the baseline's event stream: every
			// epoch-end seq is a boundary; seqs just inside an epoch check
			// the mid-epoch story. 0 = nothing durable at all.
			events := baseEng.Events(0)
			var boundaries []int
			for _, ev := range events {
				if ev.Kind == engine.EventEpochEnd {
					boundaries = append(boundaries, ev.Seq)
				}
			}
			if len(boundaries) != len(script()) {
				t.Fatalf("baseline ran %d epochs, want %d", len(boundaries), len(script()))
			}
			isBoundary := map[int]bool{0: true}
			crashPoints := []int{0}
			for _, b := range boundaries {
				isBoundary[b] = true
				crashPoints = append(crashPoints, b)
			}
			for _, b := range boundaries {
				for _, mid := range []int{b - 1, b + 2} {
					if mid > 0 && mid < len(events) && !isBoundary[mid] {
						crashPoints = append(crashPoints, mid)
					}
				}
			}

			for _, crashAfter := range crashPoints {
				name := fmt.Sprintf("crash@%d", crashAfter)
				if isBoundary[crashAfter] {
					name += "-boundary"
				}
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					w, err := Open(Options{Dir: dir, Policy: policy})
					if err != nil {
						t.Fatal(err)
					}
					p, err := core.NewPlatform(core.Options{Design: testDesign})
					if err != nil {
						t.Fatal(err)
					}
					e := engine.New(p, engine.Config{Shards: 4,
						Persister: &faultPersister{inner: w, remaining: crashAfter}})
					driveAll(t, e)
					if crashAfter < len(events) {
						if _, perr := e.Log().Persisted(); perr == nil {
							t.Fatal("fault persister never fired")
						}
					}
					e.Stop()
					w.Close()

					// Reboot from the durable prefix and finish the script.
					p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
						engine.Config{Shards: 4}, Options{Dir: dir, Policy: policy})
					if err != nil {
						t.Fatalf("boot: %v", err)
					}
					defer w2.Close()
					if res.Recovered != crashAfter {
						t.Fatalf("recovered %d events, want %d durable", res.Recovered, crashAfter)
					}
					redrive(t, e2)
					e2.Stop()

					if isBoundary[crashAfter] {
						got := fingerprint(t, p2, e2, true)
						if string(got) != string(baseStrong) {
							t.Fatalf("epoch-boundary crash diverged from uninterrupted run:\n--- baseline\n%s\n--- restarted\n%s", baseStrong, got)
						}
					} else {
						got := fingerprint(t, p2, e2, false)
						if string(got) != string(baseWeak) {
							t.Fatalf("mid-epoch crash diverged (epoch-insensitive):\n--- baseline\n%s\n--- restarted\n%s", baseWeak, got)
						}
					}
					if i := p2.Arbiter.Ledger.VerifyChain(); i >= 0 {
						t.Fatalf("audit chain corrupted at entry %d after replay", i)
					}
					if !e2.Settlements().Conserved() {
						t.Fatal("settlement conservation violated after replay")
					}
				})
			}
		})
	}
}

// TestCleanRestartIsByteIdentical: a full run, a clean shutdown, a reboot
// from the WAL with nothing to re-drive — the strongest determinism claim.
func TestCleanRestartIsByteIdentical(t *testing.T) {
	basePlat, baseEng, dir := runUninterrupted(t, SyncEpoch)
	baseStrong := fingerprint(t, basePlat, baseEng, true)

	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Recovered == 0 || res.Replayed != res.Recovered {
		t.Fatalf("unexpected recovery stats: %+v", res)
	}
	e2.Stop()
	if got := fingerprint(t, p2, e2, true); string(got) != string(baseStrong) {
		t.Fatalf("clean restart diverged:\n--- baseline\n%s\n--- restarted\n%s", baseStrong, got)
	}
}

// TestSnapshotRestartIsByteIdentical checkpoints mid-script, finishes the
// run, reboots — recovery must start from the snapshot, replay only the
// tail, and still match the uninterrupted state byte for byte.
func TestSnapshotRestartIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 4, Persister: w})

	sc := script()
	k := 0
	for i, epoch := range sc {
		for _, o := range epoch {
			submitOp(e, o)
			k++
		}
		e.TriggerEpoch()
		if i == 2 { // checkpoint after epoch 3
			snap, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := WriteSnapshot(dir, snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.Stop()
	w.Close()
	baseStrong := fingerprint(t, p, e, true)

	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.FromSnapshotSeq == 0 {
		t.Fatal("boot ignored the snapshot")
	}
	if res.Replayed >= res.Recovered {
		t.Fatalf("snapshot did not shorten replay: %+v", res)
	}
	e2.Stop()
	if got := fingerprint(t, p2, e2, true); string(got) != string(baseStrong) {
		t.Fatalf("snapshot restart diverged:\n--- baseline\n%s\n--- restarted\n%s", baseStrong, got)
	}

	// Cursors must resume gap-free even though state came from the snapshot:
	// the full event history is still served.
	evs := e2.Events(0)
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d after snapshot boot", i, ev.Seq)
		}
	}
}

// TestBootTruncatesCorruptTail: a bit-flipped final record must not be fatal
// on boot — the reader truncates it and the lost suffix can be re-driven.
func TestBootTruncatesCorruptTail(t *testing.T) {
	basePlat, baseEng, dir := runUninterrupted(t, SyncAlways)
	baseWeak := fingerprint(t, basePlat, baseEng, false)

	segs, err := segmentFiles(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	path := filepath.Join(dir, segs[len(segs)-1])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff // flip a byte inside the final record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatalf("boot over corrupt tail: %v", err)
	}
	defer w2.Close()
	if res.Recovered != baseEng.Log().LastSeq()-1 {
		t.Fatalf("recovered %d events, want %d (one truncated)", res.Recovered, baseEng.Log().LastSeq()-1)
	}
	redrive(t, e2)
	e2.Stop()
	if got := fingerprint(t, p2, e2, false); string(got) != string(baseWeak) {
		t.Fatalf("corrupt-tail reboot diverged:\n--- baseline\n%s\n--- restarted\n%s", baseWeak, got)
	}
}

// TestBootArchivesStaleLogBehindSnapshot: a snapshot can outlive the WAL
// records it covers (crash under fsync=off loses the unsynced suffix). Boot
// must not reuse sequence numbers the checkpoint covers: the stale segments
// are archived, the state comes from the snapshot alone, and new appends
// continue at the watermark — still recoverable on a second boot.
func TestBootArchivesStaleLogBehindSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 4, Persister: w})
	driveAll(t, e)
	e.Stop()
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Simulate the fsync=off crash: chop the tail off the last segment so
	// the log ends well short of the snapshot watermark.
	segs, _ := segmentFiles(dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncOff})
	if err != nil {
		t.Fatalf("boot over stale log: %v", err)
	}
	if res.FromSnapshotSeq != snap.TakenAtSeq || res.Recovered != 0 {
		t.Fatalf("want snapshot-only recovery, got %+v", res)
	}
	if got := e2.Log().LastSeq(); got != snap.TakenAtSeq {
		t.Fatalf("log resumes at seq %d, want watermark %d", got, snap.TakenAtSeq)
	}
	if w2.LastSeq() != snap.TakenAtSeq {
		t.Fatalf("WAL cursor at %d, want watermark %d", w2.LastSeq(), snap.TakenAtSeq)
	}

	// New work gets post-watermark seqs and survives another restart.
	reg := mustTicket(e2.SubmitRegister("b9", 700))
	e2.TriggerEpoch()
	if tk, _ := e2.Ticket(reg); tk.Status != engine.TicketDone {
		t.Fatalf("post-archive registration failed: %+v", tk)
	}
	e2.Stop()
	w2.Close()
	after := e2.Log().LastSeq()
	if after <= snap.TakenAtSeq {
		t.Fatalf("no post-watermark events appended (seq %d)", after)
	}

	p3, e3, w3, res3, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncOff})
	if err != nil {
		t.Fatalf("second boot: %v", err)
	}
	defer func() { e3.Stop(); w3.Close() }()
	if res3.Replayed == 0 {
		t.Fatalf("second boot replayed nothing: %+v", res3)
	}
	if !p3.Arbiter.Ledger.Exists("b9") {
		t.Fatal("post-watermark registration lost on second boot")
	}
	if got := e3.Log().LastSeq(); got != after {
		t.Fatalf("second boot log ends at %d, want %d", got, after)
	}
	_ = p2
}

// TestSnapshotRefusedWhenWedged: a checkpoint must never claim seqs the WAL
// does not hold, so a wedged persister makes Snapshot fail.
func TestSnapshotRefusedWhenWedged(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 2,
		Persister: &faultPersister{inner: w, remaining: 2}})
	defer e.Stop()
	e.SubmitRegister("b1", 100)
	e.SubmitRegister("b2", 100)
	e.TriggerEpoch() // >2 events: the persister wedges mid-epoch
	if _, perr := e.Log().Persisted(); perr == nil {
		t.Fatal("persister should be wedged")
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("snapshot on a wedged engine must be refused")
	}
}

// TestSnapshotRefusedWhileExPostPending: ex-post deposits live in ledger
// escrow, which snapshots do not capture — a checkpoint taken while one is
// outstanding would silently destroy the deposit on restore, so Snapshot
// must refuse until the buyer reports.
func TestSnapshotRefusedWhileExPostPending(t *testing.T) {
	p, err := core.NewPlatform(core.Options{Design: "expost-audited"})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 2})
	defer e.Stop()
	e.SubmitRegister("b1", 5000)
	e.SubmitShare("s1", "s1/d0", scriptRelation("s1/d0", 20),
		wtp.DatasetMeta{Dataset: "s1/d0", HasProvenance: true}, license.Terms{Kind: license.Open})
	e.TriggerEpoch()
	e.SubmitRequest(dod.Want{Columns: []string{"a", "b"}}, &wtp.Function{
		Buyer: "b1",
		Task:  wtp.CoverageTask{Columns: []string{"a", "b"}, WantRows: 1},
		Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 600}},
	})
	e.TriggerEpoch()
	if p.Arbiter.PendingExPostCount() == 0 {
		t.Fatal("expected a pending ex-post settlement")
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("snapshot with pending ex-post escrow must be refused")
	}
	// Once the buyer reports, the escrow clears and snapshots work again.
	var txID string
	for _, ev := range e.Events(0) {
		if ev.Kind == engine.EventTxSettled {
			txID = ev.TxID
		}
	}
	if _, err := p.Arbiter.ReportValue(txID, 600, 600); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err != nil {
		t.Fatalf("snapshot after report should succeed: %v", err)
	}
}

// TestSnapshotExcludesQueuedIntake: a submission still queued at checkpoint
// time has no events and is not durable; the snapshot must exclude both its
// ticket and its seq so a post-restore re-submission gets the original
// ticket ID back.
func TestSnapshotExcludesQueuedIntake(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 2, Persister: w})
	first := mustTicket(e.SubmitRegister("b1", 1000)) // sub-000001
	e.TriggerEpoch()
	queued := mustTicket(e.SubmitRegister("b2", 2000)) // sub-000002: queued, no epoch yet

	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range snap.Tickets {
		if tk.ID == queued {
			t.Fatalf("queued ticket %s leaked into the snapshot", queued)
		}
	}
	if snap.SubmitSeq != 1 {
		t.Fatalf("snapshot submit seq %d counts queued intake, want 1", snap.SubmitSeq)
	}
	if _, err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	e.Stop() // flushes the queued registration — but the snapshot predates it
	w.Close()

	p2, e2, w2, _, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 2}, Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { e2.Stop(); w2.Close() }()
	if tk, ok := e2.Ticket(first); !ok || tk.Status != engine.TicketDone {
		t.Fatalf("evented ticket lost: %v", tk)
	}
	// b2's registration WAS evented after the snapshot (Stop's final
	// epoch), so the full-WAL boot replays it; its ticket resolves and is
	// terminal — never stuck "queued".
	if tk, ok := e2.Ticket(queued); ok && tk.Status == engine.TicketQueued {
		t.Fatalf("restored ticket stuck queued: %+v", tk)
	}
	_ = p2
}

// TestSnapshotQueuedResubmissionKeepsTicketID: when the queued submission's
// events never made it to disk at all, the restored engine hands the
// re-submission the original ticket ID.
func TestSnapshotQueuedResubmissionKeepsTicketID(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	// The persister dies right after the snapshot point: the queued
	// submission's later events are never written.
	e := engine.New(p, engine.Config{Shards: 2, Persister: &faultPersister{inner: w, remaining: 3}})
	e.SubmitRegister("b1", 1000) // sub-000001; epoch -> events 1..3
	e.TriggerEpoch()
	queued := mustTicket(e.SubmitRegister("b2", 2000)) // sub-000002: queued
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	e.Stop() // queued reg's events hit the wedged persister and are lost
	w.Close()

	p2, e2, w2, _, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 2}, Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { e2.Stop(); w2.Close() }()
	if _, ok := e2.Ticket(queued); ok {
		t.Fatalf("ticket %s should not survive: its submission was never evented", queued)
	}
	if got := mustTicket(e2.SubmitRegister("b2", 2000)); got != queued {
		t.Fatalf("re-submission got ticket %s, want original %s", got, queued)
	}
	e2.TriggerEpoch()
	if tk, _ := e2.Ticket(queued); tk.Status != engine.TicketDone {
		t.Fatalf("re-driven registration failed: %+v", tk)
	}
	if !p2.Arbiter.Ledger.Exists("b2") {
		t.Fatal("re-driven registration not applied")
	}
}
