package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dod"
	"repro/internal/engine"
	"repro/internal/ledger"
	"repro/internal/license"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wtp"
)

// This file is the crash/replay determinism harness: a scripted workload is
// driven against an engine whose WAL persister is killed at chosen event
// seqs (epoch boundaries and mid-epoch), the engine is rebooted from the
// durable prefix, the lost suffix of the script is re-driven, and the final
// state must match an uninterrupted run — byte-identically for crashes at
// epoch boundaries, and identically modulo epoch numbering for mid-epoch
// crashes (re-driven work lands in later epochs, which is visible in epoch
// tags but in nothing else).

const testDesign = "posted-baseline"

// op is one scripted submission.
type op struct {
	kind  string // "register" | "share" | "request" | "report"
	name  string
	funds float64
	ds    string
	rows  int
	offer float64
	cols  []string
	// report: ref is the 0-based global index of the request op whose
	// settled transaction the report targets (resolved through its ticket,
	// so the script never hard-codes transaction IDs).
	ref      int
	reported float64
	trueVal  float64
	// share: valCol, when set, builds a keyed relation (k, valCol) instead of
	// the default (a, b) — datasets then cover only half a request's columns,
	// forcing joined multi-source mashups.
	valCol string
	// request: minSat overrides the 0.5 curve threshold, so half-coverage
	// single-source candidates price to zero and only the join sells.
	minSat float64
}

// script is the deterministic workload: epochs of ops covering
// registrations, shares, settling requests, a duplicate-registration
// rejection, a ghost-buyer rejection, sub-posted-price offers that stay
// open, and a permanently unmet request.
func script() [][]op {
	return [][]op{
		{ // epoch 1: funding registrations (one duplicate -> rejection)
			{kind: "register", name: "b1", funds: 5000},
			{kind: "register", name: "b2", funds: 8000},
			{kind: "register", name: "b1", funds: 100}, // duplicate
			{kind: "register", name: "b3", funds: 3000},
		},
		{ // epoch 2: first supply + first demand
			{kind: "share", name: "s1", ds: "s1/d0", rows: 20},
			{kind: "share", name: "s2", ds: "s2/d0", rows: 30},
			{kind: "request", name: "b1", offer: 150, cols: []string{"a", "b"}},
		},
		{ // epoch 3: more demand; one request no supply will ever cover
			{kind: "request", name: "b2", offer: 120, cols: []string{"a", "b"}},
			{kind: "request", name: "b3", offer: 110, cols: []string{"a", "b"}},
			{kind: "request", name: "b2", offer: 60, cols: []string{"never", "supplied"}},
		},
		{ // epoch 4: late supply, ghost buyer, late registration
			{kind: "share", name: "s1", ds: "s1/d1", rows: 25},
			{kind: "request", name: "ghost", offer: 10, cols: []string{"a", "b"}},
			{kind: "register", name: "b4", funds: 1500},
		},
		{ // epoch 5: a below-posted-price offer (stays open) and a match
			{kind: "request", name: "b4", offer: 80, cols: []string{"a", "b"}},
			{kind: "request", name: "b1", offer: 200, cols: []string{"a", "b"}},
		},
	}
}

// expostScript is the ex-post workload: deliveries against escrowed
// deposits, an under-reported value that may be audited, an honest report,
// and one delivery whose buyer never reports — its escrow must survive
// every crash, snapshot and reboot intact.
func expostScript() [][]op {
	return [][]op{
		{ // epoch 1: funding + supply
			{kind: "register", name: "b1", funds: 5000},
			{kind: "register", name: "b2", funds: 8000},
			{kind: "share", name: "s1", ds: "s1/d0", rows: 20},
		},
		{ // epoch 2: two ex-post deliveries (deposits escrowed)
			{kind: "request", name: "b1", offer: 300, cols: []string{"a", "b"}},
			{kind: "request", name: "b2", offer: 450, cols: []string{"a", "b"}},
		},
		{ // epoch 3: b1 under-reports; more supply arrives
			{kind: "report", ref: 3, reported: 250, trueVal: 320},
			{kind: "share", name: "s2", ds: "s2/d0", rows: 25},
		},
		{ // epoch 4: b2 reports honestly; two more deliveries — one whose
			// buyer never reports, one reported next epoch
			{kind: "report", ref: 4, reported: 440, trueVal: 440},
			{kind: "request", name: "b1", offer: 200, cols: []string{"a", "b"}},
			{kind: "request", name: "b2", offer: 220, cols: []string{"a", "b"}},
		},
		{ // epoch 5: a worthless-data report (clamps to zero, full refund)
			// and a late registration keeping a trailing epoch
			{kind: "report", ref: 9, reported: -60, trueVal: -60},
			{kind: "register", name: "b3", funds: 1000},
		},
	}
}

// joinScript is the sampled-pricing workload: every dataset carries the join
// key k plus ONE of the wanted value columns, so no single source satisfies a
// request and every settlement splits revenue across a 2-source joined mashup
// — the path where permutation-sampled Shapley (and its settlement-derived
// seeding) actually runs.
func joinScript() [][]op {
	return [][]op{
		{ // epoch 1: funding registrations
			{kind: "register", name: "b1", funds: 5000},
			{kind: "register", name: "b2", funds: 8000},
		},
		{ // epoch 2: split supply (a and b live in different datasets) + demand
			{kind: "share", name: "s1", ds: "s1/d0", rows: 20, valCol: "a"},
			{kind: "share", name: "s2", ds: "s2/d0", rows: 30, valCol: "b"},
			{kind: "request", name: "b1", offer: 150, cols: []string{"a", "b"}, minSat: 0.9},
		},
		{ // epoch 3: more joined demand; one request no supply will ever cover
			{kind: "request", name: "b2", offer: 120, cols: []string{"a", "b"}, minSat: 0.9},
			{kind: "request", name: "b2", offer: 60, cols: []string{"never", "supplied"}},
		},
		{ // epoch 4: a second a-provider (candidate multiplicity) + late buyer
			{kind: "share", name: "s3", ds: "s3/d0", rows: 25, valCol: "a"},
			{kind: "register", name: "b4", funds: 1500},
		},
		{ // epoch 5: a below-posted-price offer (stays open) and a match
			{kind: "request", name: "b4", offer: 80, cols: []string{"a", "b"}, minSat: 0.9},
			{kind: "request", name: "b1", offer: 200, cols: []string{"a", "b"}, minSat: 0.9},
		},
	}
}

// mustTicket unwraps a Submit* result for scripts with no admission control
// configured (where intake can never reject).
func mustTicket(id string, err error) string {
	if err != nil {
		panic(err)
	}
	return id
}

func scriptRelation(name string, rows int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindFloat)))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*2.5))
	}
	return r
}

// keyedRelation builds a relation with the shared join key k plus one named
// value column. Every row gets a distinct k — the metadata index drops join
// edges on columns below its MinDistinct cardinality floor.
func keyedRelation(name, valCol string, rows int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col(valCol, relation.KindFloat)))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*2.5))
	}
	return r
}

func submitOp(e *engine.Engine, o op) string {
	switch o.kind {
	case "register":
		return mustTicket(e.SubmitRegister(o.name, o.funds))
	case "share":
		rel := scriptRelation(o.ds, o.rows)
		if o.valCol != "" {
			rel = keyedRelation(o.ds, o.valCol, o.rows)
		}
		return mustTicket(e.SubmitShare(o.name, catalog.DatasetID(o.ds), rel,
			wtp.DatasetMeta{Dataset: o.ds, HasProvenance: true}, license.Terms{Kind: license.Open}))
	case "request":
		want := dod.Want{Columns: o.cols}
		minSat := o.minSat
		if minSat == 0 {
			minSat = 0.5
		}
		f := &wtp.Function{
			Buyer: o.name,
			Task:  wtp.CoverageTask{Columns: o.cols, WantRows: 1},
			Curve: []wtp.CurvePoint{{MinSatisfaction: minSat, Price: o.offer}},
		}
		return mustTicket(e.SubmitRequest(want, f))
	case "report":
		tk, _ := e.Ticket(expectedTicket(o.ref))
		if tk.TxID == "" {
			// Re-driving after a crash that lost the delivery but kept the
			// filing: the open request settles at the next counted epoch, so
			// flush one before the report can address its transaction.
			e.TriggerEpoch()
			tk, _ = e.Ticket(expectedTicket(o.ref))
		}
		if tk.TxID == "" {
			panic(fmt.Sprintf("report ref %d has no settled transaction", o.ref))
		}
		return mustTicket(e.SubmitReport(tk.TxID, o.reported, o.trueVal))
	}
	panic("unknown op kind " + o.kind)
}

// expectedTicket is the ticket ID the k-th submission (0-based, global
// script order) receives — deterministic because the engine's submission
// counter is restored from the durable log on reboot.
func expectedTicket(k int) string { return fmt.Sprintf("sub-%06d", k+1) }

// faultPersister forwards to the real WAL until `remaining` events have been
// persisted, then fails forever — simulating a crash at an exact event seq.
// The engine's event log wedges on the first error, so the durable log is a
// clean prefix.
type faultPersister struct {
	inner     engine.Persister
	remaining int
}

func (f *faultPersister) Persist(ev engine.Event) error {
	if f.remaining <= 0 {
		return fmt.Errorf("injected crash at seq %d", ev.Seq)
	}
	f.remaining--
	return f.inner.Persist(ev)
}

// driveAll submits every scripted op in order, triggering one epoch per
// group, and asserts ticket IDs land as expected.
func driveAll(t *testing.T, e *engine.Engine, sc [][]op) {
	t.Helper()
	k := 0
	for _, epoch := range sc {
		for _, o := range epoch {
			if got, want := submitOp(e, o), expectedTicket(k); got != want {
				t.Fatalf("submission %d got ticket %s, want %s", k, got, want)
			}
			k++
		}
		e.TriggerEpoch()
	}
}

// redrive completes the script against a rebooted engine: ops whose tickets
// survived in the durable log are skipped, lost ones are resubmitted (and
// must receive their original ticket IDs). Epochs re-trigger only from the
// first incomplete one — triggering a fully durable epoch again would clear
// later requests earlier than the original run did. A fully durable group
// that still holds applied-but-open request tickets lost its settlement
// records to the crash; a flush epoch settles them before any later group
// resubmits, so re-driven filings see the same request/transaction ID
// sequence the baseline assigned (genuinely open requests match nothing in
// the flush, which therefore does not count an epoch). A final trigger
// flushes whatever the last group left pending.
func redrive(t *testing.T, e *engine.Engine, sc [][]op) {
	t.Helper()
	k := 0
	triggering := false
	for _, epoch := range sc {
		openInGroup := false
		for _, o := range epoch {
			id := expectedTicket(k)
			k++
			if tk, ok := e.Ticket(id); ok && (tk.Status.Terminal() || tk.Status == engine.TicketApplied) {
				if tk.Status == engine.TicketApplied {
					openInGroup = true
				}
				continue // durable: already applied or terminally failed
			}
			if got := submitOp(e, o); got != id {
				t.Fatalf("re-driven submission got ticket %s, want %s", got, id)
			}
			triggering = true
		}
		if triggering || openInGroup {
			e.TriggerEpoch()
		}
	}
	e.TriggerEpoch()
}

// fingerprint canonicalizes the externally observable state of a platform +
// engine pair: balances, catalog (including the data), open requests on both
// layers, ID counters, tickets, the settlement book, and history. With
// withEpochs=false every epoch tag is scrubbed — the only field re-driven
// work is allowed to move.
func fingerprint(t *testing.T, p *core.Platform, e *engine.Engine, withEpochs bool) []byte {
	t.Helper()
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("snapshot for fingerprint: %v", err)
	}
	snap.TakenAt = time.Time{}
	if !withEpochs {
		snap.Epoch = 0
		snap.TakenAtSeq = 0
		for i := range snap.Tickets {
			snap.Tickets[i].Epoch = 0
			snap.Tickets[i].MatchedEpoch = 0
		}
		for i := range snap.Settles {
			snap.Settles[i].Epoch = 0
		}
		if snap.Policy != nil {
			// Re-driven filings land in later epochs at later event seqs;
			// like the epoch tags, the filing coordinates are the only
			// policy fields mid-epoch crashes may move.
			for i := range snap.Policy.Requests {
				snap.Policy.Requests[i].FiledEpoch = 0
				snap.Policy.Requests[i].FiledSeq = 0
			}
		}
		// Demand signals commit with the epoch-end record; a torn epoch
		// loses its round's increments (and a re-driven run may count a
		// different number of rounds), so they are only byte-comparable at
		// epoch boundaries.
		snap.Platform.Unmet = nil
	}
	var history []string
	for _, tx := range p.Arbiter.History() {
		history = append(history, fmt.Sprintf("%s/%s/%s/%.2f", tx.ID, tx.RequestID, tx.Buyer, tx.Price))
	}
	out, err := json.MarshalIndent(struct {
		Snap      *engine.SnapshotState
		History   []string
		Supply    ledger.Currency
		Conserved bool
	}{snap, history, p.Arbiter.Ledger.TotalSupply(), e.Settlements().Conserved()}, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runUninterrupted drives the full script against a WAL-backed engine with
// no fault and returns the platform, engine and the closed WAL's directory.
func runUninterrupted(t *testing.T, platOpts core.Options, sc [][]op, policy SyncPolicy) (*core.Platform, *engine.Engine, string) {
	t.Helper()
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(platOpts)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 4, Persister: w})
	driveAll(t, e, sc)
	e.Stop()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, perr := e.Log().Persisted(); perr != nil {
		t.Fatalf("uninterrupted run wedged its persister: %v", perr)
	}
	return p, e, dir
}

// crashMatrix computes the uninterrupted baseline for one design + script,
// then crashes the persister at every epoch boundary (strong assertion:
// byte-identical state, epochs included) and at mid-epoch seqs — including
// every seq around settlement records (tx-settled and value-reported), so
// a crash between a settlement's WAL append and the surrounding records is
// always exercised — reboots from the durable prefix and re-drives the lost
// part of the script (epoch-insensitive assertion).
// workers > 0 runs the crashed and rebooted engines with the async DoD
// builder pool enabled while the baseline stays synchronous — so the
// byte-identical assertions double as proof that worker-built candidates
// change no outcome. telemetry runs them with a live obs registry on both
// the engine and the WAL (the baseline stays uninstrumented), proving
// metrics are derived state that never leaks into replayed bytes. deadline
// > 0 runs them with supervised builds (Config.BuildDeadline) enabled while
// the baseline stays unbounded: a deadline generous enough that no build in
// this workload ever trips it must leave every replayed byte untouched.
func crashMatrix(t *testing.T, platOpts core.Options, sc [][]op, policy SyncPolicy, workers int, telemetry bool, deadline time.Duration) {
	t.Helper()
	basePlat, baseEng, _ := runUninterrupted(t, platOpts, sc, policy)
	baseStrong := fingerprint(t, basePlat, baseEng, true)
	baseWeak := fingerprint(t, basePlat, baseEng, false)
	baseSupply := basePlat.Arbiter.Ledger.TotalSupply()

	// Crash points from the baseline's event stream: every epoch-end seq is
	// a boundary; seqs just inside an epoch and around every settlement
	// record check the mid-epoch story. 0 = nothing durable at all.
	events := baseEng.Events(0)
	var boundaries []int
	var interesting []int
	for _, ev := range events {
		if ev.Kind == engine.EventEpochEnd {
			boundaries = append(boundaries, ev.Seq)
		}
		if ev.Kind == engine.EventTxSettled || ev.Kind == engine.EventValueReported {
			interesting = append(interesting, ev.Seq-1, ev.Seq, ev.Seq+1)
		}
	}
	if len(boundaries) != len(sc) {
		t.Fatalf("baseline ran %d epochs, want %d", len(boundaries), len(sc))
	}
	isBoundary := map[int]bool{0: true}
	seen := map[int]bool{0: true}
	crashPoints := []int{0}
	for _, b := range boundaries {
		isBoundary[b] = true
		seen[b] = true
		crashPoints = append(crashPoints, b)
	}
	for _, b := range boundaries {
		interesting = append(interesting, b-1, b+2)
	}
	for _, mid := range interesting {
		if mid > 0 && mid < len(events) && !seen[mid] {
			seen[mid] = true
			crashPoints = append(crashPoints, mid)
		}
	}

	for _, crashAfter := range crashPoints {
		name := fmt.Sprintf("crash@%d", crashAfter)
		if isBoundary[crashAfter] {
			name += "-boundary"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			var reg *obs.Registry
			if telemetry {
				reg = obs.NewRegistry()
			}
			w, err := Open(Options{Dir: dir, Policy: policy, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			p, err := core.NewPlatform(platOpts)
			if err != nil {
				t.Fatal(err)
			}
			e := engine.New(p, engine.Config{Shards: 4, DoDWorkers: workers, Metrics: reg,
				BuildDeadline: deadline,
				Persister:     &faultPersister{inner: w, remaining: crashAfter}})
			driveAll(t, e, sc)
			if crashAfter < len(events) {
				if _, perr := e.Log().Persisted(); perr == nil {
					t.Fatal("fault persister never fired")
				}
			}
			e.Stop()
			w.Close()

			// Reboot from the durable prefix and finish the script. A fresh
			// registry: metrics are derived state, rebuilt like any other view.
			var reg2 *obs.Registry
			if telemetry {
				reg2 = obs.NewRegistry()
			}
			p2, e2, w2, res, err := Boot(platOpts,
				engine.Config{Shards: 4, DoDWorkers: workers, Metrics: reg2, BuildDeadline: deadline},
				Options{Dir: dir, Policy: policy, Metrics: reg2})
			if err != nil {
				t.Fatalf("boot: %v", err)
			}
			defer w2.Close()
			if res.Recovered != crashAfter {
				t.Fatalf("recovered %d events, want %d durable", res.Recovered, crashAfter)
			}
			if got := p2.Arbiter.Ledger.TotalSupply(); got > baseSupply {
				t.Fatalf("money created by replay: supply %v > baseline %v", got, baseSupply)
			}
			redrive(t, e2, sc)
			e2.Stop()

			if isBoundary[crashAfter] {
				got := fingerprint(t, p2, e2, true)
				if string(got) != string(baseStrong) {
					t.Fatalf("epoch-boundary crash diverged from uninterrupted run:\n--- baseline\n%s\n--- restarted\n%s", baseStrong, got)
				}
			} else {
				got := fingerprint(t, p2, e2, false)
				if string(got) != string(baseWeak) {
					t.Fatalf("mid-epoch crash diverged (epoch-insensitive):\n--- baseline\n%s\n--- restarted\n%s", baseWeak, got)
				}
			}
			// Escrow conservation: balances plus escrowed deposits add up to
			// exactly the baseline supply once the script is complete.
			if got := p2.Arbiter.Ledger.TotalSupply(); got != baseSupply {
				t.Fatalf("supply diverged after redrive: %v, want %v", got, baseSupply)
			}
			if i := p2.Arbiter.Ledger.VerifyChain(); i >= 0 {
				t.Fatalf("audit chain corrupted at entry %d after replay", i)
			}
			if !e2.Settlements().Conserved() {
				t.Fatal("settlement conservation violated after replay")
			}
			// Prove telemetry was actually live while the bytes stayed
			// identical: the rebooted registry scraped real activity.
			if telemetry {
				var sb strings.Builder
				if err := reg2.WritePrometheus(&sb); err != nil {
					t.Fatal(err)
				}
				for _, fam := range []string{"engine_epochs_total", "engine_matched_total", "wal_bytes_written_total"} {
					if !strings.Contains(sb.String(), fam) {
						t.Errorf("family %s missing from rebooted registry", fam)
					}
				}
			}
		})
	}
}

// TestCrashReplayDeterminism is the crash/replay harness, table-driven over
// fsync policies on the up-front (posted-price) script.
func TestCrashReplayDeterminism(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncEpoch, SyncOff} {
		t.Run(string(policy), func(t *testing.T) {
			crashMatrix(t, core.Options{Design: testDesign}, script(), policy, 0, false, 0)
		})
	}
	// The pipelined-epoch variant: crashed and rebooted engines build
	// mashups on the async DoD worker pool; state must still match the
	// synchronous baseline byte for byte.
	t.Run("epoch-dod-workers", func(t *testing.T) {
		crashMatrix(t, core.Options{Design: testDesign}, script(), SyncEpoch, 2, false, 0)
	})
	// The telemetry variant: crashed and rebooted engines run with a live
	// metrics registry on engine and WAL while the baseline stays
	// uninstrumented — byte-identical fingerprints prove metrics are derived
	// state that never reaches the log.
	t.Run("telemetry", func(t *testing.T) {
		crashMatrix(t, core.Options{Design: testDesign}, script(), SyncEpoch, 2, true, 0)
	})
	// The supervised-builds variant: crashed and rebooted engines run with
	// workers AND a per-group build deadline while the baseline stays
	// unbounded — deadlines are derived-state plumbing that must never reach
	// a replayed byte.
	t.Run("build-deadline", func(t *testing.T) {
		crashMatrix(t, core.Options{Design: testDesign}, script(), SyncEpoch, 2, false, 2*time.Second)
	})
	// The sampled-pricing variant: every engine in the matrix (baseline,
	// crashed, rebooted) prices through the permutation-sampled allocator
	// (ExactMax 1 forces sampling even for 2-player games) over the
	// joinScript workload, whose settlements all split revenue across
	// 2-source joined mashups. Byte-identical fingerprints — the snapshot
	// embeds every settlement's SellerCuts — prove the sampler's
	// settlement-identity seeding replays exactly through crashes, reboots
	// and re-driven epochs.
	t.Run("sampled-pricing", func(t *testing.T) {
		opts := core.Options{Design: testDesign,
			Allocator: market.AdaptiveShapley{ExactMax: 1, TargetErr: 0.02}}
		crashMatrix(t, opts, joinScript(), SyncEpoch, 2, false, 0)
	})
}

// TestExPostCrashReplayDeterminism runs the crash matrix over the ex-post
// design: deliveries escrow deposits, value reports settle them through the
// durable log, and one escrow stays pending to the end. Crash points cover
// every epoch boundary and every seq around the value-reported records —
// the "persister dies between the report's append and the next apply"
// story — and the matrix asserts escrow conservation and byte-identical
// settlement streams (the fingerprint embeds the settlement book) across
// every reboot.
func TestExPostCrashReplayDeterminism(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncEpoch} {
		t.Run(string(policy), func(t *testing.T) {
			crashMatrix(t, core.Options{Design: "expost-audited"}, expostScript(), policy, 0, false, 0)
		})
	}
	t.Run("epoch-dod-workers", func(t *testing.T) {
		crashMatrix(t, core.Options{Design: "expost-audited"}, expostScript(), SyncEpoch, 2, false, 0)
	})
	t.Run("telemetry", func(t *testing.T) {
		crashMatrix(t, core.Options{Design: "expost-audited"}, expostScript(), SyncEpoch, 2, true, 0)
	})
	t.Run("build-deadline", func(t *testing.T) {
		crashMatrix(t, core.Options{Design: "expost-audited"}, expostScript(), SyncEpoch, 2, false, 2*time.Second)
	})
}

// TestCleanRestartIsByteIdentical: a full run, a clean shutdown, a reboot
// from the WAL with nothing to re-drive — the strongest determinism claim.
func TestCleanRestartIsByteIdentical(t *testing.T) {
	basePlat, baseEng, dir := runUninterrupted(t, core.Options{Design: testDesign}, script(), SyncEpoch)
	baseStrong := fingerprint(t, basePlat, baseEng, true)

	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Recovered == 0 || res.Replayed != res.Recovered {
		t.Fatalf("unexpected recovery stats: %+v", res)
	}
	e2.Stop()
	if got := fingerprint(t, p2, e2, true); string(got) != string(baseStrong) {
		t.Fatalf("clean restart diverged:\n--- baseline\n%s\n--- restarted\n%s", baseStrong, got)
	}
}

// TestSnapshotRestartIsByteIdentical checkpoints mid-script, finishes the
// run, reboots — recovery must start from the snapshot, replay only the
// tail, and still match the uninterrupted state byte for byte.
func TestSnapshotRestartIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 4, Persister: w})

	sc := script()
	k := 0
	for i, epoch := range sc {
		for _, o := range epoch {
			submitOp(e, o)
			k++
		}
		e.TriggerEpoch()
		if i == 2 { // checkpoint after epoch 3
			snap, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := WriteSnapshot(dir, snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.Stop()
	w.Close()
	baseStrong := fingerprint(t, p, e, true)

	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncEpoch})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.FromSnapshotSeq == 0 {
		t.Fatal("boot ignored the snapshot")
	}
	if res.Replayed >= res.Recovered {
		t.Fatalf("snapshot did not shorten replay: %+v", res)
	}
	e2.Stop()
	if got := fingerprint(t, p2, e2, true); string(got) != string(baseStrong) {
		t.Fatalf("snapshot restart diverged:\n--- baseline\n%s\n--- restarted\n%s", baseStrong, got)
	}

	// Cursors must resume gap-free even though state came from the snapshot:
	// the full event history is still served.
	evs := e2.Events(0)
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d after snapshot boot", i, ev.Seq)
		}
	}
}

// TestBootTruncatesCorruptTail: a bit-flipped final record must not be fatal
// on boot — the reader truncates it and the lost suffix can be re-driven.
func TestBootTruncatesCorruptTail(t *testing.T) {
	basePlat, baseEng, dir := runUninterrupted(t, core.Options{Design: testDesign}, script(), SyncAlways)
	baseWeak := fingerprint(t, basePlat, baseEng, false)

	segs, err := segmentFiles(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	path := filepath.Join(dir, segs[len(segs)-1])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff // flip a byte inside the final record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatalf("boot over corrupt tail: %v", err)
	}
	defer w2.Close()
	if res.Recovered != baseEng.Log().LastSeq()-1 {
		t.Fatalf("recovered %d events, want %d (one truncated)", res.Recovered, baseEng.Log().LastSeq()-1)
	}
	redrive(t, e2, script())
	e2.Stop()
	if got := fingerprint(t, p2, e2, false); string(got) != string(baseWeak) {
		t.Fatalf("corrupt-tail reboot diverged:\n--- baseline\n%s\n--- restarted\n%s", baseWeak, got)
	}
}

// TestBootArchivesStaleLogBehindSnapshot: a snapshot can outlive the WAL
// records it covers (crash under fsync=off loses the unsynced suffix). Boot
// must not reuse sequence numbers the checkpoint covers: the stale segments
// are archived, the state comes from the snapshot alone, and new appends
// continue at the watermark — still recoverable on a second boot.
func TestBootArchivesStaleLogBehindSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 4, Persister: w})
	driveAll(t, e, script())
	e.Stop()
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Simulate the fsync=off crash: chop the tail off the last segment so
	// the log ends well short of the snapshot watermark.
	segs, _ := segmentFiles(dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	p2, e2, w2, res, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncOff})
	if err != nil {
		t.Fatalf("boot over stale log: %v", err)
	}
	if res.FromSnapshotSeq != snap.TakenAtSeq || res.Recovered != 0 {
		t.Fatalf("want snapshot-only recovery, got %+v", res)
	}
	if got := e2.Log().LastSeq(); got != snap.TakenAtSeq {
		t.Fatalf("log resumes at seq %d, want watermark %d", got, snap.TakenAtSeq)
	}
	if w2.LastSeq() != snap.TakenAtSeq {
		t.Fatalf("WAL cursor at %d, want watermark %d", w2.LastSeq(), snap.TakenAtSeq)
	}

	// New work gets post-watermark seqs and survives another restart.
	reg := mustTicket(e2.SubmitRegister("b9", 700))
	e2.TriggerEpoch()
	if tk, _ := e2.Ticket(reg); tk.Status != engine.TicketDone {
		t.Fatalf("post-archive registration failed: %+v", tk)
	}
	e2.Stop()
	w2.Close()
	after := e2.Log().LastSeq()
	if after <= snap.TakenAtSeq {
		t.Fatalf("no post-watermark events appended (seq %d)", after)
	}

	p3, e3, w3, res3, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 4}, Options{Dir: dir, Policy: SyncOff})
	if err != nil {
		t.Fatalf("second boot: %v", err)
	}
	defer func() { e3.Stop(); w3.Close() }()
	if res3.Replayed == 0 {
		t.Fatalf("second boot replayed nothing: %+v", res3)
	}
	if !p3.Arbiter.Ledger.Exists("b9") {
		t.Fatal("post-watermark registration lost on second boot")
	}
	if got := e3.Log().LastSeq(); got != after {
		t.Fatalf("second boot log ends at %d, want %d", got, after)
	}
	_ = p2
}

// TestSnapshotRefusedWhenWedged: a checkpoint must never claim seqs the WAL
// does not hold, so a wedged persister makes Snapshot fail.
func TestSnapshotRefusedWhenWedged(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 2,
		Persister: &faultPersister{inner: w, remaining: 2}})
	defer e.Stop()
	e.SubmitRegister("b1", 100)
	e.SubmitRegister("b2", 100)
	e.TriggerEpoch() // >2 events: the persister wedges mid-epoch
	if _, perr := e.Log().Persisted(); perr == nil {
		t.Fatal("persister should be wedged")
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("snapshot on a wedged engine must be refused")
	}
}

// TestSnapshotCarriesExPostEscrow: a checkpoint taken while ex-post
// settlements are pending serializes the escrowed deposits (it used to be
// refused outright); a boot from that snapshot restores the escrow exactly
// — money conserved to the micro-unit — and the buyer's later async report
// settles against the restored escrow as if the process never restarted.
func TestSnapshotCarriesExPostEscrow(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: "expost-audited"})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 2, Persister: w})
	mustTicket(e.SubmitRegister("b1", 5000))
	mustTicket(e.SubmitShare("s1", "s1/d0", scriptRelation("s1/d0", 20),
		wtp.DatasetMeta{Dataset: "s1/d0", HasProvenance: true}, license.Terms{Kind: license.Open}))
	e.TriggerEpoch()
	mustTicket(e.SubmitRequest(dod.Want{Columns: []string{"a", "b"}}, &wtp.Function{
		Buyer: "b1",
		Task:  wtp.CoverageTask{Columns: []string{"a", "b"}, WantRows: 1},
		Curve: []wtp.CurvePoint{{MinSatisfaction: 0.5, Price: 600}},
	}))
	e.TriggerEpoch()
	if p.Arbiter.PendingExPostCount() != 1 {
		t.Fatalf("expected 1 pending ex-post settlement, have %d", p.Arbiter.PendingExPostCount())
	}
	var txID string
	for _, ev := range e.Events(0) {
		if ev.Kind == engine.EventTxSettled {
			txID = ev.TxID
		}
	}
	deposit := p.Arbiter.Ledger.Escrowed(txID)
	if deposit == 0 {
		t.Fatalf("no escrow held for %s", txID)
	}
	supply := p.Arbiter.Ledger.TotalSupply()

	// The checkpoint must succeed with the deposit outstanding and carry it.
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("snapshot with pending ex-post escrow refused: %v", err)
	}
	if len(snap.Platform.PendingExPost) != 1 || snap.Platform.PendingExPost[0].Deposit != deposit {
		t.Fatalf("snapshot escrow capture wrong: %+v", snap.Platform.PendingExPost)
	}
	if _, err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	w.Close()
	baseStrong := fingerprint(t, p, e, true)

	p2, e2, w2, res, err := Boot(core.Options{Design: "expost-audited"},
		engine.Config{Shards: 2}, Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatalf("boot with pending escrow: %v", err)
	}
	defer w2.Close()
	if res.FromSnapshotSeq == 0 {
		t.Fatal("boot ignored the snapshot")
	}
	if got := p2.Arbiter.Ledger.Escrowed(txID); got != deposit {
		t.Fatalf("escrow restored as %v, want %v", got, deposit)
	}
	if got := p2.Arbiter.Ledger.TotalSupply(); got != supply {
		t.Fatalf("supply after restore %v, want %v", got, supply)
	}
	if got := fingerprint(t, p2, e2, true); string(got) != string(baseStrong) {
		t.Fatalf("escrow-carrying snapshot boot diverged:\n--- baseline\n%s\n--- restarted\n%s", baseStrong, got)
	}

	// The report settles against the restored escrow through the async path.
	rt := mustTicket(e2.SubmitReport(txID, 480, 480))
	e2.TriggerEpoch()
	tk, _ := e2.Ticket(rt)
	if tk.Status != engine.TicketDone || tk.Price <= 0 {
		t.Fatalf("report on restored escrow failed: %+v", tk)
	}
	if p2.Arbiter.PendingExPostCount() != 0 || p2.Arbiter.Ledger.Escrowed(txID) != 0 {
		t.Fatal("escrow not cleared by the report")
	}
	if got := p2.Arbiter.Ledger.TotalSupply(); got != supply {
		t.Fatalf("supply after report %v, want %v", got, supply)
	}
	e2.Stop()
	if !e2.Settlements().Conserved() {
		t.Fatal("settlement conservation violated after report")
	}
}

// TestSnapshotExcludesQueuedIntake: a submission still queued at checkpoint
// time has no events and is not durable; the snapshot must exclude both its
// ticket and its seq so a post-restore re-submission gets the original
// ticket ID back.
func TestSnapshotExcludesQueuedIntake(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(p, engine.Config{Shards: 2, Persister: w})
	first := mustTicket(e.SubmitRegister("b1", 1000)) // sub-000001
	e.TriggerEpoch()
	queued := mustTicket(e.SubmitRegister("b2", 2000)) // sub-000002: queued, no epoch yet

	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range snap.Tickets {
		if tk.ID == queued {
			t.Fatalf("queued ticket %s leaked into the snapshot", queued)
		}
	}
	if snap.SubmitSeq != 1 {
		t.Fatalf("snapshot submit seq %d counts queued intake, want 1", snap.SubmitSeq)
	}
	if _, err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	e.Stop() // flushes the queued registration — but the snapshot predates it
	w.Close()

	p2, e2, w2, _, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 2}, Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { e2.Stop(); w2.Close() }()
	if tk, ok := e2.Ticket(first); !ok || tk.Status != engine.TicketDone {
		t.Fatalf("evented ticket lost: %v", tk)
	}
	// b2's registration WAS evented after the snapshot (Stop's final
	// epoch), so the full-WAL boot replays it; its ticket resolves and is
	// terminal — never stuck "queued".
	if tk, ok := e2.Ticket(queued); ok && tk.Status == engine.TicketQueued {
		t.Fatalf("restored ticket stuck queued: %+v", tk)
	}
	_ = p2
}

// TestSnapshotQueuedResubmissionKeepsTicketID: when the queued submission's
// events never made it to disk at all, the restored engine hands the
// re-submission the original ticket ID.
func TestSnapshotQueuedResubmissionKeepsTicketID(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: testDesign})
	if err != nil {
		t.Fatal(err)
	}
	// The persister dies right after the snapshot point: the queued
	// submission's later events are never written.
	e := engine.New(p, engine.Config{Shards: 2, Persister: &faultPersister{inner: w, remaining: 3}})
	e.SubmitRegister("b1", 1000) // sub-000001; epoch -> events 1..3
	e.TriggerEpoch()
	queued := mustTicket(e.SubmitRegister("b2", 2000)) // sub-000002: queued
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	e.Stop() // queued reg's events hit the wedged persister and are lost
	w.Close()

	p2, e2, w2, _, err := Boot(core.Options{Design: testDesign},
		engine.Config{Shards: 2}, Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { e2.Stop(); w2.Close() }()
	if _, ok := e2.Ticket(queued); ok {
		t.Fatalf("ticket %s should not survive: its submission was never evented", queued)
	}
	if got := mustTicket(e2.SubmitRegister("b2", 2000)); got != queued {
		t.Fatalf("re-submission got ticket %s, want original %s", got, queued)
	}
	e2.TriggerEpoch()
	if tk, _ := e2.Ticket(queued); tk.Status != engine.TicketDone {
		t.Fatalf("re-driven registration failed: %+v", tk)
	}
	if !p2.Arbiter.Ledger.Exists("b2") {
		t.Fatal("re-driven registration not applied")
	}
}
