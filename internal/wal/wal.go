package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// SyncPolicy selects when appended records are fsynced. See the package
// documentation for the trade-offs.
type SyncPolicy string

// Sync policies.
const (
	SyncAlways SyncPolicy = "always"
	SyncEpoch  SyncPolicy = "epoch"
	SyncOff    SyncPolicy = "off"
)

// ParseSyncPolicy validates a policy label (e.g. from a -fsync flag).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncEpoch, SyncOff:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want always, epoch or off)", s)
}

// Options configures a WAL.
type Options struct {
	// Dir holds the segment and snapshot files; created if absent.
	Dir string
	// Policy is the fsync policy (default SyncEpoch).
	Policy SyncPolicy
	// SegmentBytes rotates to a fresh segment once the current one exceeds
	// this size (default 4 MiB).
	SegmentBytes int64
	// Metrics, when non-nil, receives the WAL's telemetry: append/fsync
	// latency histograms, segment-count gauge, bytes-written and
	// recovery-truncation counters. Observability only — never affects
	// what is written or recovered.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Policy == "" {
		o.Policy = SyncEpoch
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Log is an open, appendable WAL. It implements engine.Persister; attach it
// via engine.Config.Persister. Safe for concurrent use, though the engine's
// event log already serializes appends.
type Log struct {
	opt Options

	mu       sync.Mutex
	f        *os.File
	curName  string // name of the active append segment
	segBytes int64
	lastSeq  int
	err      error // sticky: first append/sync failure wedges the log

	// telemetry (nil-safe no-ops when Options.Metrics is unset)
	mAppend   *obs.Histogram
	mFsync    *obs.Histogram
	mSegments *obs.Gauge
	mBytes    *obs.Counter
}

// initMetrics registers the WAL families and seeds the segment gauge.
func (w *Log) initMetrics(reg *obs.Registry, segments, truncations int) {
	if reg == nil {
		return
	}
	w.mAppend = reg.NewHistogram("wal_append_seconds",
		"Latency of framing and writing one record to the active segment.", obs.FastBuckets)
	w.mFsync = reg.NewHistogram("wal_fsync_seconds",
		"Latency of each fsync of the active segment.", obs.FastBuckets)
	w.mSegments = reg.NewGauge("wal_segments",
		"Live WAL segments on disk (including the active append segment).")
	w.mBytes = reg.NewCounter("wal_bytes_written_total",
		"Bytes appended to WAL segments since open.")
	reg.NewCounter("wal_recovery_truncations_total",
		"Torn tails truncated during recovery scans.").Add(float64(truncations))
	w.mSegments.Set(float64(segments))
}

func segmentName(firstSeq int) string { return fmt.Sprintf("wal-%010d.seg", firstSeq) }

// syncDir fsyncs a directory so freshly created or renamed entries survive a
// power loss (file-content fsync alone does not make the directory entry
// durable on ext4/xfs).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// segmentFiles lists the WAL segments in dir, sorted by name (== first seq,
// thanks to the zero padding).
func segmentFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// Load reads every valid event from the WAL in dir: segments in order, each
// decoded up to its valid prefix. A torn or corrupt record ends the log —
// whatever was durably written before it is returned, never an error.
// A missing or empty directory yields an empty log.
func Load(dir string) ([]engine.Event, error) {
	segs, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	var events []engine.Event
	wantNext := 0
	for _, name := range segs {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		evs, valid := DecodeAll(raw, wantNext)
		events = append(events, evs...)
		if valid < len(raw) {
			// Torn tail: the valid prefix ends here; later segments are
			// beyond it and cannot be contiguous.
			break
		}
		if len(evs) > 0 {
			wantNext = evs[len(evs)-1].Seq + 1
		}
	}
	return events, nil
}

// Open prepares the WAL in opts.Dir for appending: scans existing segments,
// truncates any torn tail off the last valid one, removes segments beyond
// the valid prefix, and positions the append cursor after the last durable
// record. The returned Log expects the next Persist to carry seq LastSeq()+1.
func Open(opts Options) (*Log, error) {
	w, _, err := openScan(opts)
	return w, err
}

// openScan is Open plus the decoded events — Boot uses it so recovery reads
// each segment exactly once.
func openScan(opts Options) (*Log, []engine.Event, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := segmentFiles(opts.Dir)
	if err != nil {
		return nil, nil, err
	}

	w := &Log{opt: opts}
	var events []engine.Event
	appendTo := "" // segment to continue appending into
	var appendSize int64
	wantNext := 0
	liveSegs := len(segs)
	truncations := 0
	for i, name := range segs {
		path := filepath.Join(opts.Dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		evs, valid := DecodeAll(raw, wantNext)
		events = append(events, evs...)
		if len(evs) > 0 {
			w.lastSeq = evs[len(evs)-1].Seq
			wantNext = w.lastSeq + 1
		}
		if valid < len(raw) {
			// Torn tail: truncate to the valid prefix and drop everything
			// beyond it.
			truncations++
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
			}
			for _, later := range segs[i+1:] {
				if err := os.Remove(filepath.Join(opts.Dir, later)); err != nil {
					return nil, nil, fmt.Errorf("wal: drop segment %s beyond valid prefix: %w", later, err)
				}
			}
			appendTo, appendSize = name, int64(valid)
			liveSegs = i + 1
			break
		}
		appendTo, appendSize = name, int64(valid)
	}

	if appendTo == "" {
		appendTo = segmentName(w.lastSeq + 1)
		appendSize = 0
		liveSegs = 1
	}
	f, err := os.OpenFile(filepath.Join(opts.Dir, appendTo), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := syncDir(opts.Dir); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.f = f
	w.curName = appendTo
	w.segBytes = appendSize
	w.initMetrics(opts.Metrics, liveSegs, truncations)
	return w, events, nil
}

// archiveCoveredSegments renames every segment to <name>.covered[.N],
// taking it out of the WAL's sight while preserving it for forensics. Used
// when a snapshot supersedes records the log lost (fsync=off crash, wedged
// persister): the stale prefix would otherwise collide with seqs the
// checkpoint already covers. Archive names never overwrite an earlier
// archive from a previous cycle.
func archiveCoveredSegments(dir string) error {
	segs, err := segmentFiles(dir)
	if err != nil {
		return err
	}
	for _, name := range segs {
		path := filepath.Join(dir, name)
		dst := path + ".covered"
		for n := 1; ; n++ {
			if _, err := os.Stat(dst); os.IsNotExist(err) {
				break
			}
			dst = fmt.Sprintf("%s.covered.%d", path, n)
		}
		if err := os.Rename(path, dst); err != nil {
			return fmt.Errorf("wal: archive stale segment %s: %w", name, err)
		}
	}
	return nil
}

// LastSeq returns the seq of the last durably appended record.
func (w *Log) LastSeq() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// SkipTo advances the append cursor without writing: the records up to seq
// are covered by a snapshot and their segments were pruned. It only ever
// moves forward.
func (w *Log) SkipTo(seq int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq > w.lastSeq {
		w.lastSeq = seq
	}
}

// Persist implements engine.Persister: frame, append, and fsync per policy.
// Appends must arrive in seq order with no gaps; a violation (or any write
// error) wedges the log and every later Persist returns the same error.
func (w *Log) Persist(ev engine.Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if ev.Seq != w.lastSeq+1 {
		w.err = fmt.Errorf("wal: out-of-order append: seq %d after %d", ev.Seq, w.lastSeq)
		return w.err
	}
	var start time.Time
	if w.mAppend != nil {
		start = time.Now()
	}
	rec, err := encodeEvent(ev)
	if err != nil {
		w.err = err
		return err
	}
	if _, err := w.f.Write(rec); err != nil {
		w.err = err
		return err
	}
	if w.mAppend != nil {
		w.mAppend.Observe(time.Since(start).Seconds())
		w.mBytes.Add(float64(len(rec)))
	}
	w.segBytes += int64(len(rec))
	w.lastSeq = ev.Seq

	switch w.opt.Policy {
	case SyncAlways:
		err = w.timedSync()
	case SyncEpoch:
		if ev.Kind == engine.EventEpochEnd {
			err = w.timedSync()
		}
	}
	if err != nil {
		w.err = err
		return err
	}
	if w.segBytes >= w.opt.SegmentBytes {
		if err := w.rotate(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// timedSync fsyncs the active segment, feeding the fsync-latency histogram.
// Caller holds w.mu.
func (w *Log) timedSync() error {
	if w.mFsync == nil {
		return w.f.Sync()
	}
	start := time.Now()
	err := w.f.Sync()
	w.mFsync.Observe(time.Since(start).Seconds())
	return err
}

// rotate seals the current segment and opens the next. Caller holds w.mu.
func (w *Log) rotate() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	name := segmentName(w.lastSeq + 1)
	f, err := os.OpenFile(filepath.Join(w.opt.Dir, name),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(w.opt.Dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.curName = name
	w.segBytes = 0
	w.mSegments.Add(1)
	return nil
}

// segmentFirstSeq parses the first-record seq a segment name encodes
// ("wal-%010d.seg"); 0 when the name is malformed.
func segmentFirstSeq(name string) int {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}

// PruneCovered removes sealed WAL segments made fully redundant by a
// snapshot at the given watermark seq: a segment is dropped when every
// record it holds has seq <= watermark (i.e. the next segment starts at or
// below watermark+1). The active append segment is never removed, so the
// log always stays appendable and the [watermark+1, head] suffix stays
// replayable. Returns how many segments were removed. Call it after
// WriteSnapshot succeeds; wal.Boot handles the resulting pruned prefix
// (recovery starts from the snapshot and replays only the surviving tail).
func (w *Log) PruneCovered(watermark int) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("wal: prune on closed log")
	}
	segs, err := segmentFiles(w.opt.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, name := range segs {
		if name == w.curName || i+1 >= len(segs) {
			break
		}
		if segmentFirstSeq(segs[i+1]) > watermark+1 {
			break // this segment holds records past the watermark
		}
		if err := os.Remove(filepath.Join(w.opt.Dir, name)); err != nil {
			if os.IsNotExist(err) {
				continue // a concurrent prune got there first; idempotent
			}
			return removed, fmt.Errorf("wal: prune segment %s: %w", name, err)
		}
		removed++
	}
	if removed > 0 {
		w.mSegments.Add(float64(-removed))
		if err := syncDir(w.opt.Dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Sync forces an fsync of the current segment regardless of policy.
func (w *Log) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.f.Sync()
}

// Close syncs and closes the current segment.
func (w *Log) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if w.err == nil {
		w.err = fmt.Errorf("wal: closed")
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
