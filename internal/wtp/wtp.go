// Package wtp implements willing-to-pay functions, the building block of the
// elicitation protocol between buyers and arbiter (paper §3.2.2). A
// WTP-function carries: (i) a package with the data task to solve; (ii) a
// function assigning a price to each degree of satisfaction; (iii) packaged
// data the buyer already owns; and (iv) a list of intrinsic dataset
// properties the buyer requires (expiry, freshness, provenance, authorship).
package wtp

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/mltask"
	"repro/internal/relation"
)

// Task measures the degree of satisfaction a mashup achieves, in [0,1].
// Different tasks use different metrics (paper: "Task Multiplicity") —
// classifier accuracy, schema/row completeness, and so on.
type Task interface {
	Satisfaction(m *relation.Relation) (float64, error)
	Describe() string
}

// ClassifierTask adapts an mltask classifier: satisfaction = held-out
// accuracy, the metric of the paper's running example.
type ClassifierTask struct {
	Spec mltask.ClassifierTask
}

// Satisfaction implements Task.
func (t ClassifierTask) Satisfaction(m *relation.Relation) (float64, error) {
	return t.Spec.Evaluate(m)
}

// Describe implements Task.
func (t ClassifierTask) Describe() string {
	return fmt.Sprintf("train %s on %v predicting %s", t.Spec.Model, t.Spec.Features, t.Spec.Label)
}

// CoverageTask scores a mashup by target-schema coverage and row
// completeness — the "notions of completeness borrowed from the approximate
// query processing literature" for relational tasks (paper §3.2.2.1).
type CoverageTask struct {
	Columns  []string
	WantRows int // rows at which row-completeness saturates
}

// Satisfaction implements Task: geometric blend of column coverage and row
// completeness.
func (t CoverageTask) Satisfaction(m *relation.Relation) (float64, error) {
	if len(t.Columns) == 0 {
		return 0, fmt.Errorf("wtp: coverage task has no columns")
	}
	cov := m.Schema.CoverageOf(t.Columns)
	rows := 1.0
	if t.WantRows > 0 {
		rows = float64(m.NumRows()) / float64(t.WantRows)
		if rows > 1 {
			rows = 1
		}
	}
	return cov * rows, nil
}

// Describe implements Task.
func (t CoverageTask) Describe() string {
	return fmt.Sprintf("cover columns %v with >=%d rows", t.Columns, t.WantRows)
}

// FuncTask wraps an arbitrary satisfaction function — the escape hatch for
// buyer-shipped code packages.
type FuncTask struct {
	Desc string
	Fn   func(*relation.Relation) (float64, error)
}

// Satisfaction implements Task.
func (t FuncTask) Satisfaction(m *relation.Relation) (float64, error) { return t.Fn(m) }

// Describe implements Task.
func (t FuncTask) Describe() string { return t.Desc }

// CurvePoint maps a satisfaction threshold to a price.
type CurvePoint struct {
	MinSatisfaction float64
	Price           float64
}

// PriceCurve is a monotone step function: the buyer pays the price of the
// highest threshold reached. The paper's example — "$100 for any dataset
// that permits the model achieve 80% accuracy, and $150 if the accuracy goes
// beyond 90%" — is Curve{{0.8, 100}, {0.9, 150}}.
type PriceCurve []CurvePoint

// Validate checks the curve is sorted, in range, and monotone in price.
func (c PriceCurve) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("wtp: empty price curve")
	}
	for i, p := range c {
		if p.MinSatisfaction < 0 || p.MinSatisfaction > 1 {
			return fmt.Errorf("wtp: curve point %d satisfaction %v out of [0,1]", i, p.MinSatisfaction)
		}
		if p.Price < 0 {
			return fmt.Errorf("wtp: curve point %d has negative price", i)
		}
		if i > 0 {
			if p.MinSatisfaction <= c[i-1].MinSatisfaction {
				return fmt.Errorf("wtp: curve thresholds must strictly increase")
			}
			if p.Price < c[i-1].Price {
				return fmt.Errorf("wtp: curve prices must be non-decreasing")
			}
		}
	}
	return nil
}

// Price returns the willingness to pay at a satisfaction level (0 below the
// first threshold).
func (c PriceCurve) Price(satisfaction float64) float64 {
	price := 0.0
	for _, p := range c {
		if satisfaction >= p.MinSatisfaction {
			price = p.Price
		}
	}
	return price
}

// MaxPrice returns the curve's top price.
func (c PriceCurve) MaxPrice() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].Price
}

// DatasetMeta carries the intrinsic properties of a contributing dataset
// that constraints are checked against.
type DatasetMeta struct {
	Dataset       string
	UpdatedAt     time.Time
	Author        string
	HasProvenance bool
}

// Constraints are the intrinsic-property requirements of a WTP-function
// (paper §3.2.2.1: expiry date, freshness, authorship, provenance, quality).
type Constraints struct {
	// MaxAge rejects datasets older than this (0 = no limit). The paper's
	// example: "data not older than 2 months, fearing concept drift".
	MaxAge time.Duration
	// Now anchors freshness checks (defaults to time.Now).
	Now time.Time
	// RequireProvenance rejects mashups with sources lacking lineage info.
	RequireProvenance bool
	// AllowedAuthors restricts dataset authorship (empty = anyone).
	AllowedAuthors []string
	// MaxMissingRatio bounds the fraction of NULL cells in the mashup.
	MaxMissingRatio float64
	// MinRows is the minimum mashup size.
	MinRows int
}

// Check verifies the mashup and its sources against the constraints,
// returning a reason string when violated.
func (c Constraints) Check(m *relation.Relation, sources []DatasetMeta) (bool, string) {
	if c.MinRows > 0 && m.NumRows() < c.MinRows {
		return false, fmt.Sprintf("mashup has %d rows, need %d", m.NumRows(), c.MinRows)
	}
	if c.MaxMissingRatio > 0 && m.MissingRatio() > c.MaxMissingRatio {
		return false, fmt.Sprintf("missing ratio %.2f exceeds %.2f", m.MissingRatio(), c.MaxMissingRatio)
	}
	now := c.Now
	if now.IsZero() {
		now = time.Now()
	}
	allowed := map[string]bool{}
	for _, a := range c.AllowedAuthors {
		allowed[a] = true
	}
	for _, s := range sources {
		if c.MaxAge > 0 && now.Sub(s.UpdatedAt) > c.MaxAge {
			return false, fmt.Sprintf("dataset %s older than %v", s.Dataset, c.MaxAge)
		}
		if c.RequireProvenance && !s.HasProvenance {
			return false, fmt.Sprintf("dataset %s lacks provenance", s.Dataset)
		}
		if len(allowed) > 0 && !allowed[s.Author] {
			return false, fmt.Sprintf("dataset %s author %q not allowed", s.Dataset, s.Author)
		}
	}
	return true, ""
}

// Function is a complete WTP-function.
type Function struct {
	Buyer string
	// Purpose declares what the buyer will use the data for; the arbiter's
	// contextual-integrity policy engine (internal/policy) checks every
	// dataset flow against it before a transaction completes (paper §4.4).
	Purpose     string
	Task        Task
	Curve       PriceCurve
	Constraints Constraints
	// Owned is data the buyer already has and will not pay for; the
	// evaluator appends it to candidate mashups before measuring
	// satisfaction (paper: "Packaged data that buyers may already own").
	Owned *relation.Relation
	// TrueValue is the buyer's private per-satisfaction valuation, used only
	// by the simulator to measure truthfulness; a strategic buyer's Curve
	// may understate it.
	TrueValue PriceCurve
}

// Validate checks the function is well formed.
func (f *Function) Validate() error {
	if f.Buyer == "" {
		return fmt.Errorf("wtp: function has no buyer")
	}
	if f.Task == nil {
		return fmt.Errorf("wtp: function has no task")
	}
	return f.Curve.Validate()
}

// Evaluation is the result of running a WTP-function against one mashup.
type Evaluation struct {
	Satisfaction float64
	Offer        float64 // price from the curve
	Rejected     bool
	Reason       string
}

// Evaluate runs the WTP pipeline: constraint check, optional owned-data
// union, task satisfaction, price lookup. This is the WTP-Evaluator of the
// DMMS architecture (paper Fig. 2).
func (f *Function) Evaluate(m *relation.Relation, sources []DatasetMeta) Evaluation {
	if ok, reason := f.Constraints.Check(m, sources); !ok {
		return Evaluation{Rejected: true, Reason: reason}
	}
	target := m
	if f.Owned != nil {
		if merged, err := mergeOwned(m, f.Owned); err == nil {
			target = merged
		}
	}
	sat, err := f.Task.Satisfaction(target)
	if err != nil {
		return Evaluation{Rejected: true, Reason: err.Error()}
	}
	return Evaluation{Satisfaction: sat, Offer: f.Curve.Price(sat)}
}

// mergeOwned unions the owned rows into the mashup when schemas align, or
// extends the mashup with owned columns via a best-effort key join.
func mergeOwned(m, owned *relation.Relation) (*relation.Relation, error) {
	if m.Schema.Equal(owned.Schema) {
		it, err := relation.NewUnion(relation.NewScan(m), relation.NewScan(owned))
		if err != nil {
			return nil, err
		}
		out, err := relation.Materialize(it)
		if err != nil {
			return nil, err
		}
		out.Name = m.Name + "_union"
		return out, nil
	}
	// Find a shared column name to join on, preferring key-ish names.
	var shared []string
	for _, c := range owned.Schema {
		if m.Schema.Has(c.Name) {
			shared = append(shared, c.Name)
		}
	}
	if len(shared) == 0 {
		return m, nil
	}
	sort.Strings(shared)
	return relation.ScanPlan(m).
		Join(relation.ScanPlan(owned), relation.JoinPair{Left: shared[0], Right: shared[0]}).
		Run()
}
