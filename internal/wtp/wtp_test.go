package wtp

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/mltask"
	"repro/internal/relation"
)

func mkCurve() PriceCurve {
	return PriceCurve{{MinSatisfaction: 0.8, Price: 100}, {MinSatisfaction: 0.9, Price: 150}}
}

func TestPriceCurve(t *testing.T) {
	c := mkCurve()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sat  float64
		want float64
	}{
		{0.5, 0}, {0.79, 0}, {0.8, 100}, {0.85, 100}, {0.9, 150}, {1.0, 150},
	}
	for _, cse := range cases {
		if got := c.Price(cse.sat); got != cse.want {
			t.Errorf("Price(%v) = %v, want %v", cse.sat, got, cse.want)
		}
	}
	if c.MaxPrice() != 150 {
		t.Errorf("max = %v", c.MaxPrice())
	}
}

func TestPriceCurveValidation(t *testing.T) {
	bad := []PriceCurve{
		{},
		{{MinSatisfaction: -0.1, Price: 10}},
		{{MinSatisfaction: 0.5, Price: -1}},
		{{MinSatisfaction: 0.5, Price: 10}, {MinSatisfaction: 0.5, Price: 20}},
		{{MinSatisfaction: 0.5, Price: 20}, {MinSatisfaction: 0.8, Price: 10}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad curve %d accepted", i)
		}
	}
}

func TestCoverageTask(t *testing.T) {
	r := relation.New("m", relation.NewSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindInt)))
	for i := 0; i < 50; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Int(int64(i)))
	}
	task := CoverageTask{Columns: []string{"a", "b", "c"}, WantRows: 100}
	sat, err := task.Satisfaction(r)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0 / 3.0) * 0.5
	if sat != want {
		t.Errorf("sat = %v, want %v", sat, want)
	}
	if _, err := (CoverageTask{}).Satisfaction(r); err == nil {
		t.Error("empty coverage task must fail")
	}
	if task.Describe() == "" {
		t.Error("describe must not be empty")
	}
}

func mkClassifiable(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("m", relation.NewSchema(
		relation.Col("x1", relation.KindFloat),
		relation.Col("x2", relation.KindFloat),
		relation.Col("y", relation.KindBool),
	))
	for i := 0; i < n; i++ {
		x1, x2 := rng.NormFloat64(), rng.NormFloat64()
		r.MustAppend(relation.Float(x1), relation.Float(x2), relation.Bool(x1+x2 > 0))
	}
	return r
}

func TestClassifierTaskSatisfaction(t *testing.T) {
	r := mkClassifiable(300, 1)
	task := ClassifierTask{Spec: mltask.ClassifierTask{
		Features: []string{"x1", "x2"}, Label: "y", Model: mltask.ModelLogistic, Seed: 2}}
	sat, err := task.Satisfaction(r)
	if err != nil {
		t.Fatal(err)
	}
	if sat < 0.85 {
		t.Errorf("satisfaction = %v", sat)
	}
	if task.Describe() == "" {
		t.Error("describe empty")
	}
}

func TestConstraints(t *testing.T) {
	r := mkClassifiable(100, 2)
	now := time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC)
	fresh := DatasetMeta{Dataset: "d1", UpdatedAt: now.Add(-24 * time.Hour), Author: "alice", HasProvenance: true}
	stale := DatasetMeta{Dataset: "d2", UpdatedAt: now.Add(-90 * 24 * time.Hour), Author: "bob"}

	c := Constraints{MaxAge: 60 * 24 * time.Hour, Now: now}
	if ok, _ := c.Check(r, []DatasetMeta{fresh}); !ok {
		t.Error("fresh dataset must pass")
	}
	if ok, reason := c.Check(r, []DatasetMeta{fresh, stale}); ok {
		t.Error("stale dataset must fail: " + reason)
	}

	cp := Constraints{RequireProvenance: true, Now: now}
	if ok, _ := cp.Check(r, []DatasetMeta{stale}); ok {
		t.Error("missing provenance must fail")
	}

	ca := Constraints{AllowedAuthors: []string{"alice"}, Now: now}
	if ok, _ := ca.Check(r, []DatasetMeta{fresh}); !ok {
		t.Error("allowed author must pass")
	}
	if ok, _ := ca.Check(r, []DatasetMeta{stale}); ok {
		t.Error("disallowed author must fail")
	}

	cr := Constraints{MinRows: 1000}
	if ok, _ := cr.Check(r, nil); ok {
		t.Error("too few rows must fail")
	}

	null := relation.New("n", relation.NewSchema(relation.Col("a", relation.KindInt)))
	null.MustAppend(relation.Null())
	cm := Constraints{MaxMissingRatio: 0.5}
	if ok, _ := cm.Check(null, nil); ok {
		t.Error("all-null relation must fail missing-ratio check")
	}
}

func TestFunctionValidate(t *testing.T) {
	f := &Function{Buyer: "b1", Task: CoverageTask{Columns: []string{"a"}}, Curve: mkCurve()}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Function{Task: f.Task, Curve: f.Curve}).Validate(); err == nil {
		t.Error("missing buyer must fail")
	}
	if err := (&Function{Buyer: "b", Curve: f.Curve}).Validate(); err == nil {
		t.Error("missing task must fail")
	}
	if err := (&Function{Buyer: "b", Task: f.Task}).Validate(); err == nil {
		t.Error("missing curve must fail")
	}
}

func TestEvaluatePipeline(t *testing.T) {
	r := mkClassifiable(300, 3)
	f := &Function{
		Buyer: "b1",
		Task: ClassifierTask{Spec: mltask.ClassifierTask{
			Features: []string{"x1", "x2"}, Label: "y", Model: mltask.ModelLogistic, Seed: 4}},
		Curve: mkCurve(),
	}
	ev := f.Evaluate(r, nil)
	if ev.Rejected {
		t.Fatalf("rejected: %s", ev.Reason)
	}
	if ev.Satisfaction < 0.9 || ev.Offer != 150 {
		t.Errorf("satisfaction %v offer %v", ev.Satisfaction, ev.Offer)
	}
	// Constraint rejection path.
	f.Constraints = Constraints{MinRows: 10000}
	ev = f.Evaluate(r, nil)
	if !ev.Rejected {
		t.Error("constraint violation must reject")
	}
	// Task error path.
	f.Constraints = Constraints{}
	f.Task = FuncTask{Desc: "always fails", Fn: func(*relation.Relation) (float64, error) {
		return 0, errTest
	}}
	ev = f.Evaluate(r, nil)
	if !ev.Rejected || ev.Reason == "" {
		t.Error("task error must reject with reason")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }

func TestOwnedDataUnion(t *testing.T) {
	// The buyer owns extra rows of the same schema: satisfaction should be
	// computed over the union.
	mashup := mkClassifiable(30, 5)
	owned := mkClassifiable(300, 6)
	owned.Name = "m" // align names irrelevant; schemas match
	f := &Function{
		Buyer: "b1",
		Task:  CoverageTask{Columns: []string{"x1", "x2", "y"}, WantRows: 330},
		Curve: PriceCurve{{MinSatisfaction: 0.99, Price: 10}},
		Owned: owned,
	}
	ev := f.Evaluate(mashup, nil)
	if ev.Rejected {
		t.Fatal(ev.Reason)
	}
	if ev.Satisfaction < 0.99 {
		t.Errorf("union satisfaction = %v; owned rows must count", ev.Satisfaction)
	}
	// Without owned data the row completeness is 30/330.
	f.Owned = nil
	ev2 := f.Evaluate(mashup, nil)
	if ev2.Satisfaction >= ev.Satisfaction {
		t.Error("owned data must increase satisfaction here")
	}
}

func TestOwnedDataJoin(t *testing.T) {
	// Owned data with different schema joins on a shared key column.
	m := relation.New("m", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("a", relation.KindFloat)))
	for i := 0; i < 20; i++ {
		m.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)))
	}
	owned := relation.New("own", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("b", relation.KindFloat)))
	for i := 0; i < 20; i++ {
		owned.MustAppend(relation.Int(int64(i)), relation.Float(float64(-i)))
	}
	f := &Function{
		Buyer: "b1",
		Task:  CoverageTask{Columns: []string{"a", "b"}, WantRows: 20},
		Curve: PriceCurve{{MinSatisfaction: 0.99, Price: 10}},
		Owned: owned,
	}
	ev := f.Evaluate(m, nil)
	if ev.Rejected || ev.Satisfaction < 0.99 {
		t.Errorf("join with owned data: sat=%v rejected=%v %s", ev.Satisfaction, ev.Rejected, ev.Reason)
	}
}
