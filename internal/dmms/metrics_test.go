package dmms

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wal"
)

// scrapeMetrics GETs /metrics and returns the exposition text plus a map of
// sample name (labels included) → value for the monotonicity checks.
func scrapeMetrics(t *testing.T, url string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return string(body), samples
}

// TestMetricsEndpointEndToEnd drives market traffic through a WAL-backed
// engine gateway and scrapes /metrics twice: the families the telemetry layer
// promises must be present with non-zero activity, and every cumulative
// sample must be monotone across scrapes.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	w, err := wal.Open(wal.Options{Dir: t.TempDir(), Policy: wal.SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(p, engine.Config{Shards: 4, DoDWorkers: 2, Persister: w, Metrics: reg})
	defer eng.Stop()
	s := NewEngineServer(p, eng)
	s.SetMetrics(reg)
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := NewClient(srv.URL)

	drive := func(buyer string) {
		t.Helper()
		if _, err := c.RegisterAsync(buyer, 5000); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.TriggerEpoch(); err != nil {
			t.Fatal(err)
		}
		reqT, err := c.SubmitRequestAsync(RequestReq{
			Buyer:   buyer,
			Columns: []string{"x", "y"},
			Curve:   []CurvePointSpec{{MinSatisfaction: 0.5, Price: 150}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.TriggerEpoch(); err != nil {
			t.Fatal(err)
		}
		tk, err := c.WaitTicket(reqT, 2*time.Second)
		if err != nil || tk.Status != engine.TicketDone {
			t.Fatalf("request did not settle: %+v err=%v", tk, err)
		}
	}

	if _, err := c.ShareDatasetAsync("s1", "s1/d1", asyncRelation("s1/d1", 30), "open"); err != nil {
		t.Fatal(err)
	}
	drive("b1")

	text, first := scrapeMetrics(t, srv.URL)
	for _, family := range []string{
		"engine_submit_to_settle_seconds_bucket",
		"engine_submit_to_settle_seconds_count",
		"engine_stage_seconds_bucket",
		"engine_epoch_seconds_count",
		"engine_intake_queue_depth",
		"engine_submitted_total",
		"engine_matched_total",
		"arbiter_round_seconds_count",
		"arbiter_open_requests",
		"dod_build_seconds_bucket",
		"dod_builds_total",
		"dod_cache_hits_total",
		"dod_cache_stale_total",
		"dod_cache_misses_total",
		"dod_cache_evictions_total",
		"dod_worker_panics_total",
		"engine_price_seconds_total",
		"market_allocator_evals_total",
		"market_allocator_memo_hits_total",
		"market_allocator_exact_total",
		"market_allocator_sampled_total",
		"market_allocator_escalations_total",
		"market_allocator_incremental_total",
		"wal_append_seconds_count",
		"wal_fsync_seconds_bucket",
		"wal_fsync_seconds_count",
		"wal_segments",
		"wal_bytes_written_total",
		"dmms_http_requests_total",
		"dmms_http_request_seconds_count",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("family %s missing from /metrics", family)
		}
	}
	for sample, min := range map[string]float64{
		"engine_submit_to_settle_seconds_count": 1,
		"engine_matched_total":                  1,
		"market_allocator_evals_total":          1,
		"dod_build_seconds_count":               1,
		"wal_fsync_seconds_count":               1,
		"wal_bytes_written_total":               1,
	} {
		if first[sample] < min {
			t.Errorf("%s = %v, want >= %v", sample, first[sample], min)
		}
	}

	// More traffic, second scrape: every cumulative sample is monotone and
	// the end-to-end histogram saw the new settlements.
	drive("b2")
	_, second := scrapeMetrics(t, srv.URL)
	for sample, v1 := range first {
		cumulative := strings.Contains(sample, "_total") ||
			strings.Contains(sample, "_count") ||
			strings.Contains(sample, "_bucket") ||
			strings.Contains(sample, "_sum")
		if !cumulative {
			continue
		}
		v2, ok := second[sample]
		if !ok {
			t.Errorf("sample %s vanished between scrapes", sample)
			continue
		}
		if v2 < v1 {
			t.Errorf("sample %s went backwards: %v -> %v", sample, v1, v2)
		}
	}
	if got := second["engine_submit_to_settle_seconds_count"]; got < first["engine_submit_to_settle_seconds_count"]+1 {
		t.Errorf("submit→settle count did not advance: %v -> %v",
			first["engine_submit_to_settle_seconds_count"], got)
	}
	if got := second[`dmms_http_requests_total{route="metrics",code="200"}`]; got != 0 {
		t.Error("/metrics must not instrument itself")
	}
}

// TestMetricsEndpointDisabled pins the opt-out: a server without SetMetrics
// answers /metrics with 503, not an empty exposition.
func TestMetricsEndpointDisabled(t *testing.T) {
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /metrics on a metrics-less server = %d, want 503", resp.StatusCode)
	}
}
