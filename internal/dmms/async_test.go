package dmms

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relation"
)

func asyncFixture(t *testing.T, cfg engine.Config) (*core.Platform, *engine.Engine, *Client, func()) {
	t.Helper()
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(p, cfg)
	eng.Start()
	srv := httptest.NewServer(NewEngineServer(p, eng))
	return p, eng, NewClient(srv.URL), func() {
		srv.Close()
		eng.Stop()
	}
}

func asyncRelation(name string, rows int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(
		relation.Col("x", relation.KindInt), relation.Col("y", relation.KindFloat)))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)))
	}
	return r
}

// TestAsyncSubmitPoll walks the full async lifecycle over HTTP: register,
// share and request return tickets; an epoch clears the market; tickets,
// events and settlements report the outcome.
func TestAsyncSubmitPoll(t *testing.T) {
	_, _, c, done := asyncFixture(t, engine.Config{Shards: 4})
	defer done()

	regT, err := c.RegisterAsync("b1", 2000)
	if err != nil {
		t.Fatal(err)
	}
	shareT, err := c.ShareDatasetAsync("s1", "s1/d1", asyncRelation("s1/d1", 30), "open")
	if err != nil {
		t.Fatal(err)
	}
	reqT, err := c.SubmitRequestAsync(RequestReq{
		Buyer:   "b1",
		Columns: []string{"x", "y"},
		Curve:   []CurvePointSpec{{MinSatisfaction: 0.5, Price: 150}},
	})
	if err != nil {
		t.Fatal(err)
	}

	if tk, err := c.Ticket(reqT); err != nil || tk.Status.Terminal() {
		t.Fatalf("request should still be queued before the epoch: %+v err=%v", tk, err)
	}
	if _, ran, err := c.TriggerEpoch(); err != nil || !ran {
		t.Fatalf("epoch did not run: ran=%v err=%v", ran, err)
	}

	for _, id := range []string{regT, shareT} {
		tk, err := c.WaitTicket(id, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Status != engine.TicketDone {
			t.Fatalf("ticket %s: %+v", id, tk)
		}
	}
	tk, err := c.WaitTicket(reqT, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Status != engine.TicketDone || tk.TxID == "" || tk.Price != 100 {
		t.Fatalf("request not settled at posted price: %+v", tk)
	}

	// Balance reflects the purchase through the regular sync endpoint.
	bal, err := c.Balance("b1")
	if err != nil {
		t.Fatal(err)
	}
	if bal != 1900 {
		t.Fatalf("buyer balance: want 1900, got %v", bal)
	}

	// The event log saw the whole story, in order.
	evs, err := c.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []engine.EventKind
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	want := []engine.EventKind{
		engine.EventEpochStart, engine.EventRegistered, engine.EventDatasetShared,
		engine.EventRequestFiled, engine.EventTxSettled, engine.EventEpochEnd,
	}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds: want %v, got %v", want, kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d: want %s, got %s", i, want[i], kinds[i])
		}
	}

	// Incremental cursor: nothing new after the last seq.
	tail, err := c.Events(evs[len(evs)-1].Seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 0 {
		t.Fatalf("expected empty tail, got %d events", len(tail))
	}

	// Settlement subscriber caught the sale and conservation holds.
	deadline := time.Now().Add(time.Second)
	for {
		sts, conserved, err := c.Settlements()
		if err != nil {
			t.Fatal(err)
		}
		if len(sts) == 1 {
			if !conserved {
				t.Fatal("settlement conservation violated")
			}
			if sts[0].Buyer != "b1" || sts[0].Price != 100 {
				t.Fatalf("unexpected settlement %+v", sts[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("settlement subscriber never caught up (%d entries)", len(sts))
		}
		time.Sleep(2 * time.Millisecond)
	}

	if st, err := c.EngineStats(); err != nil || st.Matched != 1 || st.Epochs < 1 {
		t.Fatalf("stats: %+v err=%v", st, err)
	}
}

// TestAsyncConcurrentClients hammers the HTTP surface from parallel clients
// while a fast ticker clears epochs in the background.
func TestAsyncConcurrentClients(t *testing.T) {
	p, eng, c, done := asyncFixture(t, engine.Config{Shards: 8, EpochEvery: 2 * time.Millisecond})
	defer done()

	if _, err := c.RegisterAsync("b1", 100000); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var tickets []string
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a'+i)) + "-seller"
			id := name + "/d"
			if _, err := c.ShareDatasetAsync(name, id, asyncRelation(id, 10), "open"); err != nil {
				t.Error(err)
				return
			}
			tk, err := c.SubmitRequestAsync(RequestReq{
				Buyer:   "b1",
				Columns: []string{"x", "y"},
				Curve:   []CurvePointSpec{{MinSatisfaction: 0.5, Price: 120}},
			})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			tickets = append(tickets, tk)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, id := range tickets {
		tk, err := c.WaitTicket(id, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Status != engine.TicketDone {
			t.Fatalf("ticket %s: %+v", id, tk)
		}
	}
	eng.Stop()
	if !eng.Settlements().Conserved() {
		t.Fatal("settlement conservation violated")
	}
	if i := p.Arbiter.Ledger.VerifyChain(); i >= 0 {
		t.Fatalf("audit chain corrupted at entry %d", i)
	}
}

// TestAsyncWithoutEngine confirms the sync-only server answers 503 on the
// async surface instead of panicking.
func TestAsyncWithoutEngine(t *testing.T) {
	p, err := core.NewPlatform(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.RegisterAsync("b1", 10); err == nil {
		t.Fatal("expected 503 from async endpoint without engine")
	}
}
