package dmms

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/wal"
)

// TestAsyncExPostReportEndToEnd is the wire-level ex-post durability story:
// on a WAL-backed server the sync /report path answers the typed
// ErrSyncDisabled, the async path settles deliver -> report through the
// event log, a pending escrow survives a snapshot + restart intact, and the
// buyer's report settles against the restored escrow on the second server
// lifetime.
func TestAsyncExPostReportEndToEnd(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Dir: dir, Policy: wal.SyncAlways}

	// --- first server lifetime -------------------------------------------
	w, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: "expost-audited"})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(p, engine.Config{Shards: 4, Persister: w})
	srv := httptest.NewServer(NewEngineServer(p, eng))
	c := NewClient(srv.URL)

	if _, err := c.RegisterAsync("b1", 2000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ShareDatasetAsync("s1", "s1/d1", asyncRelation("s1/d1", 30), "open"); err != nil {
		t.Fatal(err)
	}
	if _, ran, err := c.TriggerEpoch(); err != nil || !ran {
		t.Fatalf("first epoch: ran=%v err=%v", ran, err)
	}
	deliver := func(price float64) engine.Ticket {
		t.Helper()
		reqT, err := c.SubmitRequestAsync(RequestReq{
			Buyer:   "b1",
			Columns: []string{"x", "y"},
			Curve:   []CurvePointSpec{{MinSatisfaction: 0.5, Price: price}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.TriggerEpoch(); err != nil {
			t.Fatal(err)
		}
		tk, err := c.WaitTicket(reqT, time.Second)
		if err != nil || tk.Status != engine.TicketDone || tk.TxID == "" {
			t.Fatalf("ex-post delivery did not settle: %+v err=%v", tk, err)
		}
		return tk
	}
	tx1 := deliver(300)

	// Sync mutations answer the typed refusal on a durable server.
	if _, err := c.Report(tx1.TxID, 250, 250); !errors.Is(err, ErrSyncDisabled) {
		t.Fatalf("sync /report on durable server: got %v, want ErrSyncDisabled", err)
	}
	if err := c.Register("b9", 10); !errors.Is(err, ErrSyncDisabled) {
		t.Fatalf("sync /participants on durable server: got %v, want ErrSyncDisabled", err)
	}

	// The async report settles the escrow through the event log.
	repT, err := c.ReportAsync(tx1.TxID, 250, 250)
	if err != nil {
		t.Fatal(err)
	}
	if _, ran, err := c.TriggerEpoch(); err != nil || !ran {
		t.Fatalf("report epoch: ran=%v err=%v", ran, err)
	}
	repTk, err := c.WaitTicket(repT, time.Second)
	if err != nil || repTk.Status != engine.TicketDone || repTk.Price <= 0 {
		t.Fatalf("async report did not settle: %+v err=%v", repTk, err)
	}
	if repTk.TxID != tx1.TxID || repTk.Participant != "b1" {
		t.Fatalf("report ticket misattributed: %+v", repTk)
	}
	var reported bool
	evs, err := c.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if ev.Kind == engine.EventValueReported && ev.TxID == tx1.TxID {
			reported = true
		}
	}
	if !reported {
		t.Fatal("no value-reported event on the wire")
	}

	// A second delivery stays pending; checkpoint it, then shut down.
	tx2 := deliver(280)
	if p.Arbiter.PendingExPostCount() != 1 {
		t.Fatalf("want 1 pending escrow, have %d", p.Arbiter.PendingExPostCount())
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("snapshot with pending escrow refused: %v", err)
	}
	if _, err := wal.WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	eng.Stop()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// --- second server lifetime ------------------------------------------
	p2, eng2, w2, _, err := wal.Boot(core.Options{Design: "expost-audited"},
		engine.Config{Shards: 4}, walOpts)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	srv2 := httptest.NewServer(NewEngineServer(p2, eng2))
	defer func() {
		srv2.Close()
		eng2.Stop()
		w2.Close()
	}()
	c2 := NewClient(srv2.URL)

	if p2.Arbiter.PendingExPostCount() != 1 {
		t.Fatalf("pending escrow lost across restart: %d", p2.Arbiter.PendingExPostCount())
	}
	if got := p2.Arbiter.Ledger.Escrowed(tx2.TxID); got == 0 {
		t.Fatalf("escrow for %s not restored", tx2.TxID)
	}
	repT2, err := c2.ReportAsync(tx2.TxID, 280, 280)
	if err != nil {
		t.Fatal(err)
	}
	if _, ran, err := c2.TriggerEpoch(); err != nil || !ran {
		t.Fatalf("post-restart report epoch: ran=%v err=%v", ran, err)
	}
	repTk2, err := c2.WaitTicket(repT2, time.Second)
	if err != nil || repTk2.Status != engine.TicketDone || repTk2.Price <= 0 {
		t.Fatalf("post-restart report did not settle: %+v err=%v", repTk2, err)
	}
	if p2.Arbiter.PendingExPostCount() != 0 {
		t.Fatal("escrow not cleared by post-restart report")
	}
	if _, conserved, err := c2.Settlements(); err != nil || !conserved {
		t.Fatalf("settlement conservation after restart: conserved=%v err=%v", conserved, err)
	}
	// An unknown transaction fails the ticket, not the submission.
	badT, err := c2.ReportAsync("tx-9999", 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.TriggerEpoch(); err != nil {
		t.Fatal(err)
	}
	badTk, err := c2.WaitTicket(badT, time.Second)
	if err != nil || badTk.Status != engine.TicketFailed {
		t.Fatalf("bogus report should fail its ticket: %+v err=%v", badTk, err)
	}
}
