package dmms

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wal"
)

// fedNameOn brute-forces a participant name hashing to the given home shard,
// so the HTTP workload can pin buyers and sellers to shards deterministically.
func fedNameOn(t *testing.T, prefix string, shard, shards int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		n := fmt.Sprintf("%s%d", prefix, i)
		if federation.HomeOf(n, shards) == shard {
			return n
		}
	}
	t.Fatalf("no name with prefix %q on shard %d/%d", prefix, shard, shards)
	return ""
}

// fedKeyedRel builds a join-half relation (shared key k + one value column),
// so a want for both value columns clears only through a cross-dataset join.
func fedKeyedRel(name, valCol string, rows int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col(valCol, relation.KindFloat)))
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Int(int64(i)), relation.Float(float64(i)*2.5))
	}
	return r
}

// fedDo runs one request against the federation server and decodes the JSON
// response into out (skipped when out is nil).
func fedDo(t *testing.T, h http.Handler, method, path string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func fedWantCode(t *testing.T, rec *httptest.ResponseRecorder, code int) {
	t.Helper()
	if rec.Code != code {
		t.Fatalf("got HTTP %d (%s), want %d", rec.Code, rec.Body.String(), code)
	}
}

// TestFederationServerEndToEnd drives a two-shard in-memory federation over
// HTTP: shard-local and cross-shard wants, the aggregated stats view,
// per-shard event logs, the merged settlement book, home-routed balances.
func TestFederationServerEndToEnd(t *testing.T) {
	m, err := federation.Open(federation.Config{
		Shards:   2,
		Engine:   engine.Config{Shards: 2},
		Platform: core.Options{Design: "posted-baseline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	s := NewFederationServer(m)

	buyer := fedNameOn(t, "buyer", 0, 2)
	sellA := fedNameOn(t, "sellA", 0, 2)
	sellB := fedNameOn(t, "sellB", 1, 2)

	var tk TicketResp
	fedWantCode(t, fedDo(t, s, "POST", "/async/participants", ParticipantReq{Name: buyer, Funds: 5000}, &tk), http.StatusAccepted)
	if !strings.HasPrefix(tk.Ticket, "s0:") {
		t.Fatalf("buyer ticket %q not on shard 0", tk.Ticket)
	}
	fedWantCode(t, fedDo(t, s, "POST", "/async/datasets", DatasetReq{
		Seller: sellA, ID: sellA + "/d0", Relation: fedKeyedRel(sellA+"/d0", "a", 40)}, nil), http.StatusAccepted)
	fedWantCode(t, fedDo(t, s, "POST", "/async/datasets", DatasetReq{
		Seller: sellB, ID: sellB + "/d0", Relation: fedKeyedRel(sellB+"/d0", "b", 40)}, &tk), http.StatusAccepted)
	if !strings.HasPrefix(tk.Ticket, "s1:") {
		t.Fatalf("sellB ticket %q not on shard 1", tk.Ticket)
	}
	fedDo(t, s, "POST", "/epoch", nil, nil)

	// A local want (columns on the buyer's home shard) and a spanning one.
	fedWantCode(t, fedDo(t, s, "POST", "/async/requests", RequestReq{
		Buyer: buyer, Columns: []string{"k", "a"},
		Task:  TaskSpec{Kind: "coverage", WantRows: 1},
		Curve: []CurvePointSpec{{MinSatisfaction: 0.5, Price: 100}},
	}, &tk), http.StatusAccepted)
	if !strings.HasPrefix(tk.Ticket, "s0:") {
		t.Fatalf("local want ticket %q not on shard 0", tk.Ticket)
	}
	var xtk TicketResp
	fedWantCode(t, fedDo(t, s, "POST", "/async/requests", RequestReq{
		Buyer: buyer, Columns: []string{"a", "b"},
		Task:  TaskSpec{Kind: "coverage", WantRows: 1},
		Curve: []CurvePointSpec{{MinSatisfaction: 0.9, Price: 900}},
	}, &xtk), http.StatusAccepted)
	if !strings.HasPrefix(xtk.Ticket, "x:") {
		t.Fatalf("spanning want ticket %q not on the coordinator", xtk.Ticket)
	}
	fedDo(t, s, "POST", "/epoch", nil, nil)

	var tv TicketView
	fedWantCode(t, fedDo(t, s, "GET", "/async/tickets/"+xtk.Ticket, nil, &tv), http.StatusOK)
	if tv.Status != engine.TicketDone || tv.TxID != "xtx-000001" {
		t.Fatalf("spanning ticket = %+v, want done with xtx-000001", tv.Ticket)
	}
	fedWantCode(t, fedDo(t, s, "GET", "/async/tickets/nope", nil, nil), http.StatusNotFound)

	// Aggregated stats: both settles counted, federation block present.
	var sv FederationStatsView
	fedWantCode(t, fedDo(t, s, "GET", "/engine/stats", nil, &sv), http.StatusOK)
	if sv.Matched != 2 {
		t.Fatalf("aggregate Matched = %d, want 2", sv.Matched)
	}
	if sv.Federation.Shards != 2 || sv.Federation.XTxCommitted != 1 || sv.Federation.CoordinatorPending != 0 {
		t.Fatalf("federation block = %+v", sv.Federation)
	}
	if len(sv.Federation.PerShard) != 0 {
		t.Fatalf("per-shard detail present without ?per-shard=1")
	}
	fedWantCode(t, fedDo(t, s, "GET", "/engine/stats?per-shard=1", nil, &sv), http.StatusOK)
	if len(sv.Federation.PerShard) != 2 {
		t.Fatalf("per-shard detail has %d entries, want 2", len(sv.Federation.PerShard))
	}
	var one engine.Stats
	fedWantCode(t, fedDo(t, s, "GET", "/engine/stats?shard=1", nil, &one), http.StatusOK)
	if one.Matched != 0 {
		t.Fatalf("shard 1 Matched = %d, want 0 (both settles touch shard 0's book)", one.Matched)
	}
	fedWantCode(t, fedDo(t, s, "GET", "/engine/stats?shard=9", nil, nil), http.StatusBadRequest)

	// Settlement book: merged across shards, TxIDs in federation form. The
	// book is fed by each engine's event-log subscriber, so poll briefly.
	var book struct {
		Settlements []SettlementView `json:"settlements"`
		Conserved   bool             `json:"conserved"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		fedWantCode(t, fedDo(t, s, "GET", "/settlements", nil, &book), http.StatusOK)
		if len(book.Settlements) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !book.Conserved {
		t.Fatal("settlement book not conserved")
	}
	found := false
	for _, st := range book.Settlements {
		if strings.HasPrefix(st.TxID, "s0:") && st.Buyer == buyer {
			found = true
		}
	}
	if !found {
		t.Fatalf("no s0: settlement for %s in %+v", buyer, book.Settlements)
	}

	// Events are per-shard views; a multi-shard market demands ?shard=i.
	fedWantCode(t, fedDo(t, s, "GET", "/events", nil, nil), http.StatusBadRequest)
	var evs []engine.Event
	fedWantCode(t, fedDo(t, s, "GET", "/events?shard=1", nil, &evs), http.StatusOK)
	if len(evs) == 0 {
		t.Fatal("shard 1 event log empty")
	}
	for _, ev := range evs {
		if ev.Payload != nil {
			t.Fatalf("event %d payload not redacted", ev.Seq)
		}
	}

	// Balances route to the home shard's ledger.
	var bal map[string]float64
	fedWantCode(t, fedDo(t, s, "GET", "/balance?account="+sellB, nil, &bal), http.StatusOK)
	if bal["balance"] <= 0 {
		t.Fatalf("remote seller balance = %v, want > 0", bal["balance"])
	}
	fedWantCode(t, fedDo(t, s, "GET", "/balance?account=nobody", nil, nil), http.StatusNotFound)
	fedWantCode(t, fedDo(t, s, "GET", "/balance", nil, nil), http.StatusBadRequest)

	var designs map[string]any
	fedWantCode(t, fedDo(t, s, "GET", "/designs", nil, &designs), http.StatusOK)
	if designs["design"] != "posted-baseline" || designs["shards"] != float64(2) {
		t.Fatalf("designs = %v", designs)
	}

	// In-memory market: no snapshot lineage.
	fedWantCode(t, fedDo(t, s, "POST", "/snapshot", nil, nil), http.StatusServiceUnavailable)

	// Ex-post reports against cross-shard transactions are refused (they
	// settle up-front); the refusal travels as an ordinary submit error.
	fedWantCode(t, fedDo(t, s, "POST", "/async/report",
		ReportReq{TxID: "xtx-000001", Reported: 1, TrueValue: 1}, nil), http.StatusBadRequest)
}

// TestFederationServerSnapshot exercises POST /snapshot on a durable
// federation: one checkpoint per shard, written under the coordinator mutex.
func TestFederationServerSnapshot(t *testing.T) {
	m, err := federation.Open(federation.Config{
		Shards:   2,
		Dir:      t.TempDir(),
		Sync:     wal.SyncAlways,
		Engine:   engine.Config{Shards: 2},
		Platform: core.Options{Design: "posted-baseline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	s := NewFederationServer(m)

	fedWantCode(t, fedDo(t, s, "POST", "/async/participants",
		ParticipantReq{Name: "b1", Funds: 100}, nil), http.StatusAccepted)
	fedDo(t, s, "POST", "/epoch", nil, nil)

	var resp FederationSnapshotResp
	fedWantCode(t, fedDo(t, s, "POST", "/snapshot", nil, &resp), http.StatusOK)
	if len(resp.Paths) != 2 {
		t.Fatalf("snapshot wrote %d checkpoints, want 2: %v", len(resp.Paths), resp.Paths)
	}
}

// TestFederationServerMetrics wires a registry and asserts the scrape carries
// the HTTP families plus the federation aggregates.
func TestFederationServerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := federation.Open(federation.Config{
		Shards:   2,
		Engine:   engine.Config{Shards: 2},
		Platform: core.Options{Design: "posted-baseline"},
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	s := NewFederationServer(m)
	s.SetMetrics(reg)

	fedDo(t, s, "POST", "/epoch", nil, nil)
	rec := fedDo(t, s, "GET", "/metrics", nil, nil)
	fedWantCode(t, rec, http.StatusOK)
	body := rec.Body.String()
	for _, want := range []string{"federation_shards 2", "dmms_http_requests_total", "engine_epochs_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
}
