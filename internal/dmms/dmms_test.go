package dmms

import (
	"net/http/httptest"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/relation"
)

func mkServer(t *testing.T, design *market.Design) (*httptest.Server, *Client) {
	t.Helper()
	p, err := core.NewPlatform(core.Options{CustomDesign: design})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p))
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL)
}

func postedDesign() *market.Design {
	return &market.Design{
		Label: "posted", Mechanism: market.PostedPrice{P: 40},
		Allocator: market.Uniform{}, ArbiterFee: 0.1,
	}
}

func mkRel() *relation.Relation {
	r := relation.New("sales", relation.NewSchema(
		relation.Col("region", relation.KindString),
		relation.Col("amount", relation.KindFloat),
	))
	for i := 0; i < 60; i++ {
		r.MustAppend(relation.String_("r"+string(rune('a'+i%4))), relation.Float(float64(i)))
	}
	return r
}

func TestHTTPEndToEnd(t *testing.T) {
	_, c := mkServer(t, postedDesign())
	if err := c.Register("s1", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("b1", 500); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("b1", 500); err == nil {
		t.Error("double registration must fail with HTTP error")
	}
	if err := c.ShareDataset("s1", "sales", mkRel(), "open"); err != nil {
		t.Fatal(err)
	}
	id, err := c.SubmitRequest(RequestReq{
		Buyer:   "b1",
		Columns: []string{"region", "amount"},
		Task:    TaskSpec{Kind: "coverage", WantRows: 50},
		Curve:   []CurvePointSpec{{MinSatisfaction: 0.9, Price: 60}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("no request id")
	}
	res, err := c.Match()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 {
		t.Fatalf("transactions = %+v unsat=%v", res.Transactions, res.Unsatisfied)
	}
	tx := res.Transactions[0]
	if tx.Price != 40 || tx.Buyer != "b1" {
		t.Errorf("tx = %+v", tx)
	}
	if tx.Mashup == nil || tx.Mashup.NumRows() != 60 {
		t.Error("match must deliver the mashup payload")
	}
	// History omits payload.
	hist, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].Mashup != nil {
		t.Errorf("history = %+v", hist)
	}
	bal, err := c.Balance("b1")
	if err != nil {
		t.Fatal(err)
	}
	if bal != 460 {
		t.Errorf("balance = %v", bal)
	}
	sbal, _ := c.Balance("s1")
	if sbal != 36 {
		t.Errorf("seller balance = %v, want 90%% of 40", sbal)
	}
}

func TestHTTPExPost(t *testing.T) {
	d := &market.Design{
		Label: "xp", Elicitation: market.ElicitExPost,
		Mechanism: market.ExPost{Deposit: 100, AuditProb: 0, Penalty: 1},
		Allocator: market.Uniform{},
	}
	_, c := mkServer(t, d)
	_ = c.Register("s1", 0)
	_ = c.Register("b1", 500)
	_ = c.ShareDataset("s1", "sales", mkRel(), "open")
	_, err := c.SubmitRequest(RequestReq{
		Buyer: "b1", Columns: []string{"region", "amount"},
		Task:  TaskSpec{Kind: "coverage", WantRows: 10},
		Curve: []CurvePointSpec{{MinSatisfaction: 0.9, Price: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Match()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transactions) != 1 || !res.Transactions[0].ExPost {
		t.Fatalf("expost tx = %+v", res.Transactions)
	}
	paid, err := c.Report(res.Transactions[0].ID, 55, 55)
	if err != nil {
		t.Fatal(err)
	}
	if paid != 55 {
		t.Errorf("paid = %v", paid)
	}
	if _, err := c.Report("bogus", 1, 1); err == nil {
		t.Error("bad tx id must error")
	}
}

func TestHTTPValidation(t *testing.T) {
	_, c := mkServer(t, postedDesign())
	if err := c.ShareDataset("", "", nil, "open"); err == nil {
		t.Error("missing fields must fail")
	}
	if _, err := c.SubmitRequest(RequestReq{Buyer: "ghost"}); err == nil {
		t.Error("empty columns must fail")
	}
	if _, err := c.SubmitRequest(RequestReq{
		Buyer: "ghost", Columns: []string{"x"},
		Task:  TaskSpec{Kind: "alien"},
		Curve: []CurvePointSpec{{0.5, 1}},
	}); err == nil {
		t.Error("unknown task kind must fail")
	}
	if _, err := c.Balance(""); err == nil {
		t.Error("missing account must fail")
	}
}

func TestHTTPDemandSignals(t *testing.T) {
	_, c := mkServer(t, postedDesign())
	_ = c.Register("b1", 100)
	_, err := c.SubmitRequest(RequestReq{
		Buyer: "b1", Columns: []string{"unicorn"},
		Curve: []CurvePointSpec{{0.5, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Match(); err != nil {
		t.Fatal(err)
	}
	var signals []map[string]any
	if err := c.get("/demand", &signals); err != nil {
		t.Fatal(err)
	}
	if len(signals) == 0 {
		t.Error("unmet demand must surface")
	}
}

func TestHTTPSaveCatalog(t *testing.T) {
	_, c := mkServer(t, postedDesign())
	_ = c.Register("s1", 0)
	if err := c.ShareDataset("s1", "sales", mkRel(), "open"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var out map[string]string
	if err := c.post("/save", SaveReq{Dir: dir}, &out); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 1 {
		t.Errorf("persisted datasets = %d", cat.Len())
	}
	rel, err := cat.Get("sales")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 60 {
		t.Errorf("rows = %d", rel.NumRows())
	}
	if err := c.post("/save", SaveReq{}, nil); err == nil {
		t.Error("empty dir must fail")
	}
}
