package dmms

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/federation"
)

// FederationServer exposes a sharded market (internal/federation) over the
// async HTTP surface. It mirrors the engine-backed routes of Server —
// submissions return tickets, epochs clear the market, clients poll tickets —
// but every submission is routed to its home shard (or the cross-shard
// coordinator), /engine/stats aggregates all shards into one coherent view,
// and /snapshot checkpoints every shard atomically w.r.t. the coordinator
// log. The synchronous mutation endpoints do not exist here: a federation is
// always engine-backed, and direct platform calls would bypass routing.
type FederationServer struct {
	routeSet
	market *federation.Market
}

// NewFederationServer builds the HTTP front end over a federated market. The
// caller owns the market's lifecycle (Start/Stop).
func NewFederationServer(m *federation.Market) *FederationServer {
	s := &FederationServer{routeSet: routeSet{mux: http.NewServeMux()}, market: m}
	s.handle("POST /async/participants", s.handleParticipants)
	s.handle("POST /async/datasets", s.handleDatasets)
	s.handle("POST /async/requests", s.handleRequests)
	s.handle("POST /async/report", s.handleReport)
	s.handle("GET /async/tickets/{id}", s.handleTicket)
	s.handle("GET /events", s.handleEvents)
	s.handle("POST /epoch", s.handleEpoch)
	s.handle("GET /engine/stats", s.handleStats)
	s.handle("GET /settlements", s.handleSettlements)
	s.handle("GET /balance", s.handleBalance)
	s.handle("GET /designs", s.handleDesigns)
	s.handle("POST /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *FederationServer) handleParticipants(w http.ResponseWriter, r *http.Request) {
	var req ParticipantReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("dmms: name is required"))
		return
	}
	ticket, err := s.market.SubmitRegister(req.Name, req.Funds)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, TicketResp{Ticket: ticket})
}

func (s *FederationServer) handleDatasets(w http.ResponseWriter, r *http.Request) {
	var req DatasetReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	terms, meta, err := datasetTerms(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ticket, err := s.market.SubmitShare(req.Seller, catalog.DatasetID(req.ID), req.Relation, meta, terms)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, TicketResp{Ticket: ticket})
}

func (s *FederationServer) handleRequests(w http.ResponseWriter, r *http.Request) {
	var req RequestReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	want, f, err := buildRequest(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	label := req.Priority
	if h := r.Header.Get(PriorityHeader); h != "" {
		label = h
	}
	priority, err := engine.ParsePriority(label)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ticket, err := s.market.SubmitRequestPriority(want, f, priority)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, TicketResp{Ticket: ticket})
}

func (s *FederationServer) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.TxID == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("dmms: tx_id is required"))
		return
	}
	ticket, err := s.market.SubmitReport(req.TxID, req.Reported, req.TrueValue)
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, TicketResp{Ticket: ticket})
}

func (s *FederationServer) handleTicket(w http.ResponseWriter, r *http.Request) {
	t, ok := s.market.Ticket(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dmms: unknown ticket %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, TicketView{Ticket: t})
}

// shardParam resolves the ?shard=i query parameter against the market. With
// no parameter it returns (0, false, nil) on a multi-shard market — the
// caller decides whether that means "all shards" or an error — and shard 0
// on a single-shard market, where the distinction is vacuous.
func (s *FederationServer) shardParam(r *http.Request) (shard int, explicit bool, err error) {
	v := r.URL.Query().Get("shard")
	if v == "" {
		return 0, s.market.NumShards() == 1, nil
	}
	n, aerr := strconv.Atoi(v)
	if aerr != nil || n < 0 || n >= s.market.NumShards() {
		return 0, false, fmt.Errorf("dmms: shard must be an integer in [0,%d)", s.market.NumShards())
	}
	return n, true, nil
}

// handleEvents serves one shard's event log. Event logs are strictly
// per-shard orderings (seq numbers restart per shard), so a multi-shard
// market requires an explicit ?shard=i rather than inventing a merged order.
func (s *FederationServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	shard, explicit, err := s.shardParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !explicit {
		writeErr(w, http.StatusBadRequest, fmt.Errorf(
			"dmms: event logs are per shard on a federated market; pass ?shard=i (0..%d)", s.market.NumShards()-1))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("dmms: bad after cursor %q", v))
			return
		}
		after = n
	}
	evs := s.market.Shards()[shard].Engine.Events(after)
	if evs == nil {
		evs = []engine.Event{}
	}
	// Same redaction as the single-engine server: submission payloads carry
	// the full shared relations — data the market sells.
	for i := range evs {
		evs[i].Payload = nil
	}
	writeJSON(w, http.StatusOK, evs)
}

func (s *FederationServer) handleEpoch(w http.ResponseWriter, r *http.Request) {
	epoch, ran := s.market.TriggerEpoch()
	writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "ran": ran})
}

// FederationDetail is the federation block of the aggregated stats view.
type FederationDetail struct {
	Shards             int            `json:"shards"`
	CoordinatorPending int            `json:"coordinator_pending"`
	XTxCommitted       uint64         `json:"xtx_committed"`
	XTxAborted         uint64         `json:"xtx_aborted"`
	PerShard           []engine.Stats `json:"per_shard,omitempty"`
}

// FederationStatsView is GET /engine/stats on a federated market: the
// aggregate engine.Stats shape single-engine clients already parse, plus a
// federation block (shard count, coordinator counters, and — with
// ?per-shard=1 — each shard's own stats).
type FederationStatsView struct {
	engine.Stats
	Federation FederationDetail `json:"federation"`
}

func (s *FederationServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if v := r.URL.Query().Get("shard"); v != "" {
		shard, _, err := s.shardParam(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, s.market.ShardStats()[shard])
		return
	}
	pending, settled, aborted := s.market.CoordStats()
	view := FederationStatsView{
		Stats: s.market.Stats(),
		Federation: FederationDetail{
			Shards:             s.market.NumShards(),
			CoordinatorPending: pending,
			XTxCommitted:       settled,
			XTxAborted:         aborted,
		},
	}
	if q := r.URL.Query().Get("per-shard"); q == "1" || q == "true" {
		view.Federation.PerShard = s.market.ShardStats()
	}
	writeJSON(w, http.StatusOK, view)
}

// handleSettlements aggregates every shard's settlement book, with TxIDs in
// federation form ("s<i>:tx-..."). Conserved is the AND across shards —
// cross-shard transactions move value between shard ledgers, so only the
// federation-wide view is meaningful. ?shard=i narrows to one shard.
func (s *FederationServer) handleSettlements(w http.ResponseWriter, r *http.Request) {
	shard, explicit, err := s.shardParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	only := -1
	if explicit && r.URL.Query().Get("shard") != "" {
		only = shard
	}
	out := []SettlementView{}
	conserved := true
	for i, sh := range s.market.Shards() {
		if only >= 0 && i != only {
			continue
		}
		book := sh.Engine.Settlements()
		if !book.Conserved() {
			conserved = false
		}
		for _, st := range book.All() {
			v := SettlementView{
				TxID: federation.ShardID(i, st.TxID), Epoch: st.Epoch, Buyer: st.Buyer,
				Price: st.Price.Float(), ArbiterCut: st.ArbiterCut.Float(), ExPost: st.ExPost,
			}
			if len(st.SellerCuts) > 0 {
				v.SellerCuts = map[string]float64{}
				for name, c := range st.SellerCuts {
					v.SellerCuts[name] = c.Float()
				}
			}
			out = append(out, v)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"settlements": out,
		"conserved":   conserved,
	})
}

func (s *FederationServer) handleBalance(w http.ResponseWriter, r *http.Request) {
	account := r.URL.Query().Get("account")
	if account == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("dmms: account query parameter required"))
		return
	}
	bal, ok := s.market.Balance(account)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dmms: unknown account %q", account))
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"balance": bal.Float()})
}

func (s *FederationServer) handleDesigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"design": s.market.Shards()[0].Platform.Design.Label,
		"shards": s.market.NumShards(),
	})
}

// FederationSnapshotResp reports the per-shard checkpoints SnapshotAll wrote.
type FederationSnapshotResp struct {
	Paths []string `json:"paths"`
}

func (s *FederationServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	paths, err := s.market.SnapshotAll()
	if err != nil {
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no snapshot lineage") {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, FederationSnapshotResp{Paths: paths})
}
