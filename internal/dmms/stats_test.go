package dmms

import (
	"testing"
	"time"

	"repro/internal/engine"
)

// TestEngineStatsExposeBuilderCounters: the /engine/stats surface carries
// the builder-pool split — BuildMillis, CacheHits, CacheStale and the
// configured worker count — so operators can see the build/price pipeline
// working over the wire.
func TestEngineStatsExposeBuilderCounters(t *testing.T) {
	_, _, c, done := asyncFixture(t, engine.Config{Shards: 2, DoDWorkers: 2})
	defer done()

	if _, err := c.RegisterAsync("b1", 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ShareDatasetAsync("s1", "s1/d1", asyncRelation("s1/d1", 30), "open"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.TriggerEpoch(); err != nil {
		t.Fatal(err)
	}

	req := RequestReq{
		Buyer:   "b1",
		Columns: []string{"x", "y"},
		Curve:   []CurvePointSpec{{MinSatisfaction: 0.5, Price: 150}},
	}
	var first engine.Stats
	for i := 0; i < 2; i++ {
		tk, err := c.SubmitRequestAsync(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.TriggerEpoch(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			st, err := c.Ticket(tk)
			if err != nil {
				t.Fatal(err)
			}
			if st.Status.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("ticket %s never terminal", tk)
			}
			time.Sleep(time.Millisecond)
		}
		stats, err := c.EngineStats()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = stats
			if stats.BuildMillis <= 0 {
				t.Errorf("BuildMillis = %v after first build, want > 0", stats.BuildMillis)
			}
			if stats.DoDWorkers != 2 {
				t.Errorf("DoDWorkers = %d, want 2", stats.DoDWorkers)
			}
			// The pricing split of the pipeline: the settled request above ran
			// the price stage and its revenue allocator, so the new wire
			// fields carry live values.
			if stats.PriceMillis <= 0 {
				t.Errorf("PriceMillis = %v after a settled round, want > 0", stats.PriceMillis)
			}
			if stats.AllocEvals == 0 {
				t.Error("AllocEvals = 0 after a settlement, want > 0")
			}
		} else if stats.CacheHits <= first.CacheHits {
			t.Errorf("cache hits did not climb over the wire: %d -> %d", first.CacheHits, stats.CacheHits)
		}
	}
}
