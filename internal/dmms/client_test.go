package dmms

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestZeroValueClientIsBoundedAndUsable pins the nil-transport fix: a
// zero-value Client{BaseURL: ...} (and one built over http.DefaultClient)
// must not nil-panic and must ride the shared timeout-bounded transport, and
// the *Ctx call variants must honor a per-call deadline against a wedged
// server instead of hanging forever.
func TestZeroValueClientIsBoundedAndUsable(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/balance":
			_, _ = w.Write([]byte(`{"balance": 42}`))
		default: // wedged endpoint: holds the connection open until test end
			select {
			case <-block:
			case <-r.Context().Done():
			}
		}
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL} // zero value: HTTP nil
	bal, err := c.Balance("b1")
	if err != nil || bal != 42 {
		t.Fatalf("zero-value client Balance = %v, %v; want 42, nil", bal, err)
	}
	if got := c.httpClient(); got != defaultHTTP {
		t.Fatal("nil HTTP must fall back to the shared bounded transport")
	}
	naive := &Client{BaseURL: srv.URL, HTTP: http.DefaultClient}
	if got := naive.httpClient(); got != defaultHTTP {
		t.Fatal("timeout-less http.DefaultClient must be substituted with the bounded default")
	}
	custom := &http.Client{Timeout: time.Minute}
	if got := (&Client{BaseURL: srv.URL, HTTP: custom}).httpClient(); got != custom {
		t.Fatal("an explicitly configured transport must be respected")
	}

	// A wedged endpoint returns at the per-call deadline, not never.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.EngineStatsCtx(ctx); err == nil {
		t.Fatal("EngineStatsCtx against a wedged server must fail at the deadline")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("EngineStatsCtx hung %v past its 50ms deadline", took)
	}
}
