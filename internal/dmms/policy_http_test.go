package dmms

import (
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestHTTPAdmission429 covers the wire surface of admission control: a
// quota-exhausted participant gets 429 Too Many Requests with a Retry-After
// header (surfaced client-side as *OverloadedError), the priority header
// sticks to the ticket, and an epoch refill reopens intake.
func TestHTTPAdmission429(t *testing.T) {
	_, _, c, done := asyncFixture(t, engine.Config{Shards: 2,
		Admission: engine.AdmissionConfig{QuotaPerEpoch: 1, QuotaBurst: 1}})
	defer done()

	if _, err := c.RegisterAsync("b1", 2000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.TriggerEpoch(); err != nil {
		t.Fatal(err)
	}

	req := RequestReq{
		Buyer:   "b1",
		Columns: []string{"x", "y"},
		Curve:   []CurvePointSpec{{MinSatisfaction: 0.5, Price: 150}},
	}
	tk, err := c.SubmitRequestAsyncPriority(req, "high")
	if err != nil {
		t.Fatalf("first request should be admitted: %v", err)
	}
	ticket, err := c.Ticket(tk)
	if err != nil {
		t.Fatal(err)
	}
	if ticket.Priority != engine.PriorityHigh {
		t.Fatalf("priority header lost: ticket carries class %d", ticket.Priority)
	}

	_, err = c.SubmitRequestAsync(req)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverloadedError from a 429, got %v", err)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("Retry-After hint too small: %v", oe.RetryAfter)
	}

	// The epoch applies the admitted request and refills one token.
	if _, _, err := c.TriggerEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitRequestAsync(req); err != nil {
		t.Fatalf("post-refill request should be admitted: %v", err)
	}
}

// TestHTTPPriorityBodyField: without the header, the JSON body's priority
// field decides the class; junk labels are a 400, not a silent normal.
func TestHTTPPriorityBodyField(t *testing.T) {
	_, eng, c, done := asyncFixture(t, engine.Config{Shards: 2})
	defer done()
	if _, err := c.RegisterAsync("b1", 2000); err != nil {
		t.Fatal(err)
	}
	req := RequestReq{
		Buyer:    "b1",
		Columns:  []string{"x", "y"},
		Curve:    []CurvePointSpec{{MinSatisfaction: 0.5, Price: 150}},
		Priority: "low",
	}
	tk, err := c.SubmitRequestAsync(req)
	if err != nil {
		t.Fatal(err)
	}
	ticket, ok := eng.Ticket(tk)
	if !ok || ticket.Priority != engine.PriorityLow {
		t.Fatalf("body priority ignored: %+v", ticket)
	}
	req.Priority = "asap!!"
	if _, err := c.SubmitRequestAsync(req); err == nil {
		t.Fatal("junk priority label should be rejected")
	}
}
