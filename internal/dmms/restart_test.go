package dmms

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/wal"
)

// TestAsyncSurfaceSurvivesRestart covers the client-visible durability
// contract: a client holding a ticket and an /events cursor from before a
// gateway restart must resume polling against the rebooted server without
// gaps or duplicates, and its old ticket must still resolve to the same
// terminal state.
func TestAsyncSurfaceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Dir: dir, Policy: wal.SyncAlways}

	// --- first server lifetime -------------------------------------------
	w, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(p, engine.Config{Shards: 4, Persister: w})
	srv := httptest.NewServer(NewEngineServer(p, eng))
	c := NewClient(srv.URL)

	regT, err := c.RegisterAsync("b1", 2000)
	if err != nil {
		t.Fatal(err)
	}
	shareT, err := c.ShareDatasetAsync("s1", "s1/d1", asyncRelation("s1/d1", 30), "open")
	if err != nil {
		t.Fatal(err)
	}
	if _, ran, err := c.TriggerEpoch(); err != nil || !ran {
		t.Fatalf("first epoch: ran=%v err=%v", ran, err)
	}
	reqT, err := c.SubmitRequestAsync(RequestReq{
		Buyer:   "b1",
		Columns: []string{"x", "y"},
		Curve:   []CurvePointSpec{{MinSatisfaction: 0.5, Price: 150}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ran, err := c.TriggerEpoch(); err != nil || !ran {
		t.Fatalf("second epoch: ran=%v err=%v", ran, err)
	}
	reqTk, err := c.WaitTicket(reqT, time.Second)
	if err != nil || reqTk.Status != engine.TicketDone {
		t.Fatalf("request did not settle before restart: %+v err=%v", reqTk, err)
	}

	// The client consumes part of the stream and remembers its cursor.
	pre, err := c.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre) < 4 {
		t.Fatalf("want a few events before restart, got %d", len(pre))
	}
	cursor := pre[len(pre)/2].Seq
	seen := map[int]bool{}
	for _, ev := range pre[:len(pre)/2+1] {
		seen[ev.Seq] = true
	}
	total := pre[len(pre)-1].Seq

	// --- restart ----------------------------------------------------------
	srv.Close()
	eng.Stop()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	p2, eng2, w2, res, err := wal.Boot(core.Options{Design: "posted-baseline"},
		engine.Config{Shards: 4}, walOpts)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	defer func() {
		eng2.Stop()
		w2.Close()
	}()
	if res.Recovered != total {
		t.Fatalf("recovered %d events, want %d", res.Recovered, total)
	}
	srv2 := httptest.NewServer(NewEngineServer(p2, eng2))
	defer srv2.Close()
	c2 := NewClient(srv2.URL)

	// Resume the event stream from the pre-restart cursor: contiguous,
	// no gaps, no duplicates.
	post, err := c2.Events(cursor)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range post {
		if ev.Seq != cursor+i+1 {
			t.Fatalf("resumed stream has a gap: event %d has seq %d, want %d", i, ev.Seq, cursor+i+1)
		}
		if seen[ev.Seq] {
			t.Fatalf("resumed stream duplicates seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	for s := 1; s <= total; s++ {
		if !seen[s] {
			t.Fatalf("seq %d never delivered across the restart", s)
		}
	}

	// Pre-restart tickets still resolve, with their settled state intact.
	for _, tc := range []struct {
		id   string
		want engine.TicketStatus
	}{{regT, engine.TicketDone}, {shareT, engine.TicketDone}, {reqT, engine.TicketDone}} {
		tk, err := c2.Ticket(tc.id)
		if err != nil {
			t.Fatalf("ticket %s lost across restart: %v", tc.id, err)
		}
		if tk.Status != tc.want {
			t.Fatalf("ticket %s status %s after restart, want %s", tc.id, tk.Status, tc.want)
		}
	}
	if tk, _ := c2.Ticket(reqT); tk.TxID != reqTk.TxID || tk.Price != reqTk.Price {
		t.Fatalf("settled ticket changed across restart: %+v vs %+v", tk, reqTk)
	}

	// The rebooted engine keeps serving: a new request matches against the
	// replayed catalog, and its events extend the stream contiguously.
	req2T, err := c2.SubmitRequestAsync(RequestReq{
		Buyer:   "b1",
		Columns: []string{"x", "y"},
		Curve:   []CurvePointSpec{{MinSatisfaction: 0.5, Price: 140}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ran, err := c2.TriggerEpoch(); err != nil || !ran {
		t.Fatalf("post-restart epoch: ran=%v err=%v", ran, err)
	}
	tk2, err := c2.WaitTicket(req2T, time.Second)
	if err != nil || tk2.Status != engine.TicketDone {
		t.Fatalf("post-restart request did not settle: %+v err=%v", tk2, err)
	}
	ext, err := c2.Events(total)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) == 0 || ext[0].Seq != total+1 {
		t.Fatalf("post-restart events do not extend the stream: %+v", ext)
	}
	if _, conserved, err := c2.Settlements(); err != nil || !conserved {
		t.Fatalf("settlement conservation after restart: conserved=%v err=%v", conserved, err)
	}

	// Stats expose the durable watermark.
	st, err := c2.EngineStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.LastPersisted != st.Events {
		t.Fatalf("last_persisted %d lags events %d under always-fsync", st.LastPersisted, st.Events)
	}
}

// TestSnapshotEndpoint exercises the /snapshot admin surface: 503 without a
// configured store, and path+seq with one.
func TestSnapshotEndpoint(t *testing.T) {
	_, eng, c, done := asyncFixture(t, engine.Config{Shards: 2})
	defer done()

	if _, _, err := c.Snapshot(); err == nil {
		t.Fatal("snapshot without a store must fail")
	}

	dir := t.TempDir()
	// Reach into the handler wiring the way the gateway does.
	regT, err := c.RegisterAsync("b1", 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.TriggerEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitTicket(regT, time.Second); err != nil {
		t.Fatal(err)
	}

	srv2 := httptest.NewServer(func() *Server {
		s := NewEngineServer(nil, eng)
		s.SetSnapshotFunc(func() (string, int, error) {
			snap, err := eng.Snapshot()
			if err != nil {
				return "", 0, err
			}
			path, err := wal.WriteSnapshot(dir, snap)
			return path, snap.TakenAtSeq, err
		})
		return s
	}())
	defer srv2.Close()
	c2 := NewClient(srv2.URL)

	path, seq, err := c2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 || path == "" {
		t.Fatalf("snapshot wrote nothing: path=%q seq=%d", path, seq)
	}
	snap, err := wal.LoadSnapshot(dir)
	if err != nil || snap == nil || snap.TakenAtSeq != seq {
		t.Fatalf("written snapshot not loadable: %+v err=%v", snap, err)
	}
}

// TestDurableServerRejectsSyncMutations: with a WAL attached, the
// synchronous mutation endpoints would change state without an event-log
// record — the server must refuse them and point at the async surface.
func TestDurableServerRejectsSyncMutations(t *testing.T) {
	w, err := wal.Open(wal.Options{Dir: t.TempDir(), Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	p, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(p, engine.Config{Shards: 2, Persister: w})
	defer eng.Stop()
	srv := httptest.NewServer(NewEngineServer(p, eng))
	defer srv.Close()
	c := NewClient(srv.URL)

	if err := c.Register("alice", 100); err == nil {
		t.Fatal("sync /participants must be rejected on a durable server")
	}
	if err := c.ShareDataset("s1", "s1/d1", asyncRelation("s1/d1", 5), "open"); err == nil {
		t.Fatal("sync /datasets must be rejected on a durable server")
	}
	if _, err := c.SubmitRequest(RequestReq{Buyer: "alice", Columns: []string{"x"},
		Curve: []CurvePointSpec{{MinSatisfaction: 0.5, Price: 10}}}); err == nil {
		t.Fatal("sync /requests must be rejected on a durable server")
	}
	// The async path still works.
	if _, err := c.RegisterAsync("alice", 100); err != nil {
		t.Fatalf("async surface broken on durable server: %v", err)
	}
	// A non-durable engine server keeps accepting sync mutations.
	p2, err := core.NewPlatform(core.Options{Design: "posted-baseline"})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := engine.New(p2, engine.Config{Shards: 2})
	defer eng2.Stop()
	srv2 := httptest.NewServer(NewEngineServer(p2, eng2))
	defer srv2.Close()
	if err := NewClient(srv2.URL).Register("bob", 50); err != nil {
		t.Fatalf("sync mutation on non-durable engine server: %v", err)
	}
}
