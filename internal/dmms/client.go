package dmms

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
)

// DefaultTimeout bounds every client call that does not carry its own
// context. Without it, a wedged server (or a half-open connection) hangs the
// caller forever — exactly the failure mode supervised builds exist to stop
// on the server side.
const DefaultTimeout = 30 * time.Second

// defaultHTTP is the transport used when Client.HTTP is nil, so a zero-value
// Client{BaseURL: ...} is usable and timeout-bounded rather than a
// nil-pointer panic waiting to happen.
var defaultHTTP = &http.Client{Timeout: DefaultTimeout}

// ErrSyncDisabled is returned when a synchronous mutation (Register,
// ShareDataset, SubmitRequest, Report, Match) hits a WAL-backed server,
// which only accepts mutations through the async, event-logged surface.
// Match with errors.Is and switch to the *Async methods; the wrapped
// message carries the server's guidance text.
var ErrSyncDisabled = errors.New("dmms: synchronous mutations disabled on durable server")

// OverloadedError is returned when the server sheds load (HTTP 429 from
// admission control): back off for RetryAfter before resubmitting.
type OverloadedError struct {
	Msg        string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("dmms: overloaded, retry after %v: %s", e.RetryAfter, e.Msg)
}

// Client is the Go client for a remote DMMS server — what a seller or buyer
// management platform embeds when the arbiter runs elsewhere.
//
// HTTP may be left nil: calls then use a shared client with DefaultTimeout.
// Every method also has ctx-threaded plumbing underneath — the *Ctx variants
// expose it for per-call deadlines and cancellation.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient targets a DMMS server with the default timeout-bounded transport.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// httpClient returns the transport, falling back to the shared
// timeout-bounded default when HTTP is nil or a zero-value client that would
// otherwise wait forever.
func (c *Client) httpClient() *http.Client {
	if c.HTTP == nil {
		return defaultHTTP
	}
	if c.HTTP.Timeout == 0 && c.HTTP == http.DefaultClient {
		// http.DefaultClient has no timeout; an unreachable or wedged server
		// would hang the caller forever. Substitute the bounded default.
		return defaultHTTP
	}
	return c.HTTP
}

func (c *Client) post(path string, body, out any) error {
	return c.postCtx(context.Background(), path, body, out, nil)
}

func (c *Client) postHeaders(path string, body, out any, headers map[string]string) error {
	return c.postCtx(context.Background(), path, body, out, headers)
}

func (c *Client) postCtx(ctx context.Context, path string, body, out any, headers map[string]string) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func (c *Client) get(path string, out any) error {
	return c.getCtx(context.Background(), path, out)
}

func (c *Client) getCtx(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		if resp.StatusCode == http.StatusTooManyRequests {
			retry := time.Second
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
			return &OverloadedError{Msg: e.Error, RetryAfter: retry}
		}
		if resp.StatusCode == http.StatusConflict && resp.Header.Get(SyncDisabledHeader) != "" {
			return fmt.Errorf("%w: %s", ErrSyncDisabled, e.Error)
		}
		if e.Error != "" {
			return fmt.Errorf("dmms: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("dmms: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Register opens a participant account.
func (c *Client) Register(name string, funds float64) error {
	return c.post("/participants", ParticipantReq{Name: name, Funds: funds}, nil)
}

// ShareDataset uploads a relation under the given license kind.
func (c *Client) ShareDataset(seller, id string, rel *relation.Relation, licenseKind string) error {
	return c.post("/datasets", DatasetReq{Seller: seller, ID: id, Relation: rel, License: licenseKind}, nil)
}

// SubmitRequest files a data need and returns the request ID.
func (c *Client) SubmitRequest(req RequestReq) (string, error) {
	var out map[string]string
	if err := c.post("/requests", req, &out); err != nil {
		return "", err
	}
	return out["request_id"], nil
}

// Match triggers a matching round.
func (c *Client) Match() (*MatchResp, error) {
	var out MatchResp
	if err := c.post("/match", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report settles an ex-post purchase; returns the amount paid.
func (c *Client) Report(txID string, reported, trueValue float64) (float64, error) {
	var out map[string]float64
	if err := c.post("/report", ReportReq{TxID: txID, Reported: reported, TrueValue: trueValue}, &out); err != nil {
		return 0, err
	}
	return out["paid"], nil
}

// History fetches completed transactions (without mashup payloads).
func (c *Client) History() ([]TxView, error) {
	var out []TxView
	if err := c.get("/history", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Balance fetches an account balance.
func (c *Client) Balance(account string) (float64, error) {
	var out map[string]float64
	if err := c.get("/balance?account="+account, &out); err != nil {
		return 0, err
	}
	return out["balance"], nil
}

// --- async (engine-backed) API --------------------------------------------

// RegisterAsync queues a participant registration and returns its ticket.
func (c *Client) RegisterAsync(name string, funds float64) (string, error) {
	var out TicketResp
	if err := c.post("/async/participants", ParticipantReq{Name: name, Funds: funds}, &out); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// ShareDatasetAsync queues a dataset share and returns its ticket.
func (c *Client) ShareDatasetAsync(seller, id string, rel *relation.Relation, licenseKind string) (string, error) {
	var out TicketResp
	req := DatasetReq{Seller: seller, ID: id, Relation: rel, License: licenseKind}
	if err := c.post("/async/datasets", req, &out); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// SubmitRequestAsync queues a data need and returns its ticket.
func (c *Client) SubmitRequestAsync(req RequestReq) (string, error) {
	var out TicketResp
	if err := c.post("/async/requests", req, &out); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// SubmitRequestAsyncPriority queues a data need under a priority class
// ("low" | "normal" | "high"), sent as the X-DMMS-Priority header. A 429
// response surfaces as *OverloadedError with the server's retry-after hint.
func (c *Client) SubmitRequestAsyncPriority(req RequestReq, priority string) (string, error) {
	var out TicketResp
	hdr := map[string]string{PriorityHeader: priority}
	if err := c.postHeaders("/async/requests", req, &out, hdr); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// ReportAsync queues an ex-post value report and returns its ticket; the
// settlement runs in an epoch and is published as a value-reported event.
// Poll the ticket for the realized payment (Ticket.Price).
func (c *Client) ReportAsync(txID string, reported, trueValue float64) (string, error) {
	var out TicketResp
	req := ReportReq{TxID: txID, Reported: reported, TrueValue: trueValue}
	if err := c.post("/async/report", req, &out); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// Ticket polls one submission's state.
func (c *Client) Ticket(id string) (engine.Ticket, error) {
	return c.TicketCtx(context.Background(), id)
}

// TicketCtx polls one submission's state under a caller-supplied context.
func (c *Client) TicketCtx(ctx context.Context, id string) (engine.Ticket, error) {
	var out engine.Ticket
	if err := c.getCtx(ctx, "/async/tickets/"+id, &out); err != nil {
		return engine.Ticket{}, err
	}
	return out, nil
}

// WaitTicket polls a ticket until it reaches a terminal status or the
// timeout elapses.
func (c *Client) WaitTicket(id string, timeout time.Duration) (engine.Ticket, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.WaitTicketCtx(ctx, id)
}

// WaitTicketCtx polls a ticket until it reaches a terminal status or ctx
// ends — the cancellable form for callers supervising many waits at once.
func (c *Client) WaitTicketCtx(ctx context.Context, id string) (engine.Ticket, error) {
	var last engine.Ticket
	for {
		t, err := c.TicketCtx(ctx, id)
		if err != nil {
			return engine.Ticket{}, err
		}
		if t.Status.Terminal() {
			return t, nil
		}
		last = t
		select {
		case <-ctx.Done():
			return last, fmt.Errorf("dmms: ticket %s still %s: %w", id, last.Status, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Events fetches event-log records with Seq > after.
func (c *Client) Events(after int) ([]engine.Event, error) {
	var out []engine.Event
	if err := c.get(fmt.Sprintf("/events?after=%d", after), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// TriggerEpoch forces one engine epoch; it returns the epoch number and
// whether any work ran.
func (c *Client) TriggerEpoch() (uint64, bool, error) {
	var out struct {
		Epoch uint64 `json:"epoch"`
		Ran   bool   `json:"ran"`
	}
	if err := c.post("/epoch", struct{}{}, &out); err != nil {
		return 0, false, err
	}
	return out.Epoch, out.Ran, nil
}

// EngineStats fetches the engine's counters.
func (c *Client) EngineStats() (engine.Stats, error) {
	return c.EngineStatsCtx(context.Background())
}

// EngineStatsCtx fetches the engine's counters under a caller-supplied
// context.
func (c *Client) EngineStatsCtx(ctx context.Context) (engine.Stats, error) {
	var out engine.Stats
	if err := c.getCtx(ctx, "/engine/stats", &out); err != nil {
		return engine.Stats{}, err
	}
	return out, nil
}

// Snapshot asks the server to write a durable checkpoint, returning its
// path and the last event seq it covers.
func (c *Client) Snapshot() (string, int, error) {
	var out SnapshotResp
	if err := c.post("/snapshot", struct{}{}, &out); err != nil {
		return "", 0, err
	}
	return out.Path, out.Seq, nil
}

// Settlements fetches the settlement book and its conservation verdict.
func (c *Client) Settlements() ([]SettlementView, bool, error) {
	var out struct {
		Settlements []SettlementView `json:"settlements"`
		Conserved   bool             `json:"conserved"`
	}
	if err := c.get("/settlements", &out); err != nil {
		return nil, false, err
	}
	return out.Settlements, out.Conserved, nil
}
