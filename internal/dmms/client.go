package dmms

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
)

// ErrSyncDisabled is returned when a synchronous mutation (Register,
// ShareDataset, SubmitRequest, Report, Match) hits a WAL-backed server,
// which only accepts mutations through the async, event-logged surface.
// Match with errors.Is and switch to the *Async methods; the wrapped
// message carries the server's guidance text.
var ErrSyncDisabled = errors.New("dmms: synchronous mutations disabled on durable server")

// OverloadedError is returned when the server sheds load (HTTP 429 from
// admission control): back off for RetryAfter before resubmitting.
type OverloadedError struct {
	Msg        string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("dmms: overloaded, retry after %v: %s", e.RetryAfter, e.Msg)
}

// Client is the Go client for a remote DMMS server — what a seller or buyer
// management platform embeds when the arbiter runs elsewhere.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient targets a DMMS server.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

func (c *Client) post(path string, body, out any) error {
	return c.postHeaders(path, body, out, nil)
}

func (c *Client) postHeaders(path string, body, out any, headers map[string]string) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.HTTP.Get(c.BaseURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		if resp.StatusCode == http.StatusTooManyRequests {
			retry := time.Second
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
			return &OverloadedError{Msg: e.Error, RetryAfter: retry}
		}
		if resp.StatusCode == http.StatusConflict && resp.Header.Get(SyncDisabledHeader) != "" {
			return fmt.Errorf("%w: %s", ErrSyncDisabled, e.Error)
		}
		if e.Error != "" {
			return fmt.Errorf("dmms: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("dmms: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Register opens a participant account.
func (c *Client) Register(name string, funds float64) error {
	return c.post("/participants", ParticipantReq{Name: name, Funds: funds}, nil)
}

// ShareDataset uploads a relation under the given license kind.
func (c *Client) ShareDataset(seller, id string, rel *relation.Relation, licenseKind string) error {
	return c.post("/datasets", DatasetReq{Seller: seller, ID: id, Relation: rel, License: licenseKind}, nil)
}

// SubmitRequest files a data need and returns the request ID.
func (c *Client) SubmitRequest(req RequestReq) (string, error) {
	var out map[string]string
	if err := c.post("/requests", req, &out); err != nil {
		return "", err
	}
	return out["request_id"], nil
}

// Match triggers a matching round.
func (c *Client) Match() (*MatchResp, error) {
	var out MatchResp
	if err := c.post("/match", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report settles an ex-post purchase; returns the amount paid.
func (c *Client) Report(txID string, reported, trueValue float64) (float64, error) {
	var out map[string]float64
	if err := c.post("/report", ReportReq{TxID: txID, Reported: reported, TrueValue: trueValue}, &out); err != nil {
		return 0, err
	}
	return out["paid"], nil
}

// History fetches completed transactions (without mashup payloads).
func (c *Client) History() ([]TxView, error) {
	var out []TxView
	if err := c.get("/history", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Balance fetches an account balance.
func (c *Client) Balance(account string) (float64, error) {
	var out map[string]float64
	if err := c.get("/balance?account="+account, &out); err != nil {
		return 0, err
	}
	return out["balance"], nil
}

// --- async (engine-backed) API --------------------------------------------

// RegisterAsync queues a participant registration and returns its ticket.
func (c *Client) RegisterAsync(name string, funds float64) (string, error) {
	var out TicketResp
	if err := c.post("/async/participants", ParticipantReq{Name: name, Funds: funds}, &out); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// ShareDatasetAsync queues a dataset share and returns its ticket.
func (c *Client) ShareDatasetAsync(seller, id string, rel *relation.Relation, licenseKind string) (string, error) {
	var out TicketResp
	req := DatasetReq{Seller: seller, ID: id, Relation: rel, License: licenseKind}
	if err := c.post("/async/datasets", req, &out); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// SubmitRequestAsync queues a data need and returns its ticket.
func (c *Client) SubmitRequestAsync(req RequestReq) (string, error) {
	var out TicketResp
	if err := c.post("/async/requests", req, &out); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// SubmitRequestAsyncPriority queues a data need under a priority class
// ("low" | "normal" | "high"), sent as the X-DMMS-Priority header. A 429
// response surfaces as *OverloadedError with the server's retry-after hint.
func (c *Client) SubmitRequestAsyncPriority(req RequestReq, priority string) (string, error) {
	var out TicketResp
	hdr := map[string]string{PriorityHeader: priority}
	if err := c.postHeaders("/async/requests", req, &out, hdr); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// ReportAsync queues an ex-post value report and returns its ticket; the
// settlement runs in an epoch and is published as a value-reported event.
// Poll the ticket for the realized payment (Ticket.Price).
func (c *Client) ReportAsync(txID string, reported, trueValue float64) (string, error) {
	var out TicketResp
	req := ReportReq{TxID: txID, Reported: reported, TrueValue: trueValue}
	if err := c.post("/async/report", req, &out); err != nil {
		return "", err
	}
	return out.Ticket, nil
}

// Ticket polls one submission's state.
func (c *Client) Ticket(id string) (engine.Ticket, error) {
	var out engine.Ticket
	if err := c.get("/async/tickets/"+id, &out); err != nil {
		return engine.Ticket{}, err
	}
	return out, nil
}

// WaitTicket polls a ticket until it reaches a terminal status or the
// timeout elapses.
func (c *Client) WaitTicket(id string, timeout time.Duration) (engine.Ticket, error) {
	deadline := time.Now().Add(timeout)
	for {
		t, err := c.Ticket(id)
		if err != nil {
			return engine.Ticket{}, err
		}
		if t.Status.Terminal() {
			return t, nil
		}
		if time.Now().After(deadline) {
			return t, fmt.Errorf("dmms: ticket %s still %s after %v", id, t.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Events fetches event-log records with Seq > after.
func (c *Client) Events(after int) ([]engine.Event, error) {
	var out []engine.Event
	if err := c.get(fmt.Sprintf("/events?after=%d", after), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// TriggerEpoch forces one engine epoch; it returns the epoch number and
// whether any work ran.
func (c *Client) TriggerEpoch() (uint64, bool, error) {
	var out struct {
		Epoch uint64 `json:"epoch"`
		Ran   bool   `json:"ran"`
	}
	if err := c.post("/epoch", struct{}{}, &out); err != nil {
		return 0, false, err
	}
	return out.Epoch, out.Ran, nil
}

// EngineStats fetches the engine's counters.
func (c *Client) EngineStats() (engine.Stats, error) {
	var out engine.Stats
	if err := c.get("/engine/stats", &out); err != nil {
		return engine.Stats{}, err
	}
	return out, nil
}

// Snapshot asks the server to write a durable checkpoint, returning its
// path and the last event seq it covers.
func (c *Client) Snapshot() (string, int, error) {
	var out SnapshotResp
	if err := c.post("/snapshot", struct{}{}, &out); err != nil {
		return "", 0, err
	}
	return out.Path, out.Seq, nil
}

// Settlements fetches the settlement book and its conservation verdict.
func (c *Client) Settlements() ([]SettlementView, bool, error) {
	var out struct {
		Settlements []SettlementView `json:"settlements"`
		Conserved   bool             `json:"conserved"`
	}
	if err := c.get("/settlements", &out); err != nil {
		return nil, false, err
	}
	return out.Settlements, out.Conserved, nil
}
